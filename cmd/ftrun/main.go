// Command ftrun is a standalone interpreter for FT programs (the
// Fortran subset the tuner transforms): it parses, analyzes, runs, and
// optionally profiles any .ft file under the simulated machine model.
// It makes the repository's front end and interpreter usable outside
// the tuning pipeline:
//
//	ftrun program.ft                 run, print PRINT output
//	ftrun -profile program.ft        also print the GPTL region table
//	ftrun -lower all program.ft      run the uniform 32-bit build
//	ftrun -machine avx512 program.ft price on the 512-bit machine model
//
// The bundled model sources live under internal/models/src/*.ft and run
// directly: `ftrun internal/models/src/mpas_a.ft`.
package main

import (
	"flag"
	"fmt"
	"os"

	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

func main() {
	profile := flag.Bool("profile", false, "print the GPTL per-procedure profile")
	lower := flag.String("lower", "", "'all' lowers every real declaration to 32-bit")
	machine := flag.String("machine", "avx2", "machine model: avx2 or avx512")
	trap := flag.Bool("trap", true, "abort on non-finite assignments")
	budget := flag.Float64("budget", 0, "cycle budget (0 = unlimited)")
	engineName := flag.String("engine", "vm", "interpreter engine: vm (closure-compiled) or ast (tree-walker)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ftrun [flags] program.ft")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *lower, *machine, *profile, *trap, *budget, *engineName); err != nil {
		fmt.Fprintln(os.Stderr, "ftrun:", err)
		os.Exit(1)
	}
}

func run(path, lower, machine string, profile, trap bool, budget float64, engineName string) error {
	engine, err := interp.ParseEngine(engineName)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := ft.ParseFile(path, string(src))
	if err != nil {
		return err
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		return err
	}

	if lower == "all" {
		v, err := transform.Apply(prog, transform.Uniform(transform.Atoms(prog), 4))
		if err != nil {
			return err
		}
		prog = v.Prog
	} else if lower != "" {
		return fmt.Errorf("unsupported -lower value %q (only 'all')", lower)
	}

	var m *perfmodel.Model
	switch machine {
	case "avx2":
		m = perfmodel.Default()
	case "avx512":
		m = perfmodel.AVX512()
	default:
		return fmt.Errorf("unknown machine %q", machine)
	}

	in, err := interp.New(prog, interp.Config{
		Model:         m,
		TrapNonFinite: trap,
		Profile:       profile,
		Stdout:        os.Stdout,
		CycleBudget:   budget,
		Engine:        engine,
	})
	if err != nil {
		return err
	}
	res, runErr := in.Run()
	fmt.Fprintf(os.Stderr, "%.0f simulated cycles on %s (%d kind casts)\n",
		res.Cycles, m.Name, res.Casts)
	if profile && res.Timers != nil {
		fmt.Fprint(os.Stderr, res.Timers.Report())
	}
	return runErr
}
