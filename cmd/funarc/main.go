// Command funarc reproduces the paper's motivating example (§II-B,
// Fig. 2): a brute-force sweep of all 2^8 mixed-precision variants of
// the funarc arc-length kernel, reporting the speedup-error scatter, the
// optimal frontier, and the Fig. 3-style diff of the frontier pick.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/search"
)

func main() {
	seed := flag.Int64("seed", 1, "noise seed")
	all := flag.Bool("all", false, "print every variant, not just the summary")
	flag.Parse()

	r, err := experiments.Fig2(context.Background(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "funarc:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderFig2(r))

	if *all {
		pts := append([]experiments.Point(nil), r.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].Speedup > pts[j].Speedup })
		fmt.Println("\nall variants (fastest first):")
		for _, p := range pts {
			marker := " "
			if p.Status != search.StatusPass && p.Status != search.StatusFail {
				marker = "!"
			}
			fmt.Printf("  %s %3.0f%% 32-bit  speedup %6.3f  err %9.3e\n",
				marker, p.Pct32, p.Speedup, p.RelErr)
		}
	}
}
