// Command prose is the PROSE-Go precision tuner CLI: it applies the
// paper's automated, performance-guided FPPT cycle to the bundled
// weather/climate model surrogates (or funarc).
//
// Usage:
//
//	prose models                       list the bundled tuning targets
//	prose baseline -model NAME         profile the baseline (Table I data)
//	prose atoms    -model NAME         list the search atoms
//	prose tune     -model NAME [...]   run the delta-debugging search
//	prose variant  -model NAME [...]   generate and print one variant
//	prose reduce   -model NAME -targets a,b  taint-based program reduction
//	prose profile  [MODEL]             shadow-execution numeric error profile
//	prose journal  <path>              inspect a journal + events sidecar
//	prose trace    <path>              analyze a span trace from tune -trace
//	prose fleet-status <addr>          live fleet view from a tune -debug-addr
//	prose runs     -ledger DIR [RUN]   list a run ledger / show one run's manifest
//	prose compare  -ledger DIR A B     diff two archived runs, gate on regression
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/fleet"
	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/interp"
	"repro/internal/journal"
	"repro/internal/ledger"
	"repro/internal/models"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
	"repro/internal/viz"
)

// Exit codes. A supervised search that failed fast still prints its
// partial report before exiting; scripts distinguish the abort kinds. A
// cancelled run (signal or wall-clock budget) exits 5 after flushing a
// resumable journal, so a scheduler can chain a -resume job on it.
const (
	exitErr        = 1 // generic failure
	exitUsage      = 2 // bad invocation
	exitBreaker    = 3 // resilience circuit breaker tripped
	exitQuarantine = 4 // resilience quarantine budget exhausted
	exitCancelled  = 5 // orderly shutdown: signal or wall-clock budget
	exitRegression = 6 // prose compare found a regression beyond thresholds
)

// exitCodeFor maps a command error to the process exit code.
func exitCodeFor(err error) int {
	if err == nil {
		return 0
	}
	var abort *resilience.AbortError
	if errors.As(err, &abort) {
		if abort.Reason == resilience.AbortQuarantine {
			return exitQuarantine
		}
		return exitBreaker
	}
	var cancelled *search.Cancelled
	if errors.As(err, &cancelled) {
		return exitCancelled
	}
	var reg *regressionError
	if errors.As(err, &reg) {
		return exitRegression
	}
	return exitErr
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	var err error
	switch os.Args[1] {
	case "models":
		err = cmdModels()
	case "baseline":
		err = cmdBaseline(os.Args[2:])
	case "atoms":
		err = cmdAtoms(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "variant":
		err = cmdVariant(os.Args[2:])
	case "reduce":
		err = cmdReduce(os.Args[2:])
	case "blame":
		err = cmdBlame(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "journal":
		err = cmdJournal(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "fleet-status":
		err = cmdFleetStatus(os.Args[2:])
	case "runs":
		err = cmdRuns(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "prose: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "prose:", err)
		os.Exit(exitCodeFor(err))
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: prose <command> [flags]

commands:
  models     list the bundled tuning targets
  baseline   profile a model baseline (hotspot share, per-procedure times)
  atoms      list a model's search atoms (tunable FP declarations)
  tune       run the delta-debugging precision-tuning search
  worker     serve evaluations to a tune -workers coordinator (spawned over
             pipes, or dialing a tune -listen address with -connect)
  variant    apply a precision assignment and print the generated source
  reduce     taint-based program reduction for target variables (paper III-C)
  blame      one-at-a-time precision sensitivity ranking (ADAPT-style)
  profile    shadow-execution numeric diagnosis: per-statement FP error,
             cancellation sites, and a one-run atom ranking
  journal    inspect a crash-safe journal and its resilience events sidecar
  trace      analyze a span trace written by tune -trace (critical path, phases)
  fleet-status
             poll a running tune -debug-addr for live fleet health: per-worker
             state, leases, reconnects, and the merged worker metrics
  runs       list a tune -ledger run archive, or show one run's manifest and
             its per-round search funnel
  compare    judge one archived run against a baseline run with regression
             thresholds (exit code 6 on regression)

run 'prose <command> -h' for flags.
`)
}

func modelFlag(fs *flag.FlagSet) *string {
	return fs.String("model", "funarc", "tuning target: funarc, mpas-a, adcirc, mom6")
}

func getModel(name string) (*models.Model, error) { return models.ByName(name) }

func cmdModels() error {
	for _, m := range models.All() {
		fmt.Printf("%-8s  hotspot %-22s  %s\n", m.Name, m.Hotspot, m.Description)
		fmt.Printf("          paper workload: %s\n", m.Paper)
	}
	return nil
}

func cmdBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	name := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	t, err := core.New(m, core.Options{Seed: 1})
	if err != nil {
		return err
	}
	bl := t.BaselineInfo()
	fmt.Printf("model %s: %d search atoms in %s\n", m.Name, bl.AtomCount, m.Hotspot)
	fmt.Printf("baseline: %.0f simulated cycles, hotspot %.0f (%.1f%%)\n",
		bl.TotalCycles, bl.HotspotCycles, 100*bl.HotspotShare)
	fmt.Printf("correctness metric: %s (threshold %.3e)\n", m.MetricName, bl.Threshold)
	fmt.Printf("%-52s %10s %14s %12s\n", "region", "calls", "self", "self/call")
	for _, r := range bl.Regions {
		fmt.Printf("%-52s %10d %14.0f %12.1f\n", r.Name, r.Calls, r.Self, r.PerCall())
	}
	return nil
}

func cmdAtoms(args []string) error {
	fs := flag.NewFlagSet("atoms", flag.ExitOnError)
	name := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	prog, err := m.Parse()
	if err != nil {
		return err
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	for _, a := range atoms {
		kind := fmt.Sprintf("real(kind=%d)", a.Decl.Kind)
		shape := "scalar"
		if a.Decl.IsArray() {
			shape = fmt.Sprintf("rank-%d array", len(a.Decl.Dims))
		}
		fmt.Printf("%-60s %-14s %s\n", a.QName, kind, shape)
	}
	fmt.Printf("%d atoms\n", len(atoms))
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	name := modelFlag(fs)
	whole := fs.Bool("whole-model", false, "guide the search by whole-model time (paper IV-C)")
	seed := fs.Int64("seed", 1, "seed for the Eq. (1) runtime-noise model")
	budget := fs.Int("budget", 0, "max distinct variant evaluations (0 = model default)")
	par := fs.Int("par", 1, "concurrent variant evaluations (results are identical at any level)")
	journalPath := fs.String("journal", "", "crash-safe evaluation journal (append-only JSONL; checkpoint at <path>.ckpt, resilience events at <path>.events)")
	resume := fs.Bool("resume", false, "replay an existing -journal to where it stopped, then continue")
	retries := fs.Int("retries", 0, "retry transient evaluation-infrastructure faults up to N times (variant outcomes are never retried)")
	breaker := fs.Int("breaker", 0, "fail fast after N consecutive hard infrastructure failures (0 = never; exit code 3)")
	failfast := fs.Bool("failfast", false, "fail fast on the first hard infrastructure failure (same as -breaker 1)")
	maxQuarantined := fs.Int("max-quarantined", 0, "abort once more than N distinct assignments are quarantined (0 = unlimited; exit code 4)")
	backoff := fs.Duration("retry-backoff", 0, "base retry backoff (capped exponential with seeded jitter; 0 = default 100ms)")
	retriesByClass := fs.String("retries-by-class", "", "per-class retry budgets as kind=N,kind=N (kinds: generic, scheduler-kill, oom, hang; default with -retries N: scheduler-kill=2N, oom=max(1,N/2), hang=N)")
	watchdog := fs.Duration("watchdog", 0, "abandon an evaluation attempt that produces no result within this wall-clock time and treat it as a transient infrastructure fault (0 = no watchdog)")
	halfOpen := fs.Bool("breaker-halfopen", false, "after the breaker trips, probe one evaluation (instead of aborting) and resume the search if it succeeds")
	wallBudget := fs.Duration("wall-budget", 0, "stop the whole run in an orderly fashion after this wall-clock time (exit code 5, journal stays resumable; 0 = unlimited)")
	drainGrace := fs.Duration("drain-grace", 0, "after a stop (signal or -wall-budget), let in-flight evaluations keep running this long before hard-cancelling them (0 = drain to completion)")
	tracePath := fs.String("trace", "", "write a span trace to this file (Chrome trace_event JSON; analyze with 'prose trace' or chrome://tracing)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address for the duration of the run (e.g. localhost:6060)")
	progressEvery := fs.Duration("progress", 0, "print a live progress heartbeat to stderr at this interval (0 = off)")
	numericsOn := fs.Bool("numerics", false, "shadow-execute every variant and attach numeric_* diagnostics to spans and metrics (diagnostic only: journal bytes unchanged)")
	ledgerDir := fs.String("ledger", "", "archive this run's manifest into the run ledger at DIR (inspect with 'prose runs' / 'prose compare'); with -journal, also streams decision telemetry to <journal>.decisions")
	decisionsPath := fs.String("decisions", "", "stream per-round search-decision telemetry to this file (byte-stable across -par and -resume; journal bytes unchanged)")
	engineName := fs.String("engine", "vm", "interpreter engine: vm (closure-compiled, default) or ast (reference tree-walker); bit-identical results either way")
	workers := fs.Int("workers", 0, "shard variant evaluation across N 'prose worker' subprocesses (0 = in-process); worker crashes become supervised retries and the journal stays byte-identical")
	leaseTTL := fs.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet: wall-clock budget per leased evaluation; an expired lease is failed as a hang fault and reassigned")
	workerHeartbeat := fs.Duration("worker-heartbeat", fleet.DefaultHeartbeat, "fleet: worker heartbeat interval (a silent worker is declared lost and replaced)")
	workerRestarts := fs.Int("worker-restarts", fleet.DefaultMaxRestarts, "fleet: respawns per worker slot before it is retired")
	minWorkers := fs.Int("min-workers", 1, "fleet: live-worker floor; below it the coordinator degrades to in-process evaluation (surfaced in the events sidecar, never silent)")
	fleetKillRate := fs.Float64("fleet-kill-rate", 0, "fault injection: each worker SIGKILLs itself before evaluating with this probability per (key, attempt), deterministic in -fleet-fault-seed")
	fleetFaultSeed := fs.Int64("fleet-fault-seed", 1, "fault injection: seed for -fleet-kill-rate decisions")
	fleetWedgeKey := fs.String("fleet-wedge-key", "", "fault injection: the worker leased this assignment key wedges (stops heartbeating) on its first attempt")
	listen := fs.String("listen", "", "fleet: accept -workers N off-host workers over TCP on this address instead of spawning subprocesses; workers dial in with 'prose worker -connect'")
	chaosDrop := fs.Float64("fleet-chaos-drop", 0, "network chaos (with -listen): drop each frame with this probability, deterministic in -fleet-chaos-seed")
	chaosDup := fs.Float64("fleet-chaos-dup", 0, "network chaos: deliver each frame twice with this probability")
	chaosReorder := fs.Float64("fleet-chaos-reorder", 0, "network chaos: hold each frame past its successor with this probability")
	chaosDelay := fs.Duration("fleet-chaos-delay", 0, "network chaos: add this latency to every frame")
	chaosPartition := fs.Float64("fleet-chaos-partition", 0, "network chaos: start a hard partition window at each frame with this probability (severs connections, eats dials)")
	chaosPartitionFor := fs.Duration("fleet-chaos-partition-for", 150*time.Millisecond, "network chaos: duration of each -fleet-chaos-partition window")
	chaosSeed := fs.Int64("fleet-chaos-seed", 1, "network chaos: seed for all chaos decisions")
	verbose := fs.Bool("v", false, "print each variant as it is evaluated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("tune: -resume requires -journal")
	}
	byClass, err := resilience.ParseRetryBudgets(*retriesByClass)
	if err != nil {
		return fmt.Errorf("tune: -retries-by-class: %w", err)
	}
	if byClass == nil {
		byClass = resilience.DefaultRetryBudgets(*retries)
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	opts := core.Options{
		Seed: *seed, WholeModel: *whole, MaxEvaluations: *budget,
		Parallelism: *par, JournalPath: *journalPath, Resume: *resume,
		Retries: *retries, Breaker: *breaker, FailFast: *failfast,
		MaxQuarantined: *maxQuarantined, RetryBackoff: *backoff,
		RetriesByClass: byClass, Watchdog: *watchdog,
		HalfOpen: *halfOpen, DrainGrace: *drainGrace,
		Numerics: *numericsOn, Engine: engine,
		LedgerDir: *ledgerDir, DecisionPath: *decisionsPath,
	}
	if opts.LedgerDir != "" && opts.DecisionPath == "" && *journalPath != "" {
		opts.DecisionPath = ledger.DecisionPath(*journalPath)
	}
	// Observability is strictly out-of-band: neither the tracer nor the
	// registry is part of the run fingerprint, and enabling them must
	// not change a single journal byte (test-enforced).
	if *tracePath != "" || *debugAddr != "" || *progressEvery > 0 || *numericsOn || *ledgerDir != "" {
		opts.Metrics = obs.NewRegistry()
	}
	if *tracePath != "" {
		opts.Trace = obs.NewTracer(fmt.Sprintf("model=%s seed=%d", m.Name, *seed))
	}
	if *verbose {
		opts.Progress = func(ev *search.Evaluation) {
			fmt.Printf("  variant %5.1f%% 32-bit: %-7s speedup %6.3f  err %9.3e  %s\n",
				ev.Pct32(), ev.Status, ev.Speedup, ev.RelError, ev.Detail)
		}
	}

	// Deadline layers: SIGINT/SIGTERM cancel the run's context for a
	// graceful shutdown (the batch scheduler's pre-kill warning lands
	// here), and -wall-budget arms a self-imposed deadline below the
	// scheduler's hard job limit. Both trigger the same orderly stop:
	// drain (bounded by -drain-grace), flush the journal and a final
	// checkpoint, print the partial report, exit 5.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *wallBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *wallBudget)
		defer cancel()
	}
	// Once the orderly stop has begun, restore default signal handling
	// so a second ^C (or a follow-up SIGTERM) kills the process hard
	// instead of being swallowed by the drain.
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	// -workers: build the worker fleet. The subprocesses are this very
	// binary running `prose worker` with the flags that shape the
	// evaluation stream (model, seed, whole-model, budget, engine); a
	// fingerprint handshake at spawn rejects any drift. Fleet knobs, like
	// parallelism, are not fingerprinted — the journal is byte-identical
	// at any pool size.
	var coord *fleet.Coordinator
	if *listen != "" && *workers == 0 {
		return fmt.Errorf("tune: -listen needs -workers N (the expected pool size)")
	}
	if *workers > 0 {
		if opts.Parallelism < *workers {
			// Fewer search slots than workers would leave workers idle.
			opts.Parallelism = *workers
		}
		fcfg := fleet.Config{
			Workers:     *workers,
			LeaseTTL:    *leaseTTL,
			Heartbeat:   *workerHeartbeat,
			MaxRestarts: *workerRestarts,
			MinWorkers:  *minWorkers,
			OnEvent: func(e fleet.Event) {
				if e.Type == fleet.EventDegraded {
					fmt.Fprintf(os.Stderr, "prose: fleet degraded to in-process evaluation: %s\n", e.Detail)
				}
			},
		}
		if *listen != "" {
			// -listen: off-host workers dial in over TCP instead of
			// being spawned. The fingerprint handshake still rejects
			// drift; the -fleet-chaos-* knobs inject deterministic
			// network faults for smoke runs and tests.
			ln, lerr := net.Listen("tcp", *listen)
			if lerr != nil {
				return fmt.Errorf("tune: -listen: %w", lerr)
			}
			ncfg := &fleet.NetConfig{Listener: ln}
			if *chaosDrop > 0 || *chaosDup > 0 || *chaosReorder > 0 || *chaosDelay > 0 || *chaosPartition > 0 {
				ncfg.Chaos = &fleet.ChaosConfig{
					Seed:         *chaosSeed,
					Drop:         *chaosDrop,
					Dup:          *chaosDup,
					Reorder:      *chaosReorder,
					Delay:        *chaosDelay,
					Partition:    *chaosPartition,
					PartitionFor: *chaosPartitionFor,
				}
			}
			fcfg.Net = ncfg
			fmt.Fprintf(os.Stderr, "prose: fleet listening on %s for %d worker(s); connect with: prose worker -connect %s -model %s -seed %d\n",
				ln.Addr(), *workers, ln.Addr(), m.Name, *seed)
		} else {
			exe, xerr := os.Executable()
			if xerr != nil {
				return fmt.Errorf("tune: -workers: %w", xerr)
			}
			wargs := []string{"worker",
				"-model", m.Name,
				fmt.Sprintf("-seed=%d", *seed),
				fmt.Sprintf("-budget=%d", *budget),
				"-engine", *engineName,
				fmt.Sprintf("-heartbeat=%s", *workerHeartbeat),
			}
			if *whole {
				wargs = append(wargs, "-whole-model")
			}
			if *fleetKillRate > 0 {
				wargs = append(wargs,
					fmt.Sprintf("-fault-kill-rate=%g", *fleetKillRate),
					fmt.Sprintf("-fault-seed=%d", *fleetFaultSeed))
			}
			if *fleetWedgeKey != "" {
				wargs = append(wargs, "-fault-wedge-key", *fleetWedgeKey)
			}
			fcfg.Spawn = fleet.Command(exe, wargs...)
		}
		coord, err = fleet.New(fcfg)
		if err != nil {
			return fmt.Errorf("tune: %w", err)
		}
		opts.Fleet = coord
	}

	t, err := core.New(m, opts)
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		var extras []obs.DebugHandler
		if coord != nil {
			extras = append(extras, obs.DebugHandler{Pattern: "/debug/fleet", Handler: coord.DebugHandler()})
		}
		dbg, derr := obs.ServeDebug(*debugAddr, opts.Metrics, extras...)
		if derr != nil {
			return fmt.Errorf("tune: -debug-addr: %w", derr)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug: serving metrics and pprof on http://%s/debug/metrics\n", dbg.Addr())
	}
	var heartbeat *obs.Progress
	if *progressEvery > 0 {
		heartbeat = obs.NewProgress(os.Stderr, *progressEvery, opts.Metrics, int64(t.EvaluationBudget()))
		heartbeat.Start()
	}

	res, err := t.Run(ctx)

	// Stop the heartbeat before the report so the final progress line
	// cannot interleave with it; flush the trace even on a cancelled or
	// aborted run — a partial trace of a failed run is the useful one.
	heartbeat.Stop()
	if opts.Trace != nil {
		if werr := opts.Trace.WriteFile(*tracePath); werr != nil {
			if err == nil {
				err = fmt.Errorf("tune: writing trace: %w", werr)
			} else {
				fmt.Fprintf(os.Stderr, "prose: writing trace: %v\n", werr)
			}
		} else {
			fmt.Fprintf(os.Stderr, "trace: %d span(s) written to %s\n", opts.Trace.Len(), *tracePath)
		}
	}
	if res == nil {
		return err
	}
	// Graceful degradation: a supervised abort (tripped breaker,
	// exhausted quarantine budget) still returns the partial result —
	// print the report and best-so-far, then surface the abort as the
	// exit status so scripts notice the search did not finish.
	if res.Resumed > 0 {
		fmt.Printf("resumed: %d evaluation(s) replayed from %s, %d run fresh\n",
			res.Resumed, *journalPath, len(res.Outcome.Log.Evals)-res.Resumed)
	}
	fmt.Print(res.Render())
	return err
}

func cmdVariant(args []string) error {
	fs := flag.NewFlagSet("variant", flag.ExitOnError)
	name := modelFlag(fs)
	lower := fs.String("lower", "", "comma-separated atoms to lower to 32-bit, or 'all'")
	keep := fs.String("keep", "", "comma-separated atoms kept at 64-bit (with -lower all)")
	diff := fs.Bool("diff", false, "print only changed declarations instead of full source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	prog, err := m.Parse()
	if err != nil {
		return err
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	var a transform.Assignment
	if *lower == "all" {
		a = transform.Uniform(atoms, 4)
	} else {
		a = transform.Assignment{}
		for _, q := range splitList(*lower) {
			a[q] = 4
		}
	}
	for _, q := range splitList(*keep) {
		a[q] = 8
	}
	v, err := transform.Apply(prog, a)
	if err != nil {
		return err
	}
	if *diff {
		printDeclDiff(prog, v.Prog)
	} else {
		fmt.Print(ft.Print(v.Prog))
	}
	fmt.Fprintf(os.Stderr, "(%d wrapper(s) inserted)\n", v.Wrappers)
	return nil
}

// printDeclDiff prints declaration changes in the paper's Fig. 3 style.
func printDeclDiff(base, variant *ft.Program) {
	baseKinds := map[string]int{}
	for _, d := range ft.RealDecls(base) {
		baseKinds[d.QName()] = d.Kind
	}
	var lines []string
	for _, d := range ft.RealDecls(variant) {
		if old, ok := baseKinds[d.QName()]; ok && old != d.Kind {
			lines = append(lines, fmt.Sprintf("- real(kind=%d) :: %s\n+ %s", old, d.QName(), ft.DeclString(d)))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	for _, w := range transform.WrapperNames(variant) {
		fmt.Printf("+ wrapper %s\n", w)
	}
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ExitOnError)
	name := modelFlag(fs)
	targets := fs.String("targets", "", "comma-separated target variable qualified names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targets == "" {
		return fmt.Errorf("reduce: -targets is required")
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	prog, err := m.Parse()
	if err != nil {
		return err
	}
	red, stats, err := transform.Reduce(prog, splitList(*targets))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s\n", stats)
	fmt.Print(ft.Print(red))
	return nil
}

func cmdBlame(args []string) error {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	name := modelFlag(fs)
	seed := fs.Int64("seed", 1, "noise seed")
	limit := fs.Int("top", 15, "show the top N atoms (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	rep, err := blame.Analyze(m, core.Options{Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render(*limit))
	return nil
}

// cmdProfile runs the shadow-execution numeric diagnosis: ONE
// instrumented run of the (default all-float32) variant with a float64
// shadow lane, reporting per-statement error introduction, cancellation
// sites, non-finite provenance, and the one-run atom ranking.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name := modelFlag(fs)
	lower := fs.String("lower", "all", "comma-separated atoms to lower to 32-bit, or 'all'")
	top := fs.Int("top", 10, "show the top N statements/atoms (0 = all)")
	cancelBits := fs.Float64("cancel-bits", numerics.DefaultCancelBits,
		"bits of magnitude collapse that count as a cancellation")
	format := fs.String("format", "text", "output format: text (human-readable) or json (machine-readable dump)")
	htmlPath := fs.String("html", "", "also write a per-procedure error heatmap to this HTML file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 1 {
		*name = fs.Arg(0)
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	sopts := blame.ShadowOptions{Numerics: numerics.Options{CancelBits: *cancelBits}}
	if *lower != "all" {
		a := transform.Assignment{}
		for _, q := range splitList(*lower) {
			a[q] = 4
		}
		sopts.Assignment = a
	}
	rep, err := blame.ShadowAnalyze(m, sopts)
	if err != nil {
		return err
	}

	switch *format {
	case "text":
		fmt.Print(rep.Profile.Render(*top))
		fmt.Println()
		fmt.Print(rep.Render(*top))
	case "json":
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	default:
		return fmt.Errorf("profile: unknown -format %q (want text or json)", *format)
	}

	if *htmlPath != "" {
		h := rep.Profile.Heatmap()
		page := viz.Page(fmt.Sprintf("numeric error heatmap: %s", m.Name), h.HTML())
		if err := os.WriteFile(*htmlPath, []byte(page), 0o644); err != nil {
			return fmt.Errorf("profile: writing heatmap: %w", err)
		}
		fmt.Fprintf(os.Stderr, "heatmap: written to %s\n", *htmlPath)
	}
	return nil
}

// cmdJournal inspects a crash-safe journal plus its checkpoint and
// resilience events sidecar, read-only: record/status counts, resume
// state, and the retry/backoff/quarantine/watchdog telemetry that the
// byte-deterministic journal proper deliberately excludes.
func cmdJournal(args []string) error {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	path := fs.String("journal", "", "journal path to inspect (or pass it as the positional argument)")
	records := fs.Bool("records", false, "also list every journaled evaluation")
	format := fs.String("format", "text", "output format: text (human-readable) or json (machine-readable dump)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("journal: usage: prose journal <path>")
	}
	switch *format {
	case "text":
		// fall through to the plain-text path below, which stays
		// byte-identical to what it printed before -format existed
	case "json":
		return journalJSON(*path, *records)
	default:
		return fmt.Errorf("journal: unknown -format %q (want text or json)", *format)
	}

	h, recs, err := journal.Inspect(*path)
	if err != nil {
		return err
	}
	fmt.Printf("journal %s\n", *path)
	fmt.Printf("  model: %s  fingerprint: %.12s...\n", h.Model, h.Fingerprint)
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Status]++
	}
	fmt.Printf("  evaluations: %d  (%s)\n", len(recs), formatCounts(counts))
	if *records {
		for _, r := range recs {
			fmt.Printf("  %4d  %-7s  speedup %6.3f  err %9.3e  lowered %d/%d  %s\n",
				r.Index, r.Status, r.Speedup, r.RelError, r.Lowered, r.TotalAtoms, r.Detail)
		}
	}

	if ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(*path)); err != nil {
		fmt.Printf("  checkpoint: unreadable (%v)\n", err)
	} else if !ok {
		fmt.Printf("  checkpoint: none\n")
	} else if ck.Done {
		fmt.Printf("  checkpoint: done after %d evaluation(s), converged=%v, minimal set %d atom(s)\n",
			ck.Evaluations, ck.Converged, len(ck.Minimal))
	} else {
		fmt.Printf("  checkpoint: in progress at %d evaluation(s) — resumable with -resume\n", ck.Evaluations)
	}

	epath := journal.EventsPath(*path)
	_, evs, err := journal.InspectEvents(epath)
	if os.IsNotExist(err) {
		fmt.Printf("  events: no sidecar (run was not supervised)\n")
		return nil
	}
	if err != nil {
		return err
	}
	byType := map[string]int{}
	byKind := map[string]int{}
	var totalBackoff time.Duration
	for _, e := range evs {
		byType[e.Type]++
		if e.Kind != "" {
			byKind[e.Kind]++
		}
		totalBackoff += time.Duration(e.BackoffNS)
	}
	fmt.Printf("events %s\n", epath)
	fmt.Printf("  total: %d  (%s)\n", len(evs), formatCounts(byType))
	if len(byKind) > 0 {
		fmt.Printf("  fault kinds: %s\n", formatCounts(byKind))
	}
	if byType[journal.EventRetry] > 0 {
		fmt.Printf("  backoff: %v slept across %d retry(ies)\n", totalBackoff, byType[journal.EventRetry])
	}
	if n := byType[journal.EventWatchdog]; n > 0 {
		fmt.Printf("  watchdog: %d hung attempt(s) abandoned\n", n)
	}
	if n := byType[journal.EventSalvaged]; n > 0 {
		fmt.Printf("  salvaged: %d evaluation(s) rescued from aborted batches\n", n)
	}
	if n := byType[journal.EventCancelled]; n > 0 {
		fmt.Printf("  cancelled: %d orderly shutdown(s) recorded\n", n)
	}
	if n := byType[fleet.EventLeaseGrant]; n > 0 {
		fmt.Printf("  fleet: %d lease(s) granted, %d expired, %d late result(s) dropped\n",
			n, byType[fleet.EventLeaseExpired], byType[fleet.EventLateResult])
		deaths := byType[fleet.EventWorkerExit] + byType[fleet.EventWorkerLost]
		if deaths+byType[fleet.EventWorkerRestart]+byType[fleet.EventWorkerDead] > 0 {
			fmt.Printf("  fleet workers: %d death(s), %d restart(s), %d retired\n",
				deaths, byType[fleet.EventWorkerRestart], byType[fleet.EventWorkerDead])
		}
		if n := byType[fleet.EventWorkerReconnect] + byType[fleet.EventPartitionExpired] + byType[fleet.EventDupRefused]; n > 0 {
			fmt.Printf("  fleet network: %d reconnect(s), %d partition-expired lease(s), %d duplicate frame(s) refused\n",
				byType[fleet.EventWorkerReconnect], byType[fleet.EventPartitionExpired], byType[fleet.EventDupRefused])
		}
		if n := byType[fleet.EventDegraded]; n > 0 {
			fmt.Printf("  fleet DEGRADED to in-process evaluation (%d transition(s))\n", n)
		}
	}
	return nil
}

// journalDump is the machine-readable shape of 'prose journal -format
// json': the same facts the text report prints, plus a metrics map
// keyed by the internal/obs counter names so a journal inspected after
// the fact and a live run's metrics snapshot aggregate the same way.
type journalDump struct {
	Path        string                `json:"path"`
	Model       string                `json:"model,omitempty"`
	Fingerprint string                `json:"fingerprint"`
	Evaluations int                   `json:"evaluations"`
	Statuses    map[string]int        `json:"statuses"`
	Metrics     map[string]int64      `json:"metrics"`
	Checkpoint  *journal.Checkpoint   `json:"checkpoint,omitempty"`
	Records     []journal.Record      `json:"records,omitempty"`
	Events      []journal.EventRecord `json:"events,omitempty"`
}

// journalJSON implements 'prose journal -format json'. It is a
// separate function from the text path so the default text output
// cannot drift: that path is untouched.
func journalJSON(path string, records bool) error {
	h, recs, err := journal.Inspect(path)
	if err != nil {
		return err
	}
	dump := journalDump{
		Path:        path,
		Model:       h.Model,
		Fingerprint: h.Fingerprint,
		Evaluations: len(recs),
		Statuses:    map[string]int{},
		Metrics:     map[string]int64{},
	}
	dump.Metrics[obs.MetricEvals] = int64(len(recs))
	for _, r := range recs {
		dump.Statuses[r.Status]++
		dump.Metrics[obs.MetricEvalsPrefix+r.Status]++
	}
	if records {
		dump.Records = recs
	}
	if ck, ok, err := journal.LoadCheckpoint(journal.CheckpointPath(path)); err == nil && ok {
		dump.Checkpoint = &ck
	}
	if _, evs, err := journal.InspectEvents(journal.EventsPath(path)); err == nil {
		dump.Events = evs
		for _, e := range evs {
			dump.Metrics[obs.MetricEventsPrefix+e.Type]++
			switch e.Type {
			case journal.EventRetry:
				dump.Metrics[obs.MetricRetries]++
				if e.Kind != "" {
					dump.Metrics[obs.MetricRetriesPrefix+e.Kind]++
				}
			case journal.EventQuarantine:
				dump.Metrics[obs.MetricQuarantined]++
			case journal.EventSalvaged:
				dump.Metrics[obs.MetricSalvaged]++
			case fleet.EventLeaseGrant:
				dump.Metrics[obs.MetricFleetLeases]++
			case fleet.EventLeaseExpired:
				dump.Metrics[obs.MetricFleetLeaseExpired]++
			case fleet.EventLateResult:
				dump.Metrics[obs.MetricFleetLateResults]++
			case fleet.EventWorkerExit, fleet.EventWorkerLost:
				dump.Metrics[obs.MetricFleetWorkerExits]++
			case fleet.EventWorkerRestart:
				dump.Metrics[obs.MetricFleetRestarts]++
			case fleet.EventWorkerReconnect:
				dump.Metrics[obs.MetricFleetNetReconnects]++
			case fleet.EventPartitionExpired:
				dump.Metrics[obs.MetricFleetNetPartitionExpired]++
			case fleet.EventDupRefused:
				dump.Metrics[obs.MetricFleetNetDupRefused]++
			}
		}
	}
	b, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// cmdTrace analyzes a span trace written by 'prose tune -trace': span
// counts, the critical path through each root, and a per-phase
// self/inclusive time table in the gptl timing-report format. The
// telescoping self-time definition (self = duration minus the sum of
// direct children) guarantees the self column sums exactly to the root
// span's duration.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	path := fs.String("trace", "", "trace path to analyze (or pass it as the positional argument)")
	top := fs.Int("top", 0, "limit the per-phase table to the top N phases by self time (0 = all)")
	tree := fs.Bool("tree", false, "also print the span tree")
	depth := fs.Int("depth", 4, "span tree depth limit (with -tree)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("trace: usage: prose trace <path>")
	}

	recs, meta, err := obs.LoadTrace(*path)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n", *path)
	if fp := meta["fingerprint"]; fp != "" {
		fmt.Printf("  run: %s\n", fp)
	}
	roots := obs.BuildTree(recs)
	fmt.Printf("  spans: %d in %d tree(s)  (%s)\n", len(recs), len(roots), formatCounts(obs.CountByName(recs)))

	// A distributed run's trace carries worker-side spans in their own
	// pid lanes (obs.WorkerPIDBase+slot); summarize the processes so a
	// cross-process trace is legible before opening chrome://tracing.
	byPID := map[int]int{}
	for _, r := range recs {
		byPID[r.PID]++
	}
	if len(byPID) > 1 {
		pids := make([]int, 0, len(byPID))
		for pid := range byPID {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		parts := make([]string, 0, len(pids))
		for _, pid := range pids {
			label := "coordinator"
			if pid >= obs.WorkerPIDBase {
				label = fmt.Sprintf("worker pid %d (slot %d)", pid, pid-obs.WorkerPIDBase)
			}
			parts = append(parts, fmt.Sprintf("%s %d span(s)", label, byPID[pid]))
		}
		fmt.Printf("  processes: %s\n", strings.Join(parts, "; "))
	}

	for _, root := range roots {
		fmt.Printf("  root %s: %v\n", root.Rec.Name, root.Rec.Dur.Round(time.Microsecond))
		cp := obs.CriticalPath(root)
		parts := make([]string, len(cp))
		for i, n := range cp {
			parts[i] = fmt.Sprintf("%s %v", n.Rec.Name, n.Rec.Dur.Round(time.Microsecond))
		}
		fmt.Printf("  critical path: %s\n", strings.Join(parts, " -> "))
	}

	fmt.Printf("\nper-phase times (self telescopes to the root duration):\n")
	table := gptl.FormatRegions(obs.PhaseRegions(roots))
	if *top > 0 {
		lines := strings.SplitAfter(table, "\n")
		if len(lines) > *top+1 { // header + top rows
			table = strings.Join(lines[:*top+1], "")
		}
	}
	fmt.Print(table)

	if *tree {
		fmt.Printf("\nspan tree (depth <= %d):\n", *depth)
		for _, root := range roots {
			fmt.Print(obs.RenderTree(root, *depth))
		}
	}
	return nil
}

// cmdFleetStatus polls a running coordinator's /debug/fleet endpoint
// (served by tune -debug-addr) and renders a live fleet view: pool
// stats, per-worker health, and the merged fleet.workers.* metrics the
// workers ship piggybacked on their heartbeats. One sample by default;
// -watch re-polls and derives a leases/s throughput between samples.
func cmdFleetStatus(args []string) error {
	fs := flag.NewFlagSet("fleet-status", flag.ExitOnError)
	addr := fs.String("addr", "", "tune -debug-addr address to poll (or pass it as the positional argument)")
	format := fs.String("format", "text", "output format: text (human-readable) or json (raw /debug/fleet document)")
	watch := fs.Duration("watch", 0, "re-poll at this interval instead of sampling once (0 = once)")
	count := fs.Int("count", 0, "with -watch: stop after N samples (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" && fs.NArg() == 1 {
		*addr = fs.Arg(0)
	}
	if *addr == "" {
		return fmt.Errorf("fleet-status: usage: prose fleet-status <debug-addr>")
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("fleet-status: unknown -format %q (want text or json)", *format)
	}
	url := "http://" + *addr + "/debug/fleet"
	var (
		prevLeases int64
		prevAt     time.Time
	)
	for sample := 1; ; sample++ {
		st, err := fetchFleetStatus(url)
		if err != nil {
			return fmt.Errorf("fleet-status: %w", err)
		}
		now := time.Now()
		switch *format {
		case "json":
			b, merr := json.MarshalIndent(st, "", "  ")
			if merr != nil {
				return merr
			}
			fmt.Println(string(b))
		default:
			leasesPerSec := -1.0
			if sample > 1 {
				if dt := now.Sub(prevAt).Seconds(); dt > 0 {
					leasesPerSec = float64(st.Stats.Leases-prevLeases) / dt
				}
			}
			renderFleetStatus(*addr, st, leasesPerSec)
		}
		prevLeases, prevAt = st.Stats.Leases, now
		if *watch <= 0 || (*count > 0 && sample >= *count) {
			return nil
		}
		time.Sleep(*watch)
	}
}

// fetchFleetStatus GETs and decodes one /debug/fleet document.
func fetchFleetStatus(url string) (*fleet.FleetStatus, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st fleet.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &st, nil
}

// renderFleetStatus prints the text view of one /debug/fleet sample.
// leasesPerSec < 0 means "no previous sample" and omits the line.
func renderFleetStatus(addr string, st *fleet.FleetStatus, leasesPerSec float64) {
	s := st.Stats
	fmt.Printf("fleet @ %s\n", addr)
	fmt.Printf("  workers: %d/%d alive   leases: %d granted, %d expired, %d late dropped\n",
		s.Alive, s.Workers, s.Leases, s.Expired, s.Late)
	if s.Exits+s.Restarts+s.Reconnects+s.PartitionExpired+s.DupRefused+s.FrameErrors > 0 {
		fmt.Printf("  faults: %d death(s), %d restart(s), %d reconnect(s), %d partition-expired, %d dup refused, %d frame error(s)\n",
			s.Exits, s.Restarts, s.Reconnects, s.PartitionExpired, s.DupRefused, s.FrameErrors)
	}
	if s.Degraded {
		fmt.Printf("  DEGRADED to in-process evaluation (%d local eval(s)): %s\n", s.LocalEvals, s.DegradeDetail)
	}
	if leasesPerSec >= 0 {
		fmt.Printf("  throughput: %.2f lease(s)/s since last sample\n", leasesPerSec)
	}
	fmt.Printf("  %3s %-9s %7s %-10s %7s %9s %9s %8s  %s\n",
		"id", "state", "pid", "session", "leases", "restarts", "hb-age", "obs-seq", "last fault")
	for _, w := range st.Workers {
		hb, pid, sess, fault := "-", "-", w.Session, w.LastFault
		if w.HeartbeatAgeMS >= 0 {
			hb = (time.Duration(w.HeartbeatAgeMS) * time.Millisecond).String()
		}
		if w.Pid != 0 {
			pid = strconv.Itoa(w.Pid)
		}
		if sess == "" {
			sess = "-"
		}
		if fault == "" {
			fault = "-"
		}
		fmt.Printf("  %3d %-9s %7s %-10s %7d %9d %9s %8d  %s\n",
			w.ID, w.State, pid, sess, w.LeasesDone, w.Restarts, hb, w.MetricsSeq, fault)
	}
	renderWorkerMetrics(st.WorkerMetrics)
}

// renderWorkerMetrics prints the merged worker-shipped registry slice
// (the coordinator already filtered it to the fleet.workers.* namespace).
func renderWorkerMetrics(s obs.Snapshot) {
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) == 0 {
		return
	}
	fmt.Printf("  worker metrics (merged):\n")
	ck := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ck = append(ck, k)
	}
	sort.Strings(ck)
	for _, k := range ck {
		fmt.Printf("    %-52s %12d\n", k, s.Counters[k])
	}
	gk := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gk = append(gk, k)
	}
	sort.Strings(gk)
	for _, k := range gk {
		fmt.Printf("    %-52s %12g\n", k, s.Gauges[k])
	}
	hk := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		h := s.Histograms[k]
		q := h.Quantiles()
		fmt.Printf("    %-52s n=%d mean=%.0f min=%.0f max=%.0f p50=%.0f p95=%.0f p99=%.0f\n",
			k, h.Count, h.Mean, h.Min, h.Max, q.P50, q.P95, q.P99)
	}
}

// formatCounts renders a count map as "k1 n1  k2 n2", keys sorted.
func formatCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s %d", k, m[k])
	}
	return strings.Join(parts, "  ")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
