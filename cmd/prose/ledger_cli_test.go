package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ledger"
)

// TestLedgerCLI drives the full cross-run flow end to end: two tunes
// archived into one ledger, `prose runs` listing and detail, and
// `prose compare` in both the pass and the forced-regression direction.
func TestLedgerCLI(t *testing.T) {
	dir := t.TempDir()
	led := filepath.Join(dir, "ledger")

	// Run A: the full funarc search. Run B: starved to 3 evaluations,
	// which deterministically loses the passing variant and convergence.
	if err := cmdTune([]string{"-model", "funarc", "-journal", filepath.Join(dir, "a.jsonl"), "-ledger", led}); err != nil {
		t.Fatalf("tune A: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-budget", "3", "-journal", filepath.Join(dir, "b.jsonl"), "-ledger", led}); err != nil {
		t.Fatalf("tune B: %v", err)
	}

	var rerr error
	out := captureStdout(t, func() { rerr = cmdRuns([]string{"-ledger", led}) })
	if rerr != nil {
		t.Fatalf("runs: %v", rerr)
	}
	if !strings.Contains(out, "2 run(s)") {
		t.Errorf("runs did not list both runs:\n%s", out)
	}

	store, err := ledger.Open(led)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := store.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("List: %d entries, err=%v", len(entries), err)
	}
	idA, idB := entries[0].ID, entries[1].ID

	// JSON listing parses and is filterable by model.
	out = captureStdout(t, func() { rerr = cmdRuns([]string{"-ledger", led, "-format", "json", "-model", "funarc"}) })
	if rerr != nil {
		t.Fatalf("runs -format json: %v", rerr)
	}
	var listed []ledger.IndexEntry
	if err := json.Unmarshal([]byte(out), &listed); err != nil || len(listed) != 2 {
		t.Fatalf("json listing: %d entries, err=%v\n%s", len(listed), err, out)
	}
	out = captureStdout(t, func() { rerr = cmdRuns([]string{"-ledger", led, "-model", "mom6"}) })
	if rerr != nil || !strings.Contains(out, "0 run(s)") {
		t.Errorf("model filter: err=%v\n%s", rerr, out)
	}

	// Run detail by unique prefix includes the manifest and the funnel.
	out = captureStdout(t, func() { rerr = cmdRuns([]string{"-ledger", led, idA[:12]}) })
	if rerr != nil {
		t.Fatalf("runs <id>: %v", rerr)
	}
	for _, want := range []string{"fingerprint", "search funnel", "round  cands"} {
		if !strings.Contains(out, want) {
			t.Errorf("run detail misses %q:\n%s", want, out)
		}
	}

	// The standalone funnel reader works straight off the decision file.
	out = captureStdout(t, func() { rerr = cmdRuns([]string{"-decisions", filepath.Join(dir, "a.jsonl.decisions")}) })
	if rerr != nil || !strings.Contains(out, "round  cands") {
		t.Errorf("runs -decisions: err=%v\n%s", rerr, out)
	}

	// Pass direction: a run against itself.
	out = captureStdout(t, func() { rerr = cmdCompare([]string{"-ledger", led, idA, idA}) })
	if rerr != nil {
		t.Errorf("self-compare regressed: %v\n%s", rerr, out)
	}
	if !strings.Contains(out, "result: PASS") {
		t.Errorf("self-compare output:\n%s", out)
	}

	// Forced regression: the starved run against the full run.
	out = captureStdout(t, func() { rerr = cmdCompare([]string{"-ledger", led, idA, idB}) })
	if rerr == nil {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	var reg *regressionError
	if !errors.As(rerr, &reg) {
		t.Fatalf("compare returned %T, want *regressionError", rerr)
	}
	if got := exitCodeFor(rerr); got != exitRegression {
		t.Errorf("exit code %d, want %d", got, exitRegression)
	}
	if !strings.Contains(out, "result: REGRESSION") {
		t.Errorf("regression output:\n%s", out)
	}

	// JSON comparison parses and carries the regression list.
	out = captureStdout(t, func() { rerr = cmdCompare([]string{"-ledger", led, "-format", "json", idA, idB}) })
	if rerr == nil {
		t.Error("json compare lost the regression")
	}
	var cmp ledger.Comparison
	if err := json.Unmarshal([]byte(out), &cmp); err != nil || len(cmp.Regressions) == 0 {
		t.Errorf("json comparison: err=%v regressions=%v", err, cmp.Regressions)
	}

	// Usage errors.
	if err := cmdRuns(nil); err == nil {
		t.Error("runs without -ledger accepted")
	}
	if err := cmdCompare([]string{"-ledger", led, idA}); err == nil {
		t.Error("compare with one run accepted")
	}
	if err := cmdCompare([]string{"-ledger", led, idA, "no-such-run"}); err == nil {
		t.Error("compare with an unknown run accepted")
	}
}

// TestObsCLIHardening: `prose trace`, `prose journal` (text and json),
// and the ledger readers must reject empty or truncated input files
// with a graceful error — exit code 1, never a panic.
func TestObsCLIHardening(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("{\"truncated\": [1, 2"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func(path string) error
	}{
		{"trace", func(p string) error { return cmdTrace([]string{p}) }},
		{"journal-text", func(p string) error { return cmdJournal([]string{p}) }},
		{"journal-json", func(p string) error { return cmdJournal([]string{"-format", "json", p}) }},
		{"runs-decisions", func(p string) error { return cmdRuns([]string{"-decisions", p}) }},
		{"compare-manifests", func(p string) error { return cmdCompare([]string{p, p}) }},
	}
	for _, tc := range cases {
		for _, input := range []string{empty, garbage} {
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s on %s panicked: %v", tc.name, filepath.Base(input), r)
					}
				}()
				return tc.run(input)
			}()
			if err == nil {
				t.Errorf("%s accepted %s", tc.name, filepath.Base(input))
				continue
			}
			if got := exitCodeFor(err); got != exitErr {
				t.Errorf("%s on %s: exit code %d, want %d (err: %v)", tc.name, filepath.Base(input), got, exitErr, err)
			}
		}
	}
}

// TestJournalTextTruncatedTail: a journal whose final line was torn by
// a crash still inspects cleanly (the torn tail is dropped by design),
// in both text and JSON form.
func TestJournalTextTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path}); err != nil {
		t.Fatalf("tune: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdJournal([]string{path}); err != nil {
		t.Errorf("journal on torn tail: %v", err)
	}
	out := captureStdout(t, func() { err = cmdJournal([]string{"-format", "json", path}) })
	if err != nil {
		t.Errorf("journal -format json on torn tail: %v", err)
	}
	if !json.Valid([]byte(out)) {
		t.Error("torn-tail JSON dump is not valid JSON")
	}
}
