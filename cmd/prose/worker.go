package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/interp"
)

// cmdWorker serves evaluations to a `prose tune -workers N` coordinator
// over stdin/stdout. It is spawned by the coordinator, not usually run
// by hand: stdin carries lease messages, stdout carries heartbeats and
// results, stderr passes through for diagnostics.
//
// The flags that shape the evaluation stream (model, seed, whole-model,
// budget, engine) must match the coordinator's; the fingerprint
// handshake at startup rejects any drift. The -fault-* flags are fault
// injection for the fleet's own tests and smoke runs.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	name := modelFlag(fs)
	whole := fs.Bool("whole-model", false, "guide the search by whole-model time (must match the coordinator)")
	seed := fs.Int64("seed", 1, "seed for the Eq. (1) runtime-noise model (must match the coordinator)")
	budget := fs.Int("budget", 0, "max distinct variant evaluations (must match the coordinator)")
	engineName := fs.String("engine", "vm", "interpreter engine (must match the coordinator)")
	heartbeat := fs.Duration("heartbeat", fleet.DefaultHeartbeat, "heartbeat interval while evaluating")
	connect := fs.String("connect", "", "dial a 'prose tune -listen' coordinator over TCP instead of serving stdin/stdout; reconnects with session resume on connection loss")
	session := fs.String("session", "", "with -connect: stable session ID for lease resume across reconnects (default: random)")
	missLimit := fs.Int("heartbeat-miss-limit", fleet.DefaultHeartbeatMissLimit, "with -connect: consecutive failed heartbeat sends before the worker reconnects")
	reconnectBackoff := fs.Duration("reconnect-backoff", fleet.DefaultReconnectBackoff, "with -connect: base backoff between dial attempts (doubles, capped)")
	maxDials := fs.Int("max-dials", fleet.DefaultMaxDials, "with -connect: dial attempts per reconnect before giving up")
	killRate := fs.Float64("fault-kill-rate", 0, "fault injection: SIGKILL self before evaluating with this probability per (key, attempt)")
	faultSeed := fs.Int64("fault-seed", 1, "fault injection: seed for -fault-kill-rate decisions")
	crashKey := fs.String("fault-crash-key", "", "fault injection: SIGKILL self when leased this assignment key")
	wedgeKey := fs.String("fault-wedge-key", "", "fault injection: wedge (stop heartbeating) on this key's first attempt")
	slowKey := fs.String("fault-slow-key", "", "fault injection: delay the result for this key's first attempt by -fault-slow")
	slow := fs.Duration("fault-slow", 0, "fault injection: delay applied with -fault-slow-key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	m, err := getModel(*name)
	if err != nil {
		return err
	}
	if *connect == "" {
		// The coordinator owns this process's lifetime: a ^C at the
		// terminal reaches the whole process group, but the orderly
		// path is the coordinator's shutdown message (or it killing
		// us), not the worker racing it to exit mid-lease. A -connect
		// worker runs by hand on a remote host instead, so it keeps
		// default signal handling.
		signal.Ignore(os.Interrupt, syscall.SIGTERM)
	}
	t, err := core.New(m, core.Options{
		Seed: *seed, WholeModel: *whole, MaxEvaluations: *budget, Engine: engine,
	})
	if err != nil {
		return err
	}
	if *connect != "" {
		return fleet.ServeNet(fleet.NetServeConfig{
			Addr:               *connect,
			Eval:               t,
			Fingerprint:        t.Fingerprint(),
			Session:            *session,
			Heartbeat:          *heartbeat,
			HeartbeatMissLimit: *missLimit,
			ReconnectBackoff:   *reconnectBackoff,
			MaxDials:           *maxDials,
			Fault: fleet.WorkerFaults{
				KillRate: *killRate,
				Seed:     *faultSeed,
				CrashKey: *crashKey,
				WedgeKey: *wedgeKey,
				SlowKey:  *slowKey,
				Slow:     *slow,
			},
		})
	}
	return fleet.Serve(fleet.ServeConfig{
		Transport:   fleet.NewPipeTransport(os.Stdin, os.Stdout),
		Eval:        t,
		Fingerprint: t.Fingerprint(),
		Heartbeat:   *heartbeat,
		Fault: fleet.WorkerFaults{
			KillRate: *killRate,
			Seed:     *faultSeed,
			CrashKey: *crashKey,
			WedgeKey: *wedgeKey,
			SlowKey:  *slowKey,
			Slow:     *slow,
		},
	})
}
