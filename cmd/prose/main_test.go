package main

import (
	"path/filepath"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":          nil,
		"a":         {"a"},
		"a,b":       {"a", "b"},
		" a , ,b, ": {"a", "b"},
	}
	for in, want := range cases {
		got := splitList(in)
		if len(got) != len(want) {
			t.Errorf("splitList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitList(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestGetModelErrors(t *testing.T) {
	if _, err := getModel("nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if m, err := getModel("mpas-a"); err != nil || m.Name != "mpas-a" {
		t.Errorf("getModel(mpas-a) = %v, %v", m, err)
	}
}

func TestCommandErrorPaths(t *testing.T) {
	if err := cmdReduce([]string{"-model", "funarc"}); err == nil {
		t.Error("reduce without -targets accepted")
	}
	if err := cmdReduce([]string{"-model", "funarc", "-targets", "ghost.var"}); err == nil {
		t.Error("reduce with unknown target accepted")
	}
	if err := cmdAtoms([]string{"-model", "nope"}); err == nil {
		t.Error("atoms with unknown model accepted")
	}
	if err := cmdVariant([]string{"-model", "funarc", "-lower", "no.such.atom"}); err == nil {
		t.Error("variant with unknown atom accepted")
	}
}

func TestTuneFlagValidation(t *testing.T) {
	if err := cmdTune([]string{"-model", "funarc", "-resume"}); err == nil {
		t.Error("-resume without -journal accepted")
	}
}

func TestTuneJournalResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path}); err != nil {
		t.Fatalf("tune with journal: %v", err)
	}
	// Re-running without -resume must refuse to clobber the journal…
	if err := cmdTune([]string{"-model", "funarc", "-journal", path}); err == nil {
		t.Error("existing journal clobbered without -resume")
	}
	// …while -resume replays it, at any parallelism level.
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume", "-par", "4"}); err != nil {
		t.Errorf("resume: %v", err)
	}
}

func TestCommandHappyPaths(t *testing.T) {
	if err := cmdModels(); err != nil {
		t.Errorf("models: %v", err)
	}
	if err := cmdAtoms([]string{"-model", "funarc"}); err != nil {
		t.Errorf("atoms: %v", err)
	}
	if err := cmdVariant([]string{"-model", "funarc", "-lower", "all",
		"-keep", "funarc_mod.funarc.s1", "-diff"}); err != nil {
		t.Errorf("variant: %v", err)
	}
	if err := cmdReduce([]string{"-model", "funarc", "-targets", "funarc_mod.fun.d1"}); err != nil {
		t.Errorf("reduce: %v", err)
	}
}

// TestTuneResilienceFlagsCLI: the resilience knobs parse, a supervised
// tune runs clean, and -resume interoperates with a journal recorded
// under a different retry policy (the knobs are not fingerprinted).
func TestTuneResilienceFlagsCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path,
		"-retries", "2", "-breaker", "5", "-retry-backoff", "1ns"}); err != nil {
		t.Fatalf("supervised tune: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume"}); err != nil {
		t.Errorf("unsupervised resume of supervised journal: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume", "-failfast"}); err != nil {
		t.Errorf("failfast resume: %v", err)
	}
}
