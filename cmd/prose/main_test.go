package main

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/resilience"
	"repro/internal/search"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":          nil,
		"a":         {"a"},
		"a,b":       {"a", "b"},
		" a , ,b, ": {"a", "b"},
	}
	for in, want := range cases {
		got := splitList(in)
		if len(got) != len(want) {
			t.Errorf("splitList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitList(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestGetModelErrors(t *testing.T) {
	if _, err := getModel("nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if m, err := getModel("mpas-a"); err != nil || m.Name != "mpas-a" {
		t.Errorf("getModel(mpas-a) = %v, %v", m, err)
	}
}

func TestCommandErrorPaths(t *testing.T) {
	if err := cmdReduce([]string{"-model", "funarc"}); err == nil {
		t.Error("reduce without -targets accepted")
	}
	if err := cmdReduce([]string{"-model", "funarc", "-targets", "ghost.var"}); err == nil {
		t.Error("reduce with unknown target accepted")
	}
	if err := cmdAtoms([]string{"-model", "nope"}); err == nil {
		t.Error("atoms with unknown model accepted")
	}
	if err := cmdVariant([]string{"-model", "funarc", "-lower", "no.such.atom"}); err == nil {
		t.Error("variant with unknown atom accepted")
	}
}

func TestTuneFlagValidation(t *testing.T) {
	if err := cmdTune([]string{"-model", "funarc", "-resume"}); err == nil {
		t.Error("-resume without -journal accepted")
	}
}

func TestTuneJournalResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path}); err != nil {
		t.Fatalf("tune with journal: %v", err)
	}
	// Re-running without -resume must refuse to clobber the journal…
	if err := cmdTune([]string{"-model", "funarc", "-journal", path}); err == nil {
		t.Error("existing journal clobbered without -resume")
	}
	// …while -resume replays it, at any parallelism level.
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume", "-par", "4"}); err != nil {
		t.Errorf("resume: %v", err)
	}
}

func TestCommandHappyPaths(t *testing.T) {
	if err := cmdModels(); err != nil {
		t.Errorf("models: %v", err)
	}
	if err := cmdAtoms([]string{"-model", "funarc"}); err != nil {
		t.Errorf("atoms: %v", err)
	}
	if err := cmdVariant([]string{"-model", "funarc", "-lower", "all",
		"-keep", "funarc_mod.funarc.s1", "-diff"}); err != nil {
		t.Errorf("variant: %v", err)
	}
	if err := cmdReduce([]string{"-model", "funarc", "-targets", "funarc_mod.fun.d1"}); err != nil {
		t.Errorf("reduce: %v", err)
	}
}

// TestExitCodeFor: each failure class maps to its documented exit code
// (see docs/resilience.md), including through error wrapping.
func TestExitCodeFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("boom"), exitErr},
		{&resilience.AbortError{Reason: resilience.AbortBreaker}, exitBreaker},
		{fmt.Errorf("wrapped: %w", &resilience.AbortError{Reason: resilience.AbortQuarantine}), exitQuarantine},
		{search.NewCancelled(nil), exitCancelled},
		{fmt.Errorf("wrapped: %w", search.NewCancelled(nil)), exitCancelled},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestTuneWallBudgetCancelsAndResumes: a tune whose wall-clock budget
// expires stops in an orderly fashion — *search.Cancelled error, exit
// code 5 — and leaves a journal that -resume completes.
func TestTuneWallBudgetCancelsAndResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	err := cmdTune([]string{"-model", "funarc", "-journal", path, "-wall-budget", "10ms"})
	var ce *search.Cancelled
	if !errors.As(err, &ce) {
		t.Fatalf("tune under a 10ms wall budget returned %v, want *search.Cancelled", err)
	}
	if got := exitCodeFor(err); got != exitCancelled {
		t.Errorf("exit code %d, want %d", got, exitCancelled)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume"}); err != nil {
		t.Errorf("resume after wall-budget stop: %v", err)
	}
}

// TestTuneDeadlineFlagsCLI: the new deadline/resilience flags parse and
// a watchdogged, half-open, per-class-budgeted tune runs clean; bad
// -retries-by-class syntax is rejected.
func TestTuneDeadlineFlagsCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path,
		"-retries", "1", "-retries-by-class", "scheduler-kill=2,oom=1,hang=1",
		"-watchdog", "30s", "-breaker", "3", "-breaker-halfopen",
		"-drain-grace", "1s", "-retry-backoff", "1ns"}); err != nil {
		t.Fatalf("deadline-flagged tune: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-retries-by-class", "oom"}); err == nil {
		t.Error("malformed -retries-by-class accepted")
	}
}

// TestJournalInspectCLI: prose journal reads a journal, its checkpoint,
// and its events sidecar without needing the tuner's fingerprint.
func TestJournalInspectCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path,
		"-retries", "1", "-retry-backoff", "1ns"}); err != nil {
		t.Fatalf("tune: %v", err)
	}
	if err := cmdJournal([]string{path}); err != nil {
		t.Errorf("journal <path>: %v", err)
	}
	if err := cmdJournal([]string{"-records", "-journal", path}); err != nil {
		t.Errorf("journal -records: %v", err)
	}
	if err := cmdJournal([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("missing journal accepted")
	}
	if err := cmdJournal(nil); err == nil {
		t.Error("journal without a path accepted")
	}
}

// TestTuneResilienceFlagsCLI: the resilience knobs parse, a supervised
// tune runs clean, and -resume interoperates with a journal recorded
// under a different retry policy (the knobs are not fingerprinted).
func TestTuneResilienceFlagsCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path,
		"-retries", "2", "-breaker", "5", "-retry-backoff", "1ns"}); err != nil {
		t.Fatalf("supervised tune: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume"}); err != nil {
		t.Errorf("unsupervised resume of supervised journal: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", path, "-resume", "-failfast"}); err != nil {
		t.Errorf("failfast resume: %v", err)
	}
}
