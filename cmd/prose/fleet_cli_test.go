package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestMain lets this test binary stand in for the prose executable when
// `cmdTune -workers` spawns workers: the coordinator re-execs
// os.Executable() — the test binary — with "worker" argv and
// PROSE_FLEET_WORKER=1 in the environment, and this hook routes that
// invocation into the real cmdWorker.
func TestMain(m *testing.M) {
	if os.Getenv("PROSE_FLEET_WORKER") == "1" && len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := cmdWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "prose worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestTuneWorkersJournalMatchesInProcess runs the full CLI path: `tune
// -workers 2` with injected worker kills must write the same journal
// bytes as the plain in-process tune.
func TestTuneWorkersJournalMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", ref}); err != nil {
		t.Fatalf("in-process tune: %v", err)
	}
	fleetPath := filepath.Join(dir, "fleet.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", fleetPath,
		"-workers", "2", "-fleet-kill-rate", "0.15", "-fleet-fault-seed", "7"}); err != nil {
		t.Fatalf("fleet tune: %v", err)
	}
	a, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fleetPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("fleet journal differs from in-process journal")
	}
	// The fleet trail must be inspectable after the fact.
	if err := cmdJournal([]string{fleetPath}); err != nil {
		t.Fatalf("journal summary: %v", err)
	}
}

// pickPort reserves a free loopback port and releases it for the CLI
// under test to bind. (The small race with another process is
// acceptable in a test.)
func pickPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTuneListenJournalMatchesInProcess runs the full network CLI path:
// `tune -listen` with chaos injection, plus two `worker -connect`
// subprocesses (this test binary re-execed, exactly as a remote host
// would run them), must write the same journal bytes as the plain
// in-process tune.
func TestTuneListenJournalMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", ref}); err != nil {
		t.Fatalf("in-process tune: %v", err)
	}

	addr := pickPort(t)
	netPath := filepath.Join(dir, "net.jsonl")
	tuneDone := make(chan error, 1)
	go func() {
		tuneDone <- cmdTune([]string{"-model", "funarc", "-journal", netPath,
			"-workers", "2", "-listen", addr,
			"-lease-ttl", "2s", "-worker-heartbeat", "50ms",
			"-fleet-chaos-drop", "0.02", "-fleet-chaos-dup", "0.05",
			"-fleet-chaos-reorder", "0.02", "-fleet-chaos-seed", "7"})
	}()

	var workers []*exec.Cmd
	for i := 1; i <= 2; i++ {
		cmd := exec.Command(os.Args[0], "worker",
			"-connect", addr, "-model", "funarc", "-seed", "1",
			"-session", fmt.Sprintf("w%d", i), "-heartbeat", "50ms",
			"-reconnect-backoff", "20ms", "-max-dials", "50")
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), "PROSE_FLEET_WORKER=1")
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		workers = append(workers, cmd)
	}

	select {
	case err := <-tuneDone:
		if err != nil {
			t.Fatalf("network tune: %v", err)
		}
	case <-time.After(5 * time.Minute):
		t.Fatal("network tune did not finish")
	}
	for i, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %d exit: %v", i+1, err)
		}
	}

	a, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(netPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("network-fleet journal differs from in-process journal")
	}
	if err := cmdJournal([]string{netPath}); err != nil {
		t.Fatalf("journal summary: %v", err)
	}
}
