package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestMain lets this test binary stand in for the prose executable when
// `cmdTune -workers` spawns workers: the coordinator re-execs
// os.Executable() — the test binary — with "worker" argv and
// PROSE_FLEET_WORKER=1 in the environment, and this hook routes that
// invocation into the real cmdWorker.
func TestMain(m *testing.M) {
	if os.Getenv("PROSE_FLEET_WORKER") == "1" && len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := cmdWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "prose worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestTuneWorkersJournalMatchesInProcess runs the full CLI path: `tune
// -workers 2` with injected worker kills must write the same journal
// bytes as the plain in-process tune.
func TestTuneWorkersJournalMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", ref}); err != nil {
		t.Fatalf("in-process tune: %v", err)
	}
	fleetPath := filepath.Join(dir, "fleet.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", fleetPath,
		"-workers", "2", "-fleet-kill-rate", "0.15", "-fleet-fault-seed", "7"}); err != nil {
		t.Fatalf("fleet tune: %v", err)
	}
	a, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fleetPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("fleet journal differs from in-process journal")
	}
	// The fleet trail must be inspectable after the fact.
	if err := cmdJournal([]string{fleetPath}); err != nil {
		t.Fatalf("journal summary: %v", err)
	}
}
