package main

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/search"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	w.Close()
	return string(<-done)
}

// TestTuneTraceCLI: tune -trace writes a loadable trace whose eval
// spans reconcile with the journal, and prose trace analyzes it — with
// the per-phase self times summing (within rounding) to the root span.
func TestTuneTraceCLI(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "funarc.jsonl")
	tpath := filepath.Join(dir, "funarc.trace")
	if err := cmdTune([]string{"-model", "funarc", "-journal", jpath, "-trace", tpath}); err != nil {
		t.Fatalf("tune -trace: %v", err)
	}

	recs, meta, err := obs.LoadTrace(tpath)
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	if meta["fingerprint"] != "model=funarc seed=1" {
		t.Errorf("trace fingerprint = %q", meta["fingerprint"])
	}
	_, jrecs, err := journal.Inspect(jpath)
	if err != nil {
		t.Fatal(err)
	}
	counts := obs.CountByName(recs)
	if counts[obs.SpanEval] != len(jrecs) {
		t.Errorf("eval spans = %d, journal records = %d", counts[obs.SpanEval], len(jrecs))
	}

	roots := obs.BuildTree(recs)
	if len(roots) != 1 || roots[0].Rec.Name != obs.SpanTune {
		t.Fatalf("trace roots = %d, want a single tune root", len(roots))
	}
	var selfSum float64
	for _, r := range obs.PhaseRegions(roots) {
		selfSum += r.Self
	}
	rootMicros := float64(roots[0].Rec.Dur) / 1000
	if math.Abs(selfSum-rootMicros) > 1 {
		t.Errorf("phase self times sum to %.2fµs, root is %.2fµs", selfSum, rootMicros)
	}

	if err := cmdTrace([]string{tpath}); err != nil {
		t.Errorf("trace <path>: %v", err)
	}
	if err := cmdTrace([]string{"-top", "3", "-tree", "-depth", "2", "-trace", tpath}); err != nil {
		t.Errorf("trace -top -tree: %v", err)
	}
	if err := cmdTrace([]string{filepath.Join(dir, "missing.trace")}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := cmdTrace(nil); err == nil {
		t.Error("trace without a path accepted")
	}
}

// TestJournalJSONCLI: prose journal -format json emits a parseable
// dump carrying the same counts as the journal, keyed by the obs
// metric names; the default text format is unaffected by the flag.
func TestJournalJSONCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "funarc.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", path,
		"-retries", "1", "-retry-backoff", "1ns"}); err != nil {
		t.Fatalf("tune: %v", err)
	}

	var jerr error
	out := captureStdout(t, func() {
		jerr = cmdJournal([]string{"-format", "json", "-records", path})
	})
	if jerr != nil {
		t.Fatalf("journal -format json: %v", jerr)
	}
	var dump struct {
		Model       string           `json:"model"`
		Evaluations int              `json:"evaluations"`
		Statuses    map[string]int   `json:"statuses"`
		Metrics     map[string]int64 `json:"metrics"`
		Records     []journal.Record `json:"records"`
		Checkpoint  *struct {
			Done bool `json:"done"`
		} `json:"checkpoint"`
	}
	if err := json.Unmarshal([]byte(out), &dump); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if dump.Model != "funarc" {
		t.Errorf("model = %q", dump.Model)
	}
	if dump.Evaluations == 0 || len(dump.Records) != dump.Evaluations {
		t.Errorf("evaluations = %d, records = %d", dump.Evaluations, len(dump.Records))
	}
	if dump.Metrics[obs.MetricEvals] != int64(dump.Evaluations) {
		t.Errorf("metrics[%s] = %d, want %d", obs.MetricEvals, dump.Metrics[obs.MetricEvals], dump.Evaluations)
	}
	total := 0
	for st, n := range dump.Statuses {
		total += n
		if dump.Metrics[obs.MetricEvalsPrefix+st] != int64(n) {
			t.Errorf("metrics[%s%s] = %d, statuses[%s] = %d",
				obs.MetricEvalsPrefix, st, dump.Metrics[obs.MetricEvalsPrefix+st], st, n)
		}
	}
	if total != dump.Evaluations {
		t.Errorf("status counts sum to %d, want %d", total, dump.Evaluations)
	}
	if dump.Checkpoint == nil || !dump.Checkpoint.Done {
		t.Error("checkpoint missing or not done in JSON dump")
	}

	if err := cmdJournal([]string{"-format", "nope", path}); err == nil {
		t.Error("unknown -format accepted")
	}
	// The default text path still works with the flag present.
	if err := cmdJournal([]string{"-format", "text", path}); err != nil {
		t.Errorf("journal -format text: %v", err)
	}
}

// TestTuneObsShutdownOnCancel: a tune with the progress heartbeat and
// the debug server running stops cleanly when the wall budget expires —
// same *search.Cancelled error and exit code 5 as an unobserved run —
// and still flushes the partial trace.
func TestTuneObsShutdownOnCancel(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "funarc.jsonl")
	tpath := filepath.Join(dir, "funarc.trace")
	err := cmdTune([]string{"-model", "funarc", "-journal", jpath,
		"-trace", tpath, "-progress", "5ms", "-debug-addr", "127.0.0.1:0",
		"-wall-budget", "25ms"})
	var ce *search.Cancelled
	if !errors.As(err, &ce) {
		t.Fatalf("observed tune under a wall budget returned %v, want *search.Cancelled", err)
	}
	if got := exitCodeFor(err); got != exitCancelled {
		t.Errorf("exit code %d, want %d", got, exitCancelled)
	}
	if _, serr := os.Stat(tpath); serr != nil {
		t.Errorf("cancelled run flushed no trace: %v", serr)
	}
	if _, _, lerr := obs.LoadTrace(tpath); lerr != nil {
		t.Errorf("partial trace unreadable: %v", lerr)
	}
	// The journal stays resumable with observability off again.
	if rerr := cmdTune([]string{"-model", "funarc", "-journal", jpath, "-resume"}); rerr != nil {
		t.Errorf("resume after observed cancel: %v", rerr)
	}
}
