package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blame"
)

// TestProfileCLI: prose profile funarc reports the catastrophic
// cancellation at the arc-length accumulation with a file:line
// position, and ranks s1 top — the issue's acceptance criteria for the
// one-run diagnosis.
func TestProfileCLI(t *testing.T) {
	var perr error
	out := captureStdout(t, func() {
		perr = cmdProfile([]string{"funarc"})
	})
	if perr != nil {
		t.Fatalf("profile funarc: %v", perr)
	}
	for _, want := range []string{
		"catastrophic",         // at least one catastrophic-cancellation site...
		"funarc.ft:37",         // ...located at the (t2-t1)**2 accumulation
		"funarc_mod.funarc.s1", // the accumulator tops the atom ranking
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
	// s1 must be rank 1 in the atom ranking.
	if !strings.Contains(out, "1. funarc_mod.funarc.s1") {
		t.Errorf("s1 is not ranked first:\n%s", out)
	}
}

// TestProfileJSONCLI: -format json emits a parseable ShadowReport that
// round-trips, following the journal -format json conventions.
func TestProfileJSONCLI(t *testing.T) {
	var perr error
	out := captureStdout(t, func() {
		perr = cmdProfile([]string{"-format", "json", "funarc"})
	})
	if perr != nil {
		t.Fatalf("profile -format json: %v", perr)
	}
	var rep blame.ShadowReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not a valid ShadowReport: %v\n%s", err, out)
	}
	if rep.Model != "funarc" {
		t.Errorf("model = %q", rep.Model)
	}
	if rep.Profile == nil || rep.Profile.Catastrophic < 1 {
		t.Error("JSON dump carries no catastrophic-cancellation count")
	}
	if len(rep.Atoms) != 8 || rep.Atoms[0].QName != "funarc_mod.funarc.s1" {
		t.Errorf("atom ranking wrong in JSON dump: %v", rep.Atoms)
	}
	if err := cmdProfile([]string{"-format", "nope", "funarc"}); err == nil {
		t.Error("unknown -format accepted")
	}
}

// TestProfileHTMLHeatmap: -html writes a standalone page containing the
// per-procedure heatmap.
func TestProfileHTMLHeatmap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heat.html")
	var perr error
	captureStdout(t, func() {
		perr = cmdProfile([]string{"-html", path, "funarc"})
	})
	if perr != nil {
		t.Fatalf("profile -html: %v", perr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	page := string(b)
	for _, want := range []string{"<!DOCTYPE html>", "<table", "funarc_mod.funarc", "37!"} {
		if !strings.Contains(page, want) {
			t.Errorf("heatmap page missing %q", want)
		}
	}
}

// TestTuneNumericsJournalIdentical: the CLI-level pin of the
// out-of-band invariant — tune -numerics writes a journal
// byte-identical to a plain tune (CI re-checks this with cmp).
func TestTuneNumericsJournalIdentical(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	diag := filepath.Join(dir, "numerics.jsonl")
	if err := cmdTune([]string{"-model", "funarc", "-journal", plain}); err != nil {
		t.Fatalf("plain tune: %v", err)
	}
	if err := cmdTune([]string{"-model", "funarc", "-journal", diag, "-numerics"}); err != nil {
		t.Fatalf("tune -numerics: %v", err)
	}
	pb, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(diag)
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(db) {
		t.Errorf("tune -numerics journal differs from plain tune journal (%d vs %d bytes)",
			len(db), len(pb))
	}
}
