package main

// The `prose runs` and `prose compare` subcommands: analyzers over the
// run ledger that `prose tune -ledger DIR` accumulates.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ledger"
)

// regressionError carries a failed `prose compare` out to exit code 6,
// distinct from generic failures so CI can gate on it.
type regressionError struct{ c *ledger.Comparison }

func (e *regressionError) Error() string {
	return fmt.Sprintf("compare: %d regression(s) against baseline %.12s", len(e.c.Regressions), e.c.A.ID)
}

func cmdRuns(args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	dir := fs.String("ledger", "", "run-ledger directory written by tune -ledger (required)")
	model := fs.String("model", "", "only list runs of this model")
	format := fs.String("format", "text", "output format: text or json")
	decisions := fs.String("decisions", "", "read this decision-log file directly and print its search funnel (no ledger needed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *decisions != "" {
		return renderDecisions(*decisions, *format)
	}
	if *dir == "" {
		return fmt.Errorf("runs: -ledger DIR is required (or -decisions FILE)")
	}
	led, err := ledger.Open(*dir)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return renderRun(led, fs.Arg(0), *format)
	}

	entries, err := led.List()
	if err != nil {
		return err
	}
	if *model != "" {
		kept := entries[:0]
		for _, e := range entries {
			if e.Model == *model {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if *format == "json" {
		return json.NewEncoder(os.Stdout).Encode(entries)
	}
	fmt.Printf("%-12s  %-8s  %-19s  %8s  %6s  %8s  %-9s  %s\n",
		"run", "model", "started", "wall", "evals", "best", "outcome", "converged")
	for _, e := range entries {
		started := time.Unix(0, e.StartUnixNS).UTC().Format("2006-01-02 15:04:05")
		best := "-"
		if e.BestSpeedup > 0 {
			best = fmt.Sprintf("%.4gx", e.BestSpeedup)
		}
		fmt.Printf("%-12.12s  %-8s  %-19s  %7dms  %6d  %8s  %-9s  %v\n",
			e.ID, e.Model, started, e.WallMS, e.Evaluations, best, e.Outcome, e.Converged)
	}
	fmt.Printf("%d run(s) in %s\n", len(entries), *dir)
	return nil
}

// renderRun shows one archived run: its manifest and, when the decision
// log is still on disk, the per-round search funnel.
func renderRun(led *ledger.Ledger, ref, format string) error {
	m, err := led.Get(ref)
	if err != nil {
		return err
	}
	if format == "json" {
		b, err := ledger.CanonicalJSON(m)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	fmt.Printf("run %s\n", m.ID)
	fmt.Printf("  model       %s (engine %s, seed %d, machine %s)\n", m.Model, m.Engine, m.Seed, m.Machine)
	fmt.Printf("  fingerprint %s\n", m.Fingerprint)
	fmt.Printf("  started     %s  wall %dms\n", time.Unix(0, m.StartUnixNS).UTC().Format(time.RFC3339), m.WallMS)
	fmt.Printf("  criteria    max rel error %.3e, min speedup %g\n", m.MaxRelError, m.MinSpeedup)
	fmt.Printf("  outcome     %s (converged %v)\n", m.Outcome, m.Converged)
	fmt.Printf("  evaluations %d (budget %d, resumed %d, salvaged %d)  statuses: %s\n",
		m.Evaluations, m.Budget, m.Resumed, m.Salvaged, formatCounts(m.Statuses))
	fmt.Printf("  minimal     %d of %d atoms stay 64-bit\n", m.MinimalAtoms, m.TotalAtoms)
	if m.BestSpeedup > 0 {
		fmt.Printf("  best        %.4gx speedup, rel error %.3e, %d atom(s) lowered\n",
			m.BestSpeedup, m.BestRelError, m.BestLowered)
	}
	if m.DecisionDigest != "" {
		fmt.Printf("  decisions   %d event(s), digest %.12s, at %s\n", m.DecisionEvents, m.DecisionDigest, m.DecisionPath)
	}
	if m.Metrics != nil {
		fmt.Printf("  metrics:\n%s", m.Metrics.Render("    "))
	}
	if m.DecisionPath != "" {
		if _, err := os.Stat(m.DecisionPath); err == nil {
			fmt.Printf("  search funnel (%s):\n", m.DecisionPath)
			if err := renderFunnelFile(m.DecisionPath, "    "); err != nil {
				fmt.Printf("    (unreadable: %v)\n", err)
			}
		}
	}
	return nil
}

// renderDecisions prints a decision log's funnel without a ledger.
func renderDecisions(path, format string) error {
	if format == "json" {
		hdr, evs, err := ledger.ReadDecisionLog(path)
		if err != nil {
			return err
		}
		return json.NewEncoder(os.Stdout).Encode(struct {
			Header ledger.DecisionHeader `json:"header"`
			Funnel []ledger.FunnelRound  `json:"funnel"`
		}{hdr, ledger.Funnel(evs)})
	}
	return renderFunnelFile(path, "")
}

func renderFunnelFile(path, indent string) error {
	_, evs, err := ledger.ReadDecisionLog(path)
	if err != nil {
		return err
	}
	for _, line := range splitLines(ledger.RenderFunnel(ledger.Funnel(evs))) {
		fmt.Printf("%s%s\n", indent, line)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	dir := fs.String("ledger", "", "run-ledger directory holding the two runs (omit to pass manifest file paths)")
	format := fs.String("format", "text", "output format: text or json")
	maxSpeedupDrop := fs.Float64("max-speedup-drop", ledger.DefaultThresholds().MaxSpeedupDrop, "tolerated fractional best-speedup drop before it counts as a regression")
	maxErrorRise := fs.Float64("max-error-rise", ledger.DefaultThresholds().MaxErrorRise, "tolerated fractional rise in the best variant's relative error")
	maxEvalsRise := fs.Float64("max-evals-rise", ledger.DefaultThresholds().MaxEvalsRise, "tolerated fractional growth in evaluations used")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: need exactly two runs: prose compare -ledger DIR <baseline> <candidate>")
	}
	var led *ledger.Ledger
	if *dir != "" {
		var err error
		if led, err = ledger.Open(*dir); err != nil {
			return err
		}
	}
	a, err := led.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := led.Get(fs.Arg(1))
	if err != nil {
		return err
	}
	th := ledger.Thresholds{
		MaxSpeedupDrop: *maxSpeedupDrop,
		MaxErrorRise:   *maxErrorRise,
		MaxEvalsRise:   *maxEvalsRise,
	}
	c := ledger.Compare(a, b, th)
	if *format == "json" {
		if err := json.NewEncoder(os.Stdout).Encode(c); err != nil {
			return err
		}
	} else {
		fmt.Print(c.Render())
	}
	if c.Regressed() {
		return &regressionError{c: c}
	}
	return nil
}

// splitLines splits rendered text into lines, dropping a trailing empty
// one.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
