// Command experiments regenerates every table and figure of the paper's
// evaluation from the bundled surrogates and substrates:
//
//	Table I    hotspot summary statistics
//	Table II   variants explored per search, outcome shares, best speedup
//	Figure 2   funarc brute-force sweep
//	Figure 5   per-model speedup-error scatter
//	Figure 6   per-procedure per-call performance
//	Figure 7   whole-model-guided MPAS-A search
//	+ the §V static-filter ablation and the Eq. (1) noise study
//
// With -html DIR it also writes standalone HTML visualizations, like the
// paper artifact's "interactive HTML visualizations reproducing
// Figures 5-7".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "noise seed for all searches")
	htmlDir := flag.String("html", "", "directory to write HTML figures into (optional)")
	only := flag.String("only", "", "run only one experiment: table1, table2, fig2, fig5, fig6, fig7, ablation, noise, predictor, machine")
	flag.Parse()

	if err := run(*seed, *htmlDir, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(seed int64, htmlDir, only string) error {
	want := func(name string) bool { return only == "" || only == name }
	var pages = map[string]string{}

	if want("table1") {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if want("fig2") {
		r, err := experiments.Fig2(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig2(r))
		pages["fig2.html"] = experiments.HTMLFig2(r)
	}
	if want("noise") {
		fmt.Println(experiments.RenderNoise(experiments.NoiseStudy(seed)))
	}
	if want("machine") {
		rows, err := experiments.MachineStudy()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMachine(rows))
	}

	needSuite := want("table2") || want("fig5") || want("fig6") || want("fig7") || want("predictor")
	if needSuite {
		fmt.Fprintln(os.Stderr, "running the four delta-debugging searches (MPAS-A, ADCIRC, MOM6, MPAS-A whole-model)...")
		s, err := experiments.RunSuite(seed)
		if err != nil {
			return err
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(experiments.Table2(s)))
		}
		if want("fig5") {
			series := experiments.Fig5(s)
			fmt.Println(experiments.RenderFig5(series))
			pages["fig5.html"] = experiments.HTMLFig5(series)
		}
		if want("fig6") {
			series := experiments.Fig6(s)
			fmt.Println(experiments.RenderFig6(series))
			pages["fig6.html"] = experiments.HTMLFig6(series)
		}
		if want("fig7") {
			r := experiments.Fig7(s)
			fmt.Println(experiments.RenderFig7(r))
			pages["fig7.html"] = experiments.HTMLFig7(r)
		}
		if want("predictor") {
			r, err := experiments.PredictorStudy(s)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderPredictor(r))
		}
	}
	if want("ablation") {
		r, err := experiments.Ablation(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAblation(r))
	}

	if htmlDir != "" && len(pages) > 0 {
		if err := os.MkdirAll(htmlDir, 0o755); err != nil {
			return err
		}
		for name, content := range pages {
			path := filepath.Join(htmlDir, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}
