// Command experiments regenerates every table and figure of the paper's
// evaluation from the bundled surrogates and substrates:
//
//	Table I    hotspot summary statistics
//	Table II   variants explored per search, outcome shares, best speedup
//	Figure 2   funarc brute-force sweep
//	Figure 5   per-model speedup-error scatter
//	Figure 6   per-procedure per-call performance
//	Figure 7   whole-model-guided MPAS-A search
//	+ the §V static-filter ablation and the Eq. (1) noise study
//
// With -html DIR it also writes standalone HTML visualizations, like the
// paper artifact's "interactive HTML visualizations reproducing
// Figures 5-7".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/resilience"
	"repro/internal/search"
)

func main() {
	seed := flag.Int64("seed", 1, "noise seed for all searches")
	htmlDir := flag.String("html", "", "directory to write HTML figures into (optional)")
	only := flag.String("only", "", "run only one experiment: table1, table2, fig2, fig5, fig6, fig7, ablation, noise, predictor, machine")
	journalDir := flag.String("journal-dir", "", "directory for per-search crash-safe journals + events sidecars (optional)")
	resume := flag.Bool("resume", false, "resume the journals in -journal-dir")
	retries := flag.Int("retries", 0, "retry transient evaluation-infrastructure faults up to N times per evaluation")
	retriesByClass := flag.String("retries-by-class", "", "per-class retry budgets as kind=N,kind=N (default with -retries N: scheduler-kill=2N, oom=max(1,N/2), hang=N)")
	watchdog := flag.Duration("watchdog", 0, "abandon a hung evaluation attempt after this wall-clock time (0 = no watchdog)")
	breaker := flag.Int("breaker", 0, "fail a search fast after N consecutive hard infrastructure failures")
	halfOpen := flag.Bool("breaker-halfopen", false, "probe one evaluation after the breaker trips instead of aborting")
	wallBudget := flag.Duration("wall-budget", 0, "stop the whole sweep in an orderly fashion after this wall-clock time (exit code 5; 0 = unlimited)")
	drainGrace := flag.Duration("drain-grace", 0, "let in-flight evaluations keep running this long after a stop before hard-cancelling them (0 = drain to completion)")
	flag.Parse()

	byClass, err := resilience.ParseRetryBudgets(*retriesByClass)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if byClass == nil {
		byClass = resilience.DefaultRetryBudgets(*retries)
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -journal-dir")
		os.Exit(2)
	}
	sopts := experiments.Options{
		JournalDir: *journalDir, Resume: *resume,
		Retries: *retries, RetriesByClass: byClass,
		Watchdog: *watchdog, Breaker: *breaker, HalfOpen: *halfOpen,
		DrainGrace: *drainGrace,
	}

	// The same deadline layers as prose tune: SIGINT/SIGTERM and
	// -wall-budget cancel the context; searches stop in an orderly
	// fashion and journals (with -journal-dir) stay resumable.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *wallBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *wallBudget)
		defer cancel()
	}
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	if err := run(ctx, *seed, *htmlDir, *only, sopts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		var cancelled *search.Cancelled
		if errors.As(err, &cancelled) {
			os.Exit(5)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, seed int64, htmlDir, only string, sopts experiments.Options) error {
	want := func(name string) bool { return only == "" || only == name }
	var pages = map[string]string{}

	if want("table1") {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if want("fig2") {
		r, err := experiments.Fig2(ctx, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig2(r))
		pages["fig2.html"] = experiments.HTMLFig2(r)
	}
	if want("noise") {
		fmt.Println(experiments.RenderNoise(experiments.NoiseStudy(seed)))
	}
	if want("machine") {
		rows, err := experiments.MachineStudy()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMachine(rows))
	}

	needSuite := want("table2") || want("fig5") || want("fig6") || want("fig7") || want("predictor")
	if needSuite {
		fmt.Fprintln(os.Stderr, "running the four delta-debugging searches (MPAS-A, ADCIRC, MOM6, MPAS-A whole-model)...")
		s, err := experiments.RunSuiteOpts(ctx, seed, sopts)
		if err != nil {
			return err
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(experiments.Table2(s)))
		}
		if want("fig5") {
			series := experiments.Fig5(s)
			fmt.Println(experiments.RenderFig5(series))
			pages["fig5.html"] = experiments.HTMLFig5(series)
		}
		if want("fig6") {
			series := experiments.Fig6(s)
			fmt.Println(experiments.RenderFig6(series))
			pages["fig6.html"] = experiments.HTMLFig6(series)
		}
		if want("fig7") {
			r := experiments.Fig7(s)
			fmt.Println(experiments.RenderFig7(r))
			pages["fig7.html"] = experiments.HTMLFig7(r)
		}
		if want("predictor") {
			r, err := experiments.PredictorStudy(s)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderPredictor(r))
		}
	}
	if want("ablation") {
		r, err := experiments.Ablation(ctx, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAblation(r))
	}

	if htmlDir != "" && len(pages) > 0 {
		if err := os.MkdirAll(htmlDir, 0o755); err != nil {
			return err
		}
		for name, content := range pages {
			path := filepath.Join(htmlDir, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}
