// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (one benchmark per artifact; see DESIGN.md §3
// for the experiment index and EXPERIMENTS.md for paper-vs-measured):
//
//	BenchmarkTable1HotspotStats      Table I
//	BenchmarkTable2SearchSummary     Table II
//	BenchmarkFig2Funarc              Figure 2
//	BenchmarkFig5VariantScatter      Figure 5
//	BenchmarkFig6ProcedureVariants   Figure 6
//	BenchmarkFig7WholeModel          Figure 7
//	BenchmarkStaticFilterAblation    §V ablation (extension)
//	BenchmarkNoiseTolerantSpeedup    Eq. (1) study (extension)
//	BenchmarkFullTuningCycle         one end-to-end search (timing reference)
//
// The four delta-debugging searches behind Table II and Figures 5-7 are
// shared across benchmarks (built once per process). Key result values
// are attached as custom benchmark metrics.
package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/models"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.Shared()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTable1HotspotStats(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.CPUSharePct, r.Model+"-hotspot-%")
	}
	b.Log("\n" + experiments.RenderTable1(rows))
}

func BenchmarkTable2SearchSummary(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(s)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.BestSpeedup, r.Model+"-speedup-x")
		b.ReportMetric(float64(r.Total), r.Model+"-variants")
	}
	b.Log("\n" + experiments.RenderTable2(rows))
}

func BenchmarkFig2Funarc(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig2(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(r.Points)), "variants")
	b.ReportMetric(r.Uniform32.Speedup, "uniform32-speedup-x")
	b.ReportMetric(r.Best.Speedup, "frontier-speedup-x")
	b.Log("\n" + experiments.RenderFig2(r))
}

func BenchmarkFig5VariantScatter(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var series []experiments.Fig5Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig5(s)
	}
	b.StopTimer()
	for _, fs := range series {
		b.ReportMetric(fs.Clusters.Hi.MedianSpeedup, fs.Model+"-hi32-median-x")
	}
	var sb strings.Builder
	for _, fs := range series {
		sb.WriteString(experiments.RenderFig5([]experiments.Fig5Series{{
			Model: fs.Model, Threshold: fs.Threshold, Clusters: fs.Clusters,
		}}))
	}
	b.Log("\n" + sb.String())
}

func BenchmarkFig6ProcedureVariants(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var series []experiments.Fig6Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig6(s)
	}
	b.StopTimer()
	var fluxMin, adjMin = 1e9, 1e9
	for _, fs := range series {
		for _, p := range fs.Points {
			if p.Speedup <= 0 {
				continue
			}
			if strings.Contains(fs.Proc, "flux4") && p.Speedup < fluxMin {
				fluxMin = p.Speedup
			}
			if strings.Contains(fs.Proc, "flux_adjust") && p.Speedup < adjMin {
				adjMin = p.Speedup
			}
		}
	}
	b.ReportMetric(fluxMin, "mpas-flux4-min-x")
	b.ReportMetric(adjMin, "mom6-fluxadjust-min-x")
	b.Log("\n" + experiments.RenderFig6(series))
}

func BenchmarkFig7WholeModel(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(s)
	}
	b.StopTimer()
	if r.Best != nil {
		b.ReportMetric(r.Best.Speedup, "best-wholemodel-x")
	}
	b.ReportMetric(r.Clusters.Hi.MedianSpeedup, "hi32-median-x")
	b.Log("\n" + experiments.RenderFig7(r))
}

func BenchmarkStaticFilterAblation(b *testing.B) {
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Ablation(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(r.StaticallySkipped), "statically-skipped")
	b.ReportMetric(float64(r.DynamicEvalsFilt), "dynamic-evals")
	b.Log("\n" + experiments.RenderAblation(r))
}

func BenchmarkNoiseTolerantSpeedup(b *testing.B) {
	var rows []experiments.NoiseRow
	for i := 0; i < b.N; i++ {
		rows = experiments.NoiseStudy(42)
	}
	b.StopTimer()
	for _, r := range rows {
		if r.N == 1 || r.N == 7 {
			b.ReportMetric(r.MisrankPct, strings.ReplaceAll(
				strings.TrimLeft(strings.TrimRight(
					"misrank-"+pct(r.RelStdDev)+"-n"+itoa(r.N), " "), " "), " ", ""))
		}
	}
	b.Log("\n" + experiments.RenderNoise(rows))
}

func pct(f float64) string {
	if f < 0.05 {
		return "1pct"
	}
	return "9pct"
}

func itoa(n int) string { return string(rune('0' + n)) }

// BenchmarkFullTuningCycle times one complete MPAS-A search (T0-T4),
// the paper's headline experiment, end to end.
func BenchmarkFullTuningCycle(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		t, err := core.New(models.MPASA(), core.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err = t.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	row := res.TableIIRow()
	b.ReportMetric(row.BestSpeedup, "best-speedup-x")
	b.ReportMetric(float64(row.Total), "variants")
}

// Substrate micro-benchmarks: regressions in these directly slow every
// experiment above.

func BenchmarkSubstrateParseAnalyze(b *testing.B) {
	src := models.MPASA().Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := ft.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateTransformApply(b *testing.B) {
	m := models.MPASA()
	prog, err := m.Parse()
	if err != nil {
		b.Fatal(err)
	}
	atoms := transform.Atoms(prog, m.Hotspot)
	a := transform.Uniform(atoms, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Apply(prog, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateInterpModelRun(b *testing.B) {
	m := models.MOM6()
	prog, err := m.Parse()
	if err != nil {
		b.Fatal(err)
	}
	machine := perfmodel.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := interp.New(prog, interp.Config{Model: machine, TrapNonFinite: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorStudy evaluates the [42]-style static predictor on
// the shared MPAS-A search data (extension experiment E9).
func BenchmarkPredictorStudy(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var r *experiments.PredictorResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.PredictorStudy(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(r.RankCorrelation, "spearman-rho")
	b.Log("\n" + experiments.RenderPredictor(r))
}

// BenchmarkMachineSensitivity measures the MPAS-A knob variant under
// both bundled vector-ISA machine models (extension; paper §VI threat).
func BenchmarkMachineSensitivity(b *testing.B) {
	var rows []experiments.MachineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MachineStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.HotspotSpeedup, r.Machine+"-speedup-x")
	}
	b.Log("\n" + experiments.RenderMachine(rows))
}
