// Interpreter shadow-execution benchmarks: the overhead of the float64
// diagnostic lane (on vs off) and the funarc tune baseline it rides on.
// TestEmitInterpBench (env-gated) snapshots both into BENCH_interp.json
// so the perf trajectory is tracked in-repo.
package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/models"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

// benchInterpRun runs funarc end to end on the given engine, with or
// without a shadow recorder attached. The recorder (when on) is rebuilt
// per iteration — that is how the tuner uses it, one recorder per
// evaluation.
func benchInterpRun(b *testing.B, shadow bool, eng interp.Engine) {
	m := models.Funarc()
	prog, err := m.Parse()
	if err != nil {
		b.Fatal(err)
	}
	machine := perfmodel.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := interp.Config{Model: machine, TrapNonFinite: true, Engine: eng}
		if shadow {
			cfg.Numerics = numerics.NewRecorder(m.Name+".ft", numerics.Options{})
		}
		in, err := interp.New(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpShadowOverhead measures the cost of the shadow lane.
// The off case is the uninstrumented hot path (the nil-recorder test
// TestShadowDisabledAllocFlat pins it allocation-flat); the on case is
// what every evaluation pays under tune -numerics. The unsuffixed rows
// run the default compiled engine; the engine=ast rows keep the
// tree-walker's numbers visible for the VM-vs-AST comparison.
func BenchmarkInterpShadowOverhead(b *testing.B) {
	b.Run("shadow=off", func(b *testing.B) { benchInterpRun(b, false, interp.EngineVM) })
	b.Run("shadow=on", func(b *testing.B) { benchInterpRun(b, true, interp.EngineVM) })
	b.Run("shadow=off/engine=ast", func(b *testing.B) { benchInterpRun(b, false, interp.EngineAST) })
	b.Run("shadow=on/engine=ast", func(b *testing.B) { benchInterpRun(b, true, interp.EngineAST) })
}

// BenchmarkTuneFunarcBaseline is the end-to-end funarc search the
// shadow overhead is judged against: diagnostics cost matters relative
// to a whole tuning run, not a single interpreter pass.
func BenchmarkTuneFunarcBaseline(b *testing.B) {
	m := models.Funarc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := core.New(m, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// interpBenchRow is one benchmark's snapshot in BENCH_interp.json.
type interpBenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEmitInterpBench writes BENCH_interp.json when PROSE_EMIT_BENCH=1
// (kept out of normal test runs: it re-runs the benchmarks). The file
// records the shadow on/off interpreter cost and the tune baseline,
// plus the on/off overhead ratio.
func TestEmitInterpBench(t *testing.T) {
	if os.Getenv("PROSE_EMIT_BENCH") == "" {
		t.Skip("set PROSE_EMIT_BENCH=1 to regenerate BENCH_interp.json")
	}
	row := func(name string, fn func(b *testing.B)) interpBenchRow {
		r := testing.Benchmark(fn)
		return interpBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	off := row("InterpShadowOverhead/shadow=off", func(b *testing.B) { benchInterpRun(b, false, interp.EngineVM) })
	on := row("InterpShadowOverhead/shadow=on", func(b *testing.B) { benchInterpRun(b, true, interp.EngineVM) })
	astOff := row("InterpShadowOverhead/shadow=off/engine=ast", func(b *testing.B) { benchInterpRun(b, false, interp.EngineAST) })
	astOn := row("InterpShadowOverhead/shadow=on/engine=ast", func(b *testing.B) { benchInterpRun(b, true, interp.EngineAST) })
	tune := row("TuneFunarcBaseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tn, err := core.New(models.Funarc(), core.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tn.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	out := struct {
		Rows            []interpBenchRow `json:"rows"`
		ShadowOnOffX    float64          `json:"shadow_on_off_ratio"`
		ShadowOnOffAstX float64          `json:"shadow_on_off_ratio_ast"`
		VMSpeedupX      float64          `json:"vm_over_ast_speedup"`
		GoVersion       string           `json:"go_version,omitempty"`
		BenchmarkNote   string           `json:"note"`
	}{
		Rows:            []interpBenchRow{off, on, astOff, astOn, tune},
		ShadowOnOffX:    on.NsPerOp / off.NsPerOp,
		ShadowOnOffAstX: astOn.NsPerOp / astOff.NsPerOp,
		VMSpeedupX:      astOff.NsPerOp / off.NsPerOp,
		BenchmarkNote: "funarc end-to-end interpreter run, shadow recorder rebuilt per iteration; " +
			"engine=ast rows are the reference tree-walker (the 'before' of the VM compile); " +
			"tune baseline is the full seed-1 delta-debugging search",
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_interp.json", append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("shadow on/off ratio: %.2fx (off %.0f ns/op, on %.0f ns/op)", out.ShadowOnOffX, off.NsPerOp, on.NsPerOp)
}
