// Interpreter shadow-execution benchmarks: the overhead of the float64
// diagnostic lane (on vs off) and the funarc tune baseline it rides on.
// TestEmitInterpBench (env-gated) snapshots both into BENCH_interp.json
// so the perf trajectory is tracked in-repo.
package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ledger"
	"repro/internal/models"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
	"repro/internal/search"
)

// benchInterpRun runs funarc end to end on the given engine, with or
// without a shadow recorder attached. The recorder (when on) is rebuilt
// per iteration — that is how the tuner uses it, one recorder per
// evaluation.
func benchInterpRun(b *testing.B, shadow bool, eng interp.Engine) {
	m := models.Funarc()
	prog, err := m.Parse()
	if err != nil {
		b.Fatal(err)
	}
	machine := perfmodel.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := interp.Config{Model: machine, TrapNonFinite: true, Engine: eng}
		if shadow {
			cfg.Numerics = numerics.NewRecorder(m.Name+".ft", numerics.Options{})
		}
		in, err := interp.New(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpShadowOverhead measures the cost of the shadow lane.
// The off case is the uninstrumented hot path (the nil-recorder test
// TestShadowDisabledAllocFlat pins it allocation-flat); the on case is
// what every evaluation pays under tune -numerics. The unsuffixed rows
// run the default compiled engine; the engine=ast rows keep the
// tree-walker's numbers visible for the VM-vs-AST comparison.
func BenchmarkInterpShadowOverhead(b *testing.B) {
	b.Run("shadow=off", func(b *testing.B) { benchInterpRun(b, false, interp.EngineVM) })
	b.Run("shadow=on", func(b *testing.B) { benchInterpRun(b, true, interp.EngineVM) })
	b.Run("shadow=off/engine=ast", func(b *testing.B) { benchInterpRun(b, false, interp.EngineAST) })
	b.Run("shadow=on/engine=ast", func(b *testing.B) { benchInterpRun(b, true, interp.EngineAST) })
}

// BenchmarkTuneFunarcBaseline is the end-to-end funarc search the
// shadow overhead is judged against: diagnostics cost matters relative
// to a whole tuning run, not a single interpreter pass.
func BenchmarkTuneFunarcBaseline(b *testing.B) {
	m := models.Funarc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := core.New(m, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// interpBenchRow is one benchmark's snapshot in BENCH_interp.json.
type interpBenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// interpBenchFile is the BENCH_interp.json schema. It is written
// through ledger.CanonicalJSON so keys come out deterministically
// sorted and regeneration diffs stay stable.
type interpBenchFile struct {
	Rows            []interpBenchRow `json:"rows"`
	ShadowOnOffX    float64          `json:"shadow_on_off_ratio"`
	ShadowOnOffAstX float64          `json:"shadow_on_off_ratio_ast"`
	VMSpeedupX      float64          `json:"vm_over_ast_speedup"`
	GoVersion       string           `json:"go_version,omitempty"`
	BenchmarkNote   string           `json:"note"`
}

// TestEmitInterpBench writes BENCH_interp.json when PROSE_EMIT_BENCH=1
// (kept out of normal test runs: it re-runs the benchmarks). The file
// records the shadow on/off interpreter cost, the tune baseline, the
// on/off overhead ratio, and the decision-log append cost. Rows this
// test does not own (e.g. FleetTraceShipping, produced by
// internal/fleet's benchmark) are carried forward from the existing
// file rather than dropped; the merged row set is sorted by name.
func TestEmitInterpBench(t *testing.T) {
	if os.Getenv("PROSE_EMIT_BENCH") == "" {
		t.Skip("set PROSE_EMIT_BENCH=1 to regenerate BENCH_interp.json")
	}
	row := func(name string, fn func(b *testing.B)) interpBenchRow {
		r := testing.Benchmark(fn)
		return interpBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	off := row("InterpShadowOverhead/shadow=off", func(b *testing.B) { benchInterpRun(b, false, interp.EngineVM) })
	on := row("InterpShadowOverhead/shadow=on", func(b *testing.B) { benchInterpRun(b, true, interp.EngineVM) })
	astOff := row("InterpShadowOverhead/shadow=off/engine=ast", func(b *testing.B) { benchInterpRun(b, false, interp.EngineAST) })
	astOn := row("InterpShadowOverhead/shadow=on/engine=ast", func(b *testing.B) { benchInterpRun(b, true, interp.EngineAST) })
	tune := row("TuneFunarcBaseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tn, err := core.New(models.Funarc(), core.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tn.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Per-event decision-log append cost — the telemetry price a tune
	// pays per candidate when -ledger is on. Mirrors internal/ledger's
	// BenchmarkLedgerAppend (test benchmarks are not importable across
	// packages): buffered write + digest, no syscall per event.
	ledgerAppend := row("LedgerAppend", func(b *testing.B) {
		dl, err := ledger.CreateDecisionLog(filepath.Join(b.TempDir(), "bench.decisions"), "fp-bench", "funarc")
		if err != nil {
			b.Fatal(err)
		}
		defer dl.Close()
		d := search.Decision{
			Round: 1, Seq: 1, AKey: "funarc.fun.t1=4;funarc.fun.d1=4;funarc.fun.s1=4",
			Outcome: search.DecisionEvaluated, Status: search.StatusPass,
			Speedup: 1.559, RelError: 2.04e-7, Lowered: 7, Accepted: true,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Seq = i
			dl.Decide(d)
		}
	})

	rows := []interpBenchRow{off, on, astOff, astOn, tune, ledgerAppend}
	owned := make(map[string]bool, len(rows))
	for _, r := range rows {
		owned[r.Name] = true
	}
	if raw, err := os.ReadFile("BENCH_interp.json"); err == nil {
		var prev interpBenchFile
		if err := json.Unmarshal(raw, &prev); err != nil {
			t.Fatalf("existing BENCH_interp.json is unreadable: %v", err)
		}
		for _, r := range prev.Rows {
			if !owned[r.Name] {
				rows = append(rows, r)
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })

	out := interpBenchFile{
		Rows:            rows,
		ShadowOnOffX:    on.NsPerOp / off.NsPerOp,
		ShadowOnOffAstX: astOn.NsPerOp / astOff.NsPerOp,
		VMSpeedupX:      astOff.NsPerOp / off.NsPerOp,
		BenchmarkNote: "funarc end-to-end interpreter run, shadow recorder rebuilt per iteration; " +
			"engine=ast rows are the reference tree-walker (the 'before' of the VM compile); " +
			"tune baseline is the full seed-1 delta-debugging search; " +
			"LedgerAppend is the per-event decision-telemetry cost (buffered write + digest, " +
			"no syscall per event) — a few microseconds against multi-ms evaluations; " +
			"FleetTraceShipping rows are carried forward from internal/fleet's benchmark",
	}
	b, err := ledger.CanonicalJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_interp.json", b, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("shadow on/off ratio: %.2fx (off %.0f ns/op, on %.0f ns/op); ledger append %.0f ns/op",
		out.ShadowOnOffX, off.NsPerOp, on.NsPerOp, ledgerAppend.NsPerOp)
}

// TestBenchFileCanonical pins the diff-stability contract: the checked
// in BENCH_interp.json must be byte-identical to its own
// ledger.CanonicalJSON round trip (sorted keys, two-space indent,
// trailing newline), so regeneration diffs show only value changes.
func TestBenchFileCanonical(t *testing.T) {
	raw, err := os.ReadFile("BENCH_interp.json")
	if err != nil {
		t.Skipf("BENCH_interp.json not present: %v", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("BENCH_interp.json is not valid JSON: %v", err)
	}
	canon, err := ledger.CanonicalJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(canon) != string(raw) {
		t.Error("BENCH_interp.json is not in canonical form; regenerate with PROSE_EMIT_BENCH=1")
	}
}
