package interp

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// evalIntrinsic evaluates an intrinsic function call, charging costs by
// operation class. Results are computed in float64 and rounded to the
// call's static result kind, matching how a kind-4 libm call rounds.
func (i *Interp) evalIntrinsic(fr *frame, e *ft.CallExpr) (Value, error) {
	name := e.Intrinsic
	kind := e.Typ.Kind
	if e.Typ.Base != ft.TReal {
		kind = 4
	}

	// Array-argument intrinsics first (they must not evaluate the array
	// as a scalar expression).
	switch name {
	case "size":
		arr, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if len(e.Args) == 2 {
			dv, err := i.evalExpr(fr, e.Args[1])
			if err != nil {
				return Value{}, err
			}
			d := int(dv.asInt())
			if d < 1 || d > len(arr.Ext) {
				return Value{}, &RunError{Pos: e.Pos, Kind: FailBounds,
					Msg: fmt.Sprintf("size dim %d out of range 1..%d", d, len(arr.Ext))}
			}
			return intValue(int64(arr.Ext[d-1])), nil
		}
		return intValue(int64(arr.Size())), nil
	case "sum", "minval", "maxval":
		arr, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		return i.reduceArray(name, arr, e)
	case "dot_product":
		a, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := i.argArray(fr, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		return i.dotProduct(a, b, e)
	}

	args := make([]Value, len(e.Args))
	for k, a := range e.Args {
		v, err := i.evalExpr(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[k] = v
	}

	un := func(cls perfmodel.OpClass, f func(float64) float64) (Value, error) {
		i.op(cls, kind)
		x := args[0].asFloat()
		v := realValue(f(x), kind)
		if i.nrec != nil {
			v.Sh = f(args[0].sh())
			i.nrec.Intrinsic(i.procName(), e.Pos.Line, name, x, v.F, f(x), v.Sh)
		}
		return v, nil
	}

	switch name {
	case "abs":
		if e.Typ.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return intValue(v), nil
		}
		return un(perfmodel.OpSimple, math.Abs)
	case "sqrt":
		return un(perfmodel.OpSqrt, math.Sqrt)
	case "exp":
		return un(perfmodel.OpTrans, math.Exp)
	case "log":
		return un(perfmodel.OpTrans, math.Log)
	case "log10":
		return un(perfmodel.OpTrans, math.Log10)
	case "sin":
		return un(perfmodel.OpTrans, math.Sin)
	case "cos":
		return un(perfmodel.OpTrans, math.Cos)
	case "tan":
		return un(perfmodel.OpTrans, math.Tan)
	case "asin":
		return un(perfmodel.OpTrans, math.Asin)
	case "acos":
		return un(perfmodel.OpTrans, math.Acos)
	case "atan":
		return un(perfmodel.OpTrans, math.Atan)
	case "sinh":
		return un(perfmodel.OpTrans, math.Sinh)
	case "cosh":
		return un(perfmodel.OpTrans, math.Cosh)
	case "tanh":
		return un(perfmodel.OpTrans, math.Tanh)
	case "aint":
		return un(perfmodel.OpSimple, math.Trunc)
	case "anint":
		return un(perfmodel.OpSimple, math.Round)
	case "atan2":
		i.op(perfmodel.OpTrans, kind)
		xf := math.Atan2(args[0].asFloat(), args[1].asFloat())
		v := realValue(xf, kind)
		if i.nrec != nil {
			v.Sh = math.Atan2(args[0].sh(), args[1].sh())
			i.nrec.Intrinsic(i.procName(), e.Pos.Line, name, args[0].asFloat(), v.F, xf, v.Sh)
		}
		return v, nil
	case "sign":
		i.op(perfmodel.OpSimple, kind)
		if e.Typ.Base == ft.TInteger {
			m := args[0].I
			if m < 0 {
				m = -m
			}
			if args[1].I < 0 {
				m = -m
			}
			return intValue(m), nil
		}
		m := math.Abs(args[0].asFloat())
		if math.Signbit(args[1].asFloat()) {
			m = -m
		}
		v := realValue(m, kind)
		if i.nrec != nil {
			// The shadow magnitude follows the primary lane's sign
			// decision; a lane disagreement on the sign argument shows
			// up as divergence downstream.
			ms := math.Abs(args[0].sh())
			if math.Signbit(args[1].asFloat()) {
				ms = -ms
			}
			v.Sh = ms
		}
		return v, nil
	case "mod":
		if e.Typ.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			if args[1].I == 0 {
				return Value{}, &RunError{Pos: e.Pos, Kind: FailNonFinite, Msg: "mod by zero"}
			}
			return intValue(args[0].I % args[1].I), nil
		}
		i.op(perfmodel.OpDiv, kind)
		mf := math.Mod(args[0].asFloat(), args[1].asFloat())
		v := realValue(mf, kind)
		if i.nrec != nil {
			v.Sh = math.Mod(args[0].sh(), args[1].sh())
			i.nrec.Intrinsic(i.procName(), e.Pos.Line, name, args[0].asFloat(), v.F, mf, v.Sh)
		}
		return v, nil
	case "min", "max":
		i.opN(perfmodel.OpSimple, kind, float64(len(args)-1), i.vecFactor)
		if e.Typ.Base == ft.TInteger {
			best := args[0].I
			for _, v := range args[1:] {
				if name == "min" && v.I < best || name == "max" && v.I > best {
					best = v.I
				}
			}
			return intValue(best), nil
		}
		best := args[0].asFloat()
		for _, v := range args[1:] {
			f := v.asFloat()
			if name == "min" {
				best = math.Min(best, f)
			} else {
				best = math.Max(best, f)
			}
		}
		v := realValue(best, kind)
		if i.nrec != nil {
			sh := args[0].sh()
			for _, a := range args[1:] {
				if name == "min" {
					sh = math.Min(sh, a.sh())
				} else {
					sh = math.Max(sh, a.sh())
				}
			}
			v.Sh = sh
		}
		return v, nil
	case "int":
		i.op(perfmodel.OpConv, 4)
		p := int64(math.Trunc(args[0].asFloat()))
		if i.nrec != nil {
			i.nrec.Discretize(i.procName(), e.Pos.Line, name, p, int64(math.Trunc(args[0].sh())))
		}
		return intValue(p), nil
	case "nint":
		i.op(perfmodel.OpConv, 4)
		p := int64(math.Round(args[0].asFloat()))
		if i.nrec != nil {
			i.nrec.Discretize(i.procName(), e.Pos.Line, name, p, int64(math.Round(args[0].sh())))
		}
		return intValue(p), nil
	case "floor":
		i.op(perfmodel.OpConv, 4)
		p := int64(math.Floor(args[0].asFloat()))
		if i.nrec != nil {
			i.nrec.Discretize(i.procName(), e.Pos.Line, name, p, int64(math.Floor(args[0].sh())))
		}
		return intValue(p), nil
	case "real", "dble":
		// Explicit conversions are real work unless the operand is a
		// literal or already of the target kind.
		at := e.Args[0].Type()
		switch {
		case isLiteral(e.Args[0]):
		case at.Base == ft.TInteger:
			i.op(perfmodel.OpConv, 4)
		case at.Kind != kind:
			i.cast(1)
		}
		v := realValue(args[0].asFloat(), kind)
		v.Sh = args[0].sh()
		return v, nil
	case "epsilon":
		if kind == 4 {
			return realValue(float64(nextAfter32(1)), 4), nil
		}
		return realValue(math.Nextafter(1, 2)-1, 8), nil
	case "huge":
		if kind == 4 {
			return realValue(math.MaxFloat32, 4), nil
		}
		return realValue(math.MaxFloat64, 8), nil
	case "tiny":
		if kind == 4 {
			return realValue(math.SmallestNonzeroFloat32*(1<<23), 4), nil
		}
		return realValue(2.2250738585072014e-308, 8), nil
	case "isnan":
		i.op(perfmodel.OpCmp, 8)
		return logicalValue(math.IsNaN(args[0].asFloat())), nil
	default:
		return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown intrinsic %q", name)}
	}
}

func nextAfter32(x float32) float32 {
	return math.Nextafter32(x, 2) - x
}

// argArray resolves an intrinsic's array argument.
func (i *Interp) argArray(fr *frame, e ft.Expr) (*Array, error) {
	ref, ok := e.(*ft.VarRef)
	if !ok {
		return nil, &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: "intrinsic array argument must be a whole array"}
	}
	v := i.loadVar(fr, ref.Decl)
	if v.Arr == nil {
		return nil, &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", ref.Name)}
	}
	return v.Arr, nil
}

// reduceArray implements sum/minval/maxval, priced as a vectorized
// reduction over the array's kind.
func (i *Interp) reduceArray(name string, arr *Array, e *ft.CallExpr) (Value, error) {
	n := arr.Size()
	vf := i.model.VecFactor(arr.Kind, false, true)
	i.opN(perfmodel.OpLoad, arr.Kind, float64(n), vf)
	cls := perfmodel.OpAddSub
	if name != "sum" {
		cls = perfmodel.OpCmp
	}
	i.opN(cls, arr.Kind, float64(n), vf)
	if n == 0 {
		if name == "minval" {
			return realValue(math.MaxFloat64, arr.Kind), nil
		}
		if name == "maxval" {
			return realValue(-math.MaxFloat64, arr.Kind), nil
		}
		return realValue(0, arr.Kind), nil
	}
	switch name {
	case "sum":
		if arr.Kind == 4 {
			var s float32
			for _, v := range arr.Data {
				s += float32(v)
			}
			v := realValue(float64(s), 4)
			if i.nrec != nil {
				var exact float64
				for _, d := range arr.Data {
					exact += d
				}
				v.Sh = shadowSum(arr, exact)
				i.nrec.Intrinsic(i.procName(), e.Pos.Line, name, exact, v.F, exact, v.Sh)
			}
			return v, nil
		}
		var s float64
		for _, v := range arr.Data {
			s += v
		}
		v := realValue(s, 8)
		if i.nrec != nil {
			v.Sh = shadowSum(arr, s)
			i.nrec.Intrinsic(i.procName(), e.Pos.Line, name, s, s, s, v.Sh)
		}
		return v, nil
	case "minval":
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Min(best, v)
		}
		v := realValue(best, arr.Kind)
		if i.nrec != nil && arr.Shadow != nil {
			sh := arr.Shadow[0]
			for _, d := range arr.Shadow[1:] {
				sh = math.Min(sh, d)
			}
			v.Sh = sh
		}
		return v, nil
	default: // maxval
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Max(best, v)
		}
		v := realValue(best, arr.Kind)
		if i.nrec != nil && arr.Shadow != nil {
			sh := arr.Shadow[0]
			for _, d := range arr.Shadow[1:] {
				sh = math.Max(sh, d)
			}
			v.Sh = sh
		}
		return v, nil
	}
}

// shadowSum is the shadow-lane reduction of an array: the float64 sum
// over Shadow when present, else the given full-precision sum of Data.
func shadowSum(arr *Array, dataSum float64) float64 {
	if arr.Shadow == nil {
		return dataSum
	}
	var s float64
	for _, d := range arr.Shadow {
		s += d
	}
	return s
}

// dotProduct implements dot_product with mixed-kind pricing: same-kind
// inputs run as a vector reduction; mixed kinds run scalar with a cast
// per element.
func (i *Interp) dotProduct(a, b *Array, e *ft.CallExpr) (Value, error) {
	if a.Size() != b.Size() {
		return Value{}, &RunError{Pos: e.Pos, Kind: FailBounds,
			Msg: fmt.Sprintf("dot_product size mismatch (%d vs %d)", a.Size(), b.Size())}
	}
	n := a.Size()
	kind := e.Typ.Kind
	if a.Kind == b.Kind {
		vf := i.model.VecFactor(a.Kind, false, true)
		i.opN(perfmodel.OpLoad, a.Kind, 2*float64(n), vf)
		i.opN(perfmodel.OpMul, a.Kind, float64(n), vf)
		i.opN(perfmodel.OpAddSub, a.Kind, float64(n), vf)
	} else {
		i.opN(perfmodel.OpLoad, 8, 2*float64(n), 1)
		i.opN(perfmodel.OpMul, 8, float64(n), 1)
		i.opN(perfmodel.OpAddSub, 8, float64(n), 1)
		i.cast(int64(n))
	}
	if kind == 4 {
		var s float32
		for k := 0; k < n; k++ {
			s += float32(a.Data[k]) * float32(b.Data[k])
		}
		v := realValue(float64(s), 4)
		if i.nrec != nil {
			var exact float64
			for k := 0; k < n; k++ {
				exact += a.Data[k] * b.Data[k]
			}
			v.Sh = shadowDot(a, b, exact)
			i.nrec.Intrinsic(i.procName(), e.Pos.Line, "dot_product", exact, v.F, exact, v.Sh)
		}
		return v, nil
	}
	var s float64
	for k := 0; k < n; k++ {
		s += a.Data[k] * b.Data[k]
	}
	v := realValue(s, 8)
	if i.nrec != nil {
		v.Sh = shadowDot(a, b, s)
		i.nrec.Intrinsic(i.procName(), e.Pos.Line, "dot_product", s, s, s, v.Sh)
	}
	return v, nil
}

// shadowDot is the shadow-lane dot product, falling back per-operand to
// the primary data when a side has no shadow storage.
func shadowDot(a, b *Array, dataDot float64) float64 {
	if a.Shadow == nil && b.Shadow == nil {
		return dataDot
	}
	as, bs := a.Shadow, b.Shadow
	if as == nil {
		as = a.Data
	}
	if bs == nil {
		bs = b.Data
	}
	var s float64
	for k := 0; k < len(as) && k < len(bs); k++ {
		s += as[k] * bs[k]
	}
	return s
}
