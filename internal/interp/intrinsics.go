package interp

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// evalIntrinsic evaluates an intrinsic function call, charging costs by
// operation class. Results are computed in float64 and rounded to the
// call's static result kind, matching how a kind-4 libm call rounds.
func (i *Interp) evalIntrinsic(fr *frame, e *ft.CallExpr) (Value, error) {
	name := e.Intrinsic
	kind := e.Typ.Kind
	if e.Typ.Base != ft.TReal {
		kind = 4
	}

	// Array-argument intrinsics first (they must not evaluate the array
	// as a scalar expression).
	switch name {
	case "size":
		arr, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if len(e.Args) == 2 {
			dv, err := i.evalExpr(fr, e.Args[1])
			if err != nil {
				return Value{}, err
			}
			d := int(dv.asInt())
			if d < 1 || d > len(arr.Ext) {
				return Value{}, &RunError{Pos: e.Pos, Kind: FailBounds,
					Msg: fmt.Sprintf("size dim %d out of range 1..%d", d, len(arr.Ext))}
			}
			return intValue(int64(arr.Ext[d-1])), nil
		}
		return intValue(int64(arr.Size())), nil
	case "sum", "minval", "maxval":
		arr, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		return i.reduceArray(name, arr, e)
	case "dot_product":
		a, err := i.argArray(fr, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := i.argArray(fr, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		return i.dotProduct(a, b, e)
	}

	args := make([]Value, len(e.Args))
	for k, a := range e.Args {
		v, err := i.evalExpr(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[k] = v
	}

	un := func(cls perfmodel.OpClass, f func(float64) float64) (Value, error) {
		i.op(cls, kind)
		return realValue(f(args[0].asFloat()), kind), nil
	}

	switch name {
	case "abs":
		if e.Typ.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return intValue(v), nil
		}
		return un(perfmodel.OpSimple, math.Abs)
	case "sqrt":
		return un(perfmodel.OpSqrt, math.Sqrt)
	case "exp":
		return un(perfmodel.OpTrans, math.Exp)
	case "log":
		return un(perfmodel.OpTrans, math.Log)
	case "log10":
		return un(perfmodel.OpTrans, math.Log10)
	case "sin":
		return un(perfmodel.OpTrans, math.Sin)
	case "cos":
		return un(perfmodel.OpTrans, math.Cos)
	case "tan":
		return un(perfmodel.OpTrans, math.Tan)
	case "asin":
		return un(perfmodel.OpTrans, math.Asin)
	case "acos":
		return un(perfmodel.OpTrans, math.Acos)
	case "atan":
		return un(perfmodel.OpTrans, math.Atan)
	case "sinh":
		return un(perfmodel.OpTrans, math.Sinh)
	case "cosh":
		return un(perfmodel.OpTrans, math.Cosh)
	case "tanh":
		return un(perfmodel.OpTrans, math.Tanh)
	case "aint":
		return un(perfmodel.OpSimple, math.Trunc)
	case "anint":
		return un(perfmodel.OpSimple, math.Round)
	case "atan2":
		i.op(perfmodel.OpTrans, kind)
		return realValue(math.Atan2(args[0].asFloat(), args[1].asFloat()), kind), nil
	case "sign":
		i.op(perfmodel.OpSimple, kind)
		if e.Typ.Base == ft.TInteger {
			m := args[0].I
			if m < 0 {
				m = -m
			}
			if args[1].I < 0 {
				m = -m
			}
			return intValue(m), nil
		}
		m := math.Abs(args[0].asFloat())
		if math.Signbit(args[1].asFloat()) {
			m = -m
		}
		return realValue(m, kind), nil
	case "mod":
		if e.Typ.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			if args[1].I == 0 {
				return Value{}, &RunError{Pos: e.Pos, Kind: FailNonFinite, Msg: "mod by zero"}
			}
			return intValue(args[0].I % args[1].I), nil
		}
		i.op(perfmodel.OpDiv, kind)
		return realValue(math.Mod(args[0].asFloat(), args[1].asFloat()), kind), nil
	case "min", "max":
		i.opN(perfmodel.OpSimple, kind, float64(len(args)-1), i.vecFactor)
		if e.Typ.Base == ft.TInteger {
			best := args[0].I
			for _, v := range args[1:] {
				if name == "min" && v.I < best || name == "max" && v.I > best {
					best = v.I
				}
			}
			return intValue(best), nil
		}
		best := args[0].asFloat()
		for _, v := range args[1:] {
			f := v.asFloat()
			if name == "min" {
				best = math.Min(best, f)
			} else {
				best = math.Max(best, f)
			}
		}
		return realValue(best, kind), nil
	case "int":
		i.op(perfmodel.OpConv, 4)
		return intValue(int64(math.Trunc(args[0].asFloat()))), nil
	case "nint":
		i.op(perfmodel.OpConv, 4)
		return intValue(int64(math.Round(args[0].asFloat()))), nil
	case "floor":
		i.op(perfmodel.OpConv, 4)
		return intValue(int64(math.Floor(args[0].asFloat()))), nil
	case "real", "dble":
		// Explicit conversions are real work unless the operand is a
		// literal or already of the target kind.
		at := e.Args[0].Type()
		switch {
		case isLiteral(e.Args[0]):
		case at.Base == ft.TInteger:
			i.op(perfmodel.OpConv, 4)
		case at.Kind != kind:
			i.cast(1)
		}
		return realValue(args[0].asFloat(), kind), nil
	case "epsilon":
		if kind == 4 {
			return realValue(float64(nextAfter32(1)), 4), nil
		}
		return realValue(math.Nextafter(1, 2)-1, 8), nil
	case "huge":
		if kind == 4 {
			return realValue(math.MaxFloat32, 4), nil
		}
		return realValue(math.MaxFloat64, 8), nil
	case "tiny":
		if kind == 4 {
			return realValue(math.SmallestNonzeroFloat32*(1<<23), 4), nil
		}
		return realValue(2.2250738585072014e-308, 8), nil
	case "isnan":
		i.op(perfmodel.OpCmp, 8)
		return logicalValue(math.IsNaN(args[0].asFloat())), nil
	default:
		return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown intrinsic %q", name)}
	}
}

func nextAfter32(x float32) float32 {
	return math.Nextafter32(x, 2) - x
}

// argArray resolves an intrinsic's array argument.
func (i *Interp) argArray(fr *frame, e ft.Expr) (*Array, error) {
	ref, ok := e.(*ft.VarRef)
	if !ok {
		return nil, &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: "intrinsic array argument must be a whole array"}
	}
	v := i.loadVar(fr, ref.Decl)
	if v.Arr == nil {
		return nil, &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", ref.Name)}
	}
	return v.Arr, nil
}

// reduceArray implements sum/minval/maxval, priced as a vectorized
// reduction over the array's kind.
func (i *Interp) reduceArray(name string, arr *Array, e *ft.CallExpr) (Value, error) {
	n := arr.Size()
	vf := i.model.VecFactor(arr.Kind, false, true)
	i.opN(perfmodel.OpLoad, arr.Kind, float64(n), vf)
	cls := perfmodel.OpAddSub
	if name != "sum" {
		cls = perfmodel.OpCmp
	}
	i.opN(cls, arr.Kind, float64(n), vf)
	if n == 0 {
		if name == "minval" {
			return realValue(math.MaxFloat64, arr.Kind), nil
		}
		if name == "maxval" {
			return realValue(-math.MaxFloat64, arr.Kind), nil
		}
		return realValue(0, arr.Kind), nil
	}
	switch name {
	case "sum":
		if arr.Kind == 4 {
			var s float32
			for _, v := range arr.Data {
				s += float32(v)
			}
			return realValue(float64(s), 4), nil
		}
		var s float64
		for _, v := range arr.Data {
			s += v
		}
		return realValue(s, 8), nil
	case "minval":
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Min(best, v)
		}
		return realValue(best, arr.Kind), nil
	default: // maxval
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Max(best, v)
		}
		return realValue(best, arr.Kind), nil
	}
}

// dotProduct implements dot_product with mixed-kind pricing: same-kind
// inputs run as a vector reduction; mixed kinds run scalar with a cast
// per element.
func (i *Interp) dotProduct(a, b *Array, e *ft.CallExpr) (Value, error) {
	if a.Size() != b.Size() {
		return Value{}, &RunError{Pos: e.Pos, Kind: FailBounds,
			Msg: fmt.Sprintf("dot_product size mismatch (%d vs %d)", a.Size(), b.Size())}
	}
	n := a.Size()
	kind := e.Typ.Kind
	if a.Kind == b.Kind {
		vf := i.model.VecFactor(a.Kind, false, true)
		i.opN(perfmodel.OpLoad, a.Kind, 2*float64(n), vf)
		i.opN(perfmodel.OpMul, a.Kind, float64(n), vf)
		i.opN(perfmodel.OpAddSub, a.Kind, float64(n), vf)
	} else {
		i.opN(perfmodel.OpLoad, 8, 2*float64(n), 1)
		i.opN(perfmodel.OpMul, 8, float64(n), 1)
		i.opN(perfmodel.OpAddSub, 8, float64(n), 1)
		i.cast(int64(n))
	}
	if kind == 4 {
		var s float32
		for k := 0; k < n; k++ {
			s += float32(a.Data[k]) * float32(b.Data[k])
		}
		return realValue(float64(s), 4), nil
	}
	var s float64
	for k := 0; k < n; k++ {
		s += a.Data[k] * b.Data[k]
	}
	return realValue(s, 8), nil
}
