package interp

// compile.go lowers the checked FT AST to the closure IR run by vm.go.
// Compilation happens once per Interp (inside New): every variable
// reference is resolved to a (lane, slot) pair, every operation cost is
// folded to a float constant, static type dispatch (operand kinds,
// literal detection, intrinsic selection) is decided here, and recorder
// callsites are bound to numerics.Site handles so instrumented runs pay
// no per-event map lookups. The generated closures must reproduce the
// tree-walker's observable behaviour exactly: evaluation order, charge
// order and float association, recorder call sequences, error messages,
// and partial effects before an error. Where the tree-walker makes a
// dynamic decision (a runtime kind, a runtime Base check), the closure
// makes the same dynamic decision rather than trusting static types.
//
// Recorder and cast attribution follow the *executing* procedure, which
// is static for body statements (a statement of proc P always runs with
// P on top of the call stack; main's body runs with an empty stack,
// reported as "main"). Declaration initializers are the exception: a
// callee's locals are initialized before the callee is pushed, so their
// events attribute to the caller. The compiler therefore carries a
// `dyn` flag — set while compiling initializers — that switches
// recorder callsites from precompiled Sites to dynamic procName lookup.

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

type compiler struct {
	prog     *ft.Program
	model    *perfmodel.Model
	an       *perfmodel.Analysis
	rec      *numerics.Recorder
	cp       *cprog
	siteProc string // recorder attribution for the body being compiled
	dyn      bool   // compiling decl inits: attribute to the dynamic caller
}

func compileProgram(prog *ft.Program, model *perfmodel.Model, an *perfmodel.Analysis, rec *numerics.Recorder) *cprog {
	c := &compiler{prog: prog, model: model, an: an, rec: rec}
	cp := &cprog{prog: prog, procs: make([]*cproc, len(prog.AllProcs))}
	c.cp = cp
	shadow := rec != nil
	// Shells first so call sites can reference procedures compiled later
	// (mutual recursion).
	for _, p := range prog.AllProcs {
		cp.procs[p.Index] = &cproc{
			proc: p, qname: p.QName(), inlined: an.Inlinable[p],
			numSlots: p.NumSlots, shadow: shadow,
		}
	}
	cp.main = cp.procs[prog.Main.Index]
	cp.modInits = make([][]vinit, len(prog.Modules))
	for _, mod := range prog.Modules {
		inits := make([]vinit, 0, len(mod.Decls))
		for _, d := range mod.Decls {
			inits = append(inits, c.declInit(d))
		}
		cp.modInits[mod.Index] = inits
	}
	for _, p := range prog.AllProcs {
		tp := cp.procs[p.Index]
		if p == prog.Main {
			c.siteProc = "main"
		} else {
			c.siteProc = tp.qname
		}
		for _, d := range p.Decls {
			if d.IsArg {
				continue
			}
			tp.inits = append(tp.inits, c.declInit(d))
		}
		tp.body = c.stmts(p.Body)
	}
	return cp
}

func (c *compiler) cost(cl perfmodel.OpClass, kind int) float64 {
	return c.model.OpCost(cl, kind)
}

// kindIdx maps a real kind to a 2-entry cost table index (8 -> 1).
func kindIdx(kind int) int {
	if kind == 8 {
		return 1
	}
	return 0
}

// rsite is a compiled recorder callsite: a precompiled Site for body
// statements, or a dynamic (procName at run time) fallback for decl
// initializers. Methods are only called when m.rec != nil.
type rsite struct {
	site *numerics.Site
	line int
	atom string
}

func (c *compiler) rsite(line int) rsite {
	if c.dyn || c.rec == nil {
		return rsite{line: line}
	}
	return rsite{site: c.rec.Site(c.siteProc, line), line: line}
}

func (c *compiler) asite(line int, atom string) rsite {
	if c.dyn || c.rec == nil {
		return rsite{line: line, atom: atom}
	}
	return rsite{site: c.rec.AssignSite(c.siteProc, line, atom), line: line, atom: atom}
}

func (s rsite) op(m *vm, op byte, x, y, xs, ys, res, exact, shadow float64) {
	if s.site != nil {
		s.site.Op(op, x, y, xs, ys, res, exact, shadow)
		return
	}
	m.rec.Op(m.procName(), s.line, op, x, y, xs, ys, res, exact, shadow)
}

func (s rsite) intrinsic(m *vm, name string, x, res, exact, shadow float64) {
	if s.site != nil {
		s.site.Intrinsic(name, x, res, exact, shadow)
		return
	}
	m.rec.Intrinsic(m.procName(), s.line, name, x, res, exact, shadow)
}

func (s rsite) assign(m *vm, primary, shadow, stored float64) {
	if s.site != nil {
		s.site.Assign(primary, shadow, stored)
		return
	}
	m.rec.Assign(m.procName(), s.line, s.atom, primary, shadow, stored)
}

func (s rsite) branch(m *vm) {
	if s.site != nil {
		s.site.Branch()
		return
	}
	m.rec.Branch(m.procName(), s.line)
}

func (s rsite) discretize(m *vm, name string, primary, shadow int64) {
	if s.site != nil {
		s.site.Discretize(primary, shadow)
		return
	}
	m.rec.Discretize(m.procName(), s.line, name, primary, shadow)
}

// Slot access ---------------------------------------------------------------

// readDecl compiles a slot read producing the tree-walker's Value view.
func (c *compiler) readDecl(d *ft.VarDecl) func(m *vm, fr *vframe) Value {
	slot := d.Slot
	kind := d.Kind
	if d.Proc != nil {
		switch {
		case d.IsArray():
			return func(m *vm, fr *vframe) Value {
				return Value{Base: ft.TReal, Kind: kind, Arr: fr.a[slot]}
			}
		case d.Base == ft.TReal:
			return func(m *vm, fr *vframe) Value {
				v := Value{Base: ft.TReal, Kind: kind, F: fr.f[slot], Sh: fr.f[slot]}
				if fr.sh != nil {
					v.Sh = fr.sh[slot]
				}
				return v
			}
		case d.Base == ft.TInteger:
			return func(m *vm, fr *vframe) Value { return intValue(fr.i[slot]) }
		default:
			return func(m *vm, fr *vframe) Value { return logicalValue(fr.b[slot]) }
		}
	}
	mi := d.InMod.Index
	switch {
	case d.IsArray():
		return func(m *vm, fr *vframe) Value {
			return Value{Base: ft.TReal, Kind: kind, Arr: m.gl[mi].a[slot]}
		}
	case d.Base == ft.TReal:
		return func(m *vm, fr *vframe) Value {
			g := m.gl[mi]
			v := Value{Base: ft.TReal, Kind: kind, F: g.f[slot], Sh: g.f[slot]}
			if g.sh != nil {
				v.Sh = g.sh[slot]
			}
			return v
		}
	case d.Base == ft.TInteger:
		return func(m *vm, fr *vframe) Value { return intValue(m.gl[mi].i[slot]) }
	default:
		return func(m *vm, fr *vframe) Value { return logicalValue(m.gl[mi].b[slot]) }
	}
}

func (c *compiler) loadDecl(d *ft.VarDecl) vexpr {
	rd := c.readDecl(d)
	return func(m *vm, fr *vframe) (Value, error) { return rd(m, fr), nil }
}

// storeDecl compiles a scalar store. v must already be converted to the
// declared type (convertScalar), matching Interp.storeScalar usage.
func (c *compiler) storeDecl(d *ft.VarDecl) func(m *vm, fr *vframe, v Value) {
	slot := d.Slot
	if d.Proc != nil {
		switch d.Base {
		case ft.TReal:
			return func(m *vm, fr *vframe, v Value) {
				fr.f[slot] = v.F
				if fr.sh != nil {
					fr.sh[slot] = v.Sh
				}
			}
		case ft.TInteger:
			return func(m *vm, fr *vframe, v Value) { fr.i[slot] = v.I }
		default:
			return func(m *vm, fr *vframe, v Value) { fr.b[slot] = v.B }
		}
	}
	mi := d.InMod.Index
	switch d.Base {
	case ft.TReal:
		return func(m *vm, fr *vframe, v Value) {
			g := m.gl[mi]
			g.f[slot] = v.F
			if g.sh != nil {
				g.sh[slot] = v.Sh
			}
		}
	case ft.TInteger:
		return func(m *vm, fr *vframe, v Value) { m.gl[mi].i[slot] = v.I }
	default:
		return func(m *vm, fr *vframe, v Value) { m.gl[mi].b[slot] = v.B }
	}
}

// arrGet compiles a direct *Array fetch for an array declaration.
func (c *compiler) arrGet(d *ft.VarDecl) func(m *vm, fr *vframe) *Array {
	slot := d.Slot
	if d.Proc != nil {
		return func(m *vm, fr *vframe) *Array { return fr.a[slot] }
	}
	mi := d.InMod.Index
	return func(m *vm, fr *vframe) *Array { return m.gl[mi].a[slot] }
}

func (c *compiler) storeArrDecl(d *ft.VarDecl) func(m *vm, fr *vframe, arr *Array) {
	slot := d.Slot
	if d.Proc != nil {
		return func(m *vm, fr *vframe, arr *Array) { fr.a[slot] = arr }
	}
	mi := d.InMod.Index
	return func(m *vm, fr *vframe, arr *Array) { m.gl[mi].a[slot] = arr }
}

func (c *compiler) storeIntDecl(d *ft.VarDecl) func(m *vm, fr *vframe, v int64) {
	slot := d.Slot
	if d.Proc != nil {
		return func(m *vm, fr *vframe, v int64) { fr.i[slot] = v }
	}
	mi := d.InMod.Index
	return func(m *vm, fr *vframe, v int64) { m.gl[mi].i[slot] = v }
}

// errExpr compiles to a constant-error expression (the error fires at
// evaluation time, like the tree-walker, not at compile time).
func errExpr(err error) vexpr {
	return func(m *vm, fr *vframe) (Value, error) { return Value{}, err }
}

// Declarations --------------------------------------------------------------

// declInit compiles one declaration's initialization (Interp.initDecl).
// Initializer expressions attribute dynamically (see file comment).
func (c *compiler) declInit(d *ft.VarDecl) vinit {
	savedDyn := c.dyn
	c.dyn = true
	defer func() { c.dyn = savedDyn }()

	if d.IsArray() {
		type dimPlan struct {
			assumed bool
			lo, hi  vexpr // lo nil means default lower bound 1
		}
		dims := make([]dimPlan, len(d.Dims))
		for k, dim := range d.Dims {
			dp := dimPlan{assumed: dim.Assumed}
			if !dim.Assumed {
				if dim.Lo != nil {
					dp.lo = c.expr(dim.Lo)
				}
				dp.hi = c.expr(dim.Hi)
			}
			dims[k] = dp
		}
		notReal := d.Base != ft.TReal
		kind := d.Kind
		setArr := c.storeArrDecl(d)
		name := d.Name
		pos := d.Pos
		rank := len(d.Dims)
		return func(m *vm, fr *vframe) error {
			var lobuf, extbuf [4]int
			var lo, ext []int
			if rank <= len(lobuf) {
				lo, ext = lobuf[:rank], extbuf[:rank]
			} else {
				lo, ext = make([]int, rank), make([]int, rank)
			}
			for k := range dims {
				dp := &dims[k]
				if dp.assumed {
					return &RunError{Pos: pos, Kind: FailInternal,
						Msg: fmt.Sprintf("assumed-shape array %q has no bound actual", name)}
				}
				loV := 1
				if dp.lo != nil {
					v, err := dp.lo(m, fr)
					if err != nil {
						return err
					}
					loV = int(v.asInt())
				}
				hv, err := dp.hi(m, fr)
				if err != nil {
					return err
				}
				lo[k] = loV
				ext[k] = int(hv.asInt()) - loV + 1
				if ext[k] < 0 {
					ext[k] = 0
				}
			}
			if notReal {
				return &RunError{Pos: pos, Kind: FailInternal,
					Msg: fmt.Sprintf("array %q: only real arrays are supported", name)}
			}
			arr := NewArray(kind, lo, ext)
			if m.rec != nil {
				arr.Shadow = make([]float64, len(arr.Data))
			}
			setArr(m, fr, arr)
			return nil
		}
	}

	store := c.storeDecl(d)
	dt := d.Type()
	if d.Init == nil {
		var zero Value
		switch d.Base {
		case ft.TReal:
			zero = realValue(0, d.Kind)
		case ft.TInteger:
			zero = intValue(0)
		case ft.TLogical:
			zero = logicalValue(false)
		}
		return func(m *vm, fr *vframe) error {
			store(m, fr, zero)
			return nil
		}
	}
	initE := c.expr(d.Init)
	return func(m *vm, fr *vframe) error {
		v, err := initE(m, fr)
		if err != nil {
			return err
		}
		store(m, fr, convertScalar(v, dt))
		return nil
	}
}

// Expressions ---------------------------------------------------------------

func (c *compiler) expr(e ft.Expr) vexpr {
	switch e := e.(type) {
	case *ft.IntLit:
		v := intValue(e.Val)
		return func(m *vm, fr *vframe) (Value, error) { return v, nil }
	case *ft.RealLit:
		v := realValue(e.Val, e.Kind)
		return func(m *vm, fr *vframe) (Value, error) { return v, nil }
	case *ft.LogicalLit:
		v := logicalValue(e.Val)
		return func(m *vm, fr *vframe) (Value, error) { return v, nil }
	case *ft.StrLit:
		v := Value{Base: ft.TString, S: e.Val}
		return func(m *vm, fr *vframe) (Value, error) { return v, nil }
	case *ft.VarRef:
		if e.Decl == nil {
			return errExpr(&RunError{Pos: e.Pos, Kind: FailInternal,
				Msg: fmt.Sprintf("unresolved variable %q", e.Name)})
		}
		return c.loadDecl(e.Decl)
	case *ft.IndexExpr:
		return c.loadElem(e)
	case *ft.UnExpr:
		return c.unary(e)
	case *ft.BinExpr:
		return c.binary(e)
	case *ft.CallExpr:
		if e.Intrinsic != "" {
			return c.intrinsic(e)
		}
		if e.Proc == nil {
			return errExpr(&RunError{Pos: e.Pos, Kind: FailInternal,
				Msg: fmt.Sprintf("unresolved function %q", e.Name)})
		}
		return c.invoke(e.Proc, e.Args, e.Pos)
	default:
		return errExpr(&RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("unknown expression %T", e)})
	}
}

// eref is a compiled array element reference (Interp.elementRef).
type eref struct {
	get    func(m *vm, fr *vframe) *Array
	idxs   []vexpr
	name   string
	pos    ft.Pos
	ialu   float64
	errNil error
}

func (c *compiler) elemRef(e *ft.IndexExpr) *eref {
	r := &eref{
		idxs: make([]vexpr, len(e.Indices)),
		name: e.Arr.Name,
		pos:  e.Pos,
		ialu: c.cost(perfmodel.OpIntALU, 4),
		errNil: &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", e.Arr.Name)},
	}
	if e.Arr.Decl != nil {
		r.get = c.arrGet(e.Arr.Decl)
	} else {
		r.get = func(m *vm, fr *vframe) *Array { return nil }
	}
	for k, ix := range e.Indices {
		r.idxs[k] = c.expr(ix)
	}
	return r
}

func (r *eref) resolve(m *vm, fr *vframe) (*Array, int, error) {
	arr := r.get(m, fr)
	if arr == nil {
		return nil, 0, r.errNil
	}
	var buf [8]int
	var idx []int
	if len(r.idxs) <= len(buf) {
		idx = buf[:len(r.idxs)]
	} else {
		idx = make([]int, len(r.idxs))
	}
	for k, ixe := range r.idxs {
		v, err := ixe(m, fr)
		if err != nil {
			return nil, 0, err
		}
		m.charge(r.ialu)
		idx[k] = int(v.asInt())
	}
	off, err := arr.flatIndex(idx)
	if err != nil {
		return nil, 0, &RunError{Pos: r.pos, Kind: FailBounds,
			Msg: fmt.Sprintf("%s: %v", r.name, err)}
	}
	return arr, off, nil
}

func (c *compiler) loadElem(e *ft.IndexExpr) vexpr {
	r := c.elemRef(e)
	loadCost := [2]float64{c.cost(perfmodel.OpLoad, 4), c.cost(perfmodel.OpLoad, 8)}
	return func(m *vm, fr *vframe) (Value, error) {
		arr, off, err := r.resolve(m, fr)
		if err != nil {
			return Value{}, err
		}
		m.chargeMem(loadCost[kindIdx(arr.Kind)])
		v := Value{Base: ft.TReal, Kind: arr.Kind, F: arr.Data[off], Sh: arr.Data[off]}
		if arr.Shadow != nil {
			v.Sh = arr.Shadow[off]
		}
		return v, nil
	}
}

func (c *compiler) unary(e *ft.UnExpr) vexpr {
	xe := c.expr(e.X)
	switch e.Op {
	case ft.MINUS:
		intCost := c.cost(perfmodel.OpIntALU, 4)
		negCost := [2]float64{c.cost(perfmodel.OpAddSub, 4), c.cost(perfmodel.OpAddSub, 8)}
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			if x.Base == ft.TInteger {
				m.charge(intCost)
				return intValue(-x.I), nil
			}
			m.charge(negCost[kindIdx(x.Kind)])
			v := realValue(-x.F, x.Kind)
			if m.rec != nil {
				v.Sh = -x.sh()
			}
			return v, nil
		}
	case ft.PLUS:
		return xe
	case ft.NOT:
		intCost := c.cost(perfmodel.OpIntALU, 4)
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(intCost)
			return logicalValue(!x.B), nil
		}
	default:
		err := &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown unary op %v", e.Op)}
		return func(m *vm, fr *vframe) (Value, error) {
			if _, xerr := xe(m, fr); xerr != nil {
				return Value{}, xerr
			}
			return Value{}, err
		}
	}
}

// operandCast compiles Interp.chargeOperandCast to a charge closure
// (nil when no charge applies).
func (c *compiler) operandCast(e ft.Expr, at ft.Type, opKind int) func(m *vm) {
	if isLiteral(e) {
		return nil
	}
	switch {
	case at.Base == ft.TInteger:
		conv := c.cost(perfmodel.OpConv, 4)
		return func(m *vm) { m.charge(conv) }
	case at.Base == ft.TReal && at.Kind != opKind:
		return func(m *vm) { m.cast(1) }
	}
	return nil
}

func (c *compiler) binary(e *ft.BinExpr) vexpr {
	xe, ye := c.expr(e.X), c.expr(e.Y)
	intCost := c.cost(perfmodel.OpIntALU, 4)

	switch e.Op {
	case ft.AND:
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			y, err := ye(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(intCost)
			return logicalValue(x.B && y.B), nil
		}
	case ft.OR:
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			y, err := ye(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(intCost)
			return logicalValue(x.B || y.B), nil
		}
	}

	xt, yt := e.X.Type(), e.Y.Type()
	switch e.Op {
	case ft.EQ, ft.NE, ft.LT, ft.LE, ft.GT, ft.GE:
		if xt.Base == ft.TLogical {
			isEQ := e.Op == ft.EQ
			return func(m *vm, fr *vframe) (Value, error) {
				x, err := xe(m, fr)
				if err != nil {
					return Value{}, err
				}
				y, err := ye(m, fr)
				if err != nil {
					return Value{}, err
				}
				m.charge(intCost)
				if isEQ {
					return logicalValue(x.B == y.B), nil
				}
				return logicalValue(x.B != y.B), nil
			}
		}
		if xt.Base == ft.TInteger && yt.Base == ft.TInteger {
			op := e.Op
			return func(m *vm, fr *vframe) (Value, error) {
				x, err := xe(m, fr)
				if err != nil {
					return Value{}, err
				}
				y, err := ye(m, fr)
				if err != nil {
					return Value{}, err
				}
				m.charge(intCost)
				return logicalValue(intCompare(op, x.I, y.I)), nil
			}
		}
		k := e.Typ.Kind
		if k == 0 {
			k = promoteKind(xt, yt)
		}
		chX := c.operandCast(e.X, xt, k)
		chY := c.operandCast(e.Y, yt, k)
		cmpCost := c.cost(perfmodel.OpCmp, k)
		k4 := k == 4
		op := e.Op
		kk := k
		rs := c.rsite(e.Pos.Line)
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			y, err := ye(m, fr)
			if err != nil {
				return Value{}, err
			}
			if chX != nil {
				chX(m)
			}
			if chY != nil {
				chY(m)
			}
			m.charge(cmpCost)
			xf, yf := convertReal(x.asFloat(), kk), convertReal(y.asFloat(), kk)
			var b bool
			if k4 {
				b = f32Compare(op, float32(xf), float32(yf))
			} else {
				b = f64Compare(op, xf, yf)
			}
			if m.rec != nil && b != f64Compare(op, x.sh(), y.sh()) {
				rs.branch(m)
			}
			return logicalValue(b), nil
		}
	}

	// Arithmetic.
	if xt.Base == ft.TInteger && yt.Base == ft.TInteger {
		op := e.Op
		pos := e.Pos
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := xe(m, fr)
			if err != nil {
				return Value{}, err
			}
			y, err := ye(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(intCost)
			return intArithVal(op, pos, x.I, y.I)
		}
	}

	k := e.Typ.Kind
	chX := c.operandCast(e.X, xt, k)
	chY := c.operandCast(e.Y, yt, k)
	var opByte byte
	var chargeOp func(m *vm)
	switch e.Op {
	case ft.PLUS:
		opByte = '+'
	case ft.MINUS:
		opByte = '-'
	case ft.STAR:
		opByte = '*'
	case ft.SLASH:
		opByte = '/'
	case ft.POW:
		opByte = '^'
	default:
		err := &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown binary op %v", e.Op)}
		return func(m *vm, fr *vframe) (Value, error) {
			if _, e1 := xe(m, fr); e1 != nil {
				return Value{}, e1
			}
			if _, e2 := ye(m, fr); e2 != nil {
				return Value{}, e2
			}
			if chX != nil {
				chX(m)
			}
			if chY != nil {
				chY(m)
			}
			return Value{}, err
		}
	}
	switch e.Op {
	case ft.PLUS, ft.MINUS:
		cost := c.cost(perfmodel.OpAddSub, k)
		chargeOp = func(m *vm) { m.charge(cost) }
	case ft.STAR:
		cost := c.cost(perfmodel.OpMul, k)
		chargeOp = func(m *vm) { m.charge(cost) }
	case ft.SLASH:
		cost := c.cost(perfmodel.OpDiv, k)
		chargeOp = func(m *vm) { m.charge(cost) }
	case ft.POW:
		// x**n with a small constant integer exponent lowers to
		// multiplies; anything else is a pow call (same as the walker).
		if lit, ok := e.Y.(*ft.IntLit); ok && lit.Val >= 0 && lit.Val <= 4 {
			costN := c.cost(perfmodel.OpMul, k) * float64(max64(lit.Val-1, 1))
			chargeOp = func(m *vm) { m.charge(costN) }
		} else {
			cost := c.cost(perfmodel.OpPow, k)
			chargeOp = func(m *vm) { m.charge(cost) }
		}
	}
	// prim computes the primary-lane result at kind k.
	var prim func(xf, yf float64, y Value) float64
	isPow := e.Op == ft.POW
	powInt := isPow && yt.Base == ft.TInteger
	if isPow {
		ytt := yt
		kk := k
		prim = func(xf, yf float64, y Value) float64 { return powReal(kk, ytt, xf, yf, y.I) }
	} else if k == 4 {
		switch e.Op {
		case ft.PLUS:
			prim = func(xf, yf float64, y Value) float64 { return float64(float32(xf) + float32(yf)) }
		case ft.MINUS:
			prim = func(xf, yf float64, y Value) float64 { return float64(float32(xf) - float32(yf)) }
		case ft.STAR:
			prim = func(xf, yf float64, y Value) float64 { return float64(float32(xf) * float32(yf)) }
		default:
			prim = func(xf, yf float64, y Value) float64 { return float64(float32(xf) / float32(yf)) }
		}
	} else {
		switch e.Op {
		case ft.PLUS:
			prim = func(xf, yf float64, y Value) float64 { return xf + yf }
		case ft.MINUS:
			prim = func(xf, yf float64, y Value) float64 { return xf - yf }
		case ft.STAR:
			prim = func(xf, yf float64, y Value) float64 { return xf * yf }
		default:
			prim = func(xf, yf float64, y Value) float64 { return xf / yf }
		}
	}
	kk := k
	ob := opByte
	rs := c.rsite(e.Pos.Line)
	return func(m *vm, fr *vframe) (Value, error) {
		x, err := xe(m, fr)
		if err != nil {
			return Value{}, err
		}
		y, err := ye(m, fr)
		if err != nil {
			return Value{}, err
		}
		if chX != nil {
			chX(m)
		}
		if chY != nil {
			chY(m)
		}
		chargeOp(m)
		xf, yf := convertReal(x.asFloat(), kk), convertReal(y.asFloat(), kk)
		r := prim(xf, yf, y)
		v := Value{Base: ft.TReal, Kind: kk, F: r, Sh: r}
		if m.rec != nil {
			xs, ys := x.sh(), y.sh()
			yp := yf
			if powInt {
				// The integer-exponent path bypasses yf.
				yp = float64(y.I)
			}
			exact := binOp64(ob, xf, yp)
			v.Sh = binOp64(ob, xs, ys)
			rs.op(m, ob, xf, yp, xs, ys, r, exact, v.Sh)
		}
		return v, nil
	}
}

// Intrinsics ----------------------------------------------------------------

// argArrayGet compiles an intrinsic's array-argument resolution
// (Interp.argArray).
func (c *compiler) argArrayGet(e ft.Expr) func(m *vm, fr *vframe) (*Array, error) {
	ref, ok := e.(*ft.VarRef)
	if !ok || ref.Decl == nil {
		err := &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: "intrinsic array argument must be a whole array"}
		return func(m *vm, fr *vframe) (*Array, error) { return nil, err }
	}
	get := c.arrGet(ref.Decl)
	errNil := &RunError{Pos: e.ExprPos(), Kind: FailInternal,
		Msg: fmt.Sprintf("%q is not an allocated array", ref.Name)}
	return func(m *vm, fr *vframe) (*Array, error) {
		arr := get(m, fr)
		if arr == nil {
			return nil, errNil
		}
		return arr, nil
	}
}

// unIntrinsic compiles the one-real-argument intrinsic pattern.
func (c *compiler) unIntrinsic(e *ft.CallExpr, kind int, cls perfmodel.OpClass, fn func(float64) float64) vexpr {
	a0 := c.expr(e.Args[0])
	cost := c.cost(cls, kind)
	name := e.Intrinsic
	rs := c.rsite(e.Pos.Line)
	kk := kind
	return func(m *vm, fr *vframe) (Value, error) {
		x0, err := a0(m, fr)
		if err != nil {
			return Value{}, err
		}
		m.charge(cost)
		x := x0.asFloat()
		v := realValue(fn(x), kk)
		if m.rec != nil {
			v.Sh = fn(x0.sh())
			rs.intrinsic(m, name, x, v.F, fn(x), v.Sh)
		}
		return v, nil
	}
}

func (c *compiler) intrinsic(e *ft.CallExpr) vexpr {
	name := e.Intrinsic
	kind := e.Typ.Kind
	if e.Typ.Base != ft.TReal {
		kind = 4
	}
	pos := e.Pos

	// Array-argument intrinsics first (they must not evaluate the array
	// as a scalar expression).
	switch name {
	case "size":
		a0 := c.argArrayGet(e.Args[0])
		if len(e.Args) == 2 {
			dE := c.expr(e.Args[1])
			return func(m *vm, fr *vframe) (Value, error) {
				arr, err := a0(m, fr)
				if err != nil {
					return Value{}, err
				}
				dv, err := dE(m, fr)
				if err != nil {
					return Value{}, err
				}
				d := int(dv.asInt())
				if d < 1 || d > len(arr.Ext) {
					return Value{}, &RunError{Pos: pos, Kind: FailBounds,
						Msg: fmt.Sprintf("size dim %d out of range 1..%d", d, len(arr.Ext))}
				}
				return intValue(int64(arr.Ext[d-1])), nil
			}
		}
		return func(m *vm, fr *vframe) (Value, error) {
			arr, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			return intValue(int64(arr.Size())), nil
		}
	case "sum", "minval", "maxval":
		a0 := c.argArrayGet(e.Args[0])
		rs := c.rsite(pos.Line)
		nm := name
		return func(m *vm, fr *vframe) (Value, error) {
			arr, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			return m.reduce(nm, arr, rs)
		}
	case "dot_product":
		aG := c.argArrayGet(e.Args[0])
		bG := c.argArrayGet(e.Args[1])
		rs := c.rsite(pos.Line)
		kk := e.Typ.Kind
		return func(m *vm, fr *vframe) (Value, error) {
			a, err := aG(m, fr)
			if err != nil {
				return Value{}, err
			}
			b, err := bG(m, fr)
			if err != nil {
				return Value{}, err
			}
			return m.dot(a, b, kk, pos, rs)
		}
	}

	switch name {
	case "abs":
		if e.Typ.Base == ft.TInteger {
			a0 := c.expr(e.Args[0])
			cost := c.cost(perfmodel.OpIntALU, 4)
			return func(m *vm, fr *vframe) (Value, error) {
				x, err := a0(m, fr)
				if err != nil {
					return Value{}, err
				}
				m.charge(cost)
				v := x.I
				if v < 0 {
					v = -v
				}
				return intValue(v), nil
			}
		}
		return c.unIntrinsic(e, kind, perfmodel.OpSimple, math.Abs)
	case "sqrt":
		return c.unIntrinsic(e, kind, perfmodel.OpSqrt, math.Sqrt)
	case "exp":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Exp)
	case "log":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Log)
	case "log10":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Log10)
	case "sin":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Sin)
	case "cos":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Cos)
	case "tan":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Tan)
	case "asin":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Asin)
	case "acos":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Acos)
	case "atan":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Atan)
	case "sinh":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Sinh)
	case "cosh":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Cosh)
	case "tanh":
		return c.unIntrinsic(e, kind, perfmodel.OpTrans, math.Tanh)
	case "aint":
		return c.unIntrinsic(e, kind, perfmodel.OpSimple, math.Trunc)
	case "anint":
		return c.unIntrinsic(e, kind, perfmodel.OpSimple, math.Round)
	case "atan2":
		a0, a1 := c.expr(e.Args[0]), c.expr(e.Args[1])
		cost := c.cost(perfmodel.OpTrans, kind)
		rs := c.rsite(pos.Line)
		kk := kind
		return func(m *vm, fr *vframe) (Value, error) {
			x0, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			x1, err := a1(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(cost)
			xf := math.Atan2(x0.asFloat(), x1.asFloat())
			v := realValue(xf, kk)
			if m.rec != nil {
				v.Sh = math.Atan2(x0.sh(), x1.sh())
				rs.intrinsic(m, "atan2", x0.asFloat(), v.F, xf, v.Sh)
			}
			return v, nil
		}
	case "sign":
		a0, a1 := c.expr(e.Args[0]), c.expr(e.Args[1])
		cost := c.cost(perfmodel.OpSimple, kind)
		isInt := e.Typ.Base == ft.TInteger
		kk := kind
		return func(m *vm, fr *vframe) (Value, error) {
			x0, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			x1, err := a1(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(cost)
			if isInt {
				mg := x0.I
				if mg < 0 {
					mg = -mg
				}
				if x1.I < 0 {
					mg = -mg
				}
				return intValue(mg), nil
			}
			mg := math.Abs(x0.asFloat())
			if math.Signbit(x1.asFloat()) {
				mg = -mg
			}
			v := realValue(mg, kk)
			if m.rec != nil {
				// The shadow magnitude follows the primary lane's sign
				// decision; a lane disagreement on the sign argument shows
				// up as divergence downstream.
				ms := math.Abs(x0.sh())
				if math.Signbit(x1.asFloat()) {
					ms = -ms
				}
				v.Sh = ms
			}
			return v, nil
		}
	case "mod":
		a0, a1 := c.expr(e.Args[0]), c.expr(e.Args[1])
		if e.Typ.Base == ft.TInteger {
			cost := c.cost(perfmodel.OpIntALU, 4)
			return func(m *vm, fr *vframe) (Value, error) {
				x0, err := a0(m, fr)
				if err != nil {
					return Value{}, err
				}
				x1, err := a1(m, fr)
				if err != nil {
					return Value{}, err
				}
				m.charge(cost)
				if x1.I == 0 {
					return Value{}, &RunError{Pos: pos, Kind: FailNonFinite, Msg: "mod by zero"}
				}
				return intValue(x0.I % x1.I), nil
			}
		}
		cost := c.cost(perfmodel.OpDiv, kind)
		rs := c.rsite(pos.Line)
		kk := kind
		return func(m *vm, fr *vframe) (Value, error) {
			x0, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			x1, err := a1(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(cost)
			mf := math.Mod(x0.asFloat(), x1.asFloat())
			v := realValue(mf, kk)
			if m.rec != nil {
				v.Sh = math.Mod(x0.sh(), x1.sh())
				rs.intrinsic(m, "mod", x0.asFloat(), v.F, mf, v.Sh)
			}
			return v, nil
		}
	case "min", "max":
		argEs := make([]vexpr, len(e.Args))
		for k, a := range e.Args {
			argEs[k] = c.expr(a)
		}
		costN := c.cost(perfmodel.OpSimple, kind) * float64(len(argEs)-1)
		isMin := name == "min"
		isInt := e.Typ.Base == ft.TInteger
		kk := kind
		return func(m *vm, fr *vframe) (Value, error) {
			var buf [8]Value
			var argv []Value
			if len(argEs) <= len(buf) {
				argv = buf[:len(argEs)]
			} else {
				argv = make([]Value, len(argEs))
			}
			for k, ae := range argEs {
				v, err := ae(m, fr)
				if err != nil {
					return Value{}, err
				}
				argv[k] = v
			}
			m.charge(costN)
			if isInt {
				best := argv[0].I
				for _, v := range argv[1:] {
					if isMin && v.I < best || !isMin && v.I > best {
						best = v.I
					}
				}
				return intValue(best), nil
			}
			best := argv[0].asFloat()
			for _, v := range argv[1:] {
				f := v.asFloat()
				if isMin {
					best = math.Min(best, f)
				} else {
					best = math.Max(best, f)
				}
			}
			v := realValue(best, kk)
			if m.rec != nil {
				sh := argv[0].sh()
				for _, a := range argv[1:] {
					if isMin {
						sh = math.Min(sh, a.sh())
					} else {
						sh = math.Max(sh, a.sh())
					}
				}
				v.Sh = sh
			}
			return v, nil
		}
	case "int", "nint", "floor":
		var fn func(float64) float64
		switch name {
		case "int":
			fn = math.Trunc
		case "nint":
			fn = math.Round
		default:
			fn = math.Floor
		}
		a0 := c.expr(e.Args[0])
		cost := c.cost(perfmodel.OpConv, 4)
		rs := c.rsite(pos.Line)
		nm := name
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(cost)
			p := int64(fn(x.asFloat()))
			if m.rec != nil {
				rs.discretize(m, nm, p, int64(fn(x.sh())))
			}
			return intValue(p), nil
		}
	case "real", "dble":
		// Explicit conversions are real work unless the operand is a
		// literal or already of the target kind.
		a0 := c.expr(e.Args[0])
		at := e.Args[0].Type()
		var ch func(m *vm)
		switch {
		case isLiteral(e.Args[0]):
		case at.Base == ft.TInteger:
			conv := c.cost(perfmodel.OpConv, 4)
			ch = func(m *vm) { m.charge(conv) }
		case at.Kind != kind:
			ch = func(m *vm) { m.cast(1) }
		}
		kk := kind
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			if ch != nil {
				ch(m)
			}
			v := realValue(x.asFloat(), kk)
			v.Sh = x.sh()
			return v, nil
		}
	case "epsilon", "huge", "tiny":
		argEs := make([]vexpr, len(e.Args))
		for k, a := range e.Args {
			argEs[k] = c.expr(a)
		}
		var cv Value
		switch name {
		case "epsilon":
			if kind == 4 {
				cv = realValue(float64(nextAfter32(1)), 4)
			} else {
				cv = realValue(math.Nextafter(1, 2)-1, 8)
			}
		case "huge":
			if kind == 4 {
				cv = realValue(math.MaxFloat32, 4)
			} else {
				cv = realValue(math.MaxFloat64, 8)
			}
		default: // tiny
			if kind == 4 {
				cv = realValue(math.SmallestNonzeroFloat32*(1<<23), 4)
			} else {
				cv = realValue(2.2250738585072014e-308, 8)
			}
		}
		return func(m *vm, fr *vframe) (Value, error) {
			for _, ae := range argEs {
				if _, err := ae(m, fr); err != nil {
					return Value{}, err
				}
			}
			return cv, nil
		}
	case "isnan":
		a0 := c.expr(e.Args[0])
		cost := c.cost(perfmodel.OpCmp, 8)
		return func(m *vm, fr *vframe) (Value, error) {
			x, err := a0(m, fr)
			if err != nil {
				return Value{}, err
			}
			m.charge(cost)
			return logicalValue(math.IsNaN(x.asFloat())), nil
		}
	default:
		argEs := make([]vexpr, len(e.Args))
		for k, a := range e.Args {
			argEs[k] = c.expr(a)
		}
		err := &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown intrinsic %q", name)}
		return func(m *vm, fr *vframe) (Value, error) {
			for _, ae := range argEs {
				if _, aerr := ae(m, fr); aerr != nil {
					return Value{}, aerr
				}
			}
			return Value{}, err
		}
	}
}

// reduce is the VM's Interp.reduceArray: sum/minval/maxval priced as a
// vectorized reduction over the array's kind.
func (m *vm) reduce(name string, arr *Array, rs rsite) (Value, error) {
	n := arr.Size()
	vf := m.model.VecFactor(arr.Kind, false, true)
	m.chargeMemN(m.model.OpCost(perfmodel.OpLoad, arr.Kind), float64(n), vf)
	cls := perfmodel.OpAddSub
	if name != "sum" {
		cls = perfmodel.OpCmp
	}
	m.chargeN(m.model.OpCost(cls, arr.Kind), float64(n), vf)
	if n == 0 {
		if name == "minval" {
			return realValue(math.MaxFloat64, arr.Kind), nil
		}
		if name == "maxval" {
			return realValue(-math.MaxFloat64, arr.Kind), nil
		}
		return realValue(0, arr.Kind), nil
	}
	switch name {
	case "sum":
		if arr.Kind == 4 {
			var s float32
			for _, v := range arr.Data {
				s += float32(v)
			}
			v := realValue(float64(s), 4)
			if m.rec != nil {
				var exact float64
				for _, d := range arr.Data {
					exact += d
				}
				v.Sh = shadowSum(arr, exact)
				rs.intrinsic(m, name, exact, v.F, exact, v.Sh)
			}
			return v, nil
		}
		var s float64
		for _, v := range arr.Data {
			s += v
		}
		v := realValue(s, 8)
		if m.rec != nil {
			v.Sh = shadowSum(arr, s)
			rs.intrinsic(m, name, s, s, s, v.Sh)
		}
		return v, nil
	case "minval":
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Min(best, v)
		}
		v := realValue(best, arr.Kind)
		if m.rec != nil && arr.Shadow != nil {
			sh := arr.Shadow[0]
			for _, d := range arr.Shadow[1:] {
				sh = math.Min(sh, d)
			}
			v.Sh = sh
		}
		return v, nil
	default: // maxval
		best := arr.Data[0]
		for _, v := range arr.Data[1:] {
			best = math.Max(best, v)
		}
		v := realValue(best, arr.Kind)
		if m.rec != nil && arr.Shadow != nil {
			sh := arr.Shadow[0]
			for _, d := range arr.Shadow[1:] {
				sh = math.Max(sh, d)
			}
			v.Sh = sh
		}
		return v, nil
	}
}

// dot is the VM's Interp.dotProduct: same-kind inputs run as a vector
// reduction; mixed kinds run scalar with a cast per element.
func (m *vm) dot(a, b *Array, kind int, pos ft.Pos, rs rsite) (Value, error) {
	if a.Size() != b.Size() {
		return Value{}, &RunError{Pos: pos, Kind: FailBounds,
			Msg: fmt.Sprintf("dot_product size mismatch (%d vs %d)", a.Size(), b.Size())}
	}
	n := a.Size()
	if a.Kind == b.Kind {
		vf := m.model.VecFactor(a.Kind, false, true)
		m.chargeMemN(m.model.OpCost(perfmodel.OpLoad, a.Kind), 2*float64(n), vf)
		m.chargeN(m.model.OpCost(perfmodel.OpMul, a.Kind), float64(n), vf)
		m.chargeN(m.model.OpCost(perfmodel.OpAddSub, a.Kind), float64(n), vf)
	} else {
		m.chargeMemN(m.model.OpCost(perfmodel.OpLoad, 8), 2*float64(n), 1)
		m.chargeN(m.model.OpCost(perfmodel.OpMul, 8), float64(n), 1)
		m.chargeN(m.model.OpCost(perfmodel.OpAddSub, 8), float64(n), 1)
		m.cast(int64(n))
	}
	if kind == 4 {
		var s float32
		for k := 0; k < n; k++ {
			s += float32(a.Data[k]) * float32(b.Data[k])
		}
		v := realValue(float64(s), 4)
		if m.rec != nil {
			var exact float64
			for k := 0; k < n; k++ {
				exact += a.Data[k] * b.Data[k]
			}
			v.Sh = shadowDot(a, b, exact)
			rs.intrinsic(m, "dot_product", exact, v.F, exact, v.Sh)
		}
		return v, nil
	}
	var s float64
	for k := 0; k < n; k++ {
		s += a.Data[k] * b.Data[k]
	}
	v := realValue(s, 8)
	if m.rec != nil {
		v.Sh = shadowDot(a, b, s)
		rs.intrinsic(m, "dot_product", s, s, s, v.Sh)
	}
	return v, nil
}

// Procedure calls -----------------------------------------------------------

// argPlan is the compiled binding strategy for one actual argument.
type argPlan struct {
	dummy   *ft.VarDecl
	missing error // set when the dummy declaration is absent

	// Array dummies bind by reference.
	isArr   bool
	arrBind func(m *vm, fr *vframe) (*Array, error)

	// Scalar dummies copy in (and maybe out).
	val       vexpr
	realDummy bool
	dummyKind int
	lit       bool
	dummyType ft.Type
	store     func(m *vm, fr *vframe, v Value)
	readBack  func(m *vm, fr *vframe) Value

	// Copy-out destination, resolved statically where possible.
	wantOut   bool
	required  bool // intent(out)/intent(inout) must have an lvalue
	intentErr error
	outScalar *ft.VarDecl
	outType   ft.Type
	outStore  func(m *vm, fr *vframe, v Value)
	outName   string
	outElem   *eref
}

// coRec is one pending scalar copy-out for the current call.
type coRec struct {
	p   *argPlan
	arr *Array // array-element destination (nil for scalars)
	off int
}

// argArrayBind compiles Interp.evalArgArray: bind an array actual to an
// array dummy by reference, rebasing assumed-shape bounds to 1.
func (c *compiler) argArrayBind(argExpr ft.Expr, dummy *ft.VarDecl) func(m *vm, fr *vframe) (*Array, error) {
	ref, ok := argExpr.(*ft.VarRef)
	if !ok || ref.Decl == nil {
		err := &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
			Msg: "array argument must be a whole array variable"}
		return func(m *vm, fr *vframe) (*Array, error) { return nil, err }
	}
	get := c.arrGet(ref.Decl)
	name := ref.Name
	pos := argExpr.ExprPos()
	dKind := dummy.Kind
	dProcQ := dummy.Proc.QName()
	dName := dummy.Name
	assumed := true
	for _, d := range dummy.Dims {
		if !d.Assumed {
			assumed = false
		}
	}
	ndims := len(dummy.Dims)
	return func(m *vm, fr *vframe) (*Array, error) {
		arr := get(m, fr)
		if arr == nil {
			return nil, &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("%q is not an allocated array", name)}
		}
		if arr.Kind != dKind {
			// Arrays pass by reference; a kind mismatch cannot be patched by
			// a hidden copy. The wrapper generator must have rewritten this
			// call — reaching here means the variant is malformed.
			return nil, &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("array kind mismatch passing %s (kind=%d) to %s.%s (kind=%d): wrapper required",
					name, arr.Kind, dProcQ, dName, dKind)}
		}
		if assumed {
			if ndims != len(arr.Ext) {
				return nil, &RunError{Pos: pos, Kind: FailBounds,
					Msg: fmt.Sprintf("rank mismatch passing %s", name)}
			}
			rebase := false
			for _, lo := range arr.Lo {
				if lo != 1 {
					rebase = true
				}
			}
			if rebase {
				ones := make([]int, len(arr.Ext))
				for k := range ones {
					ones[k] = 1
				}
				return &Array{Kind: arr.Kind, Lo: ones, Ext: arr.Ext,
					Data: arr.Data, Shadow: arr.Shadow}, nil
			}
		}
		return arr, nil
	}
}

// invoke compiles a user-procedure call: arrays by reference, scalars by
// copy-in/copy-out (Interp.invoke, phase for phase).
func (c *compiler) invoke(proc *ft.Procedure, args []ft.Expr, pos ft.Pos) vexpr {
	callee := c.cp.procs[proc.Index]
	inlined := callee.inlined
	q := callee.qname
	brCost := c.cost(perfmodel.OpBranch, 4)
	callCost := c.model.CallCycles
	timerOv := c.model.TimerOverhead

	plans := make([]*argPlan, len(args))
	for ai, argExpr := range args {
		p := &argPlan{}
		plans[ai] = p
		var dummy *ft.VarDecl
		if ai < len(proc.ParamDecl) {
			dummy = proc.ParamDecl[ai]
		}
		if dummy == nil {
			p.missing = &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("%s: missing dummy decl", q)}
			continue
		}
		p.dummy = dummy
		if dummy.IsArray() {
			p.isArr = true
			p.arrBind = c.argArrayBind(argExpr, dummy)
			continue
		}
		p.val = c.expr(argExpr)
		p.realDummy = dummy.Base == ft.TReal
		p.dummyKind = dummy.Kind
		p.lit = isLiteral(argExpr)
		p.dummyType = dummy.Type()
		p.store = c.storeDecl(dummy)
		if dummy.Intent != ft.IntentIn {
			p.wantOut = true
			p.required = dummy.Intent == ft.IntentOut || dummy.Intent == ft.IntentInOut
			if p.required {
				p.intentErr = &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
					Msg: fmt.Sprintf("intent(%s) argument is not a variable", dummy.Intent)}
			}
			p.readBack = c.readDecl(dummy)
			switch a := argExpr.(type) {
			case *ft.VarRef:
				if a.Decl != nil && !a.Decl.IsParam {
					p.outScalar = a.Decl
					p.outType = a.Decl.Type()
					p.outStore = c.storeDecl(a.Decl)
					p.outName = a.Decl.Name
				}
			case *ft.IndexExpr:
				p.outElem = c.elemRef(a)
			}
		}
	}

	isFunc := proc.Kind == ft.KFunction
	var readResult func(m *vm, fr *vframe) Value
	if isFunc && proc.Result != nil {
		readResult = c.readDecl(proc.Result)
	}
	noResult := &RunError{Pos: pos, Kind: FailInternal,
		Msg: fmt.Sprintf("%s has no result", q)}
	depthErr := func(m *vm) error {
		return &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("call stack exceeds %d frames", m.maxDepth)}
	}

	return func(m *vm, fr *vframe) (Value, error) {
		if m.depth >= m.maxDepth {
			return Value{}, depthErr(m)
		}
		if !inlined {
			m.charge(brCost)
			m.cycles += callCost * m.vecFactor
		}

		cf := callee.frame()
		defer callee.put(cf)

		// Phase 1: bind arguments.
		var cobuf [4]coRec
		copyOuts := cobuf[:0]
		for _, p := range plans {
			if p.missing != nil {
				return Value{}, p.missing
			}
			if p.isArr {
				arr, err := p.arrBind(m, fr)
				if err != nil {
					return Value{}, err
				}
				cf.a[p.dummy.Slot] = arr
				continue
			}
			v, err := p.val(m, fr)
			if err != nil {
				return Value{}, err
			}
			if p.realDummy && v.Base == ft.TReal && v.Kind != p.dummyKind && !p.lit {
				// Post-wrapper programs never reach here with a mismatch; it
				// is still priced correctly for raw (pre-transform) programs.
				m.cast(1)
			}
			p.store(m, cf, convertScalar(v, p.dummyType))
			if p.wantOut {
				switch {
				case p.outScalar != nil:
					copyOuts = append(copyOuts, coRec{p: p})
				case p.outElem != nil:
					arr, off, err := p.outElem.resolve(m, fr)
					if err == nil {
						copyOuts = append(copyOuts, coRec{p: p, arr: arr, off: off})
					} else if p.required {
						return Value{}, p.intentErr
					}
				case p.required:
					return Value{}, p.intentErr
				}
			}
		}

		// Phase 2: initialize non-argument locals (may use argument values).
		for _, init := range callee.inits {
			if err := init(m, cf); err != nil {
				return Value{}, err
			}
		}

		// Phase 3: execute.
		if m.timers != nil {
			if !inlined {
				m.cycles += timerOv
			}
			m.timers.Start(q)
		}
		m.depth++
		m.curProc = append(m.curProc, callee)
		_, err := m.runStmts(cf, callee.body)
		m.curProc = m.curProc[:len(m.curProc)-1]
		m.depth--
		if m.timers != nil {
			// Stop reads the clock before the stop-event overhead is
			// charged (mirroring gptl.Timers.Stop): the instrumentation cost
			// lands in the caller, not inside the measured region.
			if terr := m.timers.Stop(q); terr != nil && err == nil {
				err = &RunError{Pos: pos, Kind: FailInternal, Msg: terr.Error()}
			}
			if !inlined {
				m.cycles += timerOv
			}
		}
		if err != nil {
			return Value{}, err
		}

		// Phase 4: scalar copy-out.
		for _, co := range copyOuts {
			v := co.p.readBack(m, cf)
			if co.p.outScalar != nil {
				out := convertScalar(v, co.p.outType)
				if m.trap && out.Base == ft.TReal && nonFinite(out.F) {
					return Value{}, &RunError{Pos: pos, Kind: FailNonFinite,
						Msg: fmt.Sprintf("non-finite value returned into %s", co.p.outName)}
				}
				co.p.outStore(m, fr, out)
				continue
			}
			f := convertReal(v.asFloat(), co.arr.Kind)
			if m.trap && nonFinite(f) {
				return Value{}, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: "non-finite value returned into array element"}
			}
			co.arr.Data[co.off] = f
			if co.arr.Shadow != nil {
				co.arr.Shadow[co.off] = v.sh()
			}
		}

		if isFunc {
			if readResult == nil {
				return Value{}, noResult
			}
			return readResult(m, cf), nil
		}
		return Value{}, nil
	}
}

// Statements ----------------------------------------------------------------

// errStmt compiles to a statement that fails after the usual budget
// check, preserving the tree-walker's step count and error timing.
func errStmt(pos ft.Pos, err error) vstmt {
	return func(m *vm, fr *vframe) (control, error) {
		if berr := m.checkBudget(pos); berr != nil {
			return ctlNone, berr
		}
		return ctlNone, err
	}
}

func (c *compiler) stmts(list []ft.Stmt) []vstmt {
	out := make([]vstmt, len(list))
	for k, s := range list {
		out[k] = c.stmt(s)
	}
	return out
}

// stmt compiles one statement. Every compiled statement begins with the
// budget check Interp.execStmt performs before dispatch.
func (c *compiler) stmt(s ft.Stmt) vstmt {
	pos := s.StmtPos()
	switch s := s.(type) {
	case *ft.AssignStmt:
		return c.assign(s)
	case *ft.IfStmt:
		brCost := c.cost(perfmodel.OpBranch, 4)
		cond := c.expr(s.Cond)
		then := c.stmts(s.Then)
		els := c.stmts(s.Else)
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			m.charge(brCost)
			cv, err := cond(m, fr)
			if err != nil {
				return ctlNone, err
			}
			if cv.B {
				return m.runStmts(fr, then)
			}
			return m.runStmts(fr, els)
		}
	case *ft.DoStmt:
		return c.doStmt(s)
	case *ft.DoWhileStmt:
		return c.doWhile(s)
	case *ft.CallStmt:
		return c.callStmt(s)
	case *ft.ReturnStmt:
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			return ctlReturn, nil
		}
	case *ft.ExitStmt:
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			return ctlExit, nil
		}
	case *ft.CycleStmt:
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			return ctlCycle, nil
		}
	case *ft.StopStmt:
		if s.Code == nil {
			return errStmt(pos, &RunError{Pos: s.Pos, Kind: FailStop, Msg: "stop"})
		}
		code := c.expr(s.Code)
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			v, err := code(m, fr)
			if err != nil {
				return ctlNone, err
			}
			return ctlNone, &RunError{Pos: s.Pos, Kind: FailStop,
				Msg: fmt.Sprintf("stop %s", v)}
		}
	case *ft.PrintStmt:
		argEs := make([]vexpr, len(s.Args))
		for k, a := range s.Args {
			argEs[k] = c.expr(a)
		}
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			if m.stdout != nil {
				for k, ae := range argEs {
					v, err := ae(m, fr)
					if err != nil {
						return ctlNone, err
					}
					if k > 0 {
						fmt.Fprint(m.stdout, " ")
					}
					fmt.Fprint(m.stdout, v.String())
				}
				fmt.Fprintln(m.stdout)
				return ctlNone, nil
			}
			// PRINT arguments may have side effects; evaluate regardless.
			for _, ae := range argEs {
				if _, err := ae(m, fr); err != nil {
					return ctlNone, err
				}
			}
			return ctlNone, nil
		}
	default:
		return errStmt(pos, &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown statement %T", s)})
	}
}

func (c *compiler) doStmt(s *ft.DoStmt) vstmt {
	pos := s.Pos
	from := c.expr(s.From)
	to := c.expr(s.To)
	var stepE vexpr
	if s.Step != nil {
		stepE = c.expr(s.Step)
	}
	dec := c.an.Loop(s)
	vec := dec.Vectorized
	factor := dec.Factor
	body := c.stmts(s.Body)
	storeVar := c.storeIntDecl(s.Var.Decl)
	iterCost := c.cost(perfmodel.OpLoopIter, 4)
	return func(m *vm, fr *vframe) (control, error) {
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		fromV, err := from(m, fr)
		if err != nil {
			return ctlNone, err
		}
		toV, err := to(m, fr)
		if err != nil {
			return ctlNone, err
		}
		step := int64(1)
		if stepE != nil {
			sv, err := stepE(m, fr)
			if err != nil {
				return ctlNone, err
			}
			step = sv.asInt()
			if step == 0 {
				return ctlNone, &RunError{Pos: pos, Kind: FailInternal, Msg: "DO step is zero"}
			}
		}
		// Vectorization: enter the discounted pricing regime for the body.
		saved := m.vecFactor
		if vec {
			m.vecFactor = factor
		}
		lo, hi := fromV.asInt(), toV.asInt()
		for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
			storeVar(m, fr, v)
			m.charge(iterCost)
			if err := m.checkBudget(pos); err != nil {
				m.vecFactor = saved
				return ctlNone, err
			}
			ctl, err := m.runStmts(fr, body)
			if err != nil {
				m.vecFactor = saved
				return ctlNone, err
			}
			switch ctl {
			case ctlExit:
				m.vecFactor = saved
				return ctlNone, nil
			case ctlReturn:
				m.vecFactor = saved
				return ctlReturn, nil
			}
		}
		m.vecFactor = saved
		return ctlNone, nil
	}
}

func (c *compiler) doWhile(s *ft.DoWhileStmt) vstmt {
	pos := s.Pos
	brCost := c.cost(perfmodel.OpBranch, 4)
	cond := c.expr(s.Cond)
	body := c.stmts(s.Body)
	return func(m *vm, fr *vframe) (control, error) {
		// Statement-entry check first (Interp.execStmt does one before
		// dispatching to execDoWhile), then one per loop-top test.
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		for {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			m.charge(brCost)
			cv, err := cond(m, fr)
			if err != nil {
				return ctlNone, err
			}
			if !cv.B {
				return ctlNone, nil
			}
			ctl, err := m.runStmts(fr, body)
			if err != nil {
				return ctlNone, err
			}
			switch ctl {
			case ctlExit:
				return ctlNone, nil
			case ctlReturn:
				return ctlReturn, nil
			}
		}
	}
}

func (c *compiler) callStmt(s *ft.CallStmt) vstmt {
	pos := s.Pos
	if s.Intrinsic != "" {
		switch s.Intrinsic {
		case "mpi_allreduce_sum", "mpi_allreduce_max":
			// Numerically the identity (the simulation is the full global
			// domain on one logical rank) but priced as a full collective:
			// latency plus log2(ranks) hops, never vectorized.
			arg := c.expr(s.Args[0])
			arCost := c.model.AllreduceCost()
			return func(m *vm, fr *vframe) (control, error) {
				if err := m.checkBudget(pos); err != nil {
					return ctlNone, err
				}
				if _, err := arg(m, fr); err != nil {
					return ctlNone, err
				}
				m.cycles += arCost
				return ctlNone, nil
			}
		default:
			return errStmt(pos, &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("unknown intrinsic subroutine %q", s.Intrinsic)})
		}
	}
	if s.Proc == nil {
		return errStmt(pos, &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unresolved call to %q", s.Name)})
	}
	inv := c.invoke(s.Proc, s.Args, pos)
	return func(m *vm, fr *vframe) (control, error) {
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		_, err := inv(m, fr)
		return ctlNone, err
	}
}

// assign compiles scalar and whole-array assignment (Interp.execAssign
// and execArrayAssign).
func (c *compiler) assign(s *ft.AssignStmt) vstmt {
	lt := s.LHS.Type()
	if lt.Rank > 0 {
		return c.arrayAssign(s)
	}
	pos := s.Pos
	atom := assignAtom(s.LHS, lt)
	rhs := c.expr(s.RHS)
	rt := s.RHS.Type()

	// Conversion cost for the store (static decision).
	var chConv func(m *vm)
	if lt.Base == ft.TReal {
		switch {
		case rt.Base == ft.TInteger:
			conv := c.cost(perfmodel.OpConv, 4)
			chConv = func(m *vm) { m.charge(conv) }
		case rt.Base == ft.TReal && rt.Kind != lt.Kind && !isLiteral(s.RHS):
			chConv = func(m *vm) { m.cast(1) }
		}
	} else if lt.Base == ft.TInteger && rt.Base == ft.TReal {
		conv := c.cost(perfmodel.OpConv, 4)
		chConv = func(m *vm) { m.charge(conv) }
	}

	switch lhs := s.LHS.(type) {
	case *ft.VarRef:
		// Real scalar target with an unboxed-compilable RHS: take the
		// float fast path (compile_real.go). Bit-identical by contract.
		if lt.Base == ft.TReal && lhs.Decl != nil && !lhs.Decl.IsArray() {
			if rv := c.realExpr(s.RHS); rv != nil {
				return c.realAssignVar(s, lhs.Decl, lhs.Name, rv, chConv, atom)
			}
		}
		store := c.storeDecl(lhs.Decl)
		as := c.asite(pos.Line, atom)
		isReal := lt.Base == ft.TReal
		name := lhs.Name
		ltt := lt
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			m.rec.PushTarget(atom)
			rv, err := rhs(m, fr)
			if err != nil {
				m.rec.PopTarget()
				return ctlNone, err
			}
			if chConv != nil {
				chConv(m)
			}
			v := convertScalar(rv, ltt)
			if m.rec != nil && isReal {
				as.assign(m, v.F, v.Sh, rv.asFloat())
			}
			if m.trap && isReal && nonFinite(v.F) {
				m.rec.PopTarget()
				return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: fmt.Sprintf("assigning non-finite value to %s", name)}
			}
			store(m, fr, v)
			m.rec.PopTarget()
			return ctlNone, nil
		}
	case *ft.IndexExpr:
		if rv := c.realExpr(s.RHS); rv != nil {
			return c.realAssignElem(s, lhs, rv, chConv, atom)
		}
		er := c.elemRef(lhs)
		storeCost := [2]float64{c.cost(perfmodel.OpStore, 4), c.cost(perfmodel.OpStore, 8)}
		as := c.asite(pos.Line, atom)
		arrName := lhs.Arr.Name
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			m.rec.PushTarget(atom)
			rv, err := rhs(m, fr)
			if err != nil {
				m.rec.PopTarget()
				return ctlNone, err
			}
			if chConv != nil {
				chConv(m)
			}
			arr, off, err := er.resolve(m, fr)
			if err != nil {
				m.rec.PopTarget()
				return ctlNone, err
			}
			m.chargeMem(storeCost[kindIdx(arr.Kind)])
			f := convertReal(rv.asFloat(), arr.Kind)
			if m.rec != nil {
				as.assign(m, f, rv.sh(), rv.asFloat())
			}
			if m.trap && nonFinite(f) {
				m.rec.PopTarget()
				return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: fmt.Sprintf("assigning non-finite value to %s(...)", arrName)}
			}
			arr.Data[off] = f
			if arr.Shadow != nil {
				arr.Shadow[off] = rv.sh()
			}
			m.rec.PopTarget()
			return ctlNone, nil
		}
	default:
		return errStmt(pos, &RunError{Pos: pos, Kind: FailInternal, Msg: "bad assignment target"})
	}
}

// arrayAssign compiles "a = scalar" (fill) and "a = b" (copy).
func (c *compiler) arrayAssign(s *ft.AssignStmt) vstmt {
	pos := s.Pos
	lref, ok := s.LHS.(*ft.VarRef)
	if !ok {
		return errStmt(pos, &RunError{Pos: pos, Kind: FailInternal, Msg: "bad array assignment target"})
	}
	dget := c.arrGet(lref.Decl)
	qn := lref.Decl.QName()
	lname := lref.Name
	lnameErr := &RunError{Pos: pos, Kind: FailInternal,
		Msg: fmt.Sprintf("%q is not an allocated array", lname)}
	rt := s.RHS.Type()

	if rt.Rank == 0 {
		// Broadcast fill.
		rhs := c.expr(s.RHS)
		as := c.asite(pos.Line, qn)
		storeCost := [2]float64{c.cost(perfmodel.OpStore, 4), c.cost(perfmodel.OpStore, 8)}
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			dst := dget(m, fr)
			if dst == nil {
				return ctlNone, lnameErr
			}
			n := dst.Size()
			m.rec.PushTarget(qn)
			v, err := rhs(m, fr)
			if err != nil {
				m.rec.PopTarget()
				return ctlNone, err
			}
			f := convertReal(v.asFloat(), dst.Kind)
			if m.rec != nil {
				// One representative record for the whole fill.
				as.assign(m, f, v.sh(), v.asFloat())
			}
			if m.trap && nonFinite(f) {
				m.rec.PopTarget()
				return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: fmt.Sprintf("assigning non-finite value to %s", lname)}
			}
			m.chargeMemN(storeCost[kindIdx(dst.Kind)], float64(n),
				m.model.VecFactor(dst.Kind, false, false))
			for k := range dst.Data {
				dst.Data[k] = f
			}
			if dst.Shadow != nil {
				fs := v.sh()
				for k := range dst.Shadow {
					dst.Shadow[k] = fs
				}
			}
			m.rec.PopTarget()
			return ctlNone, nil
		}
	}

	// Whole-array copy.
	rref, ok := s.RHS.(*ft.VarRef)
	if !ok {
		srcErr := &RunError{Pos: pos, Kind: FailInternal,
			Msg: "array assignment source must be a whole array"}
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			dst := dget(m, fr)
			if dst == nil {
				return ctlNone, lnameErr
			}
			m.rec.PushTarget(qn)
			m.rec.PopTarget()
			return ctlNone, srcErr
		}
	}
	sget := c.arrGet(rref.Decl)
	rname := rref.Name
	rnameErr := &RunError{Pos: pos, Kind: FailInternal,
		Msg: fmt.Sprintf("%q is not an allocated array", rname)}
	loadCost := [2]float64{c.cost(perfmodel.OpLoad, 4), c.cost(perfmodel.OpLoad, 8)}
	storeCost := [2]float64{c.cost(perfmodel.OpStore, 4), c.cost(perfmodel.OpStore, 8)}
	return func(m *vm, fr *vframe) (control, error) {
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		dst := dget(m, fr)
		if dst == nil {
			return ctlNone, lnameErr
		}
		n := dst.Size()
		m.rec.PushTarget(qn)
		src := sget(m, fr)
		if src == nil {
			m.rec.PopTarget()
			return ctlNone, rnameErr
		}
		if src.Size() != n {
			m.rec.PopTarget()
			return ctlNone, &RunError{Pos: pos, Kind: FailBounds,
				Msg: fmt.Sprintf("array size mismatch in %s = %s (%d vs %d)",
					lname, rname, n, src.Size())}
		}
		if src.Kind == dst.Kind {
			vf := m.model.VecFactor(dst.Kind, false, false)
			m.chargeMemN(loadCost[kindIdx(src.Kind)], float64(n), vf)
			m.chargeMemN(storeCost[kindIdx(dst.Kind)], float64(n), vf)
			copy(dst.Data, src.Data)
		} else {
			// Converting copy: scalar loads/stores plus a cast per element.
			m.chargeMemN(loadCost[kindIdx(src.Kind)], float64(n), 1)
			m.chargeMemN(storeCost[kindIdx(dst.Kind)], float64(n), 1)
			m.cast(int64(n))
			for k := range dst.Data {
				f := convertReal(src.Data[k], dst.Kind)
				if m.trap && nonFinite(f) {
					m.rec.PopTarget()
					return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
						Msg: fmt.Sprintf("assigning non-finite value to %s", lname)}
				}
				dst.Data[k] = f
			}
		}
		if dst.Shadow != nil {
			// The shadow lane copies unrounded in either direction.
			if src.Shadow != nil {
				copy(dst.Shadow, src.Shadow)
			} else {
				copy(dst.Shadow, src.Data)
			}
		}
		m.rec.PopTarget()
		return ctlNone, nil
	}
}
