package interp

import (
	"fmt"
	"math"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

// runShadow executes src with a shadow recorder attached and returns
// the interpreter plus the numeric profile.
func runShadow(t *testing.T, src string) (*Interp, *numerics.Profile, error) {
	t.Helper()
	rec := numerics.NewRecorder("test.ft", numerics.Options{})
	in, _, err := run(t, src, Config{Numerics: rec})
	return in, rec.Profile(), err
}

const shadowMod = `
module m
  implicit none
  real(kind=4) :: acc
  real(kind=8) :: acc8
  integer :: n
end module m
`

func TestShadowTracksFloat64Lane(t *testing.T) {
	// Accumulating 0.1 in kind-4: the primary lane rounds through f32
	// each step, the shadow lane must reproduce the f64 accumulation.
	src := shadowMod + `
program p
  use m
  implicit none
  integer :: i
  acc = 0.0
  do i = 1, 100
    acc = acc + 0.1
  end do
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global("m.acc")
	var want float64
	for i := 0; i < 100; i++ {
		want += 0.1
	}
	if v.Sh != want {
		t.Errorf("shadow = %v, want f64 accumulation %v", v.Sh, want)
	}
	if v.F == v.Sh {
		t.Error("primary and shadow agree exactly; f32 lane not diverging")
	}
	if p.MaxDivergence <= 0 {
		t.Errorf("profile max divergence = %v, want > 0", p.MaxDivergence)
	}
	// The accumulation is attributed to the m.acc atom.
	found := false
	for _, a := range p.Atoms {
		if a.QName == "m.acc" && a.Assigns >= 100 && a.MaxDivergence > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("m.acc atom missing or unattributed: %+v", p.Atoms)
	}
}

func TestShadowDoesNotPerturbPrimary(t *testing.T) {
	// Identical program with and without the recorder: cycles, steps,
	// and every primary-lane result must match exactly.
	src := shadowMod + `
program p
  use m
  implicit none
  integer :: i
  real(kind=4) :: x
  x = 0.5
  acc = 0.0
  do i = 1, 500
    x = x * 1.01
    acc = acc + sin(x) / 3.0
    if (x > 50.0) then
      x = 0.5
    end if
  end do
  n = nint(acc)
end program p
`
	inOff, resOff, err := run(t, src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := numerics.NewRecorder("test.ft", numerics.Options{})
	inOn, resOn, err := run(t, src, Config{Numerics: rec})
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Cycles != resOn.Cycles {
		t.Errorf("cycles differ: %v vs %v", resOff.Cycles, resOn.Cycles)
	}
	if resOff.Steps != resOn.Steps {
		t.Errorf("steps differ: %d vs %d", resOff.Steps, resOn.Steps)
	}
	for _, q := range []string{"m.acc", "m.n"} {
		a, _ := inOff.Global(q)
		b, _ := inOn.Global(q)
		if a.F != b.F || a.I != b.I {
			t.Errorf("%s: primary differs with recorder: %v vs %v", q, a, b)
		}
	}
	if rec.Profile().Ops == 0 {
		t.Error("recorder attached but observed no operations")
	}
}

func TestShadowCatastrophicCancellation(t *testing.T) {
	// x carries f32 rounding error; x - y cancels ~13 bits, promoting
	// that error into the leading digits. The profile must flag the
	// subtraction statement as a catastrophic cancellation site.
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: x, y, d
  x = 1.0001
  y = 1.0
  d = x - y
  acc = d
end program p
`
	_, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cancellations < 1 || p.Catastrophic < 1 {
		t.Fatalf("cancellations=%d catastrophic=%d, want >= 1 each", p.Cancellations, p.Catastrophic)
	}
	found := false
	for _, s := range p.Statements {
		if s.Catastrophic > 0 {
			found = true
			if s.Proc != "main" {
				t.Errorf("catastrophic site proc = %q, want main", s.Proc)
			}
			if s.CancelBitsMax < 10 {
				t.Errorf("cancel bits = %v, want >= 10 (1.0001-1.0 collapses ~13 bits)", s.CancelBitsMax)
			}
		}
	}
	if !found {
		t.Fatalf("no catastrophic statement in profile: %+v", p.Statements)
	}
}

func TestShadowKind8RunHasNoDivergence(t *testing.T) {
	// A pure kind-8 program computes identically in both lanes: the
	// shadow is the computation. No divergence, no catastrophic sites.
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=8) :: x, y
  integer :: i
  acc8 = 0.0d0
  x = 1.0001d0
  y = 1.0d0
  do i = 1, 50
    acc8 = acc8 + (x - y) * 0.1d0
  end do
end program p
`
	_, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxDivergence != 0 {
		t.Errorf("kind-8 divergence = %v, want 0", p.MaxDivergence)
	}
	if p.Catastrophic != 0 {
		t.Errorf("kind-8 catastrophic = %d, want 0 (cancellation of error-free operands is benign)", p.Catastrophic)
	}
}

func TestShadowThroughCallsAndArrays(t *testing.T) {
	// Shadow values must survive scalar copy-in/copy-out, function
	// results, and array element stores (shared Shadow storage on
	// rebased argument headers).
	src := `
module w
  implicit none
  real(kind=4) :: out
contains
  function twice(v) result(r)
    real(kind=4), intent(in) :: v
    real(kind=4) :: r
    r = v * 2.0
  end function twice
  subroutine fill(a, x)
    real(kind=4), intent(inout) :: a(:)
    real(kind=4), intent(in) :: x
    integer :: j
    do j = 1, size(a)
      a(j) = x + 0.1
    end do
  end subroutine fill
end module w

program p
  use w
  implicit none
  real(kind=4) :: arr(4)
  integer :: i
  call fill(arr, 0.2)
  out = 0.0
  do i = 1, 4
    out = out + twice(arr(i))
  end do
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := in.Global("w.out")
	if !ok {
		t.Fatal("w.out missing")
	}
	// Shadow: ((0.2 + 0.1) * 2) * 4 at f64 — the f32 lane differs.
	want := (0.2 + 0.1) * 2 * 4
	if math.Abs(v.Sh-want) > 1e-12 {
		t.Errorf("shadow through calls = %v, want %v", v.Sh, want)
	}
	if v.F == v.Sh {
		t.Error("primary equals shadow exactly; divergence lost through calls")
	}
	if p.MaxDivergence <= 0 {
		t.Error("no divergence recorded through call/array path")
	}
}

// --- Binade-boundary intrinsic edge cases (satellite) ---

func TestNintBinadeBoundaryFlip(t *testing.T) {
	// At 2^23 the f32 ulp is 1.0: 8388608 + 0.5 rounds to even
	// (8388608) in the primary lane while the f64 shadow holds
	// 8388608.5, which nint rounds up. The primary result must follow
	// f32 semantics and the recorder must classify the discretization
	// flip.
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: x
  x = 8388608.0
  x = x + 0.5
  n = nint(x)
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := in.Global("m.n")
	if nv.I != 8388608 {
		t.Errorf("nint primary = %d, want 8388608 (f32 round-to-even)", nv.I)
	}
	if p.Discretizations != 1 {
		t.Errorf("discretization flips = %d, want 1", p.Discretizations)
	}
}

func TestNintExactBelowBoundary(t *testing.T) {
	// One binade lower the ulp is 0.5: 4194304.5 is exactly
	// representable and both lanes agree — no flip.
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: x
  x = 4194304.0
  x = x + 0.5
  n = nint(x)
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := in.Global("m.n")
	if nv.I != 4194305 {
		t.Errorf("nint primary = %d, want 4194305", nv.I)
	}
	if p.Discretizations != 0 {
		t.Errorf("discretization flips = %d, want 0", p.Discretizations)
	}
}

func TestSqrtNearOverflow(t *testing.T) {
	// 3e38 * 1.2 overflows f32 (max ≈ 3.4e38) but not f64: the first
	// non-finite must be attributed to the multiply with a finite
	// shadow (lowering-induced blowup).
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: big, r
  big = 3.0e38
  big = big * 1.2
  r = sqrt(big)
  acc = r
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global("m.acc")
	if !math.IsInf(v.F, 1) {
		t.Errorf("primary = %v, want +Inf (f32 overflow)", v.F)
	}
	if math.IsInf(v.Sh, 0) || math.IsNaN(v.Sh) {
		t.Errorf("shadow = %v, want finite (no f64 overflow)", v.Sh)
	}
	nf := p.FirstNonFinite
	if nf == nil {
		t.Fatal("no non-finite provenance recorded")
	}
	if nf.Op != "*" || !nf.ShadowFinite {
		t.Errorf("first non-finite = %+v, want op * with finite shadow", nf)
	}
}

func TestSqrtNearUnderflow(t *testing.T) {
	// Squaring 1e-38 flushes to zero in f32; sqrt of that is 0 while
	// the shadow stays ~1e-38 — total divergence (relative error 1).
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: s, r
  s = 1.0e-38
  r = sqrt(s * s)
  acc = r
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global("m.acc")
	if v.F != 0 {
		t.Errorf("primary = %v, want 0 (f32 underflow)", v.F)
	}
	if v.Sh <= 0 || v.Sh > 2e-38 {
		t.Errorf("shadow = %v, want ~1e-38", v.Sh)
	}
	if p.MaxDivergence != 1 {
		t.Errorf("max divergence = %v, want 1 (total loss)", p.MaxDivergence)
	}
}

func TestAbsIntroducesNoRounding(t *testing.T) {
	// abs is exact in any binade: the statement must show zero local
	// rounding while still propagating the operand's divergence.
	src := shadowMod + `
program p
  use m
  implicit none
  real(kind=4) :: x, y
  x = 0.0 - 0.1
  y = abs(x)
  acc = y
end program p
`
	in, p, err := runShadow(t, src)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global("m.acc")
	if v.F != float64(float32(0.1)) {
		t.Errorf("abs primary = %v, want rnd32(0.1)", v.F)
	}
	if v.Sh != 0.1 {
		t.Errorf("abs shadow = %v, want 0.1", v.Sh)
	}
	var absStmt *numerics.StmtProfile
	for i := range p.Statements {
		if p.Statements[i].Assigns > 0 && p.Statements[i].MaxDivergence > 0 && p.Statements[i].RoundErrSum == 0 {
			absStmt = &p.Statements[i]
		}
	}
	if absStmt == nil {
		t.Errorf("no zero-rounding divergence-propagating statement found: %+v", p.Statements)
	}
}

// --- Disabled-path allocation flatness ---

// TestShadowDisabledAllocFlat proves the nil-recorder hot path
// allocates nothing per iteration: total allocations for a scalar loop
// are identical at 1000 and 16000 iterations (every allocation is
// per-run setup, none per statement).
func TestShadowDisabledAllocFlat(t *testing.T) {
	allocs := func(iters int) float64 {
		src := shadowMod + fmt.Sprintf(`
program p
  use m
  implicit none
  integer :: i
  real(kind=4) :: x
  x = 0.5
  acc = 0.0
  do i = 1, %d
    x = x * 1.0000001
    acc = acc + x
    if (acc > 100.0) then
      acc = acc - 100.0
    end if
  end do
end program p
`, iters)
		prog, err := ft.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
			t.Fatal(err)
		}
		model := perfmodel.Default()
		an := perfmodel.Analyze(prog, model)
		return testing.AllocsPerRun(10, func() {
			in, err := New(prog, Config{Model: model, Analysis: an})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocs(1000), allocs(16000)
	if small != large {
		t.Errorf("allocations scale with iterations: %v @1000 vs %v @16000", small, large)
	}
}
