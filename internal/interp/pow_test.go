package interp

// Regression tests for the kind-4 exponentiation fix: all-kind-4 x**n
// with an integer exponent must evaluate by binary powering in float32
// (gfortran lowers it to libgcc's __powisf2), not by computing pow in
// float64 and rounding the result — the latter double-rounds relative
// to native float32 arithmetic and is observable from n=3 up.

import (
	"fmt"
	"math"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

// oldPowPath is the pre-fix behaviour: float64 pow rounded once into
// kind-4 storage.
func oldPowPath(x float64, n int64) float64 {
	return rnd32(math.Pow(x, float64(n)))
}

// findCubeWitness scans for an operand where float32 binary powering of
// x**3 and the double-rounded float64 path disagree.
func findCubeWitness() (float64, bool) {
	for i := 1; i < 1_000_000; i++ {
		x := float64(float32(1.0 + float64(i)*1.37e-5))
		if float64(powi32(float32(x), 3)) != oldPowPath(x, 3) {
			return x, true
		}
	}
	return 0, false
}

func evalScalarExprEngine(t *testing.T, eng Engine, declKind int, x, y float64, expr string) float64 {
	t.Helper()
	src := fmt.Sprintf(`
module e
  implicit none
  real(kind=8) :: r_out
end module e
program p
  use e
  implicit none
  real(kind=%d) :: x, y
  x = %.17g_8
  y = %.17g_8
  r_out = %s
end program p
`, declKind, x, y, expr)
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	in, err := New(prog, Config{Model: perfmodel.Default(), Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	v, _ := in.GlobalFloat("e.r_out")
	return v
}

// TestKind4PowIntegerBinaryPowering pins the fix on an operand where
// the two lowerings provably differ: the interpreter must produce the
// float32 binary-powering result under both engines.
func TestKind4PowIntegerBinaryPowering(t *testing.T) {
	x, ok := findCubeWitness()
	if !ok {
		t.Fatal("no witness operand found where binary powering differs from double-rounded pow")
	}
	want := float64(powi32(float32(x), 3))
	old := oldPowPath(x, 3)
	if want == old {
		t.Fatalf("witness degenerated: %v", x)
	}
	t.Logf("witness x=%.17g: powisf2 %.17g vs double-rounded %.17g", x, want, old)
	for _, eng := range []Engine{EngineAST, EngineVM} {
		got := evalScalarExprEngine(t, eng, 4, x, 1, "x ** 3")
		if got != want {
			t.Errorf("%v: kind-4 x**3 = %.17g, want float32 binary powering %.17g (old double-rounded path: %.17g)",
				eng, got, want, old)
		}
	}
}

// TestKind4PowSquareUnchanged: for n=2 binary powering is a single
// float32 multiply, which agrees bit-for-bit with the rounded float64
// product — the fix must not disturb squares.
func TestKind4PowSquareUnchanged(t *testing.T) {
	for _, x := range []float64{1.1, 3.7, 0.0001234, 1e18, -2.5} {
		x = rnd32(x)
		want := oldPowPath(x, 2)
		if w2 := float64(powi32(float32(x), 2)); w2 != want {
			t.Fatalf("premise broken: powi32(%g,2)=%.17g vs %.17g", x, w2, want)
		}
		got := evalScalarExprEngine(t, EngineVM, 4, x, 1, "x ** 2")
		if got != want {
			t.Errorf("kind-4 x**2 for x=%g: got %.17g want %.17g", x, got, want)
		}
	}
}

// TestKind4PowNegativeExponent: negative integer exponents compute the
// positive power first, then take the float32 reciprocal.
func TestKind4PowNegativeExponent(t *testing.T) {
	x := rnd32(1.7)
	want := float64(1 / powi32(float32(x), 3))
	got := evalScalarExprEngine(t, EngineVM, 4, x, 1, "x ** (-3)")
	if got != want {
		t.Errorf("kind-4 x**(-3): got %.17g want %.17g", got, want)
	}
}

// TestKind4PowRealExponentSingleRounded: a real exponent on a kind-4
// base evaluates pow in float64 and rounds ONCE into storage.
func TestKind4PowRealExponentSingleRounded(t *testing.T) {
	x := rnd32(2.7)
	want := rnd32(math.Pow(x, 0.5))
	for _, eng := range []Engine{EngineAST, EngineVM} {
		got := evalScalarExprEngine(t, eng, 4, x, 1, "x ** 0.5_4")
		if got != want {
			t.Errorf("%v: kind-4 x**0.5 = %.17g, want single-rounded %.17g", eng, got, want)
		}
	}
}

// TestPowShadowFullPrecision: under shadow execution the shadow lane of
// a kind-4 power is the float64 reference value, not the float32 result.
func TestPowShadowFullPrecision(t *testing.T) {
	x, ok := findCubeWitness()
	if !ok {
		t.Fatal("no witness operand")
	}
	src := fmt.Sprintf(`
module e
  implicit none
  real(kind=4) :: r_out
end module e
program p
  use e
  implicit none
  real(kind=4) :: x
  x = %.17g_8
  r_out = x ** 3
end program p
`, x)
	for _, eng := range []Engine{EngineAST, EngineVM} {
		prog := ft.MustParse(src)
		ft.MustAnalyze(prog, ft.Options{})
		rec := numerics.NewRecorder("test.ft", numerics.Options{})
		in, err := New(prog, Config{Model: perfmodel.Default(), Numerics: rec, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Run(); err != nil {
			t.Fatal(err)
		}
		v, okg := in.Global("e.r_out")
		if !okg {
			t.Fatal("r_out missing")
		}
		if v.F != float64(powi32(float32(x), 3)) {
			t.Errorf("%v: primary lane %.17g, want float32 binary powering", eng, v.F)
		}
		if v.Sh != math.Pow(x, 3) {
			t.Errorf("%v: shadow lane %.17g, want float64 reference %.17g", eng, v.Sh, math.Pow(x, 3))
		}
	}
}
