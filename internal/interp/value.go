// Package interp executes FT programs under mixed-precision semantics
// and prices every dynamic operation through the perfmodel machine
// model. It is the "compile and run on a Derecho node" stage of the
// paper's tuning cycle (T3 in the artifact appendix), collapsed into a
// deterministic simulation:
//
//   - numerics are real: kind-4 values round through IEEE binary32 on
//     every assignment and all-kind-4 operations evaluate in float32, so
//     a variant's error, convergence behaviour, and control-flow
//     divergence are computed, not scripted;
//   - performance is modeled: each operation adds simulated cycles, with
//     vectorization, casting, inlining, call overhead, and MPI collective
//     costs supplied by internal/perfmodel;
//   - failure modes are faithful: non-finite values trap as runtime
//     errors and a cycle budget (3× baseline, as in §IV-A) turns runaway
//     variants into timeouts.
package interp

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
)

// Value is a runtime value: a scalar or a reference to an array.
// Sh is the float64 shadow lane: the value this computation would have
// produced at full precision. It is only maintained when a numerics
// recorder is attached (Config.Numerics); uninstrumented runs leave it
// tracking F with no extra work (realValue sets Sh from the pre-rounded
// input, a free field copy).
type Value struct {
	Base ft.BaseType
	Kind int // real kind (4 or 8)
	F    float64
	Sh   float64
	I    int64
	B    bool
	S    string
	Arr  *Array
}

// Array is array storage. Kind-4 arrays hold float32-representable
// float64 values (the rounding invariant is maintained on every store).
// Dummy arguments may install a reshaped header over the same Data
// (Fortran sequence association).
type Array struct {
	Kind int
	Lo   []int // lower bound per dimension
	Ext  []int // extent per dimension
	Data []float64
	// Shadow is the float64 shadow lane, allocated only when a numerics
	// recorder is attached; reshaped headers share it with Data.
	Shadow []float64
}

// NewArray allocates a zeroed array.
func NewArray(kind int, lo, ext []int) *Array {
	size := 1
	for _, e := range ext {
		size *= e
	}
	return &Array{
		Kind: kind,
		Lo:   append([]int(nil), lo...),
		Ext:  append([]int(nil), ext...),
		Data: make([]float64, size),
	}
}

// Size returns the total element count.
func (a *Array) Size() int {
	n := 1
	for _, e := range a.Ext {
		n *= e
	}
	return n
}

// flatIndex converts a multi-dimensional index (column-major, as in
// Fortran) to a flat offset, checking bounds.
func (a *Array) flatIndex(idx []int) (int, error) {
	off := 0
	stride := 1
	for d := 0; d < len(a.Ext); d++ {
		i := idx[d] - a.Lo[d]
		if i < 0 || i >= a.Ext[d] {
			return 0, fmt.Errorf("index %d out of bounds [%d:%d] in dimension %d",
				idx[d], a.Lo[d], a.Lo[d]+a.Ext[d]-1, d+1)
		}
		off += i * stride
		stride *= a.Ext[d]
	}
	return off, nil
}

// rnd32 rounds a float64 through IEEE binary32.
func rnd32(v float64) float64 { return float64(float32(v)) }

// convertReal converts v to the storage precision of kind.
func convertReal(v float64, kind int) float64 {
	if kind == 4 {
		return rnd32(v)
	}
	return v
}

// intValue builds an integer Value.
func intValue(i int64) Value { return Value{Base: ft.TInteger, I: i} }

// realValue builds a real Value of the given kind, rounding as needed.
// The shadow lane defaults to the pre-rounding input; instrumented
// paths that know a better full-precision history overwrite it.
func realValue(f float64, kind int) Value {
	return Value{Base: ft.TReal, Kind: kind, F: convertReal(f, kind), Sh: f}
}

// logicalValue builds a logical Value.
func logicalValue(b bool) Value { return Value{Base: ft.TLogical, B: b} }

// asFloat returns the numeric value of v as float64.
func (v Value) asFloat() float64 {
	if v.Base == ft.TInteger {
		return float64(v.I)
	}
	return v.F
}

// sh returns the shadow-lane value of v: integers are exact, reals
// carry their float64 shadow.
func (v Value) sh() float64 {
	if v.Base == ft.TInteger {
		return float64(v.I)
	}
	return v.Sh
}

// asInt returns the numeric value of v truncated to an integer.
func (v Value) asInt() int64 {
	if v.Base == ft.TInteger {
		return v.I
	}
	return int64(v.F)
}

func (v Value) String() string {
	switch v.Base {
	case ft.TInteger:
		return fmt.Sprintf("%d", v.I)
	case ft.TReal:
		if v.Arr != nil {
			return fmt.Sprintf("<array kind=%d size=%d>", v.Arr.Kind, v.Arr.Size())
		}
		return fmt.Sprintf("%g", v.F)
	case ft.TLogical:
		if v.B {
			return "T"
		}
		return "F"
	case ft.TString:
		return v.S
	default:
		return "<invalid>"
	}
}

func nonFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}
