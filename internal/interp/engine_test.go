package interp

// Differential tests pinning the bit-for-bit contract between the
// closure-compiled VM (EngineVM) and the reference tree-walker
// (EngineAST): identical results, cycle totals, step counts, cast
// attribution, PRINT output, GPTL reports, and numerics profiles, on
// every bundled model source and on randomized programs.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// engineRun captures everything observable from one run.
type engineRun struct {
	in      *Interp
	res     *Result
	errStr  string
	stdout  []byte
	timers  string
	profile []byte
}

func runEngine(t *testing.T, prog *ft.Program, eng Engine, withNumerics bool) *engineRun {
	t.Helper()
	var out bytes.Buffer
	cfg := Config{Model: perfmodel.Default(), Profile: true, Stdout: &out, Engine: eng}
	var rec *numerics.Recorder
	if withNumerics {
		rec = numerics.NewRecorder("prog.ft", numerics.Options{})
		cfg.Numerics = rec
	}
	in, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", eng, err)
	}
	res, rerr := in.Run()
	r := &engineRun{in: in, res: res, stdout: out.Bytes()}
	if rerr != nil {
		r.errStr = rerr.Error()
	}
	if res.Timers != nil {
		r.timers = res.Timers.Report()
	}
	if rec != nil {
		b, jerr := json.Marshal(rec.Profile())
		if jerr != nil {
			t.Fatalf("marshal profile: %v", jerr)
		}
		r.profile = b
	}
	return r
}

// compareEngines runs prog under both engines with identical configs
// and fails on any observable divergence. Comparisons are exact (bit
// patterns, not tolerances): the engines must agree down to float
// accumulation order.
func compareEngines(t *testing.T, prog *ft.Program, withNumerics bool) {
	t.Helper()
	ast := runEngine(t, prog, EngineAST, withNumerics)
	vm := runEngine(t, prog, EngineVM, withNumerics)

	if ast.errStr != vm.errStr {
		t.Fatalf("run error diverged:\n  ast: %q\n  vm:  %q", ast.errStr, vm.errStr)
	}
	if b1, b2 := math.Float64bits(ast.res.Cycles), math.Float64bits(vm.res.Cycles); b1 != b2 {
		t.Errorf("cycles diverged: ast %.17g vm %.17g", ast.res.Cycles, vm.res.Cycles)
	}
	if ast.res.Casts != vm.res.Casts {
		t.Errorf("casts diverged: ast %d vm %d", ast.res.Casts, vm.res.Casts)
	}
	if math.Float64bits(ast.res.CastCycles) != math.Float64bits(vm.res.CastCycles) {
		t.Errorf("cast cycles diverged: ast %.17g vm %.17g", ast.res.CastCycles, vm.res.CastCycles)
	}
	if ast.res.Steps != vm.res.Steps {
		t.Errorf("steps diverged: ast %d vm %d", ast.res.Steps, vm.res.Steps)
	}
	if len(ast.res.ProcCastCycles) != len(vm.res.ProcCastCycles) {
		t.Errorf("proc cast attribution diverged:\n  ast: %v\n  vm:  %v",
			ast.res.ProcCastCycles, vm.res.ProcCastCycles)
	}
	for q, c := range ast.res.ProcCastCycles {
		vc, ok := vm.res.ProcCastCycles[q]
		if !ok || math.Float64bits(c) != math.Float64bits(vc) {
			t.Errorf("proc cast cycles for %s diverged: ast %.17g vm %.17g (present=%v)", q, c, vc, ok)
		}
	}
	if !bytes.Equal(ast.stdout, vm.stdout) {
		t.Errorf("PRINT output diverged:\n  ast: %q\n  vm:  %q", ast.stdout, vm.stdout)
	}
	if ast.timers != vm.timers {
		t.Errorf("GPTL report diverged:\n--- ast ---\n%s\n--- vm ---\n%s", ast.timers, vm.timers)
	}
	if !bytes.Equal(ast.profile, vm.profile) {
		t.Errorf("numerics profile diverged:\n  ast: %s\n  vm:  %s", ast.profile, vm.profile)
	}
	compareGlobals(t, prog, ast.in, vm.in, withNumerics)
}

func compareGlobals(t *testing.T, prog *ft.Program, ast, vm *Interp, withNumerics bool) {
	t.Helper()
	for _, mod := range prog.Modules {
		for _, d := range mod.Decls {
			q := d.QName()
			av, _ := ast.Global(q)
			vv, _ := vm.Global(q)
			if (av.Arr == nil) != (vv.Arr == nil) {
				t.Errorf("global %s: array allocation diverged (ast nil=%v vm nil=%v)",
					q, av.Arr == nil, vv.Arr == nil)
				continue
			}
			if av.Arr != nil {
				a, b := av.Arr, vv.Arr
				if len(a.Data) != len(b.Data) {
					t.Errorf("global %s: array size diverged (%d vs %d)", q, len(a.Data), len(b.Data))
					continue
				}
				for k := range a.Data {
					if math.Float64bits(a.Data[k]) != math.Float64bits(b.Data[k]) {
						t.Errorf("global %s[%d]: ast %.17g vm %.17g", q, k, a.Data[k], b.Data[k])
						break
					}
				}
				if withNumerics {
					if (a.Shadow == nil) != (b.Shadow == nil) {
						t.Errorf("global %s: shadow allocation diverged", q)
						continue
					}
					for k := range a.Shadow {
						if math.Float64bits(a.Shadow[k]) != math.Float64bits(b.Shadow[k]) {
							t.Errorf("global %s shadow[%d]: ast %.17g vm %.17g", q, k, a.Shadow[k], b.Shadow[k])
							break
						}
					}
				}
				continue
			}
			if math.Float64bits(av.F) != math.Float64bits(vv.F) || av.I != vv.I || av.B != vv.B {
				t.Errorf("global %s diverged: ast {F:%.17g I:%d B:%v} vm {F:%.17g I:%d B:%v}",
					q, av.F, av.I, av.B, vv.F, vv.I, vv.B)
			}
			// The shadow lane is only defined under a recorder; without
			// one the engines are free to report F there.
			if withNumerics && math.Float64bits(av.Sh) != math.Float64bits(vv.Sh) {
				t.Errorf("global %s shadow diverged: ast %.17g vm %.17g", q, av.Sh, vv.Sh)
			}
		}
	}
}

func parseModelFile(t *testing.T, path string) *ft.Program {
	t.Helper()
	src, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("read %s: %v", path, rerr)
	}
	prog, err := ft.ParseFile(path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("analyze %s: %v", path, err)
	}
	return prog
}

// TestEngineDifferentialModels runs every bundled model source — and
// its uniform 32-bit lowering, the cast-heaviest variant the tuner ever
// builds — through both engines, with and without shadow execution.
func TestEngineDifferentialModels(t *testing.T) {
	files, err := filepath.Glob("../models/src/*.ft")
	if err != nil || len(files) == 0 {
		t.Fatalf("no model sources found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			prog := parseModelFile(t, f)
			compareEngines(t, prog, false)
			compareEngines(t, prog, true)

			v, err := transform.Apply(prog, transform.Uniform(transform.Atoms(prog), 4))
			if err != nil {
				t.Fatalf("uniform-32 transform: %v", err)
			}
			compareEngines(t, v.Prog, false)
			compareEngines(t, v.Prog, true)
		})
	}
}

// TestEngineDifferentialBudget pins that both engines time out at the
// same statement with the same error when a cycle budget truncates a
// model run mid-flight.
func TestEngineDifferentialBudget(t *testing.T) {
	prog := parseModelFile(t, "../models/src/funarc.ft")
	full := runEngine(t, prog, EngineAST, false)
	if full.errStr != "" {
		t.Fatalf("unbudgeted run failed: %s", full.errStr)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		budget := full.res.Cycles * frac
		run := func(eng Engine) (*Result, string) {
			// Profile on, matching the baseline measurement (timer
			// overhead is part of the cycle count).
			in, err := New(prog, Config{Model: perfmodel.Default(), Profile: true, CycleBudget: budget, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			res, rerr := in.Run()
			msg := ""
			if rerr != nil {
				msg = rerr.Error()
			}
			return res, msg
		}
		ares, aerr := run(EngineAST)
		vres, verr := run(EngineVM)
		if aerr == "" {
			t.Fatalf("budget %.0f did not trip", budget)
		}
		if aerr != verr {
			t.Errorf("budget error diverged:\n  ast: %q\n  vm:  %q", aerr, verr)
		}
		if math.Float64bits(ares.Cycles) != math.Float64bits(vres.Cycles) || ares.Steps != vres.Steps {
			t.Errorf("budget %.0f: partial progress diverged: ast (%.17g cycles, %d steps) vm (%.17g cycles, %d steps)",
				budget, ares.Cycles, ares.Steps, vres.Cycles, vres.Steps)
		}
	}
}

// TestEngineDifferentialProperty feeds randomized scalar expression
// programs through both engines and requires bit-identical results and
// cycle totals. The grammar leans on the operations with the trickiest
// rounding behaviour: kind-4 arithmetic, **, and transcendentals.
func TestEngineDifferentialProperty(t *testing.T) {
	ops := []string{"+", "-", "*", "/"}
	uns := []string{"sqrt(abs(%s))", "sin(%s)", "cos(%s)", "exp(min(%s, 4.0_8))", "abs(%s)", "-(%s)"}
	pows := []string{"abs(%s) ** 2", "abs(%s) ** 3", "abs(%s) ** 7", "abs(%s) ** y", "abs(%s) ** 0.5_4"}
	var rng uint64 = 0x9e3779b97f4a7c15
	next := func(n int) int { // xorshift, deterministic across runs
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 {
			switch next(4) {
			case 0:
				return "x"
			case 1:
				return "y"
			case 2:
				return "1.7_4"
			default:
				return "0.3141592653589793_8"
			}
		}
		switch next(3) {
		case 0:
			return fmt.Sprintf("(%s %s %s)", gen(depth-1), ops[next(len(ops))], gen(depth-1))
		case 1:
			return fmt.Sprintf(uns[next(len(uns))], gen(depth-1))
		default:
			return fmt.Sprintf("(%s)", fmt.Sprintf(pows[next(len(pows))], gen(depth-1)))
		}
	}
	for i := 0; i < 120; i++ {
		kind := 4 + 4*next(2)
		x := float64(next(4000)-2000) / 128
		y := float64(next(300)+1) / 64
		expr := gen(2 + next(3))
		src := fmt.Sprintf(`
module e
  implicit none
  real(kind=8) :: r_out
end module e
program p
  use e
  implicit none
  real(kind=%d) :: x, y
  x = %.17g_8
  y = %.17g_8
  r_out = %s
end program p
`, kind, x, y, expr)
		prog, err := ft.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
			t.Fatalf("analyze: %v\n%s", err, src)
		}
		for _, withNumerics := range []bool{false, true} {
			ast := runEngine(t, prog, EngineAST, withNumerics)
			vm := runEngine(t, prog, EngineVM, withNumerics)
			if ast.errStr != vm.errStr {
				t.Fatalf("case %d (numerics=%v) error diverged:\n  ast: %q\n  vm: %q\nexpr: %s",
					i, withNumerics, ast.errStr, vm.errStr, expr)
			}
			ar, _ := ast.in.GlobalFloat("e.r_out")
			vr, _ := vm.in.GlobalFloat("e.r_out")
			if math.Float64bits(ar) != math.Float64bits(vr) {
				t.Errorf("case %d (numerics=%v) result diverged: ast %.17g vm %.17g\nexpr: %s",
					i, withNumerics, ar, vr, expr)
			}
			if math.Float64bits(ast.res.Cycles) != math.Float64bits(vm.res.Cycles) ||
				ast.res.Steps != vm.res.Steps || ast.res.Casts != vm.res.Casts {
				t.Errorf("case %d (numerics=%v) accounting diverged: ast (%.17g, %d, %d) vm (%.17g, %d, %d)\nexpr: %s",
					i, withNumerics, ast.res.Cycles, ast.res.Steps, ast.res.Casts,
					vm.res.Cycles, vm.res.Steps, vm.res.Casts, expr)
			}
			if !bytes.Equal(ast.profile, vm.profile) {
				t.Errorf("case %d numerics profile diverged\nexpr: %s\n  ast: %s\n  vm:  %s",
					i, expr, ast.profile, vm.profile)
			}
		}
	}
}

// TestCycleBudgetBoundary pins the budget contract documented on
// Config.CycleBudget for both engines: the boundary is inclusive, so a
// statement beginning at exactly CycleBudget cycles does not execute,
// while a budget one ulp higher admits it.
func TestCycleBudgetBoundary(t *testing.T) {
	const prefix = `
program p
  implicit none
  real(kind=8) :: a
  a = 1.5_8 + 2.25_8
end program p
`
	const full = `
program p
  implicit none
  real(kind=8) :: a
  a = 1.5_8 + 2.25_8
  a = a * 2.0_8
end program p
`
	build := func(src string) *ft.Program {
		prog := ft.MustParse(src)
		ft.MustAnalyze(prog, ft.Options{})
		return prog
	}
	run := func(eng Engine, src string, budget float64) (*Result, error) {
		in, err := New(build(src), Config{Model: perfmodel.Default(), CycleBudget: budget, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		return in.Run()
	}
	for _, eng := range []Engine{EngineAST, EngineVM} {
		res1, err := run(eng, prefix, 0)
		if err != nil {
			t.Fatalf("%v: prefix run: %v", eng, err)
		}
		c1 := res1.Cycles

		// Exactly at the boundary: the second statement must not run.
		res2, err := run(eng, full, c1)
		if err == nil {
			t.Fatalf("%v: budget %.17g did not stop the second statement", eng, c1)
		}
		var re *RunError
		if !errors.As(err, &re) || re.Kind != FailTimeout {
			t.Fatalf("%v: want FailTimeout, got %v", eng, err)
		}
		if res2.Steps != res1.Steps {
			t.Errorf("%v: partial steps %d, want %d (timeout before the statement counts)",
				eng, res2.Steps, res1.Steps)
		}
		if math.Float64bits(res2.Cycles) != math.Float64bits(c1) {
			t.Errorf("%v: partial cycles %.17g, want %.17g", eng, res2.Cycles, c1)
		}

		// One ulp above the boundary: the run completes.
		if _, err := run(eng, full, math.Nextafter(c1, math.Inf(1))); err != nil {
			t.Errorf("%v: budget just above the boundary still tripped: %v", eng, err)
		}
	}
}
