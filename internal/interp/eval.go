package interp

import (
	"fmt"
	"math"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// isLiteral reports whether e is a compile-time constant whose kind
// conversion is folded by the compiler (no runtime cast is charged).
func isLiteral(e ft.Expr) bool {
	switch e := e.(type) {
	case *ft.IntLit, *ft.RealLit, *ft.LogicalLit:
		return true
	case *ft.UnExpr:
		return isLiteral(e.X)
	case *ft.VarRef:
		return e.Decl != nil && e.Decl.IsParam
	default:
		return false
	}
}

// chargeOperandCast charges casts needed to bring an operand of static
// type at to the operation kind opKind.
func (i *Interp) chargeOperandCast(e ft.Expr, at ft.Type, opKind int) {
	if isLiteral(e) {
		return
	}
	switch {
	case at.Base == ft.TInteger:
		i.op(perfmodel.OpConv, 4)
	case at.Base == ft.TReal && at.Kind != opKind:
		i.cast(1)
	}
}

// evalExpr evaluates an expression, charging its cost.
func (i *Interp) evalExpr(fr *frame, e ft.Expr) (Value, error) {
	switch e := e.(type) {
	case *ft.IntLit:
		return intValue(e.Val), nil
	case *ft.RealLit:
		return realValue(e.Val, e.Kind), nil
	case *ft.LogicalLit:
		return logicalValue(e.Val), nil
	case *ft.StrLit:
		return Value{Base: ft.TString, S: e.Val}, nil
	case *ft.VarRef:
		d := e.Decl
		if d == nil {
			return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
				Msg: fmt.Sprintf("unresolved variable %q", e.Name)}
		}
		return i.loadVar(fr, d), nil
	case *ft.IndexExpr:
		v, _, err := i.loadElement(fr, e)
		return v, err
	case *ft.UnExpr:
		return i.evalUnary(fr, e)
	case *ft.BinExpr:
		return i.evalBinary(fr, e)
	case *ft.CallExpr:
		if e.Intrinsic != "" {
			return i.evalIntrinsic(fr, e)
		}
		return i.callFunction(fr, e)
	default:
		return Value{}, &RunError{Pos: e.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("unknown expression %T", e)}
	}
}

// loadElement evaluates an array element reference, returning the value
// and its flat offset.
func (i *Interp) loadElement(fr *frame, e *ft.IndexExpr) (Value, int, error) {
	arr, off, err := i.elementRef(fr, e)
	if err != nil {
		return Value{}, 0, err
	}
	i.op(perfmodel.OpLoad, arr.Kind)
	v := Value{Base: ft.TReal, Kind: arr.Kind, F: arr.Data[off], Sh: arr.Data[off]}
	if arr.Shadow != nil {
		v.Sh = arr.Shadow[off]
	}
	return v, off, nil
}

// elementRef resolves an array element reference to (array, offset).
func (i *Interp) elementRef(fr *frame, e *ft.IndexExpr) (*Array, int, error) {
	av := i.loadVar(fr, e.Arr.Decl)
	if av.Arr == nil {
		return nil, 0, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", e.Arr.Name)}
	}
	idx := make([]int, len(e.Indices))
	for k, ix := range e.Indices {
		v, err := i.evalExpr(fr, ix)
		if err != nil {
			return nil, 0, err
		}
		// Index arithmetic is integer ALU work.
		i.op(perfmodel.OpIntALU, 4)
		idx[k] = int(v.asInt())
	}
	off, err := av.Arr.flatIndex(idx)
	if err != nil {
		return nil, 0, &RunError{Pos: e.Pos, Kind: FailBounds,
			Msg: fmt.Sprintf("%s: %v", e.Arr.Name, err)}
	}
	return av.Arr, off, nil
}

func (i *Interp) evalUnary(fr *frame, e *ft.UnExpr) (Value, error) {
	x, err := i.evalExpr(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case ft.MINUS:
		if x.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			return intValue(-x.I), nil
		}
		i.op(perfmodel.OpAddSub, x.Kind)
		v := realValue(-x.F, x.Kind)
		if i.nrec != nil {
			v.Sh = -x.sh()
		}
		return v, nil
	case ft.PLUS:
		return x, nil
	case ft.NOT:
		i.op(perfmodel.OpIntALU, 4)
		return logicalValue(!x.B), nil
	default:
		return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown unary op %v", e.Op)}
	}
}

func (i *Interp) evalBinary(fr *frame, e *ft.BinExpr) (Value, error) {
	x, err := i.evalExpr(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	y, err := i.evalExpr(fr, e.Y)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case ft.AND:
		i.op(perfmodel.OpIntALU, 4)
		return logicalValue(x.B && y.B), nil
	case ft.OR:
		i.op(perfmodel.OpIntALU, 4)
		return logicalValue(x.B || y.B), nil
	}

	xt, yt := e.X.Type(), e.Y.Type()
	switch e.Op {
	case ft.EQ, ft.NE, ft.LT, ft.LE, ft.GT, ft.GE:
		if xt.Base == ft.TLogical {
			i.op(perfmodel.OpIntALU, 4)
			if e.Op == ft.EQ {
				return logicalValue(x.B == y.B), nil
			}
			return logicalValue(x.B != y.B), nil
		}
		if xt.Base == ft.TInteger && yt.Base == ft.TInteger {
			i.op(perfmodel.OpIntALU, 4)
			return logicalValue(intCompare(e.Op, x.I, y.I)), nil
		}
		// Real comparison at the kind recorded by semantic analysis
		// (polymorphic constants follow the variable operand).
		k := e.Typ.Kind
		if k == 0 {
			k = promoteKind(xt, yt)
		}
		i.chargeOperandCast(e.X, xt, k)
		i.chargeOperandCast(e.Y, yt, k)
		i.op(perfmodel.OpCmp, k)
		xf, yf := convertReal(x.asFloat(), k), convertReal(y.asFloat(), k)
		var b bool
		if k == 4 {
			b = f32Compare(e.Op, float32(xf), float32(yf))
		} else {
			b = f64Compare(e.Op, xf, yf)
		}
		if i.nrec != nil && b != f64Compare(e.Op, x.sh(), y.sh()) {
			i.nrec.Branch(i.procName(), e.Pos.Line)
		}
		return logicalValue(b), nil
	}

	// Arithmetic.
	if xt.Base == ft.TInteger && yt.Base == ft.TInteger {
		i.op(perfmodel.OpIntALU, 4)
		return i.intArith(e, x.I, y.I)
	}
	k := e.Typ.Kind
	i.chargeOperandCast(e.X, xt, k)
	i.chargeOperandCast(e.Y, yt, k)
	xf, yf := convertReal(x.asFloat(), k), convertReal(y.asFloat(), k)
	var r float64
	var opByte byte
	switch e.Op {
	case ft.PLUS:
		opByte = '+'
		i.op(perfmodel.OpAddSub, k)
		r = arith(k, xf, yf, func(a, b float64) float64 { return a + b },
			func(a, b float32) float32 { return a + b })
	case ft.MINUS:
		opByte = '-'
		i.op(perfmodel.OpAddSub, k)
		r = arith(k, xf, yf, func(a, b float64) float64 { return a - b },
			func(a, b float32) float32 { return a - b })
	case ft.STAR:
		opByte = '*'
		i.op(perfmodel.OpMul, k)
		r = arith(k, xf, yf, func(a, b float64) float64 { return a * b },
			func(a, b float32) float32 { return a * b })
	case ft.SLASH:
		opByte = '/'
		i.op(perfmodel.OpDiv, k)
		r = arith(k, xf, yf, func(a, b float64) float64 { return a / b },
			func(a, b float32) float32 { return a / b })
	case ft.POW:
		opByte = '^'
		// x**n with a small constant integer exponent lowers to
		// multiplies; anything else is a pow call.
		if lit, ok := e.Y.(*ft.IntLit); ok && lit.Val >= 0 && lit.Val <= 4 {
			i.opN(perfmodel.OpMul, k, float64(max64(lit.Val-1, 1)), i.vecFactor)
		} else {
			i.op(perfmodel.OpPow, k)
		}
		r = powReal(k, yt, xf, yf, y.I)
	default:
		return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown binary op %v", e.Op)}
	}
	v := Value{Base: ft.TReal, Kind: k, F: r, Sh: r}
	if i.nrec != nil {
		xs, ys := x.sh(), y.sh()
		yp := yf
		if e.Op == ft.POW && yt.Base == ft.TInteger {
			// The integer-exponent path bypasses yf.
			yp = float64(y.I)
		}
		exact := binOp64(opByte, xf, yp)
		v.Sh = binOp64(opByte, xs, ys)
		i.nrec.Op(i.procName(), e.Pos.Line, opByte, xf, yp, xs, ys, r, exact, v.Sh)
	}
	return v, nil
}

// binOp64 is the float64 evaluation of a binary arithmetic op, the
// reference lane for shadow execution.
func binOp64(op byte, a, b float64) float64 {
	switch op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		return a / b
	default: // '^'
		return math.Pow(a, b)
	}
}

// arith performs a binary arithmetic operation at the requested kind:
// kind-4 operations execute in IEEE binary32.
func arith(kind int, x, y float64, f64 func(a, b float64) float64, f32 func(a, b float32) float32) float64 {
	if kind == 4 {
		return float64(f32(float32(x), float32(y)))
	}
	return f64(x, y)
}

// powReal evaluates x**y at the operation kind. Kind-4 integer
// exponents use binary powering entirely in float32, the way compilers
// lower them (libgcc __powisf2): every partial product rounds through
// binary32. Evaluating in float64 and rounding once would double-round
// — a fidelity difference the shadow lane must observe, not hide.
// Kind-4 real exponents round the float64 pow once, modelling a libm
// powf that returns the nearest binary32 result.
func powReal(k int, yt ft.Type, xf, yf float64, yi int64) float64 {
	if yt.Base == ft.TInteger {
		if k == 4 {
			return float64(powi32(float32(xf), yi))
		}
		return convertReal(math.Pow(xf, float64(yi)), k)
	}
	return convertReal(math.Pow(xf, yf), k)
}

// powi32 raises x to an integer power by binary powering in float32.
func powi32(x float32, p int64) float32 {
	n := p
	if n < 0 {
		n = -n
	}
	y := float32(1)
	if n&1 == 1 {
		y = x
	}
	for n >>= 1; n > 0; n >>= 1 {
		x *= x
		if n&1 == 1 {
			y *= x
		}
	}
	if p < 0 {
		return 1 / y
	}
	return y
}

func (i *Interp) intArith(e *ft.BinExpr, x, y int64) (Value, error) {
	return intArithVal(e.Op, e.Pos, x, y)
}

// intArithVal is the integer arithmetic kernel shared by both engines.
func intArithVal(op ft.TokKind, pos ft.Pos, x, y int64) (Value, error) {
	switch op {
	case ft.PLUS:
		return intValue(x + y), nil
	case ft.MINUS:
		return intValue(x - y), nil
	case ft.STAR:
		return intValue(x * y), nil
	case ft.SLASH:
		if y == 0 {
			return Value{}, &RunError{Pos: pos, Kind: FailNonFinite, Msg: "integer division by zero"}
		}
		return intValue(x / y), nil
	case ft.POW:
		if y < 0 {
			return intValue(0), nil // Fortran: integer pow with negative exponent truncates to 0 (|x|>1)
		}
		r := int64(1)
		for n := int64(0); n < y; n++ {
			r *= x
		}
		return intValue(r), nil
	default:
		return Value{}, &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown integer op %v", op)}
	}
}

func promoteKind(x, y ft.Type) int {
	if x.Base == ft.TReal && x.Kind == 8 || y.Base == ft.TReal && y.Kind == 8 {
		return 8
	}
	return 4
}

func intCompare(op ft.TokKind, x, y int64) bool {
	switch op {
	case ft.EQ:
		return x == y
	case ft.NE:
		return x != y
	case ft.LT:
		return x < y
	case ft.LE:
		return x <= y
	case ft.GT:
		return x > y
	default:
		return x >= y
	}
}

func f64Compare(op ft.TokKind, x, y float64) bool {
	switch op {
	case ft.EQ:
		return x == y
	case ft.NE:
		return x != y
	case ft.LT:
		return x < y
	case ft.LE:
		return x <= y
	case ft.GT:
		return x > y
	default:
		return x >= y
	}
}

func f32Compare(op ft.TokKind, x, y float32) bool {
	switch op {
	case ft.EQ:
		return x == y
	case ft.NE:
		return x != y
	case ft.LT:
		return x < y
	case ft.LE:
		return x <= y
	case ft.GT:
		return x > y
	default:
		return x >= y
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// execAssign executes an assignment, including whole-array forms.
func (i *Interp) execAssign(fr *frame, s *ft.AssignStmt) error {
	lt := s.LHS.Type()

	// Whole-array LHS: fill or copy.
	if lt.Rank > 0 {
		return i.execArrayAssign(fr, s)
	}

	if i.nrec != nil {
		// Error born while evaluating the RHS is attributed to the
		// target atom (empty for non-real targets).
		i.nrec.PushTarget(assignAtom(s.LHS, lt))
		defer i.nrec.PopTarget()
	}
	rhs, err := i.evalExpr(fr, s.RHS)
	if err != nil {
		return err
	}
	rt := s.RHS.Type()
	// Conversion cost for the store.
	if lt.Base == ft.TReal {
		switch {
		case rt.Base == ft.TInteger:
			i.op(perfmodel.OpConv, 4)
		case rt.Base == ft.TReal && rt.Kind != lt.Kind && !isLiteral(s.RHS):
			i.cast(1)
		}
	} else if lt.Base == ft.TInteger && rt.Base == ft.TReal {
		i.op(perfmodel.OpConv, 4)
	}

	switch lhs := s.LHS.(type) {
	case *ft.VarRef:
		v := convertScalar(rhs, lt)
		if i.nrec != nil && v.Base == ft.TReal {
			i.nrec.Assign(i.procName(), s.Pos.Line, assignAtom(s.LHS, lt),
				v.F, v.Sh, rhs.asFloat())
		}
		if i.cfg.TrapNonFinite && v.Base == ft.TReal && nonFinite(v.F) {
			return &RunError{Pos: s.Pos, Kind: FailNonFinite,
				Msg: fmt.Sprintf("assigning non-finite value to %s", lhs.Name)}
		}
		i.storeScalar(fr, lhs.Decl, v)
		return nil
	case *ft.IndexExpr:
		arr, off, err := i.elementRef(fr, lhs)
		if err != nil {
			return err
		}
		i.op(perfmodel.OpStore, arr.Kind)
		f := convertReal(rhs.asFloat(), arr.Kind)
		if i.nrec != nil {
			i.nrec.Assign(i.procName(), s.Pos.Line, assignAtom(s.LHS, lt),
				f, rhs.sh(), rhs.asFloat())
		}
		if i.cfg.TrapNonFinite && nonFinite(f) {
			return &RunError{Pos: s.Pos, Kind: FailNonFinite,
				Msg: fmt.Sprintf("assigning non-finite value to %s(...)", lhs.Arr.Name)}
		}
		arr.Data[off] = f
		if arr.Shadow != nil {
			arr.Shadow[off] = rhs.sh()
		}
		return nil
	default:
		return &RunError{Pos: s.Pos, Kind: FailInternal, Msg: "bad assignment target"}
	}
}

// assignAtom is the search-atom qualified name of an assignment target:
// the declaration behind a real variable or array-element LHS ("" for
// integer/logical targets, which are not atoms).
func assignAtom(lhs ft.Expr, lt ft.Type) string {
	if lt.Base != ft.TReal {
		return ""
	}
	switch lhs := lhs.(type) {
	case *ft.VarRef:
		if lhs.Decl != nil {
			return lhs.Decl.QName()
		}
	case *ft.IndexExpr:
		if lhs.Arr != nil && lhs.Arr.Decl != nil {
			return lhs.Arr.Decl.QName()
		}
	}
	return ""
}

// execArrayAssign handles "a = b" (copy) and "a = scalar" (fill).
// Same-kind copies and fills run at vector rate; cross-kind copies run
// scalar with one conversion per element — exactly the casting overhead
// that dominates wrapper-heavy variants (paper §IV-B, MOM6 variant 58).
func (i *Interp) execArrayAssign(fr *frame, s *ft.AssignStmt) error {
	lref, ok := s.LHS.(*ft.VarRef)
	if !ok {
		return &RunError{Pos: s.Pos, Kind: FailInternal, Msg: "bad array assignment target"}
	}
	dstV := i.loadVar(fr, lref.Decl)
	if dstV.Arr == nil {
		return &RunError{Pos: s.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", lref.Name)}
	}
	dst := dstV.Arr
	n := dst.Size()

	if i.nrec != nil {
		i.nrec.PushTarget(lref.Decl.QName())
		defer i.nrec.PopTarget()
	}

	rt := s.RHS.Type()
	if rt.Rank == 0 {
		// Broadcast fill.
		v, err := i.evalExpr(fr, s.RHS)
		if err != nil {
			return err
		}
		f := convertReal(v.asFloat(), dst.Kind)
		if i.nrec != nil {
			// One representative record for the whole fill.
			i.nrec.Assign(i.procName(), s.Pos.Line, lref.Decl.QName(),
				f, v.sh(), v.asFloat())
		}
		if i.cfg.TrapNonFinite && nonFinite(f) {
			return &RunError{Pos: s.Pos, Kind: FailNonFinite,
				Msg: fmt.Sprintf("assigning non-finite value to %s", lref.Name)}
		}
		i.opN(perfmodel.OpStore, dst.Kind, float64(n), i.model.VecFactor(dst.Kind, false, false))
		for k := range dst.Data {
			dst.Data[k] = f
		}
		if dst.Shadow != nil {
			fs := v.sh()
			for k := range dst.Shadow {
				dst.Shadow[k] = fs
			}
		}
		return nil
	}

	// Whole-array copy.
	rref, ok := s.RHS.(*ft.VarRef)
	if !ok {
		return &RunError{Pos: s.Pos, Kind: FailInternal,
			Msg: "array assignment source must be a whole array"}
	}
	srcV := i.loadVar(fr, rref.Decl)
	if srcV.Arr == nil {
		return &RunError{Pos: s.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", rref.Name)}
	}
	src := srcV.Arr
	if src.Size() != n {
		return &RunError{Pos: s.Pos, Kind: FailBounds,
			Msg: fmt.Sprintf("array size mismatch in %s = %s (%d vs %d)",
				lref.Name, rref.Name, n, src.Size())}
	}
	if src.Kind == dst.Kind {
		vf := i.model.VecFactor(dst.Kind, false, false)
		i.opN(perfmodel.OpLoad, src.Kind, float64(n), vf)
		i.opN(perfmodel.OpStore, dst.Kind, float64(n), vf)
		copy(dst.Data, src.Data)
	} else {
		// Converting copy: scalar loads/stores plus a cast per element.
		i.opN(perfmodel.OpLoad, src.Kind, float64(n), 1)
		i.opN(perfmodel.OpStore, dst.Kind, float64(n), 1)
		i.cast(int64(n))
		for k := range dst.Data {
			f := convertReal(src.Data[k], dst.Kind)
			if i.cfg.TrapNonFinite && nonFinite(f) {
				return &RunError{Pos: s.Pos, Kind: FailNonFinite,
					Msg: fmt.Sprintf("assigning non-finite value to %s", lref.Name)}
			}
			dst.Data[k] = f
		}
	}
	if dst.Shadow != nil {
		// The shadow lane copies unrounded in either direction.
		if src.Shadow != nil {
			copy(dst.Shadow, src.Shadow)
		} else {
			copy(dst.Shadow, src.Data)
		}
	}
	return nil
}
