package interp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// evalScalarExpr runs a tiny program computing `r = <expr>` with the
// given variable declarations/values and returns r.
func evalScalarExpr(t *testing.T, declKind int, x, y float64, expr string) (float64, error) {
	t.Helper()
	src := fmt.Sprintf(`
module e
  implicit none
  real(kind=8) :: r_out
end module e
program p
  use e
  implicit none
  real(kind=%d) :: x, y
  x = %.17g_8
  y = %.17g_8
  r_out = %s
end program p
`, declKind, x, y, expr)
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	in, err := New(prog, Config{Model: perfmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		return 0, err
	}
	v, _ := in.GlobalFloat("e.r_out")
	return v, nil
}

// Property: kind-8 arithmetic matches Go float64 arithmetic exactly, and
// kind-4 arithmetic matches Go float32 arithmetic exactly, for all four
// operators over random operands.
func TestArithmeticMatchesGoProperty(t *testing.T) {
	type opCase struct {
		expr string
		f64  func(x, y float64) float64
		f32  func(x, y float32) float32
	}
	ops := []opCase{
		{"x + y", func(x, y float64) float64 { return x + y }, func(x, y float32) float32 { return x + y }},
		{"x - y", func(x, y float64) float64 { return x - y }, func(x, y float32) float32 { return x - y }},
		{"x * y", func(x, y float64) float64 { return x * y }, func(x, y float32) float32 { return x * y }},
		{"x / y", func(x, y float64) float64 { return x / y }, func(x, y float32) float32 { return x / y }},
	}
	checked := 0
	f := func(xr, yr float64, opIdx uint8) bool {
		// Keep operands sane (finite, moderate magnitude, y != 0).
		x := math.Mod(xr, 1e6)
		y := math.Mod(yr, 1e6)
		if math.IsNaN(x) || math.IsNaN(y) || y == 0 || x == 0 {
			return true
		}
		op := ops[int(opIdx)%len(ops)]

		got8, err := evalScalarExpr(t, 8, x, y, op.expr)
		if err != nil {
			return true // trapped non-finite: fine
		}
		want8 := op.f64(x, y)
		if got8 != want8 && !(math.IsNaN(got8) && math.IsNaN(want8)) {
			t.Logf("k8 %s: x=%g y=%g got %.17g want %.17g", op.expr, x, y, got8, want8)
			return false
		}

		got4, err := evalScalarExpr(t, 4, x, y, op.expr)
		if err != nil {
			return true
		}
		want4 := float64(op.f32(float32(x), float32(y)))
		if got4 != want4 && !(math.IsNaN(got4) && math.IsNaN(want4)) {
			t.Logf("k4 %s: x=%g y=%g got %.17g want %.17g", op.expr, x, y, got4, want4)
			return false
		}
		checked++
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	if checked == 0 {
		t.Error("property never exercised")
	}
}

// Property: a kind-4 variable always holds a float32-representable value
// after any chain of assignments (the storage rounding invariant).
func TestKind4StorageInvariantProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e30 {
			return true
		}
		got, err := evalScalarExpr(t, 4, v, 1, "x")
		if err != nil {
			return true
		}
		return got == float64(float32(got)) && got == float64(float32(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: simulated cycle counts are strictly positive and additive
// over repeated kernels: running a loop of 2n iterations costs more than
// n iterations.
func TestCyclesMonotoneInWorkProperty(t *testing.T) {
	cost := func(n int) float64 {
		src := fmt.Sprintf(`
module w
  implicit none
  real(kind=8) :: acc(64)
end module w
program p
  use w
  implicit none
  integer :: i
  do i = 1, %d
    acc(mod(i, 64) + 1) = acc(mod(i, 64) + 1) + 1.5d0
  end do
end program p
`, n)
		prog := ft.MustParse(src)
		ft.MustAnalyze(prog, ft.Options{})
		in, err := New(prog, Config{Model: perfmodel.Default()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	f := func(raw uint8) bool {
		n := int(raw)%500 + 10
		c1, c2 := cost(n), cost(2*n)
		return c1 > 0 && c2 > c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
