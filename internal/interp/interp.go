package interp

import (
	"context"
	"fmt"
	"io"

	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

// FailKind classifies why a run failed, matching the variant outcome
// buckets of the paper's Table II.
type FailKind int

// Failure kinds.
const (
	FailNone FailKind = iota
	FailNonFinite
	FailStop
	FailBounds
	FailTimeout
	FailInternal
	// FailCancelled aborts a run whose Config.Context was cancelled — a
	// deadline or shutdown killing the evaluation from outside. Unlike
	// FailTimeout (the deterministic 3x-baseline cycle budget of §IV-A),
	// cancellation says nothing about the variant: callers must treat it
	// as an interrupted measurement, never as a variant outcome.
	FailCancelled
)

func (k FailKind) String() string {
	switch k {
	case FailNonFinite:
		return "non-finite value"
	case FailStop:
		return "error stop"
	case FailBounds:
		return "index out of bounds"
	case FailTimeout:
		return "cycle budget exceeded"
	case FailInternal:
		return "internal error"
	case FailCancelled:
		return "run cancelled"
	default:
		return "ok"
	}
}

// RunError is a runtime failure of the interpreted program.
type RunError struct {
	Pos  ft.Pos
	Kind FailKind
	Msg  string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Kind, e.Msg)
}

// Config configures a run.
type Config struct {
	// Model prices operations; required.
	Model *perfmodel.Model
	// Analysis supplies vectorization/inlining verdicts. If nil it is
	// computed from the program.
	Analysis *perfmodel.Analysis
	// TrapNonFinite makes any assignment of NaN/±Inf a runtime error,
	// the mechanism behind Table II's "Error" outcomes.
	TrapNonFinite bool
	// CycleBudget aborts the run with FailTimeout once simulated cycles
	// reach it (0 = unlimited). The boundary is inclusive: a statement
	// beginning at exactly CycleBudget cycles does not execute, so the
	// evaluator's "3× baseline" contract (§IV-A) admits strictly less
	// than three baselines of work. Pinned by TestCycleBudgetBoundary
	// for both engines.
	CycleBudget float64
	// Context, if non-nil, aborts the run with FailCancelled once it is
	// done. It is polled periodically in the statement loop, alongside
	// the cycle budget, so even a long-running evaluation notices a hard
	// cancellation within a bounded number of statements.
	Context context.Context
	// Stdout receives PRINT output (nil discards it).
	Stdout io.Writer
	// Profile enables GPTL per-procedure timing (with modeled overhead).
	Profile bool
	// MaxDepth bounds the call stack (default 1000).
	MaxDepth int
	// Numerics, if non-nil, enables shadow execution: every real value
	// carries a float64 shadow computed at full precision and the
	// recorder aggregates per-statement/per-atom divergence. Strictly
	// diagnostic: it never changes primary-lane results, costs, or
	// failure behaviour (test-enforced), and nil keeps the hot path
	// allocation-free.
	Numerics *numerics.Recorder
	// Engine selects the evaluator: the closure-compiled VM (default)
	// or the reference tree-walker. Strictly an implementation choice —
	// results, cycles, steps, recorder traces, and journals are
	// bit-for-bit identical across engines (test-enforced) — so the
	// engine is never part of a journal fingerprint.
	Engine Engine
}

// Engine selects how a run executes the checked AST.
type Engine int

// Engines. The zero value is the VM so existing constructors get the
// fast path without opting in.
const (
	// EngineVM compiles the program to typed closures over unboxed
	// slot storage at New time and runs those (see docs/interpreter.md).
	EngineVM Engine = iota
	// EngineAST walks the tree directly: the executable specification
	// the VM is differentially tested against.
	EngineAST
)

func (e Engine) String() string {
	if e == EngineAST {
		return "ast"
	}
	return "vm"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "vm":
		return EngineVM, nil
	case "ast":
		return EngineAST, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want vm or ast)", s)
	}
}

// Result summarizes a completed run.
type Result struct {
	Cycles     float64
	Casts      int64   // dynamic kind-conversion count
	CastCycles float64 // cycles spent on kind conversions
	Steps      int64   // statements executed (loop bodies re-counted)
	Timers     *gptl.Timers
	// ProcCastCycles attributes cast cycles to the procedure executing
	// them — the evidence behind the paper's "40% of CPU time is
	// casting overhead" analysis of MOM6 variant 58.
	ProcCastCycles map[string]float64
}

// control is the statement-level control-flow signal.
type control int

const (
	ctlNone control = iota
	ctlExit
	ctlCycle
	ctlReturn
)

type frame struct {
	proc  *ft.Procedure
	slots []Value
}

// Interp executes one program. An Interp is single-use: construct, Run,
// then inspect globals. Under the default EngineVM the tree-walking
// fields stay idle and vmr carries the compiled program; the public
// surface (Run, Cycles, Global*) is engine-agnostic.
type Interp struct {
	prog    *ft.Program
	cfg     Config
	model   *perfmodel.Model
	an      *perfmodel.Analysis
	cycles  float64
	globals [][]Value
	timers  *gptl.Timers
	stdout  io.Writer
	vmr     *vm

	vecFactor float64 // current pricing multiplier (vectorized loops)
	depth     int

	casts      int64
	castCycles float64
	procCasts  map[string]float64
	curProc    []string // procedure name stack for cast attribution
	nrec       *numerics.Recorder

	// steps counts checkBudget calls — approximately statements
	// executed. It feeds Result.Steps and paces the (comparatively
	// costly) Context poll to every cancelPollInterval steps.
	steps int64
}

// cancelPollInterval is how many budget checks (≈ statements) pass
// between Context polls: rare enough to stay off the hot path, frequent
// enough that a hard cancellation lands within microseconds of real
// work.
const cancelPollInterval = 1024

// New prepares an interpreter for an analyzed program.
func New(prog *ft.Program, cfg Config) (*Interp, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("interp: Config.Model is required")
	}
	if prog.Main == nil {
		return nil, fmt.Errorf("interp: program has no main program block")
	}
	if prog.ProcMap == nil {
		return nil, fmt.Errorf("interp: program must be analyzed first")
	}
	an := cfg.Analysis
	if an == nil {
		an = perfmodel.Analyze(prog, cfg.Model)
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 1000
	}
	i := &Interp{
		prog:      prog,
		cfg:       cfg,
		model:     cfg.Model,
		an:        an,
		stdout:    cfg.Stdout,
		vecFactor: 1.0,
		procCasts: make(map[string]float64),
		nrec:      cfg.Numerics,
	}
	if cfg.Engine == EngineVM {
		i.vmr = newVM(prog, &i.cfg, cfg.Model, an)
		return i, nil
	}
	if cfg.Profile {
		// Timer overhead is charged in invoke() for non-inlined calls
		// only: inlined procedures get free cost *attribution* (a
		// runtime timer could not observe them at all).
		i.timers = gptl.New(func() float64 { return i.cycles })
	}
	return i, nil
}

// Run initializes module storage and executes the main program.
func (i *Interp) Run() (*Result, error) {
	if i.vmr != nil {
		return i.vmr.run()
	}
	if err := i.initModules(); err != nil {
		return i.result(), err
	}
	fr, err := i.newFrame(i.prog.Main)
	if err != nil {
		return i.result(), err
	}
	_, err = i.execStmts(fr, i.prog.Main.Body)
	return i.result(), err
}

func (i *Interp) result() *Result {
	return &Result{
		Cycles:         i.cycles,
		Casts:          i.casts,
		CastCycles:     i.castCycles,
		Steps:          i.steps,
		Timers:         i.timers,
		ProcCastCycles: i.procCasts,
	}
}

// Cycles returns the simulated cycles consumed so far.
func (i *Interp) Cycles() float64 {
	if i.vmr != nil {
		return i.vmr.cycles
	}
	return i.cycles
}

// Global returns the value of a module variable by qualified name
// ("module.var"), used by model harnesses to read output time series.
func (i *Interp) Global(qname string) (Value, bool) {
	for _, m := range i.prog.Modules {
		for _, d := range m.Decls {
			if d.QName() == qname {
				if i.vmr != nil {
					return i.vmr.globalValue(m, d), true
				}
				return i.globals[m.Index][d.Slot], true
			}
		}
	}
	return Value{}, false
}

// GlobalFloats returns a copy of a real module array's contents.
func (i *Interp) GlobalFloats(qname string) ([]float64, bool) {
	v, ok := i.Global(qname)
	if !ok || v.Arr == nil {
		return nil, false
	}
	return append([]float64(nil), v.Arr.Data...), true
}

// GlobalFloat returns a real or integer module scalar as float64.
func (i *Interp) GlobalFloat(qname string) (float64, bool) {
	v, ok := i.Global(qname)
	if !ok || v.Arr != nil {
		return 0, ok && false
	}
	return v.asFloat(), true
}

// initModules allocates and initializes module-level storage in module
// declaration order.
func (i *Interp) initModules() error {
	i.globals = make([][]Value, len(i.prog.Modules))
	for _, m := range i.prog.Modules {
		i.globals[m.Index] = make([]Value, len(m.Decls))
	}
	for _, m := range i.prog.Modules {
		for _, d := range m.Decls {
			v, err := i.initDecl(nil, d)
			if err != nil {
				return err
			}
			i.globals[m.Index][d.Slot] = v
		}
	}
	return nil
}

// initDecl builds the initial value for a declaration; fr may be nil for
// module-level declarations.
func (i *Interp) initDecl(fr *frame, d *ft.VarDecl) (Value, error) {
	if d.IsArray() {
		lo := make([]int, len(d.Dims))
		ext := make([]int, len(d.Dims))
		for k, dim := range d.Dims {
			if dim.Assumed {
				return Value{}, &RunError{Pos: d.Pos, Kind: FailInternal,
					Msg: fmt.Sprintf("assumed-shape array %q has no bound actual", d.Name)}
			}
			loV := 1
			if dim.Lo != nil {
				v, err := i.evalExpr(fr, dim.Lo)
				if err != nil {
					return Value{}, err
				}
				loV = int(v.asInt())
			}
			hiV, err := i.evalExpr(fr, dim.Hi)
			if err != nil {
				return Value{}, err
			}
			lo[k] = loV
			ext[k] = int(hiV.asInt()) - loV + 1
			if ext[k] < 0 {
				ext[k] = 0
			}
		}
		if d.Base != ft.TReal {
			return Value{}, &RunError{Pos: d.Pos, Kind: FailInternal,
				Msg: fmt.Sprintf("array %q: only real arrays are supported", d.Name)}
		}
		arr := NewArray(d.Kind, lo, ext)
		if i.nrec != nil {
			arr.Shadow = make([]float64, len(arr.Data))
		}
		return Value{Base: ft.TReal, Kind: d.Kind, Arr: arr}, nil
	}
	var v Value
	switch d.Base {
	case ft.TReal:
		v = realValue(0, d.Kind)
	case ft.TInteger:
		v = intValue(0)
	case ft.TLogical:
		v = logicalValue(false)
	}
	if d.Init != nil {
		iv, err := i.evalExpr(fr, d.Init)
		if err != nil {
			return Value{}, err
		}
		v = convertScalar(iv, d.Type())
	}
	return v, nil
}

// convertScalar coerces a scalar value to the declared type (no cost
// accounting; cost is charged at the operation that required it). The
// shadow lane passes through unrounded: conversion narrows the primary
// only (the field copy is free, so this is not recorder-gated).
func convertScalar(v Value, t ft.Type) Value {
	switch t.Base {
	case ft.TReal:
		nv := realValue(v.asFloat(), t.Kind)
		nv.Sh = v.sh()
		return nv
	case ft.TInteger:
		return intValue(v.asInt())
	case ft.TLogical:
		return logicalValue(v.B)
	default:
		return v
	}
}

// newFrame allocates a frame and initializes its non-argument locals.
func (i *Interp) newFrame(p *ft.Procedure) (*frame, error) {
	fr := &frame{proc: p, slots: make([]Value, p.NumSlots)}
	for _, d := range p.Decls {
		if d.IsArg {
			continue
		}
		v, err := i.initDecl(fr, d)
		if err != nil {
			return nil, err
		}
		fr.slots[d.Slot] = v
	}
	return fr, nil
}

// op charges one scalar operation at the current vectorization factor.
// Loads and stores are bandwidth-bound: their vector discount is clamped
// to the model's memory floor.
func (i *Interp) op(c perfmodel.OpClass, kind int) {
	f := i.vecFactor
	if c == perfmodel.OpLoad || c == perfmodel.OpStore {
		f = i.model.MemFactor(f)
	}
	i.cycles += i.model.OpCost(c, kind) * f
}

// opN charges n operations at an explicit factor (clamped for memory).
func (i *Interp) opN(c perfmodel.OpClass, kind int, n float64, factor float64) {
	if c == perfmodel.OpLoad || c == perfmodel.OpStore {
		factor = i.model.MemFactor(factor)
	}
	i.cycles += i.model.OpCost(c, kind) * n * factor
}

// cast charges a kind-conversion and attributes it.
func (i *Interp) cast(n int64) {
	cost := i.model.OpCost(perfmodel.OpCast, 8) * float64(n) * i.vecFactor
	i.cycles += cost
	i.casts += n
	i.castCycles += cost
	if len(i.curProc) > 0 {
		i.procCasts[i.curProc[len(i.curProc)-1]] += cost
	}
}

func (i *Interp) checkBudget(pos ft.Pos) error {
	if i.cfg.CycleBudget > 0 && i.cycles >= i.cfg.CycleBudget {
		return &RunError{Pos: pos, Kind: FailTimeout,
			Msg: fmt.Sprintf("exceeded %.0f cycles", i.cfg.CycleBudget)}
	}
	i.steps++
	if i.cfg.Context != nil && i.steps%cancelPollInterval == 0 {
		if err := i.cfg.Context.Err(); err != nil {
			return &RunError{Pos: pos, Kind: FailCancelled, Msg: err.Error()}
		}
	}
	return nil
}

// execStmts executes a statement list.
func (i *Interp) execStmts(fr *frame, stmts []ft.Stmt) (control, error) {
	for _, s := range stmts {
		ctl, err := i.execStmt(fr, s)
		if err != nil {
			return ctlNone, err
		}
		if ctl != ctlNone {
			return ctl, nil
		}
	}
	return ctlNone, nil
}

func (i *Interp) execStmt(fr *frame, s ft.Stmt) (control, error) {
	if err := i.checkBudget(s.StmtPos()); err != nil {
		return ctlNone, err
	}
	switch s := s.(type) {
	case *ft.AssignStmt:
		return ctlNone, i.execAssign(fr, s)
	case *ft.IfStmt:
		i.op(perfmodel.OpBranch, 4)
		cond, err := i.evalExpr(fr, s.Cond)
		if err != nil {
			return ctlNone, err
		}
		if cond.B {
			return i.execStmts(fr, s.Then)
		}
		return i.execStmts(fr, s.Else)
	case *ft.DoStmt:
		return i.execDo(fr, s)
	case *ft.DoWhileStmt:
		return i.execDoWhile(fr, s)
	case *ft.CallStmt:
		return ctlNone, i.execCall(fr, s)
	case *ft.ReturnStmt:
		return ctlReturn, nil
	case *ft.ExitStmt:
		return ctlExit, nil
	case *ft.CycleStmt:
		return ctlCycle, nil
	case *ft.StopStmt:
		if s.Code == nil {
			return ctlNone, &RunError{Pos: s.Pos, Kind: FailStop, Msg: "stop"}
		}
		v, err := i.evalExpr(fr, s.Code)
		if err != nil {
			return ctlNone, err
		}
		return ctlNone, &RunError{Pos: s.Pos, Kind: FailStop,
			Msg: fmt.Sprintf("stop %s", v)}
	case *ft.PrintStmt:
		if i.stdout != nil {
			for k, a := range s.Args {
				v, err := i.evalExpr(fr, a)
				if err != nil {
					return ctlNone, err
				}
				if k > 0 {
					fmt.Fprint(i.stdout, " ")
				}
				fmt.Fprint(i.stdout, v.String())
			}
			fmt.Fprintln(i.stdout)
		} else {
			// PRINT arguments may have side effects; evaluate regardless.
			for _, a := range s.Args {
				if _, err := i.evalExpr(fr, a); err != nil {
					return ctlNone, err
				}
			}
		}
		return ctlNone, nil
	default:
		return ctlNone, &RunError{Pos: s.StmtPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("unknown statement %T", s)}
	}
}

func (i *Interp) execDo(fr *frame, s *ft.DoStmt) (control, error) {
	from, err := i.evalExpr(fr, s.From)
	if err != nil {
		return ctlNone, err
	}
	to, err := i.evalExpr(fr, s.To)
	if err != nil {
		return ctlNone, err
	}
	step := int64(1)
	if s.Step != nil {
		sv, err := i.evalExpr(fr, s.Step)
		if err != nil {
			return ctlNone, err
		}
		step = sv.asInt()
		if step == 0 {
			return ctlNone, &RunError{Pos: s.Pos, Kind: FailInternal, Msg: "DO step is zero"}
		}
	}
	// Vectorization: enter the discounted pricing regime for the body.
	dec := i.an.Loop(s)
	savedFactor := i.vecFactor
	if dec.Vectorized {
		i.vecFactor = dec.Factor
	}
	defer func() { i.vecFactor = savedFactor }()

	vslot := s.Var.Decl
	lo, hi := from.asInt(), to.asInt()
	for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
		i.storeScalar(fr, vslot, intValue(v))
		i.op(perfmodel.OpLoopIter, 4)
		if err := i.checkBudget(s.Pos); err != nil {
			return ctlNone, err
		}
		ctl, err := i.execStmts(fr, s.Body)
		if err != nil {
			return ctlNone, err
		}
		switch ctl {
		case ctlExit:
			return ctlNone, nil
		case ctlReturn:
			return ctlReturn, nil
		}
	}
	return ctlNone, nil
}

func (i *Interp) execDoWhile(fr *frame, s *ft.DoWhileStmt) (control, error) {
	for {
		if err := i.checkBudget(s.Pos); err != nil {
			return ctlNone, err
		}
		i.op(perfmodel.OpBranch, 4)
		cond, err := i.evalExpr(fr, s.Cond)
		if err != nil {
			return ctlNone, err
		}
		if !cond.B {
			return ctlNone, nil
		}
		ctl, err := i.execStmts(fr, s.Body)
		if err != nil {
			return ctlNone, err
		}
		switch ctl {
		case ctlExit:
			return ctlNone, nil
		case ctlReturn:
			return ctlReturn, nil
		}
	}
}

// procName is the procedure currently executing, for numerics
// attribution (the main program reports as "main").
func (i *Interp) procName() string {
	if n := len(i.curProc); n > 0 {
		return i.curProc[n-1]
	}
	return "main"
}

// storeScalar writes a scalar slot (local or module).
func (i *Interp) storeScalar(fr *frame, d *ft.VarDecl, v Value) {
	if d.Proc != nil {
		fr.slots[d.Slot] = v
	} else {
		i.globals[d.InMod.Index][d.Slot] = v
	}
}

// loadVar reads a variable slot.
func (i *Interp) loadVar(fr *frame, d *ft.VarDecl) Value {
	if d.Proc != nil {
		return fr.slots[d.Slot]
	}
	return i.globals[d.InMod.Index][d.Slot]
}
