package interp

// The closure-compiled engine (EngineVM, the default). compile.go
// lowers the checked AST once per Interp into typed closures with
// every name resolved to a frame slot and every operation cost folded
// to a constant; this file holds the runtime those closures execute
// against. The contract with the tree-walker (interp.go, eval.go,
// call.go, intrinsics.go) is bit-for-bit equivalence: identical
// results, cycle totals, step counts, cast attribution, recorder call
// sequences, and journal bytes — enforced by the differential tests in
// engine_test.go and property_test.go. Anything observable here must
// mirror the tree-walker exactly, down to float accumulation order.
//
// Storage is structure-of-arrays: a vframe keeps one slice per value
// lane (float64 primary, float64 shadow, int64, bool, *Array), all
// indexed by the declaration's slot. The shadow lane exists only when
// a numerics recorder is attached, so uninstrumented runs touch no
// shadow storage at all. Frames are pooled per procedure: every slot
// is either a bound argument or an initialized local, so a recycled
// frame needs no clearing.

import (
	"context"
	"fmt"
	"io"

	ft "repro/internal/fortran"
	"repro/internal/gptl"
	"repro/internal/numerics"
	"repro/internal/perfmodel"
)

// vexpr evaluates an expression in a frame, charging its cost.
type vexpr func(m *vm, fr *vframe) (Value, error)

// vstmt executes one statement (budget check included).
type vstmt func(m *vm, fr *vframe) (control, error)

// vinit initializes one declaration's slot (zero or declared init).
type vinit func(m *vm, fr *vframe) error

// vframe is slot storage for one procedure activation (or one module):
// parallel lanes indexed by VarDecl.Slot. Only the lane matching the
// declaration's type is live for a given slot.
type vframe struct {
	f  []float64 // real primary
	sh []float64 // real shadow (nil unless a recorder is attached)
	i  []int64
	b  []bool
	a  []*Array
}

// cproc is one compiled procedure.
type cproc struct {
	proc     *ft.Procedure
	qname    string
	inits    []vinit // non-argument locals, in declaration order
	body     []vstmt
	inlined  bool
	numSlots int
	shadow   bool
	pool     []*vframe
}

// frame returns a pooled or fresh activation frame. No clearing is
// needed: argument slots are written by the caller's binding plan and
// every non-argument declaration has an init closure.
func (cp *cproc) frame() *vframe {
	if n := len(cp.pool); n > 0 {
		fr := cp.pool[n-1]
		cp.pool = cp.pool[:n-1]
		return fr
	}
	fr := &vframe{
		f: make([]float64, cp.numSlots),
		i: make([]int64, cp.numSlots),
		b: make([]bool, cp.numSlots),
		a: make([]*Array, cp.numSlots),
	}
	if cp.shadow {
		fr.sh = make([]float64, cp.numSlots)
	}
	return fr
}

func (cp *cproc) put(fr *vframe) { cp.pool = append(cp.pool, fr) }

// cprog is a compiled program.
type cprog struct {
	prog     *ft.Program
	procs    []*cproc // by Procedure.Index
	main     *cproc
	modInits [][]vinit // by Module.Index, in declaration order
}

// vm is the mutable run state the compiled closures thread through.
// Field-for-field it shadows the tree-walker's Interp accounting so
// both engines accumulate cycles, casts, and steps identically.
type vm struct {
	cp     *cprog
	model  *perfmodel.Model
	rec    *numerics.Recorder
	stdout io.Writer
	timers *gptl.Timers

	gl []*vframe // module storage by Module.Index

	cycles    float64
	vecFactor float64
	depth     int
	steps     int64

	casts      int64
	castCycles float64
	castAcc    []float64 // by Procedure.Index, summed in execution order
	castSeen   []bool
	curProc    []*cproc

	budget   float64
	ctx      context.Context
	trap     bool
	maxDepth int
	memFloor float64
	castCost float64
}

// newVM compiles the program and prepares its run state.
func newVM(prog *ft.Program, cfg *Config, model *perfmodel.Model, an *perfmodel.Analysis) *vm {
	m := &vm{
		model:     model,
		rec:       cfg.Numerics,
		stdout:    cfg.Stdout,
		vecFactor: 1.0,
		budget:    cfg.CycleBudget,
		ctx:       cfg.Context,
		trap:      cfg.TrapNonFinite,
		maxDepth:  cfg.MaxDepth,
		memFloor:  model.MemVecFloor,
		castCost:  model.OpCost(perfmodel.OpCast, 8),
	}
	m.cp = compileProgram(prog, model, an, cfg.Numerics)
	m.castAcc = make([]float64, len(prog.AllProcs))
	m.castSeen = make([]bool, len(prog.AllProcs))
	m.gl = make([]*vframe, len(prog.Modules))
	for _, mod := range prog.Modules {
		fr := &vframe{
			f: make([]float64, len(mod.Decls)),
			i: make([]int64, len(mod.Decls)),
			b: make([]bool, len(mod.Decls)),
			a: make([]*Array, len(mod.Decls)),
		}
		if cfg.Numerics != nil {
			fr.sh = make([]float64, len(mod.Decls))
		}
		m.gl[mod.Index] = fr
	}
	if cfg.Profile {
		m.timers = gptl.New(func() float64 { return m.cycles })
	}
	return m
}

// run mirrors Interp.Run: module init, main locals, main body.
func (m *vm) run() (*Result, error) {
	for _, inits := range m.cp.modInits {
		for _, init := range inits {
			if err := init(m, nil); err != nil {
				return m.result(), err
			}
		}
	}
	cp := m.cp.main
	fr := cp.frame()
	for _, init := range cp.inits {
		if err := init(m, fr); err != nil {
			return m.result(), err
		}
	}
	_, err := m.runStmts(fr, cp.body)
	cp.put(fr)
	return m.result(), err
}

func (m *vm) result() *Result {
	pc := make(map[string]float64)
	for idx, seen := range m.castSeen {
		if seen {
			pc[m.cp.procs[idx].qname] = m.castAcc[idx]
		}
	}
	return &Result{
		Cycles:         m.cycles,
		Casts:          m.casts,
		CastCycles:     m.castCycles,
		Steps:          m.steps,
		Timers:         m.timers,
		ProcCastCycles: pc,
	}
}

// globalValue synthesizes the tree-walker's Value view of a module
// variable from lane storage (Interp.Global dispatches here).
func (m *vm) globalValue(mod *ft.Module, d *ft.VarDecl) Value {
	fr := m.gl[mod.Index]
	slot := d.Slot
	switch {
	case d.IsArray():
		arr := fr.a[slot]
		if arr == nil {
			return Value{}
		}
		return Value{Base: ft.TReal, Kind: d.Kind, Arr: arr}
	case d.Base == ft.TReal:
		v := Value{Base: ft.TReal, Kind: d.Kind, F: fr.f[slot], Sh: fr.f[slot]}
		if fr.sh != nil {
			v.Sh = fr.sh[slot]
		}
		return v
	case d.Base == ft.TInteger:
		return intValue(fr.i[slot])
	case d.Base == ft.TLogical:
		return logicalValue(fr.b[slot])
	}
	return Value{}
}

func (m *vm) runStmts(fr *vframe, list []vstmt) (control, error) {
	for _, s := range list {
		ctl, err := s(m, fr)
		if err != nil {
			return ctlNone, err
		}
		if ctl != ctlNone {
			return ctl, nil
		}
	}
	return ctlNone, nil
}

// checkBudget is the VM copy of Interp.checkBudget: same inclusive
// boundary, same step counting, same cancelPollInterval pacing.
func (m *vm) checkBudget(pos ft.Pos) error {
	if m.budget > 0 && m.cycles >= m.budget {
		return &RunError{Pos: pos, Kind: FailTimeout,
			Msg: fmt.Sprintf("exceeded %.0f cycles", m.budget)}
	}
	m.steps++
	if m.ctx != nil && m.steps%cancelPollInterval == 0 {
		if err := m.ctx.Err(); err != nil {
			return &RunError{Pos: pos, Kind: FailCancelled, Msg: err.Error()}
		}
	}
	return nil
}

// charge adds one precompiled scalar-op cost at the current factor
// (the compiled form of Interp.op with OpCost folded to a constant).
func (m *vm) charge(cost float64) { m.cycles += cost * m.vecFactor }

// chargeMem is charge with the memory-bandwidth floor applied to the
// vector discount, mirroring Interp.op for loads/stores.
func (m *vm) chargeMem(cost float64) {
	f := m.vecFactor
	if f < m.memFloor {
		f = m.memFloor
	}
	m.cycles += cost * f
}

// chargeN mirrors Interp.opN: cost*n*factor in that association order.
func (m *vm) chargeN(cost, n, factor float64) { m.cycles += cost * n * factor }

// chargeMemN is chargeN with the factor clamped to the memory floor.
func (m *vm) chargeMemN(cost, n, factor float64) {
	if factor < m.memFloor {
		factor = m.memFloor
	}
	m.cycles += cost * n * factor
}

// cast charges a kind conversion and attributes it to the procedure on
// top of the call stack (main-level casts stay unattributed), exactly
// as Interp.cast does. Attribution is dynamic because declaration-init
// expressions execute under their *caller's* attribution context.
func (m *vm) cast(n int64) {
	cost := m.castCost * float64(n) * m.vecFactor
	m.cycles += cost
	m.casts += n
	m.castCycles += cost
	if k := len(m.curProc); k > 0 {
		idx := m.curProc[k-1].proc.Index
		m.castAcc[idx] += cost
		m.castSeen[idx] = true
	}
}

// procName is the dynamic procedure name for recorder attribution
// ("main" outside any call), matching Interp.procName.
func (m *vm) procName() string {
	if k := len(m.curProc); k > 0 {
		return m.curProc[k-1].qname
	}
	return "main"
}
