package interp

// The unboxed real fast path. The general compiled form (compile.go)
// evaluates every expression to a Value, which keeps the bit-for-bit
// contract easy to see but copies a ~70-byte struct through every
// closure call. Real-typed scalar expressions — the inner loops of
// every model — don't need the box: this file compiles them to vreals
// closures that thread two float64 lanes (primary, shadow) directly.
//
// The contract is unchanged: a vreals closure must charge the same
// cycles in the same order, make the same recorder calls, and produce
// the same bits as the Value-path closure it replaces. To keep the
// shadow lane free when uninstrumented, every constructor compiles two
// flavors: with a recorder (sh is the true float64 shadow) and without
// (sh is unread; closures return the primary so the lane is never
// garbage). realExpr returns nil whenever it cannot prove exact
// equivalence, and the caller falls back to the Value path.

import (
	"math"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// vreals evaluates a real-typed scalar expression to its primary and
// shadow lanes, charging its cost.
type vreals func(m *vm, fr *vframe) (float64, float64, error)

// realExpr compiles e to the unboxed fast path, or returns nil when e
// needs the general Value path (calls, arrays of unknown shape, int
// subexpressions, ...).
func (c *compiler) realExpr(e ft.Expr) vreals {
	switch e := e.(type) {
	case *ft.RealLit:
		f, s := convertReal(e.Val, e.Kind), e.Val
		return func(m *vm, fr *vframe) (float64, float64, error) { return f, s, nil }
	case *ft.IntLit:
		// Only reachable as an operand of a real-typed parent, where the
		// Value path reads it via asFloat()/sh() — both float64(Val) —
		// and charges nothing for a literal operand.
		f := float64(e.Val)
		return func(m *vm, fr *vframe) (float64, float64, error) { return f, f, nil }
	case *ft.VarRef:
		d := e.Decl
		if d == nil || d.IsArray() || d.Base != ft.TReal {
			return nil
		}
		slot := d.Slot
		if d.Proc != nil {
			if c.rec != nil {
				return func(m *vm, fr *vframe) (float64, float64, error) {
					return fr.f[slot], fr.sh[slot], nil
				}
			}
			return func(m *vm, fr *vframe) (float64, float64, error) {
				f := fr.f[slot]
				return f, f, nil
			}
		}
		mi := d.InMod.Index
		if c.rec != nil {
			return func(m *vm, fr *vframe) (float64, float64, error) {
				g := m.gl[mi]
				return g.f[slot], g.sh[slot], nil
			}
		}
		return func(m *vm, fr *vframe) (float64, float64, error) {
			f := m.gl[mi].f[slot]
			return f, f, nil
		}
	case *ft.IndexExpr:
		r := c.elemRef(e)
		loadCost := [2]float64{c.cost(perfmodel.OpLoad, 4), c.cost(perfmodel.OpLoad, 8)}
		return func(m *vm, fr *vframe) (float64, float64, error) {
			arr, off, err := r.resolve(m, fr)
			if err != nil {
				return 0, 0, err
			}
			m.chargeMem(loadCost[kindIdx(arr.Kind)])
			f := arr.Data[off]
			sh := f
			if arr.Shadow != nil {
				sh = arr.Shadow[off]
			}
			return f, sh, nil
		}
	case *ft.UnExpr:
		switch e.Op {
		case ft.PLUS:
			return c.realExpr(e.X)
		case ft.MINUS:
			xt := e.X.Type()
			if xt.Base != ft.TReal {
				return nil
			}
			xv := c.realExpr(e.X)
			if xv == nil {
				return nil
			}
			cost := c.cost(perfmodel.OpAddSub, xt.Kind)
			kind := xt.Kind
			if c.rec != nil {
				return func(m *vm, fr *vframe) (float64, float64, error) {
					xf, xs, err := xv(m, fr)
					if err != nil {
						return 0, 0, err
					}
					m.charge(cost)
					return convertReal(-xf, kind), -xs, nil
				}
			}
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, _, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				m.charge(cost)
				f := convertReal(-xf, kind)
				return f, f, nil
			}
		}
		return nil
	case *ft.BinExpr:
		return c.realBinary(e)
	case *ft.CallExpr:
		return c.realIntrinsic(e)
	}
	return nil
}

// realBinary compiles real arithmetic (the tail of compiler.binary)
// unboxed. Operands must be statically real (or an integer literal,
// which the Value path also treats castless); a ** with a non-literal
// integer exponent falls back.
func (c *compiler) realBinary(e *ft.BinExpr) vreals {
	if e.Typ.Base != ft.TReal {
		return nil
	}
	switch e.Op {
	case ft.PLUS, ft.MINUS, ft.STAR, ft.SLASH, ft.POW:
	default:
		return nil
	}
	xt, yt := e.X.Type(), e.Y.Type()
	if xt.Base != ft.TReal {
		if _, ok := e.X.(*ft.IntLit); !ok {
			return nil
		}
	}
	powIntLit, _ := e.Y.(*ft.IntLit)
	if yt.Base != ft.TReal && powIntLit == nil {
		return nil
	}
	xv, yv := c.realExpr(e.X), c.realExpr(e.Y)
	if xv == nil || yv == nil {
		return nil
	}

	k := e.Typ.Kind
	chX := c.operandCast(e.X, xt, k)
	chY := c.operandCast(e.Y, yt, k)

	// Operation cost, mirroring binary()'s chargeOp constants.
	var cost float64
	var ob byte
	switch e.Op {
	case ft.PLUS:
		ob, cost = '+', c.cost(perfmodel.OpAddSub, k)
	case ft.MINUS:
		ob, cost = '-', c.cost(perfmodel.OpAddSub, k)
	case ft.STAR:
		ob, cost = '*', c.cost(perfmodel.OpMul, k)
	case ft.SLASH:
		ob, cost = '/', c.cost(perfmodel.OpDiv, k)
	case ft.POW:
		ob = '^'
		if lit, ok := e.Y.(*ft.IntLit); ok && lit.Val >= 0 && lit.Val <= 4 {
			cost = c.cost(perfmodel.OpMul, k) * float64(max64(lit.Val-1, 1))
		} else {
			cost = c.cost(perfmodel.OpPow, k)
		}
	}

	// prim computes the primary lane from operands already converted to
	// the op kind (identical to binary()'s prim table).
	kk := k
	var prim func(xf, yf float64) float64
	isPow := e.Op == ft.POW
	powInt := isPow && yt.Base == ft.TInteger
	var yi int64
	if powInt {
		yi = powIntLit.Val
	}
	switch {
	case isPow:
		ytt := yt
		prim = func(xf, yf float64) float64 { return powReal(kk, ytt, xf, yf, yi) }
	case k == 4:
		switch e.Op {
		case ft.PLUS:
			prim = func(xf, yf float64) float64 { return float64(float32(xf) + float32(yf)) }
		case ft.MINUS:
			prim = func(xf, yf float64) float64 { return float64(float32(xf) - float32(yf)) }
		case ft.STAR:
			prim = func(xf, yf float64) float64 { return float64(float32(xf) * float32(yf)) }
		default:
			prim = func(xf, yf float64) float64 { return float64(float32(xf) / float32(yf)) }
		}
	default:
		switch e.Op {
		case ft.PLUS:
			prim = func(xf, yf float64) float64 { return xf + yf }
		case ft.MINUS:
			prim = func(xf, yf float64) float64 { return xf - yf }
		case ft.STAR:
			prim = func(xf, yf float64) float64 { return xf * yf }
		default:
			prim = func(xf, yf float64) float64 { return xf / yf }
		}
	}

	if c.rec == nil {
		// Uninstrumented: skip the operand convertReal for non-pow ops —
		// float32(x) == float32(rnd32(x)) and kind-8 conversion is the
		// identity, so the primary bits are unchanged. Pow consumes its
		// operands in float64, so it still pre-rounds.
		if isPow {
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, _, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				yf, _, err := yv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				if chX != nil {
					chX(m)
				}
				if chY != nil {
					chY(m)
				}
				m.charge(cost)
				f := prim(convertReal(xf, kk), convertReal(yf, kk))
				return f, f, nil
			}
		}
		return func(m *vm, fr *vframe) (float64, float64, error) {
			xf, _, err := xv(m, fr)
			if err != nil {
				return 0, 0, err
			}
			yf, _, err := yv(m, fr)
			if err != nil {
				return 0, 0, err
			}
			if chX != nil {
				chX(m)
			}
			if chY != nil {
				chY(m)
			}
			m.charge(cost)
			f := prim(xf, yf)
			return f, f, nil
		}
	}

	rs := c.rsite(e.Pos.Line)
	// Kind-8 non-pow ops get dedicated closures: conversion to the op
	// kind is the identity, the primary IS the exact float64 result
	// (prim and binOp64 agree bit for bit), and the shadow op is a
	// single direct flop — no indirect prim call. This is the hot shape
	// of every double-precision baseline under a recorder.
	if kk == 8 && !isPow {
		switch e.Op {
		case ft.PLUS:
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, xs, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				yf, ys, err := yv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				if chX != nil {
					chX(m)
				}
				if chY != nil {
					chY(m)
				}
				m.charge(cost)
				f := xf + yf
				sh := xs + ys
				rs.op(m, '+', xf, yf, xs, ys, f, f, sh)
				return f, sh, nil
			}
		case ft.MINUS:
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, xs, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				yf, ys, err := yv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				if chX != nil {
					chX(m)
				}
				if chY != nil {
					chY(m)
				}
				m.charge(cost)
				f := xf - yf
				sh := xs - ys
				rs.op(m, '-', xf, yf, xs, ys, f, f, sh)
				return f, sh, nil
			}
		case ft.STAR:
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, xs, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				yf, ys, err := yv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				if chX != nil {
					chX(m)
				}
				if chY != nil {
					chY(m)
				}
				m.charge(cost)
				f := xf * yf
				sh := xs * ys
				rs.op(m, '*', xf, yf, xs, ys, f, f, sh)
				return f, sh, nil
			}
		default: // ft.SLASH
			return func(m *vm, fr *vframe) (float64, float64, error) {
				xf, xs, err := xv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				yf, ys, err := yv(m, fr)
				if err != nil {
					return 0, 0, err
				}
				if chX != nil {
					chX(m)
				}
				if chY != nil {
					chY(m)
				}
				m.charge(cost)
				f := xf / yf
				sh := xs / ys
				rs.op(m, '/', xf, yf, xs, ys, f, f, sh)
				return f, sh, nil
			}
		}
	}
	// At kind 8 the primary IS the exact float64 result (prim and
	// binOp64 agree bit for bit for every op, including both pow
	// lowerings), so the exact lane is free. Kind 4 recomputes it.
	exactIsF := kk == 8
	return func(m *vm, fr *vframe) (float64, float64, error) {
		xr, xs, err := xv(m, fr)
		if err != nil {
			return 0, 0, err
		}
		yr, ys, err := yv(m, fr)
		if err != nil {
			return 0, 0, err
		}
		if chX != nil {
			chX(m)
		}
		if chY != nil {
			chY(m)
		}
		m.charge(cost)
		xf, yf := convertReal(xr, kk), convertReal(yr, kk)
		f := prim(xf, yf)
		yp := yf
		if powInt {
			// The integer-exponent path bypasses yf.
			yp = float64(yi)
		}
		exact := f
		if !exactIsF {
			exact = binOp64(ob, xf, yp)
		}
		sh := exact
		if xs != xf || ys != yp {
			sh = binOp64(ob, xs, ys)
		}
		rs.op(m, ob, xf, yp, xs, ys, f, exact, sh)
		return f, sh, nil
	}
}

// realIntrinsic compiles the single-argument real intrinsics (the
// unIntrinsic table) unboxed. Everything else falls back.
func (c *compiler) realIntrinsic(e *ft.CallExpr) vreals {
	if e.Intrinsic == "" || e.Typ.Base != ft.TReal || len(e.Args) != 1 {
		return nil
	}
	var cls perfmodel.OpClass
	var fn func(float64) float64
	switch e.Intrinsic {
	case "abs":
		cls, fn = perfmodel.OpSimple, math.Abs
	case "sqrt":
		cls, fn = perfmodel.OpSqrt, math.Sqrt
	case "exp":
		cls, fn = perfmodel.OpTrans, math.Exp
	case "log":
		cls, fn = perfmodel.OpTrans, math.Log
	case "log10":
		cls, fn = perfmodel.OpTrans, math.Log10
	case "sin":
		cls, fn = perfmodel.OpTrans, math.Sin
	case "cos":
		cls, fn = perfmodel.OpTrans, math.Cos
	case "tan":
		cls, fn = perfmodel.OpTrans, math.Tan
	case "asin":
		cls, fn = perfmodel.OpTrans, math.Asin
	case "acos":
		cls, fn = perfmodel.OpTrans, math.Acos
	case "atan":
		cls, fn = perfmodel.OpTrans, math.Atan
	case "sinh":
		cls, fn = perfmodel.OpTrans, math.Sinh
	case "cosh":
		cls, fn = perfmodel.OpTrans, math.Cosh
	case "tanh":
		cls, fn = perfmodel.OpTrans, math.Tanh
	case "aint":
		cls, fn = perfmodel.OpSimple, math.Trunc
	case "anint":
		cls, fn = perfmodel.OpSimple, math.Round
	default:
		return nil
	}
	a0 := c.realExpr(e.Args[0])
	if a0 == nil {
		return nil
	}
	kk := e.Typ.Kind
	cost := c.cost(cls, kk)
	if c.rec == nil {
		return func(m *vm, fr *vframe) (float64, float64, error) {
			x, _, err := a0(m, fr)
			if err != nil {
				return 0, 0, err
			}
			m.charge(cost)
			f := convertReal(fn(x), kk)
			return f, f, nil
		}
	}
	name := e.Intrinsic
	rs := c.rsite(e.Pos.Line)
	return func(m *vm, fr *vframe) (float64, float64, error) {
		x, xs, err := a0(m, fr)
		if err != nil {
			return 0, 0, err
		}
		m.charge(cost)
		r := fn(x)
		f := convertReal(r, kk)
		// Same pure function on the same input: the shadow call is only
		// paid when the lanes have actually diverged.
		sh := r
		if xs != x {
			sh = fn(xs)
		}
		rs.intrinsic(m, name, x, f, r, sh)
		return f, sh, nil
	}
}

// realAssignVar compiles `realvar = <vreals>` — the hot-loop statement
// shape — without boxing. Mirrors assign()'s VarRef case exactly.
func (c *compiler) realAssignVar(s *ft.AssignStmt, d *ft.VarDecl, name string, rv vreals, chConv func(m *vm), atom string) vstmt {
	pos := s.Pos
	kind := d.Kind
	slot := d.Slot
	local := d.Proc != nil
	var mi int
	if !local {
		mi = d.InMod.Index
	}
	if c.rec == nil {
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			f, _, err := rv(m, fr)
			if err != nil {
				return ctlNone, err
			}
			if chConv != nil {
				chConv(m)
			}
			fs := convertReal(f, kind)
			if m.trap && nonFinite(fs) {
				return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: "assigning non-finite value to " + name}
			}
			if local {
				fr.f[slot] = fs
			} else {
				m.gl[mi].f[slot] = fs
			}
			return ctlNone, nil
		}
	}
	as := c.asite(pos.Line, atom)
	return func(m *vm, fr *vframe) (control, error) {
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		m.rec.PushTarget(atom)
		f, sh, err := rv(m, fr)
		if err != nil {
			m.rec.PopTarget()
			return ctlNone, err
		}
		if chConv != nil {
			chConv(m)
		}
		fs := convertReal(f, kind)
		as.assign(m, fs, sh, f)
		if m.trap && nonFinite(fs) {
			m.rec.PopTarget()
			return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
				Msg: "assigning non-finite value to " + name}
		}
		g := fr
		if !local {
			g = m.gl[mi]
		}
		g.f[slot] = fs
		if g.sh != nil {
			g.sh[slot] = sh
		}
		m.rec.PopTarget()
		return ctlNone, nil
	}
}

// realAssignElem compiles `arr(i, ...) = <vreals>`, mirroring assign()'s
// IndexExpr case.
func (c *compiler) realAssignElem(s *ft.AssignStmt, lhs *ft.IndexExpr, rv vreals, chConv func(m *vm), atom string) vstmt {
	pos := s.Pos
	er := c.elemRef(lhs)
	storeCost := [2]float64{c.cost(perfmodel.OpStore, 4), c.cost(perfmodel.OpStore, 8)}
	arrName := lhs.Arr.Name
	if c.rec == nil {
		return func(m *vm, fr *vframe) (control, error) {
			if err := m.checkBudget(pos); err != nil {
				return ctlNone, err
			}
			f, _, err := rv(m, fr)
			if err != nil {
				return ctlNone, err
			}
			if chConv != nil {
				chConv(m)
			}
			arr, off, err := er.resolve(m, fr)
			if err != nil {
				return ctlNone, err
			}
			m.chargeMem(storeCost[kindIdx(arr.Kind)])
			fs := convertReal(f, arr.Kind)
			if m.trap && nonFinite(fs) {
				return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
					Msg: "assigning non-finite value to " + arrName + "(...)"}
			}
			arr.Data[off] = fs
			return ctlNone, nil
		}
	}
	as := c.asite(pos.Line, atom)
	return func(m *vm, fr *vframe) (control, error) {
		if err := m.checkBudget(pos); err != nil {
			return ctlNone, err
		}
		m.rec.PushTarget(atom)
		f, sh, err := rv(m, fr)
		if err != nil {
			m.rec.PopTarget()
			return ctlNone, err
		}
		if chConv != nil {
			chConv(m)
		}
		arr, off, err := er.resolve(m, fr)
		if err != nil {
			m.rec.PopTarget()
			return ctlNone, err
		}
		m.chargeMem(storeCost[kindIdx(arr.Kind)])
		fs := convertReal(f, arr.Kind)
		as.assign(m, fs, sh, f)
		if m.trap && nonFinite(fs) {
			m.rec.PopTarget()
			return ctlNone, &RunError{Pos: pos, Kind: FailNonFinite,
				Msg: "assigning non-finite value to " + arrName + "(...)"}
		}
		arr.Data[off] = fs
		if arr.Shadow != nil {
			arr.Shadow[off] = sh
		}
		m.rec.PopTarget()
		return ctlNone, nil
	}
}
