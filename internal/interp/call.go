package interp

import (
	"fmt"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// lvalue is a resolved assignment destination used for scalar copy-out
// after a call.
type lvalue struct {
	scalar *ft.VarDecl // non-nil for scalar variables
	fr     *frame
	arr    *Array // non-nil for array elements
	off    int
}

func (i *Interp) storeLvalue(lv lvalue, v Value, pos ft.Pos) error {
	if lv.scalar != nil {
		t := lv.scalar.Type()
		out := convertScalar(v, t)
		if i.cfg.TrapNonFinite && out.Base == ft.TReal && nonFinite(out.F) {
			return &RunError{Pos: pos, Kind: FailNonFinite,
				Msg: fmt.Sprintf("non-finite value returned into %s", lv.scalar.Name)}
		}
		i.storeScalar(lv.fr, lv.scalar, out)
		return nil
	}
	f := convertReal(v.asFloat(), lv.arr.Kind)
	if i.cfg.TrapNonFinite && nonFinite(f) {
		return &RunError{Pos: pos, Kind: FailNonFinite,
			Msg: "non-finite value returned into array element"}
	}
	lv.arr.Data[lv.off] = f
	if lv.arr.Shadow != nil {
		lv.arr.Shadow[lv.off] = v.sh()
	}
	return nil
}

// execCall runs a subroutine call statement.
func (i *Interp) execCall(fr *frame, s *ft.CallStmt) error {
	if s.Intrinsic != "" {
		return i.execIntrinsicSub(fr, s)
	}
	if s.Proc == nil {
		return &RunError{Pos: s.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unresolved call to %q", s.Name)}
	}
	_, err := i.invoke(fr, s.Proc, s.Args, s.Pos)
	return err
}

// callFunction evaluates a user function call expression.
func (i *Interp) callFunction(fr *frame, e *ft.CallExpr) (Value, error) {
	if e.Proc == nil {
		return Value{}, &RunError{Pos: e.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unresolved function %q", e.Name)}
	}
	return i.invoke(fr, e.Proc, e.Args, e.Pos)
}

// invoke runs a user procedure with Fortran argument semantics: arrays
// by reference, scalars by copy-in/copy-out. Inlined callees skip call
// overhead; all callees are still attributed their own GPTL region.
func (i *Interp) invoke(fr *frame, proc *ft.Procedure, args []ft.Expr, pos ft.Pos) (Value, error) {
	if i.depth >= i.cfg.MaxDepth {
		return Value{}, &RunError{Pos: pos, Kind: FailInternal,
			Msg: fmt.Sprintf("call stack exceeds %d frames", i.cfg.MaxDepth)}
	}
	inlined := i.an.Inlinable[proc]
	if !inlined {
		i.op(perfmodel.OpBranch, 4)
		i.cycles += i.model.CallCycles * i.vecFactor
	}

	callee := &frame{proc: proc, slots: make([]Value, proc.NumSlots)}

	// Phase 1: bind arguments.
	var copyOuts []struct {
		lv    lvalue
		dummy *ft.VarDecl
	}
	for ai, argExpr := range args {
		dummy := proc.ParamDecl[ai]
		if dummy == nil {
			return Value{}, &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("%s: missing dummy decl", proc.QName())}
		}
		if dummy.IsArray() {
			av, err := i.evalArgArray(fr, argExpr, dummy, pos)
			if err != nil {
				return Value{}, err
			}
			callee.slots[dummy.Slot] = av
			continue
		}
		v, err := i.evalExpr(fr, argExpr)
		if err != nil {
			return Value{}, err
		}
		if dummy.Base == ft.TReal && v.Base == ft.TReal && v.Kind != dummy.Kind && !isLiteral(argExpr) {
			// Post-wrapper programs never reach here with a mismatch; it
			// is still priced correctly for raw (pre-transform) programs.
			i.cast(1)
		}
		callee.slots[dummy.Slot] = convertScalar(v, dummy.Type())
		if dummy.Intent != ft.IntentIn {
			if lv, ok := i.resolveLvalue(fr, argExpr); ok {
				copyOuts = append(copyOuts, struct {
					lv    lvalue
					dummy *ft.VarDecl
				}{lv, dummy})
			} else if dummy.Intent == ft.IntentOut || dummy.Intent == ft.IntentInOut {
				return Value{}, &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
					Msg: fmt.Sprintf("intent(%s) argument is not a variable", dummy.Intent)}
			}
		}
	}

	// Phase 2: initialize non-argument locals (may use argument values).
	for _, d := range proc.Decls {
		if d.IsArg {
			continue
		}
		v, err := i.initDecl(callee, d)
		if err != nil {
			return Value{}, err
		}
		callee.slots[d.Slot] = v
	}

	// Phase 3: execute.
	q := proc.QName()
	if i.timers != nil {
		if !inlined {
			i.cycles += i.model.TimerOverhead
		}
		i.timers.Start(q)
	}
	i.depth++
	i.curProc = append(i.curProc, q)
	_, err := i.execStmts(callee, proc.Body)
	i.curProc = i.curProc[:len(i.curProc)-1]
	i.depth--
	if i.timers != nil {
		// Stop reads the clock before the stop-event overhead is
		// charged (mirroring gptl.Timers.Stop): the instrumentation cost
		// lands in the caller, not inside the measured region.
		if terr := i.timers.Stop(q); terr != nil && err == nil {
			err = &RunError{Pos: pos, Kind: FailInternal, Msg: terr.Error()}
		}
		if !inlined {
			i.cycles += i.model.TimerOverhead
		}
	}
	if err != nil {
		return Value{}, err
	}

	// Phase 4: scalar copy-out.
	for _, co := range copyOuts {
		if err := i.storeLvalue(co.lv, callee.slots[co.dummy.Slot], pos); err != nil {
			return Value{}, err
		}
	}

	if proc.Kind == ft.KFunction {
		if proc.Result == nil {
			return Value{}, &RunError{Pos: pos, Kind: FailInternal,
				Msg: fmt.Sprintf("%s has no result", q)}
		}
		return callee.slots[proc.Result.Slot], nil
	}
	return Value{}, nil
}

// evalArgArray binds an array actual argument to an array dummy,
// by reference. Explicit-shape dummies install a reshaped header over
// the actual's storage (sequence association); assumed-shape dummies
// adopt the actual's bounds.
func (i *Interp) evalArgArray(fr *frame, argExpr ft.Expr, dummy *ft.VarDecl, pos ft.Pos) (Value, error) {
	ref, ok := argExpr.(*ft.VarRef)
	if !ok {
		return Value{}, &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
			Msg: "array argument must be a whole array variable"}
	}
	av := i.loadVar(fr, ref.Decl)
	if av.Arr == nil {
		return Value{}, &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("%q is not an allocated array", ref.Name)}
	}
	if av.Arr.Kind != dummy.Kind {
		// Arrays pass by reference; a kind mismatch cannot be patched by
		// a hidden copy. The wrapper generator must have rewritten this
		// call — reaching here means the variant is malformed.
		return Value{}, &RunError{Pos: argExpr.ExprPos(), Kind: FailInternal,
			Msg: fmt.Sprintf("array kind mismatch passing %s (kind=%d) to %s.%s (kind=%d): wrapper required",
				ref.Name, av.Arr.Kind, dummy.Proc.QName(), dummy.Name, dummy.Kind)}
	}

	assumed := true
	for _, d := range dummy.Dims {
		if !d.Assumed {
			assumed = false
		}
	}
	if assumed {
		if len(dummy.Dims) != len(av.Arr.Ext) {
			return Value{}, &RunError{Pos: argExpr.ExprPos(), Kind: FailBounds,
				Msg: fmt.Sprintf("rank mismatch passing %s", ref.Name)}
		}
		// Assumed-shape dummies have lower bounds of 1 regardless of the
		// actual's declared bounds (Fortran semantics). Install a
		// rebased header over the same storage when needed.
		rebase := false
		for _, lo := range av.Arr.Lo {
			if lo != 1 {
				rebase = true
			}
		}
		if rebase {
			ones := make([]int, len(av.Arr.Ext))
			for k := range ones {
				ones[k] = 1
			}
			av = Value{Base: av.Base, Kind: av.Kind, Arr: &Array{
				Kind: av.Arr.Kind, Lo: ones, Ext: av.Arr.Ext,
				Data: av.Arr.Data, Shadow: av.Arr.Shadow,
			}}
		}
		return av, nil
	}

	// Explicit-shape dummy: evaluate its declared bounds in the callee
	// frame (they may reference earlier scalar dummies, which are
	// already bound because declarations precede use in our models'
	// argument order — sema guarantees the names resolve).
	return av, nil
}

// resolveLvalue resolves an expression to a storable location if it is
// one (variable or array element).
func (i *Interp) resolveLvalue(fr *frame, e ft.Expr) (lvalue, bool) {
	switch e := e.(type) {
	case *ft.VarRef:
		if e.Decl == nil || e.Decl.IsParam {
			return lvalue{}, false
		}
		return lvalue{scalar: e.Decl, fr: fr}, true
	case *ft.IndexExpr:
		arr, off, err := i.elementRef(fr, e)
		if err != nil {
			return lvalue{}, false
		}
		return lvalue{arr: arr, off: off}, true
	default:
		return lvalue{}, false
	}
}

// execIntrinsicSub executes an intrinsic subroutine (the MPI model).
func (i *Interp) execIntrinsicSub(fr *frame, s *ft.CallStmt) error {
	switch s.Intrinsic {
	case "mpi_allreduce_sum", "mpi_allreduce_max":
		// Numerically the identity (the simulation is the full global
		// domain on one logical rank) but priced as a full collective:
		// latency plus log2(ranks) hops, never vectorized.
		if _, err := i.evalExpr(fr, s.Args[0]); err != nil {
			return err
		}
		i.cycles += i.model.AllreduceCost()
		return nil
	default:
		return &RunError{Pos: s.Pos, Kind: FailInternal,
			Msg: fmt.Sprintf("unknown intrinsic subroutine %q", s.Intrinsic)}
	}
}
