package interp

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/perfmodel"
)

// run parses, analyzes, and executes src, returning the interpreter for
// global inspection, the result, and any run error.
func run(t *testing.T, src string, cfg Config) (*Interp, *Result, error) {
	t.Helper()
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if cfg.Model == nil {
		cfg.Model = perfmodel.Default()
	}
	in, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := in.Run()
	return in, res, err
}

func mustRun(t *testing.T, src string) (*Interp, *Result) {
	t.Helper()
	in, res, err := run(t, src, Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, res
}

func globalF(t *testing.T, in *Interp, q string) float64 {
	t.Helper()
	v, ok := in.GlobalFloat(q)
	if !ok {
		t.Fatalf("global %s not found", q)
	}
	return v
}

const outMod = `
module out
  implicit none
  real(kind=8) :: r8
  real(kind=4) :: r4
  integer :: n
  logical :: flag
end module out
`

func TestArithmeticKinds(t *testing.T) {
	// 0.1 is inexact; accumulating it 10 times differs between f32 and
	// f64. The interpreter must genuinely compute in each precision.
	src := outMod + `
program p
  use out
  implicit none
  real(kind=8) :: a8, inc8
  real(kind=4) :: a4, inc4
  integer :: i
  inc8 = 0.1d0
  inc4 = 0.1
  a8 = 0.0d0
  a4 = 0.0
  do i = 1, 10
    a8 = a8 + inc8
    a4 = a4 + inc4
  end do
  r8 = a8
  r4 = a4
end program p
`
	in, _ := mustRun(t, src)
	got8 := globalF(t, in, "out.r8")
	got4 := globalF(t, in, "out.r4")

	// Reference computed in Go.
	var w8 float64
	var w4 float32
	for i := 0; i < 10; i++ {
		w8 += 0.1
		w4 += float32(0.1)
	}
	if got8 != w8 {
		t.Errorf("f64 accumulation: got %.17g, want %.17g", got8, w8)
	}
	if got4 != float64(w4) {
		t.Errorf("f32 accumulation: got %.17g, want %.17g", got4, float64(w4))
	}
	if got4 == got8 {
		t.Error("f32 and f64 accumulations coincide; rounding not modeled")
	}
}

func TestKind4StorageRounds(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  real(kind=8) :: x
  x = 1.0000000001d0
  r4 = x
  r8 = r4
end program p
`
	in, res := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != float64(float32(1.0000000001)) {
		t.Errorf("store to kind-4 did not round: %.17g", got)
	}
	if res.Casts != 2 {
		t.Errorf("expected exactly 2 casts (8->4 and 4->8), got %d", res.Casts)
	}
}

func TestLiteralConversionIsFree(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  r4 = 1.5d0
  r8 = 2.5
end program p
`
	_, res := mustRun(t, src)
	if res.Casts != 0 {
		t.Errorf("literal kind conversions should be folded, got %d casts", res.Casts)
	}
}

func TestMixedExpressionPromotes(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  real(kind=4) :: x
  x = 0.1
  r8 = x * 2.0d0
end program p
`
	in, res := mustRun(t, src)
	want := float64(float32(0.1)) * 2.0
	if got := globalF(t, in, "out.r8"); got != want {
		t.Errorf("promotion: got %.17g, want %.17g", got, want)
	}
	if res.Casts != 1 {
		t.Errorf("expected exactly 1 cast for the kind-4 operand, got %d", res.Casts)
	}
}

func TestIntegerOps(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  integer :: a, b
  a = 7
  b = 2
  n = a / b * 10 + mod(a, b) - (-a)**2
end program p
`
	in, _ := mustRun(t, src)
	want := float64(7/2*10 + 7%2 - 49)
	if got := globalF(t, in, "out.n"); got != want {
		t.Errorf("integer expr: got %g, want %g", got, want)
	}
}

func TestArrays2D(t *testing.T) {
	src := outMod + `
module grid
  implicit none
  real(kind=8) :: a(0:3, 2)
end module grid
program p
  use out
  use grid
  implicit none
  integer :: i, j
  do j = 1, 2
    do i = 0, 3
      a(i, j) = real(i, 8) + 10.0d0 * real(j, 8)
    end do
  end do
  r8 = a(3, 2) + a(0, 1)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != 33 {
		t.Errorf("2-D array: got %g, want 33", got)
	}
}

func TestArrayBoundsError(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: a(4)
  integer :: i
  i = 5
  a(i) = 1.0d0
end program p
`
	_, _, err := run(t, src, Config{})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailBounds {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestSubroutineByRefArraysAndCopyOut(t *testing.T) {
	src := outMod + `
module m
  implicit none
contains
  subroutine fill(v, x, count)
    real(kind=8), intent(inout) :: v(:)
    real(kind=8), intent(in) :: x
    integer, intent(out) :: count
    integer :: i
    do i = 1, size(v)
      v(i) = x * real(i, 8)
    end do
    count = size(v)
  end subroutine fill
end module m
program p
  use out
  use m
  implicit none
  real(kind=8) :: data(6)
  integer :: c
  c = 0
  call fill(data, 2.0d0, c)
  n = c
  r8 = data(6)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.n"); got != 6 {
		t.Errorf("intent(out) copy-out: got %g, want 6", got)
	}
	if got := globalF(t, in, "out.r8"); got != 12 {
		t.Errorf("by-ref array write: got %g, want 12", got)
	}
}

func TestFunctionResultAndRecursion(t *testing.T) {
	src := outMod + `
module m
  implicit none
contains
  function fact(k) result(f)
    integer :: k
    real(kind=8) :: f
    if (k <= 1) then
      f = 1.0d0
    else
      f = real(k, 8) * fact(k - 1)
    end if
  end function fact
end module m
program p
  use out
  use m
  implicit none
  r8 = fact(6)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != 720 {
		t.Errorf("recursion: got %g, want 720", got)
	}
}

func TestTrapNonFinite(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: x, zero
  zero = 0.0d0
  x = 1.0d0 / zero
end program p
`
	_, _, err := run(t, src, Config{TrapNonFinite: true})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailNonFinite {
		t.Fatalf("want non-finite trap, got %v", err)
	}
	// Without the trap the run completes.
	if _, _, err := run(t, src, Config{}); err != nil {
		t.Fatalf("untrapped run failed: %v", err)
	}
}

func TestOverflowInKind4Traps(t *testing.T) {
	// 1e30 squared overflows float32 but not float64: the variant-style
	// failure mode of lowering a variable that holds large magnitudes.
	src := `
program p
  implicit none
  real(kind=4) :: x
  x = 1.0e30
  x = x * x
end program p
`
	_, _, err := run(t, src, Config{TrapNonFinite: true})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailNonFinite {
		t.Fatalf("want overflow trap, got %v", err)
	}
}

func TestCycleBudgetTimeout(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: s
  s = 1.0d0
  do while (s > 0.0d0)
    s = s + 1.0d0
  end do
end program p
`
	_, _, err := run(t, src, Config{CycleBudget: 10000})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestStopIsError(t *testing.T) {
	src := "program p\nimplicit none\nstop 3\nend program p"
	_, _, err := run(t, src, Config{})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailStop {
		t.Fatalf("want stop error, got %v", err)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
program p
  implicit none
  integer :: i
  i = 42
  print *, 'value', i
end program p
`
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	var buf bytes.Buffer
	in, err := New(prog, Config{Model: perfmodel.Default(), Stdout: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "value 42\n" {
		t.Errorf("print output %q", got)
	}
}

func TestIntrinsics(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  real(kind=8) :: v(4)
  integer :: i
  do i = 1, 4
    v(i) = real(i, 8)
  end do
  r8 = abs(-3.0d0) + sqrt(16.0d0) + max(1.0d0, 2.0d0, 0.5d0) &
     + min(5.0d0, 4.0d0) + sign(2.0d0, -1.0d0) + sum(v) + maxval(v) &
     + minval(v) + dot_product(v, v) + atan2(0.0d0, 1.0d0) &
     + mod(7.5d0, 2.0d0) + aint(2.7d0) + anint(2.7d0)
  n = int(3.9d0) + nint(3.9d0) + floor(-1.5d0) + size(v)
end program p
`
	in, _ := mustRun(t, src)
	want := 3.0 + 4 + 2 + 4 - 2 + 10 + 4 + 1 + 30 + 0 + 1.5 + 2 + 3
	if got := globalF(t, in, "out.r8"); math.Abs(got-want) > 1e-12 {
		t.Errorf("intrinsics: got %g, want %g", got, want)
	}
	if got := globalF(t, in, "out.n"); got != float64(3+4-2+4) {
		t.Errorf("integer intrinsics: got %g, want %d", got, 3+4-2+4)
	}
}

func TestEpsilonHugeTinyByKind(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  real(kind=4) :: s4
  real(kind=8) :: s8
  s4 = 0.0
  s8 = 0.0d0
  r8 = epsilon(s8)
  r4 = epsilon(s4)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != math.Nextafter(1, 2)-1 {
		t.Errorf("epsilon(8): %g", got)
	}
	if got := globalF(t, in, "out.r4"); float32(got) != math.Nextafter32(1, 2)-1 {
		t.Errorf("epsilon(4): %g", got)
	}
}

func TestAllreduceIdentityAndCost(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  r8 = 5.0d0
  call mpi_allreduce_sum(r8)
end program p
`
	in, res := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != 5 {
		t.Errorf("allreduce changed value: %g", got)
	}
	m := perfmodel.Default()
	if res.Cycles < m.AllreduceCost() {
		t.Errorf("allreduce cost not charged: %g < %g", res.Cycles, m.AllreduceCost())
	}
}

// TestVectorizationPricing checks the cost mechanism at the heart of the
// reproduction: an all-kind-4 vectorizable loop must run ~2x faster than
// the same loop in kind-8, and a mixed-kind loop must be slower than
// uniform kind-8.
func TestVectorizationPricing(t *testing.T) {
	tmpl := func(decls, body string) string {
		return `
module k
  implicit none
  integer, parameter :: n = 10000
  ` + decls + `
contains
  subroutine kernel()
    integer :: i
    do i = 1, n
      ` + body + `
    end do
  end subroutine kernel
end module k
program p
  use k
  implicit none
  call kernel()
end program p
`
	}
	cost := func(src string) float64 {
		_, res := mustRun(t, src)
		return res.Cycles
	}
	c64 := cost(tmpl("real(kind=8) :: a(n), b(n)", "a(i) = a(i) * 1.5d0 + b(i)"))
	c32 := cost(tmpl("real(kind=4) :: a(n), b(n)", "a(i) = a(i) * 1.5 + b(i)"))
	cMix := cost(tmpl("real(kind=8) :: a(n)\n  real(kind=4) :: b(n)", "a(i) = a(i) * 1.5d0 + b(i)"))
	if ratio := c64 / c32; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("kind-4 loop speedup = %.2f, want ~2x", ratio)
	}
	if cMix <= c64 {
		t.Errorf("mixed loop (%.0f) should cost more than uniform 64-bit (%.0f)", cMix, c64)
	}
}

// TestRecurrenceBlocksVectorSpeedup checks that a loop-carried dependence
// removes the 32-bit advantage (the paper's pjac mechanism).
func TestRecurrenceBlocksVectorSpeedup(t *testing.T) {
	tmpl := func(kind, lit string) string {
		return `
module k
  implicit none
  integer, parameter :: n = 10000
  real(kind=` + kind + `) :: a(n)
contains
  subroutine kernel()
    integer :: i
    do i = 2, n
      a(i) = a(i-1) * ` + lit + ` + a(i)
    end do
  end subroutine kernel
end module k
program p
  use k
  implicit none
  call kernel()
end program p
`
	}
	_, res64 := mustRun(t, tmpl("8", "0.5d0"))
	_, res32 := mustRun(t, tmpl("4", "0.5"))
	ratio := res64.Cycles / res32.Cycles
	// Scalar loops: the 32-bit gain comes only from cheaper loads, so
	// the ratio must be far below the 2x vector gain.
	if ratio > 1.45 {
		t.Errorf("recurrence loop still speeds up %.2fx in 32-bit; vectorization not blocked", ratio)
	}
}

func TestProfilingRegions(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 1000
  real(kind=8) :: a(n)
contains
  subroutine heavy()
    integer :: i
    do i = 1, n
      a(i) = sqrt(real(i, 8))
    end do
  end subroutine heavy
  subroutine light()
    a(1) = 0.0d0
  end subroutine light
end module m
program p
  use m
  implicit none
  integer :: k
  do k = 1, 3
    call heavy()
  end do
  call light()
end program p
`
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	in, err := New(prog, Config{Model: perfmodel.Default(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	heavy := res.Timers.Region("m.heavy")
	light := res.Timers.Region("m.light")
	if heavy == nil || light == nil {
		t.Fatal("regions missing")
	}
	if heavy.Calls != 3 || light.Calls != 1 {
		t.Errorf("calls: heavy=%d light=%d", heavy.Calls, light.Calls)
	}
	if heavy.Self <= light.Self {
		t.Errorf("heavy (%.0f) should outweigh light (%.0f)", heavy.Self, light.Self)
	}
}

func TestProfilingOverheadSmall(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 400
  real(kind=8) :: a(n)
contains
  subroutine kern()
    integer :: i
    do i = 1, n
      a(i) = a(i) + 1.0d0
    end do
  end subroutine kern
end module m
program p
  use m
  implicit none
  integer :: k
  do k = 1, 200
    call kern()
  end do
end program p
`
	_, plain := mustRun(t, src)
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	in, _ := New(prog, Config{Model: perfmodel.Default(), Profile: true})
	profiled, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	overhead := (profiled.Cycles - plain.Cycles) / plain.Cycles * 100
	if overhead <= 0 || overhead > 7 {
		t.Errorf("profiling overhead %.2f%%, want within (0, 7%%] as in the paper", overhead)
	}
}

func TestCastAttributionPerProc(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8) :: src8(1000)
  real(kind=4) :: dst4(1000)
contains
  subroutine convert()
    dst4 = src8
  end subroutine convert
end module m
program p
  use m
  implicit none
  call convert()
end program p
`
	_, res := mustRun(t, src)
	if res.Casts != 1000 {
		t.Errorf("casts = %d, want 1000", res.Casts)
	}
	if res.ProcCastCycles["m.convert"] <= 0 {
		t.Errorf("cast cycles not attributed to m.convert: %v", res.ProcCastCycles)
	}
	if res.CastCycles <= 0 || res.CastCycles > res.Cycles {
		t.Errorf("cast cycles %g out of range (total %g)", res.CastCycles, res.Cycles)
	}
}

func TestInlinedCallCheaper(t *testing.T) {
	// flux is small and uniform: calls to it should cost far less than
	// calls to a structurally identical non-inlinable procedure.
	tmpl := func(extra string) string {
		return `
module m
  implicit none
  integer, parameter :: n = 5000
  real(kind=8) :: a(n)
contains
  function flux(x) result(f)
    real(kind=8) :: x, f
    ` + extra + `
    f = 0.5d0 * x * x
  end function flux
  subroutine drive()
    integer :: i
    do i = 1, n
      a(i) = flux(a(i))
    end do
  end subroutine drive
end module m
program p
  use m
  implicit none
  call drive()
end program p
`
	}
	_, inlined := mustRun(t, tmpl(""))
	// A do-loop in the body defeats inlining.
	_, outlined := mustRun(t, tmpl("integer :: q\ndo q = 1, 1\nf = 0.0d0\nend do"))
	if outlined.Cycles < inlined.Cycles*1.5 {
		t.Errorf("non-inlinable callee should be much slower: inlined=%.0f outlined=%.0f",
			inlined.Cycles, outlined.Cycles)
	}
}

func TestDoLoopStepAndNegative(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  integer :: i, s
  s = 0
  do i = 10, 1, -2
    s = s + i
  end do
  n = s
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.n"); got != float64(10+8+6+4+2) {
		t.Errorf("negative step loop: got %g", got)
	}
}

func TestZeroTripLoop(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  integer :: i
  n = 0
  do i = 5, 1
    n = n + 1
  end do
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.n"); got != 0 {
		t.Errorf("zero-trip loop executed %g times", got)
	}
}

func TestGlobalAccessors(t *testing.T) {
	src := `
module g
  implicit none
  real(kind=8) :: series(3)
  real(kind=8) :: scalar
end module g
program p
  use g
  implicit none
  series(1) = 1.0d0
  series(2) = 2.0d0
  series(3) = 3.0d0
  scalar = 9.0d0
end program p
`
	in, _ := mustRun(t, src)
	fs, ok := in.GlobalFloats("g.series")
	if !ok || len(fs) != 3 || fs[2] != 3 {
		t.Errorf("GlobalFloats: %v %v", fs, ok)
	}
	if v, ok := in.GlobalFloat("g.scalar"); !ok || v != 9 {
		t.Errorf("GlobalFloat: %v %v", v, ok)
	}
	if _, ok := in.Global("g.nope"); ok {
		t.Error("Global found a nonexistent name")
	}
	if _, ok := in.GlobalFloat("g.series"); ok {
		t.Error("GlobalFloat should refuse arrays")
	}
}

func TestWhileLoopConvergence(t *testing.T) {
	// Newton iteration for sqrt(2) with a *residual* stopping criterion:
	// in f64 the residual reaches 1e-12; in f32 it plateaus around 1e-7,
	// so the loop runs to its iteration cap — the MOM6 flux_adjust
	// slow-convergence mechanism.
	tmpl := func(kind, one, half, tol string) string {
		return outMod + `
program p
  use out
  implicit none
  real(kind=` + kind + `) :: x
  integer :: iters
  x = ` + one + `
  iters = 0
  do while (abs(x * x - 2.0) > ` + tol + ` .and. iters < 200)
    x = ` + half + ` * (x + 2.0 / x)
    iters = iters + 1
  end do
  n = iters
  r8 = x
end program p
`
	}
	in64, _ := mustRun(t, tmpl("8", "1.0d0", "0.5d0", "1.0d-12"))
	in32, _ := mustRun(t, tmpl("4", "1.0", "0.5", "1.0e-12"))
	it64 := globalF(t, in64, "out.n")
	it32 := globalF(t, in32, "out.n")
	if it64 > 10 {
		t.Errorf("f64 Newton took %g iterations", it64)
	}
	if it32 < 150 {
		t.Errorf("f32 Newton with f64-level tolerance should stall near the cap, took %g", it32)
	}
	if got := globalF(t, in64, "out.r8"); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("Newton result %g", got)
	}
}

func TestExitCycleReturn(t *testing.T) {
	src := outMod + `
module m
  implicit none
contains
  function f() result(r)
    integer :: r, i
    r = 0
    do i = 1, 100
      if (i == 3) cycle
      if (i == 6) exit
      r = r + i
    end do
    if (r > 0) return
    r = -1
  end function f
end module m
program p
  use out
  use m
  implicit none
  n = f()
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.n"); got != float64(1+2+4+5) {
		t.Errorf("exit/cycle/return: got %g, want 12", got)
	}
}

func TestErrorsSurfaceDeterministically(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: a(10)
  integer :: i
  do i = 1, 20
    a(i) = 1.0d0
  end do
end program p
`
	_, _, err1 := run(t, src, Config{})
	_, _, err2 := run(t, src, Config{})
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Errorf("nondeterministic errors: %v vs %v", err1, err2)
	}
	if !strings.Contains(err1.Error(), "out of bounds") {
		t.Errorf("error text: %v", err1)
	}
}

func TestDeterministicCycles(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 2000
  real(kind=8) :: a(n)
contains
  subroutine work()
    integer :: i
    do i = 1, n
      a(i) = sin(real(i, 8)) * sqrt(real(i, 8))
    end do
  end subroutine work
end module m
program p
  use m
  implicit none
  call work()
end program p
`
	_, r1 := mustRun(t, src)
	_, r2 := mustRun(t, src)
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ across runs: %g vs %g", r1.Cycles, r2.Cycles)
	}
	if r1.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	prog := ft.MustParse("program p\nimplicit none\nend program p")
	if _, err := New(prog, Config{}); err == nil {
		t.Error("nil machine model accepted")
	}
	if _, err := New(prog, Config{Model: perfmodel.Default()}); err == nil {
		t.Error("unanalyzed program accepted")
	}
	mod := ft.MustParse("module m\nimplicit none\nend module m")
	ft.MustAnalyze(mod, ft.Options{})
	if _, err := New(mod, Config{Model: perfmodel.Default()}); err == nil {
		t.Error("program without main accepted")
	}
}

func TestMaxDepthGuard(t *testing.T) {
	src := `
module m
  implicit none
contains
  function inf(k) result(r)
    integer :: k
    real(kind=8) :: r
    r = inf(k + 1)
  end function inf
end module m
program p
  use m
  implicit none
  real(kind=8) :: x
  x = inf(0)
end program p
`
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	in, err := New(prog, Config{Model: perfmodel.Default(), MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Run()
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailInternal || !strings.Contains(re.Msg, "call stack") {
		t.Fatalf("unbounded recursion not guarded: %v", err)
	}
}

func TestIntegerDivisionByZero(t *testing.T) {
	src := "program p\nimplicit none\ninteger :: i, z\nz = 0\ni = 4 / z\nend program p"
	_, _, err := run(t, src, Config{})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailNonFinite {
		t.Fatalf("integer division by zero: %v", err)
	}
}

func TestSizeDimIntrinsic(t *testing.T) {
	src := outMod + `
program p
  use out
  implicit none
  real(kind=8) :: a(3, 5)
  n = size(a, 1) * 100 + size(a, 2) * 10 + size(a)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.n"); got != float64(3*100+5*10+15) {
		t.Errorf("size(a,dim): got %g", got)
	}
	bad := outMod + `
program p
  use out
  implicit none
  real(kind=8) :: a(3)
  n = size(a, 2)
end program p
`
	_, _, err := run(t, bad, Config{})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailBounds {
		t.Fatalf("size dim out of range: %v", err)
	}
}

func TestAssumedShapeRebasing(t *testing.T) {
	// A 0-based actual must appear 1-based inside an assumed-shape dummy.
	src := outMod + `
module m
  implicit none
contains
  function first(v) result(r)
    real(kind=8), intent(in) :: v(:)
    real(kind=8) :: r
    r = v(1) + real(size(v), 8)
  end function first
end module m
program p
  use out
  use m
  implicit none
  real(kind=8) :: zb(0:4)
  zb(0) = 7.0d0
  r8 = first(zb)
end program p
`
	in, _ := mustRun(t, src)
	if got := globalF(t, in, "out.r8"); got != 12 { // v(1)=zb(0)=7 plus size 5
		t.Errorf("assumed-shape rebase: got %g, want 12", got)
	}
}
