package fortran

import (
	"strings"
	"testing"
)

// TestPrintRoundTrip checks the core printer property: printing a parsed
// program and re-parsing the output yields a program that prints
// identically (a fixed point after one round).
func TestPrintRoundTrip(t *testing.T) {
	sources := []string{miniModule, `
module m
  implicit none
  real(kind=8), parameter :: pi = 3.141592653589793d0
  real(kind=4) :: grid(0:127, 4)
contains
  subroutine step(u, n)
    real(kind=4), intent(inout) :: u(:)
    integer, intent(in) :: n
    integer :: i
    real(kind=4) :: t
!dir$ novector
    do i = 2, n
      u(i) = u(i) + u(i-1) * 0.5
    end do
    t = 0.0
    do while (t < 1.0)
      t = t + 0.25
      if (t > 0.7) then
        exit
      else if (t > 0.5) then
        cycle
      else
        t = t + mod(t, 0.125)
      end if
    end do
    if (t /= t) stop 1
    print *, 'done', t
  end subroutine step
end module m
`}
	for i, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		out1 := Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("case %d reparse printed source: %v\n%s", i, err, out1)
		}
		out2 := Print(p2)
		if out1 != out2 {
			t.Errorf("case %d print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", i, out1, out2)
		}
	}
}

// TestPrintPreservesSemantics re-analyzes the printed form and checks the
// structure (procedures, declarations, kinds) is preserved.
func TestPrintPreservesSemantics(t *testing.T) {
	p1 := MustParse(miniModule)
	MustAnalyze(p1, Options{})
	p2, err := Parse(Print(p1))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if _, err := Analyze(p2, Options{}); err != nil {
		t.Fatalf("reanalyze: %v", err)
	}
	d1 := RealDecls(p1)
	d2 := RealDecls(p2)
	if len(d1) != len(d2) {
		t.Fatalf("decl count changed: %d -> %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].QName() != d2[i].QName() || d1[i].Kind != d2[i].Kind {
			t.Errorf("decl %d: %s kind=%d -> %s kind=%d",
				i, d1[i].QName(), d1[i].Kind, d2[i].QName(), d2[i].Kind)
		}
	}
}

func TestExprStringParenthesization(t *testing.T) {
	cases := []string{
		"a - (b - c)",
		"(a + b) * c",
		"a / (b * c)",
		"-(a * b)",
		"a**(b + 1)",
		"(a**b)**c",
		".not. (x .and. y)",
		"a < b .and. c > d",
	}
	for _, want := range cases {
		src := "program p\nimplicit none\nreal(kind=8) :: a, b, c, r\nlogical :: x, y, l\n"
		if strings.ContainsAny(want, "<>") || strings.Contains(want, ".and.") || strings.Contains(want, ".not.") {
			src += "l = " + want + "\n"
		} else {
			src += "r = " + want + "\n"
		}
		src += "end program p"
		p1, err := Parse(src)
		if err != nil {
			t.Errorf("%q: parse: %v", want, err)
			continue
		}
		as := p1.Main.Body[0].(*AssignStmt)
		got := ExprString(as.RHS)
		p2, err := Parse(strings.Replace(src, want, got, 1))
		if err != nil {
			t.Errorf("%q printed as %q which does not reparse: %v", want, got, err)
			continue
		}
		got2 := ExprString(p2.Main.Body[0].(*AssignStmt).RHS)
		if got != got2 {
			t.Errorf("%q: print unstable: %q vs %q", want, got, got2)
		}
	}
}

func TestDeclString(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8), parameter :: pi = 3.5d0
  real(kind=4) :: v(10)
contains
  subroutine s(a)
    real(kind=8), intent(inout) :: a(:)
    a(1) = 0.0d0
  end subroutine s
end module m
`
	prog := MustParse(src)
	MustAnalyze(prog, Options{})
	m := prog.Modules[0]
	if got := DeclString(m.Decls[0]); got != "real(kind=8), parameter :: pi = 3.5_8" {
		t.Errorf("pi: %q", got)
	}
	if got := DeclString(m.Decls[1]); got != "real(kind=4) :: v(10)" {
		t.Errorf("v: %q", got)
	}
	if got := DeclString(m.Procs[0].Decls[0]); got != "real(kind=8), intent(inout) :: a(:)" {
		t.Errorf("a: %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p1 := MustParse(miniModule)
	MustAnalyze(p1, Options{})
	p2 := Clone(p1)
	// Mutate the clone's kinds; the original must be untouched.
	for _, d := range RealDecls(p2) {
		d.Kind = 4
	}
	for _, d := range RealDecls(p1) {
		if d.Kind != 8 && d.Name != "defk" {
			t.Fatalf("clone mutation leaked into original: %s kind=%d", d.QName(), d.Kind)
		}
	}
	if _, err := Analyze(p2, Options{AllowKindMismatch: true}); err != nil {
		t.Fatalf("clone analysis: %v", err)
	}
	if Print(p1) == Print(p2) {
		t.Error("kind change not reflected in printed clone")
	}
}

func TestCloneRoundTripPrint(t *testing.T) {
	p1 := MustParse(miniModule)
	MustAnalyze(p1, Options{})
	p2 := Clone(p1)
	if Print(p1) != Print(p2) {
		t.Errorf("clone prints differently:\n%s\n---\n%s", Print(p1), Print(p2))
	}
}

func TestPrintProcOnly(t *testing.T) {
	prog := MustParse(miniModule)
	MustAnalyze(prog, Options{})
	out := PrintProc(prog.ProcMap["phys.fun"])
	if !strings.Contains(out, "function fun(x) result(y)") {
		t.Errorf("PrintProc output:\n%s", out)
	}
	if strings.Contains(out, "subroutine") {
		t.Errorf("PrintProc leaked other procedures:\n%s", out)
	}
}
