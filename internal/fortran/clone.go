package fortran

// Clone returns a deep copy of prog with all semantic annotations
// stripped (the copy must be re-Analyzed). The precision tuner clones the
// baseline AST before applying each precision assignment so that variants
// never share mutable state — variant generation is embarrassingly
// parallel, as in the paper's per-node variant pipeline.
func Clone(prog *Program) *Program {
	out := &Program{}
	for _, m := range prog.Modules {
		out.Modules = append(out.Modules, cloneModule(m))
	}
	if prog.Main != nil {
		out.Main = cloneProc(prog.Main)
	}
	return out
}

func cloneModule(m *Module) *Module {
	out := &Module{Pos: m.Pos, Name: m.Name}
	out.Uses = append([]string(nil), m.Uses...)
	for _, d := range m.Decls {
		out.Decls = append(out.Decls, cloneDecl(d))
	}
	for _, p := range m.Procs {
		out.Procs = append(out.Procs, cloneProc(p))
	}
	return out
}

func cloneProc(p *Procedure) *Procedure {
	out := &Procedure{
		Pos:        p.Pos,
		Kind:       p.Kind,
		Name:       p.Name,
		ResultName: p.ResultName,
		WrapperFor: p.WrapperFor,
	}
	out.Params = append([]string(nil), p.Params...)
	out.Uses = append([]string(nil), p.Uses...)
	for _, d := range p.Decls {
		out.Decls = append(out.Decls, cloneDecl(d))
	}
	out.Body = cloneStmts(p.Body)
	return out
}

func cloneDecl(d *VarDecl) *VarDecl {
	out := &VarDecl{
		Pos: d.Pos, Name: d.Name, Base: d.Base, Kind: d.Kind,
		Intent: d.Intent, IsParam: d.IsParam,
	}
	for _, dim := range d.Dims {
		out.Dims = append(out.Dims, Dim{
			Lo: cloneExpr(dim.Lo), Hi: cloneExpr(dim.Hi), Assumed: dim.Assumed,
		})
	}
	out.Init = cloneExpr(d.Init)
	return out
}

func cloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *AssignStmt:
		return &AssignStmt{Pos: s.Pos, LHS: cloneExpr(s.LHS), RHS: cloneExpr(s.RHS)}
	case *IfStmt:
		return &IfStmt{
			Pos: s.Pos, Cond: cloneExpr(s.Cond),
			Then: cloneStmts(s.Then), Else: cloneStmts(s.Else), ElseIf: s.ElseIf,
		}
	case *DoStmt:
		return &DoStmt{
			Pos: s.Pos, Var: cloneExpr(s.Var).(*VarRef),
			From: cloneExpr(s.From), To: cloneExpr(s.To), Step: cloneExpr(s.Step),
			Body: cloneStmts(s.Body), NoVector: s.NoVector,
		}
	case *DoWhileStmt:
		return &DoWhileStmt{Pos: s.Pos, Cond: cloneExpr(s.Cond), Body: cloneStmts(s.Body)}
	case *CallStmt:
		return &CallStmt{Pos: s.Pos, Name: s.Name, Args: cloneExprs(s.Args)}
	case *ReturnStmt:
		return &ReturnStmt{Pos: s.Pos}
	case *ExitStmt:
		return &ExitStmt{Pos: s.Pos}
	case *CycleStmt:
		return &CycleStmt{Pos: s.Pos}
	case *StopStmt:
		return &StopStmt{Pos: s.Pos, Code: cloneExpr(s.Code)}
	case *PrintStmt:
		return &PrintStmt{Pos: s.Pos, Args: cloneExprs(s.Args)}
	default:
		panic("fortran.Clone: unknown statement")
	}
}

func cloneExprs(list []Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = cloneExpr(e)
	}
	return out
}

func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{Pos: e.Pos, Val: e.Val}
	case *RealLit:
		return &RealLit{Pos: e.Pos, Val: e.Val, Kind: e.Kind}
	case *LogicalLit:
		return &LogicalLit{Pos: e.Pos, Val: e.Val}
	case *StrLit:
		return &StrLit{Pos: e.Pos, Val: e.Val}
	case *VarRef:
		return &VarRef{Pos: e.Pos, Name: e.Name}
	case *UnExpr:
		return &UnExpr{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X)}
	case *BinExpr:
		return &BinExpr{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X), Y: cloneExpr(e.Y)}
	case *ApplyExpr:
		return &ApplyExpr{Pos: e.Pos, Name: e.Name, Args: cloneExprs(e.Args)}
	case *CallExpr:
		// Resolution is stripped: the clone reverts to the ambiguous form
		// and is re-resolved by Analyze.
		return &ApplyExpr{Pos: e.Pos, Name: e.Name, Args: cloneExprs(e.Args)}
	case *IndexExpr:
		return &ApplyExpr{Pos: e.Pos, Name: e.Arr.Name, Args: cloneExprs(e.Indices)}
	default:
		panic("fortran.Clone: unknown expression")
	}
}

// Walk utilities --------------------------------------------------------------

// WalkStmts calls fn for every statement in list, recursively (pre-order).
// If fn returns false, the walk does not descend into that statement.
func WalkStmts(list []Stmt, fn func(Stmt) bool) {
	for _, s := range list {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch s := s.(type) {
	case *IfStmt:
		WalkStmts(s.Then, fn)
		WalkStmts(s.Else, fn)
	case *DoStmt:
		WalkStmts(s.Body, fn)
	case *DoWhileStmt:
		WalkStmts(s.Body, fn)
	}
}

// WalkExprs calls fn for every expression appearing in the statement
// tree, recursively (pre-order). If fn returns false the walk does not
// descend into that expression's children.
func WalkExprs(list []Stmt, fn func(Expr) bool) {
	WalkStmts(list, func(s Stmt) bool {
		switch s := s.(type) {
		case *AssignStmt:
			walkExpr(s.LHS, fn)
			walkExpr(s.RHS, fn)
		case *IfStmt:
			walkExpr(s.Cond, fn)
		case *DoStmt:
			walkExpr(s.Var, fn)
			walkExpr(s.From, fn)
			walkExpr(s.To, fn)
			walkExpr(s.Step, fn)
		case *DoWhileStmt:
			walkExpr(s.Cond, fn)
		case *CallStmt:
			for _, a := range s.Args {
				walkExpr(a, fn)
			}
		case *StopStmt:
			walkExpr(s.Code, fn)
		case *PrintStmt:
			for _, a := range s.Args {
				walkExpr(a, fn)
			}
		}
		return true
	})
}

// WalkExpr walks a single expression tree.
func WalkExpr(e Expr, fn func(Expr) bool) { walkExpr(e, fn) }

func walkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *UnExpr:
		walkExpr(e.X, fn)
	case *BinExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *ApplyExpr:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *CallExpr:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *IndexExpr:
		walkExpr(e.Arr, fn)
		for _, a := range e.Indices {
			walkExpr(a, fn)
		}
	}
}

// RealDecls returns every real variable declaration in prog (module
// variables and procedure locals), in deterministic order. These are the
// search atoms of the precision tuner (§III-A of the paper).
func RealDecls(prog *Program) []*VarDecl {
	var out []*VarDecl
	add := func(decls []*VarDecl) {
		for _, d := range decls {
			if d.Base == TReal && !d.IsParam {
				out = append(out, d)
			}
		}
	}
	for _, m := range prog.Modules {
		add(m.Decls)
		for _, p := range m.Procs {
			add(p.Decls)
		}
	}
	if prog.Main != nil {
		add(prog.Main.Decls)
	}
	return out
}
