package fortran

import (
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, src string, opts Options) (*Program, *Info, error) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := Analyze(prog, opts)
	return prog, info, err
}

func TestAnalyzeResolvesApply(t *testing.T) {
	prog, _, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	adv := prog.ProcMap["phys.advance"]
	if adv == nil {
		t.Fatal("advance not registered")
	}
	var sawIndex, sawCall bool
	WalkExprs(adv.Body, func(e Expr) bool {
		switch e := e.(type) {
		case *IndexExpr:
			sawIndex = true
			if e.Typ.Base != TReal || e.Typ.Kind != 8 {
				t.Errorf("u(i) type = %v", e.Typ)
			}
		case *CallExpr:
			if e.Name == "fun" {
				sawCall = true
				if e.Proc == nil || e.Proc.QName() != "phys.fun" {
					t.Errorf("fun not resolved: %+v", e.Proc)
				}
			}
		case *ApplyExpr:
			t.Errorf("unresolved ApplyExpr %s survives analysis", e.Name)
		}
		return true
	})
	if !sawIndex || !sawCall {
		t.Errorf("sawIndex=%v sawCall=%v", sawIndex, sawCall)
	}
}

func TestAnalyzeSlotAssignment(t *testing.T) {
	prog, _, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adv := prog.ProcMap["phys.advance"]
	if adv.NumSlots != 3 {
		t.Errorf("advance NumSlots = %d, want 3", adv.NumSlots)
	}
	seen := map[int]bool{}
	for _, d := range adv.Decls {
		if seen[d.Slot] {
			t.Errorf("duplicate slot %d", d.Slot)
		}
		seen[d.Slot] = true
		if d.Proc != adv {
			t.Errorf("decl %s Proc not set", d.Name)
		}
	}
	if !adv.ParamDecl[0].IsArg || adv.ParamDecl[0].Name != "u" {
		t.Errorf("param decl: %+v", adv.ParamDecl[0])
	}
}

func TestAnalyzeKindMismatchStrict(t *testing.T) {
	src := `
module m
  implicit none
contains
  function f(x) result(y)
    real(kind=8) :: x, y
    y = x
  end function f
  subroutine caller()
    real(kind=4) :: a, b
    a = 1.0
    b = f(a)
  end subroutine caller
end module m
`
	_, _, err := analyzeSrc(t, src, Options{})
	if err == nil || !strings.Contains(err.Error(), "kind mismatch") {
		t.Fatalf("strict mode should reject kind mismatch, got %v", err)
	}
	prog, _ := Parse(src)
	info, err := Analyze(prog, Options{AllowKindMismatch: true})
	if err != nil {
		t.Fatalf("tolerant mode: %v", err)
	}
	if len(info.Mismatches) != 1 {
		t.Fatalf("got %d mismatches, want 1", len(info.Mismatches))
	}
	m := info.Mismatches[0]
	if m.From != 4 || m.To != 8 || m.IsArray || m.CallExpr == nil {
		t.Errorf("mismatch: %+v", m)
	}
	if m.Caller.Name != "caller" || m.Callee.Name != "f" {
		t.Errorf("mismatch endpoints: %s -> %s", m.Caller.Name, m.Callee.Name)
	}
}

func TestAnalyzeArrayKindMismatch(t *testing.T) {
	src := `
module m
  implicit none
contains
  subroutine kern(v)
    real(kind=4), intent(inout) :: v(:)
    integer :: i
    do i = 1, size(v)
      v(i) = v(i) * 2.0
    end do
  end subroutine kern
  subroutine caller()
    real(kind=8) :: big(100)
    call kern(big)
  end subroutine caller
end module m
`
	prog, _ := Parse(src)
	info, err := Analyze(prog, Options{AllowKindMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Mismatches) != 1 || !info.Mismatches[0].IsArray {
		t.Fatalf("array mismatch not recorded: %+v", info.Mismatches)
	}
	if info.Mismatches[0].From != 8 || info.Mismatches[0].To != 4 {
		t.Errorf("mismatch kinds: %+v", info.Mismatches[0])
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", "program p\nimplicit none\ninteger :: i\ni = j\nend program p", "undefined variable"},
		{"undefined proc", "program p\nimplicit none\ncall nope()\nend program p", "undefined subroutine"},
		{"undefined module", "program p\nuse ghost\nimplicit none\nend program p", "undefined module"},
		{"param assign", "program p\nimplicit none\ninteger, parameter :: n = 1\nn = 2\nend program p", "PARAMETER"},
		{"logical if", "program p\nimplicit none\ninteger :: i\nif (i) then\nend if\nend program p", "must be logical"},
		{"bad do var", "program p\nimplicit none\nreal(kind=8) :: x\ndo x = 1, 2\nend do\nend program p", "scalar integer"},
		{"arg count", "module m\nimplicit none\ncontains\nsubroutine s(a)\ninteger :: a\na = 1\nend subroutine s\nsubroutine t()\ncall s()\nend subroutine t\nend module m", "expects 1 argument"},
		{"rank mismatch", "module m\nimplicit none\ncontains\nsubroutine s(a)\nreal(kind=8) :: a(:)\na(1) = 0.0d0\nend subroutine s\nsubroutine t()\nreal(kind=8) :: x\ncall s(x)\nend subroutine t\nend module m", "rank mismatch"},
		{"array arith", "program p\nimplicit none\nreal(kind=8) :: a(3), b(3)\na = a + b\nend program p", "DO loops"},
		{"dup module", "module m\nimplicit none\nend module m\nmodule m\nimplicit none\nend module m", "duplicate module"},
		{"dup decl", "program p\nimplicit none\ninteger :: i\ninteger :: i\nend program p", "duplicate declaration"},
		{"uninit param", "program p\nimplicit none\nreal(kind=8), parameter :: c\nend program p", "lacks an initializer"},
		{"init non-param", "program p\nimplicit none\nreal(kind=8) :: x = 1.0d0\nend program p", "only PARAMETER"},
		{"undeclared dummy", "module m\nimplicit none\ncontains\nsubroutine s(q)\ninteger :: other\nother = 1\nend subroutine s\nend module m", "not declared"},
		{"int to real arg", "module m\nimplicit none\ncontains\nsubroutine s(a)\nreal(kind=8) :: a\na = 0.0d0\nend subroutine s\nsubroutine t()\ninteger :: i\ni = 1\ncall s(i)\nend subroutine t\nend module m", "cannot pass"},
		{"intent out literal", "module m\nimplicit none\ncontains\nsubroutine s(a)\nreal(kind=8), intent(out) :: a\na = 0.0d0\nend subroutine s\nsubroutine t()\ncall s(1.0d0)\nend subroutine t\nend module m", "must be a variable"},
		{"wrong index count", "program p\nimplicit none\nreal(kind=8) :: a(3,3)\na(1) = 0.0d0\nend program p", "rank 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := analyzeSrc(t, tc.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestAnalyzeIntrinsicTypes(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=4) :: s4, a4(3)
  real(kind=8) :: s8, a8(4)
  integer :: i
  s4 = sqrt(s4)
  s8 = sqrt(s8)
  s8 = dble(s4)
  s4 = real(s8)
  s8 = real(s4, 8)
  i = int(s8)
  i = size(a8)
  s8 = sum(a8)
  s4 = maxval(a4)
  s8 = epsilon(s8)
  s8 = max(s8, dble(s4), 0.0d0)
  s8 = dot_product(a8, a8)
  s8 = sign(s8, s8)
end program p
`
	prog, _, err := analyzeSrc(t, src, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	types := map[string]Type{}
	WalkExprs(prog.Main.Body, func(e Expr) bool {
		if c, ok := e.(*CallExpr); ok && c.Intrinsic != "" {
			types[ExprString(c)] = c.Typ
		}
		return true
	})
	want := map[string]Type{
		"sqrt(s4)":    {Base: TReal, Kind: 4},
		"sqrt(s8)":    {Base: TReal, Kind: 8},
		"dble(s4)":    {Base: TReal, Kind: 8},
		"real(s8)":    {Base: TReal, Kind: 4},
		"real(s4, 8)": {Base: TReal, Kind: 8},
		"int(s8)":     {Base: TInteger},
		"size(a8)":    {Base: TInteger},
		"sum(a8)":     {Base: TReal, Kind: 8},
		"maxval(a4)":  {Base: TReal, Kind: 4},
		"epsilon(s8)": {Base: TReal, Kind: 8},
	}
	for k, w := range want {
		got, ok := types[k]
		if !ok {
			t.Errorf("intrinsic %s not found (have %v)", k, types)
			continue
		}
		if got != w {
			t.Errorf("%s: type %v, want %v", k, got, w)
		}
	}
}

func TestAnalyzeIntrinsicErrors(t *testing.T) {
	cases := []string{
		"program p\nimplicit none\nreal(kind=8) :: x\nx = sqrt(x, x)\nend program p",
		"program p\nimplicit none\ninteger :: i\ni = 1\ni = int(sqrt(i))\nend program p",
		"program p\nimplicit none\nreal(kind=8) :: x\nx = sum(x)\nend program p",
		"program p\nimplicit none\nreal(kind=8) :: x\nx = real(x, 16)\nend program p",
		"program p\nimplicit none\nreal(kind=8) :: x\nx = size(x)\nend program p",
	}
	for _, src := range cases {
		if _, _, err := analyzeSrc(t, src, Options{}); err == nil {
			t.Errorf("expected analysis error for %q", src)
		}
	}
}

func TestAnalyzeCallSites(t *testing.T) {
	_, info, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var found int
	for _, cs := range info.CallSites {
		if cs.Callee.Name == "advance" && cs.Caller.Name == "main" {
			found++
		}
		if cs.Callee.Name == "fun" && cs.Caller.Name == "advance" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("call sites: %d/2 found (%d total)", found, len(info.CallSites))
	}
}

func TestAnalyzeIdempotent(t *testing.T) {
	prog, _, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{}); err != nil {
		t.Fatalf("second Analyze failed: %v", err)
	}
}

func TestAnalyzeModuleVarVisibility(t *testing.T) {
	src := `
module consts
  implicit none
  real(kind=8), parameter :: g = 9.81d0
end module consts
module user1
  use consts
  implicit none
contains
  function weight(m) result(w)
    real(kind=8) :: m, w
    w = m * g
  end function weight
end module user1
`
	prog, _, err := analyzeSrc(t, src, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	f := prog.ProcMap["user1.weight"]
	var resolved bool
	WalkExprs(f.Body, func(e Expr) bool {
		if vr, ok := e.(*VarRef); ok && vr.Name == "g" {
			resolved = vr.Decl != nil && vr.Decl.InMod != nil && vr.Decl.InMod.Name == "consts"
		}
		return true
	})
	if !resolved {
		t.Error("module variable g not resolved through use")
	}
}

func TestAnalyzeProcUseVisibility(t *testing.T) {
	src := `
module consts
  implicit none
  real(kind=8) :: shared
end module consts
module work
  implicit none
contains
  subroutine s()
    use consts
    shared = 1.0d0
  end subroutine s
end module work
`
	if _, _, err := analyzeSrc(t, src, Options{}); err != nil {
		t.Fatalf("procedure-level use: %v", err)
	}
}

func TestRealDecls(t *testing.T) {
	prog, _, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	decls := RealDecls(prog)
	names := map[string]bool{}
	for _, d := range decls {
		names[d.QName()] = true
	}
	for _, want := range []string{"phys.field", "phys.fun.x", "phys.fun.y",
		"phys.advance.u", "phys.advance.dt", "main.dt"} {
		if !names[want] {
			t.Errorf("RealDecls missing %s (have %v)", want, names)
		}
	}
	// Parameters are not search atoms.
	for _, d := range decls {
		if d.IsParam {
			t.Errorf("parameter %s returned as search atom", d.QName())
		}
	}
}

func TestQNames(t *testing.T) {
	prog, _, err := analyzeSrc(t, miniModule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fun := prog.ProcMap["phys.fun"]
	if fun.QName() != "phys.fun" {
		t.Errorf("QName = %q", fun.QName())
	}
	if fun.Decls[0].QName() != "phys.fun.x" {
		t.Errorf("decl QName = %q", fun.Decls[0].QName())
	}
}
