package fortran

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders prog back to FT source. The output re-parses to an
// equivalent program (round-trip property, tested in printer_test.go) and
// is the format in which mixed-precision variants are shown to users.
func Print(prog *Program) string {
	var pr printer
	for i, m := range prog.Modules {
		if i > 0 {
			pr.nl()
		}
		pr.module(m)
	}
	if prog.Main != nil {
		if len(prog.Modules) > 0 {
			pr.nl()
		}
		pr.mainProgram(prog.Main)
	}
	return pr.sb.String()
}

// PrintProc renders a single procedure (used in variant diffs).
func PrintProc(p *Procedure) string {
	var pr printer
	pr.proc(p)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (pr *printer) line(format string, args ...any) {
	pr.sb.WriteString(strings.Repeat("  ", pr.indent))
	fmt.Fprintf(&pr.sb, format, args...)
	pr.sb.WriteByte('\n')
}

func (pr *printer) nl() { pr.sb.WriteByte('\n') }

func (pr *printer) module(m *Module) {
	pr.line("module %s", m.Name)
	pr.indent++
	for _, u := range m.Uses {
		pr.line("use %s", u)
	}
	pr.line("implicit none")
	for _, d := range m.Decls {
		pr.decl(d)
	}
	if len(m.Procs) > 0 {
		pr.indent--
		pr.line("contains")
		pr.indent++
		for _, p := range m.Procs {
			pr.nl()
			pr.proc(p)
		}
	}
	pr.indent--
	pr.line("end module %s", m.Name)
}

func (pr *printer) mainProgram(p *Procedure) {
	pr.line("program %s", p.Name)
	pr.indent++
	pr.procBody(p)
	pr.indent--
	pr.line("end program %s", p.Name)
}

func (pr *printer) proc(p *Procedure) {
	params := strings.Join(p.Params, ", ")
	switch p.Kind {
	case KSubroutine:
		pr.line("subroutine %s(%s)", p.Name, params)
	case KFunction:
		if p.ResultName != p.Name {
			pr.line("function %s(%s) result(%s)", p.Name, params, p.ResultName)
		} else {
			pr.line("function %s(%s)", p.Name, params)
		}
	case KProgram:
		pr.mainProgram(p)
		return
	}
	pr.indent++
	pr.procBody(p)
	pr.indent--
	switch p.Kind {
	case KSubroutine:
		pr.line("end subroutine %s", p.Name)
	case KFunction:
		pr.line("end function %s", p.Name)
	}
}

func (pr *printer) procBody(p *Procedure) {
	for _, u := range p.Uses {
		pr.line("use %s", u)
	}
	pr.line("implicit none")
	for _, d := range p.Decls {
		pr.decl(d)
	}
	pr.stmts(p.Body)
}

// DeclString renders a declaration as a single line of FT source.
func DeclString(d *VarDecl) string {
	var attrs []string
	switch d.Base {
	case TReal:
		attrs = append(attrs, fmt.Sprintf("real(kind=%d)", d.Kind))
	case TInteger:
		attrs = append(attrs, "integer")
	case TLogical:
		attrs = append(attrs, "logical")
	}
	if d.IsParam {
		attrs = append(attrs, "parameter")
	}
	if d.Intent != IntentNone {
		attrs = append(attrs, fmt.Sprintf("intent(%s)", d.Intent))
	}
	s := strings.Join(attrs, ", ") + " :: " + d.Name
	if len(d.Dims) > 0 {
		var ds []string
		for _, dim := range d.Dims {
			switch {
			case dim.Assumed:
				ds = append(ds, ":")
			case dim.Lo != nil:
				ds = append(ds, ExprString(dim.Lo)+":"+ExprString(dim.Hi))
			default:
				ds = append(ds, ExprString(dim.Hi))
			}
		}
		s += "(" + strings.Join(ds, ", ") + ")"
	}
	if d.Init != nil {
		s += " = " + ExprString(d.Init)
	}
	return s
}

func (pr *printer) decl(d *VarDecl) {
	pr.line("%s", DeclString(d))
}

func (pr *printer) stmts(list []Stmt) {
	for _, s := range list {
		pr.stmt(s)
	}
}

func (pr *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		pr.line("%s = %s", ExprString(s.LHS), ExprString(s.RHS))
	case *IfStmt:
		pr.ifStmt(s, "if")
	case *DoStmt:
		if s.NoVector {
			pr.line("!dir$ novector")
		}
		hdr := fmt.Sprintf("do %s = %s, %s", s.Var.Name, ExprString(s.From), ExprString(s.To))
		if s.Step != nil {
			hdr += ", " + ExprString(s.Step)
		}
		pr.line("%s", hdr)
		pr.indent++
		pr.stmts(s.Body)
		pr.indent--
		pr.line("end do")
	case *DoWhileStmt:
		pr.line("do while (%s)", ExprString(s.Cond))
		pr.indent++
		pr.stmts(s.Body)
		pr.indent--
		pr.line("end do")
	case *CallStmt:
		if len(s.Args) == 0 {
			pr.line("call %s()", s.Name)
		} else {
			pr.line("call %s(%s)", s.Name, exprList(s.Args))
		}
	case *ReturnStmt:
		pr.line("return")
	case *ExitStmt:
		pr.line("exit")
	case *CycleStmt:
		pr.line("cycle")
	case *StopStmt:
		if s.Code != nil {
			pr.line("stop %s", ExprString(s.Code))
		} else {
			pr.line("stop")
		}
	case *PrintStmt:
		if len(s.Args) == 0 {
			pr.line("print *")
		} else {
			pr.line("print *, %s", exprList(s.Args))
		}
	}
}

func (pr *printer) ifStmt(s *IfStmt, kw string) {
	pr.line("%s (%s) then", kw, ExprString(s.Cond))
	pr.indent++
	pr.stmts(s.Then)
	pr.indent--
	if len(s.Else) == 1 {
		if elif, ok := s.Else[0].(*IfStmt); ok && elif.ElseIf {
			pr.ifStmt(elif, "else if")
			return
		}
	}
	if len(s.Else) > 0 {
		pr.line("else")
		pr.indent++
		pr.stmts(s.Else)
		pr.indent--
	}
	pr.line("end if")
}

func exprList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ExprString(a)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression as FT source.
func ExprString(e Expr) string {
	return exprPrec(e, 0)
}

// Operator precedence levels for parenthesization, matching the parser.
func opPrec(op TokKind) int {
	switch op {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NE, LT, LE, GT, GE:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH:
		return 6
	case POW:
		return 8
	default:
		return 0
	}
}

func opText(op TokKind) string {
	switch op {
	case AND:
		return ".and."
	case OR:
		return ".or."
	default:
		return op.String()
	}
}

func exprPrec(e Expr, min int) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *RealLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		// Normalize exponent form so the kind suffix parses.
		s = strings.ReplaceAll(s, "E", "e")
		return fmt.Sprintf("%s_%d", s, e.Kind)
	case *LogicalLit:
		if e.Val {
			return ".true."
		}
		return ".false."
	case *StrLit:
		return "'" + strings.ReplaceAll(e.Val, "'", "''") + "'"
	case *VarRef:
		return e.Name
	case *UnExpr:
		var s string
		if e.Op == NOT {
			s = ".not. " + exprPrec(e.X, 3)
		} else {
			s = "-" + exprPrec(e.X, 7)
		}
		if min > 3 {
			return "(" + s + ")"
		}
		return s
	case *BinExpr:
		p := opPrec(e.Op)
		lhs := exprPrec(e.X, p)
		// Left-associative: right operand needs higher precedence.
		// POW is right-associative: left operand needs higher precedence.
		rhs := exprPrec(e.Y, p+1)
		if e.Op == POW {
			lhs = exprPrec(e.X, p+1)
			rhs = exprPrec(e.Y, p)
		}
		s := lhs + " " + opText(e.Op) + " " + rhs
		if e.Op == POW {
			s = lhs + opText(e.Op) + rhs
		}
		if p < min {
			return "(" + s + ")"
		}
		return s
	case *ApplyExpr:
		return e.Name + "(" + exprList(e.Args) + ")"
	case *CallExpr:
		return e.Name + "(" + exprList(e.Args) + ")"
	case *IndexExpr:
		return e.Arr.Name + "(" + exprList(e.Indices) + ")"
	default:
		return fmt.Sprintf("<?%T>", e)
	}
}
