package fortran

// BaseType is the fundamental type of a value or variable.
type BaseType int

// Base types supported by FT.
const (
	TInvalid BaseType = iota
	TReal
	TInteger
	TLogical
	TString // PRINT arguments only
)

func (b BaseType) String() string {
	switch b {
	case TReal:
		return "real"
	case TInteger:
		return "integer"
	case TLogical:
		return "logical"
	case TString:
		return "character"
	default:
		return "invalid"
	}
}

// Type describes the static type of an expression: base type, real kind
// (4 or 8; 0 for non-real), and rank (0 for scalars).
type Type struct {
	Base BaseType
	Kind int
	Rank int
}

// Scalar reports whether t has rank 0.
func (t Type) Scalar() bool { return t.Rank == 0 }

// IsReal reports whether t is a real type.
func (t Type) IsReal() bool { return t.Base == TReal }

func (t Type) String() string {
	s := t.Base.String()
	if t.Base == TReal {
		if t.Kind == 8 {
			s = "real(kind=8)"
		} else {
			s = "real(kind=4)"
		}
	}
	if t.Rank > 0 {
		s += "[]"
	}
	return s
}

// Intent is the declared intent of a dummy argument.
type Intent int

// Intents.
const (
	IntentNone Intent = iota
	IntentIn
	IntentOut
	IntentInOut
)

func (i Intent) String() string {
	switch i {
	case IntentIn:
		return "in"
	case IntentOut:
		return "out"
	case IntentInOut:
		return "inout"
	default:
		return ""
	}
}

// Dim is one dimension of an array declaration. A nil Lo means the
// default lower bound of 1. Assumed marks an assumed-shape dimension
// "(:)" whose extent comes from the actual argument.
type Dim struct {
	Lo, Hi  Expr
	Assumed bool
}

// VarDecl declares exactly one variable (multi-name declaration lines are
// split by the parser, so that each declaration is an independent search
// atom for the precision tuner).
type VarDecl struct {
	Pos     Pos
	Name    string
	Base    BaseType
	Kind    int // real kind: 4 or 8 (parser defaults real to 4)
	Dims    []Dim
	Intent  Intent
	IsParam bool // PARAMETER constant
	Init    Expr

	// Filled by semantic analysis.
	Slot    int        // frame slot (locals) or module slot
	IsArg   bool       // dummy argument of the enclosing procedure
	Proc    *Procedure // enclosing procedure, nil for module variables
	InMod   *Module    // owning module (for module variables)
	ConstI  int64      // evaluated value for integer parameters
	ConstOK bool
}

// IsArray reports whether the declaration has array dimensions.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// Type returns the declared type.
func (d *VarDecl) Type() Type {
	return Type{Base: d.Base, Kind: d.Kind, Rank: len(d.Dims)}
}

// QName returns the fully qualified "module.proc.name" (or "module.name")
// identifier used to key precision assignments.
func (d *VarDecl) QName() string {
	if d.Proc != nil {
		return d.Proc.QName() + "." + d.Name
	}
	if d.InMod != nil {
		return d.InMod.Name + "." + d.Name
	}
	return d.Name
}

// ProcKind distinguishes subroutines, functions, and the main program.
type ProcKind int

// Procedure kinds.
const (
	KSubroutine ProcKind = iota
	KFunction
	KProgram
)

// Procedure is a subroutine, function, or main program.
type Procedure struct {
	Pos        Pos
	Kind       ProcKind
	Name       string
	Params     []string // dummy argument names, in order
	ResultName string   // function result variable (defaults to Name)
	Uses       []string
	Decls      []*VarDecl
	Body       []Stmt

	// WrapperFor is the qualified name of the procedure this one was
	// generated to wrap (transform's parameter-passing shims, paper
	// Fig. 4), or "" for every user-written procedure. Tools that must
	// distinguish generated wrappers — e.g. hotspot CPU-time attribution
	// — check this marker rather than pattern-matching names, so a user
	// procedure that happens to be named like a wrapper is never
	// misclassified.
	WrapperFor string

	// Filled by semantic analysis.
	Module    *Module
	ParamDecl []*VarDecl // decl for each dummy argument, parallel to Params
	Result    *VarDecl   // function result declaration
	NumSlots  int        // local frame size
	Index     int        // global procedure index
}

// QName returns "module.name" ("name" for the main program).
func (p *Procedure) QName() string {
	if p.Module != nil {
		return p.Module.Name + "." + p.Name
	}
	return p.Name
}

// Module is an FT module: module-level declarations plus procedures.
type Module struct {
	Pos   Pos
	Name  string
	Uses  []string
	Decls []*VarDecl
	Procs []*Procedure

	// Filled by semantic analysis.
	Index int
}

// Program is a parsed FT program: a set of modules and an optional main
// program block.
type Program struct {
	Modules []*Module
	Main    *Procedure

	// Filled by semantic analysis.
	ModMap   map[string]*Module
	ProcMap  map[string]*Procedure // qualified name -> proc
	AllProcs []*Procedure          // by Index
}

// Statements ----------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// AssignStmt is "lhs = rhs". LHS is a *VarRef or *IndexExpr.
type AssignStmt struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

// IfStmt is a block IF. ELSE IF chains are represented as a nested IfStmt
// as the sole statement of Else.
type IfStmt struct {
	Pos    Pos
	Cond   Expr
	Then   []Stmt
	Else   []Stmt
	ElseIf bool // this node came from an ELSE IF (printer hint)
}

// DoStmt is a counted DO loop.
type DoStmt struct {
	Pos      Pos
	Var      *VarRef
	From, To Expr
	Step     Expr // nil means 1
	Body     []Stmt

	// NoVector marks loops annotated "!dir$ novector" in the source,
	// modeling loop-carried dependences the cost model must respect.
	NoVector bool
}

// DoWhileStmt is "do while (cond)".
type DoWhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// CallStmt is "call name(args)".
type CallStmt struct {
	Pos  Pos
	Name string
	Args []Expr

	Proc      *Procedure // resolved callee (nil for intrinsic subroutines)
	Intrinsic string     // non-empty for intrinsic subroutines
}

// ReturnStmt returns from the enclosing procedure.
type ReturnStmt struct{ Pos Pos }

// ExitStmt exits the innermost loop.
type ExitStmt struct{ Pos Pos }

// CycleStmt continues the innermost loop.
type CycleStmt struct{ Pos Pos }

// StopStmt halts the program. A non-nil Code signals an error stop, which
// the dynamic evaluator classifies as a runtime failure of the variant.
type StopStmt struct {
	Pos  Pos
	Code Expr
}

// PrintStmt is "print *, args".
type PrintStmt struct {
	Pos  Pos
	Args []Expr
}

func (*AssignStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*DoStmt) stmtNode()      {}
func (*DoWhileStmt) stmtNode() {}
func (*CallStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()  {}
func (*ExitStmt) stmtNode()    {}
func (*CycleStmt) stmtNode()   {}
func (*StopStmt) stmtNode()    {}
func (*PrintStmt) stmtNode()   {}

// StmtPos implementations.
func (s *AssignStmt) StmtPos() Pos  { return s.Pos }
func (s *IfStmt) StmtPos() Pos      { return s.Pos }
func (s *DoStmt) StmtPos() Pos      { return s.Pos }
func (s *DoWhileStmt) StmtPos() Pos { return s.Pos }
func (s *CallStmt) StmtPos() Pos    { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos  { return s.Pos }
func (s *ExitStmt) StmtPos() Pos    { return s.Pos }
func (s *CycleStmt) StmtPos() Pos   { return s.Pos }
func (s *StopStmt) StmtPos() Pos    { return s.Pos }
func (s *PrintStmt) StmtPos() Pos   { return s.Pos }

// Expressions ---------------------------------------------------------------

// Expr is implemented by all expression nodes. Typ is valid after
// semantic analysis.
type Expr interface {
	exprNode()
	ExprPos() Pos
	Type() Type
}

// VarRef is a reference to a scalar variable or a whole array.
type VarRef struct {
	Pos  Pos
	Name string

	Decl *VarDecl // resolved declaration
	Typ  Type
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// RealLit is a real literal with an explicit kind.
type RealLit struct {
	Pos  Pos
	Val  float64
	Kind int
}

// LogicalLit is .true. or .false..
type LogicalLit struct {
	Pos Pos
	Val bool
}

// StrLit is a character literal (PRINT arguments only).
type StrLit struct {
	Pos Pos
	Val string
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   TokKind
	X, Y Expr
	Typ  Type
}

// UnExpr is a unary operation (-x, .not. x, +x).
type UnExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
	Typ Type
}

// ApplyExpr is the parse-time form of "name(args)", ambiguous between a
// function call and an array element reference. Semantic analysis
// replaces it with a *CallExpr or an *IndexExpr.
type ApplyExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// CallExpr is a resolved function call (user function or intrinsic).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr

	Proc      *Procedure // nil for intrinsics
	Intrinsic string     // non-empty for intrinsic functions
	Typ       Type
}

// IndexExpr is a resolved array element reference a(i[,j...]).
type IndexExpr struct {
	Pos     Pos
	Arr     *VarRef
	Indices []Expr
	Typ     Type
}

func (*VarRef) exprNode()     {}
func (*IntLit) exprNode()     {}
func (*RealLit) exprNode()    {}
func (*LogicalLit) exprNode() {}
func (*StrLit) exprNode()     {}
func (*BinExpr) exprNode()    {}
func (*UnExpr) exprNode()     {}
func (*ApplyExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}

// ExprPos implementations.
func (e *VarRef) ExprPos() Pos     { return e.Pos }
func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *RealLit) ExprPos() Pos    { return e.Pos }
func (e *LogicalLit) ExprPos() Pos { return e.Pos }
func (e *StrLit) ExprPos() Pos     { return e.Pos }
func (e *BinExpr) ExprPos() Pos    { return e.Pos }
func (e *UnExpr) ExprPos() Pos     { return e.Pos }
func (e *ApplyExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }

// Type implementations.
func (e *VarRef) Type() Type     { return e.Typ }
func (e *IntLit) Type() Type     { return Type{Base: TInteger} }
func (e *RealLit) Type() Type    { return Type{Base: TReal, Kind: e.Kind} }
func (e *LogicalLit) Type() Type { return Type{Base: TLogical} }
func (e *StrLit) Type() Type     { return Type{Base: TString} }
func (e *BinExpr) Type() Type    { return e.Typ }
func (e *UnExpr) Type() Type     { return e.Typ }
func (e *ApplyExpr) Type() Type  { return Type{} }
func (e *CallExpr) Type() Type   { return e.Typ }
func (e *IndexExpr) Type() Type  { return e.Typ }
