// Package fortran implements a lexer, parser, semantic analyzer, and
// pretty-printer for FT, a Fortran-95 subset sufficient to express the
// weather/climate model surrogates tuned in this repository.
//
// FT supports modules, subroutines, functions, real(kind=4/8) scalars and
// arrays (explicit- and assumed-shape), integer and logical types,
// parameter constants, do/do-while/if control flow, and a set of numeric
// intrinsics. It deliberately omits pointers, I/O beyond PRINT/STOP,
// generic interfaces, and derived types: none are needed by the precision
// tuner, which only manipulates declarations, call sites, and FP data flow.
package fortran

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. NEWLINE is significant: FT, like Fortran, is line-oriented.
const (
	EOF TokKind = iota
	NEWLINE
	IDENT  // identifiers and keywords (Fortran has no reserved words)
	INT    // integer literal
	REAL   // real literal, with kind suffix resolved
	STRING // character literal (PRINT only)

	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	ASSIGN // =
	EQ     // == or .eq.
	NE     // /= or .ne.
	LT     // <  or .lt.
	LE     // <= or .le.
	GT     // >  or .gt.
	GE     // >= or .ge.
	AND    // .and.
	OR     // .or.
	NOT    // .not.
	TRUE   // .true.
	FALSE  // .false.

	LPAREN    // (
	RPAREN    // )
	COMMA     // ,
	DCOLON    // ::
	COLON     // :
	SEMI      // ;
	DIRECTIVE // !dir$ <text>
)

var tokNames = map[TokKind]string{
	EOF: "EOF", NEWLINE: "newline", IDENT: "identifier", INT: "integer",
	REAL: "real", STRING: "string", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", POW: "**", ASSIGN: "=", EQ: "==", NE: "/=", LT: "<",
	LE: "<=", GT: ">", GE: ">=", AND: ".and.", OR: ".or.", NOT: ".not.",
	TRUE: ".true.", FALSE: ".false.", LPAREN: "(", RPAREN: ")",
	COMMA: ",", DCOLON: "::", COLON: ":", SEMI: ";", DIRECTIVE: "!dir$",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string  // lower-cased for IDENT; raw for STRING
	Int  int64   // valid for INT
	Real float64 // valid for REAL
	RK   int     // real literal kind: 4 or 8
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INT:
		return fmt.Sprintf("%d", t.Int)
	case REAL:
		return fmt.Sprintf("%g_%d", t.Real, t.RK)
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a diagnostic tied to a source position.
type Error struct {
	Pos  Pos
	Msg  string
	File string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
