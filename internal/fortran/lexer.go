package fortran

import (
	"strconv"
	"strings"
)

// Lexer converts FT source text into tokens. Source is free-form:
// '!' begins a comment, '&' at end of line continues the statement,
// and case is insignificant (identifiers are lower-cased).
type Lexer struct {
	src     string
	off     int
	line    int
	col     int
	errs    []*Error
	pending []Token // tokens queued by multi-token productions (e.g. "endif")
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input. It returns the token stream ending in
// EOF and any lexical errors encountered (lexing continues past errors).
func Lex(src string) ([]Token, []*Error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, lx.errs
}

func (lx *Lexer) errorf(pos Pos, format string, args ...any) {
	lx.errs = append(lx.errs, errf(pos, format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// skipBlank consumes spaces, tabs, carriage returns, and comments.
func (lx *Lexer) skipBlank() {
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case ' ', '\t', '\r':
			lx.advance()
		case '!':
			if strings.HasPrefix(strings.ToLower(lx.src[lx.off:]), "!dir$") {
				return // handled by next() as a DIRECTIVE token
			}
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (lx *Lexer) next() Token {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t
	}
	for {
		lx.skipBlank()
		if lx.off >= len(lx.src) {
			return Token{Kind: EOF, Pos: lx.pos()}
		}
		pos := lx.pos()
		c := lx.peek()

		switch {
		case c == '\n':
			lx.advance()
			return Token{Kind: NEWLINE, Pos: pos}
		case c == '!':
			// Only compiler directives reach here; plain comments are
			// consumed by skipBlank.
			start := lx.off
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			text := strings.ToLower(strings.TrimSpace(lx.src[start+len("!dir$") : lx.off]))
			return Token{Kind: DIRECTIVE, Pos: pos, Text: text}
		case c == '&':
			// Continuation: swallow '&', optional comment, and the newline.
			lx.advance()
			lx.skipBlank()
			if lx.peek() == '\n' {
				lx.advance()
			}
			// A leading '&' on the continued line is also permitted.
			lx.skipBlank()
			if lx.peek() == '&' {
				lx.advance()
			}
			continue
		case isAlpha(c):
			return lx.lexIdent(pos)
		case isDigit(c):
			return lx.lexNumber(pos)
		case c == '.':
			// Either a dot-operator (.and.) or a real literal (.5).
			if isDigit(lx.peek2()) {
				return lx.lexNumber(pos)
			}
			return lx.lexDotOp(pos)
		case c == '\'' || c == '"':
			return lx.lexString(pos)
		default:
			return lx.lexOperator(pos)
		}
	}
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

// endForms maps fused END keywords to their split second word, so the
// parser only ever sees the spaced form ("end do", "end if", ...).
var endForms = map[string]string{
	"endif": "if", "enddo": "do", "endmodule": "module",
	"endsubroutine": "subroutine", "endfunction": "function",
	"endprogram": "program",
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isAlnum(lx.peek()) {
		lx.advance()
	}
	text := strings.ToLower(lx.src[start:lx.off])
	if second, ok := endForms[text]; ok {
		lx.pending = append(lx.pending, Token{Kind: IDENT, Pos: pos, Text: second})
		return Token{Kind: IDENT, Pos: pos, Text: "end"}
	}
	return Token{Kind: IDENT, Pos: pos, Text: text}
}

// lexNumber lexes integer and real literals, including kind suffixes:
//
//	42        integer
//	1.5       real kind 4 (default real)
//	1.5e3     real kind 4
//	1.5d3     real kind 8 (double-precision exponent)
//	1.5_8     real kind 8 (explicit kind suffix)
//	7_8       integer with kind suffix (kind ignored; integers are 64-bit)
func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.off
	isReal := false
	kind := 4
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && !isDotOpAhead(lx.src[lx.off:]) {
		isReal = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	mantEnd := lx.off
	if c := lx.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		save := lx.off
		saveLine, saveCol := lx.line, lx.col
		expChar := c
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isReal = true
			if expChar == 'd' || expChar == 'D' {
				kind = 8
			}
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
			mantEnd = lx.off
		} else {
			// Not an exponent (e.g. "3.eq." was impossible here, but
			// "1e" followed by an identifier char); back off.
			lx.off, lx.line, lx.col = save, saveLine, saveCol
		}
	}
	text := lx.src[start:mantEnd]
	// Kind suffix: _4 or _8.
	if lx.peek() == '_' {
		save := lx.off
		saveLine, saveCol := lx.line, lx.col
		lx.advance()
		kstart := lx.off
		for lx.off < len(lx.src) && isAlnum(lx.peek()) {
			lx.advance()
		}
		ks := lx.src[kstart:lx.off]
		switch ks {
		case "4":
			kind = 4
		case "8":
			kind = 8
		default:
			lx.errorf(pos, "unsupported kind suffix _%s (want _4 or _8)", ks)
			lx.off, lx.line, lx.col = save, saveLine, saveCol
		}
	}
	if !isReal {
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			lx.errorf(pos, "bad integer literal %q: %v", text, err)
		}
		return Token{Kind: INT, Pos: pos, Int: v}
	}
	norm := strings.Map(func(r rune) rune {
		if r == 'd' || r == 'D' {
			return 'e'
		}
		return r
	}, text)
	v, err := strconv.ParseFloat(norm, 64)
	if err != nil {
		lx.errorf(pos, "bad real literal %q: %v", text, err)
	}
	return Token{Kind: REAL, Pos: pos, Real: v, RK: kind}
}

// isDotOpAhead reports whether s begins with a dot-operator like ".and.",
// so that "1.and.x" lexes as INT DOT-OP rather than a malformed real.
func isDotOpAhead(s string) bool {
	for _, op := range []string{".and.", ".or.", ".not.", ".true.", ".false.",
		".eq.", ".ne.", ".lt.", ".le.", ".gt.", ".ge."} {
		if len(s) >= len(op) && strings.EqualFold(s[:len(op)], op) {
			return true
		}
	}
	return false
}

var dotOps = map[string]TokKind{
	"and": AND, "or": OR, "not": NOT, "true": TRUE, "false": FALSE,
	"eq": EQ, "ne": NE, "lt": LT, "le": LE, "gt": GT, "ge": GE,
}

func (lx *Lexer) lexDotOp(pos Pos) Token {
	lx.advance() // '.'
	start := lx.off
	for lx.off < len(lx.src) && isAlpha(lx.peek()) {
		lx.advance()
	}
	word := strings.ToLower(lx.src[start:lx.off])
	if lx.peek() != '.' {
		lx.errorf(pos, "malformed dot-operator .%s", word)
		return Token{Kind: NEWLINE, Pos: pos}
	}
	lx.advance() // trailing '.'
	k, ok := dotOps[word]
	if !ok {
		lx.errorf(pos, "unknown dot-operator .%s.", word)
		return Token{Kind: NEWLINE, Pos: pos}
	}
	return Token{Kind: k, Pos: pos}
}

func (lx *Lexer) lexString(pos Pos) Token {
	quote := lx.advance()
	var sb strings.Builder
	for lx.off < len(lx.src) {
		c := lx.advance()
		if c == quote {
			// Doubled quote is an escaped quote.
			if lx.peek() == quote {
				lx.advance()
				sb.WriteByte(quote)
				continue
			}
			return Token{Kind: STRING, Pos: pos, Text: sb.String()}
		}
		if c == '\n' {
			lx.errorf(pos, "unterminated string literal")
			return Token{Kind: STRING, Pos: pos, Text: sb.String()}
		}
		sb.WriteByte(c)
	}
	lx.errorf(pos, "unterminated string literal")
	return Token{Kind: STRING, Pos: pos, Text: sb.String()}
}

func (lx *Lexer) lexOperator(pos Pos) Token {
	c := lx.advance()
	switch c {
	case '+':
		return Token{Kind: PLUS, Pos: pos}
	case '-':
		return Token{Kind: MINUS, Pos: pos}
	case '*':
		if lx.peek() == '*' {
			lx.advance()
			return Token{Kind: POW, Pos: pos}
		}
		return Token{Kind: STAR, Pos: pos}
	case '/':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: NE, Pos: pos}
		}
		return Token{Kind: SLASH, Pos: pos}
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: EQ, Pos: pos}
		}
		return Token{Kind: ASSIGN, Pos: pos}
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: LE, Pos: pos}
		}
		return Token{Kind: LT, Pos: pos}
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: GE, Pos: pos}
		}
		return Token{Kind: GT, Pos: pos}
	case '(':
		return Token{Kind: LPAREN, Pos: pos}
	case ')':
		return Token{Kind: RPAREN, Pos: pos}
	case ',':
		return Token{Kind: COMMA, Pos: pos}
	case ';':
		return Token{Kind: SEMI, Pos: pos}
	case ':':
		if lx.peek() == ':' {
			lx.advance()
			return Token{Kind: DCOLON, Pos: pos}
		}
		return Token{Kind: COLON, Pos: pos}
	default:
		lx.errorf(pos, "unexpected character %q", string(c))
		return Token{Kind: NEWLINE, Pos: pos}
	}
}
