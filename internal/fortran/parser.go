package fortran

import (
	"fmt"
)

// Parser builds an AST from a token stream. It is a hand-written
// recursive-descent parser over the line-oriented FT grammar.
type Parser struct {
	toks []Token
	pos  int
	errs []*Error
	file string
}

// Parse lexes and parses src into a Program. The returned error is the
// first diagnostic if any were produced.
func Parse(src string) (*Program, error) {
	return ParseFile("", src)
}

// ParseFile is Parse with a file name used in diagnostics.
func ParseFile(file, src string) (*Program, error) {
	toks, lexErrs := Lex(src)
	p := &Parser{toks: toks, file: file}
	for _, e := range lexErrs {
		e.File = file
		p.errs = append(p.errs, e)
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, p.errs[0]
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for embedded model
// sources that are fixed at build time.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("fortran.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	e := errf(pos, format, args...)
	e.File = p.file
	p.errs = append(p.errs, e)
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

// atKw reports whether the current token is the identifier kw.
func (p *Parser) atKw(kw string) bool {
	t := p.cur()
	return t.Kind == IDENT && t.Text == kw
}

func (p *Parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %v, found %v", k, t)
		// Attempt resynchronization at next newline.
		p.syncLine()
		return Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *Parser) expectKw(kw string) {
	t := p.cur()
	if t.Kind != IDENT || t.Text != kw {
		p.errorf(t.Pos, "expected %q, found %v", kw, t)
		p.syncLine()
		return
	}
	p.advance()
}

// eol consumes the end of a statement (NEWLINE or ';'), tolerating blank
// lines.
func (p *Parser) eol() {
	if p.at(SEMI) || p.at(NEWLINE) {
		p.advance()
		p.skipBlankLines()
		return
	}
	if p.at(EOF) {
		return
	}
	p.errorf(p.cur().Pos, "expected end of statement, found %v", p.cur())
	p.syncLine()
}

func (p *Parser) skipBlankLines() {
	for p.at(NEWLINE) {
		p.advance()
	}
}

func (p *Parser) syncLine() {
	for !p.at(NEWLINE) && !p.at(EOF) {
		p.advance()
	}
	p.skipBlankLines()
}

// parseProgram parses a whole source file: modules and at most one
// program block, in any order.
func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	p.skipBlankLines()
	for !p.at(EOF) {
		switch {
		case p.atKw("module"):
			prog.Modules = append(prog.Modules, p.parseModule())
		case p.atKw("program"):
			mp := p.parseMainProgram()
			if prog.Main != nil {
				p.errorf(mp.Pos, "duplicate program block %q", mp.Name)
			}
			prog.Main = mp
		default:
			p.errorf(p.cur().Pos, "expected 'module' or 'program' at top level, found %v", p.cur())
			p.syncLine()
		}
		p.skipBlankLines()
	}
	return prog
}

func (p *Parser) parseModule() *Module {
	pos := p.cur().Pos
	p.expectKw("module")
	name := p.expect(IDENT).Text
	p.eol()
	m := &Module{Pos: pos, Name: name}

	// Header: use statements, implicit none, declarations.
	for {
		switch {
		case p.atKw("use"):
			p.advance()
			m.Uses = append(m.Uses, p.expect(IDENT).Text)
			p.eol()
		case p.atKw("implicit"):
			p.advance()
			p.expectKw("none")
			p.eol()
		case p.atDeclStart():
			m.Decls = append(m.Decls, p.parseDeclLine()...)
		default:
			goto header_done
		}
	}
header_done:

	if p.acceptKw("contains") {
		p.eol()
		for p.atKw("subroutine") || p.atKw("function") {
			m.Procs = append(m.Procs, p.parseProcedure())
			p.skipBlankLines()
		}
	}
	p.expectKw("end")
	p.expectKw("module")
	if p.at(IDENT) {
		if got := p.next().Text; got != name {
			p.errorf(pos, "end module %q does not match module %q", got, name)
		}
	}
	p.eol()
	return m
}

func (p *Parser) parseMainProgram() *Procedure {
	pos := p.cur().Pos
	p.expectKw("program")
	name := p.expect(IDENT).Text
	p.eol()
	proc := &Procedure{Pos: pos, Kind: KProgram, Name: name}
	p.parseProcBody(proc)
	p.expectKw("end")
	p.expectKw("program")
	if p.at(IDENT) {
		p.advance()
	}
	p.eol()
	return proc
}

func (p *Parser) parseProcedure() *Procedure {
	pos := p.cur().Pos
	var kind ProcKind
	switch {
	case p.acceptKw("subroutine"):
		kind = KSubroutine
	case p.acceptKw("function"):
		kind = KFunction
	default:
		p.errorf(pos, "expected subroutine or function")
		p.syncLine()
		return &Procedure{Pos: pos, Kind: KSubroutine, Name: "<error>"}
	}
	name := p.expect(IDENT).Text
	proc := &Procedure{Pos: pos, Kind: kind, Name: name}
	if p.at(LPAREN) {
		p.advance()
		for !p.at(RPAREN) {
			proc.Params = append(proc.Params, p.expect(IDENT).Text)
			if !p.at(RPAREN) {
				p.expect(COMMA)
			}
		}
		p.expect(RPAREN)
	}
	if kind == KFunction {
		proc.ResultName = name
		if p.acceptKw("result") {
			p.expect(LPAREN)
			proc.ResultName = p.expect(IDENT).Text
			p.expect(RPAREN)
		}
	}
	p.eol()
	p.parseProcBody(proc)
	p.expectKw("end")
	switch kind {
	case KSubroutine:
		p.expectKw("subroutine")
	case KFunction:
		p.expectKw("function")
	}
	if p.at(IDENT) {
		if got := p.next().Text; got != name {
			p.errorf(pos, "end procedure %q does not match %q", got, name)
		}
	}
	p.eol()
	return proc
}

// parseProcBody parses uses, declarations, then executable statements up
// to (but not consuming) the closing "end".
func (p *Parser) parseProcBody(proc *Procedure) {
	for {
		switch {
		case p.atKw("use"):
			p.advance()
			proc.Uses = append(proc.Uses, p.expect(IDENT).Text)
			p.eol()
		case p.atKw("implicit"):
			p.advance()
			p.expectKw("none")
			p.eol()
		case p.atDeclStart():
			proc.Decls = append(proc.Decls, p.parseDeclLine()...)
		default:
			proc.Body = p.parseStmts()
			return
		}
	}
}

// atDeclStart reports whether the current line begins a type declaration.
func (p *Parser) atDeclStart() bool {
	return p.atKw("real") || p.atKw("integer") || p.atKw("logical") ||
		p.atKw("double")
}

// parseDeclLine parses one declaration statement, which may declare
// several names; one VarDecl is returned per name.
func (p *Parser) parseDeclLine() []*VarDecl {
	pos := p.cur().Pos
	base := TInvalid
	kind := 0
	switch {
	case p.acceptKw("real"):
		base, kind = TReal, 4
		if p.at(LPAREN) {
			p.advance()
			if p.acceptKw("kind") {
				p.expect(ASSIGN)
			}
			kt := p.expect(INT)
			switch kt.Int {
			case 4, 8:
				kind = int(kt.Int)
			default:
				p.errorf(kt.Pos, "unsupported real kind %d (want 4 or 8)", kt.Int)
			}
			p.expect(RPAREN)
		}
	case p.acceptKw("double"):
		p.expectKw("precision")
		base, kind = TReal, 8
	case p.acceptKw("integer"):
		base = TInteger
		if p.at(LPAREN) { // integer(kind=...) tolerated, kind ignored
			p.advance()
			if p.acceptKw("kind") {
				p.expect(ASSIGN)
			}
			p.expect(INT)
			p.expect(RPAREN)
		}
	case p.acceptKw("logical"):
		base = TLogical
	default:
		p.errorf(pos, "expected type declaration")
		p.syncLine()
		return nil
	}

	isParam := false
	intent := IntentNone
	var dimAttr []Dim
	for p.at(COMMA) {
		p.advance()
		attrPos := p.cur().Pos
		switch {
		case p.acceptKw("parameter"):
			isParam = true
		case p.acceptKw("intent"):
			p.expect(LPAREN)
			switch {
			case p.acceptKw("in"):
				intent = IntentIn
			case p.acceptKw("out"):
				intent = IntentOut
			case p.acceptKw("inout"):
				intent = IntentInOut
			default:
				p.errorf(p.cur().Pos, "expected in/out/inout in intent")
				p.syncLine()
				return nil
			}
			p.expect(RPAREN)
		case p.acceptKw("dimension"):
			p.expect(LPAREN)
			dimAttr = p.parseDims()
			p.expect(RPAREN)
		case p.acceptKw("save"), p.acceptKw("target"), p.acceptKw("allocatable"):
			// Accepted and ignored: all FT arrays are statically shaped.
		default:
			p.errorf(attrPos, "unsupported declaration attribute %v", p.cur())
			p.syncLine()
			return nil
		}
	}
	p.expect(DCOLON)

	var decls []*VarDecl
	for {
		npos := p.cur().Pos
		name := p.expect(IDENT).Text
		d := &VarDecl{
			Pos: npos, Name: name, Base: base, Kind: kind,
			Intent: intent, IsParam: isParam,
		}
		if p.at(LPAREN) {
			p.advance()
			d.Dims = p.parseDims()
			p.expect(RPAREN)
		} else if dimAttr != nil {
			d.Dims = dimAttr
		}
		if p.at(ASSIGN) {
			p.advance()
			d.Init = p.parseExpr()
		}
		decls = append(decls, d)
		if !p.at(COMMA) {
			break
		}
		p.advance()
	}
	p.eol()
	return decls
}

// parseDims parses a dimension list: "n", "0:n", ":", "n,m", ...
func (p *Parser) parseDims() []Dim {
	var dims []Dim
	for {
		if p.at(COLON) {
			p.advance()
			dims = append(dims, Dim{Assumed: true})
		} else {
			e := p.parseExpr()
			if p.at(COLON) {
				p.advance()
				hi := p.parseExpr()
				dims = append(dims, Dim{Lo: e, Hi: hi})
			} else {
				dims = append(dims, Dim{Hi: e})
			}
		}
		if !p.at(COMMA) {
			return dims
		}
		p.advance()
	}
}

// parseStmts parses statements until an "end", "else", "contains", or EOF
// is seen (without consuming it).
func (p *Parser) parseStmts() []Stmt {
	var stmts []Stmt
	for {
		p.skipBlankLines()
		if p.at(EOF) || p.atKw("end") || p.atKw("else") ||
			p.atKw("contains") || p.atKw("elseif") {
			return stmts
		}
		s := p.parseStmt()
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

func (p *Parser) parseStmt() Stmt {
	pos := p.cur().Pos
	switch {
	case p.at(DIRECTIVE):
		dir := p.next().Text
		p.eol()
		s := p.parseStmt()
		if dir == "novector" {
			if d, ok := s.(*DoStmt); ok {
				d.NoVector = true
			} else {
				p.errorf(pos, "!dir$ novector must precede a DO loop")
			}
		} else {
			p.errorf(pos, "unknown directive %q", dir)
		}
		return s
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("do"):
		return p.parseDo()
	case p.atKw("call"):
		p.advance()
		name := p.expect(IDENT).Text
		var args []Expr
		if p.at(LPAREN) {
			args = p.parseArgs()
		}
		p.eol()
		return &CallStmt{Pos: pos, Name: name, Args: args}
	case p.atKw("return"):
		p.advance()
		p.eol()
		return &ReturnStmt{Pos: pos}
	case p.atKw("exit"):
		p.advance()
		p.eol()
		return &ExitStmt{Pos: pos}
	case p.atKw("cycle"):
		p.advance()
		p.eol()
		return &CycleStmt{Pos: pos}
	case p.atKw("stop"):
		p.advance()
		var code Expr
		if !p.at(NEWLINE) && !p.at(SEMI) && !p.at(EOF) {
			code = p.parseExpr()
		}
		p.eol()
		return &StopStmt{Pos: pos, Code: code}
	case p.atKw("print"):
		p.advance()
		p.expect(STAR)
		var args []Expr
		for p.at(COMMA) {
			p.advance()
			args = append(args, p.parseExpr())
		}
		p.eol()
		return &PrintStmt{Pos: pos, Args: args}
	case p.at(IDENT):
		// Assignment: lhs [= expr]; lhs is ident or ident(indices).
		lhs := p.parsePrimary()
		switch lhs.(type) {
		case *VarRef, *ApplyExpr:
		default:
			p.errorf(pos, "invalid assignment target")
		}
		p.expect(ASSIGN)
		rhs := p.parseExpr()
		p.eol()
		return &AssignStmt{Pos: pos, LHS: lhs, RHS: rhs}
	default:
		p.errorf(pos, "unexpected token %v at start of statement", p.cur())
		p.syncLine()
		return nil
	}
}

func (p *Parser) parseIf() Stmt {
	pos := p.cur().Pos
	p.expectKw("if")
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	if !p.atKw("then") {
		// Single-statement logical IF.
		body := p.parseStmt()
		var then []Stmt
		if body != nil {
			then = []Stmt{body}
		}
		return &IfStmt{Pos: pos, Cond: cond, Then: then}
	}
	p.expectKw("then")
	p.eol()
	node := &IfStmt{Pos: pos, Cond: cond}
	node.Then = p.parseStmts()
	for {
		switch {
		case p.atKw("elseif"):
			p.advance()
			elif := p.parseElseIfTail()
			node.Else = []Stmt{elif}
			return node
		case p.atKw("else"):
			p.advance()
			if p.atKw("if") {
				p.advance()
				elif := p.parseElseIfTail()
				node.Else = []Stmt{elif}
				return node
			}
			p.eol()
			node.Else = p.parseStmts()
			p.expectKw("end")
			p.expectKw("if")
			p.eol()
			return node
		case p.atKw("end"):
			p.advance()
			p.expectKw("if")
			p.eol()
			return node
		default:
			p.errorf(p.cur().Pos, "expected else/end if, found %v", p.cur())
			p.syncLine()
			return node
		}
	}
}

// parseElseIfTail parses "(cond) then body ..." after ELSE IF, returning
// a nested IfStmt and consuming the final END IF.
func (p *Parser) parseElseIfTail() *IfStmt {
	pos := p.cur().Pos
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	p.expectKw("then")
	p.eol()
	node := &IfStmt{Pos: pos, Cond: cond, ElseIf: true}
	node.Then = p.parseStmts()
	switch {
	case p.atKw("elseif"):
		p.advance()
		node.Else = []Stmt{p.parseElseIfTail()}
	case p.atKw("else"):
		p.advance()
		if p.atKw("if") {
			p.advance()
			node.Else = []Stmt{p.parseElseIfTail()}
		} else {
			p.eol()
			node.Else = p.parseStmts()
			p.expectKw("end")
			p.expectKw("if")
			p.eol()
		}
	case p.atKw("end"):
		p.advance()
		p.expectKw("if")
		p.eol()
	default:
		p.errorf(p.cur().Pos, "expected else/end if, found %v", p.cur())
		p.syncLine()
	}
	return node
}

func (p *Parser) parseDo() Stmt {
	pos := p.cur().Pos
	p.expectKw("do")
	if p.acceptKw("while") {
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		p.eol()
		body := p.parseStmts()
		p.expectKw("end")
		p.expectKw("do")
		p.eol()
		return &DoWhileStmt{Pos: pos, Cond: cond, Body: body}
	}
	vtok := p.expect(IDENT)
	v := &VarRef{Pos: vtok.Pos, Name: vtok.Text}
	p.expect(ASSIGN)
	from := p.parseExpr()
	p.expect(COMMA)
	to := p.parseExpr()
	var step Expr
	if p.at(COMMA) {
		p.advance()
		step = p.parseExpr()
	}
	p.eol()
	body := p.parseStmts()
	p.expectKw("end")
	p.expectKw("do")
	p.eol()
	return &DoStmt{Pos: pos, Var: v, From: from, To: to, Step: step, Body: body}
}

func (p *Parser) parseArgs() []Expr {
	p.expect(LPAREN)
	var args []Expr
	for !p.at(RPAREN) {
		args = append(args, p.parseExpr())
		if !p.at(RPAREN) {
			p.expect(COMMA)
		}
	}
	p.expect(RPAREN)
	return args
}

// Expression parsing, lowest to highest precedence:
// .or. | .and. | .not. | relational | additive | multiplicative | unary | ** | primary

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	x := p.parseAnd()
	for p.at(OR) {
		pos := p.next().Pos
		y := p.parseAnd()
		x = &BinExpr{Pos: pos, Op: OR, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseAnd() Expr {
	x := p.parseNot()
	for p.at(AND) {
		pos := p.next().Pos
		y := p.parseNot()
		x = &BinExpr{Pos: pos, Op: AND, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseNot() Expr {
	if p.at(NOT) {
		pos := p.next().Pos
		x := p.parseNot()
		return &UnExpr{Pos: pos, Op: NOT, X: x}
	}
	return p.parseRel()
}

func (p *Parser) parseRel() Expr {
	x := p.parseAdd()
	switch k := p.cur().Kind; k {
	case EQ, NE, LT, LE, GT, GE:
		pos := p.next().Pos
		y := p.parseAdd()
		return &BinExpr{Pos: pos, Op: k, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseAdd() Expr {
	var x Expr
	// Leading unary sign binds looser than * and / per the Fortran grammar.
	switch k := p.cur().Kind; k {
	case MINUS, PLUS:
		pos := p.next().Pos
		operand := p.parseMul()
		if k == MINUS {
			x = &UnExpr{Pos: pos, Op: MINUS, X: operand}
		} else {
			x = operand
		}
	default:
		x = p.parseMul()
	}
	for p.at(PLUS) || p.at(MINUS) {
		t := p.next()
		y := p.parseMul()
		x = &BinExpr{Pos: t.Pos, Op: t.Kind, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseMul() Expr {
	x := p.parsePow()
	for p.at(STAR) || p.at(SLASH) {
		t := p.next()
		y := p.parsePow()
		x = &BinExpr{Pos: t.Pos, Op: t.Kind, X: x, Y: y}
	}
	return x
}

func (p *Parser) parsePow() Expr {
	x := p.parsePrimary()
	if p.at(POW) {
		pos := p.next().Pos
		// ** is right-associative; "-" after ** is a unary operand sign.
		var y Expr
		if p.at(MINUS) {
			mpos := p.next().Pos
			y = &UnExpr{Pos: mpos, Op: MINUS, X: p.parsePow()}
		} else {
			y = p.parsePow()
		}
		return &BinExpr{Pos: pos, Op: POW, X: x, Y: y}
	}
	return x
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.advance()
		return &IntLit{Pos: t.Pos, Val: t.Int}
	case REAL:
		p.advance()
		return &RealLit{Pos: t.Pos, Val: t.Real, Kind: t.RK}
	case TRUE:
		p.advance()
		return &LogicalLit{Pos: t.Pos, Val: true}
	case FALSE:
		p.advance()
		return &LogicalLit{Pos: t.Pos, Val: false}
	case STRING:
		p.advance()
		return &StrLit{Pos: t.Pos, Val: t.Text}
	case LPAREN:
		p.advance()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	case IDENT:
		p.advance()
		if p.at(LPAREN) {
			args := p.parseArgs()
			return &ApplyExpr{Pos: t.Pos, Name: t.Text, Args: args}
		}
		return &VarRef{Pos: t.Pos, Name: t.Text}
	case MINUS:
		// Reached only in argument/index contexts like f(-x).
		p.advance()
		return &UnExpr{Pos: t.Pos, Op: MINUS, X: p.parseMul()}
	default:
		p.errorf(t.Pos, "unexpected token %v in expression", t)
		p.advance()
		return &IntLit{Pos: t.Pos, Val: 0}
	}
}
