package fortran

import (
	"fmt"
	"sort"
)

// Mismatch records a real-kind mismatch between an actual argument and
// the corresponding dummy argument at a call site. The Fortran standard
// permits implicit kind conversion only through assignment, so these are
// errors in strict mode; the precision tuner's wrapper generator consumes
// them in tolerant mode (see internal/transform).
type Mismatch struct {
	Caller   *Procedure
	Callee   *Procedure
	CallStmt *CallStmt // non-nil for subroutine calls
	CallExpr *CallExpr // non-nil for function calls
	ArgIndex int
	Arg      Expr
	From, To int  // actual kind -> dummy kind
	IsArray  bool // the mismatched argument is an array
}

// CallSite describes one resolved call from Caller to Callee.
type CallSite struct {
	Caller *Procedure
	Callee *Procedure
	Args   []Expr
	Pos    Pos
}

// Info is the result of semantic analysis.
type Info struct {
	Prog       *Program
	Mismatches []Mismatch
	CallSites  []CallSite
	Errors     []*Error
}

// Options configures Analyze.
type Options struct {
	// AllowKindMismatch records real-kind argument mismatches in
	// Info.Mismatches instead of reporting them as errors.
	AllowKindMismatch bool
}

type checker struct {
	prog  *Program
	opts  Options
	info  *Info
	proc  *Procedure // procedure being checked
	local map[string]*VarDecl
}

// Analyze resolves names, types, and call sites across prog, assigning
// frame slots and rewriting ambiguous ApplyExpr nodes into CallExpr or
// IndexExpr nodes. It must be called before interpretation or
// transformation. Analyze is idempotent.
func Analyze(prog *Program, opts Options) (*Info, error) {
	c := &checker{prog: prog, opts: opts, info: &Info{Prog: prog}}
	c.collect()
	if len(c.info.Errors) == 0 {
		for _, m := range prog.Modules {
			for _, d := range m.Decls {
				c.checkModuleDecl(m, d)
			}
		}
		// Bind every procedure's declarations before checking any body:
		// call sites may reference procedures defined later.
		for _, p := range prog.AllProcs {
			c.bindProc(p)
		}
		for _, p := range prog.AllProcs {
			c.checkProc(p)
		}
	}
	if len(c.info.Errors) > 0 {
		return c.info, c.info.Errors[0]
	}
	return c.info, nil
}

// MustAnalyze is Analyze for programs known to be valid; it panics on error.
func MustAnalyze(prog *Program, opts Options) *Info {
	info, err := Analyze(prog, opts)
	if err != nil {
		panic(fmt.Sprintf("fortran.MustAnalyze: %v", err))
	}
	return info
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.info.Errors = append(c.info.Errors, errf(pos, format, args...))
}

// collect builds the module and procedure maps and assigns indices/slots.
func (c *checker) collect() {
	p := c.prog
	p.ModMap = make(map[string]*Module, len(p.Modules))
	p.ProcMap = make(map[string]*Procedure)
	p.AllProcs = nil
	for i, m := range p.Modules {
		if _, dup := p.ModMap[m.Name]; dup {
			c.errorf(m.Pos, "duplicate module %q", m.Name)
			continue
		}
		m.Index = i
		p.ModMap[m.Name] = m
		for slot, d := range m.Decls {
			d.Slot = slot
			d.InMod = m
			d.Proc = nil
		}
		for _, pr := range m.Procs {
			pr.Module = m
			c.registerProc(pr)
		}
	}
	if p.Main != nil {
		p.Main.Module = nil
		c.registerProc(p.Main)
	}
	// Verify use targets exist.
	check := func(pos Pos, uses []string) {
		for _, u := range uses {
			if _, ok := p.ModMap[u]; !ok {
				c.errorf(pos, "use of undefined module %q", u)
			}
		}
	}
	for _, m := range p.Modules {
		check(m.Pos, m.Uses)
		for _, pr := range m.Procs {
			check(pr.Pos, pr.Uses)
		}
	}
	if p.Main != nil {
		check(p.Main.Pos, p.Main.Uses)
	}
}

func (c *checker) registerProc(pr *Procedure) {
	q := pr.QName()
	if _, dup := c.prog.ProcMap[q]; dup {
		c.errorf(pr.Pos, "duplicate procedure %q", q)
		return
	}
	pr.Index = len(c.prog.AllProcs)
	c.prog.ProcMap[q] = pr
	c.prog.AllProcs = append(c.prog.AllProcs, pr)
}

func (c *checker) checkModuleDecl(m *Module, d *VarDecl) {
	if d.IsParam && d.Init == nil {
		c.errorf(d.Pos, "parameter %q lacks an initializer", d.Name)
	}
	if d.Init != nil {
		c.proc = nil
		c.local = nil
		d.Init = c.checkExpr(d.Init, m)
	}
	for i := range d.Dims {
		dim := &d.Dims[i]
		if dim.Assumed {
			c.errorf(d.Pos, "module array %q may not be assumed-shape", d.Name)
			continue
		}
		if dim.Lo != nil {
			dim.Lo = c.checkExpr(dim.Lo, m)
		}
		dim.Hi = c.checkExpr(dim.Hi, m)
	}
}

// bindProc assigns slots and resolves dummy-argument and result
// declarations, without touching the body.
func (c *checker) bindProc(pr *Procedure) {
	local := make(map[string]*VarDecl, len(pr.Decls))
	for slot, d := range pr.Decls {
		if _, dup := local[d.Name]; dup {
			c.errorf(d.Pos, "duplicate declaration of %q in %s", d.Name, pr.QName())
			continue
		}
		d.Slot = slot
		d.Proc = pr
		d.InMod = pr.Module
		local[d.Name] = d
	}
	pr.NumSlots = len(pr.Decls)

	// Dummy arguments must be declared.
	pr.ParamDecl = make([]*VarDecl, len(pr.Params))
	for i, name := range pr.Params {
		d, ok := local[name]
		if !ok {
			c.errorf(pr.Pos, "dummy argument %q of %s is not declared", name, pr.QName())
			continue
		}
		d.IsArg = true
		pr.ParamDecl[i] = d
	}
	if pr.Kind == KFunction {
		d, ok := local[pr.ResultName]
		if !ok {
			c.errorf(pr.Pos, "function result %q of %s is not declared", pr.ResultName, pr.QName())
		} else {
			pr.Result = d
		}
	}
}

func (c *checker) checkProc(pr *Procedure) {
	c.proc = pr
	c.local = make(map[string]*VarDecl, len(pr.Decls))
	for _, d := range pr.Decls {
		c.local[d.Name] = d
	}

	mod := pr.Module
	for _, d := range pr.Decls {
		if d.IsParam && d.Init == nil {
			c.errorf(d.Pos, "parameter %q lacks an initializer", d.Name)
		}
		if d.Init != nil {
			if !d.IsParam {
				c.errorf(d.Pos, "only PARAMETER declarations may be initialized (%q)", d.Name)
			}
			d.Init = c.checkExpr(d.Init, mod)
		}
		for i := range d.Dims {
			dim := &d.Dims[i]
			if dim.Assumed {
				if !d.IsArg {
					c.errorf(d.Pos, "assumed-shape array %q must be a dummy argument", d.Name)
				}
				continue
			}
			if dim.Lo != nil {
				dim.Lo = c.checkExpr(dim.Lo, mod)
			}
			dim.Hi = c.checkExpr(dim.Hi, mod)
		}
	}
	c.checkStmts(pr.Body, mod)
}

func (c *checker) checkStmts(stmts []Stmt, mod *Module) {
	for _, s := range stmts {
		c.checkStmt(s, mod)
	}
}

func (c *checker) checkStmt(s Stmt, mod *Module) {
	switch s := s.(type) {
	case *AssignStmt:
		s.LHS = c.checkExpr(s.LHS, mod)
		s.RHS = c.checkExpr(s.RHS, mod)
		c.checkAssign(s)
	case *IfStmt:
		s.Cond = c.checkExpr(s.Cond, mod)
		if t := s.Cond.Type(); t.Base != TLogical && t.Base != TInvalid {
			c.errorf(s.Pos, "IF condition must be logical, got %s", t)
		}
		c.checkStmts(s.Then, mod)
		c.checkStmts(s.Else, mod)
	case *DoStmt:
		v := c.checkExpr(s.Var, mod)
		vr, ok := v.(*VarRef)
		if !ok || vr.Typ.Base != TInteger || vr.Typ.Rank != 0 {
			c.errorf(s.Pos, "DO variable must be a scalar integer")
		} else {
			s.Var = vr
		}
		s.From = c.checkIntExpr(s.From, mod, "DO lower bound")
		s.To = c.checkIntExpr(s.To, mod, "DO upper bound")
		if s.Step != nil {
			s.Step = c.checkIntExpr(s.Step, mod, "DO step")
		}
		c.checkStmts(s.Body, mod)
	case *DoWhileStmt:
		s.Cond = c.checkExpr(s.Cond, mod)
		if t := s.Cond.Type(); t.Base != TLogical && t.Base != TInvalid {
			c.errorf(s.Pos, "DO WHILE condition must be logical, got %s", t)
		}
		c.checkStmts(s.Body, mod)
	case *CallStmt:
		c.checkCallStmt(s, mod)
	case *PrintStmt:
		for i, a := range s.Args {
			s.Args[i] = c.checkExpr(a, mod)
		}
	case *StopStmt:
		if s.Code != nil {
			s.Code = c.checkExpr(s.Code, mod)
		}
	case *ReturnStmt, *ExitStmt, *CycleStmt:
	default:
		c.errorf(s.StmtPos(), "internal: unknown statement %T", s)
	}
}

func (c *checker) checkAssign(s *AssignStmt) {
	lt := s.LHS.Type()
	rt := s.RHS.Type()
	if lt.Base == TInvalid || rt.Base == TInvalid {
		return
	}
	switch s.LHS.(type) {
	case *VarRef, *IndexExpr:
	default:
		c.errorf(s.Pos, "assignment target must be a variable or array element")
		return
	}
	if vr, ok := s.LHS.(*VarRef); ok && vr.Decl != nil && vr.Decl.IsParam {
		c.errorf(s.Pos, "cannot assign to PARAMETER %q", vr.Name)
	}
	numeric := func(t Type) bool { return t.Base == TReal || t.Base == TInteger }
	switch {
	case numeric(lt) && numeric(rt):
		// Implicit conversion through assignment is permitted; the
		// interpreter counts the cast. Ranks must agree, except that a
		// scalar may be broadcast to an array.
		if lt.Rank != rt.Rank && rt.Rank != 0 {
			c.errorf(s.Pos, "rank mismatch in assignment (%s = %s)", lt, rt)
		}
	case lt.Base == TLogical && rt.Base == TLogical && lt.Rank == rt.Rank:
	default:
		c.errorf(s.Pos, "cannot assign %s to %s", rt, lt)
	}
}

func (c *checker) checkIntExpr(e Expr, mod *Module, what string) Expr {
	e = c.checkExpr(e, mod)
	if t := e.Type(); t.Base != TInteger && t.Base != TInvalid || t.Rank != 0 {
		c.errorf(e.ExprPos(), "%s must be a scalar integer, got %s", what, e.Type())
	}
	return e
}

// lookupVar resolves a variable name: local scope, then the enclosing
// module, then modules used by the procedure or its module.
func (c *checker) lookupVar(name string, mod *Module) *VarDecl {
	if c.local != nil {
		if d, ok := c.local[name]; ok {
			return d
		}
	}
	seen := map[string]bool{}
	var search func(m *Module) *VarDecl
	search = func(m *Module) *VarDecl {
		if m == nil || seen[m.Name] {
			return nil
		}
		seen[m.Name] = true
		for _, d := range m.Decls {
			if d.Name == name {
				return d
			}
		}
		for _, u := range m.Uses {
			if d := search(c.prog.ModMap[u]); d != nil {
				return d
			}
		}
		return nil
	}
	if d := search(mod); d != nil {
		return d
	}
	if c.proc != nil {
		for _, u := range c.proc.Uses {
			if d := search(c.prog.ModMap[u]); d != nil {
				return d
			}
		}
	}
	return nil
}

// lookupProc resolves a procedure name: the enclosing module first, then
// a unique match across all modules.
func (c *checker) lookupProc(name string, mod *Module) *Procedure {
	if mod != nil {
		if pr, ok := c.prog.ProcMap[mod.Name+"."+name]; ok {
			return pr
		}
	}
	var found *Procedure
	count := 0
	// Deterministic iteration for stable diagnostics.
	keys := make([]string, 0, len(c.prog.ProcMap))
	for k := range c.prog.ProcMap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pr := c.prog.ProcMap[k]
		if pr.Name == name {
			found = pr
			count++
		}
	}
	if count == 1 {
		return found
	}
	return nil
}

func (c *checker) checkCallStmt(s *CallStmt, mod *Module) {
	for i, a := range s.Args {
		s.Args[i] = c.checkExpr(a, mod)
	}
	if sig, ok := intrinsicSubs[s.Name]; ok {
		s.Intrinsic = s.Name
		s.Proc = nil
		if sig.nargs >= 0 && len(s.Args) != sig.nargs {
			c.errorf(s.Pos, "intrinsic %s expects %d argument(s), got %d", s.Name, sig.nargs, len(s.Args))
		}
		return
	}
	pr := c.lookupProc(s.Name, mod)
	if pr == nil {
		c.errorf(s.Pos, "call to undefined subroutine %q", s.Name)
		return
	}
	if pr.Kind != KSubroutine {
		c.errorf(s.Pos, "%q is not a subroutine", s.Name)
		return
	}
	s.Proc = pr
	c.checkArgs(pr, s.Args, s.Pos, s, nil)
}

// checkArgs validates actual-vs-dummy argument compatibility and records
// real-kind mismatches.
func (c *checker) checkArgs(pr *Procedure, args []Expr, pos Pos, cs *CallStmt, ce *CallExpr) {
	c.info.CallSites = append(c.info.CallSites, CallSite{
		Caller: c.proc, Callee: pr, Args: args, Pos: pos,
	})
	if len(args) != len(pr.Params) {
		c.errorf(pos, "%s expects %d argument(s), got %d", pr.QName(), len(pr.Params), len(args))
		return
	}
	for i, arg := range args {
		dummy := pr.ParamDecl[i]
		if dummy == nil {
			continue
		}
		at := arg.Type()
		dt := dummy.Type()
		if at.Base == TInvalid {
			continue
		}
		if at.Base != dt.Base {
			c.errorf(arg.ExprPos(), "argument %d of %s: cannot pass %s to %s dummy %q",
				i+1, pr.QName(), at, dt, dummy.Name)
			continue
		}
		if at.Rank != dt.Rank {
			c.errorf(arg.ExprPos(), "argument %d of %s: rank mismatch (%d vs %d)",
				i+1, pr.QName(), at.Rank, dt.Rank)
			continue
		}
		if dummy.Intent == IntentOut || dummy.Intent == IntentInOut || at.Rank > 0 {
			// Must be passable by reference.
			switch arg.(type) {
			case *VarRef, *IndexExpr:
			default:
				if dummy.Intent != IntentIn && dummy.Intent != IntentNone || at.Rank > 0 {
					c.errorf(arg.ExprPos(), "argument %d of %s must be a variable (dummy %q has intent(%s))",
						i+1, pr.QName(), dummy.Name, dummy.Intent)
					continue
				}
			}
		}
		if at.Base == TReal && at.Kind != dt.Kind {
			if ConstReal(arg) {
				// Kind-polymorphic constants adopt the dummy's kind.
				continue
			}
			m := Mismatch{
				Caller: c.proc, Callee: pr, CallStmt: cs, CallExpr: ce,
				ArgIndex: i, Arg: arg, From: at.Kind, To: dt.Kind,
				IsArray: at.Rank > 0,
			}
			c.info.Mismatches = append(c.info.Mismatches, m)
			if !c.opts.AllowKindMismatch {
				c.errorf(arg.ExprPos(),
					"argument %d of %s: real kind mismatch (actual kind=%d, dummy %q kind=%d); Fortran converts kinds only through assignment",
					i+1, pr.QName(), at.Kind, dummy.Name, dt.Kind)
			}
		}
	}
}

// checkExpr resolves and types e, returning a possibly rewritten node.
func (c *checker) checkExpr(e Expr, mod *Module) Expr {
	switch e := e.(type) {
	case *IntLit, *RealLit, *LogicalLit, *StrLit:
		return e
	case *VarRef:
		d := c.lookupVar(e.Name, mod)
		if d == nil {
			c.errorf(e.Pos, "undefined variable %q", e.Name)
			e.Typ = Type{}
			return e
		}
		e.Decl = d
		e.Typ = d.Type()
		return e
	case *UnExpr:
		e.X = c.checkExpr(e.X, mod)
		xt := e.X.Type()
		switch e.Op {
		case MINUS, PLUS:
			if xt.Base != TReal && xt.Base != TInteger && xt.Base != TInvalid || xt.Rank != 0 {
				c.errorf(e.Pos, "unary %v requires a scalar numeric operand, got %s", e.Op, xt)
			}
			e.Typ = xt
		case NOT:
			if xt.Base != TLogical && xt.Base != TInvalid {
				c.errorf(e.Pos, ".not. requires a logical operand, got %s", xt)
			}
			e.Typ = Type{Base: TLogical}
		}
		return e
	case *BinExpr:
		e.X = c.checkExpr(e.X, mod)
		e.Y = c.checkExpr(e.Y, mod)
		e.Typ = c.binType(e)
		return e
	case *ApplyExpr:
		return c.resolveApply(e, mod)
	case *CallExpr:
		// Already resolved (Analyze re-run), or renamed by a transform
		// pass (Proc reset to nil): re-resolve by name if needed.
		for i, a := range e.Args {
			e.Args[i] = c.checkExpr(a, mod)
		}
		if e.Proc == nil && e.Intrinsic == "" {
			if _, ok := intrinsicFuncs[e.Name]; ok {
				e.Intrinsic = e.Name
			} else if pr := c.lookupProc(e.Name, mod); pr != nil && pr.Kind == KFunction {
				e.Proc = pr
				if pr.Result != nil {
					e.Typ = pr.Result.Type()
				}
			} else {
				c.errorf(e.Pos, "undefined function %q", e.Name)
				return e
			}
		}
		if e.Proc != nil {
			if e.Proc.Result != nil {
				e.Typ = e.Proc.Result.Type()
			}
			c.checkArgs(e.Proc, e.Args, e.Pos, nil, e)
		} else if e.Intrinsic != "" {
			e.Typ = c.intrinsicType(e)
		}
		return e
	case *IndexExpr:
		for i, a := range e.Indices {
			e.Indices[i] = c.checkIntExpr(a, mod, "array index")
		}
		ref := c.checkExpr(e.Arr, mod)
		e.Arr = ref.(*VarRef)
		if d := e.Arr.Decl; d != nil {
			e.Typ = Type{Base: d.Base, Kind: d.Kind}
		}
		return e
	default:
		c.errorf(e.ExprPos(), "internal: unknown expression %T", e)
		return e
	}
}

func (c *checker) binType(e *BinExpr) Type {
	xt, yt := e.X.Type(), e.Y.Type()
	if xt.Base == TInvalid || yt.Base == TInvalid {
		return Type{}
	}
	numeric := func(t Type) bool {
		return (t.Base == TReal || t.Base == TInteger) && t.Rank == 0
	}
	switch e.Op {
	case PLUS, MINUS, STAR, SLASH, POW:
		if !numeric(xt) || !numeric(yt) {
			c.errorf(e.Pos, "operator %v requires scalar numeric operands (got %s, %s); write array operations as DO loops", e.Op, xt, yt)
			return Type{}
		}
		return promotePoly(e.X, e.Y, xt, yt)
	case EQ, NE, LT, LE, GT, GE:
		if !numeric(xt) || !numeric(yt) {
			if xt.Base == TLogical && yt.Base == TLogical && (e.Op == EQ || e.Op == NE) {
				return Type{Base: TLogical}
			}
			c.errorf(e.Pos, "comparison %v requires scalar numeric operands (got %s, %s)", e.Op, xt, yt)
			return Type{}
		}
		// The comparison is performed at the polymorphic operand kind;
		// record it in Kind (the result base remains logical).
		opk := promotePoly(e.X, e.Y, xt, yt)
		return Type{Base: TLogical, Kind: opk.Kind}
	case AND, OR:
		if xt.Base != TLogical || yt.Base != TLogical {
			c.errorf(e.Pos, "operator %v requires logical operands (got %s, %s)", e.Op, xt, yt)
		}
		return Type{Base: TLogical}
	default:
		c.errorf(e.Pos, "internal: unknown binary operator %v", e.Op)
		return Type{}
	}
}

// promote computes the result type of a numeric binary operation:
// real(8) > real(4) > integer.
func promote(x, y Type) Type {
	if x.Base == TReal || y.Base == TReal {
		k := 4
		if x.Base == TReal && x.Kind == 8 || y.Base == TReal && y.Kind == 8 {
			k = 8
		}
		return Type{Base: TReal, Kind: k}
	}
	return Type{Base: TInteger}
}

// ConstReal reports whether e is a compile-time real constant: a real
// literal, a signed real literal, or a reference to a real PARAMETER.
//
// FT treats such constants as *kind-polymorphic*: combined with a real
// variable of either kind they adopt the variable's kind, the way
// weather/climate codes write constants with the working-precision kind
// parameter (2.0_RKIND). This is what lets a declaration-only precision
// transformation produce uniformly low-precision loops — without it,
// every d0 literal would drag lowered code back to 64-bit arithmetic.
func ConstReal(e Expr) bool {
	switch e := e.(type) {
	case *RealLit:
		return true
	case *UnExpr:
		return (e.Op == MINUS || e.Op == PLUS) && ConstReal(e.X)
	case *VarRef:
		return e.Decl != nil && e.Decl.IsParam && e.Decl.Base == TReal
	}
	return false
}

// promotePoly is promote with kind-polymorphic constants: when exactly
// one real operand is a constant, the result takes the other operand's
// kind.
func promotePoly(xe, ye Expr, x, y Type) Type {
	if x.Base == TReal && y.Base == TReal && x.Kind != y.Kind {
		cx, cy := ConstReal(xe), ConstReal(ye)
		if cx && !cy {
			return Type{Base: TReal, Kind: y.Kind}
		}
		if cy && !cx {
			return Type{Base: TReal, Kind: x.Kind}
		}
	}
	// An integer combined with a real constant adopts the constant's
	// kind as written.
	return promote(x, y)
}

// resolveApply rewrites name(args) into an array index or a call.
func (c *checker) resolveApply(e *ApplyExpr, mod *Module) Expr {
	if d := c.lookupVar(e.Name, mod); d != nil && d.IsArray() {
		idx := &IndexExpr{Pos: e.Pos, Arr: &VarRef{Pos: e.Pos, Name: e.Name}, Indices: e.Args}
		if len(e.Args) != len(d.Dims) {
			c.errorf(e.Pos, "array %q has rank %d but %d index(es) given", e.Name, len(d.Dims), len(e.Args))
		}
		return c.checkExpr(idx, mod)
	}
	call := &CallExpr{Pos: e.Pos, Name: e.Name, Args: e.Args}
	for i, a := range call.Args {
		call.Args[i] = c.checkExpr(a, mod)
	}
	if _, ok := intrinsicFuncs[e.Name]; ok {
		call.Intrinsic = e.Name
		call.Typ = c.intrinsicType(call)
		return call
	}
	pr := c.lookupProc(e.Name, mod)
	if pr == nil {
		c.errorf(e.Pos, "undefined function or array %q", e.Name)
		return call
	}
	if pr.Kind != KFunction {
		c.errorf(e.Pos, "%q is a subroutine, not a function", e.Name)
		return call
	}
	call.Proc = pr
	if pr.Result != nil {
		call.Typ = pr.Result.Type()
	}
	c.checkArgs(pr, call.Args, call.Pos, nil, call)
	return call
}

// Intrinsic signatures -------------------------------------------------------

type intrinsicSig struct {
	nargs int // -1: variadic or special-cased
	// result computes the call's type; nil means "same as first argument".
	result func(c *checker, e *CallExpr) Type
}

func realOf(kind int) Type { return Type{Base: TReal, Kind: kind} }

var intType = Type{Base: TInteger}

// intrinsicFuncs are the supported intrinsic functions.
var intrinsicFuncs = map[string]intrinsicSig{
	"abs": {1, nil}, "sqrt": {1, nil}, "exp": {1, nil}, "log": {1, nil},
	"log10": {1, nil}, "sin": {1, nil}, "cos": {1, nil}, "tan": {1, nil},
	"asin": {1, nil}, "acos": {1, nil}, "atan": {1, nil},
	"sinh": {1, nil}, "cosh": {1, nil}, "tanh": {1, nil},
	"aint": {1, nil}, "anint": {1, nil},
	"atan2": {2, nil}, "sign": {2, nil}, "mod": {2, nil},
	"min": {-1, nil}, "max": {-1, nil},
	"int":   {1, func(*checker, *CallExpr) Type { return intType }},
	"nint":  {1, func(*checker, *CallExpr) Type { return intType }},
	"floor": {1, func(*checker, *CallExpr) Type { return intType }},
	"real": {-1, func(c *checker, e *CallExpr) Type {
		kind := 4
		if len(e.Args) == 2 {
			if lit, ok := e.Args[1].(*IntLit); ok && (lit.Val == 4 || lit.Val == 8) {
				kind = int(lit.Val)
			} else {
				c.errorf(e.Pos, "second argument of real() must be the literal 4 or 8")
			}
		} else if len(e.Args) != 1 {
			c.errorf(e.Pos, "real() expects 1 or 2 arguments")
		}
		return realOf(kind)
	}},
	"dble": {1, func(*checker, *CallExpr) Type { return realOf(8) }},
	"size": {-1, func(c *checker, e *CallExpr) Type {
		if len(e.Args) < 1 || len(e.Args) > 2 {
			c.errorf(e.Pos, "size() expects 1 or 2 arguments")
			return intType
		}
		if t := e.Args[0].Type(); t.Rank == 0 && t.Base != TInvalid {
			c.errorf(e.Pos, "size() requires an array argument")
		}
		if len(e.Args) == 2 {
			if t := e.Args[1].Type(); t.Base != TInteger && t.Base != TInvalid {
				c.errorf(e.Pos, "size() dim argument must be an integer")
			}
		}
		return intType
	}},
	"epsilon": {1, epsLikeType}, "huge": {1, epsLikeType}, "tiny": {1, epsLikeType},
	"sum": {1, reduceType}, "minval": {1, reduceType}, "maxval": {1, reduceType},
	"dot_product": {2, func(c *checker, e *CallExpr) Type {
		t := promoteArrays(e)
		for _, a := range e.Args {
			if a.Type().Rank != 1 && a.Type().Base != TInvalid {
				c.errorf(e.Pos, "dot_product requires rank-1 array arguments")
			}
		}
		return t
	}},
	"isnan": {1, func(*checker, *CallExpr) Type { return Type{Base: TLogical} }},
}

func epsLikeType(c *checker, e *CallExpr) Type {
	t := e.Args[0].Type()
	if t.Base != TReal && t.Base != TInvalid {
		c.errorf(e.Pos, "%s() requires a real argument", e.Name)
		return realOf(8)
	}
	return realOf(t.Kind)
}

func reduceType(c *checker, e *CallExpr) Type {
	t := e.Args[0].Type()
	if t.Rank == 0 && t.Base != TInvalid {
		c.errorf(e.Pos, "%s() requires an array argument", e.Name)
	}
	return Type{Base: t.Base, Kind: t.Kind}
}

// promoteArrays computes the promoted element type of an intrinsic's
// arguments, letting kind-polymorphic constants follow the variables.
func promoteArrays(e *CallExpr) Type {
	t := Type{Base: TInteger}
	anyVar := false
	for _, a := range e.Args {
		at := a.Type()
		if at.Base == TReal && ConstReal(a) {
			continue
		}
		anyVar = true
		t = promote(t, Type{Base: at.Base, Kind: at.Kind})
	}
	if !anyVar || t.Base != TReal {
		// All-constant (or integer-only) arguments: fall back to the
		// constants' written kinds.
		for _, a := range e.Args {
			at := a.Type()
			t = promote(t, Type{Base: at.Base, Kind: at.Kind})
		}
	}
	return t
}

// intrinsicSubs are the supported intrinsic subroutines.
// mpi_allreduce_sum models a sum-reduction across the configured MPI
// ranks: numerically the identity on a single rank's data, but the
// machine model charges a non-vectorizable latency cost (see
// internal/perfmodel).
var intrinsicSubs = map[string]intrinsicSig{
	"mpi_allreduce_sum": {1, nil},
	"mpi_allreduce_max": {1, nil},
}

func (c *checker) intrinsicType(e *CallExpr) Type {
	sig := intrinsicFuncs[e.Intrinsic]
	if sig.nargs >= 0 && len(e.Args) != sig.nargs {
		c.errorf(e.Pos, "intrinsic %s expects %d argument(s), got %d", e.Name, sig.nargs, len(e.Args))
		return Type{}
	}
	if sig.nargs == -1 && (e.Name == "min" || e.Name == "max") {
		if len(e.Args) < 2 {
			c.errorf(e.Pos, "intrinsic %s expects at least 2 arguments", e.Name)
			return Type{}
		}
	}
	if sig.result != nil {
		return sig.result(c, e)
	}
	// Elemental numeric: result has the promoted type of the arguments,
	// except single-argument math functions which keep their input type.
	t := promoteArrays(e)
	for _, a := range e.Args {
		if at := a.Type(); at.Rank != 0 && at.Base != TInvalid {
			c.errorf(e.Pos, "intrinsic %s requires scalar arguments", e.Name)
		}
	}
	switch e.Name {
	case "sqrt", "exp", "log", "log10", "sin", "cos", "tan",
		"asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "aint", "anint":
		if t.Base != TReal {
			// Fortran requires real arguments for these.
			c.errorf(e.Pos, "intrinsic %s requires real argument(s)", e.Name)
			return realOf(8)
		}
	}
	return t
}

// IsIntrinsicFunc reports whether name is a supported intrinsic function.
func IsIntrinsicFunc(name string) bool {
	_, ok := intrinsicFuncs[name]
	return ok
}

// IsIntrinsicSub reports whether name is a supported intrinsic subroutine.
func IsIntrinsicSub(name string) bool {
	_, ok := intrinsicSubs[name]
	return ok
}
