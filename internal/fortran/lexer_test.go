package fortran

import (
	"math"
	"testing"
	"testing/quick"
)

func lexKinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, errs := Lex(src)
	if len(errs) > 0 {
		t.Fatalf("Lex(%q) errors: %v", src, errs[0])
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func TestLexOperators(t *testing.T) {
	got := lexKinds(t, "a = b ** 2 + c / d .and. x /= y")
	want := []TokKind{IDENT, ASSIGN, IDENT, POW, INT, PLUS, IDENT, SLASH,
		IDENT, AND, IDENT, NE, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexRealLiterals(t *testing.T) {
	tests := []struct {
		src  string
		val  float64
		kind int
	}{
		{"1.5", 1.5, 4},
		{"1.5e3", 1500, 4},
		{"1.5d3", 1500, 8},
		{"1.5_8", 1.5, 8},
		{"1.5_4", 1.5, 4},
		{"2.0d0", 2, 8},
		{"0.25e-2", 0.0025, 4},
		{".5", 0.5, 4},
		{"3.", 3, 4},
		{"1e10", 1e10, 4},
	}
	for _, tt := range tests {
		toks, errs := Lex(tt.src)
		if len(errs) > 0 {
			t.Errorf("Lex(%q): %v", tt.src, errs[0])
			continue
		}
		if toks[0].Kind != REAL {
			t.Errorf("Lex(%q): got kind %v, want REAL", tt.src, toks[0].Kind)
			continue
		}
		if toks[0].Real != tt.val || toks[0].RK != tt.kind {
			t.Errorf("Lex(%q) = (%g, kind %d), want (%g, kind %d)",
				tt.src, toks[0].Real, toks[0].RK, tt.val, tt.kind)
		}
	}
}

func TestLexIntegerVsDotOp(t *testing.T) {
	// "1.and." must lex as INT AND, not a malformed real literal.
	got := lexKinds(t, "if (x == 1 .and. y == 2.) exit")
	want := []TokKind{IDENT, LPAREN, IDENT, EQ, INT, AND, IDENT, EQ, REAL,
		RPAREN, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexContinuation(t *testing.T) {
	src := "x = a + &\n    b\ny = 1"
	toks, errs := Lex(src)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	// Expect no NEWLINE between "+" and "b".
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{IDENT, ASSIGN, IDENT, PLUS, IDENT, NEWLINE, IDENT,
		ASSIGN, INT, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexContinuationLeadingAmp(t *testing.T) {
	src := "x = a + &\n  & b"
	toks, errs := Lex(src)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[4].Kind != IDENT || toks[4].Text != "b" {
		t.Errorf("continued token: got %v, want identifier b", toks[4])
	}
}

func TestLexCommentsSkipped(t *testing.T) {
	got := lexKinds(t, "x = 1 ! comment with 'junk' ** tokens\ny = 2")
	want := []TokKind{IDENT, ASSIGN, INT, NEWLINE, IDENT, ASSIGN, INT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexDirective(t *testing.T) {
	toks, errs := Lex("!dir$ novector\ndo i = 1, n")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[0].Kind != DIRECTIVE || toks[0].Text != "novector" {
		t.Errorf("got %v %q, want DIRECTIVE novector", toks[0].Kind, toks[0].Text)
	}
}

func TestLexCaseInsensitive(t *testing.T) {
	toks, _ := Lex("REAL :: Foo_Bar")
	if toks[0].Text != "real" || toks[2].Text != "foo_bar" {
		t.Errorf("identifiers not lower-cased: %v %v", toks[0], toks[2])
	}
}

func TestLexEndFusedKeywords(t *testing.T) {
	toks, errs := Lex("enddo\nendif")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[0].Text != "end" || toks[1].Text != "do" {
		t.Errorf("enddo: got %v %v", toks[0], toks[1])
	}
	if toks[3].Text != "end" || toks[4].Text != "if" {
		t.Errorf("endif: got %v %v", toks[3], toks[4])
	}
}

func TestLexStrings(t *testing.T) {
	toks, errs := Lex(`print *, 'it''s fine', "double"`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[3].Kind != STRING || toks[3].Text != "it's fine" {
		t.Errorf("got %v", toks[3])
	}
	if toks[5].Kind != STRING || toks[5].Text != "double" {
		t.Errorf("got %v", toks[5])
	}
}

func TestLexUnterminatedString(t *testing.T) {
	_, errs := Lex("print *, 'oops\nx = 1")
	if len(errs) == 0 {
		t.Fatal("expected error for unterminated string")
	}
}

func TestLexBadKindSuffix(t *testing.T) {
	_, errs := Lex("x = 1.0_16")
	if len(errs) == 0 {
		t.Fatal("expected error for unsupported kind suffix")
	}
}

// Property: any finite float64 printed in Go 'g' format with a d0 suffix
// round-trips through the lexer.
func TestLexRealRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Abs(v)
		lit := &RealLit{Val: v, Kind: 8}
		toks, errs := Lex(ExprString(lit))
		if len(errs) > 0 || toks[0].Kind != REAL {
			return false
		}
		return toks[0].Real == v && toks[0].RK == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("x = 1\n  y = 2")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos.Line != 2 || toks[4].Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", toks[4].Pos)
	}
}
