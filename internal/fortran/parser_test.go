package fortran

import (
	"strings"
	"testing"
)

const miniModule = `
module phys
  implicit none
  integer, parameter :: n = 64
  real(kind=8) :: field(n)
contains
  function fun(x) result(y)
    real(kind=8), intent(in) :: x
    real(kind=8) :: y
    y = x + 0.5d0 * sin(2.0d0 * x)
  end function fun

  subroutine advance(u, dt)
    real(kind=8), intent(inout) :: u(:)
    real(kind=8), intent(in) :: dt
    integer :: i
    do i = 1, size(u)
      u(i) = u(i) + dt * fun(u(i))
    end do
  end subroutine advance
end module phys

program main
  use phys
  implicit none
  real(kind=8) :: dt
  dt = 0.01d0
  call advance(field, dt)
end program main
`

func TestParseMiniModule(t *testing.T) {
	prog, err := Parse(miniModule)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(prog.Modules))
	}
	m := prog.Modules[0]
	if m.Name != "phys" {
		t.Errorf("module name %q", m.Name)
	}
	if len(m.Procs) != 2 {
		t.Fatalf("got %d procs, want 2", len(m.Procs))
	}
	if m.Procs[0].Kind != KFunction || m.Procs[0].ResultName != "y" {
		t.Errorf("fun: kind=%v result=%q", m.Procs[0].Kind, m.Procs[0].ResultName)
	}
	if m.Procs[1].Kind != KSubroutine || len(m.Procs[1].Params) != 2 {
		t.Errorf("advance: kind=%v params=%v", m.Procs[1].Kind, m.Procs[1].Params)
	}
	if prog.Main == nil || prog.Main.Name != "main" {
		t.Fatalf("missing main program")
	}
	if len(prog.Main.Uses) != 1 || prog.Main.Uses[0] != "phys" {
		t.Errorf("main uses = %v", prog.Main.Uses)
	}
}

func TestParseDeclarations(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8), parameter :: pi = 3.14159d0
  real(kind=4) :: a, b(10), c(0:9, 5)
  real :: defk
  double precision :: d
  integer :: i = 3
  logical :: ok
end module m
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	decls := prog.Modules[0].Decls
	byName := map[string]*VarDecl{}
	for _, d := range decls {
		byName[d.Name] = d
	}
	if len(decls) != 8 {
		t.Fatalf("got %d decls, want 8 (multi-name lines split)", len(decls))
	}
	if d := byName["pi"]; !d.IsParam || d.Kind != 8 || d.Init == nil {
		t.Errorf("pi: %+v", d)
	}
	if d := byName["b"]; len(d.Dims) != 1 || d.Kind != 4 {
		t.Errorf("b: %+v", d)
	}
	if d := byName["c"]; len(d.Dims) != 2 || d.Dims[0].Lo == nil {
		t.Errorf("c: %+v", d)
	}
	if d := byName["defk"]; d.Kind != 4 {
		t.Errorf("default real kind = %d, want 4", d.Kind)
	}
	if d := byName["d"]; d.Kind != 8 {
		t.Errorf("double precision kind = %d, want 8", d.Kind)
	}
	if d := byName["ok"]; d.Base != TLogical {
		t.Errorf("ok: %+v", d)
	}
}

func TestParseIfChain(t *testing.T) {
	src := `
program p
  implicit none
  integer :: x, y
  x = 1
  if (x > 0) then
    y = 1
  else if (x < 0) then
    y = -1
  else
    y = 0
  end if
  if (x == 3) y = 9
end program p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := prog.Main.Body
	ifs, ok := body[1].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", body[1])
	}
	if len(ifs.Else) != 1 {
		t.Fatalf("else arm: %d stmts", len(ifs.Else))
	}
	elif, ok := ifs.Else[0].(*IfStmt)
	if !ok || !elif.ElseIf {
		t.Fatalf("else-if not nested: %T", ifs.Else[0])
	}
	if len(elif.Else) != 1 {
		t.Errorf("final else: %d stmts", len(elif.Else))
	}
	oneLine, ok := body[2].(*IfStmt)
	if !ok || len(oneLine.Then) != 1 || oneLine.Else != nil {
		t.Errorf("single-line if: %+v", body[2])
	}
}

func TestParseLoops(t *testing.T) {
	src := `
program p
  implicit none
  integer :: i
  real(kind=8) :: s
  s = 0.0d0
  do i = 1, 10, 2
    s = s + 1.0d0
    if (s > 4.0d0) exit
  end do
  do while (s > 0.0d0)
    s = s - 1.0d0
    cycle
  end do
!dir$ novector
  do i = 1, 3
    s = s + 1.0d0
  enddo
end program p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := prog.Main.Body
	d, ok := body[1].(*DoStmt)
	if !ok || d.Step == nil {
		t.Fatalf("counted do: %T", body[1])
	}
	if _, ok := body[2].(*DoWhileStmt); !ok {
		t.Fatalf("do while: %T", body[2])
	}
	nv, ok := body[3].(*DoStmt)
	if !ok || !nv.NoVector {
		t.Fatalf("!dir$ novector not applied: %+v", body[3])
	}
}

func TestParsePrecedence(t *testing.T) {
	// -a**2 must parse as -(a**2); a-b-c as (a-b)-c; a**b**c as a**(b**c).
	src := "program p\nimplicit none\nreal(kind=8) :: a, b, c, r\nr = -a**2 + b - c\nend program p"
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	as := prog.Main.Body[0].(*AssignStmt)
	// ((-a**2) + b) - c
	top, ok := as.RHS.(*BinExpr)
	if !ok || top.Op != MINUS {
		t.Fatalf("top op: %v", as.RHS)
	}
	add, ok := top.X.(*BinExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("second level: %v", ExprString(top.X))
	}
	neg, ok := add.X.(*UnExpr)
	if !ok || neg.Op != MINUS {
		t.Fatalf("unary: %v", ExprString(add.X))
	}
	if pow, ok := neg.X.(*BinExpr); !ok || pow.Op != POW {
		t.Fatalf("-a**2 did not bind as -(a**2): %v", ExprString(neg.X))
	}
}

func TestParseRightAssocPow(t *testing.T) {
	src := "program p\nimplicit none\nreal(kind=8) :: a, r\nr = a**2**3\nend program p"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Main.Body[0].(*AssignStmt).RHS.(*BinExpr)
	if _, ok := rhs.Y.(*BinExpr); !ok {
		t.Fatalf("a**2**3 not right-associative: %s", ExprString(rhs))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module m\nimplicit none\nend module wrong\n",
		"program p\nimplicit none\nx = \nend program p",
		"junk at top level",
		"module m\nimplicit none\nreal(kind=3) :: x\nend module m",
		"program p\nimplicit none\nif (1 > 0) then\nend program p", // unclosed if
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src[:min(len(src), 40)])
		}
	}
}

func TestParseCallAndApply(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: a(5), x
  integer :: i
  i = 2
  x = a(i) + sqrt(4.0d0)
  call mpi_allreduce_sum(x)
end program p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Main.Body[1].(*AssignStmt)
	bin := as.RHS.(*BinExpr)
	if _, ok := bin.X.(*ApplyExpr); !ok {
		t.Errorf("a(i) should parse as ApplyExpr before sema, got %T", bin.X)
	}
	cs, ok := prog.Main.Body[2].(*CallStmt)
	if !ok || cs.Name != "mpi_allreduce_sum" || len(cs.Args) != 1 {
		t.Errorf("call stmt: %+v", prog.Main.Body[2])
	}
}

func TestParseRecoversAndReportsAll(t *testing.T) {
	src := "program p\nimplicit none\ninteger :: i\ni = )\ni = (\nend program p"
	p := &Parser{}
	toks, _ := Lex(src)
	p.toks = toks
	p.parseProgram()
	if len(p.errs) < 2 {
		t.Errorf("expected ≥2 diagnostics, got %d", len(p.errs))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not fortran")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParseLongContinuedExpr(t *testing.T) {
	src := "program p\nimplicit none\nreal(kind=8) :: r\nr = 1.0d0 + &\n 2.0d0 + &\n 3.0d0\nend program p"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(prog.Main.Body[0].(*AssignStmt).RHS)
	if !strings.Contains(got, "3.0_8") {
		t.Errorf("continuation lost trailing term: %s", got)
	}
}
