package fortran

import (
	"testing"
)

// exprTypeOf parses a program with kind-4 x4, kind-8 x8, parameter c8,
// and integer i, then returns the static type of "r = <expr>"'s RHS.
func exprTypeOf(t *testing.T, expr string, logical bool) Type {
	t.Helper()
	target := "r8"
	if logical {
		target = "lg"
	}
	src := `
program p
  implicit none
  real(kind=4) :: x4, y4
  real(kind=8) :: x8, y8, r8
  real(kind=8), parameter :: c8 = 2.5d0
  real(kind=4), parameter :: c4 = 1.5
  integer :: i
  logical :: lg
  ` + target + ` = ` + expr + `
end program p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	if _, err := Analyze(prog, Options{}); err != nil {
		t.Fatalf("analyze %q: %v", expr, err)
	}
	return prog.Main.Body[0].(*AssignStmt).RHS.Type()
}

// TestPolymorphicConstantKinds: constants adopt the kind of the variable
// they combine with (the _RKIND idiom; DESIGN.md §5).
func TestPolymorphicConstantKinds(t *testing.T) {
	cases := []struct {
		expr string
		kind int
	}{
		{"x4 * 2.0d0", 4},  // d0 literal follows the kind-4 variable
		{"x8 * 2.0", 8},    // default-kind literal follows kind-8
		{"x4 + c8", 4},     // kind-8 parameter follows kind-4 variable
		{"x8 + c4", 8},     // kind-4 parameter follows kind-8 variable
		{"2.0 * 3.0d0", 8}, // all-constant: written kinds promote
		{"c4 * c8", 8},     // all-parameter: written kinds promote
		{"x4 * x8", 8},     // two variables: standard promotion
		{"(2.0d0 * x4) + 1.0d0", 4},
		{"-c8 * x4", 4}, // signed constants stay polymorphic
		{"x4 ** 2.0d0", 4},
		{"i * 2.0d0", 8}, // integer with constant: written kind
	}
	for _, tc := range cases {
		got := exprTypeOf(t, tc.expr, false)
		if got.Base != TReal || got.Kind != tc.kind {
			t.Errorf("%q: type %v, want real(kind=%d)", tc.expr, got, tc.kind)
		}
	}
}

// TestComparisonRecordsOperandKind: relational results are logical but
// carry the polymorphic operand kind for the evaluator.
func TestComparisonRecordsOperandKind(t *testing.T) {
	cases := []struct {
		expr string
		kind int
	}{
		{"x4 > 2.0d0", 4},
		{"x8 > 2.0", 8},
		{"x4 > x8", 8},
	}
	for _, tc := range cases {
		got := exprTypeOf(t, tc.expr, true)
		if got.Base != TLogical {
			t.Fatalf("%q: base %v", tc.expr, got.Base)
		}
		if got.Kind != tc.kind {
			t.Errorf("%q: operand kind %d, want %d", tc.expr, got.Kind, tc.kind)
		}
	}
}

// TestConstRealPredicate covers the classifier itself.
func TestConstRealPredicate(t *testing.T) {
	src := `
program p
  implicit none
  real(kind=8) :: v
  real(kind=8), parameter :: c = 1.0d0
  integer, parameter :: n = 3
  v = c + 1.0d0
end program p
`
	prog := MustParse(src)
	MustAnalyze(prog, Options{})
	rhs := prog.Main.Body[0].(*AssignStmt).RHS.(*BinExpr)
	if !ConstReal(rhs.X) { // parameter reference
		t.Error("real parameter not ConstReal")
	}
	if !ConstReal(rhs.Y) { // literal
		t.Error("real literal not ConstReal")
	}
	if !ConstReal(&UnExpr{Op: MINUS, X: rhs.Y}) {
		t.Error("signed literal not ConstReal")
	}
	if ConstReal(rhs) {
		t.Error("binary expression wrongly ConstReal")
	}
	// A non-parameter variable is not const.
	vRef := prog.Main.Body[0].(*AssignStmt).LHS
	if ConstReal(vRef) {
		t.Error("variable wrongly ConstReal")
	}
}

// TestConstArgumentsAdoptDummyKind: literal/parameter actuals never need
// wrappers — they adopt the dummy's kind.
func TestConstArgumentsAdoptDummyKind(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8), parameter :: c8 = 4.0d0
  real(kind=8) :: out
contains
  function f(x) result(y)
    real(kind=4) :: x, y
    y = x + 1.0
  end function f
  subroutine drive()
    out = f(2.0d0) + f(c8)
  end subroutine drive
end module m
program p
  use m
  implicit none
  call drive()
end program p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatalf("strict analysis rejected constant arguments: %v", err)
	}
	if len(info.Mismatches) != 0 {
		t.Errorf("constant arguments recorded as mismatches: %+v", info.Mismatches)
	}
}

// TestVariableArgumentsStillMismatch: the polymorphic rule applies only
// to constants; variables keep strict kind matching.
func TestVariableArgumentsStillMismatch(t *testing.T) {
	src := `
module m
  implicit none
contains
  function f(x) result(y)
    real(kind=4) :: x, y
    y = x
  end function f
  subroutine drive()
    real(kind=8) :: a, o
    a = 1.0d0
    o = f(a)
  end subroutine drive
end module m
program p
  use m
  implicit none
  call drive()
end program p
`
	prog, _ := Parse(src)
	if _, err := Analyze(prog, Options{}); err == nil {
		t.Fatal("kind-8 variable accepted for kind-4 dummy")
	}
}

// TestIntrinsicPolymorphicArgs: min/max/sign with mixed variable and
// constant arguments follow the variable.
func TestIntrinsicPolymorphicArgs(t *testing.T) {
	cases := []struct {
		expr string
		kind int
	}{
		{"max(x4, 0.0d0)", 4},
		{"min(x8, 1.0, 2.0)", 8},
		{"sign(0.5d0, x4)", 4},
		{"max(2.0, 3.0d0)", 8}, // all-constant falls back to written kinds
	}
	for _, tc := range cases {
		got := exprTypeOf(t, tc.expr, false)
		if got.Kind != tc.kind {
			t.Errorf("%q: kind %d, want %d", tc.expr, got.Kind, tc.kind)
		}
	}
}
