package models

import _ "embed"

// The surrogate model sources live as FT files under src/; they are the
// "Fortran" the tuner parses, transforms, and runs.

//go:embed src/funarc.ft
var funarcSource string

//go:embed src/mpas_a.ft
var mpasSource string

//go:embed src/adcirc.ft
var adcircSource string

//go:embed src/mom6.ft
var mom6Source string
