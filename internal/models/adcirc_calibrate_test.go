package models

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/transform"
)

// TestADCIRCCalibration checks the structural behaviours the ADCIRC
// reproduction depends on.
func TestADCIRCCalibration(t *testing.T) {
	m := ADCIRC()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	in, res, err := runModel(t, m, prog, true)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	base, err := m.Extract(in)
	if err != nil {
		t.Fatal(err)
	}

	iters, _ := in.GlobalFloats("adcirc_state.solve_iters")
	iersBase, _ := in.GlobalFloats("adcirc_state.solve_ier")
	var meanIters float64
	for i := range iters {
		meanIters += iters[i] / float64(len(iters))
		if iersBase[i] != 0 {
			t.Errorf("baseline step %d: jcg returned ier=%v", i+1, iersBase[i])
		}
	}
	t.Logf("baseline CG iterations per step: %v (mean %.1f)", iters, meanIters)
	if meanIters < 15 || meanIters > 200 {
		t.Errorf("baseline CG iteration count %f out of the calibrated band", meanIters)
	}

	hot := map[string]bool{}
	for _, q := range m.HotspotProcs(prog) {
		hot[q] = true
	}
	hotCycles := res.Timers.TotalSelf(func(n string) bool { return hot[n] })
	t.Logf("total cycles %.0f, hotspot share %.1f%% (paper ~12%%)", res.Cycles, hotCycles/res.Cycles*100)
	t.Logf("atoms in hotspot: %d", len(transform.Atoms(prog, m.Hotspot)))
	for _, r := range res.Timers.Regions() {
		t.Logf("  %-30s calls=%6d self=%12.0f self/call=%10.1f", r.Name, r.Calls, r.Self, r.PerCall())
	}

	jcgBase := res.Timers.Region("itpackv.jcg")

	probes := []struct {
		name string
		keep []string // kept at 64-bit, all other hotspot atoms lowered
	}{
		{"uniform 32", nil},
		{"h0ref 64-bit", []string{"itpackv.jcg.h0ref"}},
		{"asym mix", []string{"itpackv.asub", "itpackv.adiag", "itpackv.jcg.h0ref"}},
		{"stall mix", []string{"itpackv.jcg.h0ref", "itpackv.jcg.stptst", "itpackv.jcg.stpbest", "itpackv.jcg.bnorm"}},
		{"stall mix 2", []string{"itpackv.jcg.h0ref", "itpackv.rvec", "itpackv.zvec"}},
	}
	for _, pr := range probes {
		a := transform.Uniform(transform.Atoms(prog, m.Hotspot), 4)
		for _, q := range pr.keep {
			a[q] = 8
		}
		v, err := transform.Apply(prog, a)
		if err != nil {
			t.Fatalf("%s: transform: %v", pr.name, err)
		}
		inp, resp, err := runModel(t, m, v.Prog, true)
		if err != nil {
			var re *interp.RunError
			if errors.As(err, &re) {
				t.Logf("probe %-14s => runtime error: %v", pr.name, re)
				continue
			}
			t.Fatalf("%s: run: %v", pr.name, err)
		}
		out, err := m.Extract(inp)
		if err != nil {
			t.Fatal(err)
		}
		relErr, err := m.Compare(base, out)
		if err != nil {
			t.Fatal(err)
		}
		hotP := resp.Timers.TotalSelf(func(n string) bool { return hot[n] })
		jcgP := resp.Timers.Region("itpackv.jcg")
		pIters, _ := inp.GlobalFloats("adcirc_state.solve_iters")
		pIers, _ := inp.GlobalFloats("adcirc_state.solve_ier")
		t.Logf("probe %-14s => hotspot speedup %.3f, jcg/call %.0f->%.0f (%.2fx), err %.3e (thr %.1e), iters %v, ier %v",
			pr.name, hotCycles/hotP, jcgBase.PerCall(), jcgP.PerCall(),
			jcgBase.PerCall()/jcgP.PerCall(), relErr, m.Threshold, pIters, pIers)
	}
}
