package models

import (
	"strings"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/transform"
)

// runModel runs a model program (optionally transformed) and returns the
// interp, result and error.
func runModel(t *testing.T, m *Model, prog *ft.Program, profile bool) (*interp.Interp, *interp.Result, error) {
	t.Helper()
	in, err := interp.New(prog, interp.Config{
		Model:         perfmodel.Default(),
		TrapNonFinite: true,
		Profile:       profile,
	})
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	res, err := in.Run()
	return in, res, err
}

// TestMPASCalibration prints the baseline profile for calibration and
// checks the structural invariants the reproduction relies on.
func TestMPASCalibration(t *testing.T) {
	m := MPASA()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	in, res, err := runModel(t, m, prog, true)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	base, err := m.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != mpasCells*24 {
		t.Fatalf("ke series length %d", len(base))
	}

	hot := map[string]bool{}
	for _, q := range m.HotspotProcs(prog) {
		hot[q] = true
	}
	hotCycles := res.Timers.TotalSelf(func(n string) bool { return hot[n] })
	share := hotCycles / res.Cycles * 100
	t.Logf("total cycles %.0f, hotspot share %.1f%% (paper: ~15%%)", res.Cycles, share)
	t.Logf("atoms in hotspot: %d", len(transform.Atoms(prog, m.Hotspot)))
	for _, r := range res.Timers.Regions() {
		t.Logf("  %-55s calls=%6d self=%12.0f  self/call=%9.1f", r.Name, r.Calls, r.Self, r.PerCall())
	}
	if share < 8 || share > 25 {
		t.Errorf("hotspot share %.1f%% out of the calibrated band (8-25%%)", share)
	}

	// Uniform whole-program 32-bit (the supported single-precision
	// build): must run, and its error defines the threshold.
	all32 := transform.Uniform(transform.Atoms(prog), 4)
	v, err := transform.Apply(prog, all32)
	if err != nil {
		t.Fatalf("whole-program 32-bit transform: %v", err)
	}
	in32, res32, err := runModel(t, m, v.Prog, false)
	if err != nil {
		t.Fatalf("uniform 32-bit run failed: %v", err)
	}
	v32, err := m.Extract(in32)
	if err != nil {
		t.Fatal(err)
	}
	errU32, err := m.Compare(base, v32)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uniform-32 whole-model metric error: %.3e", errU32)
	if errU32 <= 0 {
		t.Error("uniform 32-bit build shows no error; rounding not exercised")
	}
	t.Logf("whole-model speedup of uniform-32: %.3f (paper: ~1.4x)", res.Cycles/res32.Cycles)

	// Hotspot-only uniform 32-bit: the Fig. 5 headline variant family.
	hot32 := transform.Uniform(transform.Atoms(prog, m.Hotspot), 4)
	vh, err := transform.Apply(prog, hot32)
	if err != nil {
		t.Fatalf("hotspot 32-bit transform: %v", err)
	}
	inh, resh, err := runModel(t, m, vh.Prog, true)
	if err != nil {
		t.Fatalf("hotspot 32-bit run failed: %v", err)
	}
	vh32, err := m.Extract(inh)
	if err != nil {
		t.Fatal(err)
	}
	errH32, err := m.Compare(base, vh32)
	if err != nil {
		t.Fatal(err)
	}
	hotCycles32 := resh.Timers.TotalSelf(func(n string) bool { return hot[n] })
	t.Logf("hotspot-32: hotspot speedup %.3f (paper ~1.9x), whole-model speedup %.3f, metric error %.3e (uniform-32 err %.3e), wrappers %d, casts %d",
		hotCycles/hotCycles32, res.Cycles/resh.Cycles, errH32, errU32, vh.Wrappers, resh.Casts)

	// Probe candidate "knob" variants: hotspot uniformly 32-bit except
	// a named subset kept in 64-bit.
	stateVars := []string{
		"atm_time_integration.atm_srk3.uu",
		"atm_time_integration.atm_srk3.hh",
		"atm_time_integration.atm_srk3.tt",
		"atm_time_integration.atm_recover_large_step_variables_work.uu",
		"atm_time_integration.atm_recover_large_step_variables_work.hh",
		"atm_time_integration.atm_recover_large_step_variables_work.tt",
	}
	partBVars := []string{
		"atm_time_integration.alpha_tri",
		"atm_time_integration.gamma_tri",
		"atm_time_integration.atm_compute_dyn_tend_work.am",
		"atm_time_integration.atm_compute_dyn_tend_work.bm",
		"atm_time_integration.atm_compute_dyn_tend_work.cm",
		"atm_time_integration.atm_compute_dyn_tend_work.denom",
		"atm_time_integration.atm_compute_dyn_tend_work.beta",
	}
	probes := []struct {
		name string
		keep []string
	}{
		{"p0work knob 64-bit", []string{
			"atm_time_integration.atm_compute_dyn_tend_work.p0work",
		}},
		{"p0work + state path 64-bit", append([]string{
			"atm_time_integration.atm_compute_dyn_tend_work.p0work",
		}, stateVars...)},
		{"state path 64-bit", stateVars},
		{"tridiag part-B 64-bit", partBVars},
		{"state + part-B 64-bit", append(append([]string{}, stateVars...), partBVars...)},
		{"tend accumulators 64-bit", []string{
			"atm_time_integration.tend_u",
			"atm_time_integration.tend_h",
			"atm_time_integration.tend_theta",
		}},
		{"acoustic fields 64-bit", []string{
			"atm_time_integration.ru_p",
			"atm_time_integration.rh_p",
		}},
	}
	for _, pr := range probes {
		probe := transform.Uniform(transform.Atoms(prog, m.Hotspot), 4)
		for _, q := range pr.keep {
			probe[q] = 8
		}
		vp, err := transform.Apply(prog, probe)
		if err != nil {
			t.Fatalf("probe %q transform: %v", pr.name, err)
		}
		inp, resp, err := runModel(t, m, vp.Prog, true)
		if err != nil {
			t.Fatalf("probe %q run failed: %v", pr.name, err)
		}
		vpOut, err := m.Extract(inp)
		if err != nil {
			t.Fatal(err)
		}
		errP, err := m.Compare(base, vpOut)
		if err != nil {
			t.Fatal(err)
		}
		hotP := resp.Timers.TotalSelf(func(n string) bool { return hot[n] })
		t.Logf("knob probe (%s): hotspot speedup %.3f, error %.3e (hotspot-32 err %.3e, threshold %.3e)",
			pr.name, hotCycles/hotP, errP, errH32, 0.1*errU32)
	}

	// A badly mixed variant: one flux argument stays 64-bit, forcing a
	// per-cell wrapper (the Fig. 6 flux slowdown / Fig. 7 <0.6x story).
	bad := transform.Uniform(transform.Atoms(prog, m.Hotspot), 4)
	bad["atm_time_integration.flux4.ua"] = 8
	vb, err := transform.Apply(prog, bad)
	if err != nil {
		t.Fatalf("bad-variant transform: %v", err)
	}
	inb, resb, err := runModel(t, m, vb.Prog, true)
	if err != nil {
		t.Fatalf("bad-variant run failed: %v", err)
	}
	_ = inb
	hotB := resb.Timers.TotalSelf(func(n string) bool { return hot[n] })
	fluxBase := res.Timers.Region("atm_time_integration.flux4")
	fluxBad := resb.Timers.Region("atm_time_integration.flux4")
	wrapSelf := 0.0
	for _, r := range resb.Timers.Regions() {
		if strings.Contains(r.Name, "flux4_wrapper") {
			wrapSelf += r.Self
		}
	}
	t.Logf("mixed-flux variant: hotspot speedup %.3f, whole-model speedup %.3f, flux4 per-call %.2f -> %.2f (plus wrapper self %.0f over %d calls)",
		hotCycles/hotB, res.Cycles/resb.Cycles,
		fluxBase.PerCall(), fluxBad.PerCall(), wrapSelf, fluxBad.Calls)
}
