// Package models defines the tuning targets of the case study as FT
// programs: the funarc motivating example (§II-B) and surrogates for the
// three weather/climate models of §IV — MPAS-A, ADCIRC, and MOM6.
//
// The surrogates are not the real models (hundreds of kLoC of Fortran
// with NetCDF, MPI, and supercomputer inputs); they are small dynamical
// cores *written in the same FT dialect the tuner transforms*, designed
// so that every structural property the paper identifies as decisive is
// present for the same mechanistic reason:
//
//	MPAS-A:  a vectorizable split-explicit dynamical core whose flux
//	         functions are inlinable, plus an implicit (recurrence)
//	         filter fed by 64-bit geometry — criteria (1) and (2) hold,
//	         criterion (3) fails at the whole-model boundary (Fig. 7);
//	ADCIRC:  an ITPACK-style preconditioned CG solver whose hot loops
//	         are an MPI_ALLREDUCE reduction (peror) and a recurrence
//	         sweep (pjac) — criterion (1) fails, so speedups are small;
//	MOM6:    a PPM continuity solver whose iterative flux_adjust stalls
//	         in 32-bit and whose large arrays cross kernel boundaries —
//	         criterion (2) fails catastrophically.
//
// Each Model bundles the FT source, the hotspot module, the §IV-A
// correctness metric, and the Eq. (1) noise parameters.
package models

import (
	"fmt"

	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/metrics"
)

// ThresholdMode says how a model's error threshold is determined.
type ThresholdMode int

const (
	// ThresholdFixed uses Model.Threshold as-is (ADCIRC, MOM6: values
	// chosen "following the advice of a domain expert").
	ThresholdFixed ThresholdMode = iota
	// ThresholdUniform32 sets the threshold to the metric of the
	// whole-program uniform 32-bit build, like MPAS-A's threshold,
	// which the paper derives from the developer-supported single
	// precision configuration.
	ThresholdUniform32
)

// Model is one tuning target.
type Model struct {
	Name        string
	Description string
	Paper       string // what the paper ran (for reports)
	Source      string // FT source text

	// Hotspot is the targeted module (§III-A); its real declarations
	// are the search atoms.
	Hotspot string

	// MetricName describes the §IV-A correctness metric.
	MetricName string

	// Extract pulls the correctness output series from a finished run.
	Extract func(in *interp.Interp) ([]float64, error)

	// Compare computes the scalar relative-error metric between the
	// baseline's and a variant's extracted series.
	Compare func(base, variant []float64) (float64, error)

	ThresholdMode ThresholdMode
	Threshold     float64
	// ThresholdFactor scales a ThresholdUniform32-derived threshold
	// (default 1). MPAS-A uses a factor < 1: the tuned hotspot is only
	// ~15% of the model, so a variant is held to a tighter budget than
	// the fully single-precision build (see DESIGN.md §5).
	ThresholdFactor float64

	// NRuns is Eq. (1)'s n; NoiseRel is the baseline's observed
	// relative standard deviation that motivated it.
	NRuns    int
	NoiseRel float64

	// BudgetEvals caps distinct variant evaluations, standing in for
	// the 12-hour job limit (0 = unlimited). MOM6's search famously
	// did not finish within it.
	BudgetEvals int
}

// Parse returns a freshly parsed and analyzed copy of the model source.
func (m *Model) Parse() (*ft.Program, error) {
	prog, err := ft.ParseFile(m.Name+".ft", m.Source)
	if err != nil {
		return nil, fmt.Errorf("models: %s: %w", m.Name, err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		return nil, fmt.Errorf("models: %s: %w", m.Name, err)
	}
	return prog, nil
}

// HotspotProcs returns the qualified names of the hotspot module's
// procedures in the baseline program (wrapper procedures added later by
// the transformer are excluded by construction, mirroring GPTL timers
// placed inside the original routines).
func (m *Model) HotspotProcs(prog *ft.Program) []string {
	var out []string
	for _, mod := range prog.Modules {
		if mod.Name != m.Hotspot {
			continue
		}
		for _, p := range mod.Procs {
			out = append(out, p.QName())
		}
	}
	return out
}

// seriesExtract returns an Extract function reading a module array.
func seriesExtract(qname string) func(in *interp.Interp) ([]float64, error) {
	return func(in *interp.Interp) ([]float64, error) {
		xs, ok := in.GlobalFloats(qname)
		if !ok {
			return nil, fmt.Errorf("models: output array %s not found", qname)
		}
		return xs, nil
	}
}

// frameMaxRelErrL2 returns a Compare function implementing the MPAS-A
// metric: most extreme relative error across the frame (cells) at each
// step, then L2 over time.
func frameMaxRelErrL2(width int) func(base, variant []float64) (float64, error) {
	return func(base, variant []float64) (float64, error) {
		if metrics.AnyNonFinite(variant) {
			return 0, fmt.Errorf("models: variant output contains non-finite values")
		}
		per, err := metrics.MaxRelErrPerFrame(base, variant, width)
		if err != nil {
			return 0, err
		}
		return metrics.L2(per), nil
	}
}

// extremePerPointRelErrL2 returns a Compare function implementing the
// ADCIRC metric: most extreme value per grid point over the run, then
// relative error per point, then L2 across the grid.
func extremePerPointRelErrL2(width int) func(base, variant []float64) (float64, error) {
	return func(base, variant []float64) (float64, error) {
		if metrics.AnyNonFinite(variant) {
			return 0, fmt.Errorf("models: variant output contains non-finite values")
		}
		be, err := metrics.MaxAbsPerRow(base, width)
		if err != nil {
			return 0, err
		}
		ve, err := metrics.MaxAbsPerRow(variant, width)
		if err != nil {
			return 0, err
		}
		return metrics.L2RelErr(be, ve)
	}
}

// seriesRelErrL2 returns a Compare for per-step scalar series (MOM6's
// max-CFL metric and funarc's scalar result).
func seriesRelErrL2() func(base, variant []float64) (float64, error) {
	return func(base, variant []float64) (float64, error) {
		if metrics.AnyNonFinite(variant) {
			return 0, fmt.Errorf("models: variant output contains non-finite values")
		}
		return metrics.L2RelErr(base, variant)
	}
}

// All returns the four models in presentation order.
func All() []*Model {
	return []*Model{Funarc(), MPASA(), ADCIRC(), MOM6()}
}

// WeatherClimate returns the three weather/climate models of Table I.
func WeatherClimate() []*Model {
	return []*Model{MPASA(), ADCIRC(), MOM6()}
}

// ByName returns a model by name.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}
