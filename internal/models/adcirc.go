package models

// ADCIRC builds the ADCIRC surrogate: a coastal transect driven by a
// tidal boundary, whose wave-continuity (GWCE-style) implicit solve is
// performed each step by an ITPACK-style preconditioned conjugate
// gradient solver — the paper's itpackv hotspot (§IV-A).
//
// Structural properties carried over from the paper's analysis:
//
//   - peror (residual norm) is dominated by an MPI_ALLREDUCE, which the
//     machine model never vectorizes, so reduced precision buys ~nothing
//     there (criterion 1 fails for the most expensive procedure);
//   - pjac applies an SSOR-style forward sweep whose loop-carried
//     dependence defeats vectorization (the paper's "nested for loop
//     [with] a data dependency");
//   - jcg, the driver, assembles the system by subtracting a large
//     hydrostatic background from the total head ((h0ref + tau) -
//     h0ref). In 32-bit this cancellation quantizes to the background's
//     ulp, the nearshore conveyance vanishes, and the solver converges
//     quickly on the wrong, mostly decoupled system — the fast-but-wrong
//     jcg cluster of Fig. 6. Keeping either h0ref or tau in 64-bit keeps
//     the cancellation exact, so the search's 1-minimal set is a single
//     jcg parameter, as in the paper;
//   - late CG iterations in 32-bit underflow p·Ap to zero, making alpha
//     non-finite — the Table II "Error" outcomes (29.7%).
//
// Correctness (§IV-A): most extreme water surface elevation per node
// over the run, relative error per node, L2 across the grid;
// threshold 1e-1 per the domain expert.
func ADCIRC() *Model {
	return &Model{
		Name:        "adcirc",
		Description: "ADCIRC surrogate: tidal transect with ITPACK CG solver, hotspot itpackv",
		Paper:       "ADCIRC 40-day tidal run (Beaufort Inlet, NC), 128 ranks, hotspot itpackv (468 FP vars, ~12% CPU)",
		Hotspot:     "itpackv",
		MetricName:  "max water surface elevation per node, relative error, L2 over grid",
		Source:      adcircSource,
		Extract:     seriesExtract("adcirc_state.eta_series"),
		Compare:     extremePerPointRelErrL2(adcircNodes),

		ThresholdMode: ThresholdFixed,
		Threshold:     1.0e-1,
		NRuns:         1,
		NoiseRel:      0.01,
		BudgetEvals:   600,
	}
}

// adcircNodes is the transect node count of the surrogate workload.
const adcircNodes = 120
