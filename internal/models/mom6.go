package models

// MOM6 builds the MOM6 surrogate: a layered ocean channel whose layer
// thicknesses are advanced each step by an operator-split PPM
// finite-volume continuity solver with zonal and meridional sweeps —
// the paper's MOM_continuity_PPM hotspot (§IV-A).
//
// Structural properties carried over from the paper's analysis:
//
//   - zonal_mass_flux owns large working arrays (edge reconstructions,
//     per-layer fluxes) and passes them to its callees; any kind split
//     across those calls pays per-element array-copy wrappers every
//     step — variant 58's "40% of CPU time is casting overhead";
//   - zonal_flux_adjust solves, per column, a nonlinear equation
//     matching the summed layer transport to the barotropic target
//     with a Newton/bisection iteration whose tolerance sits near
//     float64 roundoff. In 32-bit the residual plateaus above the
//     tolerance and the iteration runs to its cap, 10-100x longer
//     (the Fig. 6 flux_adjust slowdowns of 0.01-0.1x);
//   - thickness must stay positive: low-precision flux imbalances
//     drive h negative and the model hard-aborts, the mechanism behind
//     Table II's 51.7% runtime-error rate;
//   - ppm_reconstruction's limiter is if-converted (masked) but
//     vectorizable, so there is real but modest 32-bit upside that the
//     casting and convergence penalties swamp — the paper's
//     "executable >98% 32-bit variants all slow down to 0.2-0.6x".
//
// Correctness (§IV-A): maximum CFL number per step, relative error, L2
// over time; threshold 2.5e-1 per the domain expert.
func MOM6() *Model {
	return &Model{
		Name:        "mom6",
		Description: "MOM6 surrogate: layered PPM continuity channel, hotspot mom_continuity_ppm",
		Paper:       "MOM6 benchmark config, 128 ranks, hotspot MOM_continuity_PPM (351 FP vars, ~9% CPU)",
		Hotspot:     "mom_continuity_ppm",
		MetricName:  "max CFL per step, relative error, L2 over time",
		Source:      mom6Source,
		Extract:     seriesExtract("mom_state.cfl_series"),
		Compare:     seriesRelErrL2(),

		ThresholdMode: ThresholdFixed,
		Threshold:     2.5e-1,
		NRuns:         7,
		NoiseRel:      0.09,
		BudgetEvals:   900,
	}
}
