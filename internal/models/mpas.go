package models

// MPASA builds the MPAS-A surrogate: a 1-D periodic split-explicit
// dynamical core patterned on MPAS-A's atm_time_integration module
// (§IV-A). One model timestep runs three Runge-Kutta substages; each
// substage computes large-step tendencies (atm_compute_dyn_tend_work,
// with inlinable flux4/flux3 reconstruction functions and an implicit
// tridiagonal filter), advances acoustic modes with forward-backward
// substeps (atm_advance_acoustic_step_work), and recovers the prognostic
// state (atm_recover_large_step_variables_work). A radiation-style
// physics suite outside the hotspot consumes the remaining ~85% of CPU
// time, as in Table I.
//
// Structural properties carried over from the paper's analysis:
//
//   - the tendency/acoustic/recover loops are uniform 64-bit and
//     auto-vectorizable at baseline, and remain vectorizable when
//     lowered uniformly to 32-bit at twice the lane count (criterion 1);
//   - flux4/flux3 are small and inlinable; kind mismatches at their call
//     sites force non-inlinable wrappers inside the hottest loop
//     (the Fig. 6 flux slowdowns);
//   - the tridiagonal filter reads 64-bit geometry owned outside the
//     hotspot; lowering its working variables buys little (recurrences
//     never vectorize) and costs per-iteration casts plus rounding noise
//     that exceeds the uniform-32 build's error — the "knob" variables
//     whose 64-bit retention beats uniform 32-bit on both axes;
//   - every substage call passes the full prognostic state and geometry
//     through the module boundary, so a low-precision hotspot in a
//     64-bit model pays array-casting wrappers three times per step
//     (the Fig. 7 whole-model slowdown).
//
// Correctness (§IV-A): kinetic energy at every cell, most extreme
// relative error across cells per step, L2 over time; the threshold is
// the metric of the whole-program uniform 32-bit build, mirroring the
// paper's use of the developer-supported single-precision MPAS-A.
func MPASA() *Model {
	return &Model{
		Name:        "mpas-a",
		Description: "MPAS-A surrogate: split-explicit 1-D dynamical core, hotspot atm_time_integration",
		Paper:       "MPAS-A 5-day global run, 64 ranks, hotspot atm_time_integration (445 FP vars, ~15% CPU)",
		Hotspot:     "atm_time_integration",
		MetricName:  "max cell kinetic-energy relative error per step, L2 over time",
		Source:      mpasSource,
		Extract:     seriesExtract("mpas_state.ke_series"),
		Compare:     frameMaxRelErrL2(mpasCells),

		ThresholdMode:   ThresholdUniform32,
		ThresholdFactor: 0.1,
		NRuns:           1,
		NoiseRel:        0.01,
		BudgetEvals:     600,
	}
}

// mpasCells is the horizontal cell count of the surrogate workload
// (the paper's run uses a 5-day global simulation; ours is scaled so a
// full search finishes in seconds).
const mpasCells = 144
