package models

import (
	"strings"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/transform"
)

func TestAllModelsParseAndAnalyze(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			prog, err := m.Parse()
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if prog.Main == nil {
				t.Error("model has no main program")
			}
			atoms := transform.Atoms(prog, m.Hotspot)
			if len(atoms) < 8 {
				t.Errorf("only %d atoms in hotspot %q", len(atoms), m.Hotspot)
			}
			procs := m.HotspotProcs(prog)
			if len(procs) == 0 {
				t.Errorf("no hotspot procedures")
			}
			for _, q := range procs {
				if !strings.HasPrefix(q, m.Hotspot+".") {
					t.Errorf("hotspot proc %q outside module %q", q, m.Hotspot)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"funarc", "mpas-a", "adcirc", "mom6"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("cesm"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestWeatherClimateSubset(t *testing.T) {
	wc := WeatherClimate()
	if len(wc) != 3 {
		t.Fatalf("WeatherClimate returned %d models", len(wc))
	}
	for _, m := range wc {
		if m.Name == "funarc" {
			t.Error("funarc is not a weather/climate model")
		}
	}
}

// TestModelSourcesPrintRoundTrip: every bundled model source survives a
// print/reparse round trip with identical atoms.
func TestModelSourcesPrintRoundTrip(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			p1, err := m.Parse()
			if err != nil {
				t.Fatal(err)
			}
			src2 := ft.Print(p1)
			p2, err := ft.Parse(src2)
			if err != nil {
				t.Fatalf("printed source does not reparse: %v", err)
			}
			if _, err := ft.Analyze(p2, ft.Options{}); err != nil {
				t.Fatalf("printed source does not re-analyze: %v", err)
			}
			a1 := transform.Atoms(p1, m.Hotspot)
			a2 := transform.Atoms(p2, m.Hotspot)
			if len(a1) != len(a2) {
				t.Fatalf("atom count changed through print: %d vs %d", len(a1), len(a2))
			}
			for i := range a1 {
				if a1[i].QName != a2[i].QName {
					t.Fatalf("atom %d renamed: %s vs %s", i, a1[i].QName, a2[i].QName)
				}
			}
		})
	}
}

// TestExpectedAtomCounts pins the search-space sizes the experiments
// depend on; growing a model source should update these deliberately.
func TestExpectedAtomCounts(t *testing.T) {
	want := map[string]int{"funarc": 8, "mpas-a": 71, "adcirc": 34, "mom6": 44}
	for _, m := range All() {
		prog, err := m.Parse()
		if err != nil {
			t.Fatal(err)
		}
		got := len(transform.Atoms(prog, m.Hotspot))
		if got != want[m.Name] {
			t.Errorf("%s: %d atoms, want %d (update the experiments if deliberate)", m.Name, got, want[m.Name])
		}
	}
}

// TestMetricPlumbing checks each model's Extract/Compare path on its own
// baseline (identical series must yield zero error).
func TestMetricPlumbing(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			prog, err := m.Parse()
			if err != nil {
				t.Fatal(err)
			}
			in, _, err := runModel(t, m, prog, false)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			out, err := m.Extract(in)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if len(out) == 0 {
				t.Fatal("empty output series")
			}
			same, err := m.Compare(out, out)
			if err != nil || same != 0 {
				t.Errorf("Compare(x, x) = %v, %v; want 0", same, err)
			}
		})
	}
}

// TestCompareRejectsNonFinite: a variant whose output went non-finite
// (without tripping the runtime trap) must fail the metric, not pass it.
func TestCompareRejectsNonFinite(t *testing.T) {
	width := map[string]int{
		"funarc": 1, "mpas-a": mpasCells, "adcirc": adcircNodes, "mom6": 4,
	}
	zero := 0.0
	for _, m := range All() {
		n := width[m.Name]
		base := make([]float64, n)
		bad := make([]float64, n)
		for i := range base {
			base[i] = float64(i + 1)
			bad[i] = float64(i + 1)
		}
		bad[n/2] = 1 / zero // +Inf
		if _, err := m.Compare(base, bad); err == nil {
			t.Errorf("%s: non-finite variant output accepted", m.Name)
		}
	}
}

func TestThresholdDefaults(t *testing.T) {
	if MPASA().ThresholdMode != ThresholdUniform32 || MPASA().ThresholdFactor != 0.1 {
		t.Error("MPAS-A threshold mode changed")
	}
	if ADCIRC().Threshold != 1.0e-1 || MOM6().Threshold != 2.5e-1 {
		t.Error("expert thresholds changed from the paper's values")
	}
	if MOM6().NRuns != 7 || MPASA().NRuns != 1 || ADCIRC().NRuns != 1 {
		t.Error("Eq. (1) n choices changed from the paper's values")
	}
}
