package models

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/transform"
)

// TestMOM6Calibration checks the structural behaviours the MOM6
// reproduction depends on.
func TestMOM6Calibration(t *testing.T) {
	m := MOM6()
	prog, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	in, res, err := runModel(t, m, prog, true)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	base, err := m.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline CFL series: %v", base)

	hot := map[string]bool{}
	for _, q := range m.HotspotProcs(prog) {
		hot[q] = true
	}
	hotCycles := res.Timers.TotalSelf(func(n string) bool { return hot[n] })
	t.Logf("total cycles %.0f, hotspot share %.1f%% (paper ~9%%)", res.Cycles, hotCycles/res.Cycles*100)
	t.Logf("atoms in hotspot: %d", len(transform.Atoms(prog, m.Hotspot)))
	for _, r := range res.Timers.Regions() {
		t.Logf("  %-40s calls=%6d self=%12.0f self/call=%10.1f", r.Name, r.Calls, r.Self, r.PerCall())
	}
	adjBase := res.Timers.Region("mom_continuity_ppm.zonal_flux_adjust")

	probes := []struct {
		name string
		keep []string
	}{
		{"uniform 32", nil},
		{"resid chain 64", []string{
			"mom_continuity_ppm.zonal_flux_adjust.resid",
			"mom_continuity_ppm.zonal_flux_adjust.dresid",
			"mom_continuity_ppm.zonal_flux_adjust.fk",
			"mom_continuity_ppm.zonal_flux_adjust.du",
			"mom_continuity_ppm.zonal_flux_adjust.scale",
			"mom_continuity_ppm.zonal_flux_adjust.target_uh",
			"mom_continuity_ppm.zonal_flux_layer.hupw",
			"mom_continuity_ppm.zonal_flux_layer.hdnw",
			"mom_continuity_ppm.zonal_flux_layer.uface",
			"mom_continuity_ppm.zonal_flux_layer.f",
			"mom_continuity_ppm.uvel_face.uf",
			"mom_continuity_ppm.h_l",
			"mom_continuity_ppm.h_r",
		}},
		{"mixed resid only 64", []string{
			"mom_continuity_ppm.zonal_flux_adjust.resid",
		}},
		{"big arrays 64", []string{
			"mom_continuity_ppm.h_l",
			"mom_continuity_ppm.h_r",
			"mom_continuity_ppm.uh",
			"mom_continuity_ppm.duhdu",
		}},
	}
	for _, pr := range probes {
		a := transform.Uniform(transform.Atoms(prog, m.Hotspot), 4)
		for _, q := range pr.keep {
			a[q] = 8
		}
		v, err := transform.Apply(prog, a)
		if err != nil {
			t.Fatalf("%s: transform: %v", pr.name, err)
		}
		inp, resp, err := runModel(t, m, v.Prog, true)
		if err != nil {
			var re *interp.RunError
			if errors.As(err, &re) {
				t.Logf("probe %-20s => runtime error: %v", pr.name, re)
				continue
			}
			t.Fatalf("%s: run: %v", pr.name, err)
		}
		out, err := m.Extract(inp)
		if err != nil {
			t.Fatal(err)
		}
		relErr, err := m.Compare(base, out)
		if err != nil {
			t.Fatal(err)
		}
		hotP := resp.Timers.TotalSelf(func(n string) bool { return hot[n] })
		adjP := resp.Timers.Region("mom_continuity_ppm.zonal_flux_adjust")
		t.Logf("probe %-20s => hotspot speedup %.3f, whole %.3f, flux_adjust/call %.0f->%.0f (%.2fx), err %.3e (thr %.1e), casts %d",
			pr.name, hotCycles/hotP, res.Cycles/resp.Cycles,
			adjBase.PerCall(), adjP.PerCall(), adjBase.PerCall()/adjP.PerCall(),
			relErr, m.Threshold, resp.Casts)
	}
}
