package models

// Funarc is the motivating example of §II-B: a hard-coded arc-length
// calculation over fun(x) = x + Σ_k 2^-k sin(2^k x). The search space is
// the paper's: eight variable declarations (s1, h, t1, t2, dppi in
// funarc; x, t1, d1 in fun), two kinds, 2^8 = 256 variants, swept by
// brute force for Fig. 2. The module-level `result` is excluded from
// tuning, as in the paper ("all atoms are targeted except result") —
// Atoms() takes the hotspot module's procedures' declarations.
func Funarc() *Model {
	return &Model{
		Name:        "funarc",
		Description: "arc-length motivating example (paper §II-B, Fig. 2)",
		Paper:       "funarc [29], brute-force swept on a laptop-scale budget",
		Hotspot:     "funarc_mod",
		MetricName:  "relative error of the final arc length",
		Source:      funarcSource,
		Extract:     seriesExtract("funarc_out.result_series"),
		Compare:     seriesRelErrL2(),

		ThresholdMode: ThresholdFixed,
		// The paper's walkthrough budget (4e-4) sits between its best
		// mixed variant's error and the uniform 32-bit error; this value
		// plays the same role for our workload's error landscape.
		Threshold: 5.0e-7,
		NRuns:     1,
		NoiseRel:  0.01,
	}
}
