package perfmodel

import (
	"fmt"
	"sort"
	"strings"

	ft "repro/internal/fortran"
)

// LoopDecision is the static vectorization verdict for one DO loop,
// analogous to an entry in a compiler's vectorization report.
type LoopDecision struct {
	Vectorized bool
	Kind       int     // element kind of the vector lanes (4 or 8)
	Factor     float64 // per-op cost multiplier when vectorized
	Masked     bool    // if-converted
	Reduction  bool    // scalar reduction present
	Reason     string  // why vectorization failed (when !Vectorized)
}

// Analysis holds the per-variant static analysis consumed by the
// interpreter: loop vectorization decisions and procedure inlinability.
// It must be recomputed after any precision transformation, because kind
// changes alter both verdicts — the mechanism behind the paper's
// observation that mixed precision "hindered compiler optimizations".
type Analysis struct {
	Model     *Model
	Loops     map[*ft.DoStmt]LoopDecision
	Inlinable map[*ft.Procedure]bool

	loopOrder []*ft.DoStmt // deterministic report order
	loopProc  map[*ft.DoStmt]*ft.Procedure
}

// Analyze runs the static analysis over an Analyzed program.
func Analyze(prog *ft.Program, m *Model) *Analysis {
	a := &Analysis{
		Model:     m,
		Loops:     make(map[*ft.DoStmt]LoopDecision),
		Inlinable: make(map[*ft.Procedure]bool),
		loopProc:  make(map[*ft.DoStmt]*ft.Procedure),
	}
	for _, p := range prog.AllProcs {
		a.Inlinable[p] = a.inlinable(p)
	}
	for _, p := range prog.AllProcs {
		ft.WalkStmts(p.Body, func(s ft.Stmt) bool {
			if do, ok := s.(*ft.DoStmt); ok {
				a.Loops[do] = a.analyzeLoop(do)
				a.loopOrder = append(a.loopOrder, do)
				a.loopProc[do] = p
			}
			return true
		})
	}
	return a
}

// Loop returns the decision for a loop (zero value if unknown).
func (a *Analysis) Loop(do *ft.DoStmt) LoopDecision { return a.Loops[do] }

// inlinable mimics a compiler inlining heuristic: a procedure is
// inlinable when its flattened body is small and free of loops and
// further user calls. Tuner-generated wrappers always contain a call and
// so are never inlinable — casting at a call boundary therefore defeats
// inlining, as the paper observed for the MPAS-A flux functions.
func (a *Analysis) inlinable(p *ft.Procedure) bool {
	if p.Kind == ft.KProgram {
		return false
	}
	count := 0
	ok := true
	ft.WalkStmts(p.Body, func(s ft.Stmt) bool {
		count++
		switch s.(type) {
		case *ft.DoStmt, *ft.DoWhileStmt, *ft.CallStmt, *ft.PrintStmt, *ft.StopStmt:
			ok = false
		}
		return ok
	})
	if !ok || count > a.Model.InlineMaxStmts {
		return false
	}
	// No calls to user procedures in expressions, and no array locals
	// (register-pressure proxy).
	ft.WalkExprs(p.Body, func(e ft.Expr) bool {
		if c, isCall := e.(*ft.CallExpr); isCall && c.Proc != nil {
			ok = false
		}
		return ok
	})
	for _, d := range p.Decls {
		if d.IsArray() && !d.IsArg {
			ok = false
		}
	}
	return ok
}

// loopScan accumulates the evidence used to decide vectorization.
type loopScan struct {
	kinds      map[int]bool // real kinds appearing in the body
	masked     bool
	reduction  bool
	fail       string
	arrWrites  map[string][]string // array name -> canonical write index lists
	arrReads   map[string][]string
	scalarWr   map[string]bool // scalar names written
	scalarRd   map[string]bool
	depth      int
	loopVar    string
	inlineable map[*ft.Procedure]bool
}

func (sc *loopScan) failf(format string, args ...any) {
	if sc.fail == "" {
		sc.fail = fmt.Sprintf(format, args...)
	}
}

func (a *Analysis) analyzeLoop(do *ft.DoStmt) LoopDecision {
	if do.NoVector {
		return LoopDecision{Reason: "novector directive"}
	}
	sc := &loopScan{
		kinds:      make(map[int]bool),
		arrWrites:  make(map[string][]string),
		arrReads:   make(map[string][]string),
		scalarWr:   make(map[string]bool),
		scalarRd:   make(map[string]bool),
		loopVar:    do.Var.Name,
		inlineable: a.Inlinable,
	}
	sc.scanStmts(do.Body, false)
	if sc.fail != "" {
		return LoopDecision{Reason: sc.fail}
	}

	// Mixed real kinds in the body require per-iteration conversion
	// instructions; treat as non-vectorizable (paper §II-A, §IV-B).
	if sc.kinds[4] && sc.kinds[8] {
		return LoopDecision{Reason: "mixed precision in loop body"}
	}

	// Loop-carried dependence: an array written at one index function of
	// the loop variable and read at a different one.
	names := make([]string, 0, len(sc.arrWrites))
	for name := range sc.arrWrites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writes := sc.arrWrites[name]
		for _, r := range sc.arrReads[name] {
			for _, w := range writes {
				if r != w {
					return LoopDecision{Reason: fmt.Sprintf(
						"loop-carried dependence on %s (%s vs %s)", name, w, r)}
				}
			}
		}
	}

	// A scalar both read and written is a reduction (vectorizable at a
	// discount); a scalar written then used as an index-independent
	// temporary is treated the same way.
	for name := range sc.scalarWr {
		if sc.scalarRd[name] {
			sc.reduction = true
		}
	}

	kind := 8
	switch {
	case sc.kinds[4]:
		kind = 4
	case sc.kinds[8]:
		kind = 8
	}
	return LoopDecision{
		Vectorized: true,
		Kind:       kind,
		Masked:     sc.masked,
		Reduction:  sc.reduction,
		Factor:     a.Model.VecFactor(kind, sc.masked, sc.reduction),
	}
}

func (sc *loopScan) scanStmts(body []ft.Stmt, inIf bool) {
	for _, s := range body {
		if sc.fail != "" {
			return
		}
		switch s := s.(type) {
		case *ft.AssignStmt:
			sc.scanAssign(s)
		case *ft.IfStmt:
			sc.masked = true
			sc.scanExpr(s.Cond, true)
			sc.scanStmts(s.Then, true)
			sc.scanStmts(s.Else, true)
		case *ft.DoStmt:
			sc.failf("contains inner loop")
		case *ft.DoWhileStmt:
			sc.failf("contains inner while loop")
		case *ft.CallStmt:
			sc.failf("subroutine call to %s", s.Name)
		case *ft.ExitStmt:
			sc.failf("early exit")
		case *ft.CycleStmt:
			// CYCLE is plain if-conversion; already counted as masked.
			sc.masked = true
		case *ft.ReturnStmt:
			sc.failf("return inside loop")
		case *ft.StopStmt:
			sc.failf("stop inside loop")
		case *ft.PrintStmt:
			sc.failf("i/o inside loop")
		}
		_ = inIf
	}
}

func (sc *loopScan) scanAssign(s *ft.AssignStmt) {
	switch lhs := s.LHS.(type) {
	case *ft.IndexExpr:
		sc.noteKindType(lhs.Typ)
		if key, uses := indexKey(lhs, sc.loopVar); uses {
			sc.arrWrites[lhs.Arr.Name] = append(sc.arrWrites[lhs.Arr.Name], key)
		}
		for _, ix := range lhs.Indices {
			sc.scanExpr(ix, false)
		}
	case *ft.VarRef:
		sc.noteKindType(lhs.Typ)
		if lhs.Typ.Rank > 0 {
			sc.failf("whole-array assignment")
			return
		}
		if lhs.Name != sc.loopVar {
			sc.scalarWr[lhs.Name] = true
		}
	}
	sc.scanExpr(s.RHS, true)
}

// indexKey renders an index list canonically and reports whether it uses
// the loop variable.
func indexKey(ix *ft.IndexExpr, loopVar string) (string, bool) {
	parts := make([]string, len(ix.Indices))
	uses := false
	for i, e := range ix.Indices {
		parts[i] = ft.ExprString(e)
		ft.WalkExpr(e, func(sub ft.Expr) bool {
			if vr, ok := sub.(*ft.VarRef); ok && vr.Name == loopVar {
				uses = true
			}
			return true
		})
	}
	return strings.Join(parts, ","), uses
}

func (sc *loopScan) noteKindType(t ft.Type) {
	if t.Base == ft.TReal {
		sc.kinds[t.Kind] = true
	}
}

func (sc *loopScan) scanExpr(e ft.Expr, read bool) {
	ft.WalkExpr(e, func(sub ft.Expr) bool {
		switch sub := sub.(type) {
		case *ft.VarRef:
			// Kind-polymorphic constants (parameters) splat into the
			// loop's working precision and do not mix kinds.
			if !ft.ConstReal(sub) {
				sc.noteKindType(sub.Typ)
			}
			if read && sub.Typ.Rank == 0 && sub.Name != sc.loopVar {
				sc.scalarRd[sub.Name] = true
			}
		case *ft.RealLit:
			// Literals are kind-polymorphic; they never mix kinds.
		case *ft.IndexExpr:
			sc.noteKindType(sub.Typ)
			if key, uses := indexKey(sub, sc.loopVar); uses && read {
				sc.arrReads[sub.Arr.Name] = append(sc.arrReads[sub.Arr.Name], key)
			}
		case *ft.BinExpr:
			sc.noteKindType(sub.Typ)
		case *ft.CallExpr:
			sc.noteKindType(sub.Typ)
			if sub.Proc != nil {
				if !sc.inlineable[sub.Proc] {
					sc.failf("call to non-inlinable %s", sub.Proc.QName())
					return false
				}
				// The callee is inlined into the loop: its body's kinds
				// join the loop body's.
				sc.scanInlined(sub.Proc)
			}
		}
		return true
	})
}

// scanInlined folds an inlined callee's real kinds (declarations and
// literals) into the loop scan.
func (sc *loopScan) scanInlined(p *ft.Procedure) {
	for _, d := range p.Decls {
		if d.Base == ft.TReal && !d.IsParam {
			sc.kinds[d.Kind] = true
		}
	}
	ft.WalkExprs(p.Body, func(e ft.Expr) bool {
		switch e := e.(type) {
		case *ft.CallExpr:
			if e.Proc != nil && !sc.inlineable[e.Proc] {
				sc.failf("inlined %s calls non-inlinable %s", p.Name, e.Proc.QName())
			}
		case *ft.BinExpr:
			sc.noteKindType(e.Typ)
		}
		return true
	})
	ft.WalkStmts(p.Body, func(s ft.Stmt) bool {
		if _, ok := s.(*ft.IfStmt); ok {
			sc.masked = true
		}
		return true
	})
}

// VectorizedCount returns how many analyzed loops vectorized.
func (a *Analysis) VectorizedCount() (vec, total int) {
	for _, d := range a.Loops {
		total++
		if d.Vectorized {
			vec++
		}
	}
	return vec, total
}

// Report renders a compiler-style vectorization report, one line per
// loop in deterministic order. The §V recommendations use such reports
// to filter variants before dynamic evaluation.
func (a *Analysis) Report() string {
	var sb strings.Builder
	for _, do := range a.loopOrder {
		d := a.Loops[do]
		proc := "?"
		if p := a.loopProc[do]; p != nil {
			proc = p.QName()
		}
		if d.Vectorized {
			extra := ""
			if d.Masked {
				extra += " masked"
			}
			if d.Reduction {
				extra += " reduction"
			}
			fmt.Fprintf(&sb, "%s:%d: loop vectorized (kind=%d, factor=%.3f%s)\n",
				proc, do.Pos.Line, d.Kind, d.Factor, extra)
		} else {
			fmt.Fprintf(&sb, "%s:%d: loop not vectorized: %s\n", proc, do.Pos.Line, d.Reason)
		}
	}
	return sb.String()
}
