package perfmodel

import "math/rand"

// Noise models run-to-run performance variability of a machine. The
// paper measures a 1% relative standard deviation for MPAS-A and ADCIRC
// baselines and 9% for MOM6, and defines the noise-tolerant speedup
// metric of Eq. (1) (median of n runs) to compensate.
//
// Samples are right-skewed, as real runtime noise is: a run can be slowed
// by interference but not sped up below the work's true cost.
type Noise struct {
	RelStdDev float64
	rng       *rand.Rand
}

// NewNoise returns a seeded, deterministic noise source.
func NewNoise(relStdDev float64, seed int64) *Noise {
	return &Noise{RelStdDev: relStdDev, rng: rand.New(rand.NewSource(seed))}
}

// Sample perturbs a true runtime t multiplicatively: t * (1 + |N(0, σ)|·c),
// with c chosen so the relative standard deviation of samples is
// approximately RelStdDev.
func (n *Noise) Sample(t float64) float64 {
	if n == nil || n.RelStdDev <= 0 {
		return t
	}
	// For a half-normal |N(0,1)|, sd ≈ 0.6028 of the folded mean scale;
	// dividing by that constant gives samples whose sd/mean ≈ RelStdDev.
	const halfNormalSD = 0.60281
	z := n.rng.NormFloat64()
	if z < 0 {
		z = -z
	}
	return t * (1 + n.RelStdDev*z/halfNormalSD)
}

// MedianOfN draws n noisy samples of t and returns their median — the
// paper's Eq. (1) numerator/denominator estimator.
func (n *Noise) MedianOfN(t float64, count int) float64 {
	if count <= 1 {
		return n.Sample(t)
	}
	samples := make([]float64, count)
	for i := range samples {
		samples[i] = n.Sample(t)
	}
	return Median(samples)
}

// Median returns the median of xs (xs is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	// Insertion sort: n is small (≤ 10 in all experiments).
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}
