// Package perfmodel implements the analytic machine model that prices the
// dynamic execution of FT programs in simulated cycles, standing in for
// the Derecho nodes (2× AMD Milan 7763) used by the paper.
//
// The model reproduces the performance *mechanisms* the paper identifies
// rather than hard-coding its outcomes:
//
//   - vector units execute twice as many 32-bit as 64-bit lanes per
//     instruction, so uniformly low-precision vectorizable loops speed up;
//   - mixed-precision operations require conversion instructions
//     (casting overhead) and block vectorization;
//   - conversion-laden call boundaries prevent function inlining;
//   - loop-carried dependences and MPI_ALLREDUCE do not vectorize;
//   - narrower values halve memory traffic.
//
// Static loop/inlining analysis lives in analysis.go; the interpreter
// (internal/interp) consults both while executing each variant.
package perfmodel

import "fmt"

// OpClass classifies dynamic operations for pricing.
type OpClass int

// Operation classes.
const (
	OpAddSub OpClass = iota
	OpMul
	OpDiv
	OpSqrt
	OpPow
	OpTrans  // transcendental intrinsics: sin, exp, log, ...
	OpSimple // abs, min, max, sign, aint, ...
	OpCmp
	OpIntALU
	OpLoad  // array element load
	OpStore // array element store
	OpCast  // real kind conversion (scalar or one array element)
	OpConv  // integer<->real conversion
	OpBranch
	OpLoopIter
	NumOpClasses
)

var opNames = [NumOpClasses]string{
	"addsub", "mul", "div", "sqrt", "pow", "trans", "simple", "cmp",
	"intalu", "load", "store", "cast", "conv", "branch", "loopiter",
}

func (c OpClass) String() string {
	if c >= 0 && int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// Model holds the machine parameters. Cost entries are cycles per scalar
// operation, indexed by operand kind (index 0: 32-bit, index 1: 64-bit).
type Model struct {
	Name string

	Cost [NumOpClasses][2]float64

	// CallCycles is the overhead of a non-inlined procedure call
	// (frame setup, argument marshalling, return).
	CallCycles float64

	// InlineMaxStmts bounds the flattened statement count of an
	// inlinable procedure, mimicking compiler inlining heuristics.
	InlineMaxStmts int

	// MPI collective model: an allreduce costs Latency +
	// PerRankHop*log2(Ranks) cycles and never vectorizes. Vendor MPI
	// reductions do not use the wide vector units (paper §IV-B,
	// citing Zhong et al.).
	AllreduceLatency float64
	AllreducePerHop  float64
	Ranks            int

	// Vector widths in lanes: 256-bit AVX2 pipes on Milan hold 8
	// 32-bit or 4 64-bit lanes.
	VecWidth32 int
	VecWidth64 int

	// Vectorization efficiencies (fraction of ideal lane speedup).
	VecEff    float64 // plain countable loops
	MaskedEff float64 // extra factor for if-converted (masked) loops
	ReduceEff float64 // extra factor for reduction loops

	// MemVecFloor bounds the vector discount for loads/stores: memory
	// bandwidth does not scale with lane count the way ALU throughput
	// does, so vectorized memory traffic is priced at no less than this
	// fraction of its scalar cost.
	MemVecFloor float64

	// TimerOverhead is charged per GPTL Start/Stop event when
	// profiling is enabled (paper reports 1-7% timing overhead).
	TimerOverhead float64
}

// Default returns the model calibrated for this repository's experiments
// (constants chosen once against the documented hardware cost ratios of
// the AMD Milan generation; experiment code never adjusts them).
func Default() *Model {
	m := &Model{
		Name:             "milan-avx2",
		CallCycles:       30,
		InlineMaxStmts:   8,
		AllreduceLatency: 2500,
		AllreducePerHop:  350,
		Ranks:            128,
		VecWidth32:       8,
		VecWidth64:       4,
		VecEff:           0.85,
		MaskedEff:        0.70,
		ReduceEff:        0.90,
		MemVecFloor:      0.25,
		TimerOverhead:    12,
	}
	set := func(c OpClass, k4, k8 float64) { m.Cost[c] = [2]float64{k4, k8} }
	set(OpAddSub, 1.0, 1.0)
	set(OpMul, 1.0, 1.0)
	set(OpDiv, 7.0, 13.0)
	set(OpSqrt, 9.0, 15.0)
	set(OpPow, 25.0, 35.0)
	set(OpTrans, 18.0, 28.0)
	set(OpSimple, 1.0, 1.0)
	set(OpCmp, 1.0, 1.0)
	set(OpIntALU, 0.7, 0.7)
	set(OpLoad, 1.0, 2.0)
	set(OpStore, 1.0, 2.0)
	set(OpCast, 3.0, 3.0)
	set(OpConv, 1.0, 1.0)
	set(OpBranch, 1.5, 1.5)
	set(OpLoopIter, 1.0, 1.0)
	return m
}

// AVX512 returns a machine model with 512-bit vector pipes (16 32-bit
// or 8 64-bit lanes, as on Intel Sapphire Rapids or the Derecho
// successor generation) and a slightly lower vector efficiency
// (frequency licensing). The 32-vs-64-bit lane *ratio* — the mechanism
// behind every speedup in the case study — is unchanged, which is why
// the paper's findings are ISA-portable (checked by the machine
// sensitivity experiment).
func AVX512() *Model {
	m := Default()
	m.Name = "spr-avx512"
	m.VecWidth32 = 16
	m.VecWidth64 = 8
	m.VecEff = 0.75
	m.MemVecFloor = 0.20
	return m
}

// Signature renders every parameter of the model deterministically. The
// evaluation journal fingerprints cached results with it, so results
// priced by one machine model are never replayed against another.
func (m *Model) Signature() string {
	return fmt.Sprintf("%+v", *m)
}

// kindIndex maps a real kind (4 or 8) to a cost table index. Integer
// operations pass kind 4.
func kindIndex(kind int) int {
	if kind == 8 {
		return 1
	}
	return 0
}

// OpCost returns the scalar cost of one operation of class c on operands
// of the given real kind.
func (m *Model) OpCost(c OpClass, kind int) float64 {
	return m.Cost[c][kindIndex(kind)]
}

// AllreduceCost returns the cost of one MPI allreduce over the model's
// configured communicator size.
func (m *Model) AllreduceCost() float64 {
	hops := 0.0
	for r := 1; r < m.Ranks; r *= 2 {
		hops++
	}
	return m.AllreduceLatency + m.AllreducePerHop*hops
}

// MemFactor clamps a vectorization factor for memory operations to the
// bandwidth floor.
func (m *Model) MemFactor(f float64) float64 {
	if f < m.MemVecFloor {
		return m.MemVecFloor
	}
	return f
}

// VecFactor returns the per-operation cost multiplier for a vectorized
// loop of the given element kind: 1/(width*efficiency).
func (m *Model) VecFactor(kind int, masked, reduction bool) float64 {
	width := m.VecWidth64
	if kind == 4 {
		width = m.VecWidth32
	}
	eff := m.VecEff
	if masked {
		eff *= m.MaskedEff
	}
	if reduction {
		eff *= m.ReduceEff
	}
	return 1.0 / (float64(width) * eff)
}
