package perfmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	ft "repro/internal/fortran"
)

func analyzeSrc(t *testing.T, src string) (*ft.Program, *Analysis) {
	t.Helper()
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := ft.Analyze(prog, ft.Options{AllowKindMismatch: true}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return prog, Analyze(prog, Default())
}

// firstLoop returns the first DO loop of the named procedure.
func firstLoop(t *testing.T, prog *ft.Program, proc string) *ft.DoStmt {
	t.Helper()
	p := prog.ProcMap[proc]
	if p == nil {
		t.Fatalf("no procedure %s", proc)
	}
	var out *ft.DoStmt
	ft.WalkStmts(p.Body, func(s ft.Stmt) bool {
		if do, ok := s.(*ft.DoStmt); ok && out == nil {
			out = do
		}
		return out == nil
	})
	if out == nil {
		t.Fatalf("no loop in %s", proc)
	}
	return out
}

const loopKernel = `
module k
  implicit none
  integer, parameter :: n = 100
  real(kind=8) :: a(n), b(n)
  real(kind=4) :: c(n)
contains
  subroutine uniform()
    integer :: i
    do i = 1, n
      a(i) = a(i) * 2.0d0 + b(i)
    end do
  end subroutine uniform
  subroutine mixed()
    integer :: i
    do i = 1, n
      a(i) = a(i) + c(i)
    end do
  end subroutine mixed
  subroutine recurrence()
    integer :: i
    do i = 2, n
      a(i) = a(i-1) + b(i)
    end do
  end subroutine recurrence
  subroutine masked()
    integer :: i
    do i = 1, n
      if (a(i) < 0.0d0) then
        a(i) = 0.0d0
      end if
    end do
  end subroutine masked
  subroutine reduced()
    integer :: i
    real(kind=8) :: s
    s = 0.0d0
    do i = 1, n
      s = s + a(i)
    end do
    b(1) = s
  end subroutine reduced
  subroutine nested()
    integer :: i, j
    do i = 1, n
      do j = 1, n
        a(j) = a(j) + 1.0d0
      end do
    end do
  end subroutine nested
  subroutine directive()
    integer :: i
!dir$ novector
    do i = 1, n
      a(i) = a(i) + 1.0d0
    end do
  end subroutine directive
  subroutine withexit()
    integer :: i
    do i = 1, n
      if (a(i) > 1.0d3) exit
      a(i) = a(i) + 1.0d0
    end do
  end subroutine withexit
end module k
program p
  use k
  implicit none
  call uniform()
end program p
`

func TestLoopVectorization(t *testing.T) {
	prog, an := analyzeSrc(t, loopKernel)
	cases := []struct {
		proc   string
		vec    bool
		reason string
	}{
		{"k.uniform", true, ""},
		{"k.mixed", false, "mixed precision"},
		{"k.recurrence", false, "dependence"},
		{"k.masked", true, ""},
		{"k.reduced", true, ""},
		{"k.nested", false, "inner loop"},
		{"k.directive", false, "novector"},
		{"k.withexit", false, "exit"},
	}
	for _, tc := range cases {
		d := an.Loop(firstLoop(t, prog, tc.proc))
		if d.Vectorized != tc.vec {
			t.Errorf("%s: vectorized=%v (reason %q), want %v", tc.proc, d.Vectorized, d.Reason, tc.vec)
			continue
		}
		if !tc.vec && !strings.Contains(d.Reason, tc.reason) {
			t.Errorf("%s: reason %q does not mention %q", tc.proc, d.Reason, tc.reason)
		}
	}
	d := an.Loop(firstLoop(t, prog, "k.masked"))
	if !d.Masked {
		t.Error("masked loop not flagged Masked")
	}
	if !an.Loop(firstLoop(t, prog, "k.reduced")).Reduction {
		t.Error("reduction loop not flagged Reduction")
	}
}

func TestLoopKindAndFactor(t *testing.T) {
	prog, an := analyzeSrc(t, strings.Replace(loopKernel, "real(kind=8) :: a(n), b(n)",
		"real(kind=8) :: a(n), b(n)", 1))
	m := Default()
	d := an.Loop(firstLoop(t, prog, "k.uniform"))
	if d.Kind != 8 {
		t.Errorf("uniform kernel kind = %d, want 8", d.Kind)
	}
	if want := m.VecFactor(8, false, false); d.Factor != want {
		t.Errorf("factor = %g, want %g", d.Factor, want)
	}
	// Lowering to kind 4 must widen the vectors (smaller factor).
	src32 := strings.ReplaceAll(loopKernel, "kind=8", "kind=4")
	src32 = strings.ReplaceAll(src32, "2.0d0", "2.0")
	src32 = strings.ReplaceAll(src32, "1.0d0", "1.0")
	src32 = strings.ReplaceAll(src32, "0.0d0", "0.0")
	src32 = strings.ReplaceAll(src32, "1.0d3", "1.0e3")
	prog32, an32 := analyzeSrc(t, src32)
	d32 := an32.Loop(firstLoop(t, prog32, "k.uniform"))
	if d32.Kind != 4 || d32.Factor >= d.Factor {
		t.Errorf("kind-4 loop: kind=%d factor=%g (kind-8 factor %g)", d32.Kind, d32.Factor, d.Factor)
	}
}

func TestInlinable(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 4
  real(kind=8) :: g(n)
contains
  function small(x) result(f)
    real(kind=8) :: x, f
    f = 0.5d0 * x * x
  end function small
  function hasloop(x) result(f)
    real(kind=8) :: x, f
    integer :: i
    f = x
    do i = 1, 3
      f = f * 0.5d0
    end do
  end function hasloop
  function callsother(x) result(f)
    real(kind=8) :: x, f
    f = small(x) + 1.0d0
  end function callsother
  function arraylocal(x) result(f)
    real(kind=8) :: x, f, tmp(10)
    tmp(1) = x
    f = tmp(1)
  end function arraylocal
  subroutine wrapperlike(x)
    real(kind=4) :: x
    real(kind=8) :: t
    t = x
    call sink(t)
  end subroutine wrapperlike
  subroutine sink(v)
    real(kind=8) :: v
    g(1) = v
  end subroutine sink
end module m
program p
  use m
  implicit none
  g(2) = small(1.0d0)
end program p
`
	prog, an := analyzeSrc(t, src)
	want := map[string]bool{
		"m.small":       true,
		"m.hasloop":     false,
		"m.callsother":  false,
		"m.arraylocal":  false,
		"m.wrapperlike": false, // contains a call: wrappers defeat inlining
		"m.sink":        true,
	}
	for name, w := range want {
		if got := an.Inlinable[prog.ProcMap[name]]; got != w {
			t.Errorf("Inlinable(%s) = %v, want %v", name, got, w)
		}
	}
	if an.Inlinable[prog.Main] {
		t.Error("main program must not be inlinable")
	}
}

func TestLoopWithInlinableCallVectorizes(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 16
  real(kind=8) :: a(n)
  real(kind=4) :: c(n)
contains
  function flux(x) result(f)
    real(kind=8) :: x, f
    f = x * x * 0.5d0
  end function flux
  function flux32(x) result(f)
    real(kind=4) :: x, f
    f = x * x * 0.5
  end function flux32
  subroutine clean()
    integer :: i
    do i = 1, n
      a(i) = flux(a(i))
    end do
  end subroutine clean
  subroutine mixedinline()
    integer :: i
    do i = 1, n
      c(i) = flux32(c(i)) + 1.0
      a(i) = flux(a(i))
    end do
  end subroutine mixedinline
end module m
program p
  use m
  implicit none
  call clean()
end program p
`
	prog, an := analyzeSrc(t, src)
	if d := an.Loop(firstLoop(t, prog, "m.clean")); !d.Vectorized {
		t.Errorf("loop with inlinable uniform call should vectorize: %s", d.Reason)
	}
	if d := an.Loop(firstLoop(t, prog, "m.mixedinline")); d.Vectorized {
		t.Error("loop mixing kind-4 and kind-8 inlined calls should not vectorize")
	}
}

func TestLoopWithNonInlinableCallBlocked(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 16
  real(kind=8) :: a(n)
contains
  function big(x) result(f)
    real(kind=8) :: x, f
    integer :: q
    f = x
    do q = 1, 2
      f = f * 0.5d0
    end do
  end function big
  subroutine drive()
    integer :: i
    do i = 1, n
      a(i) = big(a(i))
    end do
  end subroutine drive
end module m
program p
  use m
  implicit none
  call drive()
end program p
`
	prog, an := analyzeSrc(t, src)
	d := an.Loop(firstLoop(t, prog, "m.drive"))
	if d.Vectorized || !strings.Contains(d.Reason, "non-inlinable") {
		t.Errorf("loop with non-inlinable call: %+v", d)
	}
}

func TestVectorizationReport(t *testing.T) {
	_, an := analyzeSrc(t, loopKernel)
	rep := an.Report()
	for _, want := range []string{"loop vectorized", "loop not vectorized",
		"mixed precision", "novector directive", "k.uniform"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	vec, total := an.VectorizedCount()
	if total != 9 { // 8 procedures with loops, nested has 2
		t.Errorf("total loops = %d, want 9", total)
	}
	if vec == 0 || vec >= total {
		t.Errorf("vectorized = %d of %d, expected a strict subset", vec, total)
	}
}

func TestModelCostShape(t *testing.T) {
	m := Default()
	// 32-bit must never cost more than 64-bit for any op class.
	for c := OpClass(0); c < NumOpClasses; c++ {
		if m.Cost[c][0] > m.Cost[c][1] {
			t.Errorf("%v: kind-4 cost %g > kind-8 cost %g", c, m.Cost[c][0], m.Cost[c][1])
		}
	}
	if m.OpCost(OpDiv, 4) >= m.OpCost(OpDiv, 8) {
		t.Error("32-bit divide should be cheaper")
	}
	// VecFactor: 32-bit lanes are twice as wide.
	f32 := m.VecFactor(4, false, false)
	f64 := m.VecFactor(8, false, false)
	if math.Abs(f64/f32-2) > 1e-9 {
		t.Errorf("vector factor ratio %.3f, want 2 (width 8 vs 4)", f64/f32)
	}
	if m.VecFactor(8, true, false) <= f64 {
		t.Error("masking must reduce vector efficiency")
	}
	if m.VecFactor(8, false, true) <= f64 {
		t.Error("reductions must reduce vector efficiency")
	}
	if m.MemFactor(0.01) != m.MemVecFloor {
		t.Error("MemFactor must clamp to the floor")
	}
	if m.MemFactor(0.9) != 0.9 {
		t.Error("MemFactor must pass through above the floor")
	}
	if m.AllreduceCost() <= m.AllreduceLatency {
		t.Error("allreduce cost must include per-hop term")
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(0.09, 7)
	const trials = 20000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		s := n.Sample(100)
		if s < 100 {
			t.Fatalf("noise sped a run up: %g", s)
		}
		sum += s
		sumsq += s * s
	}
	mean := sum / trials
	sd := math.Sqrt(sumsq/trials - mean*mean)
	rel := sd / mean
	if rel < 0.06 || rel > 0.12 {
		t.Errorf("relative sd = %.3f, want ≈0.09", rel)
	}
}

func TestNoiseDeterministicBySeed(t *testing.T) {
	a := NewNoise(0.05, 42)
	b := NewNoise(0.05, 42)
	for i := 0; i < 10; i++ {
		if a.Sample(1) != b.Sample(1) {
			t.Fatal("same seed must give same samples")
		}
	}
	if NewNoise(0, 1).Sample(3.5) != 3.5 {
		t.Error("zero noise must be the identity")
	}
	var nilNoise *Noise
	if nilNoise.Sample(2) != 2 {
		t.Error("nil noise must be the identity")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

// Property: the median of n noisy samples is never below the true time
// and approaches it as samples are outlier-trimmed.
func TestMedianOfNProperty(t *testing.T) {
	noise := NewNoise(0.09, 123)
	f := func(tRaw uint16, nRaw uint8) bool {
		tv := float64(tRaw%1000) + 1
		n := int(nRaw%9) + 1
		m := noise.MedianOfN(tv, n)
		return m >= tv && m < tv*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMedianReducesVariance verifies the rationale for Eq. (1): the
// median of 7 samples has a much tighter spread than single samples.
func TestMedianReducesVariance(t *testing.T) {
	noise := NewNoise(0.09, 99)
	spread := func(n int) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 300; i++ {
			s := noise.MedianOfN(100, n)
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		return hi - lo
	}
	if s7, s1 := spread(7), spread(1); s7 >= s1*0.8 {
		t.Errorf("median-of-7 spread %.2f not much tighter than single-run %.2f", s7, s1)
	}
}

func TestOpClassString(t *testing.T) {
	if OpDiv.String() != "div" || OpClass(99).String() == "div" {
		t.Error("OpClass.String misbehaves")
	}
}
