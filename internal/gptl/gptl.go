// Package gptl provides nested named-region timing in the style of the
// General Purpose Timing Library used by the paper to collect hotspot CPU
// time (§III-E). Timers run against an abstract Clock so the same code
// times either wall-clock seconds or the machine model's simulated
// cycles; the precision tuner uses the latter.
//
// Like the real GPTL, instrumentation is not free: each Start/Stop pair
// can be configured to consume clock time (Overhead), modeling the 1–7%
// timing overhead reported in the paper.
package gptl

import (
	"fmt"
	"sort"
	"strings"
)

// Clock returns the current time in arbitrary units. It must be
// monotonically non-decreasing.
type Clock func() float64

// Advancer is implemented by clocks whose time can be consumed by the
// instrumentation itself (simulated clocks). If the Timers' clock also
// implements Advancer via SetOverheadFunc, Start/Stop charge Overhead
// units per event.
type Advancer func(units float64)

// Region accumulates statistics for one named timer region.
type Region struct {
	Name      string
	Calls     int64
	Self      float64 // time excluding child regions
	Inclusive float64 // time including child regions (outermost instances)
	MaxDepth  int
}

// PerCall returns the average self time per call.
func (r *Region) PerCall() float64 {
	if r.Calls == 0 {
		return 0
	}
	return r.Self / float64(r.Calls)
}

type stackEntry struct {
	region *Region
	start  float64
	child  float64
}

// Timers is a set of nested region timers. The zero value is not usable;
// call New.
type Timers struct {
	clock    Clock
	advance  Advancer
	overhead float64
	regions  map[string]*Region
	stack    []stackEntry
	active   map[string]int // recursion depth per region
}

// New returns a timer set reading the given clock.
func New(clock Clock) *Timers {
	return &Timers{
		clock:   clock,
		regions: make(map[string]*Region),
		active:  make(map[string]int),
	}
}

// SetOverhead configures the per-event instrumentation cost, charged to
// the clock through advance (may be nil to disable charging).
func (t *Timers) SetOverhead(unitsPerEvent float64, advance Advancer) {
	t.overhead = unitsPerEvent
	t.advance = advance
}

// Start opens the named region. Regions nest; the same name may recurse.
func (t *Timers) Start(name string) {
	if t.advance != nil && t.overhead > 0 {
		t.advance(t.overhead)
	}
	r, ok := t.regions[name]
	if !ok {
		r = &Region{Name: name}
		t.regions[name] = r
	}
	t.active[name]++
	if d := len(t.stack) + 1; d > r.MaxDepth {
		r.MaxDepth = d
	}
	t.stack = append(t.stack, stackEntry{region: r, start: t.clock()})
}

// Stop closes the named region, which must be the innermost open region.
func (t *Timers) Stop(name string) error {
	if len(t.stack) == 0 {
		return fmt.Errorf("gptl: Stop(%q) with no open region", name)
	}
	top := t.stack[len(t.stack)-1]
	if top.region.Name != name {
		return fmt.Errorf("gptl: Stop(%q) but innermost open region is %q", name, top.region.Name)
	}
	t.stack = t.stack[:len(t.stack)-1]
	// Read the clock *before* charging the stop-event overhead: the
	// region's measured time must not include the cost of stopping its
	// own timer, or every region's self time is inflated by one overhead
	// unit per call beyond the modeled cost. (The start-event overhead is
	// likewise charged before the start timestamp is read, so both event
	// costs land outside the region, in its caller.)
	total := t.clock() - top.start
	if t.advance != nil && t.overhead > 0 {
		t.advance(t.overhead)
	}
	r := top.region
	r.Calls++
	r.Self += total - top.child
	t.active[name]--
	if t.active[name] == 0 {
		// Only outermost instances contribute to inclusive time, as in
		// GPTL's handling of recursion.
		r.Inclusive += total
	}
	if len(t.stack) > 0 {
		t.stack[len(t.stack)-1].child += total
	}
	return nil
}

// Depth returns the current nesting depth.
func (t *Timers) Depth() int { return len(t.stack) }

// Region returns the statistics for name, or nil if never started.
func (t *Timers) Region(name string) *Region { return t.regions[name] }

// Regions returns all regions sorted by descending self time.
func (t *Timers) Regions() []*Region {
	out := make([]*Region, 0, len(t.regions))
	for _, r := range t.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalSelf sums self time over regions whose name matches keep
// (keep == nil keeps all). Hotspot CPU time in the tuner is the total
// self time of the hotspot module's procedures, mirroring the paper's
// exclusion of non-targeted model functions but not of intrinsics.
func (t *Timers) TotalSelf(keep func(name string) bool) float64 {
	var sum float64
	for name, r := range t.regions {
		if keep == nil || keep(name) {
			sum += r.Self
		}
	}
	return sum
}

// Reset clears all accumulated statistics and the region stack.
func (t *Timers) Reset() {
	t.regions = make(map[string]*Region)
	t.stack = t.stack[:0]
	t.active = make(map[string]int)
}

// Report renders a GPTL-style table of the regions.
func (t *Timers) Report() string { return FormatRegions(t.Regions()) }

// FormatRegions renders regions as the GPTL-style table. It is the
// single formatting path for both Timers.Report and the trace-analysis
// summaries in `prose trace`; rows appear in the order given.
func FormatRegions(regions []*Region) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %12s %16s %16s %14s\n", "region", "calls", "self", "inclusive", "self/call")
	for _, r := range regions {
		fmt.Fprintf(&sb, "%-42s %12d %16.0f %16.0f %14.2f\n",
			r.Name, r.Calls, r.Self, r.Inclusive, r.PerCall())
	}
	return sb.String()
}
