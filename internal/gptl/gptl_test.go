package gptl

import (
	"math"
	"testing"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ now float64 }

func (c *fakeClock) clock() float64    { return c.now }
func (c *fakeClock) advance(u float64) { c.now += u }

func TestSelfVsInclusive(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("outer")
	c.advance(10)
	tm.Start("inner")
	c.advance(5)
	if err := tm.Stop("inner"); err != nil {
		t.Fatal(err)
	}
	c.advance(2)
	if err := tm.Stop("outer"); err != nil {
		t.Fatal(err)
	}
	outer := tm.Region("outer")
	inner := tm.Region("inner")
	if outer.Self != 12 || outer.Inclusive != 17 {
		t.Errorf("outer self=%g incl=%g, want 12/17", outer.Self, outer.Inclusive)
	}
	if inner.Self != 5 || inner.Inclusive != 5 || inner.Calls != 1 {
		t.Errorf("inner self=%g incl=%g calls=%d", inner.Self, inner.Inclusive, inner.Calls)
	}
}

func TestRecursionInclusiveOnce(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("f")
	c.advance(1)
	tm.Start("f")
	c.advance(3)
	if err := tm.Stop("f"); err != nil {
		t.Fatal(err)
	}
	c.advance(1)
	if err := tm.Stop("f"); err != nil {
		t.Fatal(err)
	}
	f := tm.Region("f")
	if f.Calls != 2 {
		t.Errorf("calls = %d, want 2", f.Calls)
	}
	if f.Self != 5 {
		t.Errorf("self = %g, want 5", f.Self)
	}
	// Inclusive counts the outermost instance only: 5, not 8.
	if f.Inclusive != 5 {
		t.Errorf("inclusive = %g, want 5", f.Inclusive)
	}
	if f.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", f.MaxDepth)
	}
}

func TestMismatchedStop(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("a")
	if err := tm.Stop("b"); err == nil {
		t.Error("Stop of wrong region did not error")
	}
	if err := tm.Stop("a"); err != nil {
		t.Errorf("correct Stop after failed Stop: %v", err)
	}
	if err := tm.Stop("a"); err == nil {
		t.Error("Stop with empty stack did not error")
	}
}

func TestOverheadCharged(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.SetOverhead(2, c.advance)
	tm.Start("r")
	c.advance(100)
	if err := tm.Stop("r"); err != nil {
		t.Fatal(err)
	}
	r := tm.Region("r")
	// Start charges 2 before reading the start timestamp and Stop
	// charges 2 after reading the stop timestamp, so the region sees
	// exactly its modeled 100 units while the clock advanced 104: both
	// event costs land outside the region.
	if r.Self != 100 {
		t.Errorf("self = %g, want 100 (overhead outside region)", r.Self)
	}
	if c.now != 104 {
		t.Errorf("clock = %g, want 104", c.now)
	}
}

// TestOverheadOutsideNestedRegion pins the attribution of timer
// overhead in nested regions: a child's events are charged to its
// parent's self time, never to the child itself.
func TestOverheadOutsideNestedRegion(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.SetOverhead(3, c.advance)
	tm.Start("outer")
	c.advance(10)
	tm.Start("inner")
	c.advance(50)
	if err := tm.Stop("inner"); err != nil {
		t.Fatal(err)
	}
	c.advance(10)
	if err := tm.Stop("outer"); err != nil {
		t.Fatal(err)
	}
	inner := tm.Region("inner")
	outer := tm.Region("outer")
	if inner.Self != 50 {
		t.Errorf("inner self = %g, want exactly its modeled 50", inner.Self)
	}
	// Outer sees its own 20 modeled units plus the inner Start+Stop
	// events (2 x 3); its own events fall outside it entirely.
	if outer.Self != 26 {
		t.Errorf("outer self = %g, want 26 (own work + child's timer events)", outer.Self)
	}
	if c.now != 82 {
		t.Errorf("clock = %g, want 82 (70 modeled + 4 events x 3)", c.now)
	}
}

func TestOverheadPercentRange(t *testing.T) {
	// With a per-event overhead of 1 and regions of length ~50, the
	// instrumentation's *wall-clock* cost should land in the paper's
	// reported 1–7% band — while the regions' measured self time stays
	// exactly the modeled work, uninflated by the timer events.
	c := &fakeClock{}
	tm := New(c.clock)
	tm.SetOverhead(1, c.advance)
	for i := 0; i < 1000; i++ {
		tm.Start("k")
		c.advance(50)
		if err := tm.Stop("k"); err != nil {
			t.Fatal(err)
		}
	}
	pure := 50000.0
	if measured := tm.Region("k").Self; measured != pure {
		t.Errorf("self = %g, want exactly %g (timer events must not inflate self time)", measured, pure)
	}
	pct := (c.now - pure) / pure * 100
	if pct < 1 || pct > 7 {
		t.Errorf("wall-clock overhead = %.2f%%, want within 1-7%%", pct)
	}
}

func TestTotalSelfFilter(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	for _, name := range []string{"hot.a", "hot.b", "cold.c"} {
		tm.Start(name)
		c.advance(10)
		if err := tm.Stop(name); err != nil {
			t.Fatal(err)
		}
	}
	got := tm.TotalSelf(func(n string) bool { return n[:3] == "hot" })
	if got != 20 {
		t.Errorf("TotalSelf(hot) = %g, want 20", got)
	}
	if all := tm.TotalSelf(nil); all != 30 {
		t.Errorf("TotalSelf(nil) = %g, want 30", all)
	}
}

func TestRegionsSorted(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	for i, name := range []string{"small", "large", "mid"} {
		tm.Start(name)
		c.advance(float64((i*7)%20 + 1))
		if err := tm.Stop(name); err != nil {
			t.Fatal(err)
		}
	}
	rs := tm.Regions()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Self < rs[i].Self {
			t.Errorf("regions not sorted by self time: %v then %v", rs[i-1], rs[i])
		}
	}
}

func TestPerCall(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	for i := 0; i < 4; i++ {
		tm.Start("r")
		c.advance(3)
		if err := tm.Stop("r"); err != nil {
			t.Fatal(err)
		}
	}
	if pc := tm.Region("r").PerCall(); math.Abs(pc-3) > 1e-12 {
		t.Errorf("per-call = %g, want 3", pc)
	}
	if (&Region{}).PerCall() != 0 {
		t.Error("PerCall of empty region should be 0")
	}
}

func TestReset(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("r")
	c.advance(1)
	if err := tm.Stop("r"); err != nil {
		t.Fatal(err)
	}
	tm.Reset()
	if tm.Region("r") != nil || tm.Depth() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestReportContainsRegions(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("kernel")
	c.advance(5)
	if err := tm.Stop("kernel"); err != nil {
		t.Fatal(err)
	}
	rep := tm.Report()
	if len(rep) == 0 || !containsLine(rep, "kernel") {
		t.Errorf("report missing region:\n%s", rep)
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRecursionSelfTimeThroughNestedRegion pins down self-time
// attribution when recursion re-enters a region through another one
// (f -> g -> f): each slice of wall time is charged to exactly one
// region's self, recursion inflates neither self nor inclusive, and
// the self times still telescope to the total.
func TestRecursionSelfTimeThroughNestedRegion(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("f")
	c.advance(2)
	tm.Start("g")
	c.advance(3)
	tm.Start("f") // recursive re-entry, two frames deep
	c.advance(4)
	if err := tm.Stop("f"); err != nil {
		t.Fatal(err)
	}
	c.advance(1)
	if err := tm.Stop("g"); err != nil {
		t.Fatal(err)
	}
	c.advance(2)
	if err := tm.Stop("f"); err != nil {
		t.Fatal(err)
	}

	f, g := tm.Region("f"), tm.Region("g")
	// f's self: 2 before g, 4 inside the recursive instance, 2 after g.
	if f.Self != 8 {
		t.Errorf("f self = %g, want 8", f.Self)
	}
	// f's inclusive counts the outermost instance only: the full 12,
	// not 12+4.
	if f.Inclusive != 12 || f.Calls != 2 {
		t.Errorf("f inclusive = %g calls = %d, want 12/2", f.Inclusive, f.Calls)
	}
	// g's self excludes the recursive f instance it hosted: 3+1.
	if g.Self != 4 || g.Inclusive != 8 {
		t.Errorf("g self = %g incl = %g, want 4/8", g.Self, g.Inclusive)
	}
	if got := f.Self + g.Self; got != 12 {
		t.Errorf("self times sum to %g, want the 12-unit total", got)
	}
	if f.MaxDepth != 3 || g.MaxDepth != 2 {
		t.Errorf("max depths f=%d g=%d, want 3/2", f.MaxDepth, g.MaxDepth)
	}
}

// TestFormatRegionsMatchesReport: the formatting core factored out for
// reuse (prose trace renders span phases with it) stays byte-identical
// to the Report method on the same regions.
func TestFormatRegionsMatchesReport(t *testing.T) {
	c := &fakeClock{}
	tm := New(c.clock)
	tm.Start("outer")
	c.advance(7)
	tm.Start("inner")
	c.advance(3)
	if err := tm.Stop("inner"); err != nil {
		t.Fatal(err)
	}
	if err := tm.Stop("outer"); err != nil {
		t.Fatal(err)
	}
	if got, want := FormatRegions(tm.Regions()), tm.Report(); got != want {
		t.Errorf("FormatRegions output diverged from Report:\n%q\nvs\n%q", got, want)
	}
	if FormatRegions(nil) == "" {
		t.Error("FormatRegions(nil) lost the header")
	}
}
