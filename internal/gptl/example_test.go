package gptl_test

import (
	"fmt"

	"repro/internal/gptl"
)

// Timers run against an abstract clock; the tuner supplies the machine
// model's simulated-cycle counter.
func Example() {
	var now float64
	clock := func() float64 { return now }

	t := gptl.New(clock)
	t.Start("atm_srk3")
	now += 40
	t.Start("flux4")
	now += 10
	_ = t.Stop("flux4")
	now += 50
	_ = t.Stop("atm_srk3")

	outer := t.Region("atm_srk3")
	inner := t.Region("flux4")
	fmt.Printf("atm_srk3: self=%.0f inclusive=%.0f\n", outer.Self, outer.Inclusive)
	fmt.Printf("flux4:    self=%.0f calls=%d\n", inner.Self, inner.Calls)
	// Output:
	// atm_srk3: self=90 inclusive=100
	// flux4:    self=10 calls=1
}
