package search

// DDMin is Zeller & Hildebrandt's minimizing delta debugging algorithm
// (ddmin), generic over item indices. It returns a 1-minimal subset of
// items for which test returns true: removing any single element makes
// the test fail. test must be true for the full set and monotone enough
// in practice (ddmin tolerates non-monotone tests but then guarantees
// only 1-minimality, not global minimality).
//
// The Precimonious search (§III-B) instantiates this with "interesting"
// = "the variant that keeps exactly this subset in 64-bit passes the
// correctness and performance criteria", giving the paper's O(n log n)
// average / O(n^2) worst-case variant exploration.
func DDMin(items []int, test func(subset []int) bool) []int {
	cur := append([]int(nil), items...)
	if len(cur) <= 1 {
		return cur
	}
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)

		// Reduce to subset: some chunk alone is interesting.
		reduced := false
		for _, c := range chunks {
			if test(c) {
				cur = c
				n = 2
				reduced = true
				break
			}
		}
		if reduced {
			if len(cur) <= 1 {
				break
			}
			continue
		}

		// Reduce to complement.
		if n > 2 {
			for i := range chunks {
				comp := complement(cur, chunks[i])
				if test(comp) {
					cur = comp
					n = maxInt(n-1, 2)
					reduced = true
					break
				}
			}
			if reduced {
				continue
			}
		}

		// Increase granularity.
		if n >= len(cur) {
			break // 1-minimal
		}
		n = minInt(len(cur), 2*n)
	}
	return cur
}

// split partitions items into n nearly equal contiguous chunks.
func split(items []int, n int) [][]int {
	if n > len(items) {
		n = len(items)
	}
	out := make([][]int, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start + (len(items)-start)/(n-i)
		if end > start {
			out = append(out, items[start:end])
		}
		start = end
	}
	return out
}

// complement returns items minus chunk (chunk is a contiguous slice of
// items, so identity comparison over values suffices).
func complement(items, chunk []int) []int {
	drop := make(map[int]bool, len(chunk))
	for _, v := range chunk {
		drop[v] = true
	}
	out := make([]int, 0, len(items)-len(chunk))
	for _, v := range items {
		if !drop[v] {
			out = append(out, v)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
