package search

import (
	"fmt"
	"testing"

	"repro/internal/transform"
)

// searchAtoms and searchOpts give every crash test the same non-trivial
// target: two critical atoms and one fragile atom over 24 atoms.
func crashTarget() ([]transform.Atom, *fakeEval, Options) {
	atoms := mkAtoms(24)
	fe := &fakeEval{
		atoms:    atoms,
		critical: map[string]bool{"m.p.v05": true, "m.p.v17": true},
		fragile:  map[string]bool{"m.p.v09": true},
	}
	opts := Options{Criteria: Criteria{MaxRelError: 1e-3, MinSpeedup: 1}}
	return atoms, fe, opts
}

// journaled runs Precimonious while collecting every log append through
// OnAdd — the same observation point the crash journal uses — and
// recovers an injected-fault panic. Collected records survive the panic,
// exactly as fsynced journal lines survive a kill.
func journaled(atoms []transform.Atom, eval Evaluator, opts Options) (out *Outcome, seen []*Evaluation, replays []bool, fault *InjectedFault) {
	prev := opts.OnAdd
	opts.OnAdd = func(ev *Evaluation, replayed bool) {
		cp := *ev
		seen = append(seen, &cp)
		replays = append(replays, replayed)
		if prev != nil {
			prev(ev, replayed)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*InjectedFault)
			if !ok {
				panic(r)
			}
			fault = f
		}
	}()
	out = Precimonious(nil, eval, atoms, opts)
	return
}

func sameEval(a, b *Evaluation) bool {
	return a.Assignment.Key() == b.Assignment.Key() && a.Status == b.Status &&
		a.Speedup == b.Speedup && a.RelError == b.RelError &&
		a.Lowered == b.Lowered && a.Index == b.Index
}

// warmFrom rebuilds a Warm cache from collected records, the way the
// tuner rebuilds it from journal lines: the assignment itself is not
// stored (only its canonical key), so replayed records re-enter the log
// without one until batchEval re-attaches it.
func warmFrom(seen []*Evaluation) map[string]*Evaluation {
	warm := make(map[string]*Evaluation, len(seen))
	for _, ev := range seen {
		cp := *ev
		key := cp.Assignment.Key()
		cp.Assignment = nil
		warm[key] = &cp
	}
	return warm
}

// TestKillAtEveryEvaluationThenResume is the search-level crash-safety
// contract: kill the search after ANY number of evaluations, resume from
// the records observed so far, and the concatenated evaluation sequence
// is identical to an uninterrupted run — same order, same values, same
// 1-minimal set — with the replayed prefix never re-evaluated.
func TestKillAtEveryEvaluationThenResume(t *testing.T) {
	atoms, fe, opts := crashTarget()
	ref, refSeen, _, fault := journaled(atoms, fe, opts)
	if fault != nil {
		t.Fatal("reference run faulted")
	}
	total := len(ref.Log.Evals)
	if total < 10 {
		t.Fatalf("reference run too small to be interesting: %d evals", total)
	}

	for kill := 0; kill < total; kill++ {
		atoms2, _, opts2 := crashTarget()
		_, fe2, _ := crashTarget()
		inj := &FaultInjector{Inner: fe2, Limit: int64(kill)}
		out1, seen1, _, fault1 := journaled(atoms2, inj, opts2)
		if fault1 == nil {
			t.Fatalf("kill=%d: fault did not fire (out=%v)", kill, out1 != nil)
		}
		// The surviving records are a prefix of the reference sequence.
		if len(seen1) > kill {
			t.Fatalf("kill=%d: %d records survived past the fault", kill, len(seen1))
		}
		for i, ev := range seen1 {
			if !sameEval(ev, refSeen[i]) {
				t.Fatalf("kill=%d: surviving record %d diverges from reference", kill, i)
			}
		}

		// Resume from the survivors with a fresh evaluator.
		atoms3, fe3, opts3 := crashTarget()
		opts3.Warm = warmFrom(seen1)
		out2, seen2, replays2, fault2 := journaled(atoms3, fe3, opts3)
		if fault2 != nil {
			t.Fatalf("kill=%d: resumed run faulted", kill)
		}
		if len(seen2) != total {
			t.Fatalf("kill=%d: resumed run logged %d evals, want %d", kill, len(seen2), total)
		}
		for i := range seen2 {
			if !sameEval(seen2[i], refSeen[i]) {
				t.Fatalf("kill=%d: resumed eval %d = %+v, reference %+v", kill, i, seen2[i], refSeen[i])
			}
			if replays2[i] && i >= len(seen1) {
				t.Fatalf("kill=%d: eval %d marked replayed but was never journaled", kill, i)
			}
			if !replays2[i] && i < len(seen1) {
				t.Fatalf("kill=%d: journaled eval %d re-evaluated on resume", kill, i)
			}
		}
		if int(fe3.calls.Load()) != total-len(seen1) {
			t.Fatalf("kill=%d: evaluator ran %d times on resume, want %d fresh",
				kill, fe3.calls.Load(), total-len(seen1))
		}
		if fmt.Sprint(out2.Minimal) != fmt.Sprint(ref.Minimal) {
			t.Fatalf("kill=%d: minimal %v, reference %v", kill, out2.Minimal, ref.Minimal)
		}
		if out2.Converged != ref.Converged {
			t.Fatalf("kill=%d: converged %v, reference %v", kill, out2.Converged, ref.Converged)
		}
	}
}

// TestKillUnderParallelism: with concurrent evaluation the fault fires at
// a nondeterministic point, but the flushed records must still be an
// exact prefix of the deterministic evaluation order, and resume must
// still reproduce the reference sequence.
func TestKillUnderParallelism(t *testing.T) {
	atoms, fe, opts := crashTarget()
	ref, refSeen, _, fault := journaled(atoms, fe, opts)
	if fault != nil {
		t.Fatal("reference run faulted")
	}
	for _, kill := range []int64{1, 3, 7, 12} {
		atoms2, _, opts2 := crashTarget()
		_, fe2, _ := crashTarget()
		opts2.Parallelism = 8
		inj := &FaultInjector{Inner: fe2, Limit: kill}
		_, seen1, _, fault1 := journaled(atoms2, inj, opts2)
		if fault1 == nil {
			t.Fatalf("kill=%d: fault did not fire", kill)
		}
		for i, ev := range seen1 {
			if !sameEval(ev, refSeen[i]) {
				t.Fatalf("kill=%d par=8: flushed record %d is not the reference prefix", kill, i)
			}
		}

		atoms3, fe3, opts3 := crashTarget()
		opts3.Warm = warmFrom(seen1)
		opts3.Parallelism = 8
		out2, seen2, _, fault2 := journaled(atoms3, fe3, opts3)
		if fault2 != nil {
			t.Fatalf("kill=%d: resumed run faulted", kill)
		}
		if len(seen2) != len(refSeen) {
			t.Fatalf("kill=%d par=8: resumed %d evals, want %d", kill, len(seen2), len(refSeen))
		}
		for i := range seen2 {
			if !sameEval(seen2[i], refSeen[i]) {
				t.Fatalf("kill=%d par=8: resumed eval %d diverges", kill, i)
			}
		}
		if fmt.Sprint(out2.Minimal) != fmt.Sprint(ref.Minimal) {
			t.Fatalf("kill=%d par=8: minimal %v, want %v", kill, out2.Minimal, ref.Minimal)
		}
	}
}

// TestFullWarmReplayNeverEvaluates: resuming a journal of a *finished*
// search replays the whole log without a single evaluator call.
func TestFullWarmReplayNeverEvaluates(t *testing.T) {
	atoms, fe, opts := crashTarget()
	ref, refSeen, _, _ := journaled(atoms, fe, opts)

	atoms2, fe2, opts2 := crashTarget()
	opts2.Warm = warmFrom(refSeen)
	out, seen, replays, fault := journaled(atoms2, fe2, opts2)
	if fault != nil {
		t.Fatal("replay faulted")
	}
	if fe2.calls.Load() != 0 {
		t.Errorf("full replay called the evaluator %d times", fe2.calls.Load())
	}
	if len(seen) != len(refSeen) {
		t.Fatalf("replayed %d evals, want %d", len(seen), len(refSeen))
	}
	for i, r := range replays {
		if !r {
			t.Fatalf("eval %d not marked replayed", i)
		}
	}
	if fmt.Sprint(out.Minimal) != fmt.Sprint(ref.Minimal) {
		t.Errorf("replayed minimal %v, want %v", out.Minimal, ref.Minimal)
	}
}

// TestFaultErrorMode: in FaultError mode the injector degrades to
// returning error-status evaluations, which the search records and
// rejects without crashing.
func TestFaultErrorMode(t *testing.T) {
	atoms, fe, opts := crashTarget()
	inj := &FaultInjector{Inner: fe, Limit: 4, Mode: FaultError}
	out, seen, _, fault := journaled(atoms, inj, opts)
	if fault != nil {
		t.Fatal("FaultError mode must not panic")
	}
	if out == nil {
		t.Fatal("no outcome")
	}
	nerr := 0
	for _, ev := range seen {
		if ev.Status == StatusError && ev.Detail == "injected fault" {
			nerr++
		}
	}
	if nerr == 0 {
		t.Error("no injected error evaluations recorded")
	}
	if inj.Calls() <= 4 {
		t.Errorf("Calls() = %d, want > limit", inj.Calls())
	}
}

// TestFlakyModeDeterministicPerAttempt: the flaky kill decision is a
// pure function of (seed, key, attempt): two injectors with the same
// seed agree everywhere, attempt numbers advance per key, and the
// boundary rates behave (0 never fires, 1 always fires).
func TestFlakyModeDeterministicPerAttempt(t *testing.T) {
	a := transform.Assignment{"m.p.v01": 4}
	probe := func(inj *FaultInjector) (killed []bool) {
		for i := 0; i < 8; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						f := r.(*InjectedFault)
						if f.Key != a.Key() || f.Attempt != int64(i+1) {
							t.Fatalf("fault = %+v at attempt %d", f, i+1)
						}
						if f.Persistent {
							t.Fatal("flaky fault marked persistent")
						}
						killed = append(killed, true)
					}
				}()
				inj.Evaluate(a)
				killed = append(killed, false)
			}()
		}
		return
	}
	atoms, fe, _ := crashTarget()
	_ = atoms
	i1 := &FaultInjector{Inner: fe, Mode: FaultFlaky, Rate: 0.5, Seed: 9}
	i2 := &FaultInjector{Inner: fe, Mode: FaultFlaky, Rate: 0.5, Seed: 9}
	k1, k2 := probe(i1), probe(i2)
	if fmt.Sprint(k1) != fmt.Sprint(k2) {
		t.Errorf("same seed, different kill pattern: %v vs %v", k1, k2)
	}
	varies := false
	for _, k := range k1 {
		if k != k1[0] {
			varies = true
		}
	}
	if !varies {
		t.Errorf("kill pattern %v does not vary across attempts (rate 0.5, 8 attempts)", k1)
	}
	for _, k := range probe(&FaultInjector{Inner: fe, Mode: FaultFlaky, Rate: 0, Seed: 9}) {
		if k {
			t.Fatal("rate 0 fired")
		}
	}
	for _, k := range probe(&FaultInjector{Inner: fe, Mode: FaultFlaky, Rate: 1, Seed: 9}) {
		if !k {
			t.Fatal("rate 1 did not fire")
		}
	}
}

// TestCrashKeyMode: the poisoned key panics with a persistent fault on
// every attempt and a stable message; other keys evaluate normally.
func TestCrashKeyMode(t *testing.T) {
	_, fe, _ := crashTarget()
	poison := transform.Assignment{"m.p.v01": 4}
	inj := &FaultInjector{Inner: fe, Mode: FaultCrashKey, CrashKey: poison.Key()}
	if ev := inj.Evaluate(transform.Assignment{"m.p.v02": 4}); ev.Status != StatusPass {
		t.Fatalf("healthy key status = %v", ev.Status)
	}
	var msgs []string
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("poisoned key did not panic")
				}
				f := r.(*InjectedFault)
				if !f.Persistent || f.Transient() {
					t.Fatalf("crash-key fault = %+v, want persistent", f)
				}
				msgs = append(msgs, f.Error())
			}()
			inj.Evaluate(poison)
		}()
	}
	if msgs[0] != msgs[1] {
		t.Errorf("persistent fault message unstable across attempts: %q vs %q — quarantine details must be byte-identical across resumes", msgs[0], msgs[1])
	}
}

// TestBruteForceRejectsHugeAtomCount pins the 1<<n overflow guard.
func TestBruteForceRejectsHugeAtomCount(t *testing.T) {
	atoms := mkAtoms(MaxBruteForceAtoms + 1)
	fe := &fakeEval{atoms: atoms}
	log, err := BruteForce(nil, fe, atoms, 1)
	if err == nil {
		t.Fatal("BruteForce accepted 25 atoms (2^25 variants)")
	}
	if log != nil {
		t.Error("failed BruteForce returned a log")
	}
	if fe.calls.Load() != 0 {
		t.Errorf("evaluator ran %d times before the guard", fe.calls.Load())
	}
	// Far over the limit — the pre-fix code would compute 1<<64 == 0 or
	// panic on makeslice; now it must error cleanly.
	if _, err := BruteForce(nil, fe, mkAtoms(64), 1); err == nil {
		t.Error("BruteForce accepted 64 atoms")
	}
}
