package search

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/transform"
)

// TestDDMinFindsExactSubset: interesting iff subset contains {3, 7}.
func TestDDMinFindsExactSubset(t *testing.T) {
	items := seq(20)
	calls := 0
	test := func(sub []int) bool {
		calls++
		return contains(sub, 3) && contains(sub, 7)
	}
	got := DDMin(items, test)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("DDMin = %v, want [3 7]", got)
	}
	if calls > 200 {
		t.Errorf("DDMin used %d tests for n=20; expected far fewer than 2^20", calls)
	}
}

func TestDDMinSingleElement(t *testing.T) {
	got := DDMin(seq(16), func(sub []int) bool { return contains(sub, 11) })
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("DDMin = %v, want [11]", got)
	}
}

func TestDDMinEmptyInteresting(t *testing.T) {
	// If even the empty set is interesting, callers handle that before
	// DDMin; DDMin itself must still return a 1-minimal set when any
	// subset is interesting — a single element.
	got := DDMin(seq(8), func(sub []int) bool { return true })
	if len(got) != 1 {
		t.Fatalf("DDMin with always-true test = %v, want singleton", got)
	}
}

func TestDDMinFullSetNeeded(t *testing.T) {
	all := seq(6)
	got := DDMin(all, func(sub []int) bool { return len(sub) == len(all) })
	if len(got) != len(all) {
		t.Fatalf("DDMin = %v, want all 6 items", got)
	}
}

// Property: DDMin's result is interesting and 1-minimal for random
// superset-closed ("monotone") tests.
func TestDDMinOneMinimalProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		k := int(kRaw)%n + 1
		// Required core: k random distinct items.
		perm := rng.Perm(n)
		core := perm[:k]
		test := func(sub []int) bool {
			for _, c := range core {
				if !contains(sub, c) {
					return false
				}
			}
			return true
		}
		got := DDMin(seq(n), test)
		if !test(got) {
			return false
		}
		// 1-minimality: dropping any single element fails.
		for i := range got {
			reduced := append(append([]int(nil), got[:i]...), got[i+1:]...)
			if test(reduced) {
				return false
			}
		}
		// For monotone tests, ddmin finds the exact core.
		if len(got) != k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitAndComplement(t *testing.T) {
	items := seq(10)
	for n := 1; n <= 12; n++ {
		chunks := split(items, n)
		var joined []int
		for _, c := range chunks {
			joined = append(joined, c...)
		}
		if len(joined) != len(items) {
			t.Fatalf("split(%d) loses items: %v", n, chunks)
		}
		for i, v := range joined {
			if v != items[i] {
				t.Fatalf("split(%d) reorders items", n)
			}
		}
		for _, c := range chunks {
			comp := complement(items, c)
			if len(comp)+len(c) != len(items) {
				t.Fatalf("complement size wrong for n=%d", n)
			}
		}
	}
}

// fakeEval simulates a tuning target: the variant passes iff every atom
// in `critical` stays 64-bit; speedup grows with the number of lowered
// atoms; lowering a "fragile" atom yields a runtime error. Safe for
// concurrent use, as batched searches require.
type fakeEval struct {
	atoms    []transform.Atom
	critical map[string]bool
	fragile  map[string]bool
	calls    atomic.Int64
}

func (f *fakeEval) Evaluate(a transform.Assignment) *Evaluation {
	f.calls.Add(1)
	lowered := 0
	bad := false
	boom := false
	for _, at := range f.atoms {
		if a.KindOf(at.QName, 8) == 4 {
			lowered++
			if f.critical[at.QName] {
				bad = true
			}
			if f.fragile[at.QName] {
				boom = true
			}
		}
	}
	ev := &Evaluation{
		Lowered:    lowered,
		TotalAtoms: len(f.atoms),
		Speedup:    1 + float64(lowered)*0.05,
		RelError:   0,
	}
	switch {
	case boom:
		ev.Status = StatusError
	case bad:
		ev.Status = StatusFail
		ev.RelError = 10
	default:
		ev.Status = StatusPass
		ev.RelError = 1e-6 * float64(lowered)
	}
	return ev
}

func mkAtoms(n int) []transform.Atom {
	out := make([]transform.Atom, n)
	for i := range out {
		out[i] = transform.Atom{QName: fmt.Sprintf("m.p.v%02d", i)}
	}
	return out
}

func TestPrecimoniousFindsCriticalSet(t *testing.T) {
	atoms := mkAtoms(24)
	fe := &fakeEval{
		atoms: atoms,
		critical: map[string]bool{
			"m.p.v05": true,
			"m.p.v17": true,
		},
	}
	out := Precimonious(nil, fe, atoms, Options{
		Criteria: Criteria{MaxRelError: 1e-3, MinSpeedup: 1.0},
	})
	sort.Strings(out.Minimal)
	if len(out.Minimal) != 2 || out.Minimal[0] != "m.p.v05" || out.Minimal[1] != "m.p.v17" {
		t.Fatalf("Minimal = %v, want the two critical atoms", out.Minimal)
	}
	if !out.Converged {
		t.Error("search did not converge")
	}
	if out.Final == nil || out.Final.Lowered != 22 {
		t.Fatalf("Final = %+v, want 22 lowered", out.Final)
	}
	total, pass, fail, _, _ := out.Log.Counts()
	if total == 0 || pass == 0 || fail == 0 {
		t.Errorf("counts: total=%d pass=%d fail=%d", total, pass, fail)
	}
	// Distinct variants only: the log must not contain duplicates.
	seen := map[string]bool{}
	for _, ev := range out.Log.Evals {
		k := ev.Assignment.Key()
		if seen[k] {
			t.Fatal("duplicate variant recorded in log")
		}
		seen[k] = true
	}
}

func TestPrecimoniousAllLowerable(t *testing.T) {
	atoms := mkAtoms(10)
	fe := &fakeEval{atoms: atoms, critical: map[string]bool{}}
	out := Precimonious(nil, fe, atoms, Options{Criteria: Criteria{MaxRelError: 1, MinSpeedup: 1}})
	if len(out.Minimal) != 0 {
		t.Fatalf("Minimal = %v, want empty (uniform 32-bit passes)", out.Minimal)
	}
	if out.Final == nil || out.Final.Lowered != 10 {
		t.Fatalf("Final: %+v", out.Final)
	}
	// The opening batch evaluates the all-32 variant plus the all-64
	// reference.
	if len(out.Log.Evals) != 2 {
		t.Errorf("all-lowerable search should evaluate exactly 2 variants, got %d", len(out.Log.Evals))
	}
}

func TestPrecimoniousErrorStatusRejected(t *testing.T) {
	atoms := mkAtoms(12)
	fe := &fakeEval{
		atoms:   atoms,
		fragile: map[string]bool{"m.p.v03": true},
	}
	out := Precimonious(nil, fe, atoms, Options{Criteria: Criteria{MaxRelError: 1, MinSpeedup: 1}})
	if len(out.Minimal) != 1 || out.Minimal[0] != "m.p.v03" {
		t.Fatalf("Minimal = %v, want the fragile atom", out.Minimal)
	}
	_, _, _, _, errs := out.Log.Counts()
	if errs == 0 {
		t.Error("no error-status variants recorded")
	}
}

func TestPrecimoniousBudget(t *testing.T) {
	atoms := mkAtoms(40)
	fe := &fakeEval{atoms: atoms, critical: map[string]bool{"m.p.v09": true, "m.p.v23": true, "m.p.v31": true}}
	out := Precimonious(nil, fe, atoms, Options{
		Criteria:       Criteria{MaxRelError: 1e-3, MinSpeedup: 1},
		MaxEvaluations: 5,
	})
	if out.Converged {
		t.Error("budget-limited search reported convergence")
	}
	if len(out.Log.Evals) > 5 {
		t.Errorf("budget exceeded: %d evaluations", len(out.Log.Evals))
	}
}

func TestPrecimoniousEmptyAtoms(t *testing.T) {
	fe := &fakeEval{}
	out := Precimonious(nil, fe, nil, Options{})
	if out.Minimal != nil || out.Final != nil || !out.Converged {
		t.Errorf("empty atoms: %+v", out)
	}
}

func TestPrecimoniousRespectsMinSpeedup(t *testing.T) {
	// With MinSpeedup well above what any variant reaches, even passing
	// variants are rejected and everything stays 64-bit.
	atoms := mkAtoms(8)
	fe := &fakeEval{atoms: atoms}
	out := Precimonious(nil, fe, atoms, Options{Criteria: Criteria{MaxRelError: 1, MinSpeedup: 99}})
	if len(out.Minimal) != len(atoms) {
		t.Fatalf("Minimal = %d atoms, want all %d", len(out.Minimal), len(atoms))
	}
}

func TestBruteForceEnumerates(t *testing.T) {
	atoms := mkAtoms(5)
	fe := &fakeEval{atoms: atoms, critical: map[string]bool{"m.p.v02": true}}
	log, err := BruteForce(nil, fe, atoms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Evals) != 32 {
		t.Fatalf("brute force explored %d variants, want 32", len(log.Evals))
	}
	total, pass, fail, _, _ := log.Counts()
	if total != 32 || pass != 16 || fail != 16 {
		t.Errorf("counts: total=%d pass=%d fail=%d, want 32/16/16", total, pass, fail)
	}
	best := log.Best(Criteria{MaxRelError: 1, MinSpeedup: 1})
	if best == nil || best.Lowered != 4 {
		t.Fatalf("best = %+v, want 4 lowered (all but critical)", best)
	}
}

func TestFrontier(t *testing.T) {
	log := NewLog()
	add := func(speedup, err float64) {
		log.Add(&Evaluation{
			Assignment: transform.Assignment{fmt.Sprintf("v%d", len(log.Evals)): 4},
			Status:     StatusPass, Speedup: speedup, RelError: err,
		})
	}
	add(1.0, 0.0)  // frontier (most accurate)
	add(1.5, 1e-6) // frontier
	add(1.4, 1e-5) // dominated by (1.5, 1e-6)
	add(2.0, 1e-3) // frontier
	add(0.8, 1e-2) // dominated
	f := log.Frontier()
	if len(f) != 3 {
		for _, e := range f {
			t.Logf("frontier: speedup=%g err=%g", e.Speedup, e.RelError)
		}
		t.Fatalf("frontier size = %d, want 3", len(f))
	}
	for i := 1; i < len(f); i++ {
		if f[i].RelError < f[i-1].RelError {
			t.Error("frontier not sorted by error")
		}
		if f[i].Speedup < f[i-1].Speedup {
			t.Error("frontier speedup must increase with error")
		}
	}
}

func TestLogCacheDistinguishesAssignments(t *testing.T) {
	log := NewLog()
	a := transform.Assignment{"x": 4, "y": 8}
	b := transform.Assignment{"x": 8, "y": 4}
	log.Add(&Evaluation{Assignment: a})
	if _, ok := log.Lookup(b); ok {
		t.Error("different assignments conflated by cache key")
	}
	if _, ok := log.Lookup(transform.Assignment{"x": 4, "y": 8}); !ok {
		t.Error("identical assignment missed by cache")
	}
}

// TestParallelismInvariance: the batched search must produce an
// identical evaluation log and outcome at any parallelism level.
func TestParallelismInvariance(t *testing.T) {
	atoms := mkAtoms(24)
	runAt := func(par int) *Outcome {
		fe := &fakeEval{
			atoms:    atoms,
			critical: map[string]bool{"m.p.v05": true, "m.p.v17": true},
			fragile:  map[string]bool{"m.p.v09": true},
		}
		return Precimonious(nil, fe, atoms, Options{
			Criteria:    Criteria{MaxRelError: 1e-3, MinSpeedup: 1},
			Parallelism: par,
		})
	}
	ref := runAt(1)
	for _, par := range []int{2, 4, 16} {
		got := runAt(par)
		if len(got.Log.Evals) != len(ref.Log.Evals) {
			t.Fatalf("parallelism %d: %d evals vs %d", par, len(got.Log.Evals), len(ref.Log.Evals))
		}
		for i := range ref.Log.Evals {
			a, b := ref.Log.Evals[i], got.Log.Evals[i]
			if a.Assignment.Key() != b.Assignment.Key() || a.Status != b.Status || a.Speedup != b.Speedup {
				t.Fatalf("parallelism %d: eval %d differs: %v vs %v", par, i, a, b)
			}
		}
		sort.Strings(got.Minimal)
		refMin := append([]string(nil), ref.Minimal...)
		sort.Strings(refMin)
		if fmt.Sprint(got.Minimal) != fmt.Sprint(refMin) {
			t.Fatalf("parallelism %d: minimal %v vs %v", par, got.Minimal, refMin)
		}
	}
}

// TestBatchEvalDeduplicates: identical assignments within one batch are
// evaluated once and both slots resolve to the same record.
func TestBatchEvalDeduplicates(t *testing.T) {
	atoms := mkAtoms(4)
	fe := &fakeEval{atoms: atoms}
	log := NewLog()
	a := transform.Uniform(atoms, 4)
	evs := batchEval(nil, log, fe, []transform.Assignment{a, a.Clone(), transform.Uniform(atoms, 8)}, 3, nil)
	if fe.calls.Load() != 2 {
		t.Errorf("evaluator called %d times, want 2", fe.calls.Load())
	}
	if evs[0] != evs[1] {
		t.Error("duplicate batch entries resolved to different records")
	}
	if len(log.Evals) != 2 {
		t.Errorf("log holds %d evals, want 2", len(log.Evals))
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPass: "pass", StatusFail: "fail",
		StatusTimeout: "timeout", StatusError: "error",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
