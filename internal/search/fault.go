package search

import (
	"fmt"
	"sync/atomic"

	"repro/internal/transform"
)

// FaultMode selects how a FaultInjector fails.
type FaultMode int

const (
	// FaultPanic aborts the evaluation with a panic carrying an
	// *InjectedFault, simulating a kill (job-limit expiry, OOM, node
	// failure) at an arbitrary point of the search.
	FaultPanic FaultMode = iota
	// FaultError returns a StatusError evaluation instead, simulating a
	// persistently failing toolchain.
	FaultError
)

// InjectedFault is the panic value raised by a FaultInjector in
// FaultPanic mode.
type InjectedFault struct {
	// After is the number of evaluations that completed before the
	// fault fired.
	After int64
}

func (e *InjectedFault) Error() string {
	return fmt.Sprintf("search: injected fault after %d evaluations", e.After)
}

// FaultInjector wraps an Evaluator and fails once Limit evaluations
// have completed — the harness behind the crash-safety tests: killing a
// journaled search at *any* evaluation and resuming must reproduce the
// byte-identical evaluation log of an uninterrupted run. It is safe for
// concurrent use, as batched searches require.
type FaultInjector struct {
	Inner Evaluator
	Limit int64 // evaluations allowed before the fault fires
	Mode  FaultMode

	n atomic.Int64
}

// Calls returns the number of Evaluate calls admitted so far.
func (f *FaultInjector) Calls() int64 { return f.n.Load() }

// Evaluate implements Evaluator.
func (f *FaultInjector) Evaluate(a transform.Assignment) *Evaluation {
	if f.n.Add(1) > f.Limit {
		if f.Mode == FaultError {
			return &Evaluation{Assignment: a, Status: StatusError, Detail: "injected fault"}
		}
		panic(&InjectedFault{After: f.Limit})
	}
	return f.Inner.Evaluate(a)
}
