package search

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/transform"
)

// FaultMode selects how a FaultInjector fails.
type FaultMode int

const (
	// FaultPanic aborts the evaluation with a panic carrying an
	// *InjectedFault, simulating a kill (job-limit expiry, OOM, node
	// failure) at an arbitrary point of the search.
	FaultPanic FaultMode = iota
	// FaultError returns a StatusError evaluation instead, simulating a
	// persistently failing toolchain.
	FaultError
	// FaultFlaky panics probabilistically: attempt k on assignment key K
	// is killed iff a hash of (Seed, K, k) falls below Rate. The decision
	// is a pure function of the key and the per-key attempt number, so it
	// is deterministic and independent of evaluation order and
	// parallelism — and distinct across attempts, so a supervised retry
	// can succeed where the first attempt died. This is the transient
	// infrastructure noise (node faults, scheduler kills) a resilient
	// search must absorb without changing its evaluation log.
	FaultFlaky
	// FaultCrashKey panics on every evaluation of the assignment whose
	// canonical key equals CrashKey — a poisoned configuration that no
	// retry cures. A resilience supervisor must quarantine it rather
	// than die, and a resumed run must not re-crash on it.
	FaultCrashKey
)

// InjectedFault is the panic value raised by a FaultInjector.
type InjectedFault struct {
	// After is the number of evaluations that completed before the
	// fault fired (FaultPanic mode).
	After int64
	// Key is the canonical assignment key the fault fired on
	// (FaultFlaky and FaultCrashKey modes).
	Key string
	// Attempt is the 1-based per-key attempt number (FaultFlaky mode).
	Attempt int64
	// Persistent marks a fault that retrying cannot cure (FaultCrashKey
	// mode).
	Persistent bool
}

func (e *InjectedFault) Error() string {
	switch {
	case e.Persistent:
		// Deliberately excludes attempt counts: quarantine details built
		// from this message must be identical across runs and resumes.
		return fmt.Sprintf("search: injected crash on %q", e.Key)
	case e.Key != "":
		return fmt.Sprintf("search: injected flaky fault on %q (attempt %d)", e.Key, e.Attempt)
	default:
		return fmt.Sprintf("search: injected fault after %d evaluations", e.After)
	}
}

// Transient reports whether retrying the evaluation could succeed. The
// resilience supervisor's default classifier honors it: persistent
// faults skip the retry loop and quarantine immediately.
func (e *InjectedFault) Transient() bool { return !e.Persistent }

// FaultInjector wraps an Evaluator and injects failures per Mode — the
// harness behind the crash-safety and resilience tests: killing a
// journaled search at *any* evaluation and resuming must reproduce the
// byte-identical evaluation log of an uninterrupted run, and a
// supervised search must absorb flaky faults (and quarantine persistent
// ones) without distorting that log. It is safe for concurrent use, as
// batched searches require.
type FaultInjector struct {
	Inner Evaluator
	// Limit is the number of evaluations allowed before the fault fires
	// (FaultPanic and FaultError modes).
	Limit int64
	Mode  FaultMode
	// Rate is the per-attempt kill probability in FaultFlaky mode.
	Rate float64
	// Seed drives the FaultFlaky hash.
	Seed int64
	// CrashKey is the poisoned canonical assignment key in FaultCrashKey
	// mode.
	CrashKey string

	n        atomic.Int64
	attempts sync.Map // assignment key -> *atomic.Int64 (FaultFlaky)
}

// Calls returns the number of Evaluate calls admitted so far.
func (f *FaultInjector) Calls() int64 { return f.n.Load() }

// bump returns the 1-based attempt number for key.
func (f *FaultInjector) bump(key string) int64 {
	c, _ := f.attempts.LoadOrStore(key, new(atomic.Int64))
	return c.(*atomic.Int64).Add(1)
}

// FaultFrac hashes (seed, key, attempt) to a uniform fraction in
// [0, 1) — the decision stream behind FaultFlaky. Exported so
// process-level fault injection (the fleet worker's kill-rate mode)
// draws deaths from the same deterministic, order-independent stream:
// whether a kill is simulated in-process or delivered as a real
// SIGKILL, the set of (key, attempt) pairs that die is identical.
func FaultFrac(seed int64, key string, attempt int64) float64 {
	return faultFrac(seed, key, attempt)
}

// faultFrac hashes (seed, key, attempt) to a uniform fraction in [0, 1).
// FNV-1a alone avalanches its final bytes poorly (a trailing counter
// only perturbs the low ~42 bits), so the sum is passed through a
// 64-bit finalizer before taking the high bits.
func faultFrac(seed int64, key string, attempt int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, key, attempt)
	return float64(mix64(h.Sum64())>>11) / float64(1<<53)
}

// mix64 is the MurmurHash3 fmix64 finalizer: a bijective scramble whose
// every output bit depends on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Evaluate implements Evaluator.
func (f *FaultInjector) Evaluate(a transform.Assignment) *Evaluation {
	n := f.n.Add(1)
	switch f.Mode {
	case FaultFlaky:
		key := a.Key()
		attempt := f.bump(key)
		if faultFrac(f.Seed, key, attempt) < f.Rate {
			panic(&InjectedFault{Key: key, Attempt: attempt})
		}
	case FaultCrashKey:
		if a.Key() == f.CrashKey {
			panic(&InjectedFault{Key: f.CrashKey, Persistent: true})
		}
	default:
		if n > f.Limit {
			if f.Mode == FaultError {
				return &Evaluation{Assignment: a, Status: StatusError, Detail: "injected fault"}
			}
			panic(&InjectedFault{After: f.Limit})
		}
	}
	return f.Inner.Evaluate(a)
}
