package search

import (
	"context"
	"fmt"
)

// Cancelled is the panic value that unwinds a search when its context
// is cancelled — a SIGINT/SIGTERM from the batch scheduler, an expired
// wall-clock budget, or a hard cancellation after the drain grace
// period. It implements Abort, so the batched evaluation layer flushes
// the completed deterministic prefix to the log (and journal) and
// salvages completed sibling results before the unwind: a cancelled
// run's journal is always an exact, resumable prefix of the
// uninterrupted run's.
//
// Cancellation is raised by panic, like *resilience.AbortError, so it
// travels the same salvage-and-recover path; the tuner converts it into
// a partial result instead of a stack trace.
type Cancelled struct {
	// Err is the context error that triggered the stop
	// (context.Canceled for a signal, context.DeadlineExceeded for a
	// wall-clock budget).
	Err error
}

// NewCancelled wraps a context error (nil is normalized to
// context.Canceled so a Cancelled always explains itself).
func NewCancelled(err error) *Cancelled {
	if err == nil {
		err = context.Canceled
	}
	return &Cancelled{Err: err}
}

func (c *Cancelled) Error() string {
	return fmt.Sprintf("search: cancelled: %v", c.Err)
}

// SearchAbort implements Abort: a cancellation is a deliberate,
// supervised termination, so completed sibling evaluations are salvaged
// on the way out.
func (c *Cancelled) SearchAbort() string { return c.Error() }

// Unwrap exposes the underlying context error to errors.Is.
func (c *Cancelled) Unwrap() error { return c.Err }

// checkCancelled panics with a *Cancelled when ctx is done. A nil ctx
// never cancels.
func checkCancelled(ctx context.Context) {
	if ctx != nil && ctx.Err() != nil {
		panic(NewCancelled(ctx.Err()))
	}
}
