package search

import (
	"fmt"
	"sort"
)

// The Precimonious search finds the 1-minimal set of variables that must
// stay in 64-bit precision. Here the synthetic evaluator accepts a
// variant only when v02 stays high.
func ExamplePrecimonious() {
	atoms := mkAtoms(8)
	eval := &fakeEval{atoms: atoms, critical: map[string]bool{"m.p.v02": true}}
	out := Precimonious(nil, eval, atoms, Options{
		Criteria: Criteria{MaxRelError: 1e-3, MinSpeedup: 1.0},
	})
	sort.Strings(out.Minimal)
	fmt.Println("must stay 64-bit:", out.Minimal)
	fmt.Printf("best variant lowers %d/%d atoms at %.2fx\n",
		out.Final.Lowered, out.Final.TotalAtoms, out.Final.Speedup)
	// Output:
	// must stay 64-bit: [m.p.v02]
	// best variant lowers 7/8 atoms at 1.35x
}
