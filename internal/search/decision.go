package search

// Decision telemetry: a structured, per-round record of every
// candidate's lifecycle through the delta-debugging search — proposed,
// served from cache, evaluated, pruned on budget — together with the
// evolving best-so-far and Pareto frontier. A DecisionSink observes the
// stream; the ledger package persists it as an append-only sidecar.
//
// The stream is derived exclusively from deterministic search state
// (round structure, batch order, the evaluation log), never from
// timing, parallelism, or warm-vs-fresh provenance. It is therefore
// byte-stable: identical at every parallelism level and across
// kill/-resume cycles (a resumed run replays the same proposals and
// emits the same decisions), which is what makes decision logs
// comparable across runs and minable as training data for a surrogate
// predictor. Enforced by core.TestDecisionLogKillResumeByteIdentical.

// Candidate lifecycle outcomes recorded in a Decision.
const (
	// DecisionEvaluated: the candidate's assignment was resolved by an
	// evaluation newly appended to the log this round (fresh or replayed
	// from a resumed journal — indistinguishable by design, so the
	// stream is byte-stable under -resume).
	DecisionEvaluated = "evaluated"
	// DecisionCached: the assignment was already in the log (an earlier
	// round proposed it, or a duplicate earlier in this round's batch).
	DecisionCached = "cached"
	// DecisionPruned: the evaluation budget was exhausted before this
	// candidate's slot; it was never evaluated and the search stops
	// converging.
	DecisionPruned = "pruned"
)

// Decision is one candidate's recorded lifecycle in one search round.
type Decision struct {
	Round   int    // 1-based search round
	Seq     int    // 1-based position within the round's candidate list
	AKey    string // canonical assignment key (transform.Assignment.Key)
	Outcome string // DecisionEvaluated / DecisionCached / DecisionPruned

	// Evaluation facts; zero for DecisionPruned.
	Status   Status
	Speedup  float64
	RelError float64
	Lowered  int
	Accepted bool // satisfied the search criteria this round
}

// RoundSummary closes one search round: the candidate funnel tallies
// and the search state the round left behind.
type RoundSummary struct {
	Round      int
	Candidates int // proposed this round (including pruned)
	Evaluated  int
	Cached     int
	Pruned     int
	Accepted   int

	Evals       int     // cumulative log length after the round
	BestSpeedup float64 // best accepted speedup so far (0 = none yet)
	BestAKey    string  // its assignment key
	Frontier    int     // current speedup-error Pareto frontier size
}

// DecisionSink observes the search's decision stream. Calls arrive in
// deterministic order on the search goroutine: RoundStart, one Decide
// per candidate in batch order, RoundEnd. Implementations must not
// influence the search; a sink is purely observational and, like the
// span/metrics hooks, never participates in the run fingerprint or the
// journal bytes.
type DecisionSink interface {
	RoundStart(round, candidates int)
	Decide(d Decision)
	RoundEnd(s RoundSummary)
}

// emitRoundDecisions derives one round's decision stream from the batch
// results, in batch order, and closes the round with the funnel tallies
// and the post-round search state. preEvals is the log length before
// the batch ran: an evaluation whose index lands past it was appended
// this round ("evaluated" — fresh or replayed, indistinguishable by
// design), anything else was served from the in-run cache. keyOf
// resolves the assignment key of a budget-pruned candidate that never
// built an evaluation.
func emitRoundDecisions(sink DecisionSink, log *Log, c Criteria, round int, keyOf func(i int) string, candidates int, evs []*Evaluation, ok []bool, preEvals int) {
	s := RoundSummary{Round: round, Candidates: candidates}
	seen := make(map[string]bool, len(evs))
	for i, ev := range evs {
		k := ev.Assignment.Key()
		d := Decision{
			Round: round, Seq: i + 1, AKey: k,
			Status: ev.Status, Speedup: ev.Speedup, RelError: ev.RelError,
			Lowered: ev.Lowered, Accepted: ok[i],
		}
		if ev.Index > preEvals && !seen[k] {
			d.Outcome = DecisionEvaluated
			s.Evaluated++
		} else {
			d.Outcome = DecisionCached
			s.Cached++
		}
		seen[k] = true
		if ok[i] {
			s.Accepted++
		}
		sink.Decide(d)
	}
	for i := len(evs); i < candidates; i++ {
		s.Pruned++
		sink.Decide(Decision{Round: round, Seq: i + 1, AKey: keyOf(i), Outcome: DecisionPruned})
	}
	s.Evals = len(log.Evals)
	if best := log.Best(c); best != nil {
		s.BestSpeedup = best.Speedup
		s.BestAKey = best.Assignment.Key()
	}
	s.Frontier = len(log.Frontier())
	sink.RoundEnd(s)
}
