package search

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/transform"
)

// Outcome is the result of a Precimonious search.
type Outcome struct {
	// Minimal is the 1-minimal set of atoms that must remain 64-bit.
	Minimal []string
	// Final is the corresponding variant's evaluation (all other atoms
	// lowered), nil if even the all-64-bit configuration fails.
	Final *Evaluation
	// Log records every variant explored, in evaluation order.
	Log *Log
	// Converged is false if the search stopped on budget.
	Converged bool
}

// Options configures the Precimonious search.
type Options struct {
	Criteria Criteria
	// MaxEvaluations bounds distinct variant evaluations (0 =
	// unlimited); the paper's 12-hour job limit plays this role for
	// MOM6, whose search did not finish.
	MaxEvaluations int
	// Parallelism bounds concurrent variant evaluations within a batch
	// (default 1). The search is *batched* as in the paper's artifact:
	// at each delta-debugging step every candidate subset of the
	// current granularity is generated (T1), then transformed and
	// evaluated in parallel (T2/T3), and the outcomes drive the next
	// step (T4). Results — including the evaluation log — are identical
	// for every parallelism level; the evaluator must be safe for
	// concurrent use when Parallelism > 1.
	Parallelism int
	// Warm seeds the log's warm cache with prior evaluations keyed by
	// canonical assignment key (transform.Assignment.Key()), typically
	// replayed from a crash journal. A proposed assignment found here is
	// appended to the log without re-running the evaluator, so a
	// resumed search replays past work for free and produces the same
	// evaluation log as an uninterrupted run.
	Warm map[string]*Evaluation
	// Salvaged seeds prior evaluations recovered from an aborted run's
	// salvage sidecar (see Log.Salvaged). Like Warm they are served
	// without re-evaluation, but they replay as fresh (replayed=false)
	// so the journal hook persists them at their deterministic index —
	// they were never durable in the journal proper. A key present in
	// both Warm and Salvaged is served from Warm.
	Salvaged map[string]*Evaluation
	// OnAdd observes every log append in deterministic order; replayed
	// is true for records served from Warm. The crash journal appends
	// (and fsyncs) fresh records from this hook.
	OnAdd func(ev *Evaluation, replayed bool)
	// OnSalvage observes evaluations salvaged when a supervised abort
	// unwinds a batch (completed results past the panicked slot). The
	// crash journal persists these to its events sidecar.
	OnSalvage func(ev *Evaluation)
	// Log, if non-nil, is the (empty) evaluation log the search records
	// into, instead of creating its own. Callers that must render a
	// partial report when the search aborts by panic — the resilience
	// supervisor's circuit breaker fails fast this way — pre-create the
	// log so the completed work survives the unwind.
	Log *Log
	// Span, if non-nil, is the parent span under which the search emits
	// "search.round"/"batch"/"eval" trace spans. Metrics, if non-nil,
	// receives counters and histograms. Both are purely observational:
	// the search's behavior, evaluation order, and journal bytes are
	// identical whether or not they are set, and neither participates in
	// the run fingerprint.
	Span    *obs.Span
	Metrics *obs.Registry
	// Decisions, if non-nil, receives the per-round candidate-lifecycle
	// stream (see DecisionSink). Purely observational like Span/Metrics,
	// and byte-stable across parallelism and resume by construction: the
	// stream is derived only from the deterministic evaluation log.
	Decisions DecisionSink
}

// Precimonious runs the delta-debugging-based FPPT search of §III-B over
// the given atoms: it finds a 1-minimal set of variables that must stay
// in 64-bit precision, lowering everything else to 32-bit, subject to
// the correctness and performance criteria. Every distinct variant
// evaluated is recorded in the returned Log (the data behind Table II
// and Figures 5-7).
//
// ctx bounds the search's lifetime (nil means never cancelled): once it
// is done, no new evaluation starts, in-flight evaluations drain, and
// the search unwinds by panicking with a *Cancelled — an Abort, so the
// journal keeps the completed deterministic prefix and completed
// siblings are salvaged. A resumed search replays that prefix and
// finishes with a byte-identical journal.
func Precimonious(ctx context.Context, eval Evaluator, atoms []transform.Atom, opts Options) *Outcome {
	log := opts.Log
	if log == nil {
		log = NewLog()
	}
	for k, ev := range opts.Salvaged {
		log.SeedSalvaged(k, ev)
	}
	for k, ev := range opts.Warm {
		log.SeedWarm(k, ev) // journal records win over salvage events
	}
	log.SetOnAdd(opts.OnAdd)
	log.SetOnSalvage(opts.OnSalvage)
	if opts.Metrics != nil {
		log.SetMetrics(opts.Metrics)
	}
	out := &Outcome{Log: log, Converged: true}
	if len(atoms) == 0 {
		return out
	}

	remaining := func() int {
		if opts.MaxEvaluations == 0 {
			return 1 << 30
		}
		return opts.MaxEvaluations - len(log.Evals)
	}

	// lowerAllBut builds the assignment keeping exactly `high` in
	// 64-bit precision.
	lowerAllBut := func(high []int) transform.Assignment {
		keep := make(map[int]bool, len(high))
		for _, i := range high {
			keep[i] = true
		}
		a := make(transform.Assignment, len(atoms))
		for i, at := range atoms {
			if keep[i] {
				a[at.QName] = 8
			} else {
				a[at.QName] = 4
			}
		}
		return a
	}

	// runBatch evaluates the candidates' assignments (budget-capped)
	// and returns per-candidate acceptance. Candidates beyond the
	// budget are reported as not accepted and flip Converged off.
	round := 0
	runBatch := func(cands [][]int) []bool {
		ok := make([]bool, len(cands))
		n := len(cands)
		if r := remaining(); n > r {
			n = r
			out.Converged = false
		}
		if n <= 0 {
			return ok
		}
		// Stop before proposing a new batch once the deadline has passed:
		// the between-batch gate catches cancellations that arrive while
		// no evaluation is in flight.
		checkCancelled(ctx)
		round++
		rsp := opts.Span.Child(obs.SpanSearchRound)
		rsp.AttrInt("round", int64(round))
		rsp.AttrInt("candidates", int64(n))
		defer rsp.End()
		if opts.Decisions != nil {
			opts.Decisions.RoundStart(round, len(cands))
		}
		preEvals := len(log.Evals)
		batch := make([]transform.Assignment, n)
		for i := 0; i < n; i++ {
			batch[i] = lowerAllBut(cands[i])
		}
		evs := batchEval(ctx, log, eval, batch, opts.Parallelism, rsp)
		for i, ev := range evs {
			ok[i] = opts.Criteria.Accept(ev)
		}
		if opts.Decisions != nil {
			keyOf := func(i int) string { return lowerAllBut(cands[i]).Key() }
			emitRoundDecisions(opts.Decisions, log, opts.Criteria, round, keyOf, len(cands), evs, ok, preEvals)
		}
		return ok
	}

	idx := make([]int, len(atoms))
	for i := range idx {
		idx[i] = i
	}

	// The all-32-bit variant is the empty "stay-high" set: if it
	// passes, the minimal set is empty. The all-64-bit configuration
	// *is* the baseline and satisfies the criteria by definition; it is
	// evaluated anyway so the log records it (as the paper's searches
	// do).
	first := runBatch([][]int{nil, idx})
	if first[0] {
		out.Minimal = nil
		out.Final, _ = log.Lookup(lowerAllBut(nil))
		return out
	}

	// Batched ddmin (Zeller & Hildebrandt) over the stay-high set.
	cur := idx
	n := 2
	for len(cur) >= 2 && out.Converged {
		chunks := split(cur, n)
		// Candidate order: each chunk alone, then each complement.
		var cands [][]int
		cands = append(cands, chunks...)
		if n > 2 {
			for i := range chunks {
				cands = append(cands, complement(cur, chunks[i]))
			}
		}
		accepted := runBatch(cands)

		pick := -1
		for i, ok := range accepted {
			if ok {
				pick = i
				break
			}
		}
		switch {
		case pick >= 0 && pick < len(chunks):
			cur = cands[pick]
			n = 2
		case pick >= 0:
			cur = cands[pick]
			n = maxInt(n-1, 2)
		default:
			if n >= len(cur) {
				// 1-minimal.
				out.Minimal = atomNames(atoms, cur)
				if ev, okc := log.Lookup(lowerAllBut(cur)); okc {
					out.Final = ev
				}
				return out
			}
			n = minInt(len(cur), 2*n)
		}
	}
	out.Minimal = atomNames(atoms, cur)
	if ev, okc := log.Lookup(lowerAllBut(cur)); okc {
		out.Final = ev
	}
	return out
}

func atomNames(atoms []transform.Atom, idx []int) []string {
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = atoms[k].QName
	}
	return out
}

// MaxBruteForceAtoms bounds the exhaustive sweep: 2^24 variants is
// already ~16.8M evaluations, far beyond any practical budget, and
// larger shifts overflow the variant count on 32-bit ints.
const MaxBruteForceAtoms = 24

// BruteForce evaluates all 2^n variants over atoms (used for funarc's
// Fig. 2; n must be small). Atom i is lowered in variant v when bit i of
// v is set. Variants are evaluated with the given parallelism but logged
// in enumeration order. Atom counts above MaxBruteForceAtoms are
// rejected rather than silently attempting an astronomically large (or,
// after shift overflow, nonsensically sized) sweep. ctx cancels the
// sweep like Precimonious: the unwind is a *Cancelled panic.
func BruteForce(ctx context.Context, eval Evaluator, atoms []transform.Atom, parallelism int) (*Log, error) {
	n := len(atoms)
	if n > MaxBruteForceAtoms {
		return nil, fmt.Errorf("search: brute force over %d atoms needs 2^%d evaluations; the limit is %d atoms — use Precimonious for larger spaces", n, n, MaxBruteForceAtoms)
	}
	log := NewLog()
	batch := make([]transform.Assignment, 1<<uint(n))
	for v := range batch {
		a := make(transform.Assignment, n)
		for i, at := range atoms {
			if v&(1<<uint(i)) != 0 {
				a[at.QName] = 4
			} else {
				a[at.QName] = 8
			}
		}
		batch[v] = a
	}
	batchEval(ctx, log, eval, batch, parallelism, nil)
	return log, nil
}
