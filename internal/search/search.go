// Package search implements the design-space exploration of the paper's
// tuning cycle (§III-B): the delta-debugging-based Precimonious search
// for a 1-minimal mixed-precision variant, plus the brute-force sweep
// used for the funarc motivating example (§II-B).
package search

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/transform"
)

// Status classifies a variant evaluation into the buckets of Table II.
type Status int

// Variant outcomes.
const (
	StatusPass    Status = iota // ran to completion, within the error threshold
	StatusFail                  // ran to completion, error above threshold
	StatusTimeout               // exceeded 3x the baseline budget
	StatusError                 // runtime failure (non-finite values, bounds, ...)

	// StatusInfra marks an evaluation whose variant outcome could not be
	// determined because the evaluation *infrastructure* failed
	// persistently — the assignment was quarantined by a resilience
	// supervisor after repeated worker panics. It is deliberately not one
	// of the four Table II buckets above: pass/fail/timeout/error are
	// deterministic properties of the assignment, while an infra record
	// says only "we could not find out". Counts excludes it so
	// retry/quarantine machinery cannot distort the paper's outcome
	// statistics.
	StatusInfra
)

func (s Status) String() string {
	switch s {
	case StatusPass:
		return "pass"
	case StatusFail:
		return "fail"
	case StatusTimeout:
		return "timeout"
	case StatusError:
		return "error"
	case StatusInfra:
		return "infra"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Abort is implemented by panic values that represent a deliberate,
// supervised termination of the search (a tripped circuit breaker, an
// exhausted quarantine budget) rather than an uncontrolled crash. When a
// batched evaluation is unwound by an Abort, completed sibling results
// are salvaged into Log.Salvaged before the panic propagates, so
// paid-for evaluations survive to the next resume instead of being
// silently discarded.
type Abort interface {
	error
	// SearchAbort describes why the search was terminated.
	SearchAbort() string
}

// Evaluation is the outcome of dynamically evaluating one variant
// (stage T3 of the tuning cycle).
type Evaluation struct {
	Assignment transform.Assignment
	Status     Status
	Speedup    float64 // Eq. (1); valid when the run completed
	RelError   float64 // correctness metric relative error
	Lowered    int     // atoms at 32-bit
	TotalAtoms int
	Detail     string // failure detail, wrapper counts, etc.
	Index      int    // evaluation order (1-based), set by the searches
}

// Pct32 is the percentage of atoms at 32-bit (the x-axis of Fig. 5).
func (e *Evaluation) Pct32() float64 {
	if e.TotalAtoms == 0 {
		return 0
	}
	return 100 * float64(e.Lowered) / float64(e.TotalAtoms)
}

// Evaluator evaluates a precision assignment. Implementations transform,
// compile (analyze), and run the variant, returning its measured
// performance and correctness. Evaluations must be deterministic unless
// the underlying machine model injects seeded noise.
type Evaluator interface {
	Evaluate(a transform.Assignment) *Evaluation
}

// SpanEvaluator is optionally implemented by evaluators that can
// attribute sub-phases of an evaluation (interpreter runs, retries) to
// a parent trace span. The span may be nil — implementations must
// treat it as the no-op span, and the evaluation result must be
// identical either way (tracing never perturbs outcomes).
type SpanEvaluator interface {
	Evaluator
	EvaluateSpan(sp *obs.Span, a transform.Assignment) *Evaluation
}

// Evaluate runs one evaluation, threading the parent span through to
// evaluators that support attribution and falling back to the plain
// interface for those that do not (e.g. fault-injection wrappers).
func Evaluate(eval Evaluator, sp *obs.Span, a transform.Assignment) *Evaluation {
	if se, ok := eval.(SpanEvaluator); ok {
		return se.EvaluateSpan(sp, a)
	}
	return eval.Evaluate(a)
}

// Criteria decides whether an evaluation "passes" the search: correct
// within the threshold and at least as fast as required (the paper
// rejects variants less performant than the baseline).
type Criteria struct {
	MaxRelError float64
	MinSpeedup  float64
}

// Accept reports whether ev satisfies the criteria.
func (c Criteria) Accept(ev *Evaluation) bool {
	return ev.Status == StatusPass && ev.RelError <= c.MaxRelError && ev.Speedup >= c.MinSpeedup
}

// warmEntry is one warm-cache record. salvaged marks an evaluation
// recovered from a supervised abort's salvage sidecar rather than the
// journal proper: it is served without re-evaluation like any warm
// record, but is reported to OnAdd as fresh (replayed=false) so the
// journal hook persists it at its proper deterministic index.
type warmEntry struct {
	ev       *Evaluation
	salvaged bool
}

// Log records every variant explored by a search, for Table II and
// Figures 5–7.
type Log struct {
	Evals []*Evaluation
	cache map[string]*Evaluation

	// Salvaged holds completed evaluations that could not be appended to
	// Evals because a supervised abort unwound the batch before their
	// deterministic slot was reached (an earlier slot panicked). They are
	// recorded in batch order. A journal layer persists them out-of-band
	// (see SetOnSalvage) so a resumed search serves them from the warm
	// cache instead of paying for the evaluation again.
	Salvaged []*Evaluation

	// warm holds prior evaluations (typically replayed from a crash
	// journal) keyed by canonical assignment key. When the search
	// proposes an assignment found here, the prior record is appended to
	// the log in place of a fresh evaluation, so a resumed search
	// replays to the point of death without re-running anything.
	warm map[string]warmEntry
	// onAdd observes every Add in deterministic log order; replayed
	// marks records served from the warm cache. The crash journal hooks
	// in here.
	onAdd func(ev *Evaluation, replayed bool)
	// onSalvage observes every salvaged evaluation, in batch order.
	onSalvage func(ev *Evaluation)
	// metrics, when set, receives evaluation counters as records land in
	// the log. Purely observational: it never influences search behavior
	// or the journal (see SetMetrics).
	metrics *obs.Registry
}

// NewLog returns an empty evaluation log.
func NewLog() *Log {
	return &Log{cache: make(map[string]*Evaluation)}
}

// Lookup returns a prior evaluation of an identical assignment, if any.
func (l *Log) Lookup(a transform.Assignment) (*Evaluation, bool) {
	ev, ok := l.cache[a.Key()]
	return ev, ok
}

// SeedWarm registers a prior evaluation under a canonical assignment
// key; a later proposal of that assignment is served from it instead of
// being re-evaluated.
func (l *Log) SeedWarm(key string, ev *Evaluation) {
	if l.warm == nil {
		l.warm = make(map[string]warmEntry)
	}
	l.warm[key] = warmEntry{ev: ev}
}

// SeedSalvaged registers an evaluation salvaged from an aborted run's
// sidecar. Like SeedWarm it is served without re-evaluation, but it is
// reported to OnAdd as fresh (replayed=false) because it was never
// durable in the journal proper: the journal hook appends it at the
// deterministic index the resumed search assigns.
func (l *Log) SeedSalvaged(key string, ev *Evaluation) {
	if l.warm == nil {
		l.warm = make(map[string]warmEntry)
	}
	l.warm[key] = warmEntry{ev: ev, salvaged: true}
}

// SetOnAdd installs the add observer (nil to remove).
func (l *Log) SetOnAdd(fn func(ev *Evaluation, replayed bool)) { l.onAdd = fn }

// SetOnSalvage installs the salvage observer (nil to remove).
func (l *Log) SetOnSalvage(fn func(ev *Evaluation)) { l.onSalvage = fn }

// SetMetrics installs a metrics registry (nil to remove). The log bumps
// evaluation counters and the best-speedup gauge as records are added.
func (l *Log) SetMetrics(reg *obs.Registry) { l.metrics = reg }

// fromWarm returns the warm-cache record for an assignment, if any.
func (l *Log) fromWarm(a transform.Assignment) (warmEntry, bool) {
	ev, ok := l.warm[a.Key()]
	return ev, ok
}

// salvage records a completed evaluation that lost its slot to a
// supervised abort earlier in the batch.
func (l *Log) salvage(ev *Evaluation) {
	l.Salvaged = append(l.Salvaged, ev)
	if l.metrics != nil {
		l.metrics.Counter(obs.MetricSalvaged).Add(1)
	}
	if l.onSalvage != nil {
		l.onSalvage(ev)
	}
}

// Add records an evaluation.
func (l *Log) Add(ev *Evaluation) { l.add(ev, false) }

func (l *Log) add(ev *Evaluation, replayed bool) {
	ev.Index = len(l.Evals) + 1
	l.Evals = append(l.Evals, ev)
	l.cache[ev.Assignment.Key()] = ev
	if l.metrics != nil {
		l.metrics.Counter(obs.MetricEvals).Add(1)
		l.metrics.Counter(obs.MetricEvalsPrefix + ev.Status.String()).Add(1)
		if ev.Status == StatusPass {
			l.metrics.Gauge(obs.GaugeBestSpeedup).Max(ev.Speedup)
		}
	}
	if l.onAdd != nil {
		l.onAdd(ev, replayed)
	}
}

// Counts tallies variant outcomes as in Table II. StatusInfra records —
// assignments whose outcome is unknown because the infrastructure failed
// — are excluded entirely (see InfraCount), so retries and quarantines
// can never distort the paper's outcome statistics.
func (l *Log) Counts() (total int, pass, fail, timeout, errs int) {
	for _, ev := range l.Evals {
		switch ev.Status {
		case StatusPass:
			pass++
		case StatusFail:
			fail++
		case StatusTimeout:
			timeout++
		case StatusError:
			errs++
		default:
			continue // StatusInfra: not a variant outcome
		}
		total++
	}
	return
}

// InfraCount returns the number of logged evaluations whose variant
// outcome is unknown due to persistent infrastructure failure
// (StatusInfra).
func (l *Log) InfraCount() int {
	n := 0
	for _, ev := range l.Evals {
		if ev.Status == StatusInfra {
			n++
		}
	}
	return n
}

// Best returns the accepted evaluation with the highest speedup, or nil.
func (l *Log) Best(c Criteria) *Evaluation {
	var best *Evaluation
	for _, ev := range l.Evals {
		if !c.Accept(ev) {
			continue
		}
		if best == nil || ev.Speedup > best.Speedup {
			best = ev
		}
	}
	return best
}

// Frontier returns the evaluations on the speedup-error optimal frontier
// (no other completed variant is both faster and more accurate), sorted
// by increasing error. This is the "optimal frontier" of Fig. 2/5.
func (l *Log) Frontier() []*Evaluation {
	var done []*Evaluation
	for _, ev := range l.Evals {
		if ev.Status == StatusPass || ev.Status == StatusFail {
			done = append(done, ev)
		}
	}
	var out []*Evaluation
	for _, a := range done {
		dominated := false
		for _, b := range done {
			if b == a {
				continue
			}
			if b.Speedup >= a.Speedup && b.RelError <= a.RelError &&
				(b.Speedup > a.Speedup || b.RelError < a.RelError) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	// Insertion sort by error (frontiers are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RelError < out[j-1].RelError; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
