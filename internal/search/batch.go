package search

import (
	"sync"

	"repro/internal/transform"
)

// batchEval evaluates a slice of assignments, at most parallelism at a
// time, and records the results in the log in the *given order* —
// regardless of completion order — so that a search's evaluation log is
// identical for any degree of parallelism. This mirrors the paper's
// artifact workflow, where T1 emits a batch of precision assignments and
// T2/T3 transform/compile/execute them in parallel on dedicated nodes.
//
// Duplicate assignments within the batch, and assignments already in the
// log, are evaluated only once. The evaluator must be safe for
// concurrent use.
func batchEval(log *Log, eval Evaluator, batch []transform.Assignment, parallelism int) []*Evaluation {
	if parallelism < 1 {
		parallelism = 1
	}
	results := make([]*Evaluation, len(batch))

	// Identify the distinct, not-yet-cached assignments.
	type job struct {
		idx int // first batch index needing this evaluation
		a   transform.Assignment
	}
	var jobs []job
	firstByKey := make(map[string]int)
	for i, a := range batch {
		k := a.Key()
		if _, cached := log.Lookup(a); cached {
			continue
		}
		if _, seen := firstByKey[k]; seen {
			continue
		}
		firstByKey[k] = i
		jobs = append(jobs, job{idx: i, a: a})
	}

	fresh := make([]*Evaluation, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ev := eval.Evaluate(jobs[ji].a)
			ev.Assignment = jobs[ji].a
			fresh[ji] = ev
		}(ji)
	}
	wg.Wait()

	// Log in deterministic (batch) order, then resolve every slot.
	for ji, ev := range fresh {
		_ = jobs[ji]
		log.Add(ev)
	}
	for i, a := range batch {
		ev, ok := log.Lookup(a)
		if !ok {
			// Unreachable: every batch member is either cached or fresh.
			ev = &Evaluation{Assignment: a, Status: StatusError, Detail: "internal: lost evaluation"}
			log.Add(ev)
		}
		results[i] = ev
	}
	return results
}
