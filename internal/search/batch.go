package search

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transform"
)

// batchEval evaluates a slice of assignments, at most parallelism at a
// time, and records the results in the log in the *given order* —
// regardless of completion order — so that a search's evaluation log is
// identical for any degree of parallelism. This mirrors the paper's
// artifact workflow, where T1 emits a batch of precision assignments and
// T2/T3 transform/compile/execute them in parallel on dedicated nodes.
//
// Duplicate assignments within the batch, and assignments already in the
// log, are evaluated only once. Assignments with a record in the log's
// warm cache (a resumed crash journal) are served from it without
// calling the evaluator at all. The evaluator must be safe for
// concurrent use.
//
// Crash safety: if the evaluator panics, the completed results that
// precede the first panic in batch order are still flushed to the log —
// and through its OnAdd observer to any journal — before the original
// panic value is re-raised on the caller's goroutine, so the log (and
// journal) remain an exact prefix of the deterministic evaluation order.
//
// What happens to completed results at or after the first panicked slot
// depends on the panic:
//
//   - An uncontrolled crash (any ordinary panic value) discards them:
//     nothing can be assumed about process state, and the journal prefix
//     invariant is the resume contract.
//   - A supervised Abort (a tripped circuit breaker failing the search
//     fast, or a context cancellation) salvages every completed fresh
//     result, in deterministic batch order, into Log.Salvaged — and
//     through the OnSalvage observer to the journal's sidecar — before
//     re-raising. They cannot enter the log proper (their deterministic
//     slots were never reached), but a resumed search serves them from
//     the warm cache, so a worker failure no longer silently wastes the
//     paid-for evaluations of its siblings.
//
// Cancellation: once ctx is done, no *new* evaluation starts — workers
// that have not yet called the evaluator panic with a *Cancelled
// (an Abort) instead, while in-flight evaluations drain normally and
// are flushed or salvaged like any other completed sibling. Hard
// cancellation of in-flight work is the evaluator's business (the tuner
// threads a second, grace-delayed context into the interpreter).
//
// Observability: when sp is non-nil the batch emits a "batch" span with
// one "eval" child per fresh evaluation, attributed to the worker slot
// that ran it; when the log carries a metrics registry, cache/warm hits
// and queue-wait vs. run-time histograms are recorded. Both are
// strictly observational — a nil span and nil registry take the
// allocation-free no-op path and the evaluation order, results, and
// journal bytes are identical either way.
func batchEval(ctx context.Context, log *Log, eval Evaluator, batch []transform.Assignment, parallelism int, sp *obs.Span) []*Evaluation {
	if parallelism < 1 {
		parallelism = 1
	}
	results := make([]*Evaluation, len(batch))

	// Identify the distinct, not-yet-cached assignments.
	type job struct {
		idx      int // first batch index needing this evaluation
		a        transform.Assignment
		warm     *Evaluation // prior record served without evaluation
		salvaged bool        // warm record came from a salvage sidecar
	}
	var jobs []job
	firstByKey := make(map[string]int)
	for i, a := range batch {
		k := a.Key()
		if _, cached := log.Lookup(a); cached {
			continue
		}
		if _, seen := firstByKey[k]; seen {
			continue
		}
		firstByKey[k] = i
		j := job{idx: i, a: a}
		if we, ok := log.fromWarm(a); ok {
			j.warm = we.ev
			j.salvaged = we.salvaged
		}
		jobs = append(jobs, j)
	}

	bsp := sp.Child(obs.SpanBatch)
	bsp.AttrInt("size", int64(len(batch)))
	bsp.AttrInt("jobs", int64(len(jobs)))
	defer bsp.End()
	if log.metrics != nil {
		warmServed := 0
		for ji := range jobs {
			if jobs[ji].warm != nil {
				warmServed++
			}
		}
		log.metrics.Counter(obs.MetricCacheHits).Add(int64(len(batch) - len(jobs)))
		log.metrics.Counter(obs.MetricWarmHits).Add(int64(warmServed))
	}

	fresh := make([]*Evaluation, len(jobs))
	panics := make([]any, len(jobs))
	var wg sync.WaitGroup
	// Worker slots double as trace attribution: an eval span carries the
	// 1-based slot number that ran it (the trace viewer's tid).
	slots := make(chan int, parallelism)
	for w := 1; w <= parallelism; w++ {
		slots <- w
	}
	for ji := range jobs {
		if jobs[ji].warm != nil {
			ev := jobs[ji].warm
			ev.Assignment = jobs[ji].a
			fresh[ji] = ev
			continue
		}
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[ji] = r
				}
			}()
			var queued time.Time
			if log.metrics != nil {
				queued = time.Now()
			}
			w := <-slots
			defer func() { slots <- w }()
			if log.metrics != nil {
				log.metrics.Histogram(obs.HistQueueWaitNS).Observe(float64(time.Since(queued)))
			}
			// The last cancellation gate before paying for an evaluation:
			// a done context stops new work while siblings already inside
			// the evaluator drain.
			checkCancelled(ctx)
			esp := bsp.Child(obs.SpanEval)
			esp.SetWorker(w)
			esp.Attr("key", jobs[ji].a.Key())
			var started time.Time
			if log.metrics != nil {
				started = time.Now()
			}
			ev := Evaluate(eval, esp, jobs[ji].a)
			if log.metrics != nil {
				log.metrics.Histogram(obs.HistEvalRunNS).Observe(float64(time.Since(started)))
			}
			esp.Attr("outcome", ev.Status.String())
			esp.AttrFloat("speedup", ev.Speedup)
			esp.End()
			ev.Assignment = jobs[ji].a
			fresh[ji] = ev
		}(ji)
	}
	wg.Wait()

	// Log in deterministic (batch) order, then resolve every slot. On a
	// panic, flush the contiguous completed prefix; if the panic is a
	// supervised Abort, additionally salvage the completed fresh results
	// past the panicked slot (still in batch order) before re-raising.
	for ji := range jobs {
		if r := panics[ji]; r != nil {
			if _, ok := r.(Abort); ok {
				for kj := ji + 1; kj < len(jobs); kj++ {
					// Warm-served entries are already durable (as journal
					// records or prior salvage events); only freshly paid-for
					// evaluations need rescuing.
					if panics[kj] == nil && fresh[kj] != nil && jobs[kj].warm == nil {
						log.salvage(fresh[kj])
					}
				}
			}
			panic(r)
		}
		// A salvaged warm record was never durable in the journal proper:
		// report it as fresh so the journal hook appends it at this index.
		log.add(fresh[ji], jobs[ji].warm != nil && !jobs[ji].salvaged)
	}
	for i, a := range batch {
		ev, ok := log.Lookup(a)
		if !ok {
			// Unreachable: every batch member is either cached or fresh.
			ev = &Evaluation{Assignment: a, Status: StatusError, Detail: "internal: lost evaluation"}
			log.Add(ev)
		}
		results[i] = ev
	}
	return results
}
