package numerics

import (
	"fmt"
	"sort"
	"strings"
)

// StmtProfile is the aggregated error introduction of one source
// statement across a whole run.
type StmtProfile struct {
	Proc              string  `json:"proc"`
	Line              int     `json:"line"`
	Ops               int64   `json:"ops"`
	Assigns           int64   `json:"assigns"`
	RoundErrSum       float64 `json:"round_err_sum"`
	RoundErrMax       float64 `json:"round_err_max"`
	MaxDivergence     float64 `json:"max_divergence"`
	Cancellations     int64   `json:"cancellations"`
	Catastrophic      int64   `json:"catastrophic"`
	CancelBitsMax     float64 `json:"cancel_bits_max"`
	BranchDivergences int64   `json:"branch_divergences"`
	Discretizations   int64   `json:"discretizations"`
	NonFinite         int64   `json:"non_finite"`
}

// Score orders statements by how much error they introduce: total
// local rounding born there plus the worst cumulative divergence
// observed flowing through.
func (s *StmtProfile) Score() float64 { return s.RoundErrSum + s.MaxDivergence }

// Where renders the statement position as file:line.
func (s *StmtProfile) Where(file string) string {
	return fmt.Sprintf("%s:%d", file, s.Line)
}

// AtomProfile is the error observed at assignments to one search atom.
type AtomProfile struct {
	QName         string  `json:"qname"`
	Assigns       int64   `json:"assigns"`
	RoundErrSum   float64 `json:"round_err_sum"`
	MaxDivergence float64 `json:"max_divergence"`
	DivergenceSum float64 `json:"divergence_sum"`
	Cancellations int64   `json:"cancellations"`
	Catastrophic  int64   `json:"catastrophic"`
}

// Profile is the numeric diagnosis of one instrumented run. All
// fields are finite (relative errors of non-finite values are tracked
// as provenance events, not numbers), so it marshals to JSON losslessly.
type Profile struct {
	File              string          `json:"file"`
	CancelBits        float64         `json:"cancel_bits"`
	Ops               int64           `json:"ops"`
	Cancellations     int64           `json:"cancellations"`
	Catastrophic      int64           `json:"catastrophic"`
	BranchDivergences int64           `json:"branch_divergences"`
	Discretizations   int64           `json:"discretizations"`
	NonFinite         int64           `json:"non_finite"`
	MaxDivergence     float64         `json:"max_divergence"`
	FirstNonFinite    *NonFiniteEvent `json:"first_non_finite,omitempty"`
	Statements        []StmtProfile   `json:"statements"`
	Atoms             []AtomProfile   `json:"atoms"`
}

// Profile snapshots the recorder into a sorted, render-ready profile.
// Nil recorders yield nil (no diagnostics requested).
func (r *Recorder) Profile() *Profile {
	if r == nil {
		return nil
	}
	p := &Profile{
		File:              r.file,
		CancelBits:        r.cancelBits,
		Ops:               r.ops,
		Cancellations:     r.cancels,
		Catastrophic:      r.catastrophic,
		BranchDivergences: r.branches,
		Discretizations:   r.discrete,
		NonFinite:         r.nonFinCount,
		MaxDivergence:     r.maxDiv,
		FirstNonFinite:    r.firstNF,
		Statements:        make([]StmtProfile, 0, len(r.stmts)),
		Atoms:             make([]AtomProfile, 0, len(r.atoms)),
	}
	for k, st := range r.stmts {
		p.Statements = append(p.Statements, StmtProfile{
			Proc: k.Proc, Line: k.Line,
			Ops: st.ops, Assigns: st.assigns,
			RoundErrSum: st.roundSum, RoundErrMax: st.roundMax,
			MaxDivergence: st.maxDiv,
			Cancellations: st.cancels, Catastrophic: st.catastrophic,
			CancelBitsMax:     st.cancelBitsMax,
			BranchDivergences: st.branches,
			Discretizations:   st.discrete,
			NonFinite:         st.nonFin,
		})
	}
	sort.Slice(p.Statements, func(i, j int) bool {
		si, sj := p.Statements[i].Score(), p.Statements[j].Score()
		if si != sj {
			return si > sj
		}
		if p.Statements[i].Proc != p.Statements[j].Proc {
			return p.Statements[i].Proc < p.Statements[j].Proc
		}
		return p.Statements[i].Line < p.Statements[j].Line
	})
	for q, at := range r.atoms {
		p.Atoms = append(p.Atoms, AtomProfile{
			QName: q, Assigns: at.assigns,
			RoundErrSum:   at.roundSum,
			MaxDivergence: at.maxDiv, DivergenceSum: at.divSum,
			Cancellations: at.cancels, Catastrophic: at.catastrophic,
		})
	}
	sort.Slice(p.Atoms, func(i, j int) bool {
		if p.Atoms[i].MaxDivergence != p.Atoms[j].MaxDivergence {
			return p.Atoms[i].MaxDivergence > p.Atoms[j].MaxDivergence
		}
		if p.Atoms[i].RoundErrSum != p.Atoms[j].RoundErrSum {
			return p.Atoms[i].RoundErrSum > p.Atoms[j].RoundErrSum
		}
		return p.Atoms[i].QName < p.Atoms[j].QName
	})
	return p
}

// Render formats the profile as an error-attribution table: run
// totals, the top statements by Score, and the top atoms by observed
// divergence. top ≤ 0 means all.
func (p *Profile) Render(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "numeric profile: %s\n", p.File)
	fmt.Fprintf(&b, "  fp ops %d · cancellations %d (catastrophic %d, threshold %.0f bits) · branch divergences %d · discretization flips %d\n",
		p.Ops, p.Cancellations, p.Catastrophic, p.CancelBits, p.BranchDivergences, p.Discretizations)
	fmt.Fprintf(&b, "  max divergence vs float64 shadow: %.3e\n", p.MaxDivergence)
	if p.FirstNonFinite != nil {
		src := "also non-finite at full precision"
		if p.FirstNonFinite.ShadowFinite {
			src = "finite at full precision: lowering-induced"
		}
		fmt.Fprintf(&b, "  first non-finite: %s:%d in %s (op %s, %s), %d total\n",
			p.File, p.FirstNonFinite.Line, p.FirstNonFinite.Proc,
			p.FirstNonFinite.Op, src, p.NonFinite)
	}

	stmts := p.Statements
	if top > 0 && len(stmts) > top {
		stmts = stmts[:top]
	}
	if len(stmts) > 0 {
		fmt.Fprintf(&b, "\n  %-18s %-12s %8s %12s %12s %12s %7s\n",
			"where", "proc", "ops", "round(sum)", "round(max)", "div(max)", "cancel")
		for i := range stmts {
			s := &stmts[i]
			cancel := "-"
			if s.Cancellations > 0 {
				cancel = fmt.Sprintf("%d", s.Cancellations)
				if s.Catastrophic > 0 {
					cancel = fmt.Sprintf("%d!%d", s.Cancellations, s.Catastrophic)
				}
			}
			fmt.Fprintf(&b, "  %-18s %-12s %8d %12.3e %12.3e %12.3e %7s\n",
				s.Where(p.File), s.Proc, s.Ops,
				s.RoundErrSum, s.RoundErrMax, s.MaxDivergence, cancel)
		}
	}

	atoms := p.Atoms
	if top > 0 && len(atoms) > top {
		atoms = atoms[:top]
	}
	if len(atoms) > 0 {
		fmt.Fprintf(&b, "\n  %-28s %8s %12s %12s %7s\n",
			"atom", "assigns", "div(max)", "round(sum)", "cancel")
		for i := range atoms {
			a := &atoms[i]
			cancel := "-"
			if a.Cancellations > 0 {
				cancel = fmt.Sprintf("%d", a.Cancellations)
				if a.Catastrophic > 0 {
					cancel = fmt.Sprintf("%d!%d", a.Cancellations, a.Catastrophic)
				}
			}
			fmt.Fprintf(&b, "  %-28s %8d %12.3e %12.3e %7s\n",
				a.QName, a.Assigns, a.MaxDivergence, a.RoundErrSum, cancel)
		}
	}
	return b.String()
}
