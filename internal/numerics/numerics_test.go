package numerics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Op("p", 1, '+', 1, 2, 1, 2, 3, 3, 3)
	r.Intrinsic("p", 1, "sqrt", 4, 2, 2, 2)
	r.Assign("p", 1, "a", 1, 1, 1)
	r.Branch("p", 1)
	r.Discretize("p", 1, "nint", 1, 2)
	r.PushTarget("a")
	r.PopTarget()
	if r.Profile() != nil {
		t.Fatal("nil recorder must yield nil profile")
	}
	if got := r.CancelBits(); got != DefaultCancelBits {
		t.Fatalf("nil CancelBits = %v, want default %v", got, DefaultCancelBits)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},
		{0, 0, 0},
		{2, 1, 0.5},
		{1, 2, 0.5},
		{-1, 1, 2},
		{math.Inf(1), 1, 0}, // non-finite tracked separately
		{math.NaN(), 1, 0},  // must stay JSON-representable
		{1, math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := relErr(c.a, c.b); got != c.want {
			t.Errorf("relErr(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCancellationClassification(t *testing.T) {
	// Benign cancellation: large magnitude collapse but operands carry
	// no divergence (shadow == primary).
	r := NewRecorder("m.ft", Options{})
	r.Op("p", 10, '-', 1.0, 1.0-1e-6, 1.0, 1.0-1e-6, 1e-6, 1e-6, 1e-6)
	p := r.Profile()
	if p.Cancellations != 1 {
		t.Fatalf("cancellations = %d, want 1", p.Cancellations)
	}
	if p.Catastrophic != 0 {
		t.Fatalf("catastrophic = %d, want 0 (operands error-free)", p.Catastrophic)
	}

	// Catastrophic: same collapse, operands diverge from their shadows.
	r = NewRecorder("m.ft", Options{})
	xs := 1.0 + 1e-9
	r.Op("p", 10, '-', 1.0, 1.0-1e-6, xs, 1.0-1e-6, 1e-6, 1e-6, 1e-6+1e-9)
	p = r.Profile()
	if p.Cancellations != 1 || p.Catastrophic != 1 {
		t.Fatalf("cancellations=%d catastrophic=%d, want 1/1", p.Cancellations, p.Catastrophic)
	}
	if len(p.Statements) != 1 || p.Statements[0].CancelBitsMax < 8 {
		t.Fatalf("statement cancel bits = %+v, want >= 8", p.Statements)
	}

	// Below threshold: 2.0 - 1.0 collapses one bit only.
	r = NewRecorder("m.ft", Options{})
	r.Op("p", 10, '-', 2.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0)
	if p := r.Profile(); p.Cancellations != 0 {
		t.Fatalf("one-bit collapse flagged as cancellation: %+v", p)
	}

	// Exact total cancellation (result 0) caps at maxCancelBits
	// rather than producing +Inf bits.
	r = NewRecorder("m.ft", Options{})
	r.Op("p", 10, '-', 1.0, 1.0, 1.0, 1.0, 0, 0, 0)
	p = r.Profile()
	if p.Cancellations != 1 {
		t.Fatalf("total cancellation not counted: %+v", p)
	}
	if p.Statements[0].CancelBitsMax != 54 {
		t.Fatalf("total cancellation bits = %v, want capped 54", p.Statements[0].CancelBitsMax)
	}
}

func TestCancelBitsThresholdOption(t *testing.T) {
	// With a 1-bit threshold even 2-1 counts.
	r := NewRecorder("m.ft", Options{CancelBits: 1})
	r.Op("p", 3, '-', 2.0, 1.0, 2.0, 1.0, 1.0, 1.0, 1.0)
	if p := r.Profile(); p.Cancellations != 1 {
		t.Fatalf("threshold 1: cancellations = %d, want 1", p.Cancellations)
	}
	if got := NewRecorder("x", Options{}).CancelBits(); got != DefaultCancelBits {
		t.Fatalf("default threshold = %v, want %v", got, DefaultCancelBits)
	}
}

func TestFirstNonFiniteProvenance(t *testing.T) {
	r := NewRecorder("m.ft", Options{})
	// Overflow born at line 7: primary result +Inf, shadow finite.
	r.Op("p", 7, '*', 3e38, 3e38, 3e38, 3e38, math.Inf(1), math.Inf(1), 9e76)
	// A later one must not displace the first.
	r.Intrinsic("q", 9, "sqrt", -1, math.NaN(), math.NaN(), math.NaN())
	p := r.Profile()
	if p.NonFinite != 2 {
		t.Fatalf("non-finite count = %d, want 2", p.NonFinite)
	}
	nf := p.FirstNonFinite
	if nf == nil || nf.Proc != "p" || nf.Line != 7 || nf.Op != "*" || !nf.ShadowFinite {
		t.Fatalf("first non-finite = %+v, want p:7 op * shadow-finite", nf)
	}
}

func TestAssignAtomAttribution(t *testing.T) {
	r := NewRecorder("m.ft", Options{})
	r.PushTarget("mod.proc.s1")
	// RHS op introduces local rounding 0.5 attributed to the target.
	r.Op("proc", 5, '+', 1, 1, 1, 1, 2, 4, 4)
	r.Assign("proc", 5, "mod.proc.s1", 2, 4, 2)
	r.PopTarget()
	r.Assign("proc", 6, "", 1, 1, 1) // non-atom target: no atom entry

	p := r.Profile()
	if len(p.Atoms) != 1 {
		t.Fatalf("atoms = %+v, want exactly mod.proc.s1", p.Atoms)
	}
	a := p.Atoms[0]
	if a.QName != "mod.proc.s1" || a.Assigns != 1 {
		t.Fatalf("atom = %+v", a)
	}
	if a.MaxDivergence != 0.5 {
		t.Fatalf("atom max divergence = %v, want 0.5", a.MaxDivergence)
	}
	if a.RoundErrSum <= 0 {
		t.Fatalf("atom round err sum = %v, want > 0 (RHS attribution)", a.RoundErrSum)
	}
}

func TestDiscretizeCountsOnlyFlips(t *testing.T) {
	r := NewRecorder("m.ft", Options{})
	r.Discretize("p", 2, "nint", 3, 3)
	r.Discretize("p", 2, "nint", 3, 4)
	if p := r.Profile(); p.Discretizations != 1 {
		t.Fatalf("discretizations = %d, want 1", p.Discretizations)
	}
}

func TestProfileSortedAndDeterministic(t *testing.T) {
	build := func() *Profile {
		r := NewRecorder("m.ft", Options{})
		for line := 20; line >= 10; line-- {
			r.Op("p", line, '*', 1, 1, 1, 1, 1, 1+float64(line)*1e-8, 1)
		}
		r.Assign("p", 10, "b.atom", 1, 1.5, 1)
		r.Assign("p", 11, "a.atom", 1, 1.5, 1) // tie on divergence → QName order
		return r.Profile()
	}
	p1, p2 := build(), build()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("profile not deterministic across identical runs")
	}
	for i := 1; i < len(p1.Statements); i++ {
		if p1.Statements[i-1].Score() < p1.Statements[i].Score() {
			t.Fatalf("statements not sorted by score at %d", i)
		}
	}
	if p1.Atoms[0].QName != "a.atom" || p1.Atoms[1].QName != "b.atom" {
		t.Fatalf("atom tie not broken by QName: %+v", p1.Atoms)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	r := NewRecorder("funarc.ft", Options{})
	r.PushTarget("funarc_mod.funarc.s1")
	r.Op("funarc", 37, '-', 1.0001, 1.0, 1.00010001, 1.0, 1e-4, 1e-4, 1.0001e-4)
	r.Assign("funarc", 37, "funarc_mod.funarc.s1", 1e-4, 1.0001e-4, 1e-4)
	r.PopTarget()
	r.Op("funarc", 19, '*', 3e38, 3e38, 3e38, 3e38, math.Inf(1), math.Inf(1), 9e76)
	r.Discretize("fun", 12, "nint", 1, 2)
	r.Branch("fun", 13)

	p := r.Profile()
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("profile with non-finite events must marshal: %v", err)
	}
	var back Profile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(p, &back) {
		t.Fatalf("JSON round-trip mismatch:\n%+v\n%+v", p, &back)
	}
}

func TestRenderMentionsKeySites(t *testing.T) {
	r := NewRecorder("funarc.ft", Options{})
	xs := 1.00010001
	r.Op("funarc", 37, '-', 1.0001, 1.0, xs, 1.0, 1e-4, 1e-4, 1.0001e-4)
	r.Assign("funarc", 37, "funarc_mod.funarc.s1", 1e-4, 1.0001e-4, 1e-4)
	r.Op("funarc", 19, '*', 3e38, 3e38, 3e38, 3e38, math.Inf(1), math.Inf(1), 9e76)
	out := r.Profile().Render(10)
	for _, want := range []string{"funarc.ft:37", "funarc_mod.funarc.s1", "first non-finite", "lowering-induced", "catastrophic 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmapLayout(t *testing.T) {
	r := NewRecorder("m.ft", Options{})
	r.Op("alpha", 12, '-', 1.0001, 1.0, 1.00010001, 1.0, 1e-4, 1e-4, 1.0001e-4)
	r.Op("alpha", 5, '*', 1, 1, 1, 1, 1, 1+1e-9, 1)
	r.Op("beta", 30, '+', 1, 1, 1, 1, 2, 2, 2)
	h := r.Profile().Heatmap()
	if len(h.Rows) != 2 || h.Rows[0].Name != "alpha" || h.Rows[1].Name != "beta" {
		t.Fatalf("rows = %+v, want alpha then beta", h.Rows)
	}
	if h.Rows[0].Cells[0].Label != "5" || h.Rows[0].Cells[1].Label != "12!" {
		t.Fatalf("alpha cells = %+v, want line order with ! on catastrophic site", h.Rows[0].Cells)
	}
	html := h.HTML()
	for _, want := range []string{"<table", "m.ft:12", "12!"} {
		if !strings.Contains(html, want) {
			t.Errorf("heatmap HTML missing %q", want)
		}
	}
}

func TestPushPopTargetNesting(t *testing.T) {
	r := NewRecorder("m.ft", Options{})
	r.PushTarget("outer")
	r.PushTarget("") // inner non-atom assignment masks outer
	r.Op("p", 1, '+', 1, 1, 1, 1, 2, 4, 4)
	r.PopTarget()
	r.Op("p", 2, '+', 1, 1, 1, 1, 2, 4, 4)
	r.PopTarget()
	p := r.Profile()
	if len(p.Atoms) != 1 || p.Atoms[0].QName != "outer" {
		t.Fatalf("atoms = %+v, want only outer", p.Atoms)
	}
}
