// Package numerics implements shadow-execution floating-point
// diagnostics for the interpreter: every real value in a mixed-precision
// run carries a float64 shadow computed at full precision, and a
// Recorder aggregates, per source statement and per search atom, the
// divergence each operation introduces — rounding error, catastrophic
// cancellation (operand magnitudes collapsing onto error-bearing
// operands), discretization flips, control-flow divergence, and the
// provenance of the first non-finite value. It is the numerical twin of
// the timing observability in internal/obs: one instrumented run yields
// the per-operation error profile that guidance-only tools (ADAPT,
// Blame Analysis; paper §VII) build from, without the N one-at-a-time
// tuning runs of internal/blame.Analyze.
//
// Like the obs layer, the package is strictly out-of-band: a nil
// *Recorder is the no-op implementation, so uninstrumented interpreter
// runs carry no conditionals beyond one pointer test, make no extra
// allocations, and produce byte-identical journals (test-enforced by
// core.TestNumericsDoesNotPerturbJournal). A Recorder is single-use and
// not safe for concurrent use: each evaluation gets its own.
package numerics

import (
	"math"
)

// DefaultCancelBits is the default cancellation threshold: a
// subtraction whose operand magnitudes collapse by at least this many
// bits of magnitude counts as a cancellation. Eight bits loses a third
// of a float32 mantissa — enough that incoming rounding error is
// amplified into the leading digits (funarc's (t2-t1) at n=10000
// cancels ~11 bits every iteration).
const DefaultCancelBits = 8.0

// maxCancelBits caps the reported collapse for exact or total
// cancellations, keeping the profile JSON-representable (no +Inf).
const maxCancelBits = 54.0

// Options configures a Recorder.
type Options struct {
	// CancelBits is the cancellation threshold in bits of magnitude
	// collapse (0 = DefaultCancelBits).
	CancelBits float64
}

// StmtKey identifies one source statement: the procedure executing it
// and the source line. Lines are unique across procedures in a single
// FT file, but generated wrappers reuse their template positions, so
// the procedure is part of the key.
type StmtKey struct {
	Proc string
	Line int
}

// stmtStats accumulates per-statement error introduction.
type stmtStats struct {
	ops, assigns               int64
	roundSum, roundMax         float64
	maxDiv                     float64
	cancels, catastrophic      int64
	cancelBitsMax              float64
	branches, discrete, nonFin int64
}

// atomStats accumulates per-search-atom error at assignments to the
// atom (and, via the target stack, during evaluation of its RHS).
type atomStats struct {
	assigns               int64
	roundSum              float64
	maxDiv, divSum        float64
	cancels, catastrophic int64
}

// NonFiniteEvent is the provenance of the first Inf/NaN born in a run:
// the statement whose result went non-finite while its operands were
// still finite. ShadowFinite distinguishes a precision-induced blowup
// (the float64 shadow stayed finite — lowering caused it) from a
// genuine one present at full precision too.
type NonFiniteEvent struct {
	Proc         string `json:"proc"`
	Line         int    `json:"line"`
	Op           string `json:"op"`
	ShadowFinite bool   `json:"shadow_finite"`
}

// Recorder aggregates shadow-execution divergence for one interpreter
// run. All methods are nil-safe no-ops.
type Recorder struct {
	file       string
	cancelBits float64
	// cancelGuard = 2^(cancelBits-1): an add/sub whose magnitude collapse
	// ratio is below this is provably under the threshold (with a full
	// bit of margin over log rounding), so cancel() can skip the Log2.
	cancelGuard float64

	stmts   map[StmtKey]*stmtStats
	atoms   map[string]*atomStats
	targets []string // assignment-target atom stack

	ops, cancels, catastrophic      int64
	branches, discrete, nonFinCount int64
	maxDiv                          float64
	firstNF                         *NonFiniteEvent
}

// NewRecorder builds a recorder for one run of the named source file
// (the file name is used only for file:line rendering).
func NewRecorder(file string, o Options) *Recorder {
	cb := o.CancelBits
	if cb == 0 {
		cb = DefaultCancelBits
	}
	return &Recorder{
		file:        file,
		cancelBits:  cb,
		cancelGuard: math.Exp2(cb - 1),
		stmts:       make(map[StmtKey]*stmtStats),
		atoms:       make(map[string]*atomStats),
	}
}

// CancelBits returns the active cancellation threshold.
func (r *Recorder) CancelBits() float64 {
	if r == nil {
		return DefaultCancelBits
	}
	return r.cancelBits
}

func (r *Recorder) stmt(proc string, line int) *stmtStats {
	k := StmtKey{Proc: proc, Line: line}
	st := r.stmts[k]
	if st == nil {
		st = &stmtStats{}
		r.stmts[k] = st
	}
	return st
}

func (r *Recorder) atom(q string) *atomStats {
	at := r.atoms[q]
	if at == nil {
		at = &atomStats{}
		r.atoms[q] = at
	}
	return at
}

// PushTarget enters an assignment whose target is the named atom
// (empty for non-atom targets): rounding error born while evaluating
// the RHS is attributed to the atom. Must be paired with PopTarget.
func (r *Recorder) PushTarget(atom string) {
	if r == nil {
		return
	}
	r.targets = append(r.targets, atom)
}

// PopTarget leaves the innermost assignment context.
func (r *Recorder) PopTarget() {
	if r == nil || len(r.targets) == 0 {
		return
	}
	r.targets = r.targets[:len(r.targets)-1]
}

func (r *Recorder) target() string {
	if len(r.targets) == 0 {
		return ""
	}
	return r.targets[len(r.targets)-1]
}

// relErr is the relative difference between a and b, 0 when equal or
// when either is non-finite (non-finite flow is tracked separately, and
// the profile must stay JSON-representable).
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	if !finite(a) || !finite(b) {
		return 0
	}
	// Hand-rolled max: a and b are finite here, so math.Max's NaN/±0
	// handling buys nothing and its call shows up in op-rate profiles.
	den := math.Abs(a)
	if bb := math.Abs(b); bb > den {
		den = bb
	}
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// finite reports v is neither NaN nor ±Inf: one exponent-field test
// instead of IsNaN+IsInf (this runs for every recorded operation).
func finite(v float64) bool {
	return math.Float64bits(v)&0x7ff0000000000000 != 0x7ff0000000000000
}

// Op records one binary arithmetic operation: x op y in the primary
// (mixed-precision) lane produced res, the same operation on the
// primary operands at float64 would have produced exact, and the shadow
// lane (full-precision history) produced shadow. xs/ys are the operand
// shadows, used to tell catastrophic cancellation (error-bearing
// operands) from benign exact cancellation.
func (r *Recorder) Op(proc string, line int, op byte, x, y, xs, ys, res, exact, shadow float64) {
	if r == nil {
		return
	}
	r.opAt(r.stmt(proc, line), proc, line, op, x, y, xs, ys, res, exact, shadow)
}

// opAt is the keyed-path op core. Site.Op open-codes this body — keep
// them in lockstep.
func (r *Recorder) opAt(st *stmtStats, proc string, line int, op byte, x, y, xs, ys, res, exact, shadow float64) {
	r.ops++
	st.ops++
	// When all three lanes agree, local and div are both zero and note
	// is an arithmetic no-op — skip it (and both relErr calls). This is
	// every op of a full-precision baseline run. NaN lanes fail the
	// equality and fall through to relErr, which treats them as 0.
	if res != exact || res != shadow {
		r.note(st, relErr(res, exact), relErr(res, shadow))
	}
	if op == '+' || op == '-' {
		r.cancel(st, x, y, xs, ys, res, exact)
	}
	if !finite(res) && finite(x) && finite(y) {
		r.bornNonFinite(st, proc, line, string(rune(op)), shadow)
	}
}

// Intrinsic records one intrinsic call: f(x) produced res in the
// primary lane, exact is the unrounded float64 result on the primary
// argument, shadow the shadow-lane result.
func (r *Recorder) Intrinsic(proc string, line int, name string, x, res, exact, shadow float64) {
	if r == nil {
		return
	}
	r.intrinsicAt(r.stmt(proc, line), proc, line, name, x, res, exact, shadow)
}

// intrinsicAt is the keyed-path intrinsic core. Site.Intrinsic
// open-codes this body — keep them in lockstep.
func (r *Recorder) intrinsicAt(st *stmtStats, proc string, line int, name string, x, res, exact, shadow float64) {
	r.ops++
	st.ops++
	if res != exact || res != shadow {
		r.note(st, relErr(res, exact), relErr(res, shadow))
	}
	if !finite(res) && finite(x) {
		r.bornNonFinite(st, proc, line, name, shadow)
	}
}

// note folds one operation's local rounding error and cumulative
// divergence into the statement, the global maximum, and the current
// assignment target.
func (r *Recorder) note(st *stmtStats, local, div float64) {
	st.roundSum += local
	if local > st.roundMax {
		st.roundMax = local
	}
	if div > st.maxDiv {
		st.maxDiv = div
	}
	if div > r.maxDiv {
		r.maxDiv = div
	}
	if local > 0 {
		// Target peek only when there is error to attribute: local == 0
		// is the overwhelming case in a well-conditioned run.
		if t := r.target(); t != "" {
			r.atom(t).roundSum += local
		}
	}
}

// cancel classifies an add/sub whose result magnitude collapsed
// relative to its operands. The collapse alone is a cancellation; it is
// *catastrophic* only when the operands carried divergence (shadow ≠
// primary), because then the cancelled leading digits promote that
// error into the result's leading digits. An exact cancellation of
// error-free operands (common in double-precision baselines) is benign.
func (r *Recorder) cancel(st *stmtStats, x, y, xs, ys, res, exact float64) {
	if !finite(x) || !finite(y) {
		return
	}
	mag := math.Abs(x)
	if ay := math.Abs(y); ay > mag {
		mag = ay
	}
	if mag == 0 {
		return
	}
	den := math.Abs(res)
	if ae := math.Abs(exact); ae > den {
		den = ae
	}
	if den > 0 && mag < den*r.cancelGuard {
		// Collapse ratio below 2^(cancelBits-1): bits would come out
		// under the threshold, proven by a multiply instead of a log.
		// The spare bit of margin keeps the cutoff decision identical
		// to the Log2 comparison below. This is the common case — most
		// adds don't cancel — so it carries the per-op cost.
		return
	}
	bits := maxCancelBits
	if den > 0 {
		bits = math.Log2(mag / den)
		if bits > maxCancelBits {
			bits = maxCancelBits
		}
	}
	if bits < r.cancelBits {
		return
	}
	r.cancels++
	st.cancels++
	if bits > st.cancelBitsMax {
		st.cancelBitsMax = bits
	}
	t := r.target()
	if t != "" {
		r.atom(t).cancels++
	}
	if opDiv := math.Max(relErr(x, xs), relErr(y, ys)); opDiv > 0 {
		r.catastrophic++
		st.catastrophic++
		if t != "" {
			r.atom(t).catastrophic++
		}
	}
}

// Assign records a store to a variable or array element: primary is the
// value stored (post conversion to the target kind), stored is the
// pre-conversion RHS value (their difference is the store's own
// rounding), shadow the shadow-lane value. atom is the search-atom
// qualified name of the target ("" when the target is not an atom).
func (r *Recorder) Assign(proc string, line int, atom string, primary, shadow, stored float64) {
	if r == nil {
		return
	}
	r.assignAt(r.stmt(proc, line), nil, atom, proc, line, primary, shadow, stored)
}

// assignAt is the keyed-path assign core; at may be a pre-resolved
// accumulator for the atom. Site.Assign open-codes this body — keep
// them in lockstep.
func (r *Recorder) assignAt(st *stmtStats, at *atomStats, atom, proc string, line int, primary, shadow, stored float64) {
	st.assigns++
	var local, div float64
	if primary != stored || primary != shadow {
		local = relErr(primary, stored)
		div = relErr(primary, shadow)
		r.note(st, local, div)
	}
	if !finite(primary) && r.firstNF == nil {
		r.bornNonFinite(st, proc, line, "=", shadow)
	}
	if atom == "" {
		return
	}
	if at == nil {
		at = r.atom(atom)
	}
	at.assigns++
	at.roundSum += local
	at.divSum += div
	if div > at.maxDiv {
		at.maxDiv = div
	}
}

// Branch records a comparison whose shadow-lane outcome differed from
// the primary outcome: the mixed-precision run is about to take a
// different control-flow path than the full-precision program would.
func (r *Recorder) Branch(proc string, line int) {
	if r == nil {
		return
	}
	r.branches++
	r.stmt(proc, line).branches++
}

// Discretize records a real-to-integer intrinsic (nint/int/floor) whose
// primary and shadow lanes rounded to different integers — a
// discretization flip, the mechanism behind iteration-count divergence.
func (r *Recorder) Discretize(proc string, line int, name string, primary, shadow int64) {
	if r == nil || primary == shadow {
		return
	}
	r.discrete++
	r.stmt(proc, line).discrete++
}

func (r *Recorder) bornNonFinite(st *stmtStats, proc string, line int, op string, shadow float64) {
	r.nonFinCount++
	st.nonFin++
	if r.firstNF == nil {
		r.firstNF = &NonFiniteEvent{
			Proc: proc, Line: line, Op: op,
			ShadowFinite: finite(shadow),
		}
	}
}

// Site is a per-callsite handle onto the recorder: a compiled engine
// that knows its (proc, line) — and, for assignments, the target atom —
// at compile time resolves the accumulators once instead of paying two
// map lookups per recorded event. Aggregation is byte-identical to the
// keyed Recorder methods (both run the same cores); the statement and
// atom map entries are still created lazily at the first recorded
// event, so a profile never grows entries for never-executed sites.
// A nil *Site is a no-op, mirroring the nil *Recorder contract.
type Site struct {
	r    *Recorder
	key  StmtKey
	atom string
	st   *stmtStats
	at   *atomStats
}

// Site returns a callsite handle for one statement. Returns nil on a
// nil Recorder.
func (r *Recorder) Site(proc string, line int) *Site {
	if r == nil {
		return nil
	}
	return &Site{r: r, key: StmtKey{Proc: proc, Line: line}}
}

// AssignSite returns a callsite handle for an assignment to the given
// atom ("" for non-atom targets).
func (r *Recorder) AssignSite(proc string, line int, atom string) *Site {
	if r == nil {
		return nil
	}
	return &Site{r: r, key: StmtKey{Proc: proc, Line: line}, atom: atom}
}

func (s *Site) stats() *stmtStats {
	if s.st == nil {
		s.st = s.r.stmt(s.key.Proc, s.key.Line)
	}
	return s.st
}

// Op is Recorder.Op at this site. The body mirrors opAt statement for
// statement (keep them in lockstep — the engine differential tests
// compare profiles across the two paths); it is open-coded here because
// this is the per-operation hot path of every instrumented run and the
// extra call frame with its eleven arguments is measurable.
func (s *Site) Op(op byte, x, y, xs, ys, res, exact, shadow float64) {
	if s == nil {
		return
	}
	r, st := s.r, s.stats()
	r.ops++
	st.ops++
	if res != exact || res != shadow {
		r.note(st, relErr(res, exact), relErr(res, shadow))
	}
	if op == '+' || op == '-' {
		r.cancel(st, x, y, xs, ys, res, exact)
	}
	if !finite(res) && finite(x) && finite(y) {
		r.bornNonFinite(st, s.key.Proc, s.key.Line, string(rune(op)), shadow)
	}
}

// Intrinsic is Recorder.Intrinsic at this site (mirrors intrinsicAt,
// open-coded for the same reason as Op).
func (s *Site) Intrinsic(name string, x, res, exact, shadow float64) {
	if s == nil {
		return
	}
	r, st := s.r, s.stats()
	r.ops++
	st.ops++
	if res != exact || res != shadow {
		r.note(st, relErr(res, exact), relErr(res, shadow))
	}
	if !finite(res) && finite(x) {
		r.bornNonFinite(st, s.key.Proc, s.key.Line, name, shadow)
	}
}

// Assign is Recorder.Assign at this site (the atom was fixed at site
// construction; mirrors assignAt, open-coded for the same reason as
// Op).
func (s *Site) Assign(primary, shadow, stored float64) {
	if s == nil {
		return
	}
	r, st := s.r, s.stats()
	st.assigns++
	var local, div float64
	if primary != stored || primary != shadow {
		local = relErr(primary, stored)
		div = relErr(primary, shadow)
		r.note(st, local, div)
	}
	if !finite(primary) && r.firstNF == nil {
		r.bornNonFinite(st, s.key.Proc, s.key.Line, "=", shadow)
	}
	if s.atom == "" {
		return
	}
	at := s.at
	if at == nil {
		at = r.atom(s.atom)
		s.at = at
	}
	at.assigns++
	at.roundSum += local
	at.divSum += div
	if div > at.maxDiv {
		at.maxDiv = div
	}
}

// Branch is Recorder.Branch at this site.
func (s *Site) Branch() {
	if s == nil {
		return
	}
	s.r.branches++
	s.stats().branches++
}

// Discretize is Recorder.Discretize at this site.
func (s *Site) Discretize(primary, shadow int64) {
	if s == nil || primary == shadow {
		return
	}
	s.r.discrete++
	s.stats().discrete++
}
