package numerics

import (
	"fmt"
	"sort"

	"repro/internal/viz"
)

// Heatmap lays the profile out as a per-procedure error heatmap: one
// row per procedure, one cell per statement (in line order) colored by
// the statement's error score. Catastrophic-cancellation sites are
// flagged in the cell label.
func (p *Profile) Heatmap() *viz.Heatmap {
	byProc := make(map[string][]StmtProfile)
	for _, s := range p.Statements {
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	procs := make([]string, 0, len(byProc))
	for proc := range byProc {
		procs = append(procs, proc)
	}
	sort.Strings(procs)

	h := &viz.Heatmap{
		Title:  "numeric error by statement — " + p.File,
		Legend: "cell = one statement (line number); color = log-scaled error score (local rounding sum + max divergence vs float64 shadow); ! = catastrophic cancellation site",
	}
	for _, proc := range procs {
		stmts := byProc[proc]
		sort.Slice(stmts, func(i, j int) bool { return stmts[i].Line < stmts[j].Line })
		row := viz.HeatRow{Name: proc}
		for i := range stmts {
			s := &stmts[i]
			label := fmt.Sprintf("%d", s.Line)
			if s.Catastrophic > 0 {
				label += "!"
			}
			row.Cells = append(row.Cells, viz.HeatCell{
				Label: label,
				Title: fmt.Sprintf("%s · ops %d · round sum %.3e · max divergence %.3e · cancellations %d (catastrophic %d)",
					s.Where(p.File), s.Ops, s.RoundErrSum, s.MaxDivergence, s.Cancellations, s.Catastrophic),
				Value: s.Score(),
			})
		}
		h.Rows = append(h.Rows, row)
	}
	return h
}
