package transform

import (
	"fmt"
	"sort"
	"strings"

	ft "repro/internal/fortran"
)

// FlowGraph is the interprocedural floating-point parameter-passing
// graph of §III-C: nodes are real variables annotated with their kinds;
// edges connect an actual argument's variable to the callee's dummy at
// each call site. After a precision assignment is applied and wrappers
// are inserted, every edge must connect nodes of matching kinds (the
// invariant the wrapper generator maintains).
type FlowGraph struct {
	Nodes []*FlowNode
	Edges []FlowEdge

	byDecl map[*ft.VarDecl]*FlowNode
}

// FlowNode is one real variable.
type FlowNode struct {
	QName   string
	Kind    int
	IsArray bool
	Decl    *ft.VarDecl
}

// FlowEdge is one instance of parameter passing.
type FlowEdge struct {
	From, To *FlowNode // actual's variable -> dummy
	Pos      ft.Pos
	Caller   string
	Callee   string
	// Elems is the dummy's element count if statically known (product
	// of constant dims), else 1 for scalars and 0 for unknown arrays.
	// The §V cost model weighs mismatch penalties by data volume.
	Elems int
}

// Matching reports whether the edge endpoints have equal kinds.
func (e FlowEdge) Matching() bool { return e.From.Kind == e.To.Kind }

// BuildFlowGraph constructs the graph from an analyzed program.
func BuildFlowGraph(prog *ft.Program, info *ft.Info) *FlowGraph {
	g := &FlowGraph{byDecl: make(map[*ft.VarDecl]*FlowNode)}
	for _, d := range ft.RealDecls(prog) {
		n := &FlowNode{QName: d.QName(), Kind: d.Kind, IsArray: d.IsArray(), Decl: d}
		g.Nodes = append(g.Nodes, n)
		g.byDecl[d] = n
	}
	for _, cs := range info.CallSites {
		for i, arg := range cs.Args {
			if i >= len(cs.Callee.ParamDecl) {
				break
			}
			dummy := cs.Callee.ParamDecl[i]
			if dummy == nil || dummy.Base != ft.TReal {
				continue
			}
			var src *ft.VarDecl
			switch a := arg.(type) {
			case *ft.VarRef:
				src = a.Decl
			case *ft.IndexExpr:
				src = a.Arr.Decl
			default:
				continue // literals and expressions carry no variable node
			}
			from := g.byDecl[src]
			to := g.byDecl[dummy]
			if from == nil || to == nil {
				continue
			}
			caller := "<main>"
			if cs.Caller != nil {
				caller = cs.Caller.QName()
			}
			g.Edges = append(g.Edges, FlowEdge{
				From: from, To: to, Pos: cs.Pos,
				Caller: caller, Callee: cs.Callee.QName(),
				Elems: staticElems(dummy),
			})
		}
	}
	return g
}

// staticElems evaluates a declaration's element count when all dims are
// integer literals (0 when unknown, 1 for scalars).
func staticElems(d *ft.VarDecl) int {
	if !d.IsArray() {
		return 1
	}
	n := 1
	for _, dim := range d.Dims {
		if dim.Assumed {
			return 0
		}
		lo := int64(1)
		if dim.Lo != nil {
			l, ok := constInt(dim.Lo)
			if !ok {
				return 0
			}
			lo = l
		}
		hi, ok := constInt(dim.Hi)
		if !ok {
			return 0
		}
		n *= int(hi - lo + 1)
	}
	return n
}

func constInt(e ft.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ft.IntLit:
		return e.Val, true
	case *ft.VarRef:
		if e.Decl != nil && e.Decl.IsParam && e.Decl.Base == ft.TInteger {
			if lit, ok := e.Decl.Init.(*ft.IntLit); ok {
				return lit.Val, true
			}
		}
	case *ft.BinExpr:
		x, okx := constInt(e.X)
		y, oky := constInt(e.Y)
		if okx && oky {
			switch e.Op {
			case ft.PLUS:
				return x + y, true
			case ft.MINUS:
				return x - y, true
			case ft.STAR:
				return x * y, true
			}
		}
	}
	return 0, false
}

// MismatchedEdges returns edges violating the matching invariant.
func (g *FlowGraph) MismatchedEdges() []FlowEdge {
	var out []FlowEdge
	for _, e := range g.Edges {
		if !e.Matching() {
			out = append(out, e)
		}
	}
	return out
}

// Node returns the node for a declaration.
func (g *FlowGraph) Node(d *ft.VarDecl) *FlowNode { return g.byDecl[d] }

// String renders the graph compactly for debugging and tests.
func (g *FlowGraph) String() string {
	var sb strings.Builder
	edges := append([]FlowEdge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From.QName != edges[j].From.QName {
			return edges[i].From.QName < edges[j].From.QName
		}
		return edges[i].To.QName < edges[j].To.QName
	})
	for _, e := range edges {
		mark := "=="
		if !e.Matching() {
			mark = "!="
		}
		fmt.Fprintf(&sb, "%s(k%d) %s %s(k%d)\n",
			e.From.QName, e.From.Kind, mark, e.To.QName, e.To.Kind)
	}
	return sb.String()
}
