package transform

import (
	"strings"
	"testing"

	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/perfmodel"
)

// funarcSrc mirrors the paper's motivating example (§II-B, Fig. 3/4):
// the fun(x) arc-length kernel with 8 tunable declarations.
const funarcSrc = `
module funarc_mod
  implicit none
  real(kind=8) :: result
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 5
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine funarc()
    real(kind=8) :: s1, h, t1, t2, dppi
    integer :: i, n
    n = 100
    s1 = 0.0d0
    t1 = 0.0d0
    dppi = acos(-1.0d0)
    h = dppi / real(n, 8)
    do i = 1, n
      t2 = fun(real(i, 8) * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine funarc
end module funarc_mod
program main
  use funarc_mod
  implicit none
  call funarc()
end program main
`

func analyzed(t *testing.T, src string) *ft.Program {
	t.Helper()
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return prog
}

func runProg(t *testing.T, prog *ft.Program) (*interp.Interp, *interp.Result) {
	t.Helper()
	in, err := interp.New(prog, interp.Config{Model: perfmodel.Default()})
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	res, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, res
}

func TestAtoms(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	atoms := Atoms(prog)
	// 8 tunable declarations in the module procedures + module `result`.
	if len(atoms) != 9 {
		names := make([]string, len(atoms))
		for i, a := range atoms {
			names[i] = a.QName
		}
		t.Fatalf("got %d atoms %v, want 9", len(atoms), names)
	}
	restricted := Atoms(prog, "funarc_mod")
	if len(restricted) != 9 {
		t.Errorf("module-restricted atoms: %d", len(restricted))
	}
	if none := Atoms(prog, "nope"); len(none) != 0 {
		t.Errorf("atoms of unknown module: %d", len(none))
	}
}

func TestUniformAssignment(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	atoms := Atoms(prog)
	a := Uniform(atoms, 4)
	if a.Lowered() != len(atoms) {
		t.Errorf("Lowered = %d, want %d", a.Lowered(), len(atoms))
	}
	b := a.Clone()
	b["funarc_mod.fun.x"] = 8
	if a["funarc_mod.fun.x"] != 4 {
		t.Error("Clone is not independent")
	}
	if a.Key() == b.Key() {
		t.Error("different assignments share a Key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("Key not canonical")
	}
}

func TestApplyPreservesBaseline(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	before := ft.Print(prog)
	atoms := Atoms(prog)
	if _, err := Apply(prog, Uniform(atoms, 4)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if after := ft.Print(prog); after != before {
		t.Error("Apply mutated the baseline program")
	}
}

func TestApplyUniform32RunsAndDiffers(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	in64, _ := runProg(t, prog)
	base, _ := in64.GlobalFloat("funarc_mod.result")

	v, err := Apply(prog, Uniform(Atoms(prog), 4))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	in32, _ := runProg(t, v.Prog)
	low, _ := in32.GlobalFloat("funarc_mod.result")
	if base == low {
		t.Errorf("uniform 32-bit result identical to 64-bit: %.17g", base)
	}
	relErr := (base - low) / base
	if relErr < 0 {
		relErr = -relErr
	}
	if relErr > 1e-3 || relErr == 0 {
		t.Errorf("relative error %.3g out of plausible f32 range", relErr)
	}
}

func TestApplyInsertsScalarWrapper(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	// Lower only fun's internals: call sites pass kind-8 values to a
	// kind-4 dummy, requiring a wrapper (paper Fig. 4, reversed).
	a := Assignment{
		"funarc_mod.fun.x":  4,
		"funarc_mod.fun.t1": 4,
		"funarc_mod.fun.d1": 4,
	}
	v, err := Apply(prog, a)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	names := WrapperNames(v.Prog)
	if v.Wrappers != 1 || len(names) != 1 {
		t.Fatalf("wrappers = %d (%v), want 1", v.Wrappers, names)
	}
	if !strings.Contains(names[0], "fun_wrapper_8") {
		t.Errorf("wrapper name %q", names[0])
	}
	src := ft.Print(v.Prog)
	if !strings.Contains(src, "fun_wrapper_8") {
		t.Error("wrapper missing from printed variant")
	}
	// The variant must be a strictly legal program and runnable.
	in, res := runProg(t, v.Prog)
	low, _ := in.GlobalFloat("funarc_mod.result")
	if low == 0 {
		t.Error("variant produced no result")
	}
	if res.Casts == 0 {
		t.Error("wrapper calls must incur casts")
	}
}

func TestWrapperPreservesIntentOutCopyback(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8) :: got
contains
  subroutine producer(x, y)
    real(kind=8), intent(in) :: x
    real(kind=8), intent(out) :: y
    y = x * 2.0d0
  end subroutine producer
  subroutine driver()
    real(kind=4) :: a, b
    a = 3.0
    b = 0.0
    call producer(a, b)
    got = b
  end subroutine driver
end module m
program p
  use m
  implicit none
  call driver()
end program p
`
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ft.Analyze(prog, ft.Options{AllowKindMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := InsertWrappers(prog, info)
	if err != nil || n != 1 {
		t.Fatalf("InsertWrappers = %d, %v", n, err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("strict analysis after wrapping: %v\n%s", err, ft.Print(prog))
	}
	in, _ := runProg(t, prog)
	if got, _ := in.GlobalFloat("m.got"); got != 6 {
		t.Errorf("intent(out) through wrapper: got %g, want 6", got)
	}
}

func TestWrapperArrayArgument(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8) :: total
contains
  subroutine scale(v, f)
    real(kind=8), intent(inout) :: v(:)
    real(kind=8), intent(in) :: f
    integer :: i
    do i = 1, size(v)
      v(i) = v(i) * f
    end do
  end subroutine scale
  subroutine driver()
    real(kind=4) :: data(0:9)
    integer :: i
    do i = 0, 9
      data(i) = real(i)
    end do
    call scale(data, 2.0d0)
    total = 0.0d0
    do i = 0, 9
      total = total + data(i)
    end do
  end subroutine driver
end module m
program p
  use m
  implicit none
  call driver()
end program p
`
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ft.Analyze(prog, ft.Options{AllowKindMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Mismatches) != 1 || !info.Mismatches[0].IsArray {
		t.Fatalf("mismatches: %+v", info.Mismatches)
	}
	n, err := InsertWrappers(prog, info)
	if err != nil || n != 1 {
		t.Fatalf("InsertWrappers = %d, %v", n, err)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("strict analysis: %v\n%s", err, ft.Print(prog))
	}
	in, res := runProg(t, prog)
	if got, _ := in.GlobalFloat("m.total"); got != 90 { // 2*(0+..+9)
		t.Errorf("array through wrapper: total = %g, want 90", got)
	}
	// The wrapper copies the 10-element array in and out: ≥20 casts.
	if res.Casts < 20 {
		t.Errorf("array wrapper casts = %d, want ≥ 20", res.Casts)
	}
}

func TestWrappersSharedAcrossCallSites(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8) :: acc
contains
  function f(x) result(r)
    real(kind=8) :: x, r
    r = x + 1.0d0
  end function f
  subroutine driver()
    real(kind=4) :: a, b
    a = 1.0
    b = 2.0
    acc = f(a) + f(b)
  end subroutine driver
end module m
program p
  use m
  implicit none
  call driver()
end program p
`
	prog, err := ft.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ft.Analyze(prog, ft.Options{AllowKindMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := InsertWrappers(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("two identical call sites should share one wrapper, got %d", n)
	}
	if _, err := ft.Analyze(prog, ft.Options{}); err != nil {
		t.Fatalf("strict analysis: %v", err)
	}
	in, _ := runProg(t, prog)
	if got, _ := in.GlobalFloat("m.acc"); got != 5 {
		t.Errorf("acc = %g, want 5", got)
	}
}

const flowSrc = `
module fm
  implicit none
  real(kind=8) :: state(16), aux
contains
  subroutine kernel(v, s)
    real(kind=8), intent(inout) :: v(:)
    real(kind=8), intent(in) :: s
    v(1) = s
  end subroutine kernel
  subroutine driver()
    call kernel(state, aux)
  end subroutine driver
end module fm
program p
  use fm
  implicit none
  call driver()
end program p
`

func TestFlowGraphInvariant(t *testing.T) {
	prog := analyzed(t, flowSrc)
	info := ft.MustAnalyze(prog, ft.Options{})
	g := BuildFlowGraph(prog, info)
	if len(g.Nodes) == 0 || len(g.Edges) != 2 {
		t.Fatalf("graph shape: %d nodes %d edges, want edges=2\n%s",
			len(g.Nodes), len(g.Edges), g.String())
	}
	if mm := g.MismatchedEdges(); len(mm) != 0 {
		t.Errorf("baseline has mismatched edges:\n%s", g.String())
	}

	// Lower the kernel's dummies *without* wrappers: both edges must
	// now violate the matching invariant.
	variant := ft.Clone(prog)
	ft.MustAnalyze(variant, ft.Options{AllowKindMismatch: true})
	for _, d := range ft.RealDecls(variant) {
		if strings.HasPrefix(d.QName(), "fm.kernel.") {
			d.Kind = 4
		}
	}
	vinfo := ft.MustAnalyze(variant, ft.Options{AllowKindMismatch: true})
	g2 := BuildFlowGraph(variant, vinfo)
	if mm := g2.MismatchedEdges(); len(mm) != 2 {
		t.Errorf("lowered callee: %d mismatched edges, want 2\n%s", len(mm), g2.String())
	}

	// After wrapper insertion the invariant is restored: the wrapper's
	// own dummies match the actuals, and its temporaries match the
	// callee (Fig. 4's node-splitting step).
	if _, err := InsertWrappers(variant, vinfo); err != nil {
		t.Fatal(err)
	}
	vinfo = ft.MustAnalyze(variant, ft.Options{})
	g3 := BuildFlowGraph(variant, vinfo)
	if mm := g3.MismatchedEdges(); len(mm) != 0 {
		t.Errorf("wrappers did not restore matching invariant:\n%s", g3.String())
	}
}

func TestFlowGraphExpressionArgsHaveNoEdges(t *testing.T) {
	// funarc passes only expressions to fun; expression arguments carry
	// no variable-to-variable edge.
	prog := analyzed(t, funarcSrc)
	info := ft.MustAnalyze(prog, ft.Options{})
	g := BuildFlowGraph(prog, info)
	if len(g.Nodes) != 9 || len(g.Edges) != 0 {
		t.Errorf("funarc graph: %d nodes %d edges, want 9/0", len(g.Nodes), len(g.Edges))
	}
}

func TestFlowGraphElems(t *testing.T) {
	src := `
module m
  implicit none
  integer, parameter :: n = 32
contains
  subroutine kern(v, s)
    real(kind=8) :: v(n, 2)
    real(kind=8) :: s
    v(1, 1) = s
  end subroutine kern
  subroutine driver()
    real(kind=8) :: big(n, 2), x
    x = 1.0d0
    call kern(big, x)
  end subroutine driver
end module m
program p
  use m
  implicit none
  call driver()
end program p
`
	prog := analyzed(t, src)
	info := ft.MustAnalyze(prog, ft.Options{})
	g := BuildFlowGraph(prog, info)
	var arrEdge, scalEdge *FlowEdge
	for i := range g.Edges {
		if g.Edges[i].To.IsArray {
			arrEdge = &g.Edges[i]
		} else {
			scalEdge = &g.Edges[i]
		}
	}
	if arrEdge == nil || scalEdge == nil {
		t.Fatalf("edges missing: %+v", g.Edges)
	}
	if arrEdge.Elems != 64 {
		t.Errorf("array edge elems = %d, want 64", arrEdge.Elems)
	}
	if scalEdge.Elems != 1 {
		t.Errorf("scalar edge elems = %d, want 1", scalEdge.Elems)
	}
}

func TestApplyErrors(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	if _, err := Apply(prog, Assignment{"no.such.atom": 4}); err == nil {
		t.Error("unknown atom accepted")
	}
	if _, err := Apply(prog, Assignment{"funarc_mod.fun.x": 16}); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestReduceFunarc(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	red, stats, err := Reduce(prog, []string{"funarc_mod.fun.d1"})
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if stats.KeptStmts >= stats.TotalStmts {
		t.Errorf("reduction kept everything: %s", stats)
	}
	// The reduced program must reparse and reanalyze.
	if _, err := ft.Analyze(red, ft.Options{}); err != nil {
		t.Fatalf("reduced program analysis: %v\n%s", err, ft.Print(red))
	}
	src := ft.Print(red)
	if !strings.Contains(src, "d1") {
		t.Error("target variable dropped")
	}
	// The reduced program keeps fun (declares the target) and the
	// statements referencing d1.
	found := false
	for _, m := range red.Modules {
		for _, p := range m.Procs {
			if p.Name == "fun" {
				found = true
			}
		}
	}
	if !found {
		t.Error("procedure declaring target missing from reduction")
	}
}

func TestReduceKeepsCalleeInterface(t *testing.T) {
	src := `
module m
  implicit none
  real(kind=8) :: target_var, unrelated
contains
  function helper(q) result(r)
    real(kind=8) :: q, r
    r = q * 2.0d0
  end function helper
  subroutine touch()
    target_var = helper(1.0d0)
  end subroutine touch
  subroutine noise()
    unrelated = 3.0d0
  end subroutine noise
end module m
program p
  use m
  implicit none
  call touch()
  call noise()
end program p
`
	prog := analyzed(t, src)
	red, stats, err := Reduce(prog, []string{"m.target_var"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Analyze(red, ft.Options{}); err != nil {
		t.Fatalf("reduced analysis: %v\n%s", err, ft.Print(red))
	}
	out := ft.Print(red)
	if !strings.Contains(out, "helper") {
		t.Error("called function dropped from reduction")
	}
	if !strings.Contains(out, "r = q * 2.0_8") {
		t.Errorf("callee body computing its result dropped:\n%s", out)
	}
	if strings.Contains(out, "unrelated = 3.0_8") {
		t.Error("unrelated statement survived reduction")
	}
	if stats.KeptProcs >= stats.TotalProcs {
		t.Errorf("no procedures dropped: %s", stats)
	}
}

func TestReduceUnknownTarget(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	if _, _, err := Reduce(prog, []string{"ghost.var"}); err == nil {
		t.Error("unknown reduction target accepted")
	}
}

func TestReduceDoesNotMutateOriginal(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	before := ft.Print(prog)
	red, _, err := Reduce(prog, []string{"funarc_mod.funarc.s1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Analyze(red, ft.Options{}); err != nil {
		t.Fatal(err)
	}
	if ft.Print(prog) != before {
		t.Error("Reduce mutated the original program")
	}
	// And the original still runs.
	runProg(t, prog)
}
