package transform

import (
	"fmt"
	"sort"
	"strings"

	ft "repro/internal/fortran"
)

// InsertWrappers patches every real-kind argument mismatch recorded in
// info by generating wrapper procedures (paper Fig. 4) and redirecting
// the offending call sites to them. One wrapper is shared by all call
// sites with the same callee and actual-kind signature. It returns the
// number of wrapper procedures created.
//
// A wrapper declares its dummies with the *actual* kinds, copies
// mismatched arguments into temporaries of the callee's kinds (the
// assignment is the legal conversion point), invokes the callee, and
// copies intent(out)/intent(inout) temporaries back. Wrapper calls are
// never inlinable (they contain a call), so casting at a call boundary
// also defeats inlining — the MPAS-A flux-function slowdown mechanism.
func InsertWrappers(prog *ft.Program, info *ft.Info) (int, error) {
	if len(info.Mismatches) == 0 {
		return 0, nil
	}

	// Group mismatches by call site.
	type siteKey struct {
		cs *ft.CallStmt
		ce *ft.CallExpr
	}
	sites := make(map[siteKey][]ft.Mismatch)
	var order []siteKey
	for _, m := range info.Mismatches {
		k := siteKey{m.CallStmt, m.CallExpr}
		if _, seen := sites[k]; !seen {
			order = append(order, k)
		}
		sites[k] = append(sites[k], m)
	}

	wrappers := make(map[string]*ft.Procedure) // callee qname + sig -> wrapper
	created := 0
	for _, k := range order {
		ms := sites[k]
		callee := ms[0].Callee
		var args []ft.Expr
		if k.cs != nil {
			args = k.cs.Args
		} else {
			args = k.ce.Args
		}

		// Actual kind per parameter: default to the dummy's own kind,
		// overridden by the recorded mismatches.
		actualKinds := make([]int, len(callee.Params))
		for i, d := range callee.ParamDecl {
			if d != nil {
				actualKinds[i] = d.Kind
			}
		}
		for _, m := range ms {
			actualKinds[m.ArgIndex] = m.From
		}

		sig := signature(callee, actualKinds)
		wkey := callee.QName() + "#" + sig
		w, ok := wrappers[wkey]
		if !ok {
			var err error
			w, err = buildWrapper(prog, callee, actualKinds, sig)
			if err != nil {
				return created, err
			}
			wrappers[wkey] = w
			created++
		}

		// Redirect the call site.
		if k.cs != nil {
			k.cs.Name = w.Name
			k.cs.Proc = nil
		} else {
			k.ce.Name = w.Name
			k.ce.Proc = nil
		}
		_ = args
	}
	return created, nil
}

// signature encodes the actual kinds of the real parameters, e.g. "4_to_8"
// for a single converted scalar, or "48x" style digests for longer lists.
func signature(callee *ft.Procedure, actualKinds []int) string {
	var sb strings.Builder
	for i, d := range callee.ParamDecl {
		if d == nil || d.Base != ft.TReal {
			sb.WriteByte('x')
			continue
		}
		fmt.Fprintf(&sb, "%d", actualKinds[i])
	}
	return sb.String()
}

// buildWrapper synthesizes the wrapper procedure and registers it in the
// callee's module. The generated AST is unresolved; the caller's final
// Analyze pass resolves and type-checks it.
func buildWrapper(prog *ft.Program, callee *ft.Procedure, actualKinds []int, sig string) (*ft.Procedure, error) {
	mod := callee.Module
	if mod == nil {
		return nil, fmt.Errorf("transform: callee %s has no module", callee.QName())
	}
	name := fmt.Sprintf("%s_wrapper_%s", callee.Name, sig)
	for i := 2; prog.ProcMap[mod.Name+"."+name] != nil; i++ {
		name = fmt.Sprintf("%s_wrapper_%s_%d", callee.Name, sig, i)
	}

	pos := callee.Pos
	w := &ft.Procedure{
		Pos:        pos,
		Kind:       callee.Kind,
		Name:       name,
		WrapperFor: callee.QName(),
	}

	ref := func(n string) *ft.VarRef { return &ft.VarRef{Pos: pos, Name: n} }

	var copyIns, copyOuts []ft.Stmt
	callArgs := make([]ft.Expr, len(callee.Params))
	for i, dummy := range callee.ParamDecl {
		if dummy == nil {
			return nil, fmt.Errorf("transform: %s has an undeclared dummy", callee.QName())
		}
		argName := fmt.Sprintf("a%d", i+1)
		w.Params = append(w.Params, argName)

		// Wrapper dummy: the actual's kind; arrays become assumed-shape
		// of the callee dummy's rank.
		wd := &ft.VarDecl{
			Pos:    pos,
			Name:   argName,
			Base:   dummy.Base,
			Kind:   dummy.Kind,
			Intent: dummy.Intent,
		}
		if dummy.Base == ft.TReal {
			wd.Kind = actualKinds[i]
		}
		for range dummy.Dims {
			wd.Dims = append(wd.Dims, ft.Dim{Assumed: true})
		}
		w.Decls = append(w.Decls, wd)

		if dummy.Base != ft.TReal || actualKinds[i] == dummy.Kind {
			callArgs[i] = ref(argName)
			continue
		}

		// Mismatched: temporary of the callee's kind.
		tmpName := fmt.Sprintf("t%d", i+1)
		td := &ft.VarDecl{Pos: pos, Name: tmpName, Base: ft.TReal, Kind: dummy.Kind}
		for d := range dummy.Dims {
			td.Dims = append(td.Dims, ft.Dim{Hi: &ft.CallExpr{
				Pos: pos, Name: "size", Intrinsic: "size",
				Args: []ft.Expr{ref(argName), &ft.IntLit{Pos: pos, Val: int64(d + 1)}},
			}})
		}
		w.Decls = append(w.Decls, td)
		callArgs[i] = ref(tmpName)

		if dummy.Intent != ft.IntentOut {
			copyIns = append(copyIns, &ft.AssignStmt{Pos: pos, LHS: ref(tmpName), RHS: ref(argName)})
		}
		if dummy.Intent == ft.IntentOut || dummy.Intent == ft.IntentInOut {
			copyOuts = append(copyOuts, &ft.AssignStmt{Pos: pos, LHS: ref(argName), RHS: ref(tmpName)})
		}
	}

	w.Body = append(w.Body, copyIns...)
	switch callee.Kind {
	case ft.KSubroutine:
		w.Body = append(w.Body, &ft.CallStmt{Pos: pos, Name: callee.Name, Args: callArgs})
	case ft.KFunction:
		if callee.Result == nil {
			return nil, fmt.Errorf("transform: function %s has no result", callee.QName())
		}
		w.ResultName = "wres"
		w.Decls = append(w.Decls, &ft.VarDecl{
			Pos: pos, Name: "wres", Base: callee.Result.Base, Kind: callee.Result.Kind,
		})
		w.Body = append(w.Body, &ft.AssignStmt{
			Pos: pos,
			LHS: ref("wres"),
			RHS: &ft.ApplyExpr{Pos: pos, Name: callee.Name, Args: callArgs},
		})
	default:
		return nil, fmt.Errorf("transform: cannot wrap %s", callee.QName())
	}
	w.Body = append(w.Body, copyOuts...)

	mod.Procs = append(mod.Procs, w)
	// Keep ProcMap current so subsequent name-uniqueness checks see it;
	// the final Analyze pass rebuilds everything.
	w.Module = mod
	prog.ProcMap[mod.Name+"."+name] = w
	return w, nil
}

// WrapperNames lists wrapper procedures present in a transformed
// program, in deterministic order (useful for tests and diffs). Only
// procedures actually generated by InsertWrappers are listed — a user
// procedure whose name merely looks like a wrapper's is not.
func WrapperNames(prog *ft.Program) []string {
	var out []string
	for _, m := range prog.Modules {
		for _, p := range m.Procs {
			if p.WrapperFor != "" {
				out = append(out, p.QName())
			}
		}
	}
	sort.Strings(out)
	return out
}

// WrapperMap maps each generated wrapper's qualified name to the
// qualified name of the procedure it wraps. This is the authoritative
// record for attributing a wrapper's profiled CPU time to its callee;
// name-based matching would misattribute user procedures that happen to
// contain a wrapper-like substring.
func WrapperMap(prog *ft.Program) map[string]string {
	out := make(map[string]string)
	for _, m := range prog.Modules {
		for _, p := range m.Procs {
			if p.WrapperFor != "" {
				out[p.QName()] = p.WrapperFor
			}
		}
	}
	return out
}
