package transform_test

import (
	"fmt"
	"strings"

	ft "repro/internal/fortran"
	"repro/internal/transform"
)

// Lowering a callee's dummy argument makes its call sites illegal under
// Fortran's conversion rules; Apply patches them with generated wrapper
// procedures (paper Fig. 4).
func ExampleApply() {
	src := `
module m
  implicit none
  real(kind=8) :: result
contains
  function square(x) result(y)
    real(kind=8) :: x, y
    y = x * x
  end function square
  subroutine driver()
    real(kind=8) :: a
    a = 3.0d0
    result = square(a)
  end subroutine driver
end module m
program main
  use m
  implicit none
  call driver()
end program main
`
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})

	v, err := transform.Apply(prog, transform.Assignment{
		"m.square.x": 4,
		"m.square.y": 4,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("wrappers inserted:", v.Wrappers)
	for _, name := range transform.WrapperNames(v.Prog) {
		fmt.Println("generated:", name)
	}
	// The wrapper body converts through assignment, the only legal
	// conversion point:
	for _, line := range strings.Split(ft.Print(v.Prog), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "t1 = ") || strings.HasPrefix(trimmed, "wres = square") {
			fmt.Println(trimmed)
		}
	}
	// Output:
	// wrappers inserted: 1
	// generated: m.square_wrapper_8
	// t1 = a1
	// wres = square(t1)
}

// Reduce keeps only the statements a precision transformation of the
// target variables needs, as the paper does to stay inside ROSE's
// language support (§III-C).
func ExampleReduce() {
	src := `
module m
  implicit none
  real(kind=8) :: wanted, unrelated
contains
  subroutine work()
    wanted = 1.0d0
    unrelated = 2.0d0
  end subroutine work
end module m
program main
  use m
  implicit none
  call work()
end program main
`
	prog := ft.MustParse(src)
	ft.MustAnalyze(prog, ft.Options{})
	red, stats, _ := transform.Reduce(prog, []string{"m.wanted"})
	fmt.Println(stats)
	out := ft.Print(red)
	fmt.Println("keeps wanted:", strings.Contains(out, "wanted = 1.0_8"))
	fmt.Println("keeps unrelated:", strings.Contains(out, "unrelated = 2.0_8"))
	// Output:
	// reduced to 2/3 stmts, 2/2 procs, 1/2 decls (1 tainted vars, 2 passes)
	// keeps wanted: true
	// keeps unrelated: false
}
