package transform

import (
	"fmt"

	ft "repro/internal/fortran"
)

// ReduceStats reports what the taint-based program reduction kept.
type ReduceStats struct {
	TotalStmts  int
	KeptStmts   int
	TotalProcs  int
	KeptProcs   int
	TotalDecls  int
	KeptDecls   int
	TaintedVars int
	Iterations  int
}

func (s ReduceStats) String() string {
	return fmt.Sprintf("reduced to %d/%d stmts, %d/%d procs, %d/%d decls (%d tainted vars, %d passes)",
		s.KeptStmts, s.TotalStmts, s.KeptProcs, s.TotalProcs,
		s.KeptDecls, s.TotalDecls, s.TaintedVars, s.Iterations)
}

// Reduce implements the taint-analysis-style program reduction of
// §III-C: apply a taint to the target floating-point variables and
// iterate propagation rules to a fixed point, keeping only
//
//  1. the statements declaring target variables,
//  2. the statements passing target variables as arguments to
//     procedure calls,
//  3. statements defining symbols referenced by statements kept under
//     1, 2, and (recursively) 3,
//  4. the USE statements required by kept symbols, and
//  5. the enclosing program structures (modules, procedures).
//
// The paper uses this to shrink model sources below ROSE's language
// support limits before parsing; here it also powers `prose reduce`.
// Note the direction of rule 3: a statement is kept when it *defines* a
// needed symbol, not merely because it reads a tainted one — that is
// what keeps the reduction minimal. The input program must be analyzed;
// it is not modified.
func Reduce(prog *ft.Program, targets []string) (*ft.Program, *ReduceStats, error) {
	target := make(map[*ft.VarDecl]bool)
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	found := 0
	for _, d := range ft.RealDecls(prog) {
		if want[d.QName()] {
			target[d] = true
			found++
		}
	}
	if found != len(targets) {
		return nil, nil, fmt.Errorf("transform: %d of %d reduction targets not found", len(targets)-found, len(targets))
	}

	stats := &ReduceStats{}
	needed := make(map[*ft.VarDecl]bool, len(target)) // symbols whose definitions must survive
	for d := range target {
		needed[d] = true
	}
	keptStmt := make(map[ft.Stmt]bool)
	keptProc := make(map[*ft.Procedure]bool)
	changed := false

	// keepProc keeps a procedure and marks its interface symbols needed,
	// so the statements computing its outputs survive (rule 3 across
	// procedure boundaries).
	keepProc := func(p *ft.Procedure) {
		if keptProc[p] {
			return
		}
		keptProc[p] = true
		changed = true
		for _, d := range p.ParamDecl {
			if d != nil && !needed[d] {
				needed[d] = true
			}
		}
		if p.Result != nil {
			needed[p.Result] = true
		}
	}

	need := func(d *ft.VarDecl) {
		if d != nil && !needed[d] {
			needed[d] = true
			changed = true
		}
	}

	// needExpr marks every symbol referenced by e as needed and keeps
	// procedures referenced through function calls.
	var needExpr func(e ft.Expr)
	needExpr = func(e ft.Expr) {
		ft.WalkExpr(e, func(sub ft.Expr) bool {
			switch sub := sub.(type) {
			case *ft.VarRef:
				need(sub.Decl)
			case *ft.IndexExpr:
				need(sub.Arr.Decl)
			case *ft.CallExpr:
				if sub.Proc != nil {
					keepProc(sub.Proc)
				}
			}
			return true
		})
	}

	declOf := func(e ft.Expr) *ft.VarDecl {
		switch e := e.(type) {
		case *ft.VarRef:
			return e.Decl
		case *ft.IndexExpr:
			return e.Arr.Decl
		default:
			return nil
		}
	}

	refsTarget := func(e ft.Expr) bool {
		hit := false
		ft.WalkExpr(e, func(sub ft.Expr) bool {
			if d := declOf(sub); d != nil && target[d] {
				hit = true
			}
			return !hit
		})
		return hit
	}

	// shouldKeep decides whether a leaf statement is kept under the
	// current needed/keptProc sets.
	shouldKeep := func(s ft.Stmt) bool {
		switch s := s.(type) {
		case *ft.AssignStmt:
			return needed[declOf(s.LHS)]
		case *ft.CallStmt:
			if s.Proc != nil && keptProc[s.Proc] {
				return true
			}
			for i, a := range s.Args {
				if refsTarget(a) {
					return true // rule 2
				}
				// A call defining a needed symbol through an out/inout
				// dummy is a definition of that symbol (rule 3).
				if s.Proc != nil && i < len(s.Proc.ParamDecl) {
					if dm := s.Proc.ParamDecl[i]; dm != nil &&
						(dm.Intent == ft.IntentOut || dm.Intent == ft.IntentInOut) &&
						needed[declOf(a)] {
						return true
					}
				}
			}
			return false
		default:
			return false
		}
	}

	// onKeep propagates needs from a freshly kept leaf statement.
	onKeep := func(s ft.Stmt) {
		switch s := s.(type) {
		case *ft.AssignStmt:
			needExpr(s.LHS)
			needExpr(s.RHS)
		case *ft.CallStmt:
			if s.Proc != nil {
				keepProc(s.Proc)
			}
			for _, a := range s.Args {
				needExpr(a)
			}
		}
	}

	// keepInList walks a statement list, keeping leaves per shouldKeep
	// and enclosing control flow around kept statements (rule 5); the
	// control context's symbols become needed (rule 3).
	var keepInList func(list []ft.Stmt) bool
	keepInList = func(list []ft.Stmt) bool {
		any := false
		for _, s := range list {
			kept := keptStmt[s]
			switch s := s.(type) {
			case *ft.IfStmt:
				inner := keepInList(s.Then)
				inner = keepInList(s.Else) || inner
				if inner && !kept {
					kept = true
					needExpr(s.Cond)
				}
			case *ft.DoStmt:
				if keepInList(s.Body) && !kept {
					kept = true
					needExpr(s.Var)
					needExpr(s.From)
					needExpr(s.To)
					if s.Step != nil {
						needExpr(s.Step)
					}
				}
			case *ft.DoWhileStmt:
				if keepInList(s.Body) && !kept {
					kept = true
					needExpr(s.Cond)
				}
			default:
				if !kept && shouldKeep(s) {
					kept = true
					onKeep(s)
				}
			}
			if kept && !keptStmt[s] {
				keptStmt[s] = true
				changed = true
			}
			if keptStmt[s] {
				any = true
			}
		}
		return any
	}

	// Fixed point.
	for {
		changed = false
		stats.Iterations++
		for _, p := range prog.AllProcs {
			// Rule 1/5: a procedure declaring a target is kept.
			for _, d := range p.Decls {
				if target[d] {
					keepProc(p)
				}
			}
			if keepInList(p.Body) {
				keepProc(p)
			}
		}
		if !changed || stats.Iterations > 100 {
			break
		}
	}

	// Emit the reduced program.
	out := &ft.Program{}
	for _, m := range prog.Modules {
		rm := &ft.Module{Pos: m.Pos, Name: m.Name, Uses: append([]string(nil), m.Uses...)}
		for _, d := range m.Decls {
			stats.TotalDecls++
			if needed[d] || d.IsParam {
				rm.Decls = append(rm.Decls, d)
				stats.KeptDecls++
			}
		}
		for _, p := range m.Procs {
			stats.TotalProcs++
			if !keptProc[p] {
				countStmts(p.Body, &stats.TotalStmts)
				stats.TotalDecls += len(p.Decls)
				continue
			}
			stats.KeptProcs++
			rm.Procs = append(rm.Procs, reduceProc(p, keptStmt, needed, stats))
		}
		if len(rm.Decls) > 0 || len(rm.Procs) > 0 {
			out.Modules = append(out.Modules, rm)
		}
	}
	if prog.Main != nil {
		stats.TotalProcs++
		if keptProc[prog.Main] {
			stats.KeptProcs++
			out.Main = reduceProc(prog.Main, keptStmt, needed, stats)
		} else {
			countStmts(prog.Main.Body, &stats.TotalStmts)
			stats.TotalDecls += len(prog.Main.Decls)
		}
	}
	stats.TaintedVars = len(needed)
	// The reduced tree shares declaration and expression nodes with the
	// input; deep-clone so that analyzing or mutating the reduction can
	// never corrupt the original program.
	return ft.Clone(out), stats, nil
}

func countStmts(list []ft.Stmt, n *int) {
	ft.WalkStmts(list, func(ft.Stmt) bool { *n++; return true })
}

// reduceProc copies a procedure keeping only kept statements (with their
// enclosing control flow) and declarations of needed or structural
// symbols.
func reduceProc(p *ft.Procedure, keptStmt map[ft.Stmt]bool, needed map[*ft.VarDecl]bool, stats *ReduceStats) *ft.Procedure {
	out := &ft.Procedure{
		Pos: p.Pos, Kind: p.Kind, Name: p.Name,
		ResultName: p.ResultName,
		Params:     append([]string(nil), p.Params...),
		Uses:       append([]string(nil), p.Uses...),
	}
	for _, d := range p.Decls {
		stats.TotalDecls++
		// Dummies, results, and parameters are structural (rule 5) and
		// always kept; other declarations survive only when needed.
		if needed[d] || d.IsArg || d.IsParam || (p.Result != nil && d == p.Result) {
			out.Decls = append(out.Decls, d)
			stats.KeptDecls++
		}
	}
	var filter func(list []ft.Stmt) []ft.Stmt
	filter = func(list []ft.Stmt) []ft.Stmt {
		var kept []ft.Stmt
		for _, s := range list {
			stats.TotalStmts++
			if !keptStmt[s] {
				switch s := s.(type) {
				case *ft.IfStmt:
					countStmts(s.Then, &stats.TotalStmts)
					countStmts(s.Else, &stats.TotalStmts)
				case *ft.DoStmt:
					countStmts(s.Body, &stats.TotalStmts)
				case *ft.DoWhileStmt:
					countStmts(s.Body, &stats.TotalStmts)
				}
				continue
			}
			stats.KeptStmts++
			switch s := s.(type) {
			case *ft.IfStmt:
				kept = append(kept, &ft.IfStmt{
					Pos: s.Pos, Cond: s.Cond, ElseIf: s.ElseIf,
					Then: filter(s.Then), Else: filter(s.Else),
				})
			case *ft.DoStmt:
				kept = append(kept, &ft.DoStmt{
					Pos: s.Pos, Var: s.Var, From: s.From, To: s.To,
					Step: s.Step, NoVector: s.NoVector, Body: filter(s.Body),
				})
			case *ft.DoWhileStmt:
				kept = append(kept, &ft.DoWhileStmt{Pos: s.Pos, Cond: s.Cond, Body: filter(s.Body)})
			default:
				kept = append(kept, s)
			}
		}
		return kept
	}
	out.Body = filter(p.Body)
	return out
}
