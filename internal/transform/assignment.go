// Package transform generates mixed-precision program variants by
// source-level (AST-level) transformation, reproducing the paper's
// bespoke Fortran tool (§III-C):
//
//   - Apply clones the baseline AST and rewrites the kinds of the
//     targeted real variable declarations (the search atoms of §III-A);
//   - wrapper generation restores the Fortran rule that real kinds
//     convert only through assignment, by synthesizing
//     "*_wrapper_4_to_8"-style shim procedures at every mismatched call
//     site (paper Fig. 4) and maintaining the matching-edge invariant on
//     the parameter-passing flow graph;
//   - taint.go implements the taint-style program reduction the paper
//     uses to feed ROSE only the minimal subset of the model.
package transform

import (
	"fmt"
	"sort"

	ft "repro/internal/fortran"
)

// Atom is one tunable search atom: a real variable declaration.
type Atom struct {
	QName string
	Decl  *ft.VarDecl
}

// Atoms returns the search atoms of an analyzed program: every real,
// non-parameter variable declaration, optionally restricted to the named
// modules (the tuned hotspot). Order is deterministic (declaration order).
func Atoms(prog *ft.Program, modules ...string) []Atom {
	want := make(map[string]bool, len(modules))
	for _, m := range modules {
		want[m] = true
	}
	var out []Atom
	for _, d := range ft.RealDecls(prog) {
		if len(modules) > 0 {
			mod := d.InMod
			if mod == nil || !want[mod.Name] {
				continue
			}
		}
		out = append(out, Atom{QName: d.QName(), Decl: d})
	}
	return out
}

// Assignment maps atom qualified names to real kinds (4 or 8). Atoms not
// present keep their baseline kind.
type Assignment map[string]int

// Uniform builds an assignment giving every atom the same kind.
func Uniform(atoms []Atom, kind int) Assignment {
	a := make(Assignment, len(atoms))
	for _, at := range atoms {
		a[at.QName] = kind
	}
	return a
}

// Lowered counts atoms assigned kind 4.
func (a Assignment) Lowered() int {
	n := 0
	for _, k := range a {
		if k == 4 {
			n++
		}
	}
	return n
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Key renders the assignment canonically, for caching identical variants.
func (a Assignment) Key() string {
	names := make([]string, 0, len(a))
	for n, k := range a {
		if k == 4 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + ";"
	}
	return out
}

// Result is a generated variant.
type Result struct {
	Prog     *ft.Program
	Info     *ft.Info
	Wrappers int // wrapper procedures inserted
	// WrapperOf maps each generated wrapper's qualified name to the
	// qualified name of the procedure it wraps (see WrapperMap).
	WrapperOf map[string]string
}

// Apply generates the mixed-precision variant of base (an analyzed
// program) described by a: it deep-clones the AST, rewrites declaration
// kinds, inserts parameter-passing wrappers where the new kinds violate
// Fortran's conversion rules, and re-analyzes strictly. base is never
// mutated, so variant generation may run in parallel.
func Apply(base *ft.Program, a Assignment) (*Result, error) {
	variant := ft.Clone(base)
	// Clone strips analysis; re-analyze to rebuild QNames.
	info, err := ft.Analyze(variant, ft.Options{AllowKindMismatch: true})
	if err != nil {
		return nil, fmt.Errorf("transform: clone analysis: %w", err)
	}
	byName := make(map[string]*ft.VarDecl)
	for _, d := range ft.RealDecls(variant) {
		byName[d.QName()] = d
	}
	for q, kind := range a {
		d, ok := byName[q]
		if !ok {
			return nil, fmt.Errorf("transform: assignment names unknown atom %q", q)
		}
		if kind != 4 && kind != 8 {
			return nil, fmt.Errorf("transform: atom %q assigned unsupported kind %d", q, kind)
		}
		d.Kind = kind
	}
	// Re-analyze tolerantly to discover kind mismatches at call sites,
	// then patch them with wrappers until the flow graph invariant holds.
	info, err = ft.Analyze(variant, ft.Options{AllowKindMismatch: true})
	if err != nil {
		return nil, fmt.Errorf("transform: variant analysis: %w", err)
	}
	wrappers, err := InsertWrappers(variant, info)
	if err != nil {
		return nil, err
	}
	// Final strict analysis: the variant must now be a legal program.
	info, err = ft.Analyze(variant, ft.Options{})
	if err != nil {
		return nil, fmt.Errorf("transform: variant is malformed after wrapper insertion: %w", err)
	}
	return &Result{Prog: variant, Info: info, Wrappers: wrappers, WrapperOf: WrapperMap(variant)}, nil
}

// KindOf reports the effective kind of atom q under a, given its
// baseline declaration kind.
func (a Assignment) KindOf(q string, baseline int) int {
	if k, ok := a[q]; ok {
		return k
	}
	return baseline
}
