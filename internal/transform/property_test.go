package transform

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	ft "repro/internal/fortran"
	"repro/internal/interp"
	"repro/internal/perfmodel"
)

// TestApplyPropertyAnyAssignmentLegal: the central robustness property of
// the variant generator — *every* one of the 2^n precision assignments
// over funarc's atoms produces a variant that (a) passes strict semantic
// analysis, (b) runs to completion under the interpreter with no
// internal errors, and (c) is deterministic (same cycles on re-run).
// This is the property the paper's ROSE-based tool lacked ("ROSE often
// generates uncompilable source"), which forced their taint-based
// reduction workaround.
func TestApplyPropertyAnyAssignmentLegal(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	atoms := Atoms(prog)
	machine := perfmodel.Default()

	run := func(p *ft.Program) (float64, error) {
		in, err := interp.New(p, interp.Config{Model: machine, TrapNonFinite: true})
		if err != nil {
			return 0, err
		}
		res, err := in.Run()
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}

	f := func(mask uint16) bool {
		a := make(Assignment, len(atoms))
		for i, at := range atoms {
			if mask&(1<<uint(i%16)) != 0 {
				a[at.QName] = 4
			} else {
				a[at.QName] = 8
			}
		}
		v, err := Apply(prog, a)
		if err != nil {
			t.Logf("mask %04x: transform failed: %v", mask, err)
			return false
		}
		c1, err := run(v.Prog)
		if err != nil {
			var re *interp.RunError
			if errors.As(err, &re) && re.Kind == interp.FailInternal {
				t.Logf("mask %04x: internal interpreter error: %v", mask, err)
				return false
			}
			// Numerical failures (traps) are legitimate outcomes.
			return true
		}
		// Determinism: regenerate and re-run.
		v2, err := Apply(prog, a)
		if err != nil {
			return false
		}
		c2, err := run(v2.Prog)
		if err != nil {
			return false
		}
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestApplyPropertyWrapperInvariant: after Apply, the flow graph of any
// random variant satisfies the matching-edge invariant of §III-C.
func TestApplyPropertyWrapperInvariant(t *testing.T) {
	prog := analyzed(t, flowSrc)
	atoms := Atoms(prog)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		a := make(Assignment, len(atoms))
		for _, at := range atoms {
			if rng.Intn(2) == 0 {
				a[at.QName] = 4
			} else {
				a[at.QName] = 8
			}
		}
		v, err := Apply(prog, a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := BuildFlowGraph(v.Prog, v.Info)
		if mm := g.MismatchedEdges(); len(mm) != 0 {
			t.Fatalf("trial %d: %d mismatched edges survive wrapper insertion:\n%s",
				trial, len(mm), g.String())
		}
	}
}

// TestApplyPropertyIdempotentKinds: applying an assignment and reading
// the variant's declarations back yields exactly the requested kinds.
func TestApplyPropertyIdempotentKinds(t *testing.T) {
	prog := analyzed(t, funarcSrc)
	atoms := Atoms(prog)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		a := make(Assignment, len(atoms))
		for _, at := range atoms {
			if rng.Intn(2) == 0 {
				a[at.QName] = 4
			} else {
				a[at.QName] = 8
			}
		}
		v, err := Apply(prog, a)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, d := range ft.RealDecls(v.Prog) {
			got[d.QName()] = d.Kind
		}
		for q, want := range a {
			if got[q] != want {
				t.Fatalf("trial %d: %s kind %d, want %d", trial, q, got[q], want)
			}
		}
	}
}
