package obs

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramMergeMatchesConcatenation is the merge-correctness
// property behind the fleet's metric aggregation: merging N worker
// histograms must equal one histogram fed the concatenated observation
// streams. Count, min, max, and the power-of-two buckets are exact;
// sum (and therefore mean) tolerates float addition-order differences.
func TestHistogramMergeMatchesConcatenation(t *testing.T) {
	const name = "eval_run_ns"
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		combined := NewRegistry()
		workers := make([]*Registry, 3)
		for i := range workers {
			workers[i] = NewRegistry()
		}
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			// Wide dynamic range (sub-nanosecond to hours in ns) plus the
			// occasional non-positive observation for the sentinel bucket.
			v := math.Exp(rng.Float64()*30 - 2)
			if rng.Intn(20) == 0 {
				v = 0
			}
			workers[rng.Intn(len(workers))].Histogram(name).Observe(v)
			combined.Histogram(name).Observe(v)
		}
		snaps := make([]Snapshot, len(workers))
		for i, w := range workers {
			snaps[i] = w.Snapshot()
		}
		got := MergeSnapshots(snaps...).Histograms[name]
		want := combined.Snapshot().Histograms[name]
		if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
			t.Errorf("seed %d: merged count/min/max = %d/%g/%g, want %d/%g/%g",
				seed, got.Count, got.Min, got.Max, want.Count, want.Min, want.Max)
		}
		if math.Abs(got.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) {
			t.Errorf("seed %d: merged sum = %g, want %g", seed, got.Sum, want.Sum)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Abs(want.Mean) {
			t.Errorf("seed %d: merged mean = %g, want %g", seed, got.Mean, want.Mean)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Errorf("seed %d: merged %d buckets, want %d", seed, len(got.Buckets), len(want.Buckets))
		}
		for e, cnt := range want.Buckets {
			if got.Buckets[e] != cnt {
				t.Errorf("seed %d: bucket 2^%d = %d, want %d", seed, e, got.Buckets[e], cnt)
			}
		}
	}
}

// TestMergeSnapshotsEmpty: empty-registry merges are no-ops — they
// fabricate no instruments and never disturb live ones.
func TestMergeSnapshotsEmpty(t *testing.T) {
	if m := MergeSnapshots(); len(m.Counters)+len(m.Gauges)+len(m.Histograms) != 0 {
		t.Errorf("MergeSnapshots() of nothing produced %+v", m)
	}
	if m := MergeSnapshots(NewRegistry().Snapshot(), Snapshot{}); len(m.Counters)+len(m.Gauges)+len(m.Histograms) != 0 {
		t.Errorf("merge of empty snapshots produced %+v", m)
	}

	// Merging an empty snapshot into a live histogram changes nothing.
	reg := NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h").Observe(5)
	before := reg.Snapshot()
	reg.Histogram("h").Merge(HistogramSnapshot{})
	merged := MergeSnapshots(before, NewRegistry().Snapshot())
	after := reg.Snapshot()
	for _, pair := range []struct {
		name string
		a, b HistogramSnapshot
	}{
		{"Merge(empty)", before.Histograms["h"], after.Histograms["h"]},
		{"MergeSnapshots(live, empty)", before.Histograms["h"], merged.Histograms["h"]},
	} {
		a, b := pair.a, pair.b
		if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max || len(a.Buckets) != len(b.Buckets) {
			t.Errorf("%s changed the histogram: %+v -> %+v", pair.name, a, b)
		}
	}
	if merged.Counters["c"] != 3 || merged.Gauges["g"] != 1.5 {
		t.Errorf("merge with an empty snapshot disturbed counters/gauges: %+v", merged)
	}
}

// TestChildOfRemoteParent: ChildOf hangs a span under a parent ID this
// tracer never created (the cross-process propagation case) and still
// derives deterministic, collision-free IDs per remote parent.
func TestChildOfRemoteParent(t *testing.T) {
	build := func() []SpanID {
		tr := NewTracer("remote")
		var ids []SpanID
		for i := 0; i < 3; i++ {
			sp := tr.ChildOf(SpanID(0xfeed), "worker.eval")
			ids = append(ids, sp.ID())
			sp.End()
		}
		sp := tr.ChildOf(0, "orphan") // zero parent: a root
		ids = append(ids, sp.ID())
		sp.End()
		return ids
	}
	a, b := build(), build()
	seen := map[SpanID]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("id[%d] differs across identical runs: %s vs %s", i, a[i], b[i])
		}
		if a[i] == 0 || seen[a[i]] {
			t.Errorf("id[%d] = %s zero or duplicated", i, a[i])
		}
		seen[a[i]] = true
	}
	tr := NewTracer("remote")
	sp := tr.ChildOf(SpanID(0xfeed), "worker.eval")
	sp.End()
	recs := tr.Drain()
	if len(recs) != 1 || recs[0].Parent != SpanID(0xfeed) {
		t.Fatalf("ChildOf record = %+v; want parent feed", recs)
	}
	if len(tr.Drain()) != 0 {
		t.Error("Drain did not remove the drained spans")
	}
}
