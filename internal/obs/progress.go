package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress emits a one-line heartbeat (evaluations done/total, best
// speedup, windowed rate, ETA, breaker/quarantine state) on a fixed
// interval, reading everything from a metrics Registry so it stays
// decoupled from the tuner. Start/Stop are race-safe; Stop drains the
// reporting goroutine before returning and prints one final line, so
// shutdown is clean even mid-interval.
type Progress struct {
	w        io.Writer
	interval time.Duration
	reg      *Registry
	total    int64

	mu      sync.Mutex
	samples []rateSample
	done    chan struct{}
	wg      sync.WaitGroup
	running bool
}

type rateSample struct {
	t time.Time
	n int64
}

// rateWindow bounds the number of samples kept for the windowed rate.
const rateWindow = 12

// NewProgress builds a reporter writing to w every interval. total is
// the evaluation budget (0 when unlimited — no ETA is printed then).
func NewProgress(w io.Writer, interval time.Duration, reg *Registry, total int64) *Progress {
	return &Progress{w: w, interval: interval, reg: reg, total: total}
}

// Start launches the heartbeat goroutine. Nil-safe; idempotent.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.done = make(chan struct{})
	p.mu.Unlock()
	p.wg.Add(1)
	go p.loop()
}

func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
			fmt.Fprintln(p.w, p.Line())
		}
	}
}

// Stop halts the heartbeat, waits for the goroutine to exit, and emits
// a final state line. Nil-safe; idempotent.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
	fmt.Fprintln(p.w, p.Line())
}

// Line renders the current heartbeat line.
func (p *Progress) Line() string {
	now := time.Now()
	done := p.reg.Counter(MetricEvals).Value()
	rate := p.observe(now, done)

	var sb []byte
	sb = append(sb, "progress:"...)
	if p.total > 0 {
		sb = append(sb, fmt.Sprintf(" %d/%d evals", done, p.total)...)
	} else {
		sb = append(sb, fmt.Sprintf(" %d evals", done)...)
	}
	if best := p.reg.Gauge(GaugeBestSpeedup).Value(); best > 0 {
		sb = append(sb, fmt.Sprintf("  best %.3fx", best)...)
	}
	if rate > 0 {
		sb = append(sb, fmt.Sprintf("  %.1f eval/s", rate)...)
		if left := p.total - done; p.total > 0 && left > 0 {
			eta := time.Duration(float64(left)/rate) * time.Second
			sb = append(sb, fmt.Sprintf("  eta %s", eta.Round(time.Second))...)
		}
	}
	if n := p.reg.Counter(MetricRetries).Value(); n > 0 {
		sb = append(sb, fmt.Sprintf("  retried %d", n)...)
	}
	if n := p.reg.Counter(MetricQuarantined).Value(); n > 0 {
		sb = append(sb, fmt.Sprintf("  quarantined %d", n)...)
	}
	if p.reg.Gauge(GaugeBreakerOpen).Value() > 0 {
		sb = append(sb, "  breaker OPEN"...)
	}
	return string(sb)
}

// observe records (now, done) and returns the evals/sec rate over the
// sample window.
func (p *Progress) observe(now time.Time, done int64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples = append(p.samples, rateSample{now, done})
	if len(p.samples) > rateWindow {
		p.samples = p.samples[len(p.samples)-rateWindow:]
	}
	first := p.samples[0]
	dt := now.Sub(first.t).Seconds()
	if dt <= 0 || done <= first.n {
		return 0
	}
	return float64(done-first.n) / dt
}
