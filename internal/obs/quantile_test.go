package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 samples spread across two decades: 1..100.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.snapshot()

	if got := s.Quantile(0); got != s.Min {
		t.Errorf("q0 = %g, want min %g", got, s.Min)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("q1 = %g, want max %g", got, s.Max)
	}
	// Power-of-two buckets bound any quantile to within a factor of 2
	// of the true value.
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}} {
		got := s.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%g = %g, want within [%g, %g]", tc.q, got, tc.want/2, tc.want*2)
		}
	}
	q := s.Quantiles()
	if q.P50 > q.P95 || q.P95 > q.P99 {
		t.Errorf("quantiles not monotone: %+v", q)
	}
	if q.P99 > s.Max || q.P50 < s.Min {
		t.Errorf("quantiles outside [min,max]: %+v vs [%g,%g]", q, s.Min, s.Max)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram q50 = %g, want 0", got)
	}

	one := &Histogram{}
	one.Observe(42)
	if got := one.snapshot().Quantile(0.5); got < 21 || got > 84 {
		t.Errorf("single-sample q50 = %g, want ~42", got)
	}

	// Non-positive samples land in the catch-all bucket and interpolate
	// within [min, 0] without producing infinities.
	neg := &Histogram{}
	neg.Observe(-5)
	neg.Observe(-1)
	neg.Observe(2)
	for _, q := range []float64{0.25, 0.5, 0.95} {
		got := neg.snapshot().Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) || got < -5 || got > 2 {
			t.Errorf("q%g with non-positive samples = %g", q, got)
		}
	}

	// Legacy snapshot with no bucket detail: fall back to the mean.
	legacy := HistogramSnapshot{Count: 3, Sum: 30, Min: 5, Max: 15, Mean: 10}
	if got := legacy.Quantile(0.5); got != 10 {
		t.Errorf("bucket-less q50 = %g, want mean 10", got)
	}
}

func TestQuantilesSurviveMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	merged := &Histogram{}
	merged.Merge(a.snapshot())
	merged.Merge(b.snapshot())

	whole := &Histogram{}
	for i := 1; i <= 100; i++ {
		whole.Observe(float64(i))
	}
	mq, wq := merged.snapshot().Quantiles(), whole.snapshot().Quantiles()
	if mq != wq {
		t.Errorf("merged quantiles %+v differ from whole-stream %+v", mq, wq)
	}
}

func TestSnapshotQuantileSummaryAndRender(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 16; i++ {
		r.Histogram("lat").Observe(float64(i))
	}
	s := r.Snapshot()
	qs := s.QuantileSummary()
	if len(qs) != 1 {
		t.Fatalf("QuantileSummary has %d entries, want 1", len(qs))
	}
	if q := qs["lat"]; q.P50 <= 0 || q.P99 > 16 {
		t.Errorf("lat quantiles %+v", q)
	}
	out := s.Render("  ")
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p95=") || !strings.Contains(out, "p99=") {
		t.Errorf("Render misses quantiles:\n%s", out)
	}
	if (Snapshot{}).QuantileSummary() != nil {
		t.Error("empty snapshot should summarize to nil")
	}
}
