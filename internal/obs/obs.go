// Package obs is the tuner's observability layer: a hierarchical span
// tracer with deterministic IDs, a counters/gauges/histograms registry,
// a live progress reporter, and a debug HTTP server. Every entry point
// is nil-safe — a nil *Tracer, *Span, or *Registry is the no-op
// implementation, so instrumented code carries no conditionals and the
// disabled path performs no allocations (enforced by
// TestDisabledPathAllocFree).
//
// Observability never participates in run identity: tracer and registry
// options are not fingerprinted, and instrumentation must not perturb
// the byte-deterministic evaluation journal (enforced by
// core.TestTracingDoesNotPerturbJournal).
package obs

// Span names emitted by the tuning pipeline, outermost first.
const (
	SpanTune          = "tune"           // core.Tuner.Run root
	SpanSearchRound   = "search.round"   // one ddmin candidate round
	SpanBatch         = "batch"          // one deterministic evaluation batch
	SpanEval          = "eval"           // one variant evaluation (per worker)
	SpanRetry         = "retry"          // one resilience retry (backoff + re-attempt)
	SpanInterpRun     = "interp.run"     // one interpreter execution
	SpanJournalAppend = "journal.append" // one fsync'd journal record
	SpanFleetLease    = "fleet.lease"    // one lease round trip to a fleet worker
	SpanWorkerEval    = "worker.eval"    // one evaluation on a fleet worker, under the propagated lease span
)

// WorkerPIDBase is the Chrome-trace process lane of worker slot 0: a
// worker slot's spans render under pid WorkerPIDBase+slot, keeping them
// visually distinct from the coordinator's pid 1.
const WorkerPIDBase = 100

// Metric names. Counters unless noted; the *Prefix constants are
// families keyed by a dynamic suffix (status, fault kind, event type).
const (
	MetricEvals          = "evals"           // evaluations recorded in the search log
	MetricEvalsPrefix    = "evals_"          // evals_<status>: pass/fail/error/infra
	MetricCacheHits      = "cache_hits"      // batch slots served from the log cache
	MetricWarmHits       = "warm_hits"       // batch slots served from warm (replayed) records
	MetricJournalAppends = "journal_appends" // fresh records appended to the journal
	MetricRetries        = "retries"         // resilience retries, all kinds
	MetricRetriesPrefix  = "retries_"        // retries_<kind>: scheduler-kill/oom/hang/…
	MetricQuarantined    = "quarantined"     // variants quarantined this run
	MetricSalvaged       = "salvaged"        // completed evaluations salvaged from aborted batches
	MetricEventsPrefix   = "events_"         // events_<type>: every resilience event by type
	MetricInterpRuns     = "interp_runs"     // interpreter executions
	MetricInterpSteps    = "interp_steps"    // interpreter statements executed, summed

	// Numeric-diagnostics counters, populated only when shadow
	// execution is on (core Options.Numerics / interp Config.Numerics).
	MetricNumericOps             = "numeric_ops"                // shadow-checked FP operations
	MetricNumericCancellations   = "numeric_cancellations"      // cancellations >= the bit threshold
	MetricNumericCatastrophic    = "numeric_catastrophic"       // cancellations of already-inexact operands
	MetricNumericBranchDiverg    = "numeric_branch_divergences" // comparisons deciding differently in shadow
	MetricNumericDiscretizations = "numeric_discretizations"    // int/nint/floor results flipped vs shadow
	MetricNumericNonFinite       = "numeric_nonfinite"          // non-finite values born in the primary lane

	// Fleet counters, populated only when evaluations are sharded
	// across worker subprocesses (core Options.Fleet / prose tune
	// -workers).
	MetricFleetLeases             = "fleet_leases"          // leases granted to workers
	MetricFleetLeaseExpired       = "fleet_lease_expired"   // leases past their deadline, reassigned
	MetricFleetLateResults        = "fleet_late_results"    // stale completions dropped (exactly-once dedup)
	MetricFleetWorkerExits        = "fleet_worker_exits"    // worker process deaths (exit or heartbeat loss)
	MetricFleetRestarts           = "fleet_worker_restarts" // worker processes respawned
	MetricFleetHeartbeats         = "fleet_heartbeats"      // worker heartbeats received
	MetricFleetLocalEvals         = "fleet_local_evals"     // evaluations run in-process after a degrade
	MetricFleetWorkerLeasesPrefix = "fleet_worker_leases_"  // fleet_worker_leases_<id>: leases completed per worker

	// Network-fleet counters, populated only in network mode (prose
	// tune -listen / prose worker -connect).
	MetricFleetNetSessions         = "fleet_net_sessions"          // worker connections admitted (first contact + reconnects)
	MetricFleetNetReconnects       = "fleet_net_reconnects"        // sessions resumed after a connection loss
	MetricFleetNetPartitionExpired = "fleet_net_partition_expired" // parked leases expired before their worker returned
	MetricFleetNetDupRefused       = "fleet_net_dup_refused"       // duplicate/stale frames refused by the exactly-once dedup
	MetricFleetNetFrameErrors      = "fleet_net_frame_errors"      // malformed/oversized frames that retired a connection

	// Distributed-observability counters, populated only when worker
	// metric/span shipping is on (tracing or metrics enabled on a fleet
	// run). Aggregated worker instruments land under MetricFleetWorkersPrefix
	// ("fleet.workers.<name>"); the dot namespace keeps them visually
	// apart from the coordinator's own fleet_* counters.
	MetricFleetWorkersPrefix = "fleet.workers."         // merged worker registry namespace
	MetricFleetObsSpans      = "fleet_obs_spans"        // worker spans spliced into the coordinator trace
	MetricFleetObsSnapshots  = "fleet_obs_snapshots"    // worker metric snapshots merged
	MetricFleetObsStale      = "fleet_obs_stale_frames" // out-of-order/duplicate obs frames dropped

	// Ledger counters, populated when a run streams decision telemetry
	// (core Options.DecisionPath / prose tune -ledger).
	MetricDecisionRounds = "ledger_decision_rounds" // search rounds recorded in the decision log
	MetricDecisionEvents = "ledger_decision_events" // decision-log events written

	GaugeBestSpeedup = "best_speedup" // best passing speedup so far
	GaugeBreakerOpen = "breaker_open" // 1 while the circuit breaker is open

	GaugeFleetWorkersAlive = "fleet_workers_alive" // live worker processes
	GaugeFleetDegraded     = "fleet_degraded"      // 1 after the fleet degraded to in-process evaluation
	// Per-worker gauges keyed by slot ID.
	GaugeFleetWorkerStatePrefix    = "fleet_worker_state_"    // numeric fleet.WorkerState
	GaugeFleetWorkerRestartsPrefix = "fleet_worker_restarts_" // respawns per worker slot

	HistQueueWaitNS       = "queue_wait_ns"      // batch job wait for a worker slot
	HistEvalRunNS         = "eval_run_ns"        // evaluation wall time once running
	HistNumericDivergence = "numeric_divergence" // per-eval worst primary-vs-shadow relative divergence
)
