package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one trace. IDs are deterministic: a
// span's ID depends only on the run fingerprint, its parent's ID, and
// its child sequence number — never on timing, goroutine identity, or
// memory addresses — so two runs of the same tune emit the same IDs.
type SpanID uint64

func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Attr is one key/value span attribute (variant key, outcome, cost…).
// The JSON tags matter: span records travel inside fleet protocol
// frames when workers ship their spans to the coordinator.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanRecord is one finished span as stored in the trace buffer and as
// reloaded from a trace file. Start is an offset from the tracer epoch.
// PID is the Chrome-trace process lane: 0 means "this process" (exported
// as pid 1); the fleet coordinator rebases worker-shipped records into
// per-worker lanes (see fleet docs).
type SpanRecord struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"` // 0 for root spans
	Name   string        `json:"name"`
	Worker int           `json:"worker,omitempty"` // worker-slot attribution; becomes the trace tid
	PID    int           `json:"pid,omitempty"`    // process lane; 0 = local process
	Start  time.Duration `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// End returns the span's finish offset from the tracer epoch.
func (r SpanRecord) End() time.Duration { return r.Start + r.Dur }

// Attr returns the value of the named attribute, or "".
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Finished spans land in one of traceShards mutex-guarded buffers
// selected by span ID, so concurrent workers rarely contend on End and
// never during span construction or attribute writes (a live Span is
// owned by the goroutine that created it).
const traceShards = 16

type traceShard struct {
	mu   sync.Mutex
	recs []SpanRecord
}

// Tracer collects finished spans for one tuning run. The zero value is
// not usable; a nil *Tracer is the no-op tracer.
type Tracer struct {
	fingerprint string
	fpHash      uint64
	epoch       time.Time
	rootSeq     atomic.Uint64
	shards      [traceShards]traceShard

	// Child-sequence allocation for spans whose parent lives in
	// another process (ChildOf). Keyed by the remote parent ID so the
	// derived IDs stay deterministic per parent.
	remoteMu  sync.Mutex
	remoteSeq map[SpanID]uint64
}

// NewTracer returns a tracer whose span IDs are seeded from the given
// run fingerprint (any stable string describing the run).
func NewTracer(fingerprint string) *Tracer {
	return &Tracer{
		fingerprint: fingerprint,
		fpHash:      mix64(fnv64(fingerprint)),
		epoch:       time.Now(),
	}
}

// Fingerprint returns the fingerprint the tracer was built with.
func (t *Tracer) Fingerprint() string {
	if t == nil {
		return ""
	}
	return t.fingerprint
}

// Root starts a new top-level span. Nil-safe: returns a nil span on a
// nil tracer, and every Span method is nil-safe in turn.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:     t,
		id:    deriveID(t.fpHash, 0, t.rootSeq.Add(1)),
		name:  name,
		start: time.Now(),
	}
}

// ChildOf starts a span under a parent identified only by its ID — the
// parent span lives in another process and arrived over the fleet
// protocol. Child sequence numbers are scoped to the remote parent ID,
// so IDs stay deterministic as long as the caller's ChildOf order per
// parent is (which it is: a worker runs its leases sequentially).
// Nil-safe: returns a nil span on a nil tracer. A zero parent starts a
// root span.
func (t *Tracer) ChildOf(parent SpanID, name string) *Span {
	if t == nil {
		return nil
	}
	if parent == 0 {
		return t.Root(name)
	}
	t.remoteMu.Lock()
	if t.remoteSeq == nil {
		t.remoteSeq = make(map[SpanID]uint64)
	}
	t.remoteSeq[parent]++
	seq := t.remoteSeq[parent]
	t.remoteMu.Unlock()
	return &Span{
		t:      t,
		id:     deriveID(t.fpHash, parent, seq),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// Now returns the current offset from the tracer epoch — the same clock
// SpanRecord.Start is expressed in. The fleet protocol uses it to
// rebase worker span times onto the coordinator's epoch. Nil-safe
// (returns 0).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Drain removes and returns all finished spans buffered so far, sorted
// by start offset then ID. Spans still live (not yet Ended) are
// unaffected; the tracer remains usable. This is how a fleet worker
// ships completed spans to the coordinator without rebuffering them.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	var recs []SpanRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		recs = append(recs, sh.recs...)
		sh.recs = nil
		sh.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// Ingest appends externally produced span records — already rebased to
// this tracer's epoch — into the span buffers. The fleet coordinator
// uses it to splice worker-shipped spans into the run trace. Nil-safe
// no-op.
func (t *Tracer) Ingest(recs []SpanRecord) {
	if t == nil {
		return
	}
	for _, r := range recs {
		sh := &t.shards[uint64(r.ID)%traceShards]
		sh.mu.Lock()
		sh.recs = append(sh.recs, r)
		sh.mu.Unlock()
	}
}

// Len reports the number of finished spans buffered so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.recs)
		sh.mu.Unlock()
	}
	return n
}

// Records merges the per-shard buffers and returns all finished spans
// sorted by start offset, then ID. The tracer remains usable.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	var recs []SpanRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		recs = append(recs, sh.recs...)
		sh.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// Span is a live span. It is owned by the goroutine that created it
// until End; only child-sequence allocation (Child) is safe to call
// concurrently from child goroutines.
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	worker int32
	start  time.Time
	kids   atomic.Uint64
	attrs  []Attr
}

// ID returns the span's deterministic ID (0 on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Child starts a sub-span. Safe to call from multiple goroutines
// holding the same parent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		t:      s.t,
		id:     deriveID(s.t.fpHash, s.id, s.kids.Add(1)),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// Attr records a string attribute on the span.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// AttrInt records an integer attribute on the span.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatInt(v, 10)})
}

// AttrFloat records a float attribute on the span.
func (s *Span) AttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, strconv.FormatFloat(v, 'g', -1, 64)})
}

// SetWorker tags the span with a worker-slot number (trace tid).
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.worker = int32(w)
}

// End finishes the span and moves it to the tracer's buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Worker: int(s.worker),
		Start:  s.start.Sub(s.t.epoch),
		Dur:    time.Since(s.start),
		Attrs:  s.attrs,
	}
	if rec.Dur < 0 {
		rec.Dur = 0
	}
	sh := &s.t.shards[uint64(s.id)%traceShards]
	sh.mu.Lock()
	sh.recs = append(sh.recs, rec)
	sh.mu.Unlock()
}

// deriveID folds (fingerprint hash, parent ID, child sequence) through
// the 64-bit finalizer. 0 is reserved for "no parent".
func deriveID(fpHash uint64, parent SpanID, seq uint64) SpanID {
	id := mix64(fpHash ^ mix64(uint64(parent)+0x9e3779b97f4a7c15*seq))
	if id == 0 {
		id = 1
	}
	return SpanID(id)
}

// mix64 is the MurmurHash3 fmix64 finalizer (same construction as
// internal/search's fault injector): cheap, well-mixed, deterministic.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fnv64 is FNV-1a over a string, inlined to avoid hash/fnv allocations.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Chrome trace_event interchange. Each finished span becomes one
// "complete" event (ph:"X"); ts/dur are microseconds for the viewer,
// while args carry the exact nanosecond values plus span identity and
// attributes so LoadTrace round-trips losslessly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// Reserved args keys used for lossless round-tripping; span attributes
// with these names would be shadowed, so instrumentation avoids them.
const (
	argID      = "span_id"
	argParent  = "span_parent"
	argStartNS = "start_ns"
	argDurNS   = "dur_ns"
)

// Export writes the trace as Chrome trace_event JSON (load it in
// chrome://tracing, Perfetto, or `prose trace`).
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: export of nil tracer")
	}
	recs := t.Records()
	ct := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(recs)),
		OtherData:   map[string]string{"fingerprint": t.fingerprint},
	}
	for _, r := range recs {
		args := make(map[string]string, len(r.Attrs)+4)
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		args[argID] = r.ID.String()
		if r.Parent != 0 {
			args[argParent] = r.Parent.String()
		}
		args[argStartNS] = strconv.FormatInt(int64(r.Start), 10)
		args[argDurNS] = strconv.FormatInt(int64(r.Dur), 10)
		// PID 0 ("this process") renders as the viewer's pid 1; fleet
		// worker lanes carry their own nonzero PIDs.
		pid := r.PID
		if pid == 0 {
			pid = 1
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: r.Name,
			Cat:  "prose",
			Ph:   "X",
			TS:   float64(r.Start) / 1e3,
			Dur:  float64(r.Dur) / 1e3,
			PID:  pid,
			TID:  r.Worker,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// WriteFile exports the trace to path (0644, truncating).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a Chrome trace_event file written by Export and
// reconstructs the span records plus the trace-level metadata.
func LoadTrace(path string) ([]SpanRecord, map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, nil, fmt.Errorf("obs: %s: not a trace_event file: %w", path, err)
	}
	recs := make([]SpanRecord, 0, len(ct.TraceEvents))
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		r := SpanRecord{Name: ev.Name, Worker: ev.TID, PID: ev.PID}
		// Export renders the local process (PID 0) as the viewer's
		// pid 1; undo that here so reloaded records round-trip.
		if r.PID == 1 {
			r.PID = 0
		}
		// Exact nanosecond fields win; fall back to the viewer's
		// microsecond ts/dur for traces from other producers.
		r.Start = nsArg(ev.Args, argStartNS, time.Duration(ev.TS*1e3))
		r.Dur = nsArg(ev.Args, argDurNS, time.Duration(ev.Dur*1e3))
		if id, err := strconv.ParseUint(ev.Args[argID], 16, 64); err == nil {
			r.ID = SpanID(id)
		}
		if p, err := strconv.ParseUint(ev.Args[argParent], 16, 64); err == nil {
			r.Parent = SpanID(p)
		}
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			switch k {
			case argID, argParent, argStartNS, argDurNS:
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.Attrs = append(r.Attrs, Attr{k, ev.Args[k]})
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, ct.OtherData, nil
}

func nsArg(args map[string]string, key string, fallback time.Duration) time.Duration {
	if v, err := strconv.ParseInt(args[key], 10, 64); err == nil {
		return time.Duration(v)
	}
	return fallback
}
