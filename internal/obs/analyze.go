package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/gptl"
)

// TraceNode is one span in a reconstructed span tree.
type TraceNode struct {
	Rec      SpanRecord
	Children []*TraceNode
}

// BuildTree links span records into trees. Spans whose parent is absent
// from the record set become roots (a trace normally has exactly one,
// the "tune" span). Roots and children are ordered by start, then ID.
func BuildTree(recs []SpanRecord) []*TraceNode {
	ordered := append([]SpanRecord(nil), recs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].ID < ordered[j].ID
	})
	nodes := make(map[SpanID]*TraceNode, len(ordered))
	all := make([]*TraceNode, len(ordered))
	for i, r := range ordered {
		n := &TraceNode{Rec: r}
		all[i] = n
		if _, dup := nodes[r.ID]; !dup {
			nodes[r.ID] = n
		}
	}
	var roots []*TraceNode
	for _, n := range all {
		if p, ok := nodes[n.Rec.Parent]; ok && n.Rec.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// PhaseRegions folds a span forest into per-phase (per span name)
// gptl regions, in microseconds. Self time is the span's duration minus
// the summed durations of its direct children, so summing Self over all
// regions telescopes to exactly the total root duration — the property
// `prose trace` relies on. Under parallel children whose durations
// overlap, a span's self time can go negative; the sum is still exact.
// Inclusive counts only outermost instances of a name, matching gptl's
// recursion handling; MaxDepth is the deepest tree depth a name appears
// at. Regions come back sorted by descending self time.
func PhaseRegions(roots []*TraceNode) []*gptl.Region {
	regions := make(map[string]*gptl.Region)
	var walk func(n *TraceNode, depth int, active map[string]int)
	walk = func(n *TraceNode, depth int, active map[string]int) {
		name := n.Rec.Name
		r := regions[name]
		if r == nil {
			r = &gptl.Region{Name: name}
			regions[name] = r
		}
		var child time.Duration
		for _, c := range n.Children {
			child += c.Rec.Dur
		}
		r.Calls++
		r.Self += float64(n.Rec.Dur-child) / float64(time.Microsecond)
		if active[name] == 0 {
			r.Inclusive += float64(n.Rec.Dur) / float64(time.Microsecond)
		}
		if depth > r.MaxDepth {
			r.MaxDepth = depth
		}
		active[name]++
		for _, c := range n.Children {
			walk(c, depth+1, active)
		}
		active[name]--
	}
	for _, root := range roots {
		walk(root, 1, make(map[string]int))
	}
	out := make([]*gptl.Region, 0, len(regions))
	for _, r := range regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CriticalPath walks from root to leaf, at each level descending into
// the child that finishes last — the chain that bounded the phase's
// wall clock. Returns the path including root.
func CriticalPath(root *TraceNode) []*TraceNode {
	var path []*TraceNode
	for n := root; n != nil; {
		path = append(path, n)
		var last *TraceNode
		for _, c := range n.Children {
			if last == nil || c.Rec.End() > last.Rec.End() {
				last = c
			}
		}
		n = last
	}
	return path
}

// CountByName tallies spans per name — the accounting `prose trace`
// and the span/journal reconciliation tests use.
func CountByName(recs []SpanRecord) map[string]int {
	counts := make(map[string]int)
	for _, r := range recs {
		counts[r.Name]++
	}
	return counts
}

// RenderTree renders the span tree under n, indenting children, down to
// maxDepth levels (0 = unlimited). Wide fan-outs are elided after
// treeFanoutLimit children per node.
func RenderTree(n *TraceNode, maxDepth int) string {
	var sb strings.Builder
	renderTree(&sb, n, 0, maxDepth)
	return sb.String()
}

const treeFanoutLimit = 24

func renderTree(sb *strings.Builder, n *TraceNode, depth, maxDepth int) {
	fmt.Fprintf(sb, "%s%s %s", strings.Repeat("  ", depth), n.Rec.Name,
		n.Rec.Dur.Round(time.Microsecond))
	var attrs []string
	for _, a := range n.Rec.Attrs {
		attrs = append(attrs, a.Key+"="+a.Value)
	}
	if len(attrs) > 0 {
		fmt.Fprintf(sb, "  [%s]", strings.Join(attrs, " "))
	}
	sb.WriteByte('\n')
	if maxDepth > 0 && depth+1 >= maxDepth && len(n.Children) > 0 {
		fmt.Fprintf(sb, "%s… %d child span(s)\n",
			strings.Repeat("  ", depth+1), len(n.Children))
		return
	}
	for i, c := range n.Children {
		if i == treeFanoutLimit {
			fmt.Fprintf(sb, "%s… %d more\n",
				strings.Repeat("  ", depth+1), len(n.Children)-i)
			break
		}
		renderTree(sb, c, depth+1, maxDepth)
	}
}

// Summary renders a top-N per-phase table for the tracer's own spans —
// the plain-text counterpart to the Chrome export.
func (t *Tracer) Summary(top int) string {
	if t == nil {
		return ""
	}
	regions := PhaseRegions(BuildTree(t.Records()))
	if top > 0 && len(regions) > top {
		regions = regions[:top]
	}
	return gptl.FormatRegions(regions)
}
