package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live run introspection over HTTP on a private mux
// (nothing leaks into http.DefaultServeMux):
//
//	/debug/metrics  registry snapshot as JSON
//	/debug/vars     expvar (includes prose_metrics)
//	/debug/pprof/*  net/http/pprof profiles
type DebugServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// DebugHandler is an extra endpoint mounted on the debug server (e.g.
// the fleet coordinator's /debug/fleet health snapshot).
type DebugHandler struct {
	Pattern string
	Handler http.Handler
}

// ServeDebug starts a debug server on addr (e.g. "127.0.0.1:6060";
// ":0" picks a free port — see Addr). The registry may be nil, in
// which case /debug/metrics serves an empty snapshot. Extra handlers
// are mounted on the same private mux.
func ServeDebug(addr string, reg *Registry, extras ...DebugHandler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg.PublishExpvar()
	mux := http.NewServeMux()
	for _, ex := range extras {
		mux.Handle(ex.Pattern, ex.Handler)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &DebugServer{
		srv:  &http.Server{Handler: mux},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Addr returns the server's bound address.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down gracefully (bounded wait for in-flight
// requests) and waits for the serve goroutine to exit. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	<-d.done
	return err
}
