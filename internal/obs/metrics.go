package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges, and histograms for one tuning
// run. Instruments are created on first use and live for the registry's
// lifetime; all operations are safe for concurrent use. A nil *Registry
// is the no-op registry: lookups return nil instruments whose methods
// are nil-safe no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	r.mu.Unlock()
	return h
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v if v is larger than the current value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram summarizes a stream of observations: count/sum/min/max plus
// exponential power-of-two buckets (bucket e counts samples v with
// 2^e ≤ v < 2^(e+1)), which merge exactly across processes — the fleet
// coordinator folds worker histograms into its own by elementwise
// bucket addition.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64
}

// bucketNonPos is the bucket exponent collecting samples ≤ 0, which
// have no base-2 exponent of their own.
const bucketNonPos = -1 << 10

// bucketExp maps a sample to its power-of-two bucket exponent.
func bucketExp(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return bucketNonPos
	}
	e := math.Ilogb(v)
	if e < bucketNonPos+1 {
		return bucketNonPos + 1
	}
	if e > 1<<10 {
		return 1 << 10 // +Inf and friends
	}
	return e
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil {
		h.buckets = make(map[int]int64)
	}
	h.buckets[bucketExp(v)]++
	h.mu.Unlock()
}

// Merge folds a frozen summary (typically shipped from a fleet worker)
// into the histogram, as if h had observed the other histogram's whole
// stream: counts, sums, and buckets add; min/max widen. Merging an
// empty snapshot is a no-op. Nil-safe.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if h.count == 0 || s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
	if len(s.Buckets) > 0 && h.buckets == nil {
		h.buckets = make(map[int]int64, len(s.Buckets))
	}
	for e, n := range s.Buckets {
		h.buckets[e] += n
	}
	h.mu.Unlock()
}

// HistogramSnapshot is one histogram's frozen summary. Buckets is keyed
// by power-of-two exponent (JSON object keys are the decimal exponent).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.buckets) > 0 {
		s.Buckets = make(map[int]int64, len(h.buckets))
		for e, n := range h.buckets {
			s.Buckets[e] = n
		}
	}
	return s
}

// Quantiles is a histogram's approximate p50/p95/p99 summary,
// reconstructed from its power-of-two buckets.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the
// observed stream. The bucket holding rank ceil(q·count) is found by
// cumulative count and the value interpolated linearly within its
// [2^e, 2^(e+1)) bounds, clamped to the observed min/max — so the
// estimate is exact at the extremes and within a factor of two
// in between, which is plenty for wait/run-time distributions. The
// same reconstruction works on merged (fleet-aggregated) snapshots,
// since buckets add exactly. With no bucket detail (a legacy snapshot)
// it falls back to the mean.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	if len(s.Buckets) == 0 {
		return s.Mean
	}
	exps := make([]int, 0, len(s.Buckets))
	for e := range s.Buckets {
		exps = append(exps, e)
	}
	sort.Ints(exps)
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, e := range exps {
		n := float64(s.Buckets[e])
		if cum+n < rank {
			cum += n
			continue
		}
		lo, hi := math.Ldexp(1, e), math.Ldexp(1, e+1)
		if e == bucketNonPos {
			lo, hi = math.Inf(-1), 0
		}
		lo = math.Max(lo, s.Min)
		hi = math.Min(hi, s.Max)
		if hi <= lo {
			return lo
		}
		return lo + (rank-cum)/n*(hi-lo)
	}
	return s.Max
}

// Quantiles returns the snapshot's approximate p50/p95/p99.
func (s HistogramSnapshot) Quantiles() Quantiles {
	return Quantiles{P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99)}
}

// mergeHistSnapshots folds b into a and returns the combined summary.
func mergeHistSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if b.Count == 0 {
		return a
	}
	if a.Count == 0 {
		return b
	}
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	out.Mean = out.Sum / float64(out.Count)
	if len(a.Buckets)+len(b.Buckets) > 0 {
		out.Buckets = make(map[int]int64, len(a.Buckets)+len(b.Buckets))
		for e, n := range a.Buckets {
			out.Buckets[e] += n
		}
		for e, n := range b.Buckets {
			out.Buckets[e] += n
		}
	}
	return out
}

// MergeSnapshots combines registry snapshots from several sources into
// one: counters sum, histogram summaries fold exactly (counts, sums,
// and power-of-two buckets add; min/max widen), gauges are last-write-
// wins in argument order. Merging zero or all-empty snapshots returns
// the zero Snapshot. This is the aggregation the fleet coordinator
// applies to worker metric snapshots.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		for k, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[k] = mergeHistSnapshots(out.Histograms[k], v)
		}
	}
	return out
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Each instrument is read atomically;
// the snapshot as a whole is a consistent map of instrument names taken
// under the registry lock. Safe on a nil registry (returns zero value).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for k, v := range histograms {
			s.Histograms[k] = v.snapshot()
		}
	}
	return s
}

// Render formats the snapshot as sorted "name value" lines, each
// prefixed with indent — the shape embedded in the run report.
func (s Snapshot) Render(indent string) string {
	var sb strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "%s%-24s %d\n", indent, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "%s%-24s %.4g\n", indent, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		q := h.Quantiles()
		fmt.Fprintf(&sb, "%s%-24s n=%d mean=%.4g min=%.4g max=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
			indent, name, h.Count, h.Mean, h.Min, h.Max, q.P50, q.P95, q.P99)
	}
	return sb.String()
}

// QuantileSummary returns each histogram's approximate p50/p95/p99
// keyed by name — the shape archived in a run manifest. Nil when the
// snapshot has no histograms.
func (s Snapshot) QuantileSummary() map[string]Quantiles {
	if len(s.Histograms) == 0 {
		return nil
	}
	out := make(map[string]Quantiles, len(s.Histograms))
	for k, h := range s.Histograms {
		out[k] = h.Quantiles()
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// expvar bridge: the process-global expvar namespace forbids duplicate
// names, so "prose_metrics" is published once and repointed at the most
// recently published registry (tests and successive runs swap freely).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "prose_metrics" (served on /debug/vars). Later calls repoint the
// variable at the new registry. Nil-safe no-op.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("prose_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
