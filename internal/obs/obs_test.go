package obs

import (
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeterministicSpanIDs: span IDs depend only on (fingerprint,
// parent, sequence) — two tracers over the same fingerprint assign the
// same IDs in the same structural order, and a different fingerprint
// assigns different ones.
func TestDeterministicSpanIDs(t *testing.T) {
	build := func(fp string) []SpanID {
		tr := NewTracer(fp)
		root := tr.Root("tune")
		var ids []SpanID
		ids = append(ids, root.ID())
		for i := 0; i < 3; i++ {
			c := root.Child("batch")
			ids = append(ids, c.ID())
			g := c.Child("eval")
			ids = append(ids, g.ID())
			g.End()
			c.End()
		}
		root.End()
		return ids
	}
	a, b := build("fp-1"), build("fp-1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id[%d] differs across identical runs: %s vs %s", i, a[i], b[i])
		}
	}
	c := build("fp-2")
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different fingerprints produced identical ID sequences")
	}
	seen := make(map[SpanID]bool)
	for _, id := range a {
		if id == 0 || seen[id] {
			t.Fatalf("id %s zero or duplicated", id)
		}
		seen[id] = true
	}
}

// TestDisabledPathAllocFree: the nil tracer/registry no-op path — what
// every instrumented call site pays when observability is off — must
// not allocate.
func TestDisabledPathAllocFree(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root("tune")
		c := sp.Child("eval")
		c.Attr("key", "k")
		c.AttrInt("attempt", 1)
		c.AttrFloat("speedup", 1.5)
		c.SetWorker(3)
		c.End()
		sp.End()
		reg.Counter(MetricEvals).Add(1)
		reg.Gauge(GaugeBestSpeedup).Max(1.5)
		reg.Histogram(HistEvalRunNS).Observe(12)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocated %.1f times per run, want 0", allocs)
	}
}

// TestConcurrentSpanEmission: ≥8 goroutines emitting spans through the
// sharded buffers concurrently; run under -race in CI. Every span must
// survive the merge with a unique ID.
func TestConcurrentSpanEmission(t *testing.T) {
	tr := NewTracer("concurrent")
	root := tr.Root("tune")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.Child("eval")
				sp.SetWorker(w)
				sp.AttrInt("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	recs := tr.Records()
	if len(recs) != workers*perWorker+1 {
		t.Fatalf("got %d records, want %d", len(recs), workers*perWorker+1)
	}
	seen := make(map[SpanID]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	if n := CountByName(recs)["eval"]; n != workers*perWorker {
		t.Errorf("eval span count %d, want %d", n, workers*perWorker)
	}
}

// TestChromeExportRoundTrip: WriteFile → LoadTrace preserves span
// identity, hierarchy, exact nanosecond timing, and attributes.
func TestChromeExportRoundTrip(t *testing.T) {
	tr := NewTracer("roundtrip")
	root := tr.Root("tune")
	c := root.Child("batch")
	e := c.Child("eval")
	e.Attr("key", "a;b")
	e.AttrFloat("speedup", 1.25)
	e.SetWorker(2)
	time.Sleep(time.Millisecond)
	e.End()
	c.End()
	root.End()
	// A worker-lane record spliced in from another process: its pid lane
	// (WorkerPIDBase+slot) must survive export and reload, while local
	// spans keep PID 0 (exported as lane 1, normalized back on load).
	tr.Ingest([]SpanRecord{{ID: 0xfeed, Parent: root.ID(), Name: "worker.eval",
		Worker: 3, PID: WorkerPIDBase + 3, Start: 2 * time.Millisecond, Dur: time.Millisecond}})

	path := filepath.Join(t.TempDir(), "out.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	recs, meta, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta["fingerprint"] != "roundtrip" {
		t.Errorf("fingerprint %q not preserved", meta["fingerprint"])
	}
	orig := tr.Records()
	if len(recs) != len(orig) {
		t.Fatalf("got %d records, want %d", len(recs), len(orig))
	}
	for i := range orig {
		o, l := orig[i], recs[i]
		if o.ID != l.ID || o.Parent != l.Parent || o.Name != l.Name ||
			o.Worker != l.Worker || o.PID != l.PID || o.Start != l.Start || o.Dur != l.Dur {
			t.Errorf("record %d: %+v loaded as %+v", i, o, l)
		}
	}
	for _, r := range recs {
		switch r.Name {
		case "worker.eval":
			if r.PID != WorkerPIDBase+3 {
				t.Errorf("worker span reloaded into pid %d, want %d", r.PID, WorkerPIDBase+3)
			}
		default:
			if r.PID != 0 {
				t.Errorf("local span %q reloaded into pid %d, want 0", r.Name, r.PID)
			}
		}
	}
	var loaded SpanRecord
	for _, r := range recs {
		if r.Name == "eval" {
			loaded = r
		}
	}
	if loaded.Attr("key") != "a;b" || loaded.Attr("speedup") != "1.25" {
		t.Errorf("attributes not preserved: %+v", loaded.Attrs)
	}
}

// mkNode builds a synthetic span record for tree/phase tests.
func mkNode(id, parent SpanID, name string, start, dur time.Duration) SpanRecord {
	return SpanRecord{ID: id, Parent: parent, Name: name, Start: start, Dur: dur}
}

// TestPhaseRegionsTelescope: per-phase self times sum to exactly the
// root duration, including when parallel children overlap (negative
// self) and when a name recurses (inclusive counts outermost only).
func TestPhaseRegionsTelescope(t *testing.T) {
	recs := []SpanRecord{
		mkNode(1, 0, "tune", 0, 100*time.Microsecond),
		// Two overlapping children: durations sum past the parent.
		mkNode(2, 1, "batch", 10*time.Microsecond, 60*time.Microsecond),
		mkNode(3, 1, "batch", 20*time.Microsecond, 70*time.Microsecond),
		// A recursing name under one batch.
		mkNode(4, 2, "eval", 15*time.Microsecond, 40*time.Microsecond),
		mkNode(5, 4, "eval", 20*time.Microsecond, 10*time.Microsecond),
	}
	roots := BuildTree(recs)
	if len(roots) != 1 || roots[0].Rec.Name != "tune" {
		t.Fatalf("roots = %v", roots)
	}
	regions := PhaseRegions(roots)
	var selfSum float64
	byName := make(map[string]float64)
	for _, r := range regions {
		selfSum += r.Self
		byName[r.Name] = r.Inclusive
	}
	if math.Abs(selfSum-100) > 1e-9 {
		t.Errorf("self times sum to %.3f µs, want 100 (root duration)", selfSum)
	}
	// eval recursion: inclusive counts the outermost instance only.
	if byName["eval"] != 40 {
		t.Errorf("eval inclusive = %.1f µs, want 40 (outermost only)", byName["eval"])
	}
	if byName["tune"] != 100 {
		t.Errorf("tune inclusive = %.1f µs, want 100", byName["tune"])
	}
}

// TestCriticalPath: the path follows the latest-finishing child.
func TestCriticalPath(t *testing.T) {
	recs := []SpanRecord{
		mkNode(1, 0, "tune", 0, 100*time.Microsecond),
		mkNode(2, 1, "batch", 0, 30*time.Microsecond),
		mkNode(3, 1, "batch", 40*time.Microsecond, 50*time.Microsecond), // ends at 90 — on the path
		mkNode(4, 3, "eval", 45*time.Microsecond, 20*time.Microsecond),
		mkNode(5, 3, "eval", 50*time.Microsecond, 35*time.Microsecond), // ends at 85 — on the path
	}
	roots := BuildTree(recs)
	path := CriticalPath(roots[0])
	var ids []SpanID
	for _, n := range path {
		ids = append(ids, n.Rec.ID)
	}
	want := []SpanID{1, 3, 5}
	if len(ids) != len(want) {
		t.Fatalf("critical path %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("critical path %v, want %v", ids, want)
		}
	}
}

// TestRenderTreeDepthAndFanout: rendering honors the depth limit and
// elides wide fan-outs instead of flooding the terminal.
func TestRenderTreeDepthAndFanout(t *testing.T) {
	recs := []SpanRecord{mkNode(1, 0, "tune", 0, time.Millisecond)}
	for i := 2; i < 2+treeFanoutLimit+5; i++ {
		recs = append(recs, mkNode(SpanID(i), 1, "eval", time.Duration(i), time.Microsecond))
	}
	roots := BuildTree(recs)
	out := RenderTree(roots[0], 0)
	if !strings.Contains(out, "… 5 more") {
		t.Errorf("fan-out not elided:\n%s", out)
	}
	if got := RenderTree(roots[0], 1); strings.Contains(got, "eval") {
		t.Errorf("depth 1 render shows children:\n%s", got)
	}
	if got := RenderTree(roots[0], 1); !strings.Contains(got, "child span(s)") {
		t.Errorf("depth-limited render hides the elision note:\n%s", got)
	}
}

// TestRegistryConcurrent: counters/gauges/histograms under concurrent
// writers (run with -race in CI); snapshot totals must be exact.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter(MetricEvals).Add(1)
				reg.Gauge(GaugeBestSpeedup).Max(float64(w*per + i))
				reg.Histogram(HistEvalRunNS).Observe(1)
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters[MetricEvals] != workers*per {
		t.Errorf("counter = %d, want %d", s.Counters[MetricEvals], workers*per)
	}
	if want := float64(workers*per - 1); s.Gauges[GaugeBestSpeedup] != want {
		t.Errorf("gauge max = %g, want %g", s.Gauges[GaugeBestSpeedup], want)
	}
	h := s.Histograms[HistEvalRunNS]
	if h.Count != workers*per || h.Sum != float64(workers*per) || h.Min != 1 || h.Max != 1 || h.Mean != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

// TestSnapshotRender: the report embedding is sorted and covers every
// instrument class.
func TestSnapshotRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_count").Add(2)
	reg.Counter("a_count").Add(1)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h").Observe(10)
	out := reg.Snapshot().Render("  ")
	for _, want := range []string{"a_count", "b_count", "g", "n=1", "mean=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_count") > strings.Index(out, "b_count") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "  ") {
			t.Errorf("line %q missing indent", line)
		}
	}
}

// TestProgressLine: the heartbeat line reflects registry state, and the
// windowed rate yields an ETA once evaluations advance between samples.
func TestProgressLine(t *testing.T) {
	reg := NewRegistry()
	p := NewProgress(nil, time.Hour, reg, 100)
	line := p.Line()
	if !strings.Contains(line, "0/100 evals") {
		t.Errorf("initial line %q", line)
	}
	reg.Counter(MetricEvals).Add(10)
	reg.Gauge(GaugeBestSpeedup).Max(1.333)
	reg.Counter(MetricRetries).Add(2)
	reg.Counter(MetricQuarantined).Add(1)
	reg.Gauge(GaugeBreakerOpen).Set(1)
	time.Sleep(5 * time.Millisecond)
	line = p.Line()
	for _, want := range []string{"10/100 evals", "best 1.333x", "eval/s", "eta",
		"retried 2", "quarantined 1", "breaker OPEN"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

// TestProgressStartStop: Start/Stop is race-safe, drains the goroutine,
// emits a final line, and tolerates double Stop and nil receivers.
func TestProgressStartStop(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	reg := NewRegistry()
	p := NewProgress(w, time.Millisecond, reg, 10)
	p.Start()
	p.Start() // idempotent
	reg.Counter(MetricEvals).Add(3)
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "3/10 evals") {
		t.Errorf("progress output missing final state:\n%s", out)
	}
	var nilP *Progress
	nilP.Start()
	nilP.Stop()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDebugServer: /debug/metrics, /debug/vars, and /debug/pprof all
// answer on the private mux, and Close shuts the listener down.
func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricEvals).Add(7)
	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/debug/metrics":       `"evals": 7`,
		"/debug/vars":          "prose_metrics",
		"/debug/pprof/":        "goroutine",
		"/debug/pprof/cmdline": "",
	} {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s: body missing %q:\n%s", path, want, body[:n])
		}
	}
	if err := ds.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + ds.Addr() + "/debug/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
	var nilDS *DebugServer
	if nilDS.Close() != nil || nilDS.Addr() != "" {
		t.Error("nil DebugServer not a no-op")
	}
}

// TestTracerSummary: the plain-text top-N summary uses the gptl table.
func TestTracerSummary(t *testing.T) {
	tr := NewTracer("sum")
	root := tr.Root("tune")
	for i := 0; i < 3; i++ {
		c := root.Child("eval")
		c.End()
	}
	root.End()
	out := tr.Summary(1)
	if !strings.Contains(out, "region") || !strings.Contains(out, "self/call") {
		t.Errorf("summary missing gptl header:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 { // header + 1 row
		t.Errorf("top-1 summary has %d lines:\n%s", lines, out)
	}
	var nilT *Tracer
	if nilT.Summary(5) != "" || nilT.Len() != 0 || nilT.Records() != nil || nilT.Fingerprint() != "" {
		t.Error("nil tracer not a no-op")
	}
}
