package fleet

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
)

const stubFingerprint = "stub-fingerprint"

// TestMain doubles as the worker executable: the coordinator tests
// re-exec this very test binary with FLEET_STUB_WORKER=1, and the stub
// serves the production Serve loop over its stdin/stdout with a
// deterministic toy evaluator — so the subprocess plumbing under test
// is exactly the plumbing `prose worker` uses.
func TestMain(m *testing.M) {
	if os.Getenv("FLEET_STUB_WORKER") == "1" {
		if err := runStubWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "stub worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runStubWorker() error {
	faults := WorkerFaults{
		CrashKey: os.Getenv("FLEET_STUB_CRASH_KEY"),
		WedgeKey: os.Getenv("FLEET_STUB_WEDGE_KEY"),
		SlowKey:  os.Getenv("FLEET_STUB_SLOW_KEY"),
	}
	if v := os.Getenv("FLEET_STUB_KILL_RATE"); v != "" {
		faults.KillRate, _ = strconv.ParseFloat(v, 64)
	}
	if v := os.Getenv("FLEET_STUB_SEED"); v != "" {
		faults.Seed, _ = strconv.ParseInt(v, 10, 64)
	}
	if v := os.Getenv("FLEET_STUB_SLOW_MS"); v != "" {
		ms, _ := strconv.Atoi(v)
		faults.Slow = time.Duration(ms) * time.Millisecond
	}
	fp := os.Getenv("FLEET_STUB_FP")
	if fp == "" {
		fp = stubFingerprint
	}
	hb := DefaultHeartbeat
	if v := os.Getenv("FLEET_STUB_HB_MS"); v != "" {
		ms, _ := strconv.Atoi(v)
		hb = time.Duration(ms) * time.Millisecond
	}
	return Serve(ServeConfig{
		Transport:   NewPipeTransport(os.Stdin, os.Stdout),
		Eval:        stubEval{panicKey: os.Getenv("FLEET_STUB_PANIC_KEY")},
		Fingerprint: fp,
		Heartbeat:   hb,
		Fault:       faults,
	})
}

// stubEval is a deterministic toy evaluator: identical on coordinator
// and worker, so fleet results can be checked against in-process ones.
type stubEval struct{ panicKey string }

func (e stubEval) Evaluate(a transform.Assignment) *search.Evaluation {
	if e.panicKey != "" && a.Key() == e.panicKey {
		panic(fmt.Errorf("stub: injected evaluation fault"))
	}
	return &search.Evaluation{
		Assignment: a,
		Status:     search.StatusPass,
		Speedup:    1 + float64(a.Lowered()),
		RelError:   1e-9 * float64(len(a)),
		Lowered:    a.Lowered(),
		TotalAtoms: len(a),
		Detail:     "stub",
	}
}

// stubSpawn re-execs the test binary as a stub worker with extra
// environment overrides ("K=V" strings).
func stubSpawn(extra ...string) SpawnFunc {
	return func(id int) (Transport, Process, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), "FLEET_STUB_WORKER=1")
		cmd.Env = append(cmd.Env, extra...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return NewPipeTransport(stdout, stdin), (*procHandle)(cmd), nil
	}
}

// eventSink collects fleet events concurrency-safely.
type eventSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *eventSink) record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

func (s *eventSink) count(typ string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func startFleet(t *testing.T, cfg Config, rt Runtime) *Coordinator {
	t.Helper()
	if rt.Local == nil {
		rt.Local = stubEval{}
	}
	if rt.Fingerprint == "" {
		rt.Fingerprint = stubFingerprint
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(context.Background(), rt); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// supervise wraps the coordinator the way core does, so worker faults
// become retries (lease reassignments) instead of test panics.
func supervise(c *Coordinator) *resilience.Supervised {
	return &resilience.Supervised{
		Inner:         c,
		MaxRetries:    3,
		RetriesByKind: resilience.DefaultRetryBudgets(3),
		Backoff:       resilience.Backoff{Base: time.Millisecond, Seed: 1},
	}
}

func asn(n int) transform.Assignment {
	a := transform.Assignment{}
	for i := 0; i < n; i++ {
		a[fmt.Sprintf("m.p.v%d", i)] = 4 // kind 4 = lowered to 32-bit
	}
	return a
}

func TestFleetEvaluatesOnWorkers(t *testing.T) {
	sink := &eventSink{}
	c := startFleet(t, Config{Workers: 2, Spawn: stubSpawn(), OnEvent: sink.record}, Runtime{})

	var wg sync.WaitGroup
	results := make([]*search.Evaluation, 6)
	for i := 0; i < len(results); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Evaluate(asn(i + 1))
		}(i)
	}
	wg.Wait()
	for i, ev := range results {
		want := stubEval{}.Evaluate(asn(i + 1))
		if ev.Status != want.Status || ev.Speedup != want.Speedup || ev.RelError != want.RelError {
			t.Errorf("eval %d: got %+v, want %+v", i, ev, want)
		}
		if ev.Assignment.Key() != asn(i+1).Key() {
			t.Errorf("eval %d: assignment not restored", i)
		}
	}
	st := c.Stats()
	if st.Leases != int64(len(results)) {
		t.Errorf("Leases = %d, want %d", st.Leases, len(results))
	}
	if st.Degraded || st.Exits != 0 {
		t.Errorf("unexpected degradation or exits: %+v", st)
	}
	if sink.count(EventLeaseGrant) != len(results) {
		t.Errorf("lease_grant events = %d, want %d", sink.count(EventLeaseGrant), len(results))
	}
	c.Close()
	if st := c.Stats(); st.Alive != 2 {
		t.Errorf("Alive after orderly close = %d, want 2", st.Alive)
	}
}

func TestWorkerCrashIsRetriedToSuccess(t *testing.T) {
	// Pick a seed whose injected-kill stream kills attempt 1 of our key
	// but spares attempt 2 — so one worker death later the retried lease
	// must succeed. The stream is pure in (seed, key, attempt), so this
	// search is deterministic too.
	const rate = 0.5
	key := asn(3).Key()
	seed := int64(-1)
	for s := int64(0); s < 10_000; s++ {
		if search.FaultFrac(s, key, 1) < rate && search.FaultFrac(s, key, 2) >= rate {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no suitable fault seed found")
	}

	sink := &eventSink{}
	c := startFleet(t, Config{
		Workers: 1,
		Spawn: stubSpawn(
			fmt.Sprintf("FLEET_STUB_KILL_RATE=%g", rate),
			fmt.Sprintf("FLEET_STUB_SEED=%d", seed)),
		RestartBackoff: 10 * time.Millisecond,
		OnEvent:        sink.record,
	}, Runtime{})

	ev := supervise(c).Evaluate(asn(3))
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	st := c.Stats()
	if st.Exits < 1 || st.Restarts < 1 {
		t.Errorf("Exits = %d, Restarts = %d; want >= 1 each", st.Exits, st.Restarts)
	}
	if sink.count(EventWorkerExit) < 1 || sink.count(EventWorkerRestart) < 1 {
		t.Errorf("missing worker_exit/worker_restart events: %+v", sink.events)
	}
}

func TestWedgedWorkerIsDetectedByHeartbeatLoss(t *testing.T) {
	key := asn(2).Key()
	sink := &eventSink{}
	c := startFleet(t, Config{
		Workers:         1,
		Spawn:           stubSpawn("FLEET_STUB_WEDGE_KEY="+key, "FLEET_STUB_HB_MS=20"),
		Heartbeat:       20 * time.Millisecond,
		HeartbeatMisses: 4,
		RestartBackoff:  10 * time.Millisecond,
		OnEvent:         sink.record,
	}, Runtime{})

	// Attempt 1 wedges (no heartbeats, no result); the silence detector
	// must kill the worker and the supervised retry must succeed.
	ev := supervise(c).Evaluate(asn(2))
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	if sink.count(EventWorkerLost) < 1 {
		t.Errorf("no worker_lost event after a wedge; events: %+v", sink.events)
	}
	if st := c.Stats(); st.Exits < 1 {
		t.Errorf("Exits = %d, want >= 1", st.Exits)
	}
}

func TestLateResultAfterExpiryIsDeduped(t *testing.T) {
	key := asn(4).Key()
	sink := &eventSink{}
	c := startFleet(t, Config{
		Workers: 1,
		Spawn: stubSpawn(
			"FLEET_STUB_SLOW_KEY="+key,
			"FLEET_STUB_SLOW_MS=600",
			"FLEET_STUB_HB_MS=20"),
		LeaseTTL:         150 * time.Millisecond,
		Heartbeat:        20 * time.Millisecond,
		HeartbeatMisses:  50, // heartbeats flow during the slow sleep; silence is not the trigger
		LetExpiredFinish: true,
		OnEvent:          sink.record,
	}, Runtime{})

	// Attempt 1 finishes 600ms after a 150ms lease: the lease expires,
	// the supervisor reassigns, and the worker's late completion must be
	// dropped by the exactly-once dedup — not delivered twice.
	ev := supervise(c).Evaluate(asn(4))
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	// The drained worker reports its stale frame after the retry begins;
	// poll briefly for the counters to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Expired >= 1 && st.Late >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Expired = %d, Late = %d; want >= 1 each", st.Expired, st.Late)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sink.count(EventLeaseExpired) < 1 || sink.count(EventLateResult) < 1 {
		t.Errorf("missing lease_expired/late_result events: %+v", sink.events)
	}
	if st := c.Stats(); st.Exits != 0 {
		t.Errorf("Exits = %d, want 0 (LetExpiredFinish keeps the worker)", st.Exits)
	}
}

func TestWorkerEvaluationPanicBecomesFaultFrame(t *testing.T) {
	key := asn(1).Key()
	c := startFleet(t, Config{
		Workers: 1,
		Spawn:   stubSpawn("FLEET_STUB_PANIC_KEY=" + key),
	}, Runtime{})

	defer func() {
		r := recover()
		wf, ok := r.(*WorkerFault)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerFault", r, r)
		}
		if !strings.Contains(wf.Error(), "injected evaluation fault") {
			t.Errorf("fault message %q lost the worker's panic detail", wf.Error())
		}
		if !wf.Transient() {
			t.Errorf("plain panic should be transient")
		}
		// The process survived its evaluation panic: no exits.
		if st := c.Stats(); st.Exits != 0 {
			t.Errorf("Exits = %d, want 0", st.Exits)
		}
	}()
	c.Evaluate(asn(1))
	t.Fatal("Evaluate returned; want *WorkerFault panic")
}

func TestFingerprintMismatchRetiresWorkerAndDegrades(t *testing.T) {
	sink := &eventSink{}
	c := startFleet(t, Config{
		Workers: 1,
		Spawn:   stubSpawn("FLEET_STUB_FP=some-other-build"),
		OnEvent: sink.record,
	}, Runtime{})

	// The sole worker fails its handshake and is retired without
	// respawn; the fleet degrades and the evaluation runs in-process.
	ev := c.Evaluate(asn(2))
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	st := c.Stats()
	if !st.Degraded {
		t.Fatal("fleet did not degrade after a fingerprint mismatch")
	}
	if st.LocalEvals < 1 {
		t.Errorf("LocalEvals = %d, want >= 1", st.LocalEvals)
	}
	if st.Restarts != 0 {
		t.Errorf("Restarts = %d; a mismatched worker must not respawn", st.Restarts)
	}
	if sink.count(EventFingerprintMismatch) != 1 || sink.count(EventDegraded) != 1 {
		t.Errorf("events: %+v", sink.events)
	}
}

func TestSpawnFailureExhaustsRestartsAndDegrades(t *testing.T) {
	sink := &eventSink{}
	spawnFail := func(id int) (Transport, Process, error) {
		return nil, nil, fmt.Errorf("no such binary")
	}
	c := startFleet(t, Config{
		Workers:        1,
		Spawn:          spawnFail,
		MaxRestarts:    2,
		RestartBackoff: time.Millisecond,
		OnEvent:        sink.record,
	}, Runtime{})

	ev := c.Evaluate(asn(3))
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	st := c.Stats()
	if !st.Degraded || st.Alive != 0 {
		t.Errorf("Degraded = %v, Alive = %d; want degraded with 0 alive", st.Degraded, st.Alive)
	}
	if !strings.Contains(st.DegradeDetail, "0 of 1 worker(s) remain") {
		t.Errorf("DegradeDetail = %q", st.DegradeDetail)
	}
	if sink.count(EventWorkerDead) != 1 {
		t.Errorf("worker_dead events = %d, want 1", sink.count(EventWorkerDead))
	}
}

func TestHealthAndDebugSnapshot(t *testing.T) {
	c := startFleet(t, Config{Workers: 2, Spawn: stubSpawn()}, Runtime{})
	if ev := c.Evaluate(asn(2)); ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	h := c.Health()
	if len(h) != 2 {
		t.Fatalf("Health() returned %d slots, want 2", len(h))
	}
	var done int64
	for _, w := range h {
		done += w.LeasesDone
		if w.State == StateDead.String() {
			t.Errorf("worker %d dead: %+v", w.ID, w)
		}
	}
	if done != 1 {
		t.Errorf("total LeasesDone = %d, want 1", done)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0, Spawn: stubSpawn()}); err == nil {
		t.Error("Workers=0 accepted")
	}
	if _, err := New(Config{Workers: 1}); err == nil {
		t.Error("nil Spawn accepted")
	}
	if _, err := New(Config{Workers: 2, Spawn: stubSpawn(), MinWorkers: 3}); err == nil {
		t.Error("MinWorkers > Workers accepted")
	}
	c, err := New(Config{Workers: 1, Spawn: stubSpawn()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(context.Background(), Runtime{}); err == nil {
		t.Error("Start without Local/Fingerprint accepted")
		c.Close()
	}
}
