package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
)

// Defaults for Config's zero values.
const (
	DefaultLeaseTTL        = time.Minute
	DefaultHeartbeat       = 250 * time.Millisecond
	DefaultHeartbeatMisses = 4
	DefaultMaxRestarts     = 3
	DefaultRestartBackoff  = 200 * time.Millisecond
	DefaultReadyTimeout    = 30 * time.Second
)

// Fleet event types, recorded in the journal's events sidecar (with
// the coordinator's worker ID) and counted by `prose journal`. Like
// resilience events they are strictly out-of-band telemetry: the
// evaluation journal of a tune that survived worker deaths is
// byte-identical to a fault-free run's.
const (
	// EventLeaseGrant: one evaluation was leased to a worker.
	EventLeaseGrant = "lease_grant"
	// EventLeaseExpired: a lease passed its deadline and was failed for
	// reassignment (the supervisor's retry resubmits it).
	EventLeaseExpired = "lease_expired"
	// EventLateResult: a completion arrived for a lease that had already
	// expired and been reassigned; it was dropped, keeping journal
	// appends exactly-once.
	EventLateResult = "late_result"
	// EventWorkerExit: a worker process died (EOF on its pipe) — a
	// SIGKILL, OOM kill, or crash.
	EventWorkerExit = "worker_exit"
	// EventWorkerLost: a worker went silent (missed heartbeats) and was
	// killed.
	EventWorkerLost = "worker_lost"
	// EventWorkerRestart: a dead worker slot respawned its process.
	EventWorkerRestart = "worker_restart"
	// EventWorkerDead: a worker slot was retired permanently (restart
	// budget exhausted, spawn failure, or fingerprint mismatch).
	EventWorkerDead = "worker_dead"
	// EventDegraded: live capacity fell below MinWorkers; the
	// coordinator switched — stickily, and never silently — to
	// in-process evaluation.
	EventDegraded = "degraded_to_local"
	// EventFingerprintMismatch: a worker's handshake fingerprint did not
	// match the coordinator's; it was retired before receiving any
	// lease, because its evaluations would not reproduce the journal.
	EventFingerprintMismatch = "fingerprint_mismatch"
	// EventWorkerReconnect: a network worker re-established its session
	// after a connection loss, resuming into the same slot.
	EventWorkerReconnect = "worker_reconnect"
	// EventPartitionExpired: a lease parked across a network partition
	// reached its deadline before its worker returned; it was failed
	// for supervised reassignment.
	EventPartitionExpired = "partition_expired"
	// EventDupRefused: a duplicate or stale frame — a network
	// duplication or a reply outliving its lease — was refused by the
	// exactly-once dedup.
	EventDupRefused = "dup_refused"
)

// Event is one observable fleet decision, bridged by the tuner into the
// journal's events sidecar and surfaced through obs metrics.
type Event struct {
	Type string
	// Worker is the coordinator's worker slot ID.
	Worker int
	// Key is the canonical assignment key the event concerns, if any.
	Key string
	// Attempt is the per-key attempt number of the lease, if any.
	Attempt int
	// Kind is the resilience fault class attributed to the event.
	Kind string
	// Detail is the human-readable cause.
	Detail string
}

// Process is the coordinator's handle on one worker subprocess.
type Process interface {
	// Kill terminates the process immediately (SIGKILL).
	Kill() error
	// Wait reaps the process after it exits.
	Wait() error
	// Pid identifies the process for health reporting.
	Pid() int
}

// SpawnFunc launches worker number id and returns its transport and
// process handle.
type SpawnFunc func(id int) (Transport, Process, error)

// Command returns a SpawnFunc that launches `name args...` with the
// worker protocol on its stdin/stdout, stderr passed through, and
// PROSE_FLEET_WORKER=1 / PROSE_FLEET_WORKER_ID in its environment.
func Command(name string, args ...string) SpawnFunc {
	return func(id int) (Transport, Process, error) {
		cmd := exec.Command(name, args...)
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(),
			"PROSE_FLEET_WORKER=1",
			fmt.Sprintf("PROSE_FLEET_WORKER_ID=%d", id))
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return NewPipeTransport(stdout, stdin), (*procHandle)(cmd), nil
	}
}

type procHandle exec.Cmd

func (p *procHandle) Kill() error {
	if p.Process == nil {
		return nil
	}
	return p.Process.Kill()
}

func (p *procHandle) Wait() error { return (*exec.Cmd)(p).Wait() }

func (p *procHandle) Pid() int {
	if p.Process == nil {
		return 0
	}
	return p.Process.Pid
}

// Config shapes a worker fleet.
type Config struct {
	// Workers is the pool size (required, >= 1).
	Workers int
	// Spawn launches one worker. Exactly one of Spawn and Net must be
	// set: Spawn for subprocess (pipe) workers, Net for off-host
	// workers that dial in.
	Spawn SpawnFunc
	// Net accepts dialing network workers instead of spawning
	// subprocesses (see NetConfig). Exactly one of Spawn and Net.
	Net *NetConfig
	// LeaseTTL bounds one evaluation's wall-clock time on a worker; an
	// expired lease is failed as a hang fault and reassigned by the
	// supervisor's retry.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to beat at (the
	// coordinator checks for silence at HeartbeatMisses times this).
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive silent intervals mark a
	// worker lost.
	HeartbeatMisses int
	// MaxRestarts bounds respawns per worker slot; past it the slot is
	// retired.
	MaxRestarts int
	// MinWorkers is the live-capacity floor: when fewer slots remain
	// serviceable the coordinator degrades — stickily — to in-process
	// evaluation (default 1).
	MinWorkers int
	// RestartBackoff is slept before each respawn.
	RestartBackoff time.Duration
	// ReadyTimeout bounds the spawn-to-handshake window (workers load
	// the model and measure a baseline before reporting ready).
	ReadyTimeout time.Duration
	// LetExpiredFinish keeps a worker alive after its lease expires so
	// its late result can arrive (and be dropped by the exactly-once
	// dedup). The default kills it: an expired lease usually means a
	// wedged evaluation, and a fresh process is the cure.
	LetExpiredFinish bool
	// OnEvent observes fleet events, in addition to Runtime.OnEvent.
	OnEvent func(Event)
}

func (c *Config) withDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = DefaultMaxRestarts
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = DefaultRestartBackoff
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = DefaultReadyTimeout
	}
}

// Runtime is what the tuner provides when the fleet starts: the
// in-process fallback evaluator, the evaluation fingerprint workers
// must reproduce, and the observability sinks.
type Runtime struct {
	// Local evaluates in-process after a degrade (required).
	Local search.Evaluator
	// Fingerprint is the evaluation fingerprint (required); a worker
	// whose handshake disagrees is retired before its first lease.
	Fingerprint string
	// OnEvent bridges fleet events to the journal's events sidecar.
	OnEvent func(Event)
	// Metrics receives fleet counters and gauges (nil-safe). When set,
	// lease grants ask workers to snapshot their own registries into
	// heartbeats, and the coordinator merges them into the
	// fleet.workers.* namespace of this registry.
	Metrics *obs.Registry
	// Trace, when set, turns on cross-process trace propagation: lease
	// grants carry the fleet.lease span ID, workers run their own
	// tracer under it, and their shipped spans are spliced into this
	// tracer on per-worker pid lanes.
	Trace *obs.Tracer
}

// WorkerState is a worker slot's lifecycle position.
type WorkerState int

const (
	StateSpawning WorkerState = iota
	StateHandshake
	StateIdle
	StateBusy
	StateDraining // lease expired with LetExpiredFinish; awaiting the stale frame
	StateBackoff  // between death and respawn
	StateStopped  // orderly shutdown
	StateDead     // retired permanently
)

func (s WorkerState) String() string {
	switch s {
	case StateSpawning:
		return "spawning"
	case StateHandshake:
		return "handshake"
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateDraining:
		return "draining"
	case StateBackoff:
		return "backoff"
	case StateStopped:
		return "stopped"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("WorkerState(%d)", int(s))
	}
}

// WorkerHealth is one worker slot's health snapshot, served by
// DebugHandler on the -debug-addr server.
type WorkerHealth struct {
	ID         int    `json:"id"`
	Pid        int    `json:"pid,omitempty"`
	State      string `json:"state"`
	Restarts   int    `json:"restarts"`
	LeasesDone int64  `json:"leases_done"`
	CurrentKey string `json:"current_key,omitempty"`
	// HeartbeatAgeMS is milliseconds since the last heartbeat (or lease
	// grant) while busy; -1 otherwise.
	HeartbeatAgeMS int64  `json:"heartbeat_age_ms"`
	LastFault      string `json:"last_fault,omitempty"`
	// Session is the network worker session bound to this slot, if any.
	Session string `json:"session,omitempty"`
	// MetricsSeq is the newest obs sequence number accepted from this
	// worker (0 until metric/span shipping delivers something).
	MetricsSeq int64 `json:"metrics_seq,omitempty"`
}

// Stats is a snapshot of fleet counters for the run report.
type Stats struct {
	// Workers is the configured pool size.
	Workers int
	// Alive is the number of serviceable (non-retired) slots.
	Alive int
	// Leases is the number of leases granted.
	Leases int64
	// Expired is the number of leases that passed their deadline.
	Expired int64
	// Late is the number of stale completions dropped by the
	// exactly-once dedup.
	Late int64
	// Exits is the number of worker process deaths (exit + lost).
	Exits int64
	// Restarts is the number of worker respawns.
	Restarts int64
	// LocalEvals is the number of evaluations answered in-process after
	// a degrade.
	LocalEvals int64
	// Degraded reports whether the fleet fell below MinWorkers and
	// switched to in-process evaluation.
	Degraded bool
	// DegradeDetail is the cause of the degrade.
	DegradeDetail string
	// Reconnects is the number of network-worker session resumes.
	Reconnects int64
	// PartitionExpired is the number of leases parked across a network
	// partition that expired before their worker reconnected.
	PartitionExpired int64
	// DupRefused is the number of duplicate or stale network frames
	// refused by the exactly-once dedup.
	DupRefused int64
	// FrameErrors is the number of malformed or oversized frames that
	// retired a connection.
	FrameErrors int64
}

// slot is one worker slot's bookkeeping, guarded by Coordinator.mu.
type slot struct {
	id         int
	pid        int
	state      WorkerState
	restarts   int
	leasesDone int64
	currentKey string
	lastBeat   time.Time
	lastFault  string

	// Distributed-observability state (guarded by Coordinator.mu):
	// obsSeq is the newest accepted obs sequence number — frames with
	// an equal or lower sequence are chaos-delayed duplicates or
	// reorders and are dropped — and obsSnap is the worker's latest
	// accepted registry snapshot, kept so each acceptance can merge the
	// delta (not the cumulative total) into the run registry.
	obsSeq  int64
	obsSnap obs.Snapshot

	// Network mode only: the bound worker session, its in-flight
	// lease parked across a disconnect (with the timer that expires
	// it), the channel admit hands fresh connections through, and the
	// live connection (closed by admit when the session redials).
	session     string
	orphan      *lease
	orphanTimer *time.Timer
	netCh       chan *netConn
	netLive     net.Conn
}

// Coordinator shards evaluations across a pool of worker subprocesses.
// It implements search.Evaluator/SpanEvaluator: construct it with New,
// hand it to core.Options.Fleet (which calls Start and Close around the
// tune), and every Evaluate becomes a lease on the queue.
type Coordinator struct {
	cfg Config
	rt  Runtime
	q   *queue

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// degradedCh closes once, when the fleet degrades to local.
	degradedCh chan struct{}

	mu       sync.Mutex
	started  bool
	slots    []*slot
	attempts map[string]int
	dead     int
	procsUp  int
	degraded bool
	detail   string
	st       Stats

	// Network mode only (guarded by mu): session → bound slot routing,
	// the set of sessions ever admitted (a re-admission of a known
	// session is a reconnect), and the shared chaos state for accepted
	// connections.
	sessions     map[string]*slot
	seenSessions map[string]bool
	nchaos       *chaos
}

// New validates the configuration and returns an unstarted Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("fleet: Workers must be >= 1 (got %d)", cfg.Workers)
	}
	if cfg.Spawn == nil && cfg.Net == nil {
		return nil, fmt.Errorf("fleet: Spawn is required")
	}
	if cfg.Spawn != nil && cfg.Net != nil {
		return nil, fmt.Errorf("fleet: Spawn and Net are mutually exclusive")
	}
	if cfg.Net != nil && cfg.Net.Listener == nil {
		return nil, fmt.Errorf("fleet: Net.Listener is required")
	}
	cfg.withDefaults()
	if cfg.MinWorkers > cfg.Workers {
		return nil, fmt.Errorf("fleet: MinWorkers (%d) exceeds Workers (%d)", cfg.MinWorkers, cfg.Workers)
	}
	return &Coordinator{
		cfg:        cfg,
		q:          newQueue(),
		degradedCh: make(chan struct{}),
		attempts:   make(map[string]int),
	}, nil
}

// Start spawns the worker pool. ctx bounds the fleet's lifetime (the
// tuner passes its hard-cancellation context); Close stops it too.
func (c *Coordinator) Start(ctx context.Context, rt Runtime) error {
	if rt.Local == nil {
		return fmt.Errorf("fleet: Runtime.Local is required")
	}
	if rt.Fingerprint == "" {
		return fmt.Errorf("fleet: Runtime.Fingerprint is required")
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return fmt.Errorf("fleet: already started")
	}
	c.started = true
	c.rt = rt
	c.st.Workers = c.cfg.Workers
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx, c.cancel = context.WithCancel(ctx)
	netMode := c.cfg.Net != nil
	if netMode {
		c.sessions = make(map[string]*slot)
		c.seenSessions = make(map[string]bool)
		c.nchaos = newChaos(c.cfg.Net.Chaos)
	}
	for i := 0; i < c.cfg.Workers; i++ {
		s := &slot{id: i, state: StateSpawning}
		if netMode {
			s.netCh = make(chan *netConn, 1)
		}
		c.slots = append(c.slots, s)
	}
	slots := c.slots
	c.mu.Unlock()
	if netMode {
		// The listener dies with the context; closing it is what
		// unblocks the accept loop.
		c.wg.Add(2)
		go func() {
			defer c.wg.Done()
			<-c.ctx.Done()
			c.cfg.Net.Listener.Close()
		}()
		go c.acceptLoop()
	}
	for _, s := range slots {
		c.wg.Add(1)
		go c.slotLoop(s)
	}
	return nil
}

// Close shuts the fleet down: workers receive a shutdown message (or
// are killed if mid-lease) and are reaped. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	cancel := c.cancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	c.wg.Wait()
	// Network mode: release anything still parked or queued — orphan
	// timers must not fire after Close, and admitted-but-unclaimed
	// connections must not leak.
	c.mu.Lock()
	for _, s := range c.slots {
		if s.orphanTimer != nil {
			s.orphanTimer.Stop()
			s.orphanTimer = nil
			s.orphan = nil
		}
		if s.netCh != nil {
			select {
			case nc := <-s.netCh:
				nc.tr.Close()
			default:
			}
		}
	}
	c.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the fleet counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Alive = c.cfg.Workers - c.dead
	st.Degraded = c.degraded
	st.DegradeDetail = c.detail
	return st
}

// Health snapshots every worker slot, sorted by ID.
func (c *Coordinator) Health() []WorkerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerHealth, 0, len(c.slots))
	for _, s := range c.slots {
		h := WorkerHealth{
			ID:         s.id,
			Pid:        s.pid,
			State:      s.state.String(),
			Restarts:   s.restarts,
			LeasesDone: s.leasesDone,
			CurrentKey: s.currentKey,
			LastFault:  s.lastFault,
			Session:    s.session,
			MetricsSeq: s.obsSeq,
		}
		h.HeartbeatAgeMS = -1
		if (s.state == StateBusy || s.state == StateDraining) && !s.lastBeat.IsZero() {
			h.HeartbeatAgeMS = now.Sub(s.lastBeat).Milliseconds()
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DebugHandler serves the fleet health snapshot as JSON, mounted at
// /debug/fleet on the -debug-addr server and polled by `prose
// fleet-status`. All worker state is copied under the coordinator's
// lock (Stats/Health) or read from atomic registry instruments
// (WorkerMetrics), so the handler is safe against concurrent heartbeat
// and obs-merge updates (raced in TestDebugFleetHandlerRace).
func (c *Coordinator) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(FleetStatus{
			Stats:         c.Stats(),
			Workers:       c.Health(),
			WorkerMetrics: c.WorkerMetrics(),
		})
	})
}

// FleetStatus is the /debug/fleet JSON document: fleet counters, the
// per-worker health table, and the merged fleet.workers.* metrics view.
// `prose fleet-status` decodes exactly this.
type FleetStatus struct {
	Stats         Stats          `json:"stats"`
	Workers       []WorkerHealth `json:"workers"`
	WorkerMetrics obs.Snapshot   `json:"worker_metrics,omitempty"`
}

// event fans one fleet event out to the configured observers.
func (c *Coordinator) event(e Event) {
	if fn := c.cfg.OnEvent; fn != nil {
		fn(e)
	}
	if fn := c.rt.OnEvent; fn != nil {
		fn(e)
	}
}

func (c *Coordinator) counter(name string) *obs.Counter { return c.rt.Metrics.Counter(name) }

// setState updates a slot's state and its per-worker obs gauge.
func (c *Coordinator) setState(s *slot, st WorkerState) {
	c.mu.Lock()
	s.state = st
	if st != StateBusy && st != StateDraining {
		s.currentKey = ""
	}
	c.mu.Unlock()
	c.rt.Metrics.Gauge(fmt.Sprintf("%s%d", obs.GaugeFleetWorkerStatePrefix, s.id)).Set(float64(st))
}

// degrade flips the fleet — once, stickily, and loudly — to in-process
// evaluation.
func (c *Coordinator) degrade(detail string) {
	c.mu.Lock()
	if c.degraded {
		c.mu.Unlock()
		return
	}
	c.degraded = true
	c.detail = detail
	close(c.degradedCh)
	c.mu.Unlock()
	c.rt.Metrics.Gauge(obs.GaugeFleetDegraded).Set(1)
	c.event(Event{Type: EventDegraded, Worker: -1, Detail: detail})
}

func (c *Coordinator) isDegraded() bool {
	select {
	case <-c.degradedCh:
		return true
	default:
		return false
	}
}

// retire permanently removes a slot from the pool, degrading the fleet
// if live capacity fell below the floor.
func (c *Coordinator) retire(s *slot, why string) {
	c.mu.Lock()
	s.state = StateDead
	s.lastFault = why
	c.dead++
	alive := c.cfg.Workers - c.dead
	c.mu.Unlock()
	c.rt.Metrics.Gauge(fmt.Sprintf("%s%d", obs.GaugeFleetWorkerStatePrefix, s.id)).Set(float64(StateDead))
	c.rt.Metrics.Gauge(obs.GaugeFleetWorkersAlive).Set(float64(alive))
	c.event(Event{Type: EventWorkerDead, Worker: s.id, Detail: why})
	if alive < c.cfg.MinWorkers {
		c.degrade(fmt.Sprintf("%d of %d worker(s) remain (floor %d); last: %s",
			alive, c.cfg.Workers, c.cfg.MinWorkers, why))
	}
}

// exitReason says how one worker process session ended.
type exitReason int

const (
	exitShutdown  exitReason = iota // orderly: ctx done
	exitMismatch                    // fingerprint handshake failed (no respawn)
	exitCrash                       // process died or misbehaved (respawn)
	exitLost                        // heartbeats stopped (killed; respawn)
	exitExpired                     // lease expired, kill-on-expiry (respawn)
	exitPartition                   // network connection lost (net mode; await redial, no restart charge)
)

// slotLoop owns one worker slot: spawn, serve, and respawn with backoff
// until the restart budget is spent, the fingerprint mismatches, or the
// fleet shuts down. In network mode the slot waits for dialing workers
// instead of spawning (netSlotLoop).
func (c *Coordinator) slotLoop(s *slot) {
	defer c.wg.Done()
	if c.cfg.Net != nil {
		c.netSlotLoop(s)
		return
	}
	for {
		if c.ctx.Err() != nil {
			c.setState(s, StateStopped)
			return
		}
		c.setState(s, StateSpawning)
		tr, proc, err := c.cfg.Spawn(s.id)
		var reason exitReason
		var detail string
		if err != nil {
			reason, detail = exitCrash, fmt.Sprintf("spawn failed: %v", err)
			c.event(Event{Type: EventWorkerExit, Worker: s.id, Kind: resilience.KindGeneric, Detail: detail})
		} else {
			c.mu.Lock()
			s.pid = proc.Pid()
			c.mu.Unlock()
			c.rt.Metrics.Gauge(obs.GaugeFleetWorkersAlive).Set(float64(c.aliveProcs(+1)))
			reason, detail = c.serveWorker(s, tr, nil)
			proc.Kill()
			tr.Close()
			proc.Wait()
			c.mu.Lock()
			s.pid = 0
			c.mu.Unlock()
			c.rt.Metrics.Gauge(obs.GaugeFleetWorkersAlive).Set(float64(c.aliveProcs(-1)))
		}
		switch reason {
		case exitShutdown:
			c.setState(s, StateStopped)
			return
		case exitMismatch:
			c.retire(s, detail)
			return
		}
		c.mu.Lock()
		s.lastFault = detail
		restarts := s.restarts
		c.mu.Unlock()
		if restarts >= c.cfg.MaxRestarts {
			c.retire(s, fmt.Sprintf("restart budget (%d) spent; last: %s", c.cfg.MaxRestarts, detail))
			return
		}
		c.mu.Lock()
		s.restarts++
		c.mu.Unlock()
		c.rt.Metrics.Gauge(fmt.Sprintf("%s%d", obs.GaugeFleetWorkerRestartsPrefix, s.id)).Set(float64(restarts + 1))
		c.counter(obs.MetricFleetRestarts).Add(1)
		c.statAdd(func(st *Stats) { st.Restarts++ })
		c.event(Event{Type: EventWorkerRestart, Worker: s.id, Detail: detail})
		c.setState(s, StateBackoff)
		select {
		case <-time.After(c.cfg.RestartBackoff):
		case <-c.ctx.Done():
			c.setState(s, StateStopped)
			return
		}
	}
}

// aliveProcs tracks the live-process count for the workers_alive gauge.
func (c *Coordinator) aliveProcs(delta int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.procsUp += delta
	return c.procsUp
}

func (c *Coordinator) statAdd(fn func(*Stats)) {
	c.mu.Lock()
	fn(&c.st)
	c.mu.Unlock()
}

// workerReader pumps a transport's frames into a channel. err (set
// before msgs closes; the close is the synchronization point) lets the
// consumer distinguish a malformed frame from a plain disconnect.
type workerReader struct {
	msgs chan Msg
	err  error
}

// serveWorker drives one live worker session: handshake, then a
// lease-serve loop. nc is non-nil for network sessions; the pipe path
// passes nil. Every exit path resolves or parks the in-flight lease
// (if any) before returning, so no Evaluate caller is ever stranded.
func (c *Coordinator) serveWorker(s *slot, tr Transport, nc *netConn) (exitReason, string) {
	// The reader goroutine exits when Recv fails; the caller's tr.Close
	// and proc.Kill guarantee that on every return path.
	rd := &workerReader{msgs: make(chan Msg, 16)}
	go func() {
		defer close(rd.msgs)
		for {
			m, err := tr.Recv()
			if err != nil {
				rd.err = err
				return
			}
			rd.msgs <- m
		}
	}()

	c.setState(s, StateHandshake)
	ready := time.NewTimer(c.cfg.ReadyTimeout)
	defer ready.Stop()
	select {
	case m, ok := <-rd.msgs:
		if !ok {
			return exitCrash, "worker exited before handshake"
		}
		if m.Type != MsgReady {
			return exitCrash, fmt.Sprintf("protocol error: first frame %q, want %q", m.Type, MsgReady)
		}
		if m.Fingerprint != c.rt.Fingerprint {
			detail := fmt.Sprintf("worker fingerprint %.12s... does not match coordinator %.12s... (its evaluations would not reproduce the journal)",
				m.Fingerprint, c.rt.Fingerprint)
			c.event(Event{Type: EventFingerprintMismatch, Worker: s.id, Detail: detail})
			return exitMismatch, detail
		}
	case <-ready.C:
		return exitCrash, fmt.Sprintf("no handshake within %v", c.cfg.ReadyTimeout)
	case <-c.ctx.Done():
		return exitShutdown, ""
	}

	// A pipe worker that just handshook is a fresh process: its obs
	// sequence and registry restart from zero, so the stale-frame guard
	// and the delta merge must restart with it. (A network reconnect
	// resumes the same process — same tracer, same registry, same
	// sequence — so its state carries over.)
	if nc == nil {
		c.mu.Lock()
		s.obsSeq = 0
		s.obsSnap = obs.Snapshot{}
		c.mu.Unlock()
	}

	// A reconnecting network session may still hold a parked lease:
	// re-adopt it and resume driving — without a second grant, because
	// the worker is mid-evaluation (or re-offering its reply) already.
	if nc != nil {
		if l := c.adoptOrphan(s, nc); l != nil {
			reason, detail, next := c.driveLease(s, tr, l, rd, nc)
			if !next {
				return reason, detail
			}
		}
	}

	for {
		c.setState(s, StateIdle)
		l := c.q.acquire(c.ctx, s.id, c.cfg.LeaseTTL)
		if l == nil {
			tr.Send(Msg{Type: MsgShutdown})
			return exitShutdown, ""
		}
		lm := Msg{Type: MsgLease, Lease: l.id, Key: l.job.key, Attempt: l.job.attempt,
			Assignment: l.job.a, DeadlineMS: c.cfg.LeaseTTL.Milliseconds()}
		if c.rt.Trace != nil || c.rt.Metrics != nil {
			oc := &ObsCtx{Metrics: c.rt.Metrics != nil}
			if c.rt.Trace != nil && l.job.span != 0 {
				oc.SpanID = l.job.span.String()
				oc.Fingerprint = c.rt.Trace.Fingerprint()
			}
			lm.Obs = oc
		}
		if err := tr.Send(lm); err != nil {
			detail := fmt.Sprintf("lease send failed: %v", err)
			c.q.fail(l.id, &WorkerFault{Key: l.job.key, Kind: resilience.KindSchedulerKill,
				Msg: fmt.Sprintf("fleet: worker died before receiving the lease on %q", l.job.key)})
			c.workerDied(s, l.job.key, l.job.attempt, detail)
			if nc != nil {
				return exitPartition, detail
			}
			return exitCrash, detail
		}
		c.mu.Lock()
		s.state = StateBusy
		s.currentKey = l.job.key
		s.lastBeat = time.Now()
		c.mu.Unlock()
		c.counter(obs.MetricFleetLeases).Add(1)
		c.statAdd(func(st *Stats) { st.Leases++ })
		c.event(Event{Type: EventLeaseGrant, Worker: s.id, Key: l.job.key, Attempt: l.job.attempt})

		reason, detail, next := c.driveLease(s, tr, l, rd, nc)
		if !next {
			return reason, detail
		}
	}
}

// workerDied records a worker process death (event + counters).
func (c *Coordinator) workerDied(s *slot, key string, attempt int, detail string) {
	c.counter(obs.MetricFleetWorkerExits).Add(1)
	c.statAdd(func(st *Stats) { st.Exits++ })
	c.event(Event{Type: EventWorkerExit, Worker: s.id, Key: key, Attempt: attempt,
		Kind: resilience.KindSchedulerKill, Detail: detail})
}

// lateResult records a stale completion dropped by the exactly-once
// dedup.
func (c *Coordinator) lateResult(s *slot, key string, attempt int) {
	c.counter(obs.MetricFleetLateResults).Add(1)
	c.statAdd(func(st *Stats) { st.Late++ })
	c.event(Event{Type: EventLateResult, Worker: s.id, Key: key, Attempt: attempt,
		Detail: "completion for an expired, reassigned lease dropped"})
}

// driveLease runs one granted lease to its end: a result/fault frame, a
// deadline expiry, heartbeat silence, connection loss, process death,
// or shutdown. It returns next=true when the worker survives to take
// another lease. In network mode (nc non-nil) a lost connection parks
// the lease for the session's reconnect instead of failing it.
func (c *Coordinator) driveLease(s *slot, tr Transport, l *lease, rd *workerReader, nc *netConn) (reason exitReason, detail string, next bool) {
	key, attempt := l.job.key, l.job.attempt
	// draining: the lease has already been failed (expired) but the
	// worker lives on (LetExpiredFinish) — we wait for its stale frame,
	// count it as late, and only then reuse the worker.
	draining := false
	tick := time.NewTicker(c.cfg.Heartbeat / 2)
	defer tick.Stop()
	lastBeat := time.Now()
	// leaseDone resets the slot's restart budget: a session that
	// completes leases is healthy, so transient faults spread over a
	// long run never add up to a spurious retirement.
	leaseDone := func() {
		c.mu.Lock()
		s.leasesDone++
		s.restarts = 0
		c.mu.Unlock()
	}
	for {
		select {
		case m, ok := <-rd.msgs:
			if !ok {
				var fe *FrameError
				if errors.As(rd.err, &fe) {
					// A malformed or oversized frame is a protocol breach,
					// not a partition: fail the lease and retire the
					// connection (the slot's restart budget bounds a
					// garbage-sending peer).
					det := fe.Error()
					c.counter(obs.MetricFleetNetFrameErrors).Add(1)
					c.statAdd(func(st *Stats) { st.FrameErrors++ })
					if !draining {
						c.q.fail(l.id, &WorkerFault{Key: key, Kind: resilience.KindSchedulerKill,
							Msg: fmt.Sprintf("fleet: worker evaluating %q sent a malformed frame; retiring the connection", key)})
					}
					c.workerDied(s, key, attempt, det)
					return exitCrash, det, false
				}
				if nc != nil {
					// Connection lost: park the lease so the session's
					// reconnect can re-adopt it; the orphan timer expires
					// it at the original deadline if the worker never
					// returns.
					det := fmt.Sprintf("connection lost during evaluation of %q (attempt %d)", key, attempt)
					if !draining {
						c.parkOrphan(s, l)
					}
					c.workerDied(s, key, attempt, det)
					return exitPartition, det, false
				}
				det := fmt.Sprintf("worker exited during evaluation of %q (attempt %d)", key, attempt)
				if !draining {
					c.q.fail(l.id, &WorkerFault{Key: key, Kind: resilience.KindSchedulerKill,
						Msg: fmt.Sprintf("fleet: worker evaluating %q was killed before returning a result", key)})
				}
				c.workerDied(s, key, attempt, det)
				return exitCrash, det, false
			}
			c.spliceObs(s, m)
			switch m.Type {
			case MsgHeartbeat:
				lastBeat = time.Now()
				c.mu.Lock()
				s.lastBeat = lastBeat
				c.mu.Unlock()
				c.counter(obs.MetricFleetHeartbeats).Add(1)
			case MsgResult:
				if m.Lease != l.id {
					// A frame for another lease entirely — a network
					// duplicate, or a reply that outlived its lease across
					// a reconnect. The monotonic lease ID refuses it.
					c.dupRefused(s, key, attempt)
					continue
				}
				rec, err := decodeResult(c.rt.Fingerprint, key, m)
				if err != nil {
					// A corrupt result is a protocol breach: fail the lease
					// and replace the process.
					det := err.Error()
					if !draining {
						c.q.fail(l.id, &WorkerFault{Key: key, Msg: det})
					}
					c.workerDied(s, key, attempt, det)
					return exitCrash, det, false
				}
				ev, err := rec.Evaluation()
				if err != nil {
					det := err.Error()
					if !draining {
						c.q.fail(l.id, &WorkerFault{Key: key, Msg: det})
					}
					c.workerDied(s, key, attempt, det)
					return exitCrash, det, false
				}
				if draining || !c.q.complete(l.id, ev) {
					c.lateResult(s, key, attempt)
					if draining {
						return 0, "", true
					}
					continue
				}
				leaseDone()
				c.rt.Metrics.Counter(fmt.Sprintf("%s%d", obs.MetricFleetWorkerLeasesPrefix, s.id)).Add(1)
				return 0, "", true
			case MsgFault:
				if m.Lease != l.id {
					c.dupRefused(s, key, attempt)
					continue
				}
				f := &WorkerFault{Key: key, Msg: m.Fault, Persistent: m.Persistent}
				if draining || !c.q.fail(l.id, f) {
					c.lateResult(s, key, attempt)
					if draining {
						return 0, "", true
					}
					continue
				}
				leaseDone()
				c.mu.Lock()
				s.lastFault = m.Fault
				c.mu.Unlock()
				return 0, "", true
			}
		case <-tick.C:
			now := time.Now()
			if !draining && now.After(l.deadline) {
				c.q.fail(l.id, &WorkerFault{Key: key, Kind: resilience.KindHang,
					Msg: fmt.Sprintf("fleet: lease on %q expired after %v; reassigning", key, c.cfg.LeaseTTL)})
				c.counter(obs.MetricFleetLeaseExpired).Add(1)
				c.statAdd(func(st *Stats) { st.Expired++ })
				c.event(Event{Type: EventLeaseExpired, Worker: s.id, Key: key, Attempt: attempt,
					Kind: resilience.KindHang, Detail: fmt.Sprintf("deadline %v passed", c.cfg.LeaseTTL)})
				if c.cfg.LetExpiredFinish {
					draining = true
					c.setState(s, StateDraining)
					c.mu.Lock()
					s.currentKey = key
					c.mu.Unlock()
					continue
				}
				return exitExpired, fmt.Sprintf("lease on %q expired", key), false
			}
			if now.Sub(lastBeat) > time.Duration(c.cfg.HeartbeatMisses)*c.cfg.Heartbeat {
				det := fmt.Sprintf("no heartbeat for %v (%d misses) during %q; killing worker",
					now.Sub(lastBeat).Round(time.Millisecond), c.cfg.HeartbeatMisses, key)
				if nc != nil {
					// Silence over the network is indistinguishable from a
					// partition: sever the connection and park the lease —
					// if the worker is alive behind a partition it will
					// redial and resume; if it is truly wedged the orphan
					// timer expires the lease at its original deadline.
					if !draining {
						c.parkOrphan(s, l)
					}
					c.counter(obs.MetricFleetWorkerExits).Add(1)
					c.statAdd(func(st *Stats) { st.Exits++ })
					c.event(Event{Type: EventWorkerLost, Worker: s.id, Key: key, Attempt: attempt,
						Kind: resilience.KindHang, Detail: det})
					return exitPartition, det, false
				}
				if !draining {
					c.q.fail(l.id, &WorkerFault{Key: key, Kind: resilience.KindHang,
						Msg: fmt.Sprintf("fleet: worker evaluating %q went silent; killed", key)})
				}
				c.counter(obs.MetricFleetWorkerExits).Add(1)
				c.statAdd(func(st *Stats) { st.Exits++ })
				c.event(Event{Type: EventWorkerLost, Worker: s.id, Key: key, Attempt: attempt,
					Kind: resilience.KindHang, Detail: det})
				return exitLost, det, false
			}
		case <-c.ctx.Done():
			if !draining {
				c.q.fail(l.id, &WorkerFault{Key: key,
					Msg: fmt.Sprintf("fleet: shutdown during evaluation of %q", key)})
			}
			return exitShutdown, "", false
		}
	}
}

// spliceObs absorbs one frame's piggybacked observability payload:
// worker spans are rebased onto the coordinator's tracer epoch and
// spliced into this slot's Chrome-trace pid lane, and the worker's
// registry snapshot is delta-merged into the run registry's
// fleet.workers.* namespace. A chaos transport can delay, duplicate,
// or reorder frames, so the worker tags every shipment with a
// monotonic sequence number; anything at or below the newest accepted
// sequence is dropped — a stale snapshot can never overwrite a newer
// one, and a duplicated span batch splices at most once.
func (c *Coordinator) spliceObs(s *slot, m Msg) {
	if m.ObsSeq == 0 {
		return
	}
	c.mu.Lock()
	if m.ObsSeq <= s.obsSeq {
		c.mu.Unlock()
		c.counter(obs.MetricFleetObsStale).Add(1)
		return
	}
	s.obsSeq = m.ObsSeq
	var prev obs.Snapshot
	if m.MetricsSnap != nil {
		prev, s.obsSnap = s.obsSnap, *m.MetricsSnap
	}
	c.mu.Unlock()
	if m.MetricsSnap != nil {
		c.mergeWorkerSnap(s.id, prev, *m.MetricsSnap)
		c.counter(obs.MetricFleetObsSnapshots).Add(1)
	}
	if len(m.Spans) > 0 && c.rt.Trace != nil {
		// Rebase: the worker stamped the frame with its own epoch
		// offset at send time; the difference against our clock now is
		// the epoch skew (plus frame latency, which only shifts the
		// lane slightly and never reorders spans within it).
		offset := c.rt.Trace.Now() - time.Duration(m.TraceNow)
		recs := make([]obs.SpanRecord, len(m.Spans))
		for i, r := range m.Spans {
			r.Start += offset
			if r.Start < 0 {
				r.Start = 0
			}
			r.PID = obs.WorkerPIDBase + s.id
			r.Worker = s.id
			recs[i] = r
		}
		c.rt.Trace.Ingest(recs)
		c.counter(obs.MetricFleetObsSpans).Add(int64(len(recs)))
	}
}

// mergeWorkerSnap folds one accepted worker snapshot into the run
// registry's fleet.workers.* namespace. Counters and histograms are
// cumulative on the worker, so only the delta against the previously
// accepted snapshot is added — the merged view is exact and live (it
// reaches /debug/vars and /debug/fleet mid-run, and the final registry
// snapshot lands in the run report and core.Result.Metrics). A counter
// or histogram that shrank means a restarted worker with a fresh
// registry; its new totals are added whole, since the dead process's
// contributions already landed. Gauges are last-write-wins per slot,
// published as fleet.workers.<name>.w<slot>.
func (c *Coordinator) mergeWorkerSnap(slotID int, prev, cur obs.Snapshot) {
	reg := c.rt.Metrics
	if reg == nil {
		return
	}
	for name, v := range cur.Counters {
		d := v - prev.Counters[name]
		if d < 0 {
			d = v
		}
		if d != 0 {
			reg.Counter(obs.MetricFleetWorkersPrefix + name).Add(d)
		}
	}
	for name, v := range cur.Gauges {
		reg.Gauge(fmt.Sprintf("%s%s.w%d", obs.MetricFleetWorkersPrefix, name, slotID)).Set(v)
	}
	for name, h := range cur.Histograms {
		if d := histDelta(prev.Histograms[name], h); d.Count != 0 {
			reg.Histogram(obs.MetricFleetWorkersPrefix + name).Merge(d)
		}
	}
}

// histDelta computes what a worker histogram gained since the
// previously accepted snapshot. Count, sum, and power-of-two buckets
// are monotonic within one worker process, so they subtract exactly;
// min/max are lifetime values, which widen correctly under Merge. A
// count regression means a restarted worker: the whole new histogram
// is the delta.
func histDelta(prev, cur obs.HistogramSnapshot) obs.HistogramSnapshot {
	if prev.Count == 0 || cur.Count < prev.Count {
		return cur
	}
	d := obs.HistogramSnapshot{
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
		Min:   cur.Min,
		Max:   cur.Max,
	}
	if len(cur.Buckets) > 0 {
		d.Buckets = make(map[int]int64, len(cur.Buckets))
		for e, n := range cur.Buckets {
			if dn := n - prev.Buckets[e]; dn > 0 {
				d.Buckets[e] = dn
			}
		}
	}
	return d
}

// WorkerMetrics returns the merged fleet.workers.* view of every
// worker registry snapshot aggregated so far — the names keep their
// prefix. Empty when metric shipping is off or nothing has arrived.
func (c *Coordinator) WorkerMetrics() obs.Snapshot {
	full := c.rt.Metrics.Snapshot()
	var out obs.Snapshot
	for k, v := range full.Counters {
		if strings.HasPrefix(k, obs.MetricFleetWorkersPrefix) {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] = v
		}
	}
	for k, v := range full.Gauges {
		if strings.HasPrefix(k, obs.MetricFleetWorkersPrefix) {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[k] = v
		}
	}
	for k, v := range full.Histograms {
		if strings.HasPrefix(k, obs.MetricFleetWorkersPrefix) {
			if out.Histograms == nil {
				out.Histograms = make(map[string]obs.HistogramSnapshot)
			}
			out.Histograms[k] = v
		}
	}
	return out
}

// dupRefused records a duplicate or stale frame refused by the
// exactly-once dedup (network duplication, or a reply that outlived
// its lease across a reconnect).
func (c *Coordinator) dupRefused(s *slot, key string, attempt int) {
	c.counter(obs.MetricFleetNetDupRefused).Add(1)
	c.statAdd(func(st *Stats) { st.DupRefused++ })
	c.event(Event{Type: EventDupRefused, Worker: s.id, Key: key, Attempt: attempt,
		Detail: "duplicate or stale frame refused by the exactly-once dedup"})
}

// Evaluate implements search.Evaluator.
func (c *Coordinator) Evaluate(a transform.Assignment) *search.Evaluation {
	return c.EvaluateSpan(nil, a)
}

// EvaluateSpan implements search.SpanEvaluator: one fleet.lease child
// span covers the queue wait and the worker round trip (including
// reassignments of this submission's lease are separate Evaluate calls
// made by the supervisor's retry). A worker failure panics with a
// *WorkerFault for the supervisor; after a degrade the evaluation runs
// in-process on Runtime.Local.
func (c *Coordinator) EvaluateSpan(sp *obs.Span, a transform.Assignment) *search.Evaluation {
	if c.isDegraded() {
		return c.localEval(sp, a)
	}
	key := a.Key()
	c.mu.Lock()
	c.attempts[key]++
	attempt := c.attempts[key]
	c.mu.Unlock()

	fsp := sp.Child(obs.SpanFleetLease)
	fsp.Attr("key", key)
	fsp.AttrInt("attempt", int64(attempt))
	defer fsp.End()

	j := c.q.submit(a, key, attempt, fsp.ID())
	for {
		select {
		case o := <-j.done:
			return c.settle(fsp, a, o)
		case <-c.degradedCh:
			if c.q.withdraw(j) {
				fsp.Attr("outcome", "degraded")
				return c.localEval(sp, a)
			}
			// Already leased: the failing worker path resolves it.
			select {
			case o := <-j.done:
				return c.settle(fsp, a, o)
			case <-c.ctx.Done():
				fsp.Attr("outcome", "cancelled")
				panic(search.NewCancelled(context.Cause(c.ctx)))
			}
		case <-c.ctx.Done():
			fsp.Attr("outcome", "cancelled")
			panic(search.NewCancelled(context.Cause(c.ctx)))
		}
	}
}

// settle turns a job outcome into a return or a supervisor-bound panic.
func (c *Coordinator) settle(fsp *obs.Span, a transform.Assignment, o outcome) *search.Evaluation {
	if o.fault != nil {
		fsp.Attr("outcome", "fault")
		fsp.Attr("kind", kindOrClassify(o.fault))
		panic(o.fault)
	}
	o.ev.Assignment = a
	fsp.Attr("outcome", o.ev.Status.String())
	return o.ev
}

// localEval answers one evaluation in-process (degraded mode).
func (c *Coordinator) localEval(sp *obs.Span, a transform.Assignment) *search.Evaluation {
	c.counter(obs.MetricFleetLocalEvals).Add(1)
	c.statAdd(func(st *Stats) { st.LocalEvals++ })
	return search.Evaluate(c.rt.Local, sp, a)
}
