package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/search"
)

// Network-worker defaults.
const (
	// DefaultHeartbeatMissLimit is how many consecutive failed
	// heartbeat sends make the worker treat its link as dead and
	// reconnect (rather than exit — flaky links are survivable).
	DefaultHeartbeatMissLimit = 3
	// DefaultDialTimeout bounds one connection attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultReconnectBackoff is the base of the capped-exponential
	// backoff between dial attempts (doubling, capped at 32x).
	DefaultReconnectBackoff = 200 * time.Millisecond
	// DefaultMaxDials bounds one reconnect's dial attempts; past it
	// the worker gives up and ServeNet returns the dial error.
	DefaultMaxDials = 10
)

// NetServeConfig configures a dialing network worker (`prose worker
// -connect`).
type NetServeConfig struct {
	// Addr is the coordinator's listen address (required unless Dial
	// is set).
	Addr string
	// Eval evaluates leases (required); in `prose worker` it is the
	// worker's own core.Tuner.
	Eval search.Evaluator
	// Fingerprint is the evaluation fingerprint sent in the handshake
	// (required); the coordinator rejects workers that disagree.
	Fingerprint string
	// Session identifies this worker across reconnects (default: a
	// random hex ID). The coordinator routes a reconnecting session
	// back to its slot so a parked lease can be re-adopted.
	Session string
	// Heartbeat is the liveness interval while evaluating (default
	// DefaultHeartbeat; must match the coordinator's).
	Heartbeat time.Duration
	// HeartbeatMissLimit is how many consecutive failed heartbeat
	// sends trigger a reconnect (default DefaultHeartbeatMissLimit).
	HeartbeatMissLimit int
	// SendTimeout bounds one frame's write (default DefaultSendTimeout).
	SendTimeout time.Duration
	// DialTimeout bounds one connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// ReconnectBackoff is the base backoff between dial attempts
	// (default DefaultReconnectBackoff; doubles, capped at 32x).
	ReconnectBackoff time.Duration
	// MaxDials bounds one reconnect's attempts (default DefaultMaxDials).
	MaxDials int
	// Fault is the fault-injection configuration (zero = none).
	Fault WorkerFaults
	// Dial overrides the TCP dial (tests inject failing or recording
	// transports here). The returned transport carries no handshake;
	// the link layer sends ready itself.
	Dial func() (Transport, error)
}

func (cfg *NetServeConfig) withDefaults() {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.HeartbeatMissLimit <= 0 {
		cfg.HeartbeatMissLimit = DefaultHeartbeatMissLimit
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	if cfg.MaxDials <= 0 {
		cfg.MaxDials = DefaultMaxDials
	}
	if cfg.Session == "" {
		var b [8]byte
		rand.Read(b[:])
		cfg.Session = hex.EncodeToString(b[:])
	}
}

// netLink is a worker's self-healing connection to the coordinator:
// one live transport plus the session state (in-flight lease, pending
// reply) that must survive a reconnect so the handshake can resume the
// session instead of abandoning its work.
type netLink struct {
	cfg *NetServeConfig

	// mu serializes redials; gen increments per established
	// connection so concurrent failure observers (the heartbeat
	// goroutine, the main loop) trigger at most one redial each.
	mu  sync.Mutex
	tr  Transport
	gen int

	// stateMu guards the resume state carried across reconnects.
	stateMu   sync.Mutex
	lastLease int64
	pending   *Msg
}

// current returns the live transport and its generation.
func (lk *netLink) current() (Transport, int) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	return lk.tr, lk.gen
}

// setLease records a newly granted lease. A new grant also proves the
// previous pending reply was delivered (or its lease superseded), so
// it is dropped.
func (lk *netLink) setLease(id int64) {
	lk.stateMu.Lock()
	lk.lastLease = id
	lk.pending = nil
	lk.stateMu.Unlock()
}

// setPending records the reply for the in-flight lease so a reconnect
// can re-offer it: the reply is either the first delivery or a
// duplicate the coordinator's dedup refuses — never lost.
func (lk *netLink) setPending(m Msg) {
	lk.stateMu.Lock()
	lk.pending = &m
	lk.stateMu.Unlock()
}

// resume snapshots the session state for a handshake.
func (lk *netLink) resume() (int64, *Msg) {
	lk.stateMu.Lock()
	defer lk.stateMu.Unlock()
	return lk.lastLease, lk.pending
}

// redial re-establishes the link after the connection of generation
// gen failed. Single-flight: a concurrent observer of the same dead
// generation blocks and then reuses the fresh connection. Dial
// attempts back off capped-exponentially up to MaxDials; past that the
// worker gives up and the error is returned.
func (lk *netLink) redial(gen int) (Transport, error) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if lk.gen != gen {
		return lk.tr, nil
	}
	if lk.tr != nil {
		lk.tr.Close()
		lk.tr = nil
	}
	backoff := lk.cfg.ReconnectBackoff
	for attempt := 1; ; attempt++ {
		tr, err := lk.dialOnce()
		if err == nil {
			lk.tr = tr
			lk.gen++
			return tr, nil
		}
		if attempt >= lk.cfg.MaxDials {
			return nil, fmt.Errorf("fleet: giving up after %d dial attempt(s): %w", attempt, err)
		}
		time.Sleep(backoff)
		if backoff < 32*lk.cfg.ReconnectBackoff {
			backoff *= 2
		}
	}
}

// dialOnce makes one connection and resumes the session on it: the
// ready handshake carries the session ID and the in-flight lease, and
// a pending reply is re-offered immediately (the coordinator's dedup
// refuses it if the first copy landed).
func (lk *netLink) dialOnce() (Transport, error) {
	tr, err := lk.cfg.Dial()
	if err != nil {
		return nil, err
	}
	last, pending := lk.resume()
	if err := tr.Send(Msg{Type: MsgReady, Fingerprint: lk.cfg.Fingerprint,
		Session: lk.cfg.Session, LastLease: last}); err != nil {
		tr.Close()
		return nil, err
	}
	if pending != nil {
		if err := tr.Send(*pending); err != nil {
			tr.Close()
			return nil, err
		}
	}
	return tr, nil
}

// sendReply delivers a lease's reply, reconnecting on failure (the
// redial's handshake re-offers the pending reply itself).
func (lk *netLink) sendReply(m Msg) error {
	tr, gen := lk.current()
	if err := tr.Send(m); err != nil {
		_, rerr := lk.redial(gen)
		return rerr
	}
	return nil
}

// heartbeats beats on the link until stopped. Unlike the pipe worker —
// where one failed send means the coordinator is gone and the process
// exits — a network worker tolerates flaky sends: only
// HeartbeatMissLimit consecutive failures declare the link dead and
// trigger a reconnect. Each beat piggybacks the worker's pending
// observability payload when shipping is on.
func (lk *netLink) heartbeats(lease int64, wo *workerObs) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(lk.cfg.Heartbeat)
		defer t.Stop()
		misses := 0
		for {
			select {
			case <-t.C:
				tr, gen := lk.current()
				hb := Msg{Type: MsgHeartbeat, Lease: lease}
				if wo != nil {
					wo.attach(&hb)
				}
				if err := tr.Send(hb); err != nil {
					misses++
					if misses >= lk.cfg.HeartbeatMissLimit {
						misses = 0
						if _, rerr := lk.redial(gen); rerr != nil {
							return
						}
					}
					continue
				}
				misses = 0
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// ServeNet runs a dialing network worker's lease loop: connect,
// handshake, serve leases, and ride out connection losses by
// reconnecting with session resume — in-flight work is never
// abandoned, and its reply is delivered exactly once (the
// coordinator's monotonic-lease dedup refuses duplicates). It returns
// nil on an orderly shutdown frame and an error when the coordinator
// stays unreachable past the dial budget.
func ServeNet(cfg NetServeConfig) error {
	if cfg.Eval == nil {
		return fmt.Errorf("fleet: ServeNet needs Eval")
	}
	if cfg.Addr == "" && cfg.Dial == nil {
		return fmt.Errorf("fleet: ServeNet needs Addr or Dial")
	}
	cfg.withDefaults()
	if cfg.Dial == nil {
		addr, dialTO, sendTO := cfg.Addr, cfg.DialTimeout, cfg.SendTimeout
		cfg.Dial = func() (Transport, error) {
			conn, err := net.DialTimeout("tcp", addr, dialTO)
			if err != nil {
				return nil, err
			}
			return NewNetTransport(conn, sendTO), nil
		}
	}
	lk := &netLink{cfg: &cfg}
	wo := &workerObs{}
	if _, err := lk.redial(0); err != nil {
		return err
	}
	// gotFrame tracks whether the current connection delivered anything:
	// a connection dropped before its first frame (a full pool, a
	// partition window) earns a backoff so redials cannot hot-spin.
	gotFrame := false
	lastGen := 1
	for {
		tr, gen := lk.current()
		if gen != lastGen {
			lastGen, gotFrame = gen, false
		}
		m, err := tr.Recv()
		if err != nil {
			if !gotFrame {
				time.Sleep(cfg.ReconnectBackoff)
			}
			if _, rerr := lk.redial(gen); rerr != nil {
				return rerr
			}
			continue
		}
		gotFrame = true
		switch m.Type {
		case MsgShutdown:
			tr.Close()
			return nil
		case MsgLease:
			if last, pending := lk.resume(); m.Lease == last && last != 0 {
				// A duplicated grant of work this session already holds:
				// re-offer the reply if it is done, ignore otherwise.
				if pending != nil {
					if err := lk.sendReply(*pending); err != nil {
						return err
					}
				}
				continue
			}
			lk.setLease(m.Lease)
			wo.enable(m.Obs, cfg.Eval)
			cfg.Fault.preEval(m.Key, m.Attempt)
			stop := lk.heartbeats(m.Lease, wo)
			sp := wo.leaseSpan(m)
			ev, fault, faulted, persistent := runEval(cfg.Eval, m.Assignment, sp, wo.registry())
			cfg.Fault.preReply(m.Key, m.Attempt)
			stop()
			var reply Msg
			if faulted {
				reply = Msg{Type: MsgFault, Lease: m.Lease, Fault: fault, Persistent: persistent}
			} else {
				rec := journal.FromEvaluation(cfg.Fingerprint, ev)
				reply = Msg{Type: MsgResult, Lease: m.Lease, Result: &rec}
			}
			// Overflow span batches go out best-effort on the live link
			// (a dead link loses them; the reply itself is what session
			// resume protects). The reply's own obs payload is attached
			// before setPending so a re-offered duplicate carries the
			// same sequence number and the coordinator splices it at
			// most once.
			_ = wo.shipOverflow(func(hb Msg) error {
				if tr, _ := lk.current(); tr != nil {
					_ = tr.Send(hb)
				}
				return nil
			}, m.Lease)
			wo.attach(&reply)
			lk.setPending(reply)
			if err := lk.sendReply(reply); err != nil {
				return err
			}
		}
	}
}
