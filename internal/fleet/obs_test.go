package fleet

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
)

// TestFleetShipsWorkerSpansAndMetrics is the distributed-observability
// acceptance test at the fleet layer: real subprocess workers receive
// trace context in their lease grants, run worker.eval spans under the
// propagated fleet.lease parent, and ship them back with cumulative
// metric snapshots; the coordinator splices the spans into per-worker
// pid lanes and merges the metrics into fleet.workers.*.
func TestFleetShipsWorkerSpansAndMetrics(t *testing.T) {
	tracer := obs.NewTracer(stubFingerprint)
	reg := obs.NewRegistry()
	c := startFleet(t, Config{Workers: 2, Spawn: stubSpawn(), Heartbeat: 50 * time.Millisecond},
		Runtime{Trace: tracer, Metrics: reg})
	root := tracer.Root("tune")
	const evals = 4
	for i := 1; i <= evals; i++ {
		if ev := c.EvaluateSpan(root, asn(i)); ev.Status != search.StatusPass {
			t.Fatalf("eval %d: status %v", i, ev.Status)
		}
	}
	root.End()
	c.Close()

	recs := tracer.Drain()
	leases := map[obs.SpanID]obs.SpanRecord{}
	for _, r := range recs {
		if r.Name == obs.SpanFleetLease {
			leases[r.ID] = r
		}
	}
	var workerSpans int
	for _, r := range recs {
		if r.Name != obs.SpanWorkerEval {
			continue
		}
		workerSpans++
		if r.Worker < 0 || r.Worker >= 2 || r.PID != obs.WorkerPIDBase+r.Worker {
			t.Errorf("worker.eval span in pid %d / worker %d; want pid = %d + slot",
				r.PID, r.Worker, obs.WorkerPIDBase)
		}
		parent, ok := leases[r.Parent]
		if !ok {
			t.Errorf("worker.eval span %s is not parented under a fleet.lease span", r.ID)
			continue
		}
		// The rebased child must sit inside its parent's lane: it starts
		// at or after the lease span, and the gap is the queue wait plus
		// the grant's flight time — exactly what `prose trace` renders
		// as lease-wait vs on-worker run time.
		if r.Start < parent.Start {
			t.Errorf("worker.eval starts %v before its fleet.lease parent %v", r.Start, parent.Start)
		}
	}
	if workerSpans != evals {
		t.Errorf("worker.eval spans spliced = %d, want %d", workerSpans, evals)
	}

	snap := reg.Snapshot()
	if h := snap.Histograms[obs.MetricFleetWorkersPrefix+obs.HistEvalRunNS]; h.Count != evals {
		t.Errorf("merged %s%s count = %d, want %d",
			obs.MetricFleetWorkersPrefix, obs.HistEvalRunNS, h.Count, evals)
	}
	if n := snap.Counters[obs.MetricFleetObsSpans]; n != evals {
		t.Errorf("fleet_obs_spans = %d, want %d", n, evals)
	}
	if n := snap.Counters[obs.MetricFleetObsSnapshots]; n < evals {
		t.Errorf("fleet_obs_snapshots = %d, want >= %d", n, evals)
	}
	// WorkerMetrics filters to exactly the shipped namespace.
	wm := c.WorkerMetrics()
	if _, ok := wm.Histograms[obs.MetricFleetWorkersPrefix+obs.HistEvalRunNS]; !ok {
		t.Error("WorkerMetrics lacks the merged eval_run_ns histogram")
	}
	for name := range wm.Counters {
		if len(name) < len(obs.MetricFleetWorkersPrefix) || name[:len(obs.MetricFleetWorkersPrefix)] != obs.MetricFleetWorkersPrefix {
			t.Errorf("WorkerMetrics leaked non-worker counter %q", name)
		}
	}
}

// TestSpliceObsDropsStaleFrames pins the ObsSeq dedup: a chaos
// transport can delay, duplicate, or reorder frames, so a metric
// snapshot arriving out of order must not roll the merged view back to
// a stale eval count, and a duplicated span batch must splice at most
// once.
func TestSpliceObsDropsStaleFrames(t *testing.T) {
	c, err := New(Config{Workers: 1, Spawn: stubSpawn()})
	if err != nil {
		t.Fatal(err)
	}
	c.rt = Runtime{Trace: obs.NewTracer("splice"), Metrics: obs.NewRegistry()}
	s := &slot{id: 0}

	snap := func(evals int64) *obs.Snapshot {
		return &obs.Snapshot{Counters: map[string]int64{"evals": evals}}
	}
	spans := func(id uint64) []obs.SpanRecord {
		return []obs.SpanRecord{{ID: obs.SpanID(id), Name: obs.SpanWorkerEval,
			Start: time.Millisecond, Dur: time.Millisecond}}
	}
	c.spliceObs(s, Msg{Type: MsgHeartbeat, ObsSeq: 1, MetricsSnap: snap(2), Spans: spans(1), TraceNow: 1})
	c.spliceObs(s, Msg{Type: MsgHeartbeat, ObsSeq: 3, MetricsSnap: snap(5), Spans: spans(2), TraceNow: 1})
	// The chaos-delayed middle frame lands late: stale, dropped.
	c.spliceObs(s, Msg{Type: MsgHeartbeat, ObsSeq: 2, MetricsSnap: snap(3), Spans: spans(3), TraceNow: 1})
	// A duplicated copy of the newest frame: stale too, spliced never.
	c.spliceObs(s, Msg{Type: MsgResult, ObsSeq: 3, MetricsSnap: snap(5), Spans: spans(2), TraceNow: 1})

	got := c.rt.Metrics.Snapshot()
	if n := got.Counters[obs.MetricFleetWorkersPrefix+"evals"]; n != 5 {
		t.Errorf("merged evals = %d, want 5 (a stale snapshot was merged)", n)
	}
	if n := got.Counters[obs.MetricFleetObsStale]; n != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricFleetObsStale, n)
	}
	if n := len(c.rt.Trace.Drain()); n != 2 {
		t.Errorf("spliced spans = %d, want 2 (batches 1 and 2, once each)", n)
	}
	if s.obsSeq != 3 {
		t.Errorf("slot obsSeq = %d, want 3", s.obsSeq)
	}
}

// TestDebugFleetHandlerRace hammers /debug/fleet while the fleet is
// granting leases and splicing worker observability shipments: every
// response must be a complete, decodable FleetStatus document, and the
// race detector must see no unsynchronized read of worker state.
func TestDebugFleetHandlerRace(t *testing.T) {
	tracer := obs.NewTracer(stubFingerprint)
	reg := obs.NewRegistry()
	c := startFleet(t, Config{Workers: 2, Spawn: stubSpawn(), Heartbeat: 10 * time.Millisecond},
		Runtime{Trace: tracer, Metrics: reg})
	h := c.DebugHandler()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 1; i <= 8; i++ {
			c.Evaluate(asn(i))
		}
	}()
	for polling := true; polling; {
		select {
		case <-done:
			polling = false
		default:
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet", nil))
		var st FleetStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("undecodable /debug/fleet response: %v\n%s", err, rec.Body.String())
		}
		if len(st.Workers) != 2 {
			t.Fatalf("health table has %d workers, want 2", len(st.Workers))
		}
	}
	wg.Wait()
}

// BenchmarkFleetTraceShipping measures the per-lease cost of the
// observability shipping path — open the worker.eval span, drain and
// attach it with a registry snapshot, encode/decode the reply frame,
// splice on the coordinator — against the same reply cycle with
// shipping off (the off side is the frame codec floor every lease pays
// regardless).
func BenchmarkFleetTraceShipping(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			c, err := New(Config{Workers: 1, Spawn: stubSpawn()})
			if err != nil {
				b.Fatal(err)
			}
			var octx *ObsCtx
			if mode == "on" {
				c.rt = Runtime{Trace: obs.NewTracer("bench"), Metrics: obs.NewRegistry()}
				parent := c.rt.Trace.Root("tune")
				defer parent.End()
				octx = &ObsCtx{SpanID: parent.ID().String(), Fingerprint: "bench", Metrics: true}
			}
			s := &slot{id: 0}
			wo := &workerObs{}
			wo.enable(octx, stubEval{})
			if reg := wo.registry(); reg != nil {
				reg.Histogram(obs.HistEvalRunNS).Observe(1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := wo.leaseSpan(Msg{Obs: octx, Lease: int64(i + 1), Key: "k", Attempt: 1})
				sp.End()
				reply := Msg{Type: MsgResult, Lease: int64(i + 1)}
				wo.attach(&reply)
				buf, err := json.Marshal(reply)
				if err != nil {
					b.Fatal(err)
				}
				var m Msg
				if err := json.Unmarshal(buf, &m); err != nil {
					b.Fatal(err)
				}
				c.spliceObs(s, m)
			}
			b.StopTimer()
			if mode == "on" {
				// Keep the splice honest: every iteration's span arrived.
				if n := len(c.rt.Trace.Drain()); n != b.N {
					b.Fatalf("spliced %d spans, want %d", n, b.N)
				}
			}
		})
	}
}
