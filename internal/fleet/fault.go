package fleet

import "repro/internal/resilience"

// WorkerFault is the panic value the coordinator raises when a lease
// cannot be answered: the worker process exited mid-evaluation, stopped
// heartbeating, let the lease expire, or reported an evaluation panic
// of its own. It flows into the resilience supervisor, whose per-kind
// retry budgets turn the fault into a lease reassignment (or, past the
// budget, a quarantine).
//
// Error renders deterministically — no worker IDs, PIDs, or attempt
// counts — because a quarantine detail built from this message lands in
// the journal proper (StatusInfra records) and must be identical across
// runs, resumes, and pool sizes. Worker identity travels in the events
// sidecar instead.
type WorkerFault struct {
	// Key is the canonical assignment key of the failed lease.
	Key string
	// Kind is the resilience fault class (KindSchedulerKill for a dead
	// process, KindHang for a silent or expired one; empty lets
	// FaultKindOf classify from the message, as for worker-reported
	// evaluation faults).
	Kind string
	// Msg is the rendered fault. For worker-reported faults it is the
	// worker's own rendering, verbatim, so in-process and fleet runs
	// quarantine with identical details.
	Msg string
	// Persistent marks a fault retrying cannot cure (a worker-reported
	// persistent evaluation fault, e.g. an injected crash-on-key).
	Persistent bool
}

func (f *WorkerFault) Error() string { return f.Msg }

// FaultKind labels the fault for per-kind retry budgets; an empty Kind
// defers to FaultKindOf's message vocabulary.
func (f *WorkerFault) FaultKind() string { return f.Kind }

// Transient reports whether a retry (a lease reassignment) could
// succeed.
func (f *WorkerFault) Transient() bool { return !f.Persistent }

var _ interface {
	error
	FaultKind() string
	Transient() bool
} = (*WorkerFault)(nil)

// kindOrClassify resolves an explicit kind or falls back to the
// resilience message vocabulary, for sidecar events (the supervisor
// does its own classification independently).
func kindOrClassify(f *WorkerFault) string {
	if f.Kind != "" {
		return f.Kind
	}
	return resilience.FaultKindOf(f)
}
