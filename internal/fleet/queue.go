package fleet

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/transform"
)

// outcome resolves one submitted job: exactly one of ev/fault is set.
type outcome struct {
	ev    *search.Evaluation
	fault *WorkerFault
}

// Job states.
const (
	jobPending = iota // queued, no lease
	jobLeased         // held by a live lease
	jobDone           // resolved (result, fault, or withdrawn)
)

// job is one submitted evaluation awaiting a worker.
type job struct {
	key     string
	a       transform.Assignment
	attempt int
	// span is the submitter's fleet.lease span ID, propagated to the
	// worker in the lease grant so worker-side spans parent under it
	// (0 when tracing is off).
	span obs.SpanID
	// done receives the job's single resolution. Buffered so the
	// resolving goroutine never blocks on a slow submitter.
	done chan outcome

	// state/lease are guarded by the queue mutex.
	state int
	lease int64
}

// lease is one grant of a job to a worker, identified by a monotonic
// ID. The ID is the exactly-once pivot: completing or failing a lease
// whose ID is no longer the job's current lease is a stale operation
// and is refused — a worker that finishes after its lease expired and
// was reassigned cannot double-resolve the job, so the journal sees
// each evaluation exactly once.
type lease struct {
	id       int64
	worker   int
	deadline time.Time
	job      *job
}

// queue is the coordinator's lease-based work queue.
type queue struct {
	mu      sync.Mutex
	pending []*job
	leases  map[int64]*lease
	nextID  int64
	// notify carries "work may be available" wakeups to blocked
	// acquirers; capacity 1, non-blocking sends (see acquire for the
	// re-notify that prevents lost wakeups).
	notify chan struct{}
	// clock supplies lease deadlines; tests inject a fake one to pin
	// TTL edge cases without sleeping.
	clock func() time.Time
}

func newQueue() *queue {
	return &queue{leases: make(map[int64]*lease), notify: make(chan struct{}, 1), clock: time.Now}
}

// submit enqueues one evaluation and returns its job handle.
func (q *queue) submit(a transform.Assignment, key string, attempt int, span obs.SpanID) *job {
	j := &job{key: key, a: a, attempt: attempt, span: span, done: make(chan outcome, 1)}
	q.mu.Lock()
	q.pending = append(q.pending, j)
	q.mu.Unlock()
	q.wake()
	return j
}

func (q *queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// acquire blocks until a pending job is available and grants a lease on
// it, or returns nil when ctx is cancelled.
func (q *queue) acquire(ctx context.Context, worker int, ttl time.Duration) *lease {
	for {
		q.mu.Lock()
		if len(q.pending) > 0 {
			j := q.pending[0]
			q.pending = q.pending[1:]
			more := len(q.pending) > 0
			q.nextID++
			l := &lease{id: q.nextID, worker: worker, deadline: q.clock().Add(ttl), job: j}
			j.state = jobLeased
			j.lease = l.id
			q.leases[l.id] = l
			q.mu.Unlock()
			if more {
				// We may have consumed the only wakeup token while other
				// acquirers sleep on remaining work; hand the token back.
				q.wake()
			}
			return l
		}
		q.mu.Unlock()
		select {
		case <-q.notify:
		case <-ctx.Done():
			return nil
		}
	}
}

// resolve settles the lease with an outcome if it is still the job's
// current lease. It reports false — and delivers nothing — for a stale
// lease: the job expired and was reassigned (or already resolved), and
// this late completion must be dropped.
func (q *queue) resolve(id int64, o outcome) bool {
	q.mu.Lock()
	l, ok := q.leases[id]
	if !ok || l.job.state != jobLeased || l.job.lease != id {
		q.mu.Unlock()
		return false
	}
	delete(q.leases, id)
	l.job.state = jobDone
	q.mu.Unlock()
	l.job.done <- o
	return true
}

// touch reports whether a heartbeat keeps its lease: true only while
// the lease is current and unexpired. It never extends the deadline —
// a heartbeat that arrives after expiry cannot resurrect the lease,
// however delayed the frame was.
func (q *queue) touch(id int64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[id]
	if !ok || l.job.state != jobLeased || l.job.lease != id {
		return false
	}
	return !q.clock().After(l.deadline)
}

// complete resolves a lease with a successful evaluation; false when
// the lease is stale.
func (q *queue) complete(id int64, ev *search.Evaluation) bool {
	return q.resolve(id, outcome{ev: ev})
}

// fail resolves a lease with a fault; false when the lease is stale.
func (q *queue) fail(id int64, f *WorkerFault) bool {
	return q.resolve(id, outcome{fault: f})
}

// withdraw removes a still-pending job (the degrade-to-local path pulls
// unleased work back for in-process evaluation). Reports false if the
// job is leased or resolved — the caller must then await its outcome.
func (q *queue) withdraw(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state != jobPending {
		return false
	}
	for i, p := range q.pending {
		if p == j {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			break
		}
	}
	j.state = jobDone
	return true
}
