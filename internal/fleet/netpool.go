package fleet

import (
	"fmt"
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// NetConfig makes the coordinator accept dialing network workers
// (`prose worker -connect`) instead of spawning subprocesses. The
// same JSONL Msg protocol runs over the accepted connections; workers
// register into the same lease queue, authenticate with the same
// fingerprint handshake, and are health-checked by the same
// heartbeat/TTL machinery — a partitioned worker degrades exactly
// like a SIGKILLed one, except that its session may reconnect and
// re-adopt its in-flight lease.
type NetConfig struct {
	// Listener accepts worker connections (required). The coordinator
	// owns it: it is closed when the fleet shuts down.
	Listener net.Listener
	// SendTimeout bounds one frame's write per connection (default
	// DefaultSendTimeout).
	SendTimeout time.Duration
	// Chaos injects deterministic network faults on every accepted
	// connection (nil = none); see ChaosConfig and the
	// `-fleet-chaos-*` flags.
	Chaos *ChaosConfig
}

// netConn is one admitted worker connection, handed from the accept
// loop to a slot.
type netConn struct {
	tr      Transport
	raw     net.Conn
	session string
	// lastLease is the lease the worker claims to still hold in
	// flight (0 = none); adoptOrphan checks it against the slot's
	// parked lease.
	lastLease int64
}

// acceptLoop admits worker connections until the listener closes
// (which the shutdown path guarantees on ctx cancellation).
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.cfg.Net.Listener.Accept()
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			// Transient accept failure (e.g. EMFILE); brief pause.
			select {
			case <-time.After(10 * time.Millisecond):
			case <-c.ctx.Done():
				return
			}
			continue
		}
		c.wg.Add(1)
		go c.admit(conn)
	}
}

// admit performs the handshake on one freshly accepted connection and
// routes it to a worker slot: back to its session's bound slot on a
// reconnect, else to the first free one. The ready frame is read off
// the raw transport — before chaos wrapping — so an injected fault can
// never starve the handshake and reconnects always make progress.
func (c *Coordinator) admit(conn net.Conn) {
	defer c.wg.Done()
	// Abort a handshake in flight when the fleet shuts down.
	hsDone := make(chan struct{})
	defer close(hsDone)
	go func() {
		select {
		case <-c.ctx.Done():
			conn.Close()
		case <-hsDone:
		}
	}()

	if c.nchaos.partitioned() {
		// A hard partition window is open: the network "eats" the dial.
		conn.Close()
		return
	}
	raw := NewNetTransport(conn, c.cfg.Net.SendTimeout)
	conn.SetReadDeadline(time.Now().Add(c.cfg.ReadyTimeout))
	m, err := raw.Recv()
	if err != nil || m.Type != MsgReady || m.Session == "" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if m.Fingerprint != c.rt.Fingerprint {
		detail := fmt.Sprintf("worker fingerprint %.12s... does not match coordinator %.12s... (its evaluations would not reproduce the journal)",
			m.Fingerprint, c.rt.Fingerprint)
		c.event(Event{Type: EventFingerprintMismatch, Worker: -1, Detail: detail})
		conn.Close()
		return
	}
	tr := newReplayTransport(c.nchaos.wrap(raw, func() { conn.Close() }), m)
	nc := &netConn{tr: tr, raw: conn, session: m.Session, lastLease: m.LastLease}

	c.mu.Lock()
	if c.ctx.Err() != nil {
		c.mu.Unlock()
		conn.Close()
		return
	}
	s := c.sessions[m.Session]
	if s == nil {
		for _, cand := range c.slots {
			if cand.session == "" && cand.state != StateDead {
				s = cand
				break
			}
		}
		if s == nil {
			// Pool full: every slot is bound or retired.
			c.mu.Unlock()
			conn.Close()
			return
		}
		s.session = m.Session
		c.sessions[m.Session] = s
	}
	if s.state == StateDead {
		c.mu.Unlock()
		conn.Close()
		return
	}
	reconnect := c.seenSessions[m.Session]
	c.seenSessions[m.Session] = true
	// The newest dial wins: drop an unclaimed queued connection and
	// sever the live one so its serve loop winds down.
	select {
	case old := <-s.netCh:
		old.tr.Close()
	default:
	}
	if s.netLive != nil {
		s.netLive.Close()
		s.netLive = nil
	}
	s.netCh <- nc
	sid := s.id
	c.mu.Unlock()

	c.counter(obs.MetricFleetNetSessions).Add(1)
	if reconnect {
		c.counter(obs.MetricFleetNetReconnects).Add(1)
		c.statAdd(func(st *Stats) { st.Reconnects++ })
		c.event(Event{Type: EventWorkerReconnect, Worker: sid,
			Detail: fmt.Sprintf("session %s reconnected", m.Session)})
	}
}

// awaitConn blocks until the accept loop hands the slot a connection
// or the fleet shuts down.
func (c *Coordinator) awaitConn(s *slot) *netConn {
	select {
	case nc := <-s.netCh:
		return nc
	case <-c.ctx.Done():
		return nil
	}
}

// netSlotLoop owns one worker slot in network mode: wait for a
// connection, serve it, and on connection loss wait for the session's
// reconnect. Only protocol breaches (exitCrash) charge the restart
// budget — partitions and expiries are the network's fault, not the
// peer's, and a session may ride out any number of them.
func (c *Coordinator) netSlotLoop(s *slot) {
	for {
		if c.ctx.Err() != nil {
			c.setState(s, StateStopped)
			return
		}
		c.setState(s, StateSpawning)
		nc := c.awaitConn(s)
		if nc == nil {
			c.setState(s, StateStopped)
			return
		}
		c.mu.Lock()
		s.netLive = nc.raw
		c.mu.Unlock()
		c.rt.Metrics.Gauge(obs.GaugeFleetWorkersAlive).Set(float64(c.aliveProcs(+1)))
		reason, detail := c.serveWorker(s, nc.tr, nc)
		nc.tr.Close()
		c.mu.Lock()
		if s.netLive == nc.raw {
			s.netLive = nil
		}
		// Keep the session bound while a parked lease or a queued
		// reconnect needs it; otherwise free the slot for any session.
		if s.orphan == nil && len(s.netCh) == 0 && s.session != "" {
			delete(c.sessions, s.session)
			s.session = ""
		}
		c.mu.Unlock()
		c.rt.Metrics.Gauge(obs.GaugeFleetWorkersAlive).Set(float64(c.aliveProcs(-1)))
		switch reason {
		case exitShutdown:
			c.setState(s, StateStopped)
			return
		case exitMismatch:
			c.retire(s, detail)
			return
		case exitPartition, exitExpired, exitLost:
			c.mu.Lock()
			s.lastFault = detail
			c.mu.Unlock()
			continue
		}
		// exitCrash: a protocol breach (malformed frame, corrupt
		// result, bad handshake). No process to respawn, but the
		// restart budget still bounds a misbehaving peer.
		c.mu.Lock()
		s.lastFault = detail
		restarts := s.restarts
		c.mu.Unlock()
		if restarts >= c.cfg.MaxRestarts {
			c.retire(s, fmt.Sprintf("restart budget (%d) spent; last: %s", c.cfg.MaxRestarts, detail))
			return
		}
		c.mu.Lock()
		s.restarts++
		c.mu.Unlock()
		c.rt.Metrics.Gauge(fmt.Sprintf("%s%d", obs.GaugeFleetWorkerRestartsPrefix, s.id)).Set(float64(restarts + 1))
	}
}

// parkOrphan holds a lease whose connection was lost, pending the
// session's reconnect. The orphan timer fails it at the lease's
// original deadline — parking never extends the TTL, so a lease is
// either re-adopted intact or expires exactly when it always would.
func (c *Coordinator) parkOrphan(s *slot, l *lease) {
	c.mu.Lock()
	s.orphan = l
	s.orphanTimer = time.AfterFunc(time.Until(l.deadline), func() { c.expireOrphan(s, l) })
	c.mu.Unlock()
}

// expireOrphan fires when a parked lease reaches its deadline without
// its worker reconnecting: the lease is failed for reassignment and
// the session unbound.
func (c *Coordinator) expireOrphan(s *slot, l *lease) {
	if c.ctx.Err() != nil {
		return
	}
	c.mu.Lock()
	if s.orphan != l {
		// Adopted (or superseded) in the meantime.
		c.mu.Unlock()
		return
	}
	s.orphan = nil
	s.orphanTimer = nil
	if s.netLive == nil && len(s.netCh) == 0 && s.session != "" {
		delete(c.sessions, s.session)
		s.session = ""
	}
	c.mu.Unlock()
	c.failOrphan(s, l)
}

// failOrphan fails a parked lease as a hang fault (the supervised
// retry reassigns it) and records the partition expiry. The fault
// message is deterministic — no session IDs, slots, or timing — so a
// quarantine that eventually records it keeps the journal
// byte-identical across runs.
func (c *Coordinator) failOrphan(s *slot, l *lease) {
	if !c.q.fail(l.id, &WorkerFault{Key: l.job.key, Kind: resilience.KindHang,
		Msg: fmt.Sprintf("fleet: lease on %q was lost to a network partition; reassigning", l.job.key)}) {
		return
	}
	c.counter(obs.MetricFleetNetPartitionExpired).Add(1)
	c.statAdd(func(st *Stats) { st.PartitionExpired++ })
	c.event(Event{Type: EventPartitionExpired, Worker: s.id, Key: l.job.key, Attempt: l.job.attempt,
		Kind: resilience.KindHang, Detail: "parked lease expired before its worker reconnected"})
}

// adoptOrphan hands a reconnecting session its parked lease back —
// but only if the worker still holds exactly that lease in flight. A
// mismatch means the worker restarted (or never got the grant): the
// parked work cannot complete, so it is expired immediately rather
// than waiting out the TTL.
func (c *Coordinator) adoptOrphan(s *slot, nc *netConn) *lease {
	c.mu.Lock()
	l := s.orphan
	if l == nil {
		c.mu.Unlock()
		return nil
	}
	s.orphan = nil
	if s.orphanTimer != nil {
		s.orphanTimer.Stop()
		s.orphanTimer = nil
	}
	c.mu.Unlock()
	if nc.lastLease != l.id {
		c.failOrphan(s, l)
		return nil
	}
	c.mu.Lock()
	s.state = StateBusy
	s.currentKey = l.job.key
	s.lastBeat = time.Now()
	c.mu.Unlock()
	return l
}
