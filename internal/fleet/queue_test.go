package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/search"
)

func TestQueueExactlyOnceDedup(t *testing.T) {
	q := newQueue()
	j := q.submit(asn(1), asn(1).Key(), 1)
	l := q.acquire(context.Background(), 0, time.Minute)
	if l == nil || l.job != j {
		t.Fatal("acquire did not grant the submitted job")
	}
	// The lease is failed (as lease expiry would): the job resolves with
	// the fault, and the original lease ID goes stale.
	if !q.fail(l.id, &WorkerFault{Key: j.key, Msg: "expired"}) {
		t.Fatal("first fail refused")
	}
	o := <-j.done
	if o.fault == nil {
		t.Fatal("job resolved without the fault")
	}
	// A late completion on the stale lease must be refused and deliver
	// nothing — the exactly-once pivot.
	if q.complete(l.id, &search.Evaluation{Status: search.StatusPass}) {
		t.Fatal("stale complete accepted")
	}
	select {
	case o := <-j.done:
		t.Fatalf("stale complete delivered a second outcome: %+v", o)
	default:
	}
	// So must a second fault.
	if q.fail(l.id, &WorkerFault{Key: j.key, Msg: "late"}) {
		t.Fatal("stale fail accepted")
	}
}

func TestQueueAcquireOrderAndCancel(t *testing.T) {
	q := newQueue()
	j1 := q.submit(asn(1), "k1", 1)
	j2 := q.submit(asn(2), "k2", 1)
	l1 := q.acquire(context.Background(), 0, time.Minute)
	l2 := q.acquire(context.Background(), 1, time.Minute)
	if l1.job != j1 || l2.job != j2 {
		t.Error("leases not granted in submission order")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if l := q.acquire(ctx, 2, time.Minute); l != nil {
		t.Error("acquire on a cancelled context returned a lease")
	}
}

func TestQueueWithdraw(t *testing.T) {
	q := newQueue()
	j := q.submit(asn(1), "k", 1)
	if !q.withdraw(j) {
		t.Fatal("withdraw of a pending job refused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if l := q.acquire(ctx, 0, time.Minute); l != nil {
		t.Error("withdrawn job still leased")
	}

	j2 := q.submit(asn(2), "k2", 1)
	l := q.acquire(context.Background(), 0, time.Minute)
	if l == nil {
		t.Fatal("acquire failed")
	}
	if q.withdraw(j2) {
		t.Error("withdraw of a leased job accepted; its lease holder must resolve it")
	}
}
