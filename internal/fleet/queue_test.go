package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/search"
)

func TestQueueExactlyOnceDedup(t *testing.T) {
	q := newQueue()
	j := q.submit(asn(1), asn(1).Key(), 1, 0)
	l := q.acquire(context.Background(), 0, time.Minute)
	if l == nil || l.job != j {
		t.Fatal("acquire did not grant the submitted job")
	}
	// The lease is failed (as lease expiry would): the job resolves with
	// the fault, and the original lease ID goes stale.
	if !q.fail(l.id, &WorkerFault{Key: j.key, Msg: "expired"}) {
		t.Fatal("first fail refused")
	}
	o := <-j.done
	if o.fault == nil {
		t.Fatal("job resolved without the fault")
	}
	// A late completion on the stale lease must be refused and deliver
	// nothing — the exactly-once pivot.
	if q.complete(l.id, &search.Evaluation{Status: search.StatusPass}) {
		t.Fatal("stale complete accepted")
	}
	select {
	case o := <-j.done:
		t.Fatalf("stale complete delivered a second outcome: %+v", o)
	default:
	}
	// So must a second fault.
	if q.fail(l.id, &WorkerFault{Key: j.key, Msg: "late"}) {
		t.Fatal("stale fail accepted")
	}
}

// TestLateHeartbeatDoesNotResurrectExpiredLease pins the TTL edge with
// a fake clock: a heartbeat (touch) that arrives after the deadline —
// however delayed the frame was in the network — must not keep or
// revive the lease.
func TestLateHeartbeatDoesNotResurrectExpiredLease(t *testing.T) {
	q := newQueue()
	now := time.Unix(1_000_000, 0)
	q.clock = func() time.Time { return now }
	j := q.submit(asn(1), asn(1).Key(), 1, 0)
	l := q.acquire(context.Background(), 0, time.Minute)
	if l == nil {
		t.Fatal("acquire failed")
	}
	if !q.touch(l.id) {
		t.Fatal("heartbeat on a fresh lease refused")
	}
	// One tick past the deadline: the lease is expired, and no
	// heartbeat can resurrect it.
	now = now.Add(time.Minute + time.Nanosecond)
	if q.touch(l.id) {
		t.Fatal("heartbeat after expiry kept the lease alive")
	}
	// The expiry path still owns the resolution.
	if !q.fail(l.id, &WorkerFault{Key: j.key, Msg: "expired"}) {
		t.Fatal("expiry fail refused")
	}
	if q.touch(l.id) {
		t.Fatal("heartbeat after resolution accepted")
	}
	if o := <-j.done; o.fault == nil {
		t.Fatal("job resolved without the expiry fault")
	}
}

// TestResultRacingExpiryIsRefusedExactlyOnce races a lease's result
// against its own expiry, both orders: whichever resolution lands
// first wins, the loser is refused, and the job sees exactly one
// outcome.
func TestResultRacingExpiryIsRefusedExactlyOnce(t *testing.T) {
	ev := &search.Evaluation{Status: search.StatusPass}

	// Order 1: the expiry fails the lease first; the worker's result,
	// racing in just behind it, must be refused.
	q := newQueue()
	now := time.Unix(1_000_000, 0)
	q.clock = func() time.Time { return now }
	j := q.submit(asn(1), asn(1).Key(), 1, 0)
	l := q.acquire(context.Background(), 0, time.Minute)
	now = now.Add(2 * time.Minute)
	if !q.fail(l.id, &WorkerFault{Key: j.key, Msg: "expired"}) {
		t.Fatal("expiry fail refused")
	}
	if q.complete(l.id, ev) {
		t.Fatal("result accepted after its lease expired and was failed")
	}
	if o := <-j.done; o.fault == nil {
		t.Fatal("expiry outcome lost")
	}
	select {
	case o := <-j.done:
		t.Fatalf("second outcome delivered: %+v", o)
	default:
	}

	// Order 2: the result lands first (the coordinator's expiry tick
	// had not fired yet); the expiry's fail must then be refused.
	q2 := newQueue()
	q2.clock = func() time.Time { return now }
	j2 := q2.submit(asn(2), asn(2).Key(), 1, 0)
	l2 := q2.acquire(context.Background(), 0, time.Minute)
	now = now.Add(2 * time.Minute)
	if !q2.complete(l2.id, ev) {
		t.Fatal("result refused before any expiry resolution")
	}
	if q2.fail(l2.id, &WorkerFault{Key: j2.key, Msg: "expired"}) {
		t.Fatal("expiry fail accepted after the result resolved the lease")
	}
	if o := <-j2.done; o.ev == nil {
		t.Fatal("result outcome lost")
	}
	select {
	case o := <-j2.done:
		t.Fatalf("second outcome delivered: %+v", o)
	default:
	}
}

func TestQueueAcquireOrderAndCancel(t *testing.T) {
	q := newQueue()
	j1 := q.submit(asn(1), "k1", 1, 0)
	j2 := q.submit(asn(2), "k2", 1, 0)
	l1 := q.acquire(context.Background(), 0, time.Minute)
	l2 := q.acquire(context.Background(), 1, time.Minute)
	if l1.job != j1 || l2.job != j2 {
		t.Error("leases not granted in submission order")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if l := q.acquire(ctx, 2, time.Minute); l != nil {
		t.Error("acquire on a cancelled context returned a lease")
	}
}

func TestQueueWithdraw(t *testing.T) {
	q := newQueue()
	j := q.submit(asn(1), "k", 1, 0)
	if !q.withdraw(j) {
		t.Fatal("withdraw of a pending job refused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if l := q.acquire(ctx, 0, time.Minute); l != nil {
		t.Error("withdrawn job still leased")
	}

	j2 := q.submit(asn(2), "k2", 1, 0)
	l := q.acquire(context.Background(), 0, time.Minute)
	if l == nil {
		t.Fatal("acquire failed")
	}
	if q.withdraw(j2) {
		t.Error("withdraw of a leased job accepted; its lease holder must resolve it")
	}
}
