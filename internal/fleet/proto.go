// Package fleet shards variant evaluation across worker subprocesses:
// a coordinator leases evaluations to `prose worker` processes over a
// JSONL pipe protocol, detects crash and hang (process exit, missed
// heartbeats, lease expiry), reassigns expired leases, dedups double
// completions so the journal sees exactly once, and degrades to
// in-process evaluation when the pool collapses below a floor.
//
// The coordinator is a search.Evaluator: worker failures surface as
// panics carrying a *WorkerFault, so the resilience supervisor's
// existing retry/quarantine/breaker taxonomy — per-kind budgets,
// seeded backoff, sidecar events — owns the retry policy, and a lease
// reassignment is just a supervised retry. Because workers reproduce
// the coordinator's evaluations bit for bit (enforced by a fingerprint
// handshake at spawn), the evaluation journal of a tune that absorbed
// worker deaths is byte-identical to a fault-free run's at any pool
// size; worker deaths are visible only in the events sidecar and obs
// metrics.
//
// The wire protocol is deliberately transport-shaped: one Msg struct,
// JSONL framing, and a Transport interface a pipe satisfies today and
// an HTTP/socket transport can satisfy later without touching the
// coordinator or worker loops.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/journal"
)

// Message types. The worker initiates with ready; the coordinator
// grants leases; the worker answers each lease with heartbeats followed
// by exactly one result or fault; shutdown ends the session.
const (
	// MsgReady is the worker's handshake: it carries the worker's
	// evaluation fingerprint, which must equal the coordinator's or the
	// worker is retired (a worker built from different source, machine
	// model, or seed would silently corrupt the journal).
	MsgReady = "ready"
	// MsgLease grants one evaluation: assignment, per-key attempt
	// number, and deadline. The attempt number makes worker-side fault
	// injection deterministic across reassignments: a restarted worker
	// has no memory, so the coordinator carries the attempt count.
	MsgLease = "lease"
	// MsgHeartbeat is the worker's liveness signal while evaluating.
	MsgHeartbeat = "heartbeat"
	// MsgResult answers a lease with the completed evaluation, encoded
	// as a journal.Record so its content key is integrity-checked
	// against the shared fingerprint on arrival.
	MsgResult = "result"
	// MsgFault answers a lease with a worker-side evaluation panic the
	// worker survived (the process is still healthy; only the variant's
	// evaluation infrastructure faulted).
	MsgFault = "fault"
	// MsgShutdown asks the worker to exit cleanly.
	MsgShutdown = "shutdown"
)

// Msg is one frame of the coordinator↔worker protocol. A single struct
// (rather than per-type payloads) keeps the JSONL framing trivial and
// the protocol easy to evolve: unknown fields are ignored on decode.
type Msg struct {
	Type string `json:"type"`
	// Lease identifies the lease a heartbeat/result/fault answers.
	Lease int64 `json:"lease,omitempty"`
	// Key is the canonical assignment key (lease).
	Key string `json:"key,omitempty"`
	// Attempt is the coordinator-tracked 1-based per-key attempt (lease).
	Attempt int `json:"attempt,omitempty"`
	// Assignment is the precision assignment to evaluate (lease).
	Assignment map[string]int `json:"assignment,omitempty"`
	// DeadlineMS is the lease TTL in milliseconds (lease; advisory — the
	// coordinator enforces expiry, the worker may use it to self-limit).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fingerprint is the evaluation fingerprint (ready).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Result is the completed evaluation (result).
	Result *journal.Record `json:"result,omitempty"`
	// Fault is the rendered evaluation panic (fault).
	Fault string `json:"fault,omitempty"`
	// Persistent marks a fault retrying cannot cure (fault).
	Persistent bool `json:"persistent,omitempty"`
}

// Transport carries Msgs between coordinator and worker. Send must be
// safe for concurrent use (the worker heartbeats from a side goroutine
// while evaluating); Recv is called from a single goroutine. Close
// unblocks a pending Recv.
type Transport interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

// pipeTransport is the JSONL-over-pipes transport: one JSON object per
// line. json.Encoder.Encode issues a single Write per message
// (marshal + trailing newline), so frames up to the pipe's atomic
// write size never interleave; the mutex serializes larger ones and
// concurrent senders.
type pipeTransport struct {
	mu  sync.Mutex
	enc *json.Encoder
	dec *json.Decoder
	r   io.Reader
	w   io.Writer
}

// NewPipeTransport wraps a reader/writer pair (typically a subprocess's
// stdout/stdin, or os.Stdin/os.Stdout on the worker side) in the JSONL
// transport.
func NewPipeTransport(r io.Reader, w io.Writer) Transport {
	return &pipeTransport{enc: json.NewEncoder(w), dec: json.NewDecoder(r), r: r, w: w}
}

func (t *pipeTransport) Send(m Msg) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(m)
}

func (t *pipeTransport) Recv() (Msg, error) {
	var m Msg
	if err := t.dec.Decode(&m); err != nil {
		return Msg{}, err
	}
	return m, nil
}

func (t *pipeTransport) Close() error {
	var firstErr error
	if c, ok := t.w.(io.Closer); ok {
		firstErr = c.Close()
	}
	if c, ok := t.r.(io.Closer); ok {
		if err := c.Close(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// decodeResult validates and decodes a MsgResult payload: the record's
// content key must match the shared fingerprint and the leased
// assignment key, exactly as the journal validates its own lines — a
// corrupt pipe or a confused worker cannot smuggle a wrong-variant
// record into the evaluation stream.
func decodeResult(fingerprint, wantKey string, m Msg) (*journal.Record, error) {
	rec := m.Result
	if rec == nil {
		return nil, fmt.Errorf("fleet: result frame without payload")
	}
	if rec.AKey != wantKey {
		return nil, fmt.Errorf("fleet: result for %q answers a lease on %q", rec.AKey, wantKey)
	}
	if rec.Key != journal.RecordKey(fingerprint, rec.AKey) {
		return nil, fmt.Errorf("fleet: result for %q fails its content-key check", rec.AKey)
	}
	return rec, nil
}
