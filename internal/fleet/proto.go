// Package fleet shards variant evaluation across worker subprocesses:
// a coordinator leases evaluations to `prose worker` processes over a
// JSONL pipe protocol, detects crash and hang (process exit, missed
// heartbeats, lease expiry), reassigns expired leases, dedups double
// completions so the journal sees exactly once, and degrades to
// in-process evaluation when the pool collapses below a floor.
//
// The coordinator is a search.Evaluator: worker failures surface as
// panics carrying a *WorkerFault, so the resilience supervisor's
// existing retry/quarantine/breaker taxonomy — per-kind budgets,
// seeded backoff, sidecar events — owns the retry policy, and a lease
// reassignment is just a supervised retry. Because workers reproduce
// the coordinator's evaluations bit for bit (enforced by a fingerprint
// handshake at spawn), the evaluation journal of a tune that absorbed
// worker deaths is byte-identical to a fault-free run's at any pool
// size; worker deaths are visible only in the events sidecar and obs
// metrics.
//
// The wire protocol is deliberately transport-shaped: one Msg struct,
// JSONL framing, and a Transport interface a pipe satisfies today and
// an HTTP/socket transport can satisfy later without touching the
// coordinator or worker loops.
package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/journal"
	"repro/internal/obs"
)

// Message types. The worker initiates with ready; the coordinator
// grants leases; the worker answers each lease with heartbeats followed
// by exactly one result or fault; shutdown ends the session.
const (
	// MsgReady is the worker's handshake: it carries the worker's
	// evaluation fingerprint, which must equal the coordinator's or the
	// worker is retired (a worker built from different source, machine
	// model, or seed would silently corrupt the journal).
	MsgReady = "ready"
	// MsgLease grants one evaluation: assignment, per-key attempt
	// number, and deadline. The attempt number makes worker-side fault
	// injection deterministic across reassignments: a restarted worker
	// has no memory, so the coordinator carries the attempt count.
	MsgLease = "lease"
	// MsgHeartbeat is the worker's liveness signal while evaluating.
	MsgHeartbeat = "heartbeat"
	// MsgResult answers a lease with the completed evaluation, encoded
	// as a journal.Record so its content key is integrity-checked
	// against the shared fingerprint on arrival.
	MsgResult = "result"
	// MsgFault answers a lease with a worker-side evaluation panic the
	// worker survived (the process is still healthy; only the variant's
	// evaluation infrastructure faulted).
	MsgFault = "fault"
	// MsgShutdown asks the worker to exit cleanly.
	MsgShutdown = "shutdown"
)

// Msg is one frame of the coordinator↔worker protocol. A single struct
// (rather than per-type payloads) keeps the JSONL framing trivial and
// the protocol easy to evolve: unknown fields are ignored on decode.
type Msg struct {
	Type string `json:"type"`
	// Lease identifies the lease a heartbeat/result/fault answers.
	Lease int64 `json:"lease,omitempty"`
	// Key is the canonical assignment key (lease).
	Key string `json:"key,omitempty"`
	// Attempt is the coordinator-tracked 1-based per-key attempt (lease).
	Attempt int `json:"attempt,omitempty"`
	// Assignment is the precision assignment to evaluate (lease).
	Assignment map[string]int `json:"assignment,omitempty"`
	// DeadlineMS is the lease TTL in milliseconds (lease; advisory — the
	// coordinator enforces expiry, the worker may use it to self-limit).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fingerprint is the evaluation fingerprint (ready).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Result is the completed evaluation (result).
	Result *journal.Record `json:"result,omitempty"`
	// Fault is the rendered evaluation panic (fault).
	Fault string `json:"fault,omitempty"`
	// Persistent marks a fault retrying cannot cure (fault).
	Persistent bool `json:"persistent,omitempty"`
	// Session identifies a network worker across reconnects (ready).
	// Pipe workers leave it empty: their identity is the pipe itself.
	Session string `json:"session,omitempty"`
	// LastLease is the lease a reconnecting network worker still holds
	// in flight (ready). The coordinator uses it to re-adopt the
	// worker's parked lease — or, on a mismatch, to expire the orphan —
	// so no lease is ever double-honored across a partition.
	LastLease int64 `json:"last_lease,omitempty"`

	// Obs carries the coordinator's trace context on a lease grant; its
	// presence is what switches a worker's local tracing/metrics on
	// (observability stays alloc-free on the worker until the first
	// instrumented lease arrives). Observability fields never influence
	// evaluation and are never fingerprinted.
	Obs *ObsCtx `json:"obs,omitempty"`
	// Spans are completed worker spans shipped back piggybacked on
	// heartbeat/result/fault frames, at most MaxSpanBatch per frame,
	// with Start offsets on the worker's own tracer epoch (the
	// coordinator rebases them using TraceNow).
	Spans []obs.SpanRecord `json:"spans,omitempty"`
	// TraceNow is the sender's tracer-epoch offset (ns) at send time,
	// set on any frame carrying Spans. The coordinator computes
	// epoch skew as (its own Now) − TraceNow and shifts the shipped
	// spans onto its epoch.
	TraceNow int64 `json:"trace_now,omitempty"`
	// MetricsSnap is the worker's full registry snapshot, piggybacked
	// on heartbeat/result/fault frames when metrics shipping is on.
	MetricsSnap *obs.Snapshot `json:"metrics,omitempty"`
	// ObsSeq is the worker's monotonic sequence number covering Spans
	// and MetricsSnap on this frame. Chaos transports can delay,
	// duplicate, or reorder frames; the coordinator accepts only
	// strictly increasing sequences per worker connection, so a stale
	// snapshot can never overwrite a newer one and duplicated span
	// batches splice exactly once.
	ObsSeq int64 `json:"obs_seq,omitempty"`
}

// ObsCtx is the trace context a lease grant propagates to the worker.
type ObsCtx struct {
	// SpanID is the coordinator-side fleet.lease span the worker's
	// spans should parent under (hex, as rendered by SpanID.String).
	SpanID string `json:"span_id,omitempty"`
	// Fingerprint seeds the worker's tracer so its derived span IDs
	// agree with the coordinator's deterministic ID scheme.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Metrics asks the worker to also snapshot and ship its registry.
	Metrics bool `json:"metrics,omitempty"`
}

// MaxSpanBatch caps the span records piggybacked on a single frame.
// 256 records at worst-case attribute load stay well inside MaxFrame;
// a worker with more finished spans ships the overflow on extra
// heartbeat frames rather than growing one frame unboundedly.
const MaxSpanBatch = 256

// Transport carries Msgs between coordinator and worker. Send must be
// safe for concurrent use (the worker heartbeats from a side goroutine
// while evaluating); Recv is called from a single goroutine. Close
// unblocks a pending Recv.
type Transport interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

// MaxFrame caps one JSONL frame (one line, newline included). The
// largest legitimate frame is a result carrying a journal.Record —
// well under a megabyte — so 8 MiB is generous headroom while keeping
// a malicious or corrupt network peer from forcing unbounded buffering.
const MaxFrame = 8 << 20

// FrameError is a typed framing fault: a frame that is oversized,
// truncated mid-line, or not valid JSON. Transports surface it from
// Recv so the coordinator can distinguish a protocol-violating peer
// (retire the connection, fail its lease) from an orderly close.
type FrameError struct {
	// Oversized reports the frame exceeded MaxFrame.
	Oversized bool
	// Len is the number of bytes seen before the frame was abandoned.
	Len int
	// Err is the underlying decode error, if any.
	Err error
}

func (e *FrameError) Error() string {
	if e.Oversized {
		return fmt.Sprintf("fleet: frame exceeds %d-byte cap (read %d bytes)", MaxFrame, e.Len)
	}
	if e.Err != nil {
		return fmt.Sprintf("fleet: malformed frame (%d bytes): %v", e.Len, e.Err)
	}
	return fmt.Sprintf("fleet: malformed frame (%d bytes)", e.Len)
}

func (e *FrameError) Unwrap() error { return e.Err }

// marshalFrame encodes one Msg as a newline-terminated JSONL frame,
// refusing frames over MaxFrame (a peer enforcing the cap on Recv
// would otherwise drop them anyway).
func marshalFrame(m Msg) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	if len(b)+1 > MaxFrame {
		return nil, &FrameError{Oversized: true, Len: len(b) + 1}
	}
	return append(b, '\n'), nil
}

// frameReader decodes newline-delimited Msg frames with the MaxFrame
// cap enforced while reading — an oversized line is abandoned without
// buffering it whole.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// readLine returns the next line (newline stripped). A clean EOF at a
// frame boundary is io.EOF; bytes followed by EOF mid-line are a
// truncated frame, reported as a *FrameError.
func (fr *frameReader) readLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := fr.br.ReadSlice('\n')
		// ReadSlice's chunk aliases the bufio buffer; copy before the
		// next read invalidates it.
		line = append(line, chunk...)
		if len(line) > MaxFrame {
			return nil, &FrameError{Oversized: true, Len: len(line)}
		}
		switch err {
		case nil:
			return line[:len(line)-1], nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(line) == 0 {
				return nil, io.EOF
			}
			return nil, &FrameError{Len: len(line), Err: io.ErrUnexpectedEOF}
		default:
			return nil, err
		}
	}
}

// next decodes the next frame, skipping blank lines.
func (fr *frameReader) next() (Msg, error) {
	for {
		line, err := fr.readLine()
		if err != nil {
			return Msg{}, err
		}
		if len(line) == 0 {
			continue
		}
		var m Msg
		if err := json.Unmarshal(line, &m); err != nil {
			return Msg{}, &FrameError{Len: len(line), Err: err}
		}
		return m, nil
	}
}

// pipeTransport is the JSONL-over-pipes transport: one JSON object per
// line. Send issues a single Write per message (marshal + trailing
// newline), so frames up to the pipe's atomic write size never
// interleave; the mutex serializes larger ones and concurrent senders.
type pipeTransport struct {
	mu sync.Mutex
	fr *frameReader
	r  io.Reader
	w  io.Writer
}

// NewPipeTransport wraps a reader/writer pair (typically a subprocess's
// stdout/stdin, or os.Stdin/os.Stdout on the worker side) in the JSONL
// transport.
func NewPipeTransport(r io.Reader, w io.Writer) Transport {
	return &pipeTransport{fr: newFrameReader(r), r: r, w: w}
}

func (t *pipeTransport) Send(m Msg) error {
	b, err := marshalFrame(m)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err = t.w.Write(b)
	return err
}

func (t *pipeTransport) Recv() (Msg, error) {
	return t.fr.next()
}

func (t *pipeTransport) Close() error {
	var firstErr error
	if c, ok := t.w.(io.Closer); ok {
		firstErr = c.Close()
	}
	if c, ok := t.r.(io.Closer); ok {
		if err := c.Close(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// decodeResult validates and decodes a MsgResult payload: the record's
// content key must match the shared fingerprint and the leased
// assignment key, exactly as the journal validates its own lines — a
// corrupt pipe or a confused worker cannot smuggle a wrong-variant
// record into the evaluation stream.
func decodeResult(fingerprint, wantKey string, m Msg) (*journal.Record, error) {
	rec := m.Result
	if rec == nil {
		return nil, fmt.Errorf("fleet: result frame without payload")
	}
	if rec.AKey != wantKey {
		return nil, fmt.Errorf("fleet: result for %q answers a lease on %q", rec.AKey, wantKey)
	}
	if rec.Key != journal.RecordKey(fingerprint, rec.AKey) {
		return nil, fmt.Errorf("fleet: result for %q fails its content-key check", rec.AKey)
	}
	return rec, nil
}
