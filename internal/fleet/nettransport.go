package fleet

import (
	"net"
	"sync"
	"time"
)

// DefaultSendTimeout bounds one frame's write on a network transport.
// A link that cannot accept a frame in this window is treated as
// partitioned: the send errors, the connection is severed, and the
// normal reconnect/lease-recovery machinery takes over.
const DefaultSendTimeout = 5 * time.Second

// netTransport is Transport over a single TCP (or any net.Conn)
// connection, carrying the same JSONL frames as the pipe transport
// plus a per-message send deadline so a stalled peer cannot wedge the
// sender forever.
type netTransport struct {
	mu          sync.Mutex
	conn        net.Conn
	fr          *frameReader
	sendTimeout time.Duration
}

// NewNetTransport wraps an established connection in the JSONL
// transport. sendTimeout ≤ 0 selects DefaultSendTimeout.
func NewNetTransport(conn net.Conn, sendTimeout time.Duration) Transport {
	if sendTimeout <= 0 {
		sendTimeout = DefaultSendTimeout
	}
	return &netTransport{conn: conn, fr: newFrameReader(conn), sendTimeout: sendTimeout}
}

func (t *netTransport) Send(m Msg) error {
	b, err := marshalFrame(m)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.conn.SetWriteDeadline(time.Now().Add(t.sendTimeout)); err != nil {
		return err
	}
	_, err = t.conn.Write(b)
	return err
}

func (t *netTransport) Recv() (Msg, error) {
	return t.fr.next()
}

func (t *netTransport) Close() error {
	return t.conn.Close()
}

// replayTransport re-delivers a frame already consumed from the inner
// transport. The coordinator reads the ready handshake off a raw
// connection before admitting it (so handshakes bypass chaos and
// session routing happens first); the serve loop then sees the same
// handshake via the replay.
type replayTransport struct {
	Transport
	mu    sync.Mutex
	first *Msg
}

func newReplayTransport(inner Transport, first Msg) Transport {
	return &replayTransport{Transport: inner, first: &first}
}

func (t *replayTransport) Recv() (Msg, error) {
	t.mu.Lock()
	if m := t.first; m != nil {
		t.first = nil
		t.mu.Unlock()
		return *m, nil
	}
	t.mu.Unlock()
	return t.Transport.Recv()
}

// netProc adapts a network connection to the Process interface the
// slot loop manages: there is no child process, so Kill severs the
// connection and Wait has nothing to reap.
type netProc struct {
	conn net.Conn
}

func (p *netProc) Kill() error { return p.conn.Close() }
func (p *netProc) Wait() error { return nil }
func (p *netProc) Pid() int    { return 0 }
