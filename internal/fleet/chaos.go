package fleet

import (
	"errors"
	"sync"
	"time"

	"repro/internal/search"
)

// errChaosPartition is the injected failure a chaos transport returns
// while a partition window is open; the connection is severed at the
// same moment, so both sides observe the partition like a real one.
var errChaosPartition = errors.New("fleet: chaos partition")

// ChaosConfig configures deterministic network-fault injection on the
// coordinator's accepted connections (the `-fleet-chaos-*` flags) or a
// worker's dialed connection. Every decision is a pure function of
// (Seed, op tag, frame sequence) via search.FaultFrac — the same
// stream that drives process-level kills — so a chaos run is
// reproducible bit for bit.
type ChaosConfig struct {
	// Seed drives every chaos roll.
	Seed int64
	// Drop is the per-frame probability the frame silently vanishes.
	Drop float64
	// Dup is the per-frame probability the frame is delivered twice.
	Dup float64
	// Reorder is the per-frame probability the frame is held back and
	// delivered after its successor.
	Reorder float64
	// Delay is a fixed latency added to every frame.
	Delay time.Duration
	// Partition is the per-frame probability a hard partition window
	// opens: the connection is severed and redials are refused until
	// PartitionFor elapses.
	Partition float64
	// PartitionFor is the length of an injected partition window.
	PartitionFor time.Duration
}

func (c *ChaosConfig) enabled() bool {
	return c != nil && (c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Delay > 0 || c.Partition > 0)
}

// chaos is the shared mutable state behind every chaos-wrapped
// connection of one endpoint: one frame-sequence counter (so rolls are
// deterministic across reconnects) and the current partition window.
type chaos struct {
	cfg ChaosConfig
	mu  sync.Mutex
	seq int64
	// partUntil is the end of the open partition window, zero when none.
	partUntil time.Time
}

func newChaos(cfg *ChaosConfig) *chaos {
	if !cfg.enabled() {
		return nil
	}
	return &chaos{cfg: *cfg}
}

// roll draws the next deterministic uniform value for one kind of
// fault. Each op tag gets its own independent stream position.
func (c *chaos) roll(tag string) float64 {
	c.mu.Lock()
	c.seq++
	n := c.seq
	c.mu.Unlock()
	return search.FaultFrac(c.cfg.Seed, "chaos."+tag, n)
}

// partitioned reports whether a partition window is open.
func (c *chaos) partitioned() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.partUntil)
}

// startPartition opens a partition window.
func (c *chaos) startPartition() {
	c.mu.Lock()
	c.partUntil = time.Now().Add(c.cfg.PartitionFor)
	c.mu.Unlock()
}

// wrap layers chaos over a transport. sever is called when a partition
// opens so the underlying connection actually breaks (both directions,
// like a real partition). Nil-safe: a nil chaos returns tr unchanged.
func (c *chaos) wrap(tr Transport, sever func()) Transport {
	if c == nil {
		return tr
	}
	if sever == nil {
		sever = func() {}
	}
	return &chaosTransport{chaos: c, inner: tr, sever: sever}
}

// chaosTransport injects drop/dup/reorder/delay/partition on both
// directions of one connection. Handshake frames never pass through it:
// the coordinator reads ready off the raw transport before wrapping, so
// reconnects always make progress and chaos only perturbs the lease
// protocol — whose exactly-once machinery is exactly what is under test.
type chaosTransport struct {
	chaos *chaos
	inner Transport
	sever func()

	sendMu   sync.Mutex
	heldSend *Msg

	recvMu   sync.Mutex
	recvQ    []Msg
	heldRecv *Msg
}

func (t *chaosTransport) Send(m Msg) error {
	c := t.chaos
	if c.cfg.Delay > 0 {
		time.Sleep(c.cfg.Delay)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if c.cfg.Partition > 0 && c.roll("part") < c.cfg.Partition {
		c.startPartition()
		t.sever()
		return errChaosPartition
	}
	if c.cfg.Drop > 0 && c.roll("drop") < c.cfg.Drop {
		return nil // silently vanished; the sender believes it went out
	}
	if t.heldSend != nil {
		// A previously reordered frame goes out after this newer one.
		held := *t.heldSend
		t.heldSend = nil
		if err := t.inner.Send(m); err != nil {
			return err
		}
		return t.inner.Send(held)
	}
	if c.cfg.Reorder > 0 && c.roll("reorder") < c.cfg.Reorder {
		m := m
		t.heldSend = &m
		return nil
	}
	if err := t.inner.Send(m); err != nil {
		return err
	}
	if c.cfg.Dup > 0 && c.roll("dup") < c.cfg.Dup {
		return t.inner.Send(m)
	}
	return nil
}

func (t *chaosTransport) Recv() (Msg, error) {
	c := t.chaos
	for {
		t.recvMu.Lock()
		if len(t.recvQ) > 0 {
			m := t.recvQ[0]
			t.recvQ = t.recvQ[1:]
			t.recvMu.Unlock()
			return m, nil
		}
		t.recvMu.Unlock()
		m, err := t.inner.Recv()
		if err != nil {
			return Msg{}, err
		}
		if c.cfg.Delay > 0 {
			time.Sleep(c.cfg.Delay)
		}
		if c.cfg.Partition > 0 && c.roll("part") < c.cfg.Partition {
			c.startPartition()
			t.sever()
			return Msg{}, errChaosPartition
		}
		if c.cfg.Drop > 0 && c.roll("drop") < c.cfg.Drop {
			continue
		}
		t.recvMu.Lock()
		if t.heldRecv != nil {
			// Deliver the newer frame first, then the held one.
			held := *t.heldRecv
			t.heldRecv = nil
			t.recvQ = append(t.recvQ, held)
			if c.cfg.Dup > 0 && c.roll("dup") < c.cfg.Dup {
				t.recvQ = append(t.recvQ, m)
			}
			t.recvMu.Unlock()
			return m, nil
		}
		if c.cfg.Reorder > 0 && c.roll("reorder") < c.cfg.Reorder {
			m := m
			t.heldRecv = &m
			t.recvMu.Unlock()
			continue
		}
		if c.cfg.Dup > 0 && c.roll("dup") < c.cfg.Dup {
			t.recvQ = append(t.recvQ, m)
		}
		t.recvMu.Unlock()
		return m, nil
	}
}

func (t *chaosTransport) Close() error {
	return t.inner.Close()
}
