package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/resilience"
	"repro/internal/search"
	"repro/internal/transform"
)

// startNetFleet starts a coordinator in network mode on a loopback
// listener and returns it with its dial address.
func startNetFleet(t *testing.T, cfg Config, nc NetConfig, rt Runtime) (*Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	nc.Listener = ln
	cfg.Net = &nc
	c := startFleet(t, cfg, rt)
	return c, ln.Addr().String()
}

// startNetWorker runs an in-process ServeNet worker against addr; the
// returned WaitGroup completes when the worker loop exits (shutdown
// frame, or dial budget spent once the listener is gone).
func startNetWorker(t *testing.T, addr, session string, mut ...func(*NetServeConfig)) *sync.WaitGroup {
	t.Helper()
	cfg := NetServeConfig{
		Addr:             addr,
		Eval:             stubEval{},
		Fingerprint:      stubFingerprint,
		Session:          session,
		Heartbeat:        20 * time.Millisecond,
		ReconnectBackoff: 10 * time.Millisecond,
		MaxDials:         5,
		DialTimeout:      2 * time.Second,
		SendTimeout:      2 * time.Second,
	}
	for _, m := range mut {
		m(&cfg)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ServeNet(cfg)
	}()
	return &wg
}

// rawClient is a hand-driven worker for protocol-level tests: it
// speaks just enough of the wire protocol to misbehave on cue.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	tr   Transport
}

func dialRaw(t *testing.T, addr, session string, lastLease int64) *rawClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	tr := NewNetTransport(conn, 2*time.Second)
	if err := tr.Send(Msg{Type: MsgReady, Fingerprint: stubFingerprint,
		Session: session, LastLease: lastLease}); err != nil {
		t.Fatalf("handshake send: %v", err)
	}
	return &rawClient{t: t, conn: conn, tr: tr}
}

// recvLease reads frames until a lease grant arrives.
func (rc *rawClient) recvLease() Msg {
	rc.t.Helper()
	for {
		m, err := rc.tr.Recv()
		if err != nil {
			rc.t.Fatalf("recv: %v", err)
		}
		if m.Type == MsgLease {
			return m
		}
	}
}

// result builds the correct reply for a lease, exactly as a healthy
// worker would (content-keyed journal record over the stub evaluator).
func (rc *rawClient) result(m Msg) Msg {
	ev := stubEval{}.Evaluate(transform.Assignment(m.Assignment))
	rec := journal.FromEvaluation(stubFingerprint, ev)
	return Msg{Type: MsgResult, Lease: m.Lease, Result: &rec}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNetFleetEvaluatesOnDialingWorkers(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{Workers: 2, OnEvent: sink.record}, NetConfig{}, Runtime{})
	w1 := startNetWorker(t, addr, "w1")
	w2 := startNetWorker(t, addr, "w2")

	var wg sync.WaitGroup
	results := make([]*search.Evaluation, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Evaluate(asn(i + 1))
		}(i)
	}
	wg.Wait()
	for i, ev := range results {
		want := stubEval{}.Evaluate(asn(i + 1))
		if ev.Status != want.Status || ev.Speedup != want.Speedup {
			t.Errorf("eval %d: got %+v, want %+v", i, ev, want)
		}
	}
	st := c.Stats()
	if st.Leases != int64(len(results)) {
		t.Errorf("Leases = %d, want %d", st.Leases, len(results))
	}
	if st.Reconnects != 0 || st.PartitionExpired != 0 || st.DupRefused != 0 || st.FrameErrors != 0 {
		t.Errorf("clean run has network incidents: %+v", st)
	}
	c.Close()
	w1.Wait()
	w2.Wait()
}

func TestNetWorkerReconnectResumesInFlightLease(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{
		Workers:         1,
		LeaseTTL:        10 * time.Second,
		Heartbeat:       20 * time.Millisecond,
		HeartbeatMisses: 8,
		OnEvent:         sink.record,
	}, NetConfig{}, Runtime{})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var connMu sync.Mutex
	var liveConn net.Conn
	w := startNetWorker(t, addr, "resume", func(cfg *NetServeConfig) {
		cfg.Eval = evalFunc(func(a transform.Assignment) *search.Evaluation {
			started <- struct{}{}
			<-release
			return stubEval{}.Evaluate(a)
		})
		cfg.HeartbeatMissLimit = 3
		cfg.Dial = func() (Transport, error) {
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return nil, err
			}
			connMu.Lock()
			liveConn = conn
			connMu.Unlock()
			return NewNetTransport(conn, 2*time.Second), nil
		}
	})

	resCh := make(chan *search.Evaluation, 1)
	go func() { resCh <- supervise(c).Evaluate(asn(3)) }()
	<-started

	// Sever the connection mid-evaluation: the coordinator must park
	// the lease, the worker's failed heartbeats must trigger a redial,
	// and the session resume must re-adopt the same lease — no second
	// grant, no reassignment.
	connMu.Lock()
	liveConn.Close()
	connMu.Unlock()
	waitFor(t, "session reconnect", func() bool { return c.Stats().Reconnects >= 1 })

	close(release)
	ev := <-resCh
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	st := c.Stats()
	if st.Leases != 1 {
		t.Errorf("Leases = %d, want exactly 1 (the lease was resumed, not re-granted)", st.Leases)
	}
	if st.PartitionExpired != 0 {
		t.Errorf("PartitionExpired = %d, want 0", st.PartitionExpired)
	}
	if sink.count(EventWorkerReconnect) < 1 {
		t.Errorf("no worker_reconnect event; events: %+v", sink.events)
	}
	c.Close()
	w.Wait()
}

func TestPartitionExpiryReassignsParkedLease(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{
		Workers:         1,
		LeaseTTL:        200 * time.Millisecond,
		Heartbeat:       20 * time.Millisecond,
		HeartbeatMisses: 50,
		OnEvent:         sink.record,
	}, NetConfig{}, Runtime{})

	resCh := make(chan *search.Evaluation, 1)
	go func() { resCh <- supervise(c).Evaluate(asn(2)) }()

	// A worker takes the lease and vanishes for good: the parked lease
	// must expire at its original deadline and be reassigned.
	rc := dialRaw(t, addr, "goner", 0)
	rc.recvLease()
	rc.conn.Close()
	waitFor(t, "partition expiry", func() bool { return c.Stats().PartitionExpired >= 1 })

	// A healthy worker arrives and serves the supervised retry.
	w := startNetWorker(t, addr, "healthy")
	ev := <-resCh
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	if n := sink.count(EventPartitionExpired); n != 1 {
		t.Errorf("partition_expired events = %d, want 1", n)
	}
	c.Close()
	w.Wait()
}

func TestDuplicateReplyIsRefusedOnce(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{Workers: 1, OnEvent: sink.record}, NetConfig{}, Runtime{})

	resCh := make(chan *search.Evaluation, 2)
	for i := 1; i <= 2; i++ {
		go func(i int) { resCh <- supervise(c).Evaluate(asn(i)) }(i)
	}

	rc := dialRaw(t, addr, "dup", 0)
	l1 := rc.recvLease()
	// The network "duplicates" the first reply. The first copy
	// completes the lease; the second must be refused by the
	// monotonic-lease dedup while the next lease is being served.
	r1 := rc.result(l1)
	if err := rc.tr.Send(r1); err != nil {
		t.Fatalf("send result: %v", err)
	}
	if err := rc.tr.Send(r1); err != nil {
		t.Fatalf("send duplicate: %v", err)
	}
	l2 := rc.recvLease()
	if err := rc.tr.Send(rc.result(l2)); err != nil {
		t.Fatalf("send result 2: %v", err)
	}
	for i := 0; i < 2; i++ {
		if ev := <-resCh; ev.Status != search.StatusPass {
			t.Fatalf("eval %d: status = %v, want pass", i, ev.Status)
		}
	}
	waitFor(t, "dup refusal", func() bool { return c.Stats().DupRefused >= 1 })
	st := c.Stats()
	if st.DupRefused != 1 {
		t.Errorf("DupRefused = %d, want 1", st.DupRefused)
	}
	if st.Late != 0 {
		t.Errorf("Late = %d, want 0 (a network dup is not a late result)", st.Late)
	}
	if sink.count(EventDupRefused) != 1 {
		t.Errorf("dup_refused events = %d, want 1", sink.count(EventDupRefused))
	}
	rc.conn.Close()
}

func TestMalformedFrameFailsLeaseAndRetiresConnection(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{
		Workers:     1,
		MaxRestarts: 5,
		OnEvent:     sink.record,
	}, NetConfig{}, Runtime{})

	resCh := make(chan *search.Evaluation, 1)
	go func() { resCh <- supervise(c).Evaluate(asn(2)) }()

	rc := dialRaw(t, addr, "garbler", 0)
	rc.recvLease()
	// A malformed frame mid-lease is a protocol breach, not a
	// partition: the lease fails (supervised retry) and the
	// connection is retired.
	if _, err := rc.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	// The coordinator must hang up on us.
	rc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	for {
		if _, err := rc.conn.Read(buf); err != nil {
			break
		}
	}

	w := startNetWorker(t, addr, "clean", func(cfg *NetServeConfig) { cfg.MaxDials = 10 })
	ev := <-resCh
	if ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	waitFor(t, "frame error count", func() bool { return c.Stats().FrameErrors >= 1 })
	if st := c.Stats(); st.FrameErrors != 1 {
		t.Errorf("FrameErrors = %d, want 1", st.FrameErrors)
	}
	if st := c.Stats(); st.PartitionExpired != 0 {
		t.Errorf("PartitionExpired = %d, want 0 (breach, not partition)", st.PartitionExpired)
	}
	c.Close()
	w.Wait()
}

// evalFunc adapts a function to search.Evaluator.
type evalFunc func(transform.Assignment) *search.Evaluation

func (f evalFunc) Evaluate(a transform.Assignment) *search.Evaluation { return f(a) }

// hbFailTransport accepts handshake frames but fails every heartbeat
// send; Recv blocks until Close.
type hbFailTransport struct {
	mu      sync.Mutex
	hbFails int
	closed  chan struct{}
	once    sync.Once
}

func newHBFailTransport() *hbFailTransport {
	return &hbFailTransport{closed: make(chan struct{})}
}

func (tr *hbFailTransport) Send(m Msg) error {
	if m.Type == MsgHeartbeat {
		tr.mu.Lock()
		tr.hbFails++
		tr.mu.Unlock()
		return errors.New("link down")
	}
	return nil
}

func (tr *hbFailTransport) failures() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.hbFails
}

func (tr *hbFailTransport) Recv() (Msg, error) {
	<-tr.closed
	return Msg{}, io.EOF
}

func (tr *hbFailTransport) Close() error {
	tr.once.Do(func() { close(tr.closed) })
	return nil
}

// TestHeartbeatMissLimitTriggersReconnect pins the satellite contract:
// exactly HeartbeatMissLimit consecutive failed heartbeat sends — not
// one, not a lucky flake — trigger a reconnect, and the worker
// reconnects rather than exiting.
func TestHeartbeatMissLimitTriggersReconnect(t *testing.T) {
	if DefaultHeartbeatMissLimit != 3 {
		t.Fatalf("DefaultHeartbeatMissLimit = %d, want 3 (documented contract)", DefaultHeartbeatMissLimit)
	}
	var dials atomic.Int64
	var trMu sync.Mutex
	var transports []*hbFailTransport
	cfg := &NetServeConfig{
		Fingerprint:        stubFingerprint,
		Session:            "hb",
		Heartbeat:          5 * time.Millisecond,
		HeartbeatMissLimit: 3,
		ReconnectBackoff:   time.Millisecond,
		MaxDials:           100,
		Dial: func() (Transport, error) {
			tr := newHBFailTransport()
			trMu.Lock()
			transports = append(transports, tr)
			trMu.Unlock()
			dials.Add(1)
			return tr, nil
		},
	}
	lk := &netLink{cfg: cfg}
	if _, err := lk.redial(0); err != nil {
		t.Fatalf("initial dial: %v", err)
	}
	stop := lk.heartbeats(1, nil)
	waitFor(t, "heartbeat-triggered redial", func() bool { return dials.Load() >= 2 })
	stop()
	trMu.Lock()
	first := transports[0]
	trMu.Unlock()
	if got := first.failures(); got != 3 {
		t.Errorf("heartbeat failures before reconnect = %d, want exactly %d", got, 3)
	}
}

func TestNetChaosSoakAllEvaluationsSurvive(t *testing.T) {
	sink := &eventSink{}
	c, addr := startNetFleet(t, Config{
		Workers:         2,
		LeaseTTL:        2 * time.Second,
		Heartbeat:       20 * time.Millisecond,
		HeartbeatMisses: 8,
		MaxRestarts:     100,
		OnEvent:         sink.record,
	}, NetConfig{
		Chaos: &ChaosConfig{
			Seed:         7,
			Drop:         0.05,
			Dup:          0.05,
			Reorder:      0.03,
			Partition:    0.02,
			PartitionFor: 100 * time.Millisecond,
		},
	}, Runtime{})
	workers := []*sync.WaitGroup{
		startNetWorker(t, addr, "chaos-a", func(cfg *NetServeConfig) { cfg.MaxDials = 50; cfg.HeartbeatMissLimit = 3 }),
		startNetWorker(t, addr, "chaos-b", func(cfg *NetServeConfig) { cfg.MaxDials = 50; cfg.HeartbeatMissLimit = 3 }),
	}
	sup := &resilience.Supervised{
		Inner:         c,
		MaxRetries:    10,
		RetriesByKind: resilience.DefaultRetryBudgets(10),
		Backoff:       resilience.Backoff{Base: time.Millisecond, Seed: 1},
	}
	var wg sync.WaitGroup
	results := make([]*search.Evaluation, 20)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sup.Evaluate(asn(i%6 + 1))
		}(i)
	}
	wg.Wait()
	for i, ev := range results {
		want := stubEval{}.Evaluate(asn(i%6 + 1))
		if ev == nil || ev.Status != want.Status || ev.Speedup != want.Speedup {
			t.Errorf("eval %d: got %+v, want %+v", i, ev, want)
		}
	}
	if st := c.Stats(); st.Degraded {
		t.Errorf("fleet degraded under chaos: %q", st.DegradeDetail)
	}
	c.Close()
	for _, w := range workers {
		w.Wait()
	}
}

func TestNetConfigValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := New(Config{Workers: 1, Spawn: stubSpawn(), Net: &NetConfig{Listener: ln}}); err == nil {
		t.Error("Spawn+Net accepted; they are mutually exclusive")
	}
	if _, err := New(Config{Workers: 1, Net: &NetConfig{}}); err == nil {
		t.Error("Net without Listener accepted")
	}
	if _, err := New(Config{Workers: 1, Net: &NetConfig{Listener: ln}}); err != nil {
		t.Errorf("valid net config rejected: %v", err)
	}
	if err := ServeNet(NetServeConfig{Eval: stubEval{}}); err == nil {
		t.Error("ServeNet without Addr/Dial accepted")
	}
	if err := ServeNet(NetServeConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("ServeNet without Eval accepted")
	}
}

func TestFrameReaderCapsAndTypedErrors(t *testing.T) {
	// Malformed JSON: typed *FrameError wrapping the decode error.
	fr := newFrameReader(strings.NewReader("{\"type\":\"ready\"}\nnot json\n"))
	if m, err := fr.next(); err != nil || m.Type != MsgReady {
		t.Fatalf("first frame: %v, %v", m, err)
	}
	_, err := fr.next()
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Oversized {
		t.Fatalf("malformed frame error = %v, want non-oversized *FrameError", err)
	}

	// Oversized frame: refused while reading, not buffered whole.
	big := strings.Repeat("x", MaxFrame+16)
	fr = newFrameReader(strings.NewReader(big + "\n"))
	_, err = fr.next()
	if !errors.As(err, &fe) || !fe.Oversized {
		t.Fatalf("oversized frame error = %v, want oversized *FrameError", err)
	}

	// Blank lines are skipped; clean EOF at a boundary is io.EOF.
	fr = newFrameReader(strings.NewReader("\n\n{\"type\":\"heartbeat\"}\n"))
	if m, err := fr.next(); err != nil || m.Type != MsgHeartbeat {
		t.Fatalf("frame after blanks: %v, %v", m, err)
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("clean EOF = %v, want io.EOF", err)
	}

	// Truncation mid-frame is a framing fault, not a clean end.
	fr = newFrameReader(strings.NewReader("{\"type\":\"rea"))
	_, err = fr.next()
	if !errors.As(err, &fe) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v, want *FrameError wrapping ErrUnexpectedEOF", err)
	}

	// Send-side enforcement: a frame over the cap is refused before it
	// leaves the process.
	_, err = marshalFrame(Msg{Type: MsgFault, Fault: strings.Repeat("y", MaxFrame)})
	if !errors.As(err, &fe) || !fe.Oversized {
		t.Fatalf("marshalFrame oversize = %v, want oversized *FrameError", err)
	}
}

func TestChaosTransportIsDeterministic(t *testing.T) {
	// Two chaos instances with the same seed must make identical
	// decisions over the same frame sequence.
	run := func() []string {
		ch := newChaos(&ChaosConfig{Seed: 42, Drop: 0.2, Dup: 0.2, Reorder: 0.1})
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		tr := ch.wrap(NewNetTransport(a, time.Second), func() {})
		peer := NewNetTransport(b, time.Second)
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				m, err := peer.Recv()
				if err != nil {
					return
				}
				got = append(got, fmt.Sprintf("%s/%d", m.Type, m.Lease))
			}
		}()
		for i := 1; i <= 30; i++ {
			tr.Send(Msg{Type: MsgHeartbeat, Lease: int64(i)})
		}
		a.Close()
		<-done
		return got
	}
	first := run()
	second := run()
	if len(first) == 0 || len(first) == 30 {
		t.Fatalf("chaos did nothing observable over 30 frames: %d delivered", len(first))
	}
	if strings.Join(first, ",") != strings.Join(second, ",") {
		t.Errorf("chaos not deterministic:\n  %v\n  %v", first, second)
	}
}

func TestNetFleetCleanShutdownUnblocksEverything(t *testing.T) {
	// One slot never sees a connection: Close must still return — the
	// idle slot's loop unblocks on context cancellation, the served
	// worker gets a shutdown frame.
	c, addr := startNetFleet(t, Config{Workers: 2}, NetConfig{}, Runtime{})
	w := startNetWorker(t, addr, "only")
	if ev := c.Evaluate(asn(1)); ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	w.Wait()
}
