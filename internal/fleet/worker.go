package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/search"
	"repro/internal/transform"
)

// WorkerFaults configures process-level fault injection in a worker —
// the subprocess extension of search.FaultInjector's flaky/crash modes.
// Every decision is a pure function of (Seed, key, attempt) via
// search.FaultFrac, so injected deaths are deterministic and
// independent of which worker draws the lease: the byte-identical-
// journal invariant can be tested under real SIGKILLs.
type WorkerFaults struct {
	// KillRate SIGKILLs the worker process before evaluating a lease
	// with this probability per (key, attempt).
	KillRate float64
	// Seed drives the KillRate hash.
	Seed int64
	// CrashKey SIGKILLs the worker on every lease for this key — a
	// variant that reliably kills its host (e.g. an OOM), which the
	// supervisor must quarantine after the retry budget.
	CrashKey string
	// WedgeKey wedges the worker — heartbeats and all — on the first
	// attempt of this key, exercising the heartbeat-loss detector.
	WedgeKey string
	// SlowKey delays the result of this key's first attempt by Slow,
	// exercising lease expiry and the late-result dedup.
	SlowKey string
	// Slow is the SlowKey delay.
	Slow time.Duration
}

// ServeConfig configures one worker process's serve loop.
type ServeConfig struct {
	// Transport carries the lease protocol (required); typically
	// NewPipeTransport(os.Stdin, os.Stdout).
	Transport Transport
	// Eval evaluates leases (required); in `prose worker` it is the
	// worker's own core.Tuner.
	Eval search.Evaluator
	// Fingerprint is the evaluation fingerprint sent in the handshake
	// (required); the coordinator retires workers that disagree.
	Fingerprint string
	// Heartbeat is the liveness interval while evaluating (default
	// DefaultHeartbeat; must match the coordinator's).
	Heartbeat time.Duration
	// Fault is the fault-injection configuration (zero = none).
	Fault WorkerFaults
}

// Serve runs a worker's lease loop until the coordinator says shutdown
// or the transport closes (EOF is an orderly end: the coordinator died
// or dropped us, and our process has no further purpose). Evaluation
// panics are caught and answered as fault frames — the process
// survives them; only injected faults and real crashes kill it.
func Serve(cfg ServeConfig) error {
	if cfg.Transport == nil || cfg.Eval == nil {
		return fmt.Errorf("fleet: Serve needs Transport and Eval")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	tr := cfg.Transport
	if err := tr.Send(Msg{Type: MsgReady, Fingerprint: cfg.Fingerprint}); err != nil {
		return err
	}
	for {
		m, err := tr.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgLease:
			cfg.Fault.preEval(m.Key, m.Attempt)
			stop := heartbeats(tr, m.Lease, cfg.Heartbeat)
			ev, fault, faulted, persistent := runEval(cfg.Eval, m.Assignment)
			cfg.Fault.preReply(m.Key, m.Attempt)
			stop()
			var reply Msg
			if faulted {
				reply = Msg{Type: MsgFault, Lease: m.Lease, Fault: fault, Persistent: persistent}
			} else {
				rec := journal.FromEvaluation(cfg.Fingerprint, ev)
				reply = Msg{Type: MsgResult, Lease: m.Lease, Result: &rec}
			}
			if err := tr.Send(reply); err != nil {
				return err
			}
		}
	}
}

// preEval fires pre-evaluation injected faults: self-SIGKILL (the
// coordinator sees EOF, exactly like a scheduler or OOM kill) or a full
// wedge (heartbeats never start; the coordinator's silence detector
// must kill us).
func (f *WorkerFaults) preEval(key string, attempt int) {
	if f.CrashKey != "" && key == f.CrashKey {
		killSelf()
	}
	if f.KillRate > 0 && search.FaultFrac(f.Seed, key, int64(attempt)) < f.KillRate {
		killSelf()
	}
	if f.WedgeKey != "" && key == f.WedgeKey && attempt == 1 {
		select {} // wedge forever; the coordinator kills us
	}
}

// preReply fires the slow-result injection: the evaluation is done and
// heartbeats still flow, but the result is held past the lease
// deadline, so the coordinator reassigns the lease and must dedup our
// late completion.
func (f *WorkerFaults) preReply(key string, attempt int) {
	if f.SlowKey != "" && key == f.SlowKey && attempt == 1 && f.Slow > 0 {
		time.Sleep(f.Slow)
	}
}

// killSelf delivers an uncatchable SIGKILL to this process, simulating
// the batch scheduler's kill without any goodbye on the pipe.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}

// heartbeats beats on the transport until stopped; the returned stop
// waits for the beater to exit so a heartbeat can never trail the
// lease's result frame.
func heartbeats(tr Transport, lease int64, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if tr.Send(Msg{Type: MsgHeartbeat, Lease: lease}) != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runEval evaluates one lease, converting a panic into a fault reply.
// The Transient contract of the panic value survives the wire via the
// persistent flag, so the coordinator's WorkerFault re-classifies
// identically to an in-process run.
func runEval(eval search.Evaluator, asn map[string]int) (ev *search.Evaluation, fault string, faulted, persistent bool) {
	a := transform.Assignment(asn)
	if a == nil {
		a = transform.Assignment{}
	}
	defer func() {
		if r := recover(); r != nil {
			faulted = true
			if err, ok := r.(error); ok {
				fault = err.Error()
			} else {
				fault = fmt.Sprint(r)
			}
			if t, ok := r.(interface{ Transient() bool }); ok && !t.Transient() {
				persistent = true
			}
		}
	}()
	ev = eval.Evaluate(a)
	return
}
