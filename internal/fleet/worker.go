package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/transform"
)

// WorkerFaults configures process-level fault injection in a worker —
// the subprocess extension of search.FaultInjector's flaky/crash modes.
// Every decision is a pure function of (Seed, key, attempt) via
// search.FaultFrac, so injected deaths are deterministic and
// independent of which worker draws the lease: the byte-identical-
// journal invariant can be tested under real SIGKILLs.
type WorkerFaults struct {
	// KillRate SIGKILLs the worker process before evaluating a lease
	// with this probability per (key, attempt).
	KillRate float64
	// Seed drives the KillRate hash.
	Seed int64
	// CrashKey SIGKILLs the worker on every lease for this key — a
	// variant that reliably kills its host (e.g. an OOM), which the
	// supervisor must quarantine after the retry budget.
	CrashKey string
	// WedgeKey wedges the worker — heartbeats and all — on the first
	// attempt of this key, exercising the heartbeat-loss detector.
	WedgeKey string
	// SlowKey delays the result of this key's first attempt by Slow,
	// exercising lease expiry and the late-result dedup.
	SlowKey string
	// Slow is the SlowKey delay.
	Slow time.Duration
}

// ServeConfig configures one worker process's serve loop.
type ServeConfig struct {
	// Transport carries the lease protocol (required); typically
	// NewPipeTransport(os.Stdin, os.Stdout).
	Transport Transport
	// Eval evaluates leases (required); in `prose worker` it is the
	// worker's own core.Tuner.
	Eval search.Evaluator
	// Fingerprint is the evaluation fingerprint sent in the handshake
	// (required); the coordinator retires workers that disagree.
	Fingerprint string
	// Heartbeat is the liveness interval while evaluating (default
	// DefaultHeartbeat; must match the coordinator's).
	Heartbeat time.Duration
	// Fault is the fault-injection configuration (zero = none).
	Fault WorkerFaults
}

// MetricsAttacher is optionally implemented by evaluators that can
// adopt a metrics registry after construction. A fleet worker's
// evaluator starts uninstrumented; when the first lease arrives with
// trace context asking for metrics, the worker creates a registry and
// attaches it here so interpreter counters (interp_runs, numeric_*, …)
// start flowing. core.Tuner implements it.
type MetricsAttacher interface {
	AttachMetrics(*obs.Registry)
}

// Serve runs a worker's lease loop until the coordinator says shutdown
// or the transport closes (EOF is an orderly end: the coordinator died
// or dropped us, and our process has no further purpose). Evaluation
// panics are caught and answered as fault frames — the process
// survives them; only injected faults and real crashes kill it.
func Serve(cfg ServeConfig) error {
	if cfg.Transport == nil || cfg.Eval == nil {
		return fmt.Errorf("fleet: Serve needs Transport and Eval")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	tr := cfg.Transport
	wo := &workerObs{}
	if err := tr.Send(Msg{Type: MsgReady, Fingerprint: cfg.Fingerprint}); err != nil {
		return err
	}
	for {
		m, err := tr.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgLease:
			wo.enable(m.Obs, cfg.Eval)
			cfg.Fault.preEval(m.Key, m.Attempt)
			stop := heartbeats(tr, m.Lease, cfg.Heartbeat, wo)
			sp := wo.leaseSpan(m)
			ev, fault, faulted, persistent := runEval(cfg.Eval, m.Assignment, sp, wo.registry())
			cfg.Fault.preReply(m.Key, m.Attempt)
			stop()
			var reply Msg
			if faulted {
				reply = Msg{Type: MsgFault, Lease: m.Lease, Fault: fault, Persistent: persistent}
			} else {
				rec := journal.FromEvaluation(cfg.Fingerprint, ev)
				reply = Msg{Type: MsgResult, Lease: m.Lease, Result: &rec}
			}
			if err := wo.shipOverflow(tr.Send, m.Lease); err != nil {
				return err
			}
			wo.attach(&reply)
			if err := tr.Send(reply); err != nil {
				return err
			}
		}
	}
}

// workerObs is a worker process's observability state: a local tracer
// and registry brought up lazily by the first lease that carries an
// ObsCtx (until then the worker allocates nothing on obs's account),
// plus the pending span buffer and the monotonic obs sequence the
// coordinator uses to drop stale or duplicated shipments. The mutex
// covers the heartbeat goroutine attaching to frames while the main
// loop evaluates.
type workerObs struct {
	mu      sync.Mutex
	tracer  *obs.Tracer
	reg     *obs.Registry
	pending []obs.SpanRecord
	seq     int64
}

// enable brings up the tracer (and registry, when asked for) on the
// first instrumented lease. The registry is handed to the evaluator via
// MetricsAttacher so interpreter counters flow into it; worker leases
// run sequentially, so attaching between leases is safe.
func (wo *workerObs) enable(ctx *ObsCtx, eval search.Evaluator) {
	if ctx == nil {
		return
	}
	var attach *obs.Registry
	wo.mu.Lock()
	if wo.tracer == nil {
		wo.tracer = obs.NewTracer(ctx.Fingerprint)
	}
	if ctx.Metrics && wo.reg == nil {
		wo.reg = obs.NewRegistry()
		attach = wo.reg
	}
	wo.mu.Unlock()
	if attach != nil {
		if ma, ok := eval.(MetricsAttacher); ok {
			ma.AttachMetrics(attach)
		}
	}
}

// registry returns the worker registry (nil while metrics are off).
func (wo *workerObs) registry() *obs.Registry {
	wo.mu.Lock()
	defer wo.mu.Unlock()
	return wo.reg
}

// leaseSpan opens the worker.eval span for one lease, parented under
// the coordinator's propagated fleet.lease span so the two processes'
// traces splice into one tree. Nil (no-op) while tracing is off.
func (wo *workerObs) leaseSpan(m Msg) *obs.Span {
	wo.mu.Lock()
	tracer := wo.tracer
	wo.mu.Unlock()
	if tracer == nil || m.Obs == nil || m.Obs.SpanID == "" {
		// Metrics-only leases (coordinator has a registry but no tracer)
		// carry no parent span; opening one here would only ship spans
		// the coordinator has no tracer to splice.
		return nil
	}
	parent, _ := strconv.ParseUint(m.Obs.SpanID, 16, 64)
	sp := tracer.ChildOf(obs.SpanID(parent), obs.SpanWorkerEval)
	sp.Attr("key", m.Key)
	sp.AttrInt("attempt", int64(m.Attempt))
	sp.AttrInt("lease", m.Lease)
	return sp
}

// attach piggybacks the worker's observability payload on an outgoing
// frame: up to MaxSpanBatch drained spans (with the tracer-epoch
// timestamp the coordinator rebases against), the current registry
// snapshot, and the next obs sequence number. No-op while obs is off,
// so uninstrumented frames are byte-for-byte what they always were.
func (wo *workerObs) attach(m *Msg) {
	wo.mu.Lock()
	defer wo.mu.Unlock()
	if wo.tracer == nil {
		return
	}
	wo.pending = append(wo.pending, wo.tracer.Drain()...)
	n := len(wo.pending)
	if n > MaxSpanBatch {
		n = MaxSpanBatch
	}
	if n > 0 {
		m.Spans = append([]obs.SpanRecord(nil), wo.pending[:n]...)
		wo.pending = wo.pending[n:]
		m.TraceNow = int64(wo.tracer.Now())
	}
	if wo.reg != nil {
		snap := wo.reg.Snapshot()
		m.MetricsSnap = &snap
	}
	if m.Spans == nil && m.MetricsSnap == nil {
		return
	}
	wo.seq++
	m.ObsSeq = wo.seq
}

// shipOverflow flushes span batches beyond what the next reply frame
// can carry as extra heartbeat frames, keeping every frame under
// MaxFrame no matter how many spans one evaluation produced.
func (wo *workerObs) shipOverflow(send func(Msg) error, lease int64) error {
	for {
		wo.mu.Lock()
		if wo.tracer != nil {
			wo.pending = append(wo.pending, wo.tracer.Drain()...)
		}
		over := len(wo.pending) > MaxSpanBatch
		wo.mu.Unlock()
		if !over {
			return nil
		}
		hb := Msg{Type: MsgHeartbeat, Lease: lease}
		wo.attach(&hb)
		if err := send(hb); err != nil {
			return err
		}
	}
}

// preEval fires pre-evaluation injected faults: self-SIGKILL (the
// coordinator sees EOF, exactly like a scheduler or OOM kill) or a full
// wedge (heartbeats never start; the coordinator's silence detector
// must kill us).
func (f *WorkerFaults) preEval(key string, attempt int) {
	if f.CrashKey != "" && key == f.CrashKey {
		killSelf()
	}
	if f.KillRate > 0 && search.FaultFrac(f.Seed, key, int64(attempt)) < f.KillRate {
		killSelf()
	}
	if f.WedgeKey != "" && key == f.WedgeKey && attempt == 1 {
		select {} // wedge forever; the coordinator kills us
	}
}

// preReply fires the slow-result injection: the evaluation is done and
// heartbeats still flow, but the result is held past the lease
// deadline, so the coordinator reassigns the lease and must dedup our
// late completion.
func (f *WorkerFaults) preReply(key string, attempt int) {
	if f.SlowKey != "" && key == f.SlowKey && attempt == 1 && f.Slow > 0 {
		time.Sleep(f.Slow)
	}
}

// killSelf delivers an uncatchable SIGKILL to this process, simulating
// the batch scheduler's kill without any goodbye on the pipe.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}

// heartbeats beats on the transport until stopped; the returned stop
// waits for the beater to exit so a heartbeat can never trail the
// lease's result frame. Each beat piggybacks the worker's pending
// observability payload (spans drained so far, current metric
// snapshot) when shipping is on.
func heartbeats(tr Transport, lease int64, every time.Duration, wo *workerObs) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				hb := Msg{Type: MsgHeartbeat, Lease: lease}
				if wo != nil {
					wo.attach(&hb)
				}
				if tr.Send(hb) != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runEval evaluates one lease, converting a panic into a fault reply.
// The Transient contract of the panic value survives the wire via the
// persistent flag, so the coordinator's WorkerFault re-classifies
// identically to an in-process run. When the lease carried trace
// context, sp is the worker.eval span (the evaluator hangs interp.run
// under it) and reg the worker registry feeding eval_run_ns.
func runEval(eval search.Evaluator, asn map[string]int, sp *obs.Span, reg *obs.Registry) (ev *search.Evaluation, fault string, faulted, persistent bool) {
	a := transform.Assignment(asn)
	if a == nil {
		a = transform.Assignment{}
	}
	defer func() {
		if r := recover(); r != nil {
			faulted = true
			if err, ok := r.(error); ok {
				fault = err.Error()
			} else {
				fault = fmt.Sprint(r)
			}
			if t, ok := r.(interface{ Transient() bool }); ok && !t.Transient() {
				persistent = true
			}
		}
	}()
	defer sp.End()
	start := time.Now()
	ev = search.Evaluate(eval, sp, a)
	reg.Histogram(obs.HistEvalRunNS).Observe(float64(time.Since(start)))
	return
}
