package resilience

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/search"
	"repro/internal/transform"
)

// scriptedEval returns canned evaluations and panics per-key for the
// first `failures[key]` attempts. Safe for concurrent use.
type scriptedEval struct {
	mu       sync.Mutex
	failures map[string]int // key -> attempts that panic before success
	fault    func(key string, attempt int) any
	result   func(a transform.Assignment) *search.Evaluation
	calls    atomic.Int64
	attempts map[string]int
}

func (s *scriptedEval) Evaluate(a transform.Assignment) *search.Evaluation {
	s.calls.Add(1)
	key := a.Key()
	s.mu.Lock()
	if s.attempts == nil {
		s.attempts = make(map[string]int)
	}
	s.attempts[key]++
	n := s.attempts[key]
	remaining := s.failures[key]
	s.mu.Unlock()
	if n <= remaining {
		if s.fault != nil {
			panic(s.fault(key, n))
		}
		panic("injected: transient worker death")
	}
	if s.result != nil {
		return s.result(a)
	}
	return &search.Evaluation{Assignment: a, Status: search.StatusPass, Lowered: a.Lowered()}
}

func asn(names ...string) transform.Assignment {
	a := make(transform.Assignment)
	for _, n := range names {
		a[n] = 4
	}
	return a
}

// sup builds a supervisor with no real sleeping.
func sup(inner search.Evaluator) *Supervised {
	return &Supervised{Inner: inner, Sleep: func(time.Duration) {}}
}

// TestVariantOutcomesNeverRetried is the Table II guard: evaluations the
// inner evaluator *returns* — fail, timeout, error, including ones
// produced from interpreter run errors — are variant outcomes, passed
// through verbatim with exactly one inner call, never retried.
func TestVariantOutcomesNeverRetried(t *testing.T) {
	outcomes := []*search.Evaluation{
		{Status: search.StatusFail, RelError: 10},
		{Status: search.StatusTimeout, Detail: (&interp.RunError{Kind: interp.FailTimeout, Msg: "cycle budget exceeded"}).Error()},
		{Status: search.StatusError, Detail: (&interp.RunError{Kind: interp.FailNonFinite, Msg: "NaN in x"}).Error()},
	}
	for _, want := range outcomes {
		want := want
		se := &scriptedEval{result: func(a transform.Assignment) *search.Evaluation {
			cp := *want
			cp.Assignment = a
			return &cp
		}}
		s := sup(se)
		s.MaxRetries = 5
		got := s.Evaluate(asn("m.p.v01"))
		if got.Status != want.Status || got.RelError != want.RelError || got.Detail != want.Detail {
			t.Errorf("status %v: evaluation altered by supervisor: got %+v", want.Status, got)
		}
		if se.calls.Load() != 1 {
			t.Errorf("status %v: inner evaluator called %d times, want exactly 1 (variant outcomes must not be retried)",
				want.Status, se.calls.Load())
		}
	}
}

// TestTransientFaultRetriedAndRecovered: panics within the retry budget
// are absorbed and the eventual success returned.
func TestTransientFaultRetriedAndRecovered(t *testing.T) {
	key := asn("m.p.v01").Key()
	se := &scriptedEval{failures: map[string]int{key: 2}}
	s := sup(se)
	s.MaxRetries = 3
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }

	ev := s.Evaluate(asn("m.p.v01"))
	if ev.Status != search.StatusPass {
		t.Fatalf("recovered evaluation status = %v, want pass", ev.Status)
	}
	if se.calls.Load() != 3 {
		t.Errorf("inner called %d times, want 3 (2 faults + success)", se.calls.Load())
	}
	st := s.Stats()
	if st.Retried != 2 || st.Recovered != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want 2 retried / 1 recovered / 0 quarantined", st)
	}
	if len(events) != 2 || events[0].Type != EventRetry || events[1].Type != EventRetry {
		t.Fatalf("events = %+v, want two retry events", events)
	}
	if events[0].Attempt != 1 || events[1].Attempt != 2 {
		t.Errorf("retry attempts = %d, %d, want 1, 2", events[0].Attempt, events[1].Attempt)
	}
}

// TestRetriesExhaustedQuarantines: a persistently panicking assignment
// exhausts its budget, yields StatusInfra, and short-circuits thereafter.
func TestRetriesExhaustedQuarantines(t *testing.T) {
	key := asn("m.p.v01").Key()
	se := &scriptedEval{failures: map[string]int{key: 1 << 20}}
	s := sup(se)
	s.MaxRetries = 2
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }

	ev := s.Evaluate(asn("m.p.v01"))
	if ev.Status != search.StatusInfra {
		t.Fatalf("status = %v, want infra", ev.Status)
	}
	if !strings.HasPrefix(ev.Detail, "quarantined: ") {
		t.Errorf("detail = %q, want quarantined prefix", ev.Detail)
	}
	if got := se.calls.Load(); got != 3 {
		t.Errorf("inner called %d times, want 3 (MaxRetries=2 allows 3 attempts)", got)
	}
	if len(events) != 3 || events[2].Type != EventQuarantine {
		t.Fatalf("events = %+v, want retry, retry, quarantine", events)
	}

	// Second evaluation of the same assignment: no inner calls at all.
	ev2 := s.Evaluate(asn("m.p.v01"))
	if ev2.Status != search.StatusInfra || ev2.Detail != ev.Detail {
		t.Errorf("short-circuited evaluation = %+v, want identical infra record", ev2)
	}
	if se.calls.Load() != 3 {
		t.Errorf("quarantined key reached the inner evaluator again (%d calls)", se.calls.Load())
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != key {
		t.Errorf("Quarantined() = %v, want [%s]", q, key)
	}
}

// TestPersistentFaultSkipsRetries: a fault whose Transient() reports
// false is quarantined on the first attempt — retrying cannot cure it.
func TestPersistentFaultSkipsRetries(t *testing.T) {
	a := asn("m.p.v01")
	se := &scriptedEval{
		failures: map[string]int{a.Key(): 1 << 20},
		fault: func(key string, attempt int) any {
			return &search.InjectedFault{Key: key, Persistent: true}
		},
	}
	s := sup(se)
	s.MaxRetries = 5
	ev := s.Evaluate(a)
	if ev.Status != search.StatusInfra {
		t.Fatalf("status = %v, want infra", ev.Status)
	}
	if se.calls.Load() != 1 {
		t.Errorf("persistent fault retried: %d inner calls, want 1", se.calls.Load())
	}
	if st := s.Stats(); st.Retried != 0 || st.Quarantined != 1 {
		t.Errorf("stats = %+v, want 0 retried / 1 quarantined", st)
	}
}

// TestBreakerTrips: consecutive quarantines reach the threshold and the
// supervisor fails fast with an AbortError implementing search.Abort.
func TestBreakerTrips(t *testing.T) {
	se := &scriptedEval{
		failures: map[string]int{asn("m.p.v01").Key(): 1 << 20, asn("m.p.v02").Key(): 1 << 20},
	}
	s := sup(se)
	s.Breaker = 2
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }

	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatalf("first quarantine status = %v", ev.Status)
	}
	abort := func() (ae *AbortError) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if ae, ok = r.(*AbortError); !ok {
					panic(r)
				}
			}
		}()
		s.Evaluate(asn("m.p.v02"))
		return nil
	}()
	if abort == nil {
		t.Fatal("breaker did not trip on the second consecutive quarantine")
	}
	if abort.Reason != AbortBreaker || abort.Consecutive != 2 || abort.Quarantined != 2 {
		t.Errorf("abort = %+v, want breaker reason, 2 consecutive, 2 quarantined", abort)
	}
	var searchAbort search.Abort = abort
	if searchAbort.SearchAbort() == "" {
		t.Error("AbortError must describe itself via search.Abort")
	}
	var err error = abort
	if !errors.As(err, &abort) {
		t.Error("AbortError must be usable as an error")
	}
	if last := events[len(events)-1]; last.Type != EventBreakerTrip {
		t.Errorf("last event = %+v, want breaker_trip", last)
	}
	if !s.Stats().BreakerTripped {
		t.Error("stats do not record the trip")
	}

	// Once open, the breaker rejects further evaluations immediately.
	calls := se.calls.Load()
	func() {
		defer func() { recover() }()
		s.Evaluate(asn("m.p.v03"))
		t.Error("evaluation after trip did not panic")
	}()
	if se.calls.Load() != calls {
		t.Error("open breaker still reached the inner evaluator")
	}
}

// TestSuccessResetsConsecutive: an intervening success resets the
// breaker counter, so scattered hard failures do not trip it.
func TestSuccessResetsConsecutive(t *testing.T) {
	se := &scriptedEval{
		failures: map[string]int{asn("m.p.v01").Key(): 1 << 20, asn("m.p.v03").Key(): 1 << 20},
	}
	s := sup(se)
	s.Breaker = 2
	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatal("first quarantine missing")
	}
	if ev := s.Evaluate(asn("m.p.v02")); ev.Status != search.StatusPass {
		t.Fatal("healthy evaluation failed")
	}
	// Without the reset this would be the second consecutive quarantine.
	ev := s.Evaluate(asn("m.p.v03"))
	if ev.Status != search.StatusInfra {
		t.Fatalf("third evaluation = %v, want quarantined infra (not a trip)", ev.Status)
	}
	if s.Stats().BreakerTripped {
		t.Error("breaker tripped despite intervening success")
	}
}

// TestMaxQuarantinedAborts: exhausting the quarantine budget aborts with
// the quarantine reason even though no consecutive run tripped the
// breaker.
func TestMaxQuarantinedAborts(t *testing.T) {
	se := &scriptedEval{
		failures: map[string]int{asn("m.p.v01").Key(): 1 << 20, asn("m.p.v03").Key(): 1 << 20},
	}
	s := sup(se)
	s.MaxQuarantined = 1
	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatal("first quarantine missing")
	}
	if ev := s.Evaluate(asn("m.p.v02")); ev.Status != search.StatusPass {
		t.Fatal("healthy evaluation failed")
	}
	abort := func() (ae *AbortError) {
		defer func() {
			if r := recover(); r != nil {
				ae = r.(*AbortError)
			}
		}()
		s.Evaluate(asn("m.p.v03"))
		return nil
	}()
	if abort == nil || abort.Reason != AbortQuarantine {
		t.Fatalf("abort = %+v, want quarantine-budget reason", abort)
	}
}

// TestQuarantinePreload: a key preloaded from a resumed run's event
// journal never reaches the inner evaluator.
func TestQuarantinePreload(t *testing.T) {
	a := asn("m.p.v01")
	se := &scriptedEval{failures: map[string]int{a.Key(): 1 << 20}}
	s := sup(se)
	s.Quarantine(a.Key(), "injected: prior-run fault")
	ev := s.Evaluate(a)
	if ev.Status != search.StatusInfra || ev.Detail != "quarantined: injected: prior-run fault" {
		t.Fatalf("preloaded quarantine evaluation = %+v", ev)
	}
	if se.calls.Load() != 0 {
		t.Error("preloaded quarantine reached the inner evaluator")
	}
	if s.Stats().Quarantined != 1 {
		t.Errorf("stats.Quarantined = %d, want 1", s.Stats().Quarantined)
	}
}

// TestDefaultClassify pins the classifier contract.
func TestDefaultClassify(t *testing.T) {
	if DefaultClassify("any panic") != ClassTransient {
		t.Error("plain panic values must default to transient")
	}
	if DefaultClassify(&search.InjectedFault{Key: "k", Persistent: true}) != ClassPersistent {
		t.Error("Transient()==false faults must classify persistent")
	}
	if DefaultClassify(&search.InjectedFault{Key: "k"}) != ClassTransient {
		t.Error("Transient()==true faults must classify transient")
	}
}

// TestBackoffDeterministicAndBounded: delays are a pure function of
// (seed, key, attempt), bounded by the capped exponential ceiling.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Seed: 42}
	for attempt := 0; attempt < 10; attempt++ {
		d1 := b.Delay("m.p.v01", attempt)
		d2 := b.Delay("m.p.v01", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		ceil := 100 * time.Millisecond << uint(attempt)
		if ceil > time.Second || ceil < 0 {
			ceil = time.Second
		}
		if d1 < 0 || d1 > ceil {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d1, ceil)
		}
	}
	// Different seeds and keys decorrelate.
	b2 := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Seed: 43}
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if b.Delay("m.p.v01", attempt) == b2.Delay("m.p.v01", attempt) {
			same++
		}
		if b.Delay("m.p.v01", attempt) == b.Delay("m.p.v02", attempt) {
			same++
		}
	}
	if same == 16 {
		t.Error("jitter ignores seed and key")
	}
}

// TestSupervisedConcurrency exercises the supervisor from many
// goroutines (the batched search does this) — run under -race.
func TestSupervisedConcurrency(t *testing.T) {
	poison := asn("m.p.v00").Key()
	se := &scriptedEval{failures: map[string]int{poison: 1 << 20}}
	s := sup(se)
	s.MaxRetries = 1
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := "m.p.v0" + string(rune('0'+i%4))
				s.Evaluate(asn(name))
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Errorf("quarantined %d keys, want 1", st.Quarantined)
	}
	if st.Evaluations != 160 {
		t.Errorf("evaluations = %d, want 160", st.Evaluations)
	}
}
