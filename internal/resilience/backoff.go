package resilience

import (
	"hash/fnv"
	"time"
)

// Default backoff shape: 100ms doubling per retry, capped at 5s.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	defaultCapFactor   = 50 // Cap defaults to 50x Base
)

// Backoff computes capped exponential retry delays with full jitter.
// The jitter is drawn from a hash of (Seed, assignment key, attempt) —
// a seeded RNG with no shared state — so delays are reproducible and
// independent of evaluation order and parallelism: a journaled run
// under retries stays byte-deterministic.
type Backoff struct {
	// Base is the first-retry ceiling (0 = DefaultBackoffBase).
	Base time.Duration
	// Cap bounds the exponential growth (0 = 50x Base).
	Cap time.Duration
	// Seed drives the jitter hash.
	Seed int64
}

// Delay returns the backoff before retry `attempt` (0-based) of the
// assignment with canonical key `key`: a uniform draw from
// [0, min(Cap, Base<<attempt)] — "full jitter", which decorrelates
// retry storms across workers while keeping each delay bounded.
func (b Backoff) Delay(key string, attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultBackoffBase
	}
	limit := b.Cap
	if limit <= 0 {
		limit = defaultCapFactor * base
	}
	ceil := base
	for i := 0; i < attempt && ceil < limit; i++ {
		ceil *= 2
	}
	if ceil > limit {
		ceil = limit
	}
	h := fnv.New64a()
	// Length-prefix-free framing is unnecessary here: the hash only
	// drives jitter, not identity.
	_, _ = h.Write([]byte(key))
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b.Seed >> (8 * i))
		buf[8+i] = byte(int64(attempt) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	// FNV-1a avalanches trailing bytes poorly; scramble before taking
	// the high bits.
	frac := float64(mix64(h.Sum64())>>11) / float64(1<<53)
	return time.Duration(frac * float64(ceil))
}

// mix64 is the MurmurHash3 fmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
