package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/transform"
)

// simEval mirrors the search package's test target: pass iff every
// critical atom stays 64-bit, error if a fragile atom is lowered.
type simEval struct {
	atoms    []transform.Atom
	critical map[string]bool
	fragile  map[string]bool
	calls    atomic.Int64
}

func (f *simEval) Evaluate(a transform.Assignment) *search.Evaluation {
	f.calls.Add(1)
	lowered := 0
	bad, boom := false, false
	for _, at := range f.atoms {
		if a.KindOf(at.QName, 8) == 4 {
			lowered++
			bad = bad || f.critical[at.QName]
			boom = boom || f.fragile[at.QName]
		}
	}
	ev := &search.Evaluation{Lowered: lowered, TotalAtoms: len(f.atoms), Speedup: 1 + float64(lowered)*0.05}
	switch {
	case boom:
		ev.Status = search.StatusError
	case bad:
		ev.Status = search.StatusFail
		ev.RelError = 10
	default:
		ev.Status = search.StatusPass
		ev.RelError = 1e-6 * float64(lowered)
	}
	return ev
}

func simTarget() ([]transform.Atom, *simEval, search.Options) {
	atoms := make([]transform.Atom, 24)
	for i := range atoms {
		atoms[i] = transform.Atom{QName: fmt.Sprintf("m.p.v%02d", i)}
	}
	fe := &simEval{
		atoms:    atoms,
		critical: map[string]bool{"m.p.v05": true, "m.p.v17": true},
		fragile:  map[string]bool{"m.p.v09": true},
	}
	return atoms, fe, search.Options{Criteria: search.Criteria{MaxRelError: 1e-3, MinSpeedup: 1}}
}

func logKeys(l *search.Log) []string {
	out := make([]string, len(l.Evals))
	for i, ev := range l.Evals {
		out[i] = fmt.Sprintf("%s|%v|%g|%g|%d", ev.Assignment.Key(), ev.Status, ev.Speedup, ev.RelError, ev.Index)
	}
	return out
}

// TestSupervisedSearchLogIdenticalUnderFlakyFaults is the headline
// resilience property at the search layer: a supervised search whose
// workers die transiently (30% per attempt) produces the SAME evaluation
// log, in the same order with the same values, as a fault-free run —
// retries absorb the noise without distorting Table II data.
func TestSupervisedSearchLogIdenticalUnderFlakyFaults(t *testing.T) {
	atoms, fe, opts := simTarget()
	ref := search.Precimonious(nil, fe, atoms, opts)
	refKeys := logKeys(ref.Log)

	for _, par := range []int{1, 8} {
		atoms2, fe2, opts2 := simTarget()
		opts2.Parallelism = par
		inj := &search.FaultInjector{Inner: fe2, Mode: search.FaultFlaky, Rate: 0.3, Seed: 7}
		s := &Supervised{Inner: inj, MaxRetries: 8, Sleep: func(time.Duration) {}}
		out := search.Precimonious(nil, s, atoms2, opts2)

		st := s.Stats()
		if st.Quarantined != 0 {
			t.Fatalf("par=%d: flaky faults quarantined %d assignment(s); pick a different injector seed", par, st.Quarantined)
		}
		if st.Retried == 0 {
			t.Fatalf("par=%d: no faults fired — the test is vacuous", par)
		}
		got := logKeys(out.Log)
		if len(got) != len(refKeys) {
			t.Fatalf("par=%d: %d evals, want %d", par, len(got), len(refKeys))
		}
		for i := range got {
			if got[i] != refKeys[i] {
				t.Fatalf("par=%d: eval %d = %s, want %s", par, i, got[i], refKeys[i])
			}
		}
		if fmt.Sprint(out.Minimal) != fmt.Sprint(ref.Minimal) {
			t.Errorf("par=%d: minimal %v, want %v", par, out.Minimal, ref.Minimal)
		}
	}
}

// TestSupervisedSearchQuarantinesPoisonedAssignment: a persistently
// crashing assignment is quarantined as a StatusInfra record — excluded
// from the Table II counts — and the search still finds the reference
// 1-minimal set.
func TestSupervisedSearchQuarantinesPoisonedAssignment(t *testing.T) {
	atoms, fe, opts := simTarget()
	ref := search.Precimonious(nil, fe, atoms, opts)
	refTotal, _, _, _, _ := ref.Log.Counts()

	// Poison the all-32 variant: it is the very first proposal, and in
	// the reference run it fails (critical atoms lowered), so replacing
	// its outcome with "unknown" must not steer the search differently.
	all32 := transform.Uniform(atoms, 4)
	atoms2, fe2, opts2 := simTarget()
	inj := &search.FaultInjector{Inner: fe2, Mode: search.FaultCrashKey, CrashKey: all32.Key()}
	s := &Supervised{Inner: inj, MaxRetries: 2, Sleep: func(time.Duration) {}}
	out := search.Precimonious(nil, s, atoms2, opts2)

	if got := out.Log.InfraCount(); got != 1 {
		t.Fatalf("InfraCount = %d, want 1", got)
	}
	total, _, _, _, _ := out.Log.Counts()
	if total != refTotal-1 {
		t.Errorf("Counts total = %d, want %d (infra record must be excluded)", total, refTotal-1)
	}
	if fmt.Sprint(out.Minimal) != fmt.Sprint(ref.Minimal) {
		t.Errorf("minimal %v, want %v", out.Minimal, ref.Minimal)
	}
	if inj.Calls() != int64(1)+fe2.calls.Load() {
		t.Errorf("injector admitted %d calls for %d inner evaluations: persistent fault must be attempted exactly once", inj.Calls(), fe2.calls.Load())
	}
	if s.Stats().Retried != 0 {
		t.Error("persistent fault was retried")
	}
}

// gatedCrash panics persistently on one key — but only after at least
// one other evaluation has completed, so a concurrent sibling's result
// is always there to salvage when the breaker trips.
type gatedCrash struct {
	inner   search.Evaluator
	crash   string
	sibling chan struct{}
	once    sync.Once
}

func (g *gatedCrash) Evaluate(a transform.Assignment) *search.Evaluation {
	if a.Key() == g.crash {
		<-g.sibling
		panic(fmt.Sprintf("injected: persistent crash on %q", g.crash))
	}
	ev := g.inner.Evaluate(a)
	g.once.Do(func() { close(g.sibling) })
	return ev
}

// TestBreakerTripSalvagesSiblingsAndResumes: when the breaker fails the
// search fast mid-batch, completed sibling evaluations are salvaged, and
// a later run seeded with them (plus the quarantine) reproduces the
// fault-free log without re-paying for the salvaged work.
func TestBreakerTripSalvagesSiblingsAndResumes(t *testing.T) {
	atoms, fe, opts := simTarget()
	ref := search.Precimonious(nil, fe, atoms, opts)
	refKeys := logKeys(ref.Log)

	// Trip on the all-32 variant — slot 0 of the opening 2-candidate
	// batch — so its sibling (all-64) completes and must be salvaged.
	// The crash is gated on the sibling's completion, making "the
	// completed sibling is salvaged" a deterministic property instead of
	// a scheduler race.
	all32 := transform.Uniform(atoms, 4)
	atoms2, fe2, opts2 := simTarget()
	opts2.Parallelism = 2
	log := search.NewLog()
	opts2.Log = log
	var salvaged []*search.Evaluation
	opts2.OnSalvage = func(ev *search.Evaluation) {
		cp := *ev
		salvaged = append(salvaged, &cp)
	}
	crash := &gatedCrash{inner: fe2, crash: all32.Key(), sibling: make(chan struct{})}
	s := &Supervised{Inner: crash, Breaker: 1, Sleep: func(time.Duration) {}}

	abort := func() (ae *AbortError) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if ae, ok = r.(*AbortError); !ok {
					panic(r)
				}
			}
		}()
		search.Precimonious(nil, s, atoms2, opts2)
		return nil
	}()
	if abort == nil || abort.Reason != AbortBreaker {
		t.Fatalf("abort = %+v, want breaker trip", abort)
	}
	if len(log.Evals) != 0 {
		t.Fatalf("trip at slot 0 left %d journaled evals", len(log.Evals))
	}
	if len(salvaged) != 1 || len(log.Salvaged) != 1 {
		t.Fatalf("salvaged %d evals (observer saw %d), want 1 — the completed all-64 sibling", len(log.Salvaged), len(salvaged))
	}
	if salvaged[0].Status != search.StatusPass || salvaged[0].Lowered != 0 {
		t.Fatalf("salvaged evaluation = %+v, want the all-64 pass", salvaged[0])
	}

	// "Fix the infrastructure" and rerun, seeding the salvage and the
	// quarantine the way the tuner replays them from the events sidecar.
	atoms3, fe3, opts3 := simTarget()
	salv := make(map[string]*search.Evaluation)
	for _, ev := range salvaged {
		cp := *ev
		key := cp.Assignment.Key()
		cp.Assignment = nil
		salv[key] = &cp
	}
	opts3.Salvaged = salv
	var replayedFresh []bool
	opts3.OnAdd = func(ev *search.Evaluation, replayed bool) { replayedFresh = append(replayedFresh, replayed) }
	s3 := &Supervised{Inner: fe3, MaxRetries: 2, Sleep: func(time.Duration) {}}
	s3.Quarantine(all32.Key(), "search: injected crash on "+fmt.Sprintf("%q", all32.Key()))
	out := search.Precimonious(nil, s3, atoms3, opts3)

	got := logKeys(out.Log)
	if len(got) != len(refKeys) {
		t.Fatalf("resumed run logged %d evals, want %d", len(got), len(refKeys))
	}
	for i := range got {
		want := refKeys[i]
		if i == 0 {
			// The poisoned slot is an infra record instead of the
			// reference failure; everything after it must match exactly.
			if out.Log.Evals[0].Status != search.StatusInfra {
				t.Fatalf("slot 0 status = %v, want infra", out.Log.Evals[0].Status)
			}
			continue
		}
		if got[i] != want {
			t.Fatalf("resumed eval %d = %s, want %s", i, got[i], want)
		}
	}
	// The salvaged all-64 evaluation was served from the sidecar: the
	// evaluator never re-ran it, and it journaled as fresh.
	for _, ev := range []*search.Evaluation{out.Log.Evals[1]} {
		if ev.Lowered != 0 {
			t.Fatalf("slot 1 is not the all-64 variant: %+v", ev)
		}
	}
	if replayedFresh[1] {
		t.Error("salvaged evaluation reported as replayed; it must journal as fresh")
	}
	want := len(refKeys) - 2 // all-32 quarantined, all-64 salvaged
	if int(fe3.calls.Load()) != want {
		t.Errorf("evaluator ran %d times, want %d (salvage must not be re-paid)", fe3.calls.Load(), want)
	}
	if fmt.Sprint(out.Minimal) != fmt.Sprint(ref.Minimal) {
		t.Errorf("minimal %v, want %v", out.Minimal, ref.Minimal)
	}
}
