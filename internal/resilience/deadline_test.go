package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/transform"
)

func TestFaultKindOf(t *testing.T) {
	cases := []struct {
		fault any
		want  string
	}{
		{&HangFault{Key: "k", After: time.Second}, KindHang},
		{namedKindFault{"node-flap"}, "node-flap"},
		{errors.New("mmap: out of memory while allocating arena"), KindOOM},
		{"fortran runtime: cannot allocate memory", KindOOM},
		{"OOM-killer selected worker 3", KindOOM},
		{errors.New("slurmstepd: job killed by SIGTERM"), KindSchedulerKill},
		{"node preempted by higher-priority allocation", KindSchedulerKill},
		{"PBS: walltime exceeded", KindSchedulerKill},
		{"segmentation fault in cast-flow pass", KindGeneric},
		{42, KindGeneric},
	}
	for _, c := range cases {
		if got := FaultKindOf(c.fault); got != c.want {
			t.Errorf("FaultKindOf(%v) = %q, want %q", c.fault, got, c.want)
		}
	}
}

type namedKindFault struct{ kind string }

func (f namedKindFault) Error() string     { return "custom fault" }
func (f namedKindFault) FaultKind() string { return f.kind }

func TestParseRetryBudgets(t *testing.T) {
	if m, err := ParseRetryBudgets(""); m != nil || err != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", m, err)
	}
	m, err := ParseRetryBudgets(" oom=1, scheduler-kill=4 ,hang=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{KindOOM: 1, KindSchedulerKill: 4, KindHang: 2}
	if len(m) != len(want) {
		t.Fatalf("parsed %v, want %v", m, want)
	}
	for k, n := range want {
		if m[k] != n {
			t.Errorf("budget[%s] = %d, want %d", k, m[k], n)
		}
	}
	if got := FormatRetryBudgets(m); got != "hang=2,oom=1,scheduler-kill=4" {
		t.Errorf("FormatRetryBudgets = %q", got)
	}
	for _, bad := range []string{"hang", "hang=-1", "hang=x", "=3"} {
		if _, err := ParseRetryBudgets(bad); err == nil {
			t.Errorf("ParseRetryBudgets(%q) accepted", bad)
		}
	}
}

func TestDefaultRetryBudgets(t *testing.T) {
	if m := DefaultRetryBudgets(0); m != nil {
		t.Errorf("base 0 = %v, want nil", m)
	}
	m := DefaultRetryBudgets(3)
	if m[KindSchedulerKill] != 6 || m[KindOOM] != 1 || m[KindHang] != 3 {
		t.Errorf("base 3 = %v", m)
	}
	if DefaultRetryBudgets(1)[KindOOM] != 1 {
		t.Error("OOM budget must stay at least 1")
	}
}

// TestRetryBudgetByKind: a scheduler kill draws from its own, larger
// budget even when the base MaxRetries would have given up, and a
// zero per-kind budget quarantines on the first fault of that kind
// regardless of MaxRetries.
func TestRetryBudgetByKind(t *testing.T) {
	key := asn("m.p.v01").Key()
	se := &scriptedEval{
		failures: map[string]int{key: 3},
		fault: func(string, int) any {
			return errors.New("worker killed by scheduler (SIGTERM)")
		},
	}
	s := sup(se)
	s.MaxRetries = 1
	s.RetriesByKind = map[string]int{KindSchedulerKill: 3}
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }
	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass (scheduler-kill budget covers 3 faults)", ev.Status)
	}
	if se.calls.Load() != 4 {
		t.Errorf("inner called %d times, want 4", se.calls.Load())
	}
	for _, e := range events {
		if e.Type == EventRetry && e.Kind != KindSchedulerKill {
			t.Errorf("retry event kind = %q, want %q", e.Kind, KindSchedulerKill)
		}
	}

	se2 := &scriptedEval{
		failures: map[string]int{key: 1},
		fault:    func(string, int) any { return errors.New("worker out of memory") },
	}
	s2 := sup(se2)
	s2.MaxRetries = 5
	s2.RetriesByKind = map[string]int{KindOOM: 0}
	if ev := s2.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatalf("status = %v, want infra (zero OOM budget quarantines immediately)", ev.Status)
	}
	if se2.calls.Load() != 1 {
		t.Errorf("inner called %d times, want 1", se2.calls.Load())
	}
}

// hangEval blocks (instead of panicking) for the first hangs[key]
// attempts — a worker that wedges rather than dies. Blocked goroutines
// stay parked on release until the test closes it.
type hangEval struct {
	mu       sync.Mutex
	hangs    map[string]int
	attempts map[string]int
	release  chan struct{}
	calls    atomic.Int64
}

func (h *hangEval) Evaluate(a transform.Assignment) *search.Evaluation {
	h.calls.Add(1)
	key := a.Key()
	h.mu.Lock()
	if h.attempts == nil {
		h.attempts = make(map[string]int)
	}
	h.attempts[key]++
	hang := h.attempts[key] <= h.hangs[key]
	h.mu.Unlock()
	if hang {
		<-h.release
	}
	return &search.Evaluation{Assignment: a, Status: search.StatusPass, Lowered: a.Lowered()}
}

// TestWatchdogAbandonsHungAttempt: a wedged attempt is abandoned after
// the watchdog limit, classified as a hang, retried, and the retry's
// success returned — the hang costs one attempt, not the search.
func TestWatchdogAbandonsHungAttempt(t *testing.T) {
	key := asn("m.p.v01").Key()
	he := &hangEval{hangs: map[string]int{key: 1}, release: make(chan struct{})}
	t.Cleanup(func() { close(he.release) })
	s := sup(he)
	s.Watchdog = 10 * time.Millisecond
	s.MaxRetries = 1
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }

	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusPass {
		t.Fatalf("status = %v, want pass", ev.Status)
	}
	st := s.Stats()
	if st.Hung != 1 || st.Retried != 1 || st.Recovered != 1 {
		t.Errorf("stats = %+v, want Hung=1 Retried=1 Recovered=1", st)
	}
	var sawWatchdog, sawRetry bool
	for _, e := range events {
		switch e.Type {
		case EventWatchdog:
			sawWatchdog = true
			if e.Kind != KindHang || !strings.Contains(e.Fault, "hung") {
				t.Errorf("watchdog event = %+v", e)
			}
		case EventRetry:
			sawRetry = true
			if e.Kind != KindHang {
				t.Errorf("retry kind = %q, want hang", e.Kind)
			}
		}
	}
	if !sawWatchdog || !sawRetry {
		t.Errorf("events %v: want a watchdog and a retry event", events)
	}
}

// TestWatchdogPersistentHangQuarantines: an attempt that hangs on every
// retry exhausts the hang budget and is quarantined like any other
// persistent infrastructure fault.
func TestWatchdogPersistentHangQuarantines(t *testing.T) {
	key := asn("m.p.v01").Key()
	he := &hangEval{hangs: map[string]int{key: 100}, release: make(chan struct{})}
	t.Cleanup(func() { close(he.release) })
	s := sup(he)
	s.Watchdog = 10 * time.Millisecond
	s.RetriesByKind = map[string]int{KindHang: 1}

	ev := s.Evaluate(asn("m.p.v01"))
	if ev.Status != search.StatusInfra || !strings.Contains(ev.Detail, "hung") {
		t.Fatalf("evaluation = %+v, want quarantined hang", ev)
	}
	st := s.Stats()
	if st.Hung != 2 || st.Quarantined != 1 {
		t.Errorf("stats = %+v, want Hung=2 Quarantined=1", st)
	}
	// The quarantine is durable: re-evaluating must not touch the
	// evaluator again.
	before := he.calls.Load()
	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Errorf("re-evaluation status = %v, want infra", ev.Status)
	}
	if he.calls.Load() != before {
		t.Error("quarantined assignment touched the evaluator again")
	}
}

// TestHalfOpenProbeClosesBreaker: with HalfOpen set, tripping opens the
// breaker instead of aborting; the next evaluation probes, succeeds,
// and closes it, and the search carries on.
func TestHalfOpenProbeClosesBreaker(t *testing.T) {
	se := &scriptedEval{failures: map[string]int{
		asn("m.p.v01").Key(): 1000,
		asn("m.p.v02").Key(): 1000,
	}}
	s := sup(se)
	s.Breaker = 2
	s.HalfOpen = true
	var events []Event
	s.OnEvent = func(e Event) { events = append(events, e) }

	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatalf("first hard failure: status = %v, want infra", ev.Status)
	}
	if ev := s.Evaluate(asn("m.p.v02")); ev.Status != search.StatusInfra {
		t.Fatalf("second hard failure: status = %v, want infra", ev.Status)
	}
	if ev := s.Evaluate(asn("m.p.v03")); ev.Status != search.StatusPass {
		t.Fatalf("probe: status = %v, want pass", ev.Status)
	}
	if ev := s.Evaluate(asn("m.p.v04")); ev.Status != search.StatusPass {
		t.Fatalf("post-close: status = %v, want pass", ev.Status)
	}

	st := s.Stats()
	if st.Probes != 1 || st.FailedProbes != 0 || st.BreakerClosed != 1 {
		t.Errorf("stats = %+v, want Probes=1 FailedProbes=0 BreakerClosed=1", st)
	}
	if st.BreakerTripped {
		t.Error("a ridden-out open breaker must not count as tripped")
	}
	var types []EventType
	for _, e := range events {
		types = append(types, e.Type)
	}
	wantOrder := []EventType{EventQuarantine, EventQuarantine, EventBreakerOpen, EventBreakerProbe, EventBreakerClose}
	if fmt.Sprint(types) != fmt.Sprint(wantOrder) {
		t.Errorf("event order %v, want %v", types, wantOrder)
	}
}

// TestHalfOpenFailedProbesRetrip: MaxProbes consecutive failed probes
// exhaust the half-open breaker's patience and the search aborts with
// the usual breaker AbortError.
func TestHalfOpenFailedProbesRetrip(t *testing.T) {
	se := &scriptedEval{
		failures: map[string]int{},
		fault:    func(string, int) any { return errors.New("injected: rack power loss") },
	}
	for i := 1; i <= 4; i++ {
		se.failures[asn(fmt.Sprintf("m.p.v%02d", i)).Key()] = 1000
	}
	s := sup(se)
	s.Breaker = 1
	s.HalfOpen = true
	s.MaxProbes = 2

	if ev := s.Evaluate(asn("m.p.v01")); ev.Status != search.StatusInfra {
		t.Fatalf("opening failure: status = %v, want infra", ev.Status)
	}
	if ev := s.Evaluate(asn("m.p.v02")); ev.Status != search.StatusInfra {
		t.Fatalf("first failed probe: status = %v, want infra (breaker stays open)", ev.Status)
	}
	abort := mustAbort(t, func() { s.Evaluate(asn("m.p.v03")) })
	if abort.Reason != AbortBreaker {
		t.Errorf("abort reason = %v, want breaker", abort.Reason)
	}
	// Once terminally aborted, every further evaluation fails fast.
	abort = mustAbort(t, func() { s.Evaluate(asn("m.p.v04")) })
	if abort.LastFault != "breaker already open" {
		t.Errorf("post-abort LastFault = %q", abort.LastFault)
	}

	st := s.Stats()
	if st.Probes != 2 || st.FailedProbes != 2 || !st.BreakerTripped {
		t.Errorf("stats = %+v, want Probes=2 FailedProbes=2 tripped", st)
	}
}

func mustAbort(t *testing.T, fn func()) (abort *AbortError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an AbortError panic")
		}
		ae, ok := r.(*AbortError)
		if !ok {
			t.Fatalf("panic value %T (%v), want *AbortError", r, r)
		}
		abort = ae
	}()
	fn()
	return nil
}

// TestHalfOpenConcurrentWaiters: while one probe is in flight every
// other evaluation blocks; a successful probe releases them all and
// exactly one probe is ever spent. Run with -race.
func TestHalfOpenConcurrentWaiters(t *testing.T) {
	se := &scriptedEval{failures: map[string]int{asn("m.p.v00").Key(): 1000}}
	s := sup(se)
	s.Breaker = 1
	s.HalfOpen = true

	if ev := s.Evaluate(asn("m.p.v00")); ev.Status != search.StatusInfra {
		t.Fatalf("opening failure: status = %v, want infra", ev.Status)
	}
	var wg sync.WaitGroup
	var passes atomic.Int64
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ev := s.Evaluate(asn(fmt.Sprintf("m.p.v%02d", i))); ev.Status == search.StatusPass {
				passes.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if passes.Load() != 8 {
		t.Errorf("%d of 8 waiters passed", passes.Load())
	}
	st := s.Stats()
	if st.Probes != 1 || st.BreakerClosed != 1 {
		t.Errorf("stats = %+v, want exactly one probe and one close", st)
	}
}

// panicEval always panics with a fixed value.
type panicEval struct {
	v     any
	calls atomic.Int64
}

func (p *panicEval) Evaluate(transform.Assignment) *search.Evaluation {
	p.calls.Add(1)
	panic(p.v)
}

// TestCancellationNotRetried: a context cancellation unwinding through
// the supervisor is a deliberate stop, not an infrastructure fault — it
// must pass through unretried and unquarantined, and blocked breaker
// waiters must unwind with the same cause.
func TestCancellationNotRetried(t *testing.T) {
	cancelled := search.NewCancelled(context.Canceled)
	pe := &panicEval{v: cancelled}
	s := sup(pe)
	s.MaxRetries = 5

	recovered := func(fn func()) (r any) {
		defer func() { r = recover() }()
		fn()
		return nil
	}
	if r := recovered(func() { s.Evaluate(asn("m.p.v01")) }); r != any(cancelled) {
		t.Fatalf("recovered %v (%T), want the original *search.Cancelled", r, r)
	}
	if pe.calls.Load() != 1 {
		t.Errorf("inner called %d times, want 1 (cancellation is never retried)", pe.calls.Load())
	}
	st := s.Stats()
	if st.Retried != 0 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want no retries or quarantines", st)
	}
	// The supervisor is now terminally aborted with the cancellation:
	// further evaluations re-raise it without touching the evaluator.
	if r := recovered(func() { s.Evaluate(asn("m.p.v02")) }); r != any(cancelled) {
		t.Errorf("post-cancel recovered %v (%T), want the original *search.Cancelled", r, r)
	}
	if pe.calls.Load() != 1 {
		t.Errorf("inner called %d times after cancellation, want still 1", pe.calls.Load())
	}
}
