// Package resilience makes the tuning search survive the failures the
// paper's pipeline meets on Derecho: compile-node faults, job-limit
// kills, and flaky workers that die mid-evaluation. Its Supervised
// evaluator wraps any search.Evaluator and draws one hard line:
//
//   - Variant outcomes — StatusFail, StatusTimeout, StatusError
//     evaluations *returned* by the inner evaluator — are deterministic
//     properties of the precision assignment (Table II buckets). They
//     pass through untouched and are NEVER retried: re-running them
//     cannot change the answer, and retrying would distort the paper's
//     outcome statistics.
//   - Infrastructure faults — *panics* escaping the inner evaluator —
//     say nothing about the assignment. Transient ones are retried with
//     capped exponential backoff (seeded, per-assignment jitter, so
//     journaled runs stay deterministic); persistent ones exhaust the
//     retry budget and the assignment is quarantined: it yields a
//     search.StatusInfra evaluation instead of crashing the search, and
//     a resumed run short-circuits it without touching the evaluator.
//
// Transient faults are budgeted per kind (scheduler kills, OOMs, hangs
// — see FaultKindOf): a requeue routinely cures a scheduler kill, so it
// deserves more retries than an OOM that will recur on every attempt.
// A per-evaluation wall-clock watchdog (Watchdog) converts a hung
// worker — one that neither returns nor panics — into a transient
// HangFault that travels the same retry/quarantine taxonomy, so a
// wedged evaluation no longer blocks its whole batch.
//
// A circuit breaker counts consecutive quarantines: N hard
// infrastructure failures in a row mean the infrastructure itself is
// down, and burning the remaining evaluation budget into it is worse
// than failing fast. In its default configuration the breaker trips by
// panicking with an *AbortError (a search.Abort), which the batched
// search layer uses to salvage completed sibling results before
// unwinding, and which the tuner converts into a partial report instead
// of a stack trace. With HalfOpen set, tripping instead *opens* the
// breaker: new evaluations block while a single probe evaluation tests
// whether the infrastructure recovered; a successful probe closes the
// breaker and the search resumes, while MaxProbes consecutive failed
// probes give up and abort as before. Because evaluation results are
// pure functions of the assignment, a search that rode out an open
// breaker produces the same journal as one that never tripped.
package resilience

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/transform"
)

// Class classifies a recovered panic value.
type Class int

const (
	// ClassTransient faults may succeed on retry (node fault, kill).
	ClassTransient Class = iota
	// ClassPersistent faults will recur on every attempt; retrying only
	// burns time, so the assignment is quarantined immediately.
	ClassPersistent
)

// Classifier maps a recovered panic value to a fault class.
type Classifier func(v any) Class

// DefaultClassify treats every panic as a transient infrastructure
// fault — the search would rather waste a few retries than abort — but
// honors a `Transient() bool` method on the panic value (implemented by
// search.InjectedFault's crash-on-key mode, and available to any real
// evaluator that can tell a poisoned config from a flaky node).
func DefaultClassify(v any) Class {
	if t, ok := v.(interface{ Transient() bool }); ok && !t.Transient() {
		return ClassPersistent
	}
	return ClassTransient
}

// EventType tags a resilience event.
type EventType string

// Event types, also used verbatim as journal sidecar record types.
const (
	// EventRetry: a transient fault was absorbed and the attempt retried.
	EventRetry EventType = "retry"
	// EventQuarantine: retries exhausted (or the fault was persistent);
	// the assignment is quarantined and evaluates to StatusInfra.
	EventQuarantine EventType = "quarantine"
	// EventBreakerTrip: too many consecutive quarantines; the search is
	// failing fast with a partial report.
	EventBreakerTrip EventType = "breaker_trip"
	// EventWatchdog: the per-evaluation watchdog abandoned a hung
	// attempt and substituted a transient HangFault.
	EventWatchdog EventType = "watchdog"
	// EventBreakerOpen: the half-open breaker opened; new evaluations
	// block until a probe settles the infrastructure's fate.
	EventBreakerOpen EventType = "breaker_open"
	// EventBreakerProbe: one evaluation is probing the opened breaker.
	EventBreakerProbe EventType = "breaker_probe"
	// EventBreakerClose: a probe succeeded; the breaker closed and the
	// search resumed.
	EventBreakerClose EventType = "breaker_close"
)

// Event is one observable resilience decision. Events are emitted on
// the evaluating goroutine, in decision order; under parallel
// evaluation their interleaving across assignments is nondeterministic
// (the evaluation *log* stays deterministic regardless).
type Event struct {
	Type EventType
	// Key is the canonical assignment key the event concerns.
	Key string
	// Attempt is the 1-based attempt that faulted (EventRetry) or the
	// total attempts spent before quarantining (EventQuarantine).
	Attempt int
	// Fault is the rendered panic value.
	Fault string
	// Kind is the fault's class label (FaultKindOf) on retry,
	// quarantine, and watchdog events; empty on breaker events.
	Kind string
	// Backoff is the delay slept before the retry (EventRetry only).
	Backoff time.Duration
}

// Stats is a snapshot of supervisor counters.
type Stats struct {
	// Evaluations is the number of Evaluate calls answered, including
	// quarantine short-circuits.
	Evaluations int64
	// Attempts is the number of inner evaluator invocations.
	Attempts int64
	// Retried is the number of faulted attempts that were retried.
	Retried int64
	// Recovered is the number of evaluations that succeeded after at
	// least one retry.
	Recovered int64
	// Quarantined is the number of quarantined assignments, including
	// those preloaded from a resumed run's event journal.
	Quarantined int
	// Hung is the number of attempts the watchdog abandoned.
	Hung int64
	// Probes is the number of half-open breaker probes started.
	Probes int64
	// FailedProbes is the number of probes that ended in quarantine.
	FailedProbes int64
	// BreakerClosed is the number of times a probe closed the breaker.
	BreakerClosed int64
	// BreakerTripped reports whether the circuit breaker has tripped.
	BreakerTripped bool
}

// AbortReason says why the supervisor terminated the search.
type AbortReason int

const (
	// AbortBreaker: too many consecutive hard infrastructure failures.
	AbortBreaker AbortReason = iota
	// AbortQuarantine: the quarantine budget (MaxQuarantined) was
	// exhausted — so many distinct assignments are poisoned that the
	// search's coverage is no longer meaningful.
	AbortQuarantine
)

func (r AbortReason) String() string {
	if r == AbortQuarantine {
		return "quarantine budget exhausted"
	}
	return "circuit breaker tripped"
}

// AbortError is the panic value the supervisor fails fast with. It
// implements search.Abort, so the batched search salvages completed
// sibling results before unwinding, and error, so the tuner can return
// it alongside the partial result.
type AbortError struct {
	Reason AbortReason
	// Consecutive is the consecutive hard-failure count at trip time.
	Consecutive int
	// Quarantined is the total quarantined-assignment count.
	Quarantined int
	// LastFault is the rendered fault that pushed it over.
	LastFault string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("resilience: %s after %d consecutive hard infrastructure failure(s) (%d assignment(s) quarantined; last fault: %s)",
		e.Reason, e.Consecutive, e.Quarantined, e.LastFault)
}

// SearchAbort implements search.Abort.
func (e *AbortError) SearchAbort() string { return e.Error() }

// Supervised wraps a search.Evaluator with panic recovery, retry,
// quarantine, and a circuit breaker. It is safe for concurrent use (the
// batched search evaluates through it from many goroutines). The zero
// value of every knob is usable: no retries, default classifier and
// backoff, breaker disabled.
type Supervised struct {
	// Inner is the wrapped evaluator (required).
	Inner search.Evaluator
	// MaxRetries bounds retries of transient faults per evaluation (the
	// first attempt is not a retry; MaxRetries=3 allows 4 attempts).
	MaxRetries int
	// RetriesByKind overrides MaxRetries for specific fault kinds
	// (FaultKindOf labels; see DefaultRetryBudgets for sane values).
	// Kinds absent from the map use MaxRetries.
	RetriesByKind map[string]int
	// Watchdog bounds each attempt's wall-clock time; 0 disables it. An
	// attempt that exceeds the limit is abandoned — its goroutine leaks
	// until the inner evaluation eventually returns, so real evaluators
	// should also honor a context deadline — and treated as a transient
	// *HangFault, retried within the hang retry budget and quarantined
	// past it like any other infrastructure fault.
	Watchdog time.Duration
	// Breaker trips the circuit breaker after this many consecutive
	// quarantines (hard infrastructure failures with no intervening
	// success). 0 disables the breaker.
	Breaker int
	// HalfOpen makes a tripped breaker open instead of aborting: new
	// evaluations block while one probe evaluation (after a
	// ProbeCooldown sleep) tests the infrastructure. A successful probe
	// closes the breaker; MaxProbes consecutive failed probes abort.
	HalfOpen bool
	// MaxProbes bounds consecutive failed half-open probes before the
	// breaker gives up and aborts (default 3).
	MaxProbes int
	// ProbeCooldown is slept (via Sleep) before each probe touches the
	// infrastructure, giving it time to recover (default 10×
	// DefaultBackoffBase).
	ProbeCooldown time.Duration
	// MaxQuarantined aborts the search once more than this many distinct
	// assignments are quarantined. 0 = unlimited.
	MaxQuarantined int
	// Classify overrides DefaultClassify.
	Classify Classifier
	// Backoff shapes the retry delay (zero value = defaults).
	Backoff Backoff
	// Sleep overrides time.Sleep between retries (tests inject a no-op).
	Sleep func(time.Duration)
	// OnEvent observes retry/quarantine/breaker decisions; the tuner
	// bridges it to the journal's events sidecar. Called on the
	// evaluating goroutine; a panic here propagates like an evaluator
	// panic would, but is not classified or retried.
	OnEvent func(Event)
	// Metrics, if non-nil, receives per-event counters (events_<type>,
	// retries, retries_<kind>, quarantined) and the breaker_open gauge —
	// purely observational, alongside (never instead of) the events
	// sidecar. Unlike Stats.Quarantined it counts only quarantines
	// decided this run, not ones preloaded from a resumed journal.
	Metrics *obs.Registry

	mu          sync.Mutex
	quarantined map[string]string // assignment key -> rendered fault
	consecutive int
	tripped     bool
	stats       Stats

	// Half-open breaker state, guarded by mu. cond is created on first
	// use (the zero Supervised stays usable); aborted holds the terminal
	// panic value once the supervisor has decided to unwind, so blocked
	// waiters re-raise the same cause instead of deadlocking.
	cond          *sync.Cond
	open          bool
	probing       bool
	probeFailures int
	aborted       any
}

// Quarantine preloads a quarantined assignment (typically replayed from
// a resumed run's event journal): evaluating it returns StatusInfra
// without touching the inner evaluator, so a poisoned configuration
// cannot re-crash a resumed search.
func (s *Supervised) Quarantine(key, fault string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined == nil {
		s.quarantined = make(map[string]string)
	}
	if _, ok := s.quarantined[key]; !ok {
		s.quarantined[key] = fault
		s.stats.Quarantined++
	}
}

// Quarantined returns the quarantined assignment keys, sorted.
func (s *Supervised) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.quarantined))
	for k := range s.quarantined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the supervisor counters.
func (s *Supervised) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Supervised) classify(v any) Class {
	if s.Classify != nil {
		return s.Classify(v)
	}
	return DefaultClassify(v)
}

func (s *Supervised) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Sleep != nil {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (s *Supervised) event(e Event) {
	if m := s.Metrics; m != nil {
		m.Counter(obs.MetricEventsPrefix + string(e.Type)).Add(1)
		switch e.Type {
		case EventRetry:
			m.Counter(obs.MetricRetries).Add(1)
			if e.Kind != "" {
				m.Counter(obs.MetricRetriesPrefix + e.Kind).Add(1)
			}
		case EventQuarantine:
			m.Counter(obs.MetricQuarantined).Add(1)
		case EventBreakerTrip, EventBreakerOpen:
			m.Gauge(obs.GaugeBreakerOpen).Set(1)
		case EventBreakerClose:
			m.Gauge(obs.GaugeBreakerOpen).Set(0)
		}
	}
	if s.OnEvent != nil {
		s.OnEvent(e)
	}
}

// retryBudget returns the retry budget for a fault kind.
func (s *Supervised) retryBudget(kind string) int {
	if n, ok := s.RetriesByKind[kind]; ok {
		return n
	}
	return s.MaxRetries
}

func (s *Supervised) maxProbes() int {
	if s.MaxProbes > 0 {
		return s.MaxProbes
	}
	return 3
}

func (s *Supervised) probeCooldown() time.Duration {
	if s.ProbeCooldown > 0 {
		return s.ProbeCooldown
	}
	return 10 * DefaultBackoffBase
}

// condLocked returns the breaker condition variable, creating it on
// first use. Callers must hold mu.
func (s *Supervised) condLocked() *sync.Cond {
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	return s.cond
}

// broadcastLocked wakes every goroutine blocked on the breaker gate.
// Callers must hold mu.
func (s *Supervised) broadcastLocked() {
	if s.cond != nil {
		s.cond.Broadcast()
	}
}

// abortValueLocked is what a waiter (or a fresh Evaluate call) panics
// with once the supervisor has terminally aborted. A cancellation
// propagates as-is so the tuner reports the true cause; a breaker abort
// is re-rendered so each panicking goroutine says the breaker was
// already open. Callers must hold mu.
func (s *Supervised) abortValueLocked() any {
	if _, ok := s.aborted.(*AbortError); !ok && s.aborted != nil {
		return s.aborted
	}
	reason := AbortBreaker
	if ae, ok := s.aborted.(*AbortError); ok {
		reason = ae.Reason
	}
	return &AbortError{Reason: reason, Consecutive: s.consecutive,
		Quarantined: len(s.quarantined), LastFault: "breaker already open"}
}

// attempt runs one inner evaluation, converting a panic into a fault
// value. fault is nil on success. With a watchdog configured the inner
// call runs on its own goroutine: if it produces nothing within the
// limit it is abandoned (the goroutine leaks until the evaluation
// returns on its own) and a transient *HangFault is reported instead.
// sp is the caller's eval span, threaded through to span-aware inner
// evaluators (nil when tracing is off).
func (s *Supervised) attempt(sp *obs.Span, key string, a transform.Assignment) (ev *search.Evaluation, fault any) {
	s.mu.Lock()
	s.stats.Attempts++
	s.mu.Unlock()
	if s.Watchdog <= 0 {
		defer func() {
			if r := recover(); r != nil {
				fault = r
			}
		}()
		return search.Evaluate(s.Inner, sp, a), nil
	}
	type outcome struct {
		ev    *search.Evaluation
		fault any
	}
	// Buffered so an abandoned worker's late send never blocks it forever.
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{fault: r}
			}
		}()
		ch <- outcome{ev: search.Evaluate(s.Inner, sp, a)}
	}()
	timer := time.NewTimer(s.Watchdog)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.ev, o.fault
	case <-timer.C:
		s.mu.Lock()
		s.stats.Hung++
		s.mu.Unlock()
		return nil, &HangFault{Key: key, After: s.Watchdog}
	}
}

// quarantineDetail renders the StatusInfra detail for a quarantined
// assignment. It must be a pure function of the fault text so the
// record a crashed run journaled and the record a resumed run rebuilds
// from the event journal are identical.
func quarantineDetail(fault string) string { return "quarantined: " + fault }

// Evaluate implements search.Evaluator.
func (s *Supervised) Evaluate(a transform.Assignment) *search.Evaluation {
	return s.EvaluateSpan(nil, a)
}

// EvaluateSpan implements search.SpanEvaluator: identical to Evaluate,
// additionally emitting one "retry" child span per retried attempt
// (covering the backoff sleep and the re-attempt) and threading sp
// through to a span-aware inner evaluator. sp may be nil.
func (s *Supervised) EvaluateSpan(sp *obs.Span, a transform.Assignment) *search.Evaluation {
	key := a.Key()

	s.mu.Lock()
	s.stats.Evaluations++
	// Half-open gate: while the breaker is open and a probe is in
	// flight, everyone else waits for its verdict instead of hammering
	// infrastructure that is presumed down.
	for s.aborted == nil && s.open && s.probing {
		s.condLocked().Wait()
	}
	if s.aborted != nil {
		abort := s.abortValueLocked()
		s.mu.Unlock()
		panic(abort)
	}
	fault, poisoned := s.quarantined[key]
	isProbe := false
	if !poisoned && s.open {
		// First caller through an idle open breaker becomes the probe; a
		// quarantined key cannot probe (it never touches the evaluator).
		s.probing = true
		isProbe = true
		s.stats.Probes++
	}
	s.mu.Unlock()
	if poisoned {
		return s.infraEvaluation(a, fault)
	}
	if isProbe {
		s.event(Event{Type: EventBreakerProbe, Key: key})
		s.sleep(s.probeCooldown())
	}

	var lastFault string
	// rsp is the span of the retry currently being paid for: opened when
	// a retry is decided, closed — with its outcome — when the retried
	// attempt returns.
	var rsp *obs.Span
	for attempt := 0; ; attempt++ {
		ev, fault := s.attempt(sp, key, a)
		if rsp != nil {
			if fault == nil {
				rsp.Attr("outcome", "recovered")
			} else {
				rsp.Attr("outcome", "failed")
			}
			rsp.End()
			rsp = nil
		}
		if fault == nil {
			s.mu.Lock()
			s.consecutive = 0
			if attempt > 0 {
				s.stats.Recovered++
			}
			if isProbe {
				// The probe came back: the infrastructure recovered.
				// Close the breaker and release the waiters.
				s.open = false
				s.probing = false
				s.probeFailures = 0
				s.stats.BreakerClosed++
				s.broadcastLocked()
			}
			s.mu.Unlock()
			if isProbe {
				s.event(Event{Type: EventBreakerClose, Key: key})
			}
			return ev
		}
		// Deliberate search terminations — a context cancellation, a
		// nested abort — are not infrastructure faults: they must not be
		// retried or quarantined. Record the cause so gate waiters unwind
		// with it instead of deadlocking, then re-raise.
		if _, ok := fault.(search.Abort); ok {
			s.mu.Lock()
			if s.aborted == nil {
				s.aborted = fault
			}
			s.broadcastLocked()
			s.mu.Unlock()
			panic(fault)
		}
		kind := FaultKindOf(fault)
		lastFault = renderFault(fault)
		if _, hung := fault.(*HangFault); hung {
			s.event(Event{Type: EventWatchdog, Key: key, Attempt: attempt + 1, Fault: lastFault, Kind: kind})
		}
		if s.classify(fault) == ClassTransient && attempt < s.retryBudget(kind) {
			delay := s.Backoff.Delay(key, attempt)
			s.mu.Lock()
			s.stats.Retried++
			s.mu.Unlock()
			s.event(Event{Type: EventRetry, Key: key, Attempt: attempt + 1, Fault: lastFault, Kind: kind, Backoff: delay})
			rsp = sp.Child(obs.SpanRetry)
			rsp.Attr("key", key)
			rsp.AttrInt("attempt", int64(attempt+1))
			rsp.Attr("kind", kind)
			rsp.Attr("class", "transient")
			rsp.AttrInt("backoff_ns", int64(delay))
			s.sleep(delay)
			continue
		}
		// Hard infrastructure failure: quarantine the assignment. Two
		// workers can race to exhaust retries on the same key (batched
		// duplicates are deduplicated upstream, but nothing forbids it);
		// only the first counts.
		s.mu.Lock()
		if s.quarantined == nil {
			s.quarantined = make(map[string]string)
		}
		if _, dup := s.quarantined[key]; !dup {
			s.quarantined[key] = lastFault
			s.stats.Quarantined++
		}
		s.consecutive++
		trip := s.Breaker > 0 && s.consecutive >= s.Breaker
		exhausted := s.MaxQuarantined > 0 && len(s.quarantined) > s.MaxQuarantined
		abort := &AbortError{Consecutive: s.consecutive,
			Quarantined: len(s.quarantined), LastFault: lastFault}
		terminal := false   // the search aborts now
		justOpened := false // the half-open breaker opened on this fault
		switch {
		case exhausted:
			// A meaningless search is not worth probing for.
			abort.Reason = AbortQuarantine
			terminal = true
		case isProbe:
			// The probe failed: the infrastructure is still down. Stay
			// open and let the next waiter probe, unless the probe budget
			// is spent.
			s.probing = false
			s.probeFailures++
			s.stats.FailedProbes++
			if s.probeFailures >= s.maxProbes() {
				abort.Reason = AbortBreaker
				terminal = true
			} else {
				s.broadcastLocked()
			}
		case trip:
			if s.HalfOpen {
				justOpened = !s.open
				s.open = true
			} else {
				abort.Reason = AbortBreaker
				terminal = true
			}
		}
		if terminal {
			s.tripped = true
			if abort.Reason == AbortBreaker {
				s.stats.BreakerTripped = true
			}
			s.aborted = abort
			s.broadcastLocked()
		}
		s.mu.Unlock()

		s.event(Event{Type: EventQuarantine, Key: key, Attempt: attempt + 1, Fault: lastFault, Kind: kind})
		if terminal {
			if abort.Reason == AbortBreaker {
				s.event(Event{Type: EventBreakerTrip, Key: key, Fault: lastFault})
			}
			panic(abort)
		}
		if justOpened {
			s.event(Event{Type: EventBreakerOpen, Key: key, Fault: lastFault})
		}
		return s.infraEvaluation(a, lastFault)
	}
}

// infraEvaluation builds the StatusInfra evaluation for a quarantined
// assignment.
func (s *Supervised) infraEvaluation(a transform.Assignment, fault string) *search.Evaluation {
	return &search.Evaluation{
		Assignment: a,
		Status:     search.StatusInfra,
		Lowered:    a.Lowered(),
		Detail:     quarantineDetail(fault),
	}
}

// renderFault formats a recovered panic value.
func renderFault(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	return fmt.Sprint(v)
}
