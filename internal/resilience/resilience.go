// Package resilience makes the tuning search survive the failures the
// paper's pipeline meets on Derecho: compile-node faults, job-limit
// kills, and flaky workers that die mid-evaluation. Its Supervised
// evaluator wraps any search.Evaluator and draws one hard line:
//
//   - Variant outcomes — StatusFail, StatusTimeout, StatusError
//     evaluations *returned* by the inner evaluator — are deterministic
//     properties of the precision assignment (Table II buckets). They
//     pass through untouched and are NEVER retried: re-running them
//     cannot change the answer, and retrying would distort the paper's
//     outcome statistics.
//   - Infrastructure faults — *panics* escaping the inner evaluator —
//     say nothing about the assignment. Transient ones are retried with
//     capped exponential backoff (seeded, per-assignment jitter, so
//     journaled runs stay deterministic); persistent ones exhaust the
//     retry budget and the assignment is quarantined: it yields a
//     search.StatusInfra evaluation instead of crashing the search, and
//     a resumed run short-circuits it without touching the evaluator.
//
// A circuit breaker counts consecutive quarantines: N hard
// infrastructure failures in a row mean the infrastructure itself is
// down, and burning the remaining evaluation budget into it is worse
// than failing fast. The breaker trips by panicking with an *AbortError
// (a search.Abort), which the batched search layer uses to salvage
// completed sibling results before unwinding, and which the tuner
// converts into a partial report instead of a stack trace.
package resilience

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/search"
	"repro/internal/transform"
)

// Class classifies a recovered panic value.
type Class int

const (
	// ClassTransient faults may succeed on retry (node fault, kill).
	ClassTransient Class = iota
	// ClassPersistent faults will recur on every attempt; retrying only
	// burns time, so the assignment is quarantined immediately.
	ClassPersistent
)

// Classifier maps a recovered panic value to a fault class.
type Classifier func(v any) Class

// DefaultClassify treats every panic as a transient infrastructure
// fault — the search would rather waste a few retries than abort — but
// honors a `Transient() bool` method on the panic value (implemented by
// search.InjectedFault's crash-on-key mode, and available to any real
// evaluator that can tell a poisoned config from a flaky node).
func DefaultClassify(v any) Class {
	if t, ok := v.(interface{ Transient() bool }); ok && !t.Transient() {
		return ClassPersistent
	}
	return ClassTransient
}

// EventType tags a resilience event.
type EventType string

// Event types, also used verbatim as journal sidecar record types.
const (
	// EventRetry: a transient fault was absorbed and the attempt retried.
	EventRetry EventType = "retry"
	// EventQuarantine: retries exhausted (or the fault was persistent);
	// the assignment is quarantined and evaluates to StatusInfra.
	EventQuarantine EventType = "quarantine"
	// EventBreakerTrip: too many consecutive quarantines; the search is
	// failing fast with a partial report.
	EventBreakerTrip EventType = "breaker_trip"
)

// Event is one observable resilience decision. Events are emitted on
// the evaluating goroutine, in decision order; under parallel
// evaluation their interleaving across assignments is nondeterministic
// (the evaluation *log* stays deterministic regardless).
type Event struct {
	Type EventType
	// Key is the canonical assignment key the event concerns.
	Key string
	// Attempt is the 1-based attempt that faulted (EventRetry) or the
	// total attempts spent before quarantining (EventQuarantine).
	Attempt int
	// Fault is the rendered panic value.
	Fault string
}

// Stats is a snapshot of supervisor counters.
type Stats struct {
	// Evaluations is the number of Evaluate calls answered, including
	// quarantine short-circuits.
	Evaluations int64
	// Attempts is the number of inner evaluator invocations.
	Attempts int64
	// Retried is the number of faulted attempts that were retried.
	Retried int64
	// Recovered is the number of evaluations that succeeded after at
	// least one retry.
	Recovered int64
	// Quarantined is the number of quarantined assignments, including
	// those preloaded from a resumed run's event journal.
	Quarantined int
	// BreakerTripped reports whether the circuit breaker has tripped.
	BreakerTripped bool
}

// AbortReason says why the supervisor terminated the search.
type AbortReason int

const (
	// AbortBreaker: too many consecutive hard infrastructure failures.
	AbortBreaker AbortReason = iota
	// AbortQuarantine: the quarantine budget (MaxQuarantined) was
	// exhausted — so many distinct assignments are poisoned that the
	// search's coverage is no longer meaningful.
	AbortQuarantine
)

func (r AbortReason) String() string {
	if r == AbortQuarantine {
		return "quarantine budget exhausted"
	}
	return "circuit breaker tripped"
}

// AbortError is the panic value the supervisor fails fast with. It
// implements search.Abort, so the batched search salvages completed
// sibling results before unwinding, and error, so the tuner can return
// it alongside the partial result.
type AbortError struct {
	Reason AbortReason
	// Consecutive is the consecutive hard-failure count at trip time.
	Consecutive int
	// Quarantined is the total quarantined-assignment count.
	Quarantined int
	// LastFault is the rendered fault that pushed it over.
	LastFault string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("resilience: %s after %d consecutive hard infrastructure failure(s) (%d assignment(s) quarantined; last fault: %s)",
		e.Reason, e.Consecutive, e.Quarantined, e.LastFault)
}

// SearchAbort implements search.Abort.
func (e *AbortError) SearchAbort() string { return e.Error() }

// Supervised wraps a search.Evaluator with panic recovery, retry,
// quarantine, and a circuit breaker. It is safe for concurrent use (the
// batched search evaluates through it from many goroutines). The zero
// value of every knob is usable: no retries, default classifier and
// backoff, breaker disabled.
type Supervised struct {
	// Inner is the wrapped evaluator (required).
	Inner search.Evaluator
	// MaxRetries bounds retries of transient faults per evaluation (the
	// first attempt is not a retry; MaxRetries=3 allows 4 attempts).
	MaxRetries int
	// Breaker trips the circuit breaker after this many consecutive
	// quarantines (hard infrastructure failures with no intervening
	// success). 0 disables the breaker.
	Breaker int
	// MaxQuarantined aborts the search once more than this many distinct
	// assignments are quarantined. 0 = unlimited.
	MaxQuarantined int
	// Classify overrides DefaultClassify.
	Classify Classifier
	// Backoff shapes the retry delay (zero value = defaults).
	Backoff Backoff
	// Sleep overrides time.Sleep between retries (tests inject a no-op).
	Sleep func(time.Duration)
	// OnEvent observes retry/quarantine/breaker decisions; the tuner
	// bridges it to the journal's events sidecar. Called on the
	// evaluating goroutine; a panic here propagates like an evaluator
	// panic would, but is not classified or retried.
	OnEvent func(Event)

	mu          sync.Mutex
	quarantined map[string]string // assignment key -> rendered fault
	consecutive int
	tripped     bool
	stats       Stats
}

// Quarantine preloads a quarantined assignment (typically replayed from
// a resumed run's event journal): evaluating it returns StatusInfra
// without touching the inner evaluator, so a poisoned configuration
// cannot re-crash a resumed search.
func (s *Supervised) Quarantine(key, fault string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined == nil {
		s.quarantined = make(map[string]string)
	}
	if _, ok := s.quarantined[key]; !ok {
		s.quarantined[key] = fault
		s.stats.Quarantined++
	}
}

// Quarantined returns the quarantined assignment keys, sorted.
func (s *Supervised) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.quarantined))
	for k := range s.quarantined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the supervisor counters.
func (s *Supervised) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Supervised) classify(v any) Class {
	if s.Classify != nil {
		return s.Classify(v)
	}
	return DefaultClassify(v)
}

func (s *Supervised) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Sleep != nil {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (s *Supervised) event(e Event) {
	if s.OnEvent != nil {
		s.OnEvent(e)
	}
}

// attempt runs one inner evaluation, converting a panic into a fault
// value. fault is nil on success.
func (s *Supervised) attempt(a transform.Assignment) (ev *search.Evaluation, fault any) {
	defer func() {
		if r := recover(); r != nil {
			fault = r
		}
	}()
	s.mu.Lock()
	s.stats.Attempts++
	s.mu.Unlock()
	return s.Inner.Evaluate(a), nil
}

// quarantineDetail renders the StatusInfra detail for a quarantined
// assignment. It must be a pure function of the fault text so the
// record a crashed run journaled and the record a resumed run rebuilds
// from the event journal are identical.
func quarantineDetail(fault string) string { return "quarantined: " + fault }

// Evaluate implements search.Evaluator.
func (s *Supervised) Evaluate(a transform.Assignment) *search.Evaluation {
	key := a.Key()

	s.mu.Lock()
	s.stats.Evaluations++
	if s.tripped {
		abort := &AbortError{Reason: AbortBreaker, Consecutive: s.consecutive,
			Quarantined: len(s.quarantined), LastFault: "breaker already open"}
		s.mu.Unlock()
		panic(abort)
	}
	fault, poisoned := s.quarantined[key]
	s.mu.Unlock()
	if poisoned {
		return s.infraEvaluation(a, fault)
	}

	var lastFault string
	for attempt := 0; ; attempt++ {
		ev, fault := s.attempt(a)
		if fault == nil {
			s.mu.Lock()
			s.consecutive = 0
			if attempt > 0 {
				s.stats.Recovered++
			}
			s.mu.Unlock()
			return ev
		}
		lastFault = renderFault(fault)
		if s.classify(fault) == ClassTransient && attempt < s.MaxRetries {
			s.mu.Lock()
			s.stats.Retried++
			s.mu.Unlock()
			s.event(Event{Type: EventRetry, Key: key, Attempt: attempt + 1, Fault: lastFault})
			s.sleep(s.Backoff.Delay(key, attempt))
			continue
		}
		// Hard infrastructure failure: quarantine the assignment. Two
		// workers can race to exhaust retries on the same key (batched
		// duplicates are deduplicated upstream, but nothing forbids it);
		// only the first counts.
		s.mu.Lock()
		if s.quarantined == nil {
			s.quarantined = make(map[string]string)
		}
		if _, dup := s.quarantined[key]; !dup {
			s.quarantined[key] = lastFault
			s.stats.Quarantined++
		}
		s.consecutive++
		trip := s.Breaker > 0 && s.consecutive >= s.Breaker
		exhausted := s.MaxQuarantined > 0 && len(s.quarantined) > s.MaxQuarantined
		abort := &AbortError{Consecutive: s.consecutive,
			Quarantined: len(s.quarantined), LastFault: lastFault}
		if trip {
			s.tripped = true
			s.stats.BreakerTripped = true
		}
		s.mu.Unlock()

		s.event(Event{Type: EventQuarantine, Key: key, Attempt: attempt + 1, Fault: lastFault})
		switch {
		case trip:
			abort.Reason = AbortBreaker
			s.event(Event{Type: EventBreakerTrip, Key: key, Fault: lastFault})
			panic(abort)
		case exhausted:
			abort.Reason = AbortQuarantine
			panic(abort)
		}
		return s.infraEvaluation(a, lastFault)
	}
}

// infraEvaluation builds the StatusInfra evaluation for a quarantined
// assignment.
func (s *Supervised) infraEvaluation(a transform.Assignment, fault string) *search.Evaluation {
	return &search.Evaluation{
		Assignment: a,
		Status:     search.StatusInfra,
		Lowered:    a.Lowered(),
		Detail:     quarantineDetail(fault),
	}
}

// renderFault formats a recovered panic value.
func renderFault(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	return fmt.Sprint(v)
}
