package resilience

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fault kinds label transient infrastructure faults so the supervisor
// can budget retries per class: on a batch machine a scheduler kill is
// routinely cured by a requeue, while an OOM usually recurs until the
// node (or the variant's footprint) changes, and a hang says the worker
// wedged. Kinds are strings, not an enum, so real evaluators can
// introduce site-specific classes without touching this package.
const (
	// KindGeneric is every fault no other rule claims.
	KindGeneric = "generic"
	// KindSchedulerKill: the batch system killed the worker (SIGTERM/
	// SIGKILL, preemption, job wall-clock limit).
	KindSchedulerKill = "scheduler-kill"
	// KindOOM: the worker died of memory exhaustion.
	KindOOM = "oom"
	// KindHang: the per-evaluation watchdog abandoned a wedged worker.
	KindHang = "hang"
)

// HangFault is the fault value the watchdog substitutes for an attempt
// that produced no result within the wall-clock limit. It classifies
// transient (a retry on a healthy worker may succeed) and carries the
// KindHang label for per-kind retry budgets.
type HangFault struct {
	// Key is the canonical assignment key of the hung evaluation.
	Key string
	// After is the watchdog limit the attempt exceeded.
	After time.Duration
}

func (h *HangFault) Error() string {
	return fmt.Sprintf("resilience: evaluation of %q hung (no result after %v); worker abandoned", h.Key, h.After)
}

// FaultKind labels the fault for per-kind retry budgets.
func (h *HangFault) FaultKind() string { return KindHang }

// FaultKindOf labels a recovered fault value. A value implementing
// `FaultKind() string` names its own kind; otherwise the rendered
// message is matched against the scheduler-kill and OOM vocabularies
// the paper's pipeline meets on Derecho, falling back to KindGeneric.
func FaultKindOf(v any) string {
	if k, ok := v.(interface{ FaultKind() string }); ok {
		if s := k.FaultKind(); s != "" {
			return s
		}
	}
	msg := strings.ToLower(renderFault(v))
	switch {
	case strings.Contains(msg, "out of memory") || strings.Contains(msg, "oom") ||
		strings.Contains(msg, "cannot allocate"):
		return KindOOM
	case strings.Contains(msg, "sigterm") || strings.Contains(msg, "sigkill") ||
		strings.Contains(msg, "killed") || strings.Contains(msg, "preempt") ||
		strings.Contains(msg, "job limit") || strings.Contains(msg, "walltime") ||
		strings.Contains(msg, "wall-clock limit"):
		return KindSchedulerKill
	}
	return KindGeneric
}

// DefaultRetryBudgets returns the per-kind retry budgets implied by a
// base budget: scheduler kills get double (a requeue usually lands on a
// healthy allocation), OOM gets half but at least one (it usually
// recurs), hangs keep the base (a wedged worker is a coin flip). A
// non-positive base returns nil — no supervision, no budgets.
func DefaultRetryBudgets(base int) map[string]int {
	if base <= 0 {
		return nil
	}
	oom := base / 2
	if oom < 1 {
		oom = 1
	}
	return map[string]int{
		KindSchedulerKill: base * 2,
		KindOOM:           oom,
		KindHang:          base,
	}
}

// ParseRetryBudgets parses a "kind=N,kind=N" flag value (as accepted by
// prose tune -retries-by-class) into a per-kind budget map. Kinds are
// free-form; counts must be non-negative integers.
func ParseRetryBudgets(s string) (map[string]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || strings.TrimSpace(kv[0]) == "" {
			return nil, fmt.Errorf("resilience: bad retry budget %q (want kind=count)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("resilience: bad retry count in %q (want a non-negative integer)", part)
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}

// FormatRetryBudgets renders a budget map in ParseRetryBudgets syntax,
// kinds sorted, for help text and reports.
func FormatRetryBudgets(m map[string]int) string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, ",")
}
