package ledger

import (
	"fmt"
	"strings"
)

// FunnelRound is one search round's candidate funnel, reconstructed
// from a decision log.
type FunnelRound struct {
	Round       int     `json:"round"`
	Candidates  int     `json:"candidates"`
	Evaluated   int     `json:"evaluated"`
	Cached      int     `json:"cached"`
	Pruned      int     `json:"pruned"`
	Accepted    int     `json:"accepted"`
	Evals       int     `json:"evals"` // cumulative log length after the round
	BestSpeedup float64 `json:"best_speedup"`
	Frontier    int     `json:"frontier"`
}

// Funnel reconstructs the per-round search funnel from decision-log
// events. It prefers each round's round_end tallies and falls back to
// counting candidate events, so a torn log (killed mid-round) still
// yields the completed prefix plus the partial round.
func Funnel(evs []DecisionEvent) []FunnelRound {
	var out []FunnelRound
	byRound := map[int]*FunnelRound{}
	get := func(round int) *FunnelRound {
		if fr, ok := byRound[round]; ok {
			return fr
		}
		out = append(out, FunnelRound{Round: round})
		fr := &out[len(out)-1]
		byRound[round] = fr
		// A round's events are contiguous, so appending on first sight
		// preserves round order; re-index in case append moved the slice.
		for i := range out {
			byRound[out[i].Round] = &out[i]
		}
		return byRound[round]
	}
	for _, ev := range evs {
		fr := get(ev.Round)
		switch ev.Ev {
		case EvRound:
			fr.Candidates = ev.Candidates
		case EvCandidate:
			switch ev.Outcome {
			case "evaluated":
				fr.Evaluated++
			case "cached":
				fr.Cached++
			case "pruned":
				fr.Pruned++
			}
			if ev.Accepted {
				fr.Accepted++
			}
		case EvRoundEnd:
			// Authoritative tallies overwrite the incremental counts.
			*fr = FunnelRound{
				Round: ev.Round, Candidates: ev.Candidates,
				Evaluated: ev.Evaluated, Cached: ev.Cached, Pruned: ev.Pruned,
				Accepted: ev.Accepts, Evals: ev.Evals,
				BestSpeedup: ev.BestSpeedup, Frontier: ev.Frontier,
			}
		}
	}
	return out
}

// RenderFunnel formats the funnel as the `prose runs` text table.
func RenderFunnel(rounds []FunnelRound) string {
	var sb strings.Builder
	sb.WriteString("round  cands  evald  cached  pruned  accept  evals  best     frontier\n")
	for _, r := range rounds {
		best := "-"
		if r.BestSpeedup > 0 {
			best = fmt.Sprintf("%.4gx", r.BestSpeedup)
		}
		fmt.Fprintf(&sb, "%5d  %5d  %5d  %6d  %6d  %6d  %5d  %-7s  %8d\n",
			r.Round, r.Candidates, r.Evaluated, r.Cached, r.Pruned, r.Accepted, r.Evals, best, r.Frontier)
	}
	return sb.String()
}
