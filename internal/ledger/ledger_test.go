package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/search"
)

func writeSampleLog(t *testing.T, path string) *DecisionLog {
	t.Helper()
	dl, err := CreateDecisionLog(path, "fp-1", "funarc")
	if err != nil {
		t.Fatal(err)
	}
	dl.RoundStart(1, 3)
	dl.Decide(search.Decision{Round: 1, Seq: 1, AKey: "a=4", Outcome: search.DecisionEvaluated, Status: search.StatusPass, Speedup: 1.5, RelError: 1e-8, Lowered: 1, Accepted: true})
	dl.Decide(search.Decision{Round: 1, Seq: 2, AKey: "a=4", Outcome: search.DecisionCached, Status: search.StatusPass, Speedup: 1.5, RelError: 1e-8, Lowered: 1})
	dl.Decide(search.Decision{Round: 1, Seq: 3, AKey: "b=4", Outcome: search.DecisionPruned})
	dl.RoundEnd(search.RoundSummary{Round: 1, Candidates: 3, Evaluated: 1, Cached: 1, Pruned: 1, Accepted: 1, Evals: 1, BestSpeedup: 1.5, BestAKey: "a=4", Frontier: 1})
	if err := dl.Close(); err != nil {
		t.Fatal(err)
	}
	return dl
}

func TestDecisionLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.jsonl")
	dl := writeSampleLog(t, path)
	if dl.Events() != 5 {
		t.Errorf("Events() = %d, want 5", dl.Events())
	}

	hdr, evs, err := ReadDecisionLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != DecisionLogKind || hdr.Fingerprint != "fp-1" || hdr.Model != "funarc" {
		t.Errorf("header = %+v", hdr)
	}
	if len(evs) != 5 {
		t.Fatalf("read %d events, want 5", len(evs))
	}
	if evs[0].Ev != EvRound || evs[0].Candidates != 3 {
		t.Errorf("first event %+v", evs[0])
	}
	if evs[3].Ev != EvCandidate || evs[3].Outcome != search.DecisionPruned || evs[3].Status != "" {
		t.Errorf("pruned candidate carries eval facts: %+v", evs[3])
	}
	if evs[4].Ev != EvRoundEnd || evs[4].BestSpeedup != 1.5 || evs[4].Accepts != 1 {
		t.Errorf("round_end %+v", evs[4])
	}

	// The digest is the digest of the file bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); dl.Digest() != got {
		t.Errorf("Digest() = %s, file digest %s", dl.Digest(), got)
	}
}

func TestDecisionLogCountsMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.jsonl")
	dl, err := CreateDecisionLog(path, "fp", "m")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	dl.SetMetrics(reg)
	dl.RoundStart(1, 1)
	dl.Decide(search.Decision{Round: 1, Seq: 1, AKey: "k", Outcome: search.DecisionEvaluated})
	dl.RoundEnd(search.RoundSummary{Round: 1, Candidates: 1})
	dl.Close()
	s := reg.Snapshot()
	if s.Counters[obs.MetricDecisionEvents] != 3 || s.Counters[obs.MetricDecisionRounds] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
}

func TestReadDecisionLogGraceful(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDecisionLog(empty); err == nil {
		t.Error("empty file: want error")
	}

	foreign := filepath.Join(dir, "foreign")
	os.WriteFile(foreign, []byte("not json at all\n"), 0o644)
	if _, _, err := ReadDecisionLog(foreign); err == nil {
		t.Error("foreign file: want error")
	}

	if _, _, err := ReadDecisionLog(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file: want error")
	}

	// A torn tail — killed mid-write — keeps the complete prefix.
	torn := filepath.Join(dir, "torn")
	writeSampleLog(t, torn)
	raw, _ := os.ReadFile(torn)
	os.WriteFile(torn, raw[:len(raw)-7], 0o644)
	_, evs, err := ReadDecisionLog(torn)
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(evs) != 4 {
		t.Errorf("torn tail kept %d events, want 4", len(evs))
	}
}

func TestCanonicalJSON(t *testing.T) {
	type S struct {
		Zeta  int     `json:"zeta"`
		Alpha string  `json:"alpha"`
		Pi    float64 `json:"pi"`
	}
	b, err := CanonicalJSON(S{Zeta: 1, Alpha: "x", Pi: 3.25})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.HasSuffix(s, "\n") {
		t.Error("no trailing newline")
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Errorf("keys not sorted:\n%s", s)
	}
	if !strings.Contains(s, "3.25") {
		t.Errorf("number drifted:\n%s", s)
	}
	b2, _ := CanonicalJSON(S{Zeta: 1, Alpha: "x", Pi: 3.25})
	if string(b) != string(b2) {
		t.Error("not deterministic")
	}
}

func sampleManifest(speedup float64, evals int) *Manifest {
	return &Manifest{
		Kind: ManifestKind, V: ManifestVersion,
		Model: "funarc", Fingerprint: "fp-1", Machine: "m", Engine: "vm",
		StartUnixNS: int64(evals) * 1e9, WallMS: 100,
		Outcome: "completed", Converged: true,
		Evaluations: evals, TotalAtoms: 8, MinimalAtoms: 1,
		BestSpeedup: speedup, BestRelError: 1e-7, BestLowered: 7,
	}
}

func TestLedgerPutListGet(t *testing.T) {
	dir := t.TempDir()
	led, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := led.Put(sampleManifest(1.5, 28))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := led.Put(sampleManifest(1.2, 30))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("different manifests share a content address")
	}

	entries, err := led.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ID != id1 || entries[1].ID != id2 {
		t.Fatalf("List = %+v", entries)
	}

	m, err := led.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if m.BestSpeedup != 1.5 {
		t.Errorf("Get(%s).BestSpeedup = %g", id1, m.BestSpeedup)
	}
	if _, err := led.Get(id1[:8]); err != nil {
		t.Errorf("unique prefix rejected: %v", err)
	}
	if _, err := led.Get("no-such-run"); err == nil {
		t.Error("unknown ref accepted")
	}

	// Re-archiving identical facts hits the same address and must not
	// corrupt anything.
	if id3, err := led.Put(sampleManifest(1.5, 28)); err != nil || id3 != id1 {
		t.Errorf("re-put: id=%s err=%v, want %s", id3, err, id1)
	}

	// A torn index line is skipped, not fatal.
	f, _ := os.OpenFile(filepath.Join(dir, indexFile), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"id":"torn`)
	f.Close()
	if entries, err = led.List(); err != nil || len(entries) != 3 {
		t.Errorf("after torn index line: %d entries, err=%v", len(entries), err)
	}

	// Losing the index entirely falls back to scanning runs/.
	os.Remove(filepath.Join(dir, indexFile))
	entries, err = led.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("index-less List found %d runs, want 2", len(entries))
	}

	// A manifest file path works without any ledger.
	var nilLed *Ledger
	if _, err := nilLed.Get(filepath.Join(dir, runsDir, id1+".json")); err != nil {
		t.Errorf("path lookup without ledger: %v", err)
	}
}

func TestLoadManifestGraceful(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, nil, 0o644)
	if _, err := LoadManifest(empty); err == nil {
		t.Error("empty manifest accepted")
	}
	foreign := filepath.Join(dir, "foreign.json")
	os.WriteFile(foreign, []byte(`{"kind":"something-else"}`), 0o644)
	if _, err := LoadManifest(foreign); err == nil {
		t.Error("foreign kind accepted")
	}
}

func TestCompareThresholds(t *testing.T) {
	base := sampleManifest(1.5, 28)
	th := DefaultThresholds()

	if c := Compare(base, sampleManifest(1.5, 28), th); c.Regressed() {
		t.Errorf("identical runs regressed: %v", c.Regressions)
	}

	slow := sampleManifest(1.2, 28)
	c := Compare(base, slow, th)
	if !c.Regressed() {
		t.Error("20% speedup drop not flagged")
	}
	if c = Compare(base, slow, Thresholds{MaxSpeedupDrop: 0.5, MaxErrorRise: th.MaxErrorRise, MaxEvalsRise: th.MaxEvalsRise}); c.Regressed() {
		t.Errorf("drop within a loose threshold still flagged: %v", c.Regressions)
	}

	lost := sampleManifest(0, 28)
	if !Compare(base, lost, th).Regressed() {
		t.Error("lost passing variant not flagged")
	}

	hungry := sampleManifest(1.5, 100)
	if !Compare(base, hungry, th).Regressed() {
		t.Error("4x evaluation growth not flagged")
	}

	stuck := sampleManifest(1.5, 28)
	stuck.Converged = false
	if !Compare(base, stuck, th).Regressed() {
		t.Error("convergence loss not flagged")
	}

	drifted := sampleManifest(1.5, 28)
	drifted.Fingerprint = "fp-2"
	c = Compare(base, drifted, th)
	if c.Regressed() {
		t.Error("fingerprint mismatch alone must not gate")
	}
	if len(c.Warnings) == 0 {
		t.Error("fingerprint mismatch produced no warning")
	}

	// JSON encoding must round-trip (CI consumes -format json).
	if _, err := json.Marshal(Compare(base, slow, th)); err != nil {
		t.Fatal(err)
	}
}

func TestFunnelReconstruction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.jsonl")
	writeSampleLog(t, path)
	_, evs, err := ReadDecisionLog(path)
	if err != nil {
		t.Fatal(err)
	}
	rounds := Funnel(evs)
	if len(rounds) != 1 {
		t.Fatalf("%d rounds, want 1", len(rounds))
	}
	r := rounds[0]
	if r.Candidates != 3 || r.Evaluated != 1 || r.Cached != 1 || r.Pruned != 1 || r.Accepted != 1 || r.BestSpeedup != 1.5 {
		t.Errorf("round = %+v", r)
	}
	if !strings.Contains(RenderFunnel(rounds), "1.5x") {
		t.Error("rendered funnel misses the best speedup")
	}

	// Torn log: drop the round_end; the candidate events still tally.
	rounds = Funnel(evs[:len(evs)-1])
	if len(rounds) != 1 || rounds[0].Evaluated != 1 || rounds[0].Pruned != 1 {
		t.Errorf("fallback tally = %+v", rounds)
	}
}

// BenchmarkLedgerAppend pins the cost of one decision-log candidate
// event — the write is a JSON marshal into a buffered writer plus a
// digest update, no syscall, which is what keeps decision telemetry off
// the evaluation hot path (flushes happen only between rounds).
func BenchmarkLedgerAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.decisions")
	dl, err := CreateDecisionLog(path, "fp-bench", "funarc")
	if err != nil {
		b.Fatal(err)
	}
	defer dl.Close()
	d := search.Decision{
		Round: 1, Seq: 1, AKey: "funarc.fun.t1=4;funarc.fun.d1=4;funarc.fun.s1=4",
		Outcome: search.DecisionEvaluated, Status: search.StatusPass,
		Speedup: 1.559, RelError: 2.04e-7, Lowered: 7, Accepted: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Seq = i
		dl.Decide(d)
	}
}
