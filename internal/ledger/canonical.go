package ledger

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// CanonicalJSON encodes v as deterministic, diff-friendly JSON: every
// object's keys sorted, two-space indentation, trailing newline.
// Numbers round-trip through json.Number so no float formatting drifts
// between the original encoding and the canonical one. Manifest content
// addresses are hashes of this form, and BENCH_interp.json is emitted
// through it so bench diffs stay stable.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	// Re-decode into plain maps/slices: encoding/json sorts map keys on
	// marshal, which is what canonicalizes field order regardless of the
	// struct's declaration order.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, fmt.Errorf("ledger: canonicalizing: %w", err)
	}
	out, err := json.MarshalIndent(generic, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
