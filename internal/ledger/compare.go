package ledger

import (
	"fmt"
	"sort"
	"strings"
)

// Thresholds configures what Compare counts as a regression when run B
// is judged against baseline run A.
type Thresholds struct {
	// MaxSpeedupDrop is the tolerated fractional drop in best speedup
	// (0.02 = 2%). A drop beyond it, or losing a passing variant
	// entirely, is a regression.
	MaxSpeedupDrop float64
	// MaxErrorRise is the tolerated fractional rise in the best
	// variant's relative error (0.5 = 50% — errors are tiny and noisy,
	// so the default is loose).
	MaxErrorRise float64
	// MaxEvalsRise is the tolerated fractional growth in evaluations
	// used (0.25 = 25%); more evals for the same result means the
	// search got less efficient.
	MaxEvalsRise float64
}

// DefaultThresholds are the `prose compare` defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxSpeedupDrop: 0.02, MaxErrorRise: 0.5, MaxEvalsRise: 0.25}
}

// Comparison is the result of judging run B against baseline run A.
type Comparison struct {
	A *Manifest `json:"a"`
	B *Manifest `json:"b"`

	SpeedupDelta float64 `json:"speedup_delta"` // B - A best speedup
	ErrorDelta   float64 `json:"error_delta"`   // B - A best rel error
	EvalsDelta   int     `json:"evals_delta"`   // B - A evaluations
	WallDeltaMS  int64   `json:"wall_delta_ms"` // B - A wall ms

	// Regressions lists every threshold breach; empty means B passes.
	Regressions []string `json:"regressions,omitempty"`
	// Warnings are notable but non-gating differences (e.g. the two
	// runs have different fingerprints and aren't strictly comparable).
	Warnings []string `json:"warnings,omitempty"`
	// CounterDeltas holds B-A for every counter present in either
	// run's metrics snapshot, keyed by counter name (zero deltas
	// omitted).
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

// Regressed reports whether the comparison found any regression.
func (c *Comparison) Regressed() bool { return len(c.Regressions) > 0 }

// Compare judges run B against baseline run A under the given
// thresholds. Checks: best-speedup drop, lost passing variant, relative
// error rise, evaluation-count growth, and convergence loss. A
// fingerprint mismatch is a warning, not a regression — comparing a
// tune against a different program or budget is legitimate, but the
// reader should know.
func Compare(a, b *Manifest, th Thresholds) *Comparison {
	c := &Comparison{
		A: a, B: b,
		SpeedupDelta: b.BestSpeedup - a.BestSpeedup,
		ErrorDelta:   b.BestRelError - a.BestRelError,
		EvalsDelta:   b.Evaluations - a.Evaluations,
		WallDeltaMS:  b.WallMS - a.WallMS,
	}
	if a.Fingerprint != b.Fingerprint {
		c.Warnings = append(c.Warnings, "runs have different fingerprints (different program, options, or machine) — deltas compare apples to oranges")
	}
	if a.Outcome != "completed" || b.Outcome != "completed" {
		c.Warnings = append(c.Warnings, fmt.Sprintf("outcomes %s vs %s: a non-completed run's summary reflects partial work", a.Outcome, b.Outcome))
	}

	switch {
	case a.BestSpeedup > 0 && b.BestSpeedup == 0:
		c.Regressions = append(c.Regressions, fmt.Sprintf("lost the passing variant: best speedup %.4gx -> none", a.BestSpeedup))
	case a.BestSpeedup > 0 && b.BestSpeedup < a.BestSpeedup*(1-th.MaxSpeedupDrop):
		c.Regressions = append(c.Regressions, fmt.Sprintf("best speedup dropped %.4gx -> %.4gx (%.1f%% > %.1f%% tolerance)",
			a.BestSpeedup, b.BestSpeedup, 100*(a.BestSpeedup-b.BestSpeedup)/a.BestSpeedup, 100*th.MaxSpeedupDrop))
	}
	if a.BestRelError > 0 && b.BestRelError > a.BestRelError*(1+th.MaxErrorRise) {
		c.Regressions = append(c.Regressions, fmt.Sprintf("best variant's relative error rose %.4g -> %.4g (> %.0f%% tolerance)",
			a.BestRelError, b.BestRelError, 100*th.MaxErrorRise))
	}
	if a.Evaluations > 0 && float64(b.Evaluations) > float64(a.Evaluations)*(1+th.MaxEvalsRise) {
		c.Regressions = append(c.Regressions, fmt.Sprintf("evaluations used rose %d -> %d (> %.0f%% tolerance)",
			a.Evaluations, b.Evaluations, 100*th.MaxEvalsRise))
	}
	if a.Converged && !b.Converged {
		c.Regressions = append(c.Regressions, "search converged in the baseline but stopped on budget in the candidate")
	}

	c.CounterDeltas = counterDeltas(a, b)
	return c
}

func counterDeltas(a, b *Manifest) map[string]int64 {
	av := map[string]int64{}
	if a.Metrics != nil {
		for k, v := range a.Metrics.Counters {
			av[k] = v
		}
	}
	out := map[string]int64{}
	if b.Metrics != nil {
		for k, v := range b.Metrics.Counters {
			if d := v - av[k]; d != 0 {
				out[k] = d
			}
			delete(av, k)
		}
	}
	for k, v := range av { // counters only in A
		if v != 0 {
			out[k] = -v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Render formats the comparison as the `prose compare` text report.
func (c *Comparison) Render() string {
	var sb strings.Builder
	short := func(id string) string {
		if len(id) > 12 {
			return id[:12]
		}
		return id
	}
	fmt.Fprintf(&sb, "compare: %s (baseline) vs %s\n", short(c.A.ID), short(c.B.ID))
	fmt.Fprintf(&sb, "  model       %-24s -> %s\n", c.A.Model, c.B.Model)
	fmt.Fprintf(&sb, "  speedup     %-24s -> %s   (%+.4g)\n", fmt.Sprintf("%.4gx", c.A.BestSpeedup), fmt.Sprintf("%.4gx", c.B.BestSpeedup), c.SpeedupDelta)
	fmt.Fprintf(&sb, "  rel error   %-24s -> %s   (%+.4g)\n", fmt.Sprintf("%.4g", c.A.BestRelError), fmt.Sprintf("%.4g", c.B.BestRelError), c.ErrorDelta)
	fmt.Fprintf(&sb, "  evaluations %-24d -> %d   (%+d)\n", c.A.Evaluations, c.B.Evaluations, c.EvalsDelta)
	fmt.Fprintf(&sb, "  wall ms     %-24d -> %d   (%+d)\n", c.A.WallMS, c.B.WallMS, c.WallDeltaMS)
	fmt.Fprintf(&sb, "  converged   %-24v -> %v\n", c.A.Converged, c.B.Converged)
	if len(c.CounterDeltas) > 0 {
		sb.WriteString("  counter deltas (B - A):\n")
		keys := make([]string, 0, len(c.CounterDeltas))
		for k := range c.CounterDeltas {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "    %-40s %+d\n", k, c.CounterDeltas[k])
		}
	}
	for _, w := range c.Warnings {
		fmt.Fprintf(&sb, "  warning: %s\n", w)
	}
	if len(c.Regressions) == 0 {
		sb.WriteString("  result: PASS\n")
	} else {
		sb.WriteString("  result: REGRESSION\n")
		for _, r := range c.Regressions {
			fmt.Fprintf(&sb, "    - %s\n", r)
		}
	}
	return sb.String()
}
